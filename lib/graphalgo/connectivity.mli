(** Deterministic connectivity over the topology of an uncertain graph
    (edge probabilities ignored, or restricted to a sampled edge subset). *)

val reachable_from : Ugraph.t -> int -> bool array
(** Vertices reachable from a start vertex via any edge (iterative BFS). *)

val is_connected : Ugraph.t -> bool
(** Whether the whole graph is one component. Graphs with fewer than two
    vertices are connected. *)

val components : Ugraph.t -> int array * int
(** [(comp, count)] where [comp.(v)] is a component identifier in
    [[0, count)]; identifiers are assigned in increasing order of the
    smallest vertex of each component. *)

val terminals_connected : Ugraph.t -> present:bool array -> int list -> bool
(** [terminals_connected g ~present ts] decides whether all terminals are
    connected using only edges [e] with [present.(e) = true] — the
    indicator [I(Gp, T)] of Definition 1 for a sampled possible graph.
    Runs one BFS from the first terminal, restricted to present edges.
    @raise Invalid_argument if [present] has the wrong length or [ts] is
    empty. *)

val terminals_connected_dsu : Dsu.t -> Ugraph.t -> present:bool array -> int list -> bool
(** Same as {!terminals_connected} but accumulates into a caller-provided
    union–find (resetting it first), so repeated sampling reuses one
    allocation. The DSU must have size [n_vertices g]. *)
