(* Fixed-size domain pool with ordered (deterministic) reduction.
   See par.mli for the determinism contract. *)

let max_jobs = 64

let forced_domains () =
  match Sys.getenv_opt "NETREL_FORCE_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some (min j max_jobs)
    | _ -> None)

let default_jobs () = min max_jobs (Domain.recommended_domain_count ())

let effective_jobs requested =
  if requested < 1 then invalid_arg "Par.effective_jobs: jobs < 1";
  match forced_domains () with
  | Some j -> j
  | None -> min requested max_jobs

(* Process-wide execution counters, for the structured-stats report:
   one batch per entry into a Par mapping (including the sequential
   fast paths, which are batches of the same work), one task per
   element mapped. Monotone over the process lifetime — report sites
   snapshot before and after the work they account for. *)
let batch_counter = Atomic.make 0
let task_counter = Atomic.make 0

type counters = { batches : int; tasks : int }

(* Optional dispatch probe (lib/trace installs one): called with the
   batch size on the submitting agent at every entry into a Par
   mapping, before any task runs. The callee must be thread-safe —
   nested batches are submitted from worker domains. *)
let batch_hook : (int -> unit) option ref = ref None

let set_batch_hook h = batch_hook := h

let count_batch n =
  if n > 0 then begin
    Atomic.incr batch_counter;
    ignore (Atomic.fetch_and_add task_counter n);
    match !batch_hook with None -> () | Some f -> f n
  end

let counters () =
  { batches = Atomic.get batch_counter; tasks = Atomic.get task_counter }

let chunks ~total ~target =
  if total < 0 then invalid_arg "Par.chunks: total < 0";
  if target < 1 then invalid_arg "Par.chunks: target < 1";
  if total = 0 then [||]
  else begin
    let n = (total + target - 1) / target in
    let base = total / n and extra = total mod n in
    let off = ref 0 in
    Array.init n (fun i ->
        let len = base + if i < extra then 1 else 0 in
        let o = !off in
        off := o + len;
        (o, len))
  end

module Pool = struct
  type t = {
    mutable workers : unit Domain.t array;
    queue : (unit -> unit) Queue.t;
    m : Mutex.t;
    work_available : Condition.t;
    mutable stop : bool;
  }

  let jobs t = Array.length t.workers + 1

  (* Workers block on [work_available] until a task arrives or the pool
     shuts down. Tasks run outside the lock. *)
  let rec worker_loop t =
    Mutex.lock t.m;
    let rec next () =
      if t.stop then begin
        Mutex.unlock t.m;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.m;
          Some task
        | None ->
          Condition.wait t.work_available t.m;
          next ()
    in
    match next () with
    | None -> ()
    | Some task ->
      task ();
      worker_loop t

  let spawn_workers t n =
    Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop t))

  let create ~jobs =
    if jobs < 1 then invalid_arg "Par.Pool.create: jobs < 1";
    if jobs > max_jobs then invalid_arg "Par.Pool.create: jobs > max_jobs";
    let t =
      {
        workers = [||];
        queue = Queue.create ();
        m = Mutex.create ();
        work_available = Condition.create ();
        stop = false;
      }
    in
    t.workers <- spawn_workers t (jobs - 1);
    t

  let shutdown t =
    Mutex.lock t.m;
    let ws = t.workers in
    t.stop <- true;
    t.workers <- [||];
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    Array.iter Domain.join ws

  let with_pool ~jobs f =
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  (* One batch = [n] index-addressed tasks. The caller enqueues all of
     them, drains the queue itself (so a 1-job pool degenerates to a
     sequential loop and a worker submitting a nested batch keeps making
     progress instead of deadlocking), then waits for stragglers running
     on other domains. Results land in a slot array, so the reduction
     the caller performs afterwards is in index order by construction. *)
  let map t n f =
    count_batch n;
    if n <= 0 then [||]
    else if Array.length t.workers = 0 || n = 1 then Array.init n f
    else begin
      let results = Array.make n None in
      let remaining = Atomic.make n in
      let failed = Atomic.make None in
      let batch_m = Mutex.create () in
      let batch_done = Condition.create () in
      let task i () =
        (try results.(i) <- Some (f i)
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failed None (Some (e, bt))));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock batch_m;
          Condition.broadcast batch_done;
          Mutex.unlock batch_m
        end
      in
      Mutex.lock t.m;
      for i = 0 to n - 1 do
        Queue.add (task i) t.queue
      done;
      Condition.broadcast t.work_available;
      Mutex.unlock t.m;
      let rec drain () =
        Mutex.lock t.m;
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.m;
          task ();
          drain ()
        | None -> Mutex.unlock t.m
      in
      drain ();
      Mutex.lock batch_m;
      while Atomic.get remaining > 0 do
        Condition.wait batch_done batch_m
      done;
      Mutex.unlock batch_m;
      (match Atomic.get failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.map
        (function
          | Some v -> v
          | None -> invalid_arg "Par.Pool.map: missing result (task raised)")
        results
    end

  (* The process-wide pool: grown to the largest request, reused by
     every call site so repeated estimates do not respawn domains. *)
  let shared_mutex = Mutex.create ()
  let shared_pool : t option ref = ref None
  let at_exit_registered = ref false

  let shared ~jobs =
    if jobs < 1 then invalid_arg "Par.Pool.shared: jobs < 1";
    if jobs > max_jobs then invalid_arg "Par.Pool.shared: jobs > max_jobs";
    Mutex.lock shared_mutex;
    let t =
      match !shared_pool with
      | Some t ->
        let have = Array.length t.workers + 1 in
        if have < jobs then
          t.workers <- Array.append t.workers (spawn_workers t (jobs - have));
        t
      | None ->
        let t = create ~jobs in
        shared_pool := Some t;
        if not !at_exit_registered then begin
          at_exit_registered := true;
          at_exit (fun () ->
              Mutex.lock shared_mutex;
              let p = !shared_pool in
              shared_pool := None;
              Mutex.unlock shared_mutex;
              Option.iter shutdown p)
        end;
        t
    in
    Mutex.unlock shared_mutex;
    t
end

let run_lanes ?pool () =
  match pool with
  | Some t -> Pool.jobs t
  | None -> (
    match forced_domains () with Some j when j > 1 -> j | _ -> 1)

let run ?pool n f =
  match pool with
  | Some t -> Pool.map t n f
  | None -> (
    match forced_domains () with
    | Some j when j > 1 -> Pool.map (Pool.shared ~jobs:j) n f
    | _ ->
      count_batch n;
      Array.init n f)

let run_jobs ~jobs n f =
  let jobs = effective_jobs jobs in
  if jobs <= 1 then begin
    count_batch n;
    Array.init n f
  end
  else Pool.map (Pool.shared ~jobs) n f
