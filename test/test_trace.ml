(* Streaming trace events (lib/trace): ring-buffer overflow semantics,
   the lane-merge determinism contract across jobs values, Chrome /
   JSONL export round-trips through Obs.Json, and the live progress
   reporter's byte-stable rendering under a pinned clock. *)

open Testutil
module J = Obs.Json
module R = Netrel.Reliability

let pinned () = Trace.create ~clock:(fun () -> 0.) ()

(* ---- Disabled sink: every call is a no-op ---- *)

let t_disabled () =
  let t = Trace.disabled in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.instant t "x";
  Trace.counter t "c" 1.;
  Trace.complete t ~ts:0. "sp";
  let ran = ref false in
  let v = Trace.span t "sp" (fun () -> ran := true; 7) in
  Alcotest.(check int) "span passes result through" 7 v;
  Alcotest.(check bool) "span ran the thunk" true !ran;
  Alcotest.(check (list reject)) "no events" [] (Trace.events t);
  Alcotest.(check bool) "task disabled is disabled" false
    (Trace.enabled (Trace.task t ~lane:3));
  Trace.merge ~into:t (pinned ());
  Alcotest.(check int) "dropped stays 0" 0 (Trace.dropped t)

(* ---- Ring overflow: drop-oldest, deterministic, counted ---- *)

let t_ring_overflow () =
  let seen = ref [] in
  let t =
    Trace.create ~clock:(fun () -> 0.) ~capacity:4
      ~on_event:(fun ev -> seen := ev.Trace.name :: !seen)
      ()
  in
  for i = 0 to 9 do
    Trace.instant t (Printf.sprintf "i%d" i)
  done;
  let names = List.map (fun (ev : Trace.event) -> ev.name) (Trace.events t) in
  Alcotest.(check (list string)) "survivors are the newest, in order"
    [ "i6"; "i7"; "i8"; "i9" ] names;
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped t);
  Alcotest.(check int) "listener saw every event, drops included" 10
    (List.length !seen)

let t_task_merge () =
  let t = pinned () in
  Trace.instant t "main.before";
  let a = Trace.task t ~lane:1 in
  let b = Trace.task t ~lane:2 in
  Trace.instant b "b.event";
  Trace.instant a "a.event";
  (* Merge in task order, not completion order: the merged stream's
     order is schedule-independent. *)
  Trace.merge ~into:t a;
  Trace.merge ~into:t b;
  Trace.instant t "main.after";
  let lanes =
    List.map (fun (ev : Trace.event) -> (ev.name, ev.lane)) (Trace.events t)
  in
  Alcotest.(check (list (pair string int))) "task order, lanes preserved"
    [ ("main.before", 0); ("a.event", 1); ("b.event", 2); ("main.after", 0) ]
    lanes;
  Alcotest.check_raises "negative lane rejected"
    (Invalid_argument "Trace.task: lane < 0") (fun () ->
      ignore (Trace.task t ~lane:(-1)))

let t_merge_carries_drops () =
  let t = Trace.create ~clock:(fun () -> 0.) ~capacity:3 () in
  let child = Trace.task t ~lane:1 in
  for i = 0 to 4 do
    Trace.instant child (Printf.sprintf "c%d" i)
  done;
  Alcotest.(check int) "child dropped" 2 (Trace.dropped child);
  Trace.merge ~into:t child;
  (* 3 surviving child events into an empty capacity-3 parent: all fit;
     the child's drop count transfers. *)
  Alcotest.(check int) "merged events" 3 (List.length (Trace.events t));
  Alcotest.(check int) "drop count transferred" 2 (Trace.dropped t)

(* ---- Lane-merge determinism: jobs only moves the lane field ---- *)

let norm evs =
  List.map (fun (ev : Trace.event) -> { ev with Trace.lane = 0 }) evs

let check_jobs_invariant name run =
  match List.map run [ 1; 2; 8 ] with
  | [] -> assert false
  | first :: rest ->
    List.iteri
      (fun i other ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: jobs %d events = jobs 1 events (lanes erased)"
             name [| 2; 8 |].(i))
          true
          (norm first = norm other))
      rest

let t_jobs_lanes_mc () =
  let g = fig1 () in
  check_jobs_invariant "mc" (fun jobs ->
      let t = pinned () in
      let _ =
        Mcsampling.monte_carlo ~trace:t ~seed:7 ~jobs g ~terminals:[ 0; 4 ]
          ~samples:2000
      in
      let evs = Trace.events t in
      Alcotest.(check bool)
        (Printf.sprintf "mc jobs %d traced something" jobs)
        true (evs <> []);
      evs)

let t_jobs_lanes_ht () =
  let g = two_triangles 0.6 in
  check_jobs_invariant "ht" (fun jobs ->
      let t = pinned () in
      let _ =
        Mcsampling.horvitz_thompson ~trace:t ~seed:7 ~jobs g
          ~terminals:[ 0; 5 ] ~samples:2000
      in
      Trace.events t)

let t_jobs_lanes_pro () =
  let g = fig1 () in
  let config =
    { Netrel.S2bdd.default_config with samples = 500; seed = 3 }
  in
  check_jobs_invariant "pro" (fun jobs ->
      let t = pinned () in
      let _ = R.estimate ~trace:t ~config ~jobs g ~terminals:[ 0; 4 ] in
      let evs = Trace.events t in
      Alcotest.(check bool)
        (Printf.sprintf "pro jobs %d has layer spans" jobs)
        true
        (List.exists (fun (ev : Trace.event) -> ev.name = "layer") evs);
      evs)

(* At a fixed jobs value the stream is identical run to run, lanes
   included — the byte-stability half of the contract (the export is a
   pure function of the stream and the pinned clock). *)
let t_fixed_jobs_stable () =
  let g = two_triangles 0.6 in
  let run () =
    let t = pinned () in
    let _ =
      Mcsampling.horvitz_thompson ~trace:t ~seed:11 ~jobs:2 g
        ~terminals:[ 0; 5 ] ~samples:1500
    in
    Trace.events t
  in
  Alcotest.(check bool) "identical streams, lanes included" true
    (run () = run ())

(* ---- Chrome export round-trips through Obs.Json ---- *)

let t_chrome_roundtrip () =
  let t = pinned () in
  Trace.instant t "mark"
    ~args:
      [ ("i", Trace.Int 3); ("f", Trace.Float 0.5); ("s", Trace.Str "x");
        ("b", Trace.Bool true) ];
  Trace.counter t "width" 7.;
  let v = Trace.span t "work" (fun () -> 41 + 1) in
  Alcotest.(check int) "span result" 42 v;
  Trace.instant_shared t "ctl" ~args:[ ("tasks", Trace.Int 2) ];
  let doc = Trace.to_chrome t in
  let reparsed = J.of_string_exn (J.to_string ~pretty:true doc) in
  Alcotest.(check bool) "pretty round-trip is lossless" true (doc = reparsed);
  (match Trace.validate_chrome reparsed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate_chrome: %s" e);
  (match J.member "otherData" reparsed with
  | Some od ->
    Alcotest.(check bool) "schema stamped" true
      (J.member "schema" od = Some (J.Int Trace.schema_version))
  | None -> Alcotest.fail "missing otherData");
  match J.member "traceEvents" reparsed with
  | Some (J.List evs) ->
    let tids =
      List.sort_uniq compare
        (List.filter_map (fun e -> J.member "tid" e) evs)
    in
    (* lane 0 plus the control lane, each with a thread_name record. *)
    Alcotest.(check bool) "tids are lane 0 + control" true
      (tids = [ J.Int 0; J.Int Trace.control_lane ]);
    let phs = List.filter_map (fun e -> J.member "ph" e) evs in
    List.iter
      (fun ph ->
        Alcotest.(check bool) "ph known" true
          (List.mem ph [ J.Str "M"; J.Str "X"; J.Str "i"; J.Str "C" ]))
      phs
  | _ -> Alcotest.fail "missing traceEvents"

let t_validate_rejects () =
  let bad what j =
    match Trace.validate_chrome j with
    | Ok () -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  bad "no traceEvents" (J.Obj []);
  bad "not a list" (J.Obj [ ("traceEvents", J.Int 0) ]);
  bad "event missing ph"
    (J.Obj
       [ ("traceEvents", J.List [ J.Obj [ ("name", J.Str "x") ] ]) ])

let t_jsonl () =
  let t = pinned () in
  Trace.instant t "a";
  Trace.counter t "c" 2.;
  let path = Filename.temp_file "netrel_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  Trace.write_jsonl oc t;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "header + one line per event" 3 (List.length lines);
  let docs = List.map J.of_string_exn lines in
  (match docs with
  | header :: evs ->
    Alcotest.(check bool) "header tagged" true
      (J.member "netrel" header = Some (J.Str "trace"));
    Alcotest.(check bool) "header schema" true
      (J.member "schema" header = Some (J.Int Trace.schema_version));
    List.iter
      (fun e ->
        Alcotest.(check bool) "event has ph" true (J.member "ph" e <> None))
      evs
  | [] -> assert false)

(* ---- Progress reporter: pinned clock → phase-transition renders only ---- *)

let t_progress () =
  let frames = ref [] in
  let r =
    Trace.Progress.create
      ~emit:(fun s -> frames := s :: !frames)
      ~tty:false ~clock:(fun () -> 0.) ()
  in
  let ev ?(args = []) ?(kind = Trace.Instant) name =
    Trace.Progress.on_event r { Trace.name; kind; ts = 0.; lane = 0; args }
  in
  ev "prune";
  ev "decompose";  (* same phase: throttled out under the pinned clock *)
  ev "layer" ~kind:(Trace.Span 0.)
    ~args:[ ("layer", Trace.Int 1); ("width", Trace.Int 4) ];
  ev "mc.chunk" ~kind:(Trace.Span 0.)
    ~args:[ ("samples", Trace.Int 100); ("hits", Trace.Int 60) ];
  ev "estimate"
    ~args:
      [ ("value", Trace.Float 0.5); ("lower", Trace.Float 0.4);
        ("upper", Trace.Float 0.6); ("samples", Trace.Int 100) ];
  Trace.Progress.finish r;
  Trace.Progress.finish r (* idempotent *);
  ev "late";  (* consumed silently after finish *)
  Alcotest.(check (list string)) "frames"
    [
      "progress: preprocess\n";
      "progress: construction layer 1 width 4\n";
      "progress: sampling samples 100\n";
      "progress: done est 0.5 +/-0.1 samples 100\n";
    ]
    (List.rev !frames)

let t_progress_exact () =
  let frames = ref [] in
  let r =
    Trace.Progress.create
      ~emit:(fun s -> frames := s :: !frames)
      ~tty:false ~clock:(fun () -> 0.) ()
  in
  Trace.Progress.on_event r
    {
      Trace.name = "estimate";
      kind = Trace.Instant;
      ts = 0.;
      lane = 0;
      args =
        [ ("value", Trace.Float 0.25); ("lower", Trace.Float 0.25);
          ("upper", Trace.Float 0.25); ("exact", Trace.Bool true);
          ("samples", Trace.Int 0) ];
    };
  Trace.Progress.finish r;
  Alcotest.(check (list string)) "exact result renders R=, no CI"
    [ "progress: done R=0.25\n" ]
    (List.rev !frames)

let suite =
  ( "trace",
    [
      Alcotest.test_case "disabled no-op" `Quick t_disabled;
      Alcotest.test_case "ring overflow" `Quick t_ring_overflow;
      Alcotest.test_case "task/merge order + lanes" `Quick t_task_merge;
      Alcotest.test_case "merge carries drops" `Quick t_merge_carries_drops;
      Alcotest.test_case "jobs-invariant lanes (mc)" `Quick t_jobs_lanes_mc;
      Alcotest.test_case "jobs-invariant lanes (ht)" `Quick t_jobs_lanes_ht;
      Alcotest.test_case "jobs-invariant lanes (pro)" `Quick t_jobs_lanes_pro;
      Alcotest.test_case "fixed-jobs stream stable" `Quick t_fixed_jobs_stable;
      Alcotest.test_case "chrome round-trip" `Quick t_chrome_roundtrip;
      Alcotest.test_case "validate_chrome rejects" `Quick t_validate_rejects;
      Alcotest.test_case "jsonl export" `Quick t_jsonl;
      Alcotest.test_case "progress reporter" `Quick t_progress;
      Alcotest.test_case "progress exact" `Quick t_progress_exact;
    ] )
