open Testutil
module BF = Bddbase.Bruteforce
module T = Preprocess.Transform
module P = Preprocess.Pipeline

let exact g ~terminals =
  match Bddbase.Exact.reliability_float g ~terminals with
  | Ok r -> r
  | Error _ -> Alcotest.fail "unexpected DNF"

(* Evaluate a pipeline outcome exactly, to compare with direct R. *)
let outcome_reliability = function
  | P.Trivial r -> Xprob.to_float_exn r
  | P.Reduced { pb; subproblems; _ } ->
    List.fold_left
      (fun acc (sp : P.subproblem) -> acc *. exact sp.P.graph ~terminals:sp.P.terminals)
      (Xprob.to_float_exn pb)
      subproblems

(* ---- transform ---- *)

let t_transform_series () =
  (* Path 0-1-2-3 with terminals {0,3}: collapses to one edge p^3. *)
  let tr = T.run (path4 0.8) ~terminals:[ 0; 3 ] in
  Alcotest.(check int) "two vertices" 2 (Ugraph.n_vertices tr.T.graph);
  Alcotest.(check int) "one edge" 1 (Ugraph.n_edges tr.T.graph);
  check_close "probability" (0.8 ** 3.) (Ugraph.edge tr.T.graph 0).Ugraph.p

let t_transform_parallel () =
  let g = graph ~n:2 [ (0, 1, 0.5); (0, 1, 0.4); (0, 1, 0.3) ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "one edge" 1 (Ugraph.n_edges tr.T.graph);
  check_close "combined probability"
    (1. -. (0.5 *. 0.6 *. 0.7))
    (Ugraph.edge tr.T.graph 0).Ugraph.p

let t_transform_loop () =
  let g = graph ~n:2 [ (0, 0, 0.9); (0, 1, 0.5) ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "loop dropped" 1 (Ugraph.n_edges tr.T.graph)

let t_transform_ear () =
  (* Terminals {0,3} on a path, plus an ear 1-4-5-1: the ear collapses
     to a self-loop and disappears. *)
  let g =
    graph ~n:6
      [ (0, 1, 0.5); (1, 2, 0.5); (2, 3, 0.5); (1, 4, 0.6); (4, 5, 0.6); (5, 1, 0.6) ]
  in
  let tr = T.run g ~terminals:[ 0; 3 ] in
  Alcotest.(check int) "collapses to single edge" 1 (Ugraph.n_edges tr.T.graph);
  check_close "p = 0.5^3" (0.5 ** 3.) (Ugraph.edge tr.T.graph 0).Ugraph.p

let t_transform_floating_cycle () =
  (* A terminal edge plus an unreachable terminal-free triangle. *)
  let g =
    graph ~n:5 [ (0, 1, 0.5); (2, 3, 0.6); (3, 4, 0.6); (4, 2, 0.6) ]
  in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "cycle deleted" 1 (Ugraph.n_edges tr.T.graph);
  Alcotest.(check int) "vertices compacted" 2 (Ugraph.n_vertices tr.T.graph)

let t_transform_dangling () =
  (* Pendant path 2-3-4 off a terminal edge 0-1 (attached at 1). *)
  let g = graph ~n:5 [ (0, 1, 0.5); (1, 2, 0.6); (2, 3, 0.6); (3, 4, 0.6) ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "pendants dropped" 1 (Ugraph.n_edges tr.T.graph)

let t_transform_keeps_terminal_degree2 () =
  (* A degree-2 terminal must not be contracted away. *)
  let tr = T.run (path4 0.8) ~terminals:[ 0; 1; 3 ] in
  Alcotest.(check int) "terminal 1 kept" 3 (Ugraph.n_vertices tr.T.graph);
  Alcotest.(check int) "edges merged around it" 2 (Ugraph.n_edges tr.T.graph)

let t_transform_idempotent () =
  let g = two_triangles 0.5 in
  let tr = T.run g ~terminals:[ 0; 4 ] in
  let tr2 = T.run tr.T.graph ~terminals:tr.T.terminals in
  Alcotest.(check int) "second run is identity (edges)"
    (Ugraph.n_edges tr.T.graph) (Ugraph.n_edges tr2.T.graph);
  Alcotest.(check int) "second run took zero rounds... or one no-op" 0 tr2.T.rounds

(* ---- pipeline ---- *)

let t_pipeline_two_triangles () =
  let g = two_triangles 0.5 in
  match P.run g ~terminals:[ 0; 4 ] with
  | P.Trivial _ -> Alcotest.fail "expected reduction"
  | P.Reduced { pb; subproblems; stats } ->
    check_close "bridge probability" 0.5 (Xprob.to_float_exn pb);
    Alcotest.(check int) "two subproblems" 2 (List.length subproblems);
    Alcotest.(check int) "bridges" 1 stats.P.n_bridges;
    (* Each triangle with two terminals transforms: the two-path side
       becomes parallel edges which merge into one; so 2 or fewer edges
       per side. *)
    List.iter
      (fun (sp : P.subproblem) ->
        Alcotest.(check bool) "small subproblem" true (Ugraph.n_edges sp.P.graph <= 2))
      subproblems;
    Alcotest.(check bool) "ratio < 1" true (P.reduction_ratio stats < 1.)

let t_pipeline_trivial_cases () =
  let g = path4 0.5 in
  (match P.run g ~terminals:[ 2 ] with
  | P.Trivial r -> check_close "k=1" 1. (Xprob.to_float_exn r)
  | P.Reduced _ -> Alcotest.fail "expected trivial");
  let disconnected = graph ~n:4 [ (0, 1, 0.9); (2, 3, 0.9) ] in
  (match P.run disconnected ~terminals:[ 0; 3 ] with
  | P.Trivial r -> check_close "separated" 0. (Xprob.to_float_exn r)
  | P.Reduced _ -> Alcotest.fail "expected trivial");
  let isolated = graph ~n:3 [ (0, 1, 0.5) ] in
  match P.run isolated ~terminals:[ 0; 2 ] with
  | P.Trivial r -> check_close "isolated" 0. (Xprob.to_float_exn r)
  | P.Reduced _ -> Alcotest.fail "expected trivial"

let t_pipeline_path_fully_decomposes () =
  (* A pure path between the terminals decomposes into bridges only:
     no subproblems remain and pb is the whole reliability. *)
  let g = path4 0.8 in
  match P.run g ~terminals:[ 0; 3 ] with
  | P.Trivial _ -> Alcotest.fail "expected reduction"
  | P.Reduced { pb; subproblems; _ } ->
    Alcotest.(check int) "no subproblems" 0 (List.length subproblems);
    check_close "pb = p^3" (0.8 ** 3.) (Xprob.to_float_exn pb)

let t_pipeline_preserves_reliability_known () =
  List.iter
    (fun (name, g, ts) ->
      let direct = BF.reliability g ~terminals:ts in
      let via = outcome_reliability (P.run g ~terminals:ts) in
      check_close ~eps:1e-9 name direct via)
    [
      ("fig1", fig1 (), [ 0; 3; 4 ]);
      ("two triangles", two_triangles 0.6, [ 0; 4 ]);
      ("cycle", cycle4 0.5, [ 0; 2 ]);
      ("path k=3", path4 0.7, [ 0; 2; 3 ]);
      ( "barbell with pendant",
        graph ~n:8
          [ (0, 1, 0.5); (1, 2, 0.5); (2, 0, 0.5); (2, 3, 0.9); (3, 4, 0.8);
            (4, 5, 0.5); (5, 6, 0.5); (6, 4, 0.5); (5, 7, 0.4) ],
        [ 0; 6 ] );
    ]

(* ---- property tests ---- *)

let arb = Test_bddbase.arb_graph_ts

let prop_transform_preserves_reliability =
  QCheck.Test.make ~name:"transform preserves R exactly" ~count:300
    (arb ~max_n:8 ~max_m:12 ~max_k:4) (fun (n, es, ts) ->
      let g = graph ~n es in
      let direct = BF.reliability g ~terminals:ts in
      let tr = T.run g ~terminals:ts in
      QCheck.assume (Ugraph.n_edges tr.T.graph <= BF.max_edges);
      let after = BF.reliability tr.T.graph ~terminals:tr.T.terminals in
      Float.abs (direct -. after) <= 1e-9)

let prop_pipeline_preserves_reliability =
  QCheck.Test.make ~name:"pipeline preserves R = pb * prod Ri" ~count:300
    (arb ~max_n:9 ~max_m:13 ~max_k:4) (fun (n, es, ts) ->
      let g = graph ~n es in
      let direct = BF.reliability g ~terminals:ts in
      let via = outcome_reliability (P.run g ~terminals:ts) in
      Float.abs (direct -. via) <= 1e-9)

let prop_pipeline_shrinks =
  QCheck.Test.make ~name:"pipeline never grows the problem" ~count:200
    (arb ~max_n:9 ~max_m:13 ~max_k:3) (fun (n, es, ts) ->
      let g = graph ~n es in
      match P.run g ~terminals:ts with
      | P.Trivial _ -> true
      | P.Reduced { stats; _ } ->
        stats.P.max_subproblem_edges <= stats.P.original_edges
        && stats.P.pruned_edges <= stats.P.original_edges
        && stats.P.final_edges <= stats.P.pruned_edges)

let suite =
  ( "preprocess",
    [
      Alcotest.test_case "transform: series chain" `Quick t_transform_series;
      Alcotest.test_case "transform: parallel edges" `Quick t_transform_parallel;
      Alcotest.test_case "transform: self loop" `Quick t_transform_loop;
      Alcotest.test_case "transform: ear" `Quick t_transform_ear;
      Alcotest.test_case "transform: floating cycle" `Quick t_transform_floating_cycle;
      Alcotest.test_case "transform: dangling path" `Quick t_transform_dangling;
      Alcotest.test_case "transform: keeps degree-2 terminal" `Quick t_transform_keeps_terminal_degree2;
      Alcotest.test_case "transform: idempotent" `Quick t_transform_idempotent;
      Alcotest.test_case "pipeline: two triangles" `Quick t_pipeline_two_triangles;
      Alcotest.test_case "pipeline: trivial cases" `Quick t_pipeline_trivial_cases;
      Alcotest.test_case "pipeline: path decomposes fully" `Quick t_pipeline_path_fully_decomposes;
      Alcotest.test_case "pipeline preserves R (known)" `Quick t_pipeline_preserves_reliability_known;
    ]
    @ qtests
        [
          prop_transform_preserves_reliability;
          prop_pipeline_preserves_reliability;
          prop_pipeline_shrinks;
        ] )
