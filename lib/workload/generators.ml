let largest_component g =
  let comp, count = Graphalgo.Connectivity.components g in
  if count <= 1 then g
  else begin
    let sizes = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let members =
      Array.of_list
        (List.filter
           (fun v -> comp.(v) = !best)
           (List.init (Ugraph.n_vertices g) Fun.id))
    in
    fst (Ugraph.induced g members)
  end

let preferential_attachment ~seed ~n ~edges_per_vertex =
  if n < 2 || edges_per_vertex < 1 then
    invalid_arg "Generators.preferential_attachment: bad parameters";
  let rng = Prng.create seed in
  (* Degree-biased target selection via the repeated-endpoints trick:
     every edge endpoint is appended to [endpoints]; a uniform draw from
     it is a degree-proportional draw. *)
  let n_endpoints = ref 2 in
  let endpoint_arr = Array.make (2 * n * edges_per_vertex + 4) 0 in
  endpoint_arr.(0) <- 0;
  endpoint_arr.(1) <- 1;
  let multiplicity : (int * int, int) Hashtbl.t = Hashtbl.create (n * edges_per_vertex) in
  let note u v =
    let key = if u < v then (u, v) else (v, u) in
    Hashtbl.replace multiplicity key
      (1 + Option.value ~default:0 (Hashtbl.find_opt multiplicity key))
  in
  note 0 1;
  for v = 2 to n - 1 do
    for _ = 1 to edges_per_vertex do
      let target = endpoint_arr.(Prng.int rng !n_endpoints) in
      if target <> v then begin
        note v target;
        endpoint_arr.(!n_endpoints) <- v;
        endpoint_arr.(!n_endpoints + 1) <- target;
        n_endpoints := !n_endpoints + 2
      end
    done
  done;
  let pairs = Hashtbl.fold (fun k a acc -> (k, a) :: acc) multiplicity [] in
  (* Keys (vertex pairs) are unique in [multiplicity], so a key-only
     comparator reproduces the polymorphic sort order exactly. *)
  let pairs =
    List.sort
      (fun ((a, b), _) ((c, d), _) ->
        match Int.compare a c with 0 -> Int.compare b d | e -> e)
      pairs
  in
  let edges =
    List.map (fun ((u, v), _) -> { Ugraph.u; v; p = 0.5 }) pairs
  in
  let alphas = Array.of_list (List.map snd pairs) in
  (* Attachments always target the initial component, so every edge
     survives [largest_component] (only self-isolated vertices can
     drop), keeping [alphas] aligned with edge identifiers. *)
  (largest_component (Ugraph.create ~n edges), alphas)

let grid_road ~seed ~rows ~cols ~keep =
  if rows < 2 || cols < 2 then invalid_arg "Generators.grid_road: bad grid";
  if keep < 0. || keep > 1. then invalid_arg "Generators.grid_road: bad keep";
  let rng = Prng.create seed in
  let idx r c = (r * cols) + c in
  let candidates = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c < cols - 1 then candidates := (idx r c, idx r (c + 1)) :: !candidates;
      if r < rows - 1 then candidates := (idx r c, idx (r + 1) c) :: !candidates
    done
  done;
  (* A random spanning tree (random-order Kruskal) keeps the road map
     connected; the remaining grid edges survive with probability
     [keep]. *)
  let cand = Array.of_list !candidates in
  Prng.shuffle rng cand;
  let dsu = Dsu.create (rows * cols) in
  let chosen = ref [] in
  Array.iter
    (fun (u, v) ->
      if Dsu.union dsu u v then chosen := (u, v) :: !chosen
      else if Prng.bernoulli rng keep then chosen := (u, v) :: !chosen)
    cand;
  let lengths =
    Array.of_list (List.map (fun _ -> 0.2 +. (1.8 *. Prng.float rng)) !chosen)
  in
  let edges = List.map (fun (u, v) -> { Ugraph.u; v; p = 0.5 }) !chosen in
  (* Grid + spanning tree is connected by construction; keep the order
     aligned with [lengths], so no component filtering here. *)
  (Ugraph.create ~n:(rows * cols) edges, lengths)

let power_law ~seed ~n ~target_edges ~exponent =
  if n < 2 || target_edges < 1 then invalid_arg "Generators.power_law: bad parameters";
  let rng = Prng.create seed in
  let weights =
    Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) exponent)
  in
  let table = Prng.Alias.build weights in
  (* Random vertex labels so the heavy tail is not clustered at low
     ids. *)
  let label = Array.init n Fun.id in
  Prng.shuffle rng label;
  let seen = Hashtbl.create target_edges in
  let edges = ref [] in
  let attempts = ref 0 in
  let max_attempts = 50 * target_edges in
  while Hashtbl.length seen < target_edges && !attempts < max_attempts do
    incr attempts;
    let u = label.(Prng.Alias.sample rng table) in
    let v = label.(Prng.Alias.sample rng table) in
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := { Ugraph.u; v; p = 0.5 } :: !edges
      end
    end
  done;
  largest_component (Ugraph.create ~n !edges)

let bipartite_affiliation ~seed ~people ~groups ~memberships =
  if people < 1 || groups < 1 || memberships < people then
    invalid_arg "Generators.bipartite_affiliation: bad parameters";
  let rng = Prng.create seed in
  (* Group popularity is Zipf-skewed, as in real affiliation data. *)
  let weights = Array.init groups (fun i -> 1. /. float_of_int (i + 1)) in
  let table = Prng.Alias.build weights in
  let n = people + groups in
  let seen = Hashtbl.create memberships in
  let edges = ref [] in
  (* Every person joins one group; the remaining memberships spread. *)
  let add person group =
    let u = person and v = people + group in
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      edges := { Ugraph.u; v; p = 0.5 } :: !edges
    end
  in
  for person = 0 to people - 1 do
    add person (Prng.Alias.sample rng table)
  done;
  let attempts = ref 0 in
  while Hashtbl.length seen < memberships && !attempts < 50 * memberships do
    incr attempts;
    add (Prng.int rng people) (Prng.Alias.sample rng table)
  done;
  largest_component (Ugraph.create ~n !edges)

(* --- large-graph generators (10^5..10^6 edges) --------------------- *)

let random_geometric ~seed ~n ~radius =
  if n < 2 then invalid_arg "Generators.random_geometric: n < 2";
  if not (radius > 0. && radius <= 1.) then
    invalid_arg "Generators.random_geometric: radius outside (0,1]";
  let rng = Prng.create seed in
  let xs = Array.init n (fun _ -> Prng.float rng) in
  let ys = Array.init n (fun _ -> Prng.float rng) in
  (* Grid-bucket the points at cell size [radius]: every neighbour
     within range lives in the 3x3 cell block. Counting-sort layout
     (counts, prefix sums, scatter) keeps the whole build array-based
     and deterministic. *)
  let cells = max 1 (int_of_float (1. /. radius)) in
  let cell_of i =
    let cx = min (cells - 1) (int_of_float (xs.(i) *. float_of_int cells)) in
    let cy = min (cells - 1) (int_of_float (ys.(i) *. float_of_int cells)) in
    (cx * cells) + cy
  in
  let ncell = cells * cells in
  let count = Array.make (ncell + 1) 0 in
  for i = 0 to n - 1 do
    let c = cell_of i in
    count.(c + 1) <- count.(c + 1) + 1
  done;
  for c = 1 to ncell do
    count.(c) <- count.(c) + count.(c - 1)
  done;
  let members = Array.make n 0 in
  let cursor = Array.sub count 0 ncell in
  for i = 0 to n - 1 do
    let c = cell_of i in
    members.(cursor.(c)) <- i;
    cursor.(c) <- cursor.(c) + 1
  done;
  let r2 = radius *. radius in
  let edges = ref [] in
  let consider i j =
    (* only j > i, so each pair is emitted once *)
    if j > i then begin
      let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
      if (dx *. dx) +. (dy *. dy) <= r2 then
        edges := { Ugraph.u = i; v = j; p = 0.5 } :: !edges
    end
  in
  for i = 0 to n - 1 do
    let c = cell_of i in
    let cx = c / cells and cy = c mod cells in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        let nx = cx + dx and ny = cy + dy in
        if nx >= 0 && nx < cells && ny >= 0 && ny < cells then begin
          let nc = (nx * cells) + ny in
          for s = count.(nc) to count.(nc + 1) - 1 do
            consider i members.(s)
          done
        end
      done
    done
  done;
  Ugraph.create ~n (List.rev !edges)

let preferential_attachment_large ~seed ~n ~edges_per_vertex =
  if n < 2 || edges_per_vertex < 1 then
    invalid_arg "Generators.preferential_attachment_large: bad parameters";
  let rng = Prng.create seed in
  let n_endpoints = ref 2 in
  let endpoint_arr = Array.make ((2 * n * edges_per_vertex) + 4) 0 in
  endpoint_arr.(0) <- 0;
  endpoint_arr.(1) <- 1;
  (* Packed int pair keys: ids fit 31 bits well past 10^6 vertices, so
     dedup hashes a machine word instead of a boxed tuple. Edges keep
     first-occurrence (= generation) order — no final sort. *)
  let seen : (int, unit) Hashtbl.t = Hashtbl.create (n * edges_per_vertex) in
  let edges = ref [ { Ugraph.u = 0; v = 1; p = 0.5 } ] in
  Hashtbl.add seen 1 (* pack 0 1 *) ();
  for v = 2 to n - 1 do
    for _ = 1 to edges_per_vertex do
      let target = endpoint_arr.(Prng.int rng !n_endpoints) in
      if target <> v then begin
        let key =
          if v < target then (v lsl 31) lor target else (target lsl 31) lor v
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          edges := { Ugraph.u = v; v = target; p = 0.5 } :: !edges
        end;
        (* endpoint slots accrue per attachment draw, duplicate or not,
           matching the classic repeated-endpoints degree bias *)
        endpoint_arr.(!n_endpoints) <- v;
        endpoint_arr.(!n_endpoints + 1) <- target;
        n_endpoints := !n_endpoints + 2
      end
    done
  done;
  Ugraph.create ~n (List.rev !edges)

let random_terminals ~seed g ~k =
  let n = Ugraph.n_vertices g in
  if k > n then invalid_arg "Generators.random_terminals: k exceeds vertices";
  let rng = Prng.create seed in
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  Array.to_list (Array.sub perm 0 k)
