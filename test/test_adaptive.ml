(* The sequential-stopping drivers (lib/adaptive). The contracts under
   test: the stopped interval is valid (never the zero-width Wald
   collapse at 0 hits), the stopping rule respects both the width
   target and the sample cap, and the whole run is replayable — for a
   fixed seed the result is bit-identical at every jobs value, and a
   stratified plan's per-stratum account depends only on the totals
   drawn, not on how rounds partition them. *)

open Testutil
module A = Adaptive
module S = Netrel.S2bdd
module D = Workload.Datasets

let karate () = (D.karate ~seed:1 ()).D.graph

let same_result msg (a : A.result) (b : A.result) =
  Alcotest.(check (float 0.)) (msg ^ ": value") a.A.value b.A.value;
  Alcotest.(check (float 0.)) (msg ^ ": lower") a.A.lower b.A.lower;
  Alcotest.(check (float 0.)) (msg ^ ": upper") a.A.upper b.A.upper;
  Alcotest.(check int) (msg ^ ": samples_used") a.A.samples_used b.A.samples_used;
  Alcotest.(check int) (msg ^ ": rounds") a.A.rounds b.A.rounds;
  Alcotest.(check bool) (msg ^ ": stop") true (a.A.stop = b.A.stop)

(* fig1 at ci_width 0.01 needs ~25k samples: a genuinely multi-round
   run, so the jobs sweep exercises mid-schedule chunk boundaries. *)
let t_mc_jobs_bit_identical () =
  let g = fig1 () in
  let run jobs =
    A.monte_carlo ~seed:7 ~jobs g ~terminals:[ 0; 4 ] ~ci_width:0.01
  in
  let r1 = run 1 in
  Alcotest.(check bool) "multi-round" true (r1.A.rounds >= 2);
  same_result "jobs 2" r1 (run 2);
  same_result "jobs 8" r1 (run 8)

let t_ht_jobs_bit_identical () =
  let g = fig1 () in
  let run jobs =
    A.horvitz_thompson ~seed:7 ~jobs g ~terminals:[ 0; 4 ] ~ci_width:0.01
  in
  let r1 = run 1 in
  same_result "jobs 2" r1 (run 2);
  same_result "jobs 8" r1 (run 8)

let t_width_reached () =
  let g = fig1 () in
  let r = A.monte_carlo ~seed:3 g ~terminals:[ 0; 4 ] ~ci_width:0.02 in
  Alcotest.(check bool) "stop reason" true (r.A.stop = A.Width_reached);
  Alcotest.(check bool) "width met" true (r.A.upper -. r.A.lower <= 0.02);
  Alcotest.(check bool) "value inside interval" true
    (r.A.lower <= r.A.value && r.A.value <= r.A.upper);
  check_close "realised width recorded" (r.A.upper -. r.A.lower) r.A.ci_width

let t_max_samples_cap () =
  let g = fig1 () in
  let r =
    A.monte_carlo ~seed:3 g ~terminals:[ 0; 4 ] ~ci_width:1e-4
      ~max_samples:10_000
  in
  Alcotest.(check bool) "stop reason" true (r.A.stop = A.Budget_exhausted);
  Alcotest.(check int) "cap spent exactly" 10_000 r.A.samples_used;
  Alcotest.(check bool) "target missed" true (r.A.ci_width > 1e-4)

(* The regression the PR fixes: 0 observed hits used to yield the
   degenerate Wald interval [v, v] — the stopping rule would have
   declared victory after one round at any target. Wilson keeps the
   upper bound away from 0, on the fixed path and the adaptive one. *)
let t_zero_hit_interval () =
  let g = graph ~n:2 [ (0, 1, 0.) ] in
  let e = Mcsampling.monte_carlo ~seed:1 g ~terminals:[ 0; 1 ] ~samples:500 in
  let lo, hi = Mcsampling.interval e in
  Alcotest.(check (float 0.)) "fixed path: 0-hit value" 0. e.Mcsampling.value;
  Alcotest.(check (float 0.)) "fixed path: 0-hit lower" 0. lo;
  Alcotest.(check bool) "fixed path: 0-hit upper > 0" true (hi > 0.);
  let r = A.monte_carlo ~seed:1 g ~terminals:[ 0; 1 ] ~ci_width:0.5 in
  Alcotest.(check (float 0.)) "adaptive: 0-hit lower" 0. r.A.lower;
  Alcotest.(check bool) "adaptive: 0-hit upper > 0" true (r.A.upper > 0.);
  Alcotest.(check bool) "adaptive: stopped on width" true
    (r.A.stop = A.Width_reached)

(* Per-stratum streams advance by totals only: drawing 3 then 2 from a
   plan must land exactly where one draw of 5 does. This is what makes
   the Neyman round schedule (and domain placement) irrelevant to the
   final account. *)
let t_plan_split_draws () =
  let g = karate () in
  (* A tight width keeps the plan at test scale (a few hundred strata,
     not the 200k a width-10k construction leaves on karate). *)
  let prepare () =
    match
      S.prepare ~config:{ S.default_config with S.seed = 11; S.width = 64 } g
        ~terminals:[ 0; 33 ]
    with
    | S.Sampling plan -> plan
    | S.Exact _ -> Alcotest.fail "expected a sampling plan on karate"
  in
  let p1 = prepare () and p2 = prepare () in
  let k = S.n_strata p1 in
  Alcotest.(check bool) "plan has strata" true (k > 0);
  Alcotest.(check int) "same construction" k (S.n_strata p2);
  for i = 0 to k - 1 do
    S.draw_stratum p1 i ~n:5;
    S.draw_stratum p2 i ~n:3;
    S.draw_stratum p2 i ~n:2;
    Alcotest.(check int) "drawn" (S.stratum_drawn p1 i) (S.stratum_drawn p2 i);
    Alcotest.(check int) "hits" (S.stratum_hits p1 i) (S.stratum_hits p2 i)
  done

let t_reliability_jobs_bit_identical () =
  let g = karate () in
  let run jobs =
    A.reliability
      ~config:{ S.default_config with S.seed = 5; S.width = 64 }
      ~jobs g ~terminals:[ 0; 33 ] ~ci_width:0.02
  in
  let r1 = run 1 in
  Alcotest.(check bool) "stop reason" true (r1.A.stop = A.Width_reached);
  Alcotest.(check bool) "width met" true (r1.A.ci_width <= 0.02);
  same_result "jobs 2" r1 (run 2);
  same_result "jobs 4" r1 (run 4)

let t_validation () =
  let g = fig1 () in
  Alcotest.check_raises "ci_width = 0 rejected"
    (Invalid_argument "Adaptive: ci_width must be in (0, 1)") (fun () ->
      ignore (A.monte_carlo g ~terminals:[ 0; 4 ] ~ci_width:0.));
  Alcotest.check_raises "ci_width >= 1 rejected"
    (Invalid_argument "Adaptive: ci_width must be in (0, 1)") (fun () ->
      ignore (A.horvitz_thompson g ~terminals:[ 0; 4 ] ~ci_width:1.));
  Alcotest.check_raises "max_samples < 1 rejected"
    (Invalid_argument "Adaptive: max_samples < 1") (fun () ->
      ignore (A.reliability g ~terminals:[ 0; 4 ] ~ci_width:0.1 ~max_samples:0))

let suite =
  ( "adaptive",
    [
      Alcotest.test_case "mc: bit-identical across jobs" `Quick
        t_mc_jobs_bit_identical;
      Alcotest.test_case "ht: bit-identical across jobs" `Quick
        t_ht_jobs_bit_identical;
      Alcotest.test_case "mc: stops at the width target" `Quick t_width_reached;
      Alcotest.test_case "mc: stops at the sample cap" `Quick t_max_samples_cap;
      Alcotest.test_case "0-hit interval regression" `Quick t_zero_hit_interval;
      Alcotest.test_case "plan: split draws equal one draw" `Quick
        t_plan_split_draws;
      Alcotest.test_case "pro: bit-identical across jobs" `Quick
        t_reliability_jobs_bit_identical;
      Alcotest.test_case "validation" `Quick t_validation;
    ] )
