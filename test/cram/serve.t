`netrel serve` answers reliability queries over a line protocol on
stdin/stdout: one compact stats document per query, `stats` for the
engine cache summary, `quit` (or EOF) to stop. Errors answer with an
{"error": ...} document and keep the server alive. NETREL_FAKE_CLOCK
pins the observer clock, so the session transcript is byte-stable.

  $ export NETREL_FAKE_CLOCK=1
  $ cat > g.txt << 'EOF'
  > 4
  > 0 1 0.9
  > 1 2 0.8
  > 2 3 0.7
  > EOF

A session: the same query twice (the repeat is a memo hit), a sampling
query, two malformed lines, the cache summary, quit:

  $ printf '%s\n' \
  >   "t=0,3" \
  >   "t=0,3" \
  >   "# a comment" \
  >   "" \
  >   "t=0,3 m=sampling-mc s=1000 seed=5" \
  >   "t=0,99" \
  >   "bogus" \
  >   "stats" \
  >   "quit" | netrel serve -g g.txt
  {"netrel":{"emitter":"netrel","schema":2},"run":{"command":"serve","method":"pro","graph":"g.txt","terminals":[0,3],"seed":1,"jobs":1,"samples":10000,"width":10000,"seconds":0.0},"preprocess":{"bridges":3,"decompose":{"seconds":0.0,"count":1},"final_edges":0,"gc":{"compactions":0,"major_collections":0,"major_words":0,"minor_collections":0,"minor_words":0,"promoted_words":0,"top_heap_words":0.0},"original_edges":3,"original_vertices":4,"outcome":"reduced","prune":{"seconds":0.0,"count":1},"pruned_edges":3,"pruned_vertices":4,"reduction_ratio":0.0,"subproblems":0,"transform":{"seconds":0.0,"count":1},"transform_rounds":0},"construction":{},"sampling":{},"adaptive":{},"par":{"batches":0,"tasks":0},"gc":{"compactions":0,"major_collections":0,"major_words":0,"minor_collections":0,"minor_words":0,"promoted_words":0,"top_heap_words":0.0},"result":{"value":0.504,"lower":0.504,"upper":0.504,"exact":true,"s_given":10000,"s_reduced":0,"samples_drawn":0,"subproblems":0}}
  {"netrel":{"emitter":"netrel","schema":2},"run":{"command":"serve","method":"pro","graph":"g.txt","terminals":[0,3],"seed":1,"jobs":1,"samples":10000,"width":10000,"seconds":0.0},"preprocess":{"bridges":3,"decompose":{"seconds":0.0,"count":1},"final_edges":0,"gc":{"compactions":0,"major_collections":0,"major_words":0,"minor_collections":0,"minor_words":0,"promoted_words":0,"top_heap_words":0.0},"original_edges":3,"original_vertices":4,"outcome":"reduced","prune":{"seconds":0.0,"count":1},"pruned_edges":3,"pruned_vertices":4,"reduction_ratio":0.0,"subproblems":0,"transform":{"seconds":0.0,"count":1},"transform_rounds":0},"construction":{},"sampling":{},"adaptive":{},"par":{"batches":0,"tasks":0},"gc":{"compactions":0,"major_collections":0,"major_words":0,"minor_collections":0,"minor_words":0,"promoted_words":0,"top_heap_words":0.0},"result":{"value":0.504,"lower":0.504,"upper":0.504,"exact":true,"s_given":10000,"s_reduced":0,"samples_drawn":0,"subproblems":0}}
  {"netrel":{"emitter":"netrel","schema":2},"run":{"command":"serve","method":"sampling-mc","graph":"g.txt","terminals":[0,3],"seed":5,"jobs":1,"samples":1000,"width":10000,"seconds":0.0},"preprocess":{},"construction":{},"sampling":{"chunk":{"seconds":0.0,"count":1},"connectivity_checks":1000,"estimator":"mc","gc":{"compactions":0,"major_collections":0,"major_words":0,"minor_collections":0,"minor_words":0,"promoted_words":0,"top_heap_words":0.0},"hist":{"chunk_ns":{"count":1,"max":0,"p50":0,"p90":0,"p99":0,"buckets":[[0,1]]},"early_exit_depth":{"count":1000,"max":3,"p50":3,"p90":3,"p99":3,"buckets":[[0,4],[1,99],[2,386],[3,511]]}},"hits":511,"kernel":{"elapsed":{"seconds":0.0,"count":1},"mode":"flat","samples":1000,"samples_per_sec":0.0},"samples":1000,"total":{"seconds":0.0,"count":1},"wald_variance":0.000249879},"adaptive":{},"par":{"batches":1,"tasks":1},"gc":{"compactions":0,"major_collections":0,"major_words":0,"minor_collections":0,"minor_words":0,"promoted_words":0,"top_heap_words":0.0},"result":{"value":0.511,"lower":0.4800343958421962,"upper":0.54188141238890331,"samples_used":1000,"hits":511,"distinct":0,"variance_estimate":0.000249879,"jobs_used":1,"chunks":1}}
  {"error":"--terminals: vertex 99 outside [0,4)"}
  {"error":"bad query token \"bogus\" (expected key=value)"}
  {"engine":{"queries":3,"digest_from_header":0,"graph.hit":2,"graph.miss":1,"csr.hit":0,"csr.miss":1,"prep.hit":0,"prep.miss":1,"result.hit":1,"result.miss":2,"artifact.hit":0,"artifact.miss":0}}
