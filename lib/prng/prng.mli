(** Deterministic, splittable pseudo-random number generation.

    Every randomised component of the library (samplers, workload
    generators, probability assignment) draws from this module so that a
    single integer seed reproduces an entire experiment bit-for-bit.

    The generator is xoshiro256** (Blackman & Vigna), seeded through
    SplitMix64; both implemented here from scratch on [int64].  States are
    mutable and not thread-safe; use {!split} to derive independent
    streams for parallel or structurally separate uses. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed via
    SplitMix64 expansion. Equal seeds give equal streams. *)

val split : t -> t
(** [split g] derives a new generator whose future output is independent
    of [g]'s (distinct SplitMix64 re-seeding), advancing [g]. *)

val copy : t -> t
(** Duplicate the current state; both copies then produce the same
    stream. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val float : t -> float
(** Uniform in [[0, 1)] with 53 random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)] (rejection sampling,
    unbiased). @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to
    [[0, 1]]). *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform in [[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index g ws] samples index [i] with probability
    [ws.(i) / sum ws] by linear scan. Weights must be non-negative with a
    positive sum. @raise Invalid_argument otherwise. *)

(** Word-parallel Bernoulli draws for the bit-sliced sampling kernel:
    62 worlds per native int, one bit-lane per world (the lane count
    matches [Hash64.word_bits] so lane masks pack like content-hash
    words). Draws are exact — each lane's marginal is exactly [p], with
    lanes independent — and cost an expected [~log2 62 + 2] generator
    words per call instead of 62 scalar {!bernoulli} draws. *)
module Bitbatch : sig
  val lanes : int
  (** Worlds per word: [62]. *)

  val all : int
  (** The full lane mask [(1 lsl lanes) - 1]. *)

  val draw : t -> float -> int
  (** [draw g p] returns a word whose bit [l] is an independent
      Bernoulli([p]) outcome for lane [l]. Consumes a data-dependent
      number of generator words (replayable: rerunning on a {!copy} of
      the state consumes the identical stream). Like {!bernoulli},
      clamps [p] to [[0, 1]] and consumes nothing for [p <= 0] /
      [p >= 1]. *)

  val bernoulli_lane : t -> lane:int -> float -> bool
  (** [bernoulli_lane g ~lane p] is the scalar replay of lane [lane]:
      it runs the identical word-parallel draw on [g] (keeping [g]
      stream-synchronised with a batch draw from the same state) and
      returns that lane's bit. This is the per-world reference the
      differential tests replay a slab against.
      @raise Invalid_argument unless [0 <= lane < lanes]. *)

  val popcount : int -> int
  (** Number of set bits (verdict-mask accounting). *)
end

module Alias : sig
  (** Walker alias tables: O(n) build, O(1) weighted sampling, used by
      the stratified sampler when one stratum is drawn many times. *)

  type table

  val build : float array -> table
  (** @raise Invalid_argument on negative weights or a non-positive
      sum. *)

  val sample : t -> table -> int
  val size : table -> int
end
