(** Synthetic graph generators reproducing the topology classes of the
    paper's Table 2 datasets (DESIGN.md §5 documents each
    substitution). All generators are deterministic in [seed] and return
    a connected graph (the largest component, relabelled). *)

val largest_component : Ugraph.t -> Ugraph.t
(** Restrict to the largest connected component, vertices renumbered. *)

val preferential_attachment :
  seed:int -> n:int -> edges_per_vertex:int -> Ugraph.t * int array
(** Barabási–Albert-style coauthorship topology with collaboration
    multiplicities: each arriving vertex attaches [edges_per_vertex]
    times to degree-biased targets; repeat attachments raise an edge's
    multiplicity [alpha] instead of creating parallels. Returns the
    graph (placeholder probability 0.5 on every edge — assign with
    {!Probability.coauthor}) and per-edge multiplicities. *)

val grid_road :
  seed:int -> rows:int -> cols:int -> keep:float -> Ugraph.t * float array
(** Road-network topology: a [rows * cols] grid whose edges survive with
    probability [keep] (plus a random spanning tree to stay connected),
    giving the low average degree (~2.3–2.5) of the paper's Tokyo/NYC
    datasets. Returns per-edge road lengths (perturbed unit lengths).
    Probabilities are placeholders; assign with {!Probability.road}. *)

val power_law :
  seed:int -> n:int -> target_edges:int -> exponent:float -> Ugraph.t
(** Chung–Lu-style protein-interaction topology: endpoints drawn
    proportionally to Zipf([exponent]) weights until [target_edges]
    distinct edges exist, yielding the heavy-tailed, high-average-degree
    shape of Hit-direct. Placeholder probabilities. *)

val bipartite_affiliation :
  seed:int -> people:int -> groups:int -> memberships:int -> Ugraph.t
(** Affiliation network (people x organisations) with skewed group
    sizes, the American-Revolution topology class: sparse and tree-like
    after 2-edge-component contraction. Placeholder probabilities. *)

val random_terminals : seed:int -> Ugraph.t -> k:int -> int list
(** [k] distinct uniformly random vertices (the paper's terminal
    selection). @raise Invalid_argument if [k] exceeds the vertex
    count. *)
