open Testutil
module Poly = Bddbase.Polynomial
module BF = Bddbase.Bruteforce

let brute_counts g ~terminals =
  let m = Ugraph.n_edges g in
  let counts = Array.make (m + 1) 0. in
  let dsu = Dsu.create (Ugraph.n_vertices g) in
  let present = Array.make m false in
  (match terminals with
  | [] | [ _ ] ->
    for mask = 0 to (1 lsl m) - 1 do
      let j = ref 0 in
      for i = 0 to m - 1 do
        if mask land (1 lsl i) <> 0 then incr j
      done;
      counts.(!j) <- counts.(!j) +. 1.
    done
  | ts ->
    for mask = 0 to (1 lsl m) - 1 do
      let j = ref 0 in
      for i = 0 to m - 1 do
        if mask land (1 lsl i) <> 0 then begin
          present.(i) <- true;
          incr j
        end
        else present.(i) <- false
      done;
      if Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present ts then
        counts.(!j) <- counts.(!j) +. 1.
    done);
  counts

let compute g ~terminals =
  match Poly.compute g ~terminals with
  | Ok poly -> poly
  | Error (`Node_budget_exceeded n) -> Alcotest.failf "budget at %d" n

let t_path_counts () =
  (* Path 0-1-2-3, terminals at the ends: only the full 3-edge subgraph
     connects them. *)
  let poly = compute (path4 0.9) ~terminals:[ 0; 3 ] in
  Alcotest.(check (array (float 0.))) "N" [| 0.; 0.; 0.; 1. |] poly.Poly.counts

let t_cycle_counts () =
  (* Cycle, opposite terminals: both 3-edge paths work (4 of them?) -
     check against brute force. *)
  let g = cycle4 0.5 in
  let poly = compute g ~terminals:[ 0; 2 ] in
  Alcotest.(check (array (float 1e-9))) "N matches brute force"
    (brute_counts g ~terminals:[ 0; 2 ])
    poly.Poly.counts

let t_single_terminal () =
  let poly = compute (path4 0.5) ~terminals:[ 1 ] in
  Alcotest.(check (array (float 0.))) "binomials" [| 1.; 3.; 3.; 1. |] poly.Poly.counts

let t_separated_terminals () =
  let g = graph ~n:4 [ (0, 1, 0.5); (2, 3, 0.5) ] in
  let poly = compute g ~terminals:[ 0; 3 ] in
  Alcotest.(check (array (float 0.))) "all zero" [| 0.; 0.; 0. |] poly.Poly.counts

let t_eval_matches_reliability () =
  List.iter
    (fun p ->
      let g = fig1 ~p () in
      let ts = [ 0; 3; 4 ] in
      let poly = compute g ~terminals:ts in
      check_close ~eps:1e-9
        (Printf.sprintf "R(%.1f)" p)
        (BF.reliability g ~terminals:ts)
        (Poly.eval poly p))
    [ 0.0; 0.1; 0.5; 0.7; 1.0 ]

let t_connected_subgraphs () =
  let g = fig1 ~p:0.5 () in
  let ts = [ 0; 3; 4 ] in
  let poly = compute g ~terminals:ts in
  check_close "2^m * R(1/2)"
    (BF.reliability g ~terminals:ts *. float_of_int (1 lsl 6))
    (Poly.connected_subgraphs poly)

let t_eval_validation () =
  let poly = compute (path4 0.5) ~terminals:[ 0; 3 ] in
  Alcotest.check_raises "p > 1" (Invalid_argument "Polynomial.eval: p outside [0,1]")
    (fun () -> ignore (Poly.eval poly 1.5))

let prop_counts_match_bruteforce =
  QCheck.Test.make ~name:"polynomial coefficients = brute force" ~count:150
    (Test_bddbase.arb_graph_ts ~max_n:7 ~max_m:10 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let poly = compute g ~terminals:ts in
      let expect = brute_counts g ~terminals:ts in
      Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-6) expect poly.Poly.counts)

let prop_eval_matches_uniform_reliability =
  QCheck.Test.make ~name:"polynomial eval = reliability at uniform p" ~count:100
    QCheck.(pair (Test_bddbase.arb_graph_ts ~max_n:7 ~max_m:10 ~max_k:3)
              (float_bound_inclusive 1.))
    (fun ((n, es, ts), p) ->
      let g0 = graph ~n es in
      let g = Ugraph.map_probs (fun _ _ -> p) g0 in
      let poly = compute g ~terminals:ts in
      Float.abs (Poly.eval poly p -. BF.reliability g ~terminals:ts) <= 1e-9)

let suite =
  ( "polynomial",
    [
      Alcotest.test_case "path coefficients" `Quick t_path_counts;
      Alcotest.test_case "cycle coefficients" `Quick t_cycle_counts;
      Alcotest.test_case "single terminal" `Quick t_single_terminal;
      Alcotest.test_case "separated terminals" `Quick t_separated_terminals;
      Alcotest.test_case "eval = reliability" `Quick t_eval_matches_reliability;
      Alcotest.test_case "connected subgraph count" `Quick t_connected_subgraphs;
      Alcotest.test_case "eval validation" `Quick t_eval_validation;
    ]
    @ qtests [ prop_counts_match_bruteforce; prop_eval_matches_uniform_reliability ] )
