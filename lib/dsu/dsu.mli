(** Union–find (disjoint set union) over the integers [[0, n)].

    Uses path halving and union by rank: effectively O(alpha(n)) per
    operation.  The structure is mutable; {!reset} restores the initial
    all-singletons state in O(n), which lets the Monte-Carlo samplers
    reuse one allocation across hundreds of thousands of samples. *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets [{0}, ..., {n-1}].
    @raise Invalid_argument if [n < 0]. *)

val size : t -> int
(** Number of elements (not sets). *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merge two sets; returns [true] iff they were previously distinct. *)

val connected : t -> int -> int -> bool

val component_size : t -> int -> int
(** Number of elements in the element's set. *)

val count_sets : t -> int
(** Current number of disjoint sets. O(1). *)

val reset : t -> unit
(** Restore every element to its own singleton set. *)

val all_connected : t -> int list -> bool
(** [all_connected t vs] is [true] iff all of [vs] lie in one set
    (vacuously true for [[]] and singletons). *)
