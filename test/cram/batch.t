Amortized multi-query answering: `netrel batch FILE` serves every query
line through one engine, so the graph context, the sampling snapshot and
each terminal set's preprocessing are built once and repeated queries
replay memoized results bit-for-bit. NETREL_FAKE_CLOCK pins the observer
clock to 0, making the whole output byte-stable.

  $ export NETREL_FAKE_CLOCK=1

A 16-query workload: 4 distinct queries, each repeated 4 times.

  $ { for i in 1 2 3 4; do
  >     echo "t=0,33"
  >     echo "t=0,33 m=sampling-mc s=2000"
  >     echo "t=0,16,33 ci-width=0.02"
  >     echo "t=0,33 m=sampling-ht s=2000"
  >   done; } > queries.txt
  $ netrel batch --dataset karate --jobs 1 queries.txt > batch.out
  $ grep -c '"command": "batch"' batch.out
  16

Every repeat replays its memoized answer, so the 16 documents carry
exactly 4 distinct estimates:

  $ grep '"value"' batch.out | sort | uniq -c | sed 's/^ *//'
  4     "value": 0.42771268176338273,
  4     "value": 0.99338967833331171,
  4     "value": 0.999,
  4     "value": 0.99900000000114042,

The closing summary proves the amortization: the graph context and Csr
miss once, preprocessing runs once per distinct terminal set, and 12 of
16 queries are memo hits:

  $ sed -n '/"engine"/,$p' batch.out
    "engine": {
      "queries": 16,
      "digest_from_header": 0,
      "graph.hit": 15,
      "graph.miss": 1,
      "csr.hit": 1,
      "csr.miss": 1,
      "prep.hit": 0,
      "prep.miss": 2,
      "result.hit": 12,
      "result.miss": 4,
      "artifact.hit": 0,
      "artifact.miss": 0
    }
  }

Byte-stable across runs:

  $ netrel batch --dataset karate --jobs 1 queries.txt > batch2.out
  $ cmp batch.out batch2.out

Comments and blank lines are skipped; a bad query line dies with a
message:

  $ printf '# header\n\nt=0,99\n' > bad.txt
  $ netrel batch --dataset karate bad.txt
  netrel: --terminals: vertex 99 outside [0,34)
  [2]
