(* Properties of the binomial interval estimators (lib/stats), plus the
   sample-variance and monotonic-clock fixes that shipped with them.
   The load-bearing property is the 0-hit regression: the legacy Wald
   interval collapses to zero width at phat in {0, 1} — exactly the
   regime of reliable graphs — while Wilson and Agresti-Coull must not. *)

open Testutil
module R = Relstats

let arb_phat_n =
  QCheck.(pair (float_bound_inclusive 1.) (int_range 1 100_000))

let q_bounds =
  QCheck.Test.make ~name:"interval: bounds ordered and clamped into [0,1]"
    ~count:500 arb_phat_n (fun (phat, n) ->
      List.for_all
        (fun m ->
          let lo, hi = R.interval m ~phat ~n in
          0. <= lo && lo <= hi && hi <= 1.)
        [ R.Wald; R.Wilson; R.Agresti_coull ])

let q_wilson_contains =
  QCheck.Test.make ~name:"wilson: interval contains phat" ~count:500 arb_phat_n
    (fun (phat, n) ->
      let lo, hi = R.interval R.Wilson ~phat ~n in
      lo <= phat && phat <= hi)

let q_wilson_shrinks =
  QCheck.Test.make ~name:"wilson: width strictly decreasing in n" ~count:300
    arb_phat_n (fun (phat, n) ->
      let width n =
        let lo, hi = R.interval R.Wilson ~phat ~n in
        hi -. lo
      in
      width (4 * n) < width n)

let q_wilson_wald_agree =
  QCheck.Test.make ~name:"wilson: agrees with wald away from the edges"
    ~count:100
    QCheck.(float_range 0.2 0.8)
    (fun phat ->
      let n = 1_000_000 in
      let wl, wh = R.interval R.Wilson ~phat ~n in
      let al, ah = R.interval R.Wald ~phat ~n in
      Float.abs (wl -. al) < 1e-4 && Float.abs (wh -. ah) < 1e-4)

let q_zero_hits_width =
  QCheck.Test.make
    ~name:"wilson/ac: nonzero width at 0 and n hits (wald regression)"
    ~count:200
    QCheck.(int_range 1 1_000_000)
    (fun n ->
      List.for_all
        (fun m ->
          let lo0, hi0 = R.interval m ~phat:0. ~n in
          let lo1, hi1 = R.interval m ~phat:1. ~n in
          (* The nonzero-width claim is the point; the degenerate bound
             itself is only pinned up to float rounding of the score
             quadratic (z^2/(n+z^2) >= 3.8e-6 for n <= 1e6). *)
          lo0 <= 1e-12 && hi0 >= 1e-7 && hi1 >= 1. -. 1e-12
          && lo1 <= 1. -. 1e-7)
        [ R.Wilson; R.Agresti_coull ])

(* Pin the bug the adaptive driver must never stop on: Wald at 0 hits
   claims a zero-width interval, Wilson reports the exact z^2/(n+z^2). *)
let t_wald_degenerate () =
  let n = 1_000 in
  let lo, hi = R.interval R.Wald ~phat:0. ~n in
  Alcotest.(check (float 0.)) "wald lower" 0. lo;
  Alcotest.(check (float 0.)) "wald upper (degenerate)" 0. hi;
  let z = R.default_z in
  let wlo, whi = R.interval R.Wilson ~phat:0. ~n in
  Alcotest.(check (float 0.)) "wilson lower" 0. wlo;
  check_close "wilson upper = z^2/(n+z^2)"
    (z *. z /. (float_of_int n +. (z *. z)))
    whi

let t_interval_validation () =
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Relstats.interval: n < 1") (fun () ->
      ignore (R.interval R.Wilson ~phat:0.5 ~n:0));
  (* phat is clamped, not rejected: the HT estimator can overshoot 1. *)
  let lo, hi = R.interval R.Wilson ~phat:1.7 ~n:100 in
  let lo1, hi1 = R.interval R.Wilson ~phat:1. ~n:100 in
  Alcotest.(check (float 0.)) "overshoot = clamped phat, lower" lo1 lo;
  Alcotest.(check (float 0.)) "overshoot = clamped phat, upper" hi1 hi;
  Alcotest.(check bool) "upper at the edge" true (hi >= 1. -. 1e-12 && hi <= 1.)

let t_std_dev_sample () =
  (* n-1 divisor: [|1; 3|] has sample variance 2, not population 1. *)
  check_close "two obs" (sqrt 2.) (R.std_dev [| 1.; 3. |]);
  check_close "single obs reports 0" 0. (R.std_dev [| 42. |])

let t_time_monotonic () =
  let t1 = R.now_monotonic () in
  let t2 = R.now_monotonic () in
  Alcotest.(check bool) "clock never steps back" true (t2 >= t1);
  let (), dt = R.time (fun () -> ignore (Sys.opaque_identity (Array.make 64 0))) in
  Alcotest.(check bool) "elapsed non-negative" true (dt >= 0.);
  let (), dm = R.time_median ~repeats:3 (fun () -> ()) in
  Alcotest.(check bool) "median elapsed non-negative" true (dm >= 0.)

let suite =
  ( "stats",
    Alcotest.test_case "interval: wald degenerate vs wilson" `Quick
      t_wald_degenerate
    :: Alcotest.test_case "interval: validation and clamping" `Quick
         t_interval_validation
    :: Alcotest.test_case "std_dev: sample estimator" `Quick t_std_dev_sample
    :: Alcotest.test_case "time: monotonic clock" `Quick t_time_monotonic
    :: qtests
         [
           q_bounds;
           q_wilson_contains;
           q_wilson_shrinks;
           q_wilson_wald_agree;
           q_zero_hits_width;
         ] )
