type probability_scheme =
  [ `Uniform of int
  | `Coauthor
  | `Weight
  ]

type raw_edge = { a : int; b : int; weight : float option }

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '%' || line.[0] = '#' then None
  else begin
    let fields =
      String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
      |> List.filter (fun s -> s <> "")
    in
    let fail () =
      invalid_arg (Printf.sprintf "Konect: malformed line %d: %S" lineno line)
    in
    let int_of s = try int_of_string s with Failure _ -> fail () in
    let float_of s = try float_of_string s with Failure _ -> fail () in
    match fields with
    | [ a; b ] -> Some { a = int_of a; b = int_of b; weight = None }
    | [ a; b; w ] | [ a; b; w; _ ] ->
      Some { a = int_of a; b = int_of b; weight = Some (float_of w) }
    | _ -> fail ()
  end

let parse text ~scheme =
  let raw =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> parse_line (i + 1) line)
    |> List.filter_map Fun.id
  in
  (* Compact labels in first-appearance order. *)
  let ids = Hashtbl.create 1024 in
  let next = ref 0 in
  let id_of label =
    match Hashtbl.find_opt ids label with
    | Some i -> i
    | None ->
      let i = !next in
      Hashtbl.add ids label i;
      incr next;
      i
  in
  (* Merge duplicates, accumulating multiplicity and the last weight. *)
  let merged : (int * int, int * float option) Hashtbl.t = Hashtbl.create 1024 in
  let order = ref [] in
  List.iter
    (fun e ->
      let u = id_of e.a and v = id_of e.b in
      if u <> v then begin
        let key = if u < v then (u, v) else (v, u) in
        match Hashtbl.find_opt merged key with
        | Some (mult, w) ->
          Hashtbl.replace merged key
            (mult + 1, match e.weight with Some _ as w' -> w' | None -> w)
        | None ->
          Hashtbl.add merged key (1, e.weight);
          order := key :: !order
      end)
    raw;
  let keys = List.rev !order in
  let n = !next in
  if n = 0 then invalid_arg "Konect: no edges";
  let edge_of (u, v) p = { Ugraph.u; v; p } in
  match scheme with
  | `Uniform seed ->
    let rng = Prng.create seed in
    Ugraph.create ~n
      (List.map (fun key -> edge_of key (Float.max 1e-9 (Prng.float rng))) keys)
  | `Coauthor ->
    let alpha_max =
      List.fold_left
        (fun acc key -> max acc (fst (Hashtbl.find merged key)))
        1 keys
    in
    Ugraph.create ~n
      (List.map
         (fun key ->
           let mult, _ = Hashtbl.find merged key in
           edge_of key
             (Float.log (float_of_int mult +. 1.)
             /. Float.log (float_of_int alpha_max +. 2.)))
         keys)
  | `Weight ->
    Ugraph.create ~n
      (List.map
         (fun key ->
           match snd (Hashtbl.find merged key) with
           | Some w when 0. <= w && w <= 1. -> edge_of key w
           | Some w ->
             invalid_arg
               (Printf.sprintf "Konect: weight %g outside [0,1] for an edge" w)
           | None -> invalid_arg "Konect: `Weight scheme but no weight column")
         keys)

let load path ~scheme =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      parse buf ~scheme)
