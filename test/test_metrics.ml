(* The measurement layer (lib/metrics): histogram layout/merge algebra,
   GC delta accounting, the benchdiff regression gate, and the
   jobs-invariance of the histograms the samplers record. *)

open Testutil
module H = Metrics.Histogram
module Gcstat = Metrics.Gcstat
module J = Obs.Json
module B = Netrel.Benchdiff

(* ---- histogram unit behavior ---- *)

let t_basics () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check int) "empty max" 0 (H.max_value h);
  Alcotest.(check int) "empty quantile" 0 (H.quantile h 0.5);
  H.record h 0;
  H.record h 7;
  H.record h 1000;
  H.record h (-5);
  Alcotest.(check int) "count" 4 (H.count h);
  Alcotest.(check int) "max exact" 1000 (H.max_value h);
  (* Values below sub_count are bucketed exactly. *)
  Alcotest.(check int) "small values exact" 7 (H.quantile h 0.75);
  Alcotest.(check int) "negative clamps to 0" 0 (H.quantile h 0.25);
  H.record_n h 3 0;
  H.record_n h 3 (-2);
  Alcotest.(check int) "record_n <= 0 is a no-op" 4 (H.count h)

let t_bucket_mapping () =
  (* Exhaustive near the small/sub-bucketed boundary, then probes up the
     octaves: the bucket's lower bound never exceeds the value, and
     bucket indices are monotone in the value. *)
  let check v =
    let b = H.bucket_of v in
    Alcotest.(check bool)
      (Printf.sprintf "lower_bound (bucket_of %d) <= %d" v v)
      true
      (H.lower_bound b <= v);
    if v > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "bucket_of monotone at %d" v)
        true
        (H.bucket_of (v - 1) <= b)
  in
  for v = 0 to 4096 do check v done;
  let v = ref 1 in
  while !v < max_int / 4 do
    check !v;
    check (!v - 1);
    check (!v + 1);
    v := !v * 2
  done;
  (* Relative bucket error bound: lower_bound is within 1/16 of v. *)
  for i = 4 to 40 do
    let v = (1 lsl i) + (1 lsl (i - 2)) in
    let lb = H.lower_bound (H.bucket_of v) in
    Alcotest.(check bool)
      (Printf.sprintf "relative error at %d" v)
      true
      (float_of_int (v - lb) <= float_of_int v /. 16.)
  done

let hist_gen =
  QCheck.Gen.(
    list_size (int_bound 60) (oneof [ int_bound 100; int_bound 100_000_000 ]))

let hist_of_list vs =
  let h = H.create () in
  List.iter (H.record h) vs;
  h

let arb_values =
  QCheck.make ~print:QCheck.Print.(list int) hist_gen

let q_merge_commutative =
  QCheck.Test.make ~name:"histogram merge commutative" ~count:300
    (QCheck.pair arb_values arb_values)
    (fun (a, b) ->
      let ab = hist_of_list a and ba = hist_of_list b in
      H.merge ~into:ab (hist_of_list b);
      H.merge ~into:ba (hist_of_list a);
      H.equal ab ba)

let q_merge_associative =
  QCheck.Test.make ~name:"histogram merge associative" ~count:300
    (QCheck.triple arb_values arb_values arb_values)
    (fun (a, b, c) ->
      (* (a <- b) <- c  vs  a <- (b <- c) *)
      let left = hist_of_list a in
      H.merge ~into:left (hist_of_list b);
      H.merge ~into:left (hist_of_list c);
      let bc = hist_of_list b in
      H.merge ~into:bc (hist_of_list c);
      let right = hist_of_list a in
      H.merge ~into:right bc;
      H.equal left right)

let q_merge_is_concat =
  QCheck.Test.make ~name:"merge = histogram of concatenation" ~count:300
    (QCheck.pair arb_values arb_values)
    (fun (a, b) ->
      let m = hist_of_list a in
      H.merge ~into:m (hist_of_list b);
      H.equal m (hist_of_list (a @ b)))

let q_quantiles_monotone =
  QCheck.Test.make ~name:"quantiles monotone in q, q=1 <= max" ~count:300
    arb_values
    (fun vs ->
      let h = hist_of_list vs in
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let values = List.map (H.quantile h) qs in
      let rec mono = function
        | x :: (y :: _ as rest) -> x <= y && mono rest
        | _ -> true
      in
      mono values && H.quantile h 1.0 <= H.max_value h)

let q_counts_conserved =
  QCheck.Test.make ~name:"bucket counts sum to count" ~count:300 arb_values
    (fun vs ->
      let h = hist_of_list vs in
      List.fold_left (fun acc (_, c) -> acc + c) 0 (H.nonzero_buckets h)
      = H.count h
      && H.count h = List.length vs)

(* ---- GC accounting ---- *)

let t_gc_delta () =
  let before = Gcstat.snapshot () in
  (* Allocate enough to be visible in minor words whatever the GC did
     in between. *)
  let acc = ref [] in
  for i = 0 to 10_000 do acc := (i, float_of_int i) :: !acc done;
  ignore (Sys.opaque_identity !acc);
  let d = Gcstat.delta ~before ~after:(Gcstat.snapshot ()) in
  Alcotest.(check bool) "minor words grew" true (d.Gcstat.minor_words > 0);
  Alcotest.(check bool) "promoted >= 0" true (d.Gcstat.promoted_words >= 0);
  Alcotest.(check bool) "major >= 0" true (d.Gcstat.major_words >= 0);
  Alcotest.(check bool) "top heap positive" true (d.Gcstat.top_heap_words > 0);
  Alcotest.(check int) "zero delta" 0 Gcstat.zero.Gcstat.minor_words

(* ---- histogram JSON is jobs-invariant ---- *)

(* Under a constant clock every time-based histogram degenerates to
   bucket 0 and every count-based histogram (early-exit depth, dedup
   occupancy, round sizes, layer widths) depends only on the seed and
   the chunk layout — never on how chunks were spread over domains. So
   the rendered "hist" subtrees must be byte-identical at every jobs
   value. (GC deltas are real and machine-dependent here, hence not
   part of this comparison; the cram tests pin them via the fake
   clock, which zeroes them.) *)
let hists_rendered obs =
  let doc = Obs.to_json obs in
  List.map
    (fun section ->
      let h =
        Option.bind (J.member section doc) (J.member "hist")
        |> Option.value ~default:(J.Obj [])
      in
      (section, J.to_string h))
    [ "preprocess"; "construction"; "sampling"; "adaptive" ]

let karate () = (Workload.Datasets.karate ~seed:1 ()).Workload.Datasets.graph

let jobs_invariant name run () =
  let render jobs =
    let obs = Obs.create ~clock:(fun () -> 0.) () in
    run ~obs ~jobs;
    hists_rendered obs
  in
  let base = render 1 in
  List.iter
    (fun jobs ->
      List.iter2
        (fun (section, expected) (_, got) ->
          Alcotest.(check string)
            (Printf.sprintf "%s %s.hist at jobs=%d" name section jobs)
            expected got)
        base (render jobs))
    [ 2; 8 ]

let t_hist_jobs_invariant_mc =
  jobs_invariant "mc" (fun ~obs ~jobs ->
      ignore
        (Mcsampling.monte_carlo ~obs ~seed:5 ~jobs (karate ())
           ~terminals:[ 0; 33 ] ~samples:4_000))

let t_hist_jobs_invariant_ht =
  jobs_invariant "ht" (fun ~obs ~jobs ->
      ignore
        (Mcsampling.horvitz_thompson ~obs ~seed:5 ~jobs (karate ())
           ~terminals:[ 0; 33 ] ~samples:4_000))

let t_hist_jobs_invariant_pro =
  jobs_invariant "pro" (fun ~obs ~jobs ->
      let module S = Netrel.S2bdd in
      let config =
        { S.default_config with S.samples = 1_000; S.width = 64; S.seed = 5 }
      in
      ignore
        (Netrel.Reliability.estimate ~obs ~config ~jobs (karate ())
           ~terminals:[ 0; 33 ]))

(* The non-histogram early-exit plumbing: the sampler actually recorded
   per-sample union depths, and samples_per_sec is derived (not stored)
   so the document carries samples/elapsed, not a racy gauge. *)
let t_sampler_hist_contents () =
  let obs = Obs.create ~clock:(fun () -> 0.) () in
  ignore
    (Mcsampling.monte_carlo ~obs ~seed:5 ~jobs:2 (karate ())
       ~terminals:[ 0; 33 ] ~samples:4_000);
  Alcotest.(check int) "one depth per sample" 4_000
    (Obs.hist_count obs "sampling.hist.early_exit_depth");
  Alcotest.(check bool) "depth p99 positive" true
    (Obs.hist_quantile obs "sampling.hist.early_exit_depth" 0.99 > 0);
  Alcotest.(check bool) "chunk_ns histogram present" true
    (Obs.mem obs "sampling.hist.chunk_ns");
  Alcotest.(check bool) "no stored samples_per_sec gauge" false
    (Obs.mem obs "sampling.kernel.samples_per_sec");
  Alcotest.(check int) "kernel.samples counter" 4_000
    (Obs.counter_value obs "sampling.kernel.samples")

(* ---- benchdiff ---- *)

let bench_doc runs =
  J.Obj
    [ ("section", J.Str "t"); ("schema", J.Int 2); ("runs", J.List runs) ]

let bench_run ?(method_ = "m") ?(graph = "g") ?(extra = []) seconds =
  J.Obj
    ([ ( "run",
         J.Obj
           [ ("method", J.Str method_); ("graph", J.Str graph);
             ("seconds", J.Float seconds) ] ) ]
    @ extra)

let diff ?rel_tol ?mad_mult old_runs new_runs =
  match
    B.compare_docs ?rel_tol ?mad_mult ~old_doc:(bench_doc old_runs)
      ~new_doc:(bench_doc new_runs) ()
  with
  | Ok rep -> rep
  | Error msg -> Alcotest.failf "benchdiff unexpectedly failed: %s" msg

let t_benchdiff_gate () =
  (* 2x slowdown on run.seconds trips the default 25% gate... *)
  let rep = diff [ bench_run 0.2 ] [ bench_run 0.4 ] in
  Alcotest.(check int) "2x slowdown regresses" 1 rep.B.regressions;
  Alcotest.(check bool) "regressed" true (B.regressed rep);
  (* ... a 2x speedup is an improvement, not a regression ... *)
  let rep = diff [ bench_run 0.4 ] [ bench_run 0.2 ] in
  Alcotest.(check int) "speedup is no regression" 0 rep.B.regressions;
  Alcotest.(check int) "speedup is improvement" 1 rep.B.improvements;
  (* ... and sub-floor jitter never trips it, even at huge relative
     shift (5 ms -> 15 ms is 3x but under the 20 ms floor). *)
  let rep = diff [ bench_run 0.005 ] [ bench_run 0.015 ] in
  Alcotest.(check int) "sub-floor jitter ok" 0 rep.B.regressions

let t_benchdiff_median_mad () =
  (* Median of repeats: one outlier baseline run must not dominate. *)
  let olds = [ bench_run 0.2; bench_run 0.21; bench_run 5.0 ] in
  let rep = diff olds [ bench_run 0.22 ] in
  Alcotest.(check int) "median ignores outlier" 0 rep.B.regressions;
  (* A noisy baseline widens its own gate: these repeats have MAD 0.1,
     so 6 * MAD = 0.6 admits a shift the 25% rule alone would flag. *)
  let noisy = [ bench_run 0.4; bench_run 0.5; bench_run 0.6 ] in
  let rep = diff noisy [ bench_run 0.9 ] in
  Alcotest.(check int) "MAD widens tolerance" 0 rep.B.regressions;
  let rep = diff noisy [ bench_run 1.2 ] in
  Alcotest.(check int) "beyond MAD band regresses" 1 rep.B.regressions

let t_benchdiff_direction_and_groups () =
  let thr v =
    [ ( "sampling",
        J.Obj [ ("kernel", J.Obj [ ("samples_per_sec", J.Float v) ]) ] ) ]
  in
  (* Throughput is higher-better: halving it regresses, doubling is an
     improvement. *)
  let rep =
    diff
      [ bench_run ~extra:(thr 100000.) 0.1 ]
      [ bench_run ~extra:(thr 50000.) 0.1 ]
  in
  Alcotest.(check int) "throughput drop regresses" 1 rep.B.regressions;
  let rep =
    diff
      [ bench_run ~extra:(thr 50000.) 0.1 ]
      [ bench_run ~extra:(thr 100000.) 0.1 ]
  in
  Alcotest.(check int) "throughput gain ok" 0 rep.B.regressions;
  (* Groups present on only one side are reported, not compared. *)
  let rep =
    diff
      [ bench_run ~method_:"a" 0.1; bench_run ~method_:"gone" 0.1 ]
      [ bench_run ~method_:"a" 0.1; bench_run ~method_:"new" 0.1 ]
  in
  Alcotest.(check (list string)) "missing group" [ "gone/g" ]
    rep.B.missing_groups;
  Alcotest.(check (list string)) "new group" [ "new/g" ] rep.B.new_groups;
  (* Structurally unusable documents are errors, not reports. *)
  (match B.compare_docs ~old_doc:(J.Obj []) ~new_doc:(bench_doc []) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no-runs document must be rejected")

let suite =
  ( "metrics",
    [
      Alcotest.test_case "histogram basics" `Quick t_basics;
      Alcotest.test_case "bucket mapping" `Quick t_bucket_mapping;
      Alcotest.test_case "gc delta" `Quick t_gc_delta;
      Alcotest.test_case "hist jobs-invariant (mc)" `Slow
        t_hist_jobs_invariant_mc;
      Alcotest.test_case "hist jobs-invariant (ht)" `Slow
        t_hist_jobs_invariant_ht;
      Alcotest.test_case "hist jobs-invariant (pro)" `Slow
        t_hist_jobs_invariant_pro;
      Alcotest.test_case "sampler histogram contents" `Quick
        t_sampler_hist_contents;
      Alcotest.test_case "benchdiff gate" `Quick t_benchdiff_gate;
      Alcotest.test_case "benchdiff median/MAD" `Quick t_benchdiff_median_mad;
      Alcotest.test_case "benchdiff direction/groups" `Quick
        t_benchdiff_direction_and_groups;
    ]
    @ qtests
        [
          q_merge_commutative;
          q_merge_associative;
          q_merge_is_concat;
          q_quantiles_monotone;
          q_counts_conserved;
        ] )
