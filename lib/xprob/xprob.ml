(* Extended-range non-negative reals: value = m * 2^e with m in [0.5, 1)
   (or m = 0).  Invariant maintained by [norm] after every operation. *)

type t = { m : float; e : int }

let zero = { m = 0.; e = 0 }

let norm m e =
  if m = 0. then zero
  else
    let frac, ex = Float.frexp m in
    { m = frac; e = e + ex }

let one = norm 1. 0
let half = norm 0.5 0

let of_float x =
  if Float.is_nan x || x < 0. || x = Float.infinity then
    invalid_arg (Printf.sprintf "Xprob.of_float: %g" x)
  else norm x 0

let is_zero x = x.m = 0.

(* Doubles cover binary exponents roughly in [-1074, 1024]. *)
let to_float_approx x =
  if is_zero x then 0.
  else if x.e > 1024 then infinity
  else if x.e < -1080 then 0.
  else Float.ldexp x.m x.e

let to_float_exn x =
  let f = to_float_approx x in
  if f = infinity then invalid_arg "Xprob.to_float_exn: overflow" else f

let mul a b = if is_zero a || is_zero b then zero else norm (a.m *. b.m) (a.e + b.e)

let div a b =
  if is_zero b then raise Division_by_zero
  else if is_zero a then zero
  else norm (a.m /. b.m) (a.e - b.e)

let scale c x =
  if Float.is_nan c || c < 0. || c = Float.infinity then
    invalid_arg (Printf.sprintf "Xprob.scale: %g" c)
  else if c = 0. || is_zero x then zero
  else
    let frac, ex = Float.frexp c in
    norm (frac *. x.m) (x.e + ex)

(* Alignment beyond 54 bits makes the smaller operand vanish entirely. *)
let add a b =
  if is_zero a then b
  else if is_zero b then a
  else
    let hi, lo = if a.e >= b.e then (a, b) else (b, a) in
    let shift = lo.e - hi.e in
    if shift < -60 then hi else norm (hi.m +. Float.ldexp lo.m shift) hi.e

let compare a b =
  if is_zero a then if is_zero b then 0 else -1
  else if is_zero b then 1
  else if a.e <> b.e then Stdlib.compare a.e b.e
  else Stdlib.compare a.m b.m

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Relative tolerance for deciding that a negative difference is
   cancellation noise rather than a genuinely negative result. *)
let cancellation_ulps = 1e-9

let sub a b =
  if is_zero b then a
  else
    let c = compare a b in
    if c = 0 then zero
    else if c > 0 then
      let shift = b.e - a.e in
      if shift < -60 then a else norm (a.m -. Float.ldexp b.m shift) a.e
    else
      (* a < b: legitimate only within rounding noise of zero. *)
      let shift = a.e - b.e in
      let diff = b.m -. (if shift < -60 then 0. else Float.ldexp a.m shift) in
      if diff <= cancellation_ulps *. b.m then zero
      else invalid_arg "Xprob.sub: negative result"

let complement p =
  if is_zero p then one
  else if p.e > 0 || (p.e = 0 && p.m > 1.) then
    if p.e = 1 && p.m <= 0.5 +. cancellation_ulps then zero
    else invalid_arg "Xprob.complement: argument exceeds one"
  else sub one p

let rec pow_int x n =
  if n < 0 then invalid_arg "Xprob.pow_int: negative exponent"
  else if n = 0 then one
  else if n = 1 then x
  else
    let h = pow_int x (n / 2) in
    let h2 = mul h h in
    if n mod 2 = 0 then h2 else mul h2 x

let log2 x = if is_zero x then neg_infinity else Float.log2 x.m +. float_of_int x.e
let log10 x = log2 x *. 0.301029995663981195
let sum xs = List.fold_left add zero xs
let sum_array xs = Array.fold_left add zero xs

let mantissa_exponent x = (x.m, x.e)

let to_string x =
  if is_zero x then "0"
  else
    let l10 = log10 x in
    let e10 = int_of_float (Float.floor l10) in
    (* Mantissa in [1, 10): recover it from the residual log to avoid
       overflow when |e10| is huge. *)
    let m10 = Float.exp ((l10 -. float_of_int e10) *. Float.log 10.) in
    let m10, e10 = if m10 >= 10. then (m10 /. 10., e10 + 1) else (m10, e10) in
    if e10 >= -4 && e10 <= 15 then
      Printf.sprintf "%.10g" (m10 *. (10. ** float_of_int e10))
    else Printf.sprintf "%.6ge%d" m10 e10

let pp fmt x = Format.pp_print_string fmt (to_string x)

(* Comparison operators on [t]; defined last so that the integer
   comparisons above keep their Stdlib meaning. *)
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
