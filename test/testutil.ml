(* Shared helpers for the test suites. *)

let check_close ?(eps = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  if Float.abs (expected -. actual) > eps *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let qtests cases = List.map QCheck_alcotest.to_alcotest cases

(* A fixed seed stream for tests that need raw randomness. *)
let rng () = Prng.create 0xC0FFEE

(* Edge-list shorthand: [edge u v p]. *)
let edge u v p : Ugraph.edge = { u; v; p }

let graph ~n es = Ugraph.create ~n (List.map (fun (u, v, p) -> edge u v p) es)

(* Small named graphs reused across suites. *)

(* The paper's Figure 1 example: 5 vertices, 6 edges, all p = 0.7. *)
let fig1 ?(p = 0.7) () =
  graph ~n:5
    [ (0, 1, p); (0, 2, p); (1, 3, p); (2, 3, p); (1, 4, p); (3, 4, p) ]

(* A 4-cycle. *)
let cycle4 p = graph ~n:4 [ (0, 1, p); (1, 2, p); (2, 3, p); (3, 0, p) ]

(* A path 0-1-2-3. *)
let path4 p = graph ~n:4 [ (0, 1, p); (1, 2, p); (2, 3, p) ]

(* Two triangles joined by a bridge: 0-1-2-0, 3-4-5-3, bridge 2-3. *)
let two_triangles p =
  graph ~n:6
    [ (0, 1, p); (1, 2, p); (2, 0, p); (2, 3, p); (3, 4, p); (4, 5, p); (5, 3, p) ]
