type t = {
  lower : float;
  upper : float;
  exact : bool;
  layers_built : int;
  work_used : bool;
}

let compute ?(width = 10_000) ?max_work ?(order = `Auto) ?(extension = true) g
    ~terminals =
  let config =
    {
      S2bdd.default_config with
      S2bdd.width;
      (* One nominal sample: the constructor still runs its deletion /
         sampling plumbing, but with a single-descent budget the cost
         is construction-only. *)
      S2bdd.samples = 1;
      S2bdd.order;
      S2bdd.max_work =
        Option.value ~default:S2bdd.default_config.S2bdd.max_work max_work;
    }
  in
  let report = Reliability.estimate ~config ~extension g ~terminals in
  let layers, capped =
    List.fold_left
      (fun (l, c) (r : S2bdd.result) ->
        (l + r.S2bdd.layers_built, c || r.S2bdd.stop = S2bdd.Work_capped))
      (0, false) report.Reliability.subresults
  in
  {
    lower = report.Reliability.lower;
    upper = report.Reliability.upper;
    exact = report.Reliability.exact;
    layers_built = layers;
    work_used = capped;
  }

let decides t ~threshold =
  if t.lower >= threshold then `Above
  else if t.upper < threshold then `Below
  else `Unknown
