let check_pair g ~source ~target =
  let n = Ugraph.n_vertices g in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Reach: vertex out of range";
  if source = target then invalid_arg "Reach: source equals target"

let two_terminal ?config g ~source ~target =
  check_pair g ~source ~target;
  Netrel.Reliability.estimate ?config g ~terminals:[ source; target ]

type estimate = {
  value : float;
  samples_used : int;
  hits : int;
}

let hop_distance g ~present source target =
  if Array.length present <> Ugraph.n_edges g then
    invalid_arg "Reach.hop_distance: present array length mismatch";
  let n = Ugraph.n_vertices g in
  if source = target then Some 0
  else begin
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(source) <- 0;
    Queue.add source queue;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         let v = Queue.pop queue in
         Ugraph.iter_incident g v (fun ~eid ~other ->
             if present.(eid) && dist.(other) < 0 then begin
               dist.(other) <- dist.(v) + 1;
               if other = target then begin
                 result := Some dist.(other);
                 raise Exit
               end;
               Queue.add other queue
             end)
       done
     with Exit -> ());
    !result
  end

(* Depth-bounded BFS: true iff target within [d] hops of source. *)
let within g ~present ~source ~target ~d =
  match hop_distance g ~present source target with
  | Some dist -> dist <= d
  | None -> false

let distance_constrained_exact g ~source ~target ~d =
  check_pair g ~source ~target;
  if d < 0 then invalid_arg "Reach: negative distance bound";
  let m = Ugraph.n_edges g in
  if m > Bddbase.Bruteforce.max_edges then
    invalid_arg
      (Printf.sprintf "Reach.distance_constrained_exact: %d edges > %d" m
         Bddbase.Bruteforce.max_edges);
  let present = Array.make m false in
  let total = ref 0. in
  for mask = 0 to (1 lsl m) - 1 do
    let prob = ref 1. in
    for i = 0 to m - 1 do
      let e = Ugraph.edge g i in
      if mask land (1 lsl i) <> 0 then begin
        present.(i) <- true;
        prob := !prob *. e.Ugraph.p
      end
      else begin
        present.(i) <- false;
        prob := !prob *. (1. -. e.Ugraph.p)
      end
    done;
    if !prob > 0. && within g ~present ~source ~target ~d then
      total := !total +. !prob
  done;
  !total

let distance_constrained_mc ?(seed = 1) g ~source ~target ~d ~samples =
  check_pair g ~source ~target;
  if d < 0 then invalid_arg "Reach: negative distance bound";
  if samples <= 0 then invalid_arg "Reach: samples <= 0";
  let rng = Prng.create seed in
  let m = Ugraph.n_edges g in
  let present = Array.make m false in
  let hits = ref 0 in
  for _ = 1 to samples do
    Ugraph.iter_edges
      (fun eid (e : Ugraph.edge) -> present.(eid) <- Prng.bernoulli rng e.p)
      g;
    if within g ~present ~source ~target ~d then incr hits
  done;
  {
    value = float_of_int !hits /. float_of_int samples;
    samples_used = samples;
    hits = !hits;
  }
