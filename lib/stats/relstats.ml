let check_shape exact estimates =
  let q1 = Array.length exact in
  if q1 = 0 || Array.length estimates <> q1 then
    invalid_arg "Relstats: exact and estimates shapes differ";
  Array.iter
    (fun row -> if Array.length row = 0 then invalid_arg "Relstats: empty repetition row")
    estimates

let fold_cells f init exact estimates =
  let acc = ref init and cells = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun est ->
          incr cells;
          acc := f !acc exact.(i) est)
        row)
    estimates;
  (!acc, !cells)

let variance ~exact ~estimates =
  check_shape exact estimates;
  let total, cells =
    fold_cells (fun acc r est -> acc +. ((r -. est) ** 2.)) 0. exact estimates
  in
  total /. float_of_int cells

let error_rate ~exact ~estimates =
  check_shape exact estimates;
  let term r est =
    if r = 0. then if est = 0. then 0. else 1. else Float.abs (r -. est) /. r
  in
  let total, cells = fold_cells (fun acc r est -> acc +. term r est) 0. exact estimates in
  total /. float_of_int cells

let mean xs =
  if Array.length xs = 0 then invalid_arg "Relstats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

(* Sample (n-1) estimator: the population divisor biased the spread of
   the small bench [repeats] low. A single observation carries no
   spread information, so n <= 1 reports 0. *)
let std_dev xs =
  let n = Array.length xs in
  if n <= 1 then (
    ignore (mean xs) (* keeps the empty-input Invalid_argument *);
    0.)
  else
    let m = mean xs in
    let v =
      Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
      /. float_of_int (n - 1)
    in
    sqrt v

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Relstats.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Relstats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

(* Monotonic seconds via clock_gettime(CLOCK_MONOTONIC) (the bechamel
   C stub) — wall clock (gettimeofday) is subject to NTP steps, which
   made bench timings occasionally negative and corrupted BENCH_*.json.
   The clamp is belt-and-braces: a monotonic clock cannot go backwards,
   but a zero-resolution fake clock can legitimately report 0. *)
let now_monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time f =
  let t0 = now_monotonic () in
  let x = f () in
  (x, Float.max 0. (now_monotonic () -. t0))

let time_median ?(repeats = 3) f =
  if repeats <= 0 then invalid_arg "Relstats.time_median: repeats <= 0";
  let last = ref None in
  let times =
    Array.init repeats (fun _ ->
        let x, dt = time f in
        last := Some x;
        dt)
  in
  match !last with
  | None -> assert false
  | Some x -> (x, quantile times 0.5)

let format_seconds s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

(* ------------------------------------------------------------------ *)
(* Binomial confidence intervals                                       *)
(* ------------------------------------------------------------------ *)

type interval_method = Wald | Wilson | Agresti_coull

let interval_method_name = function
  | Wald -> "wald"
  | Wilson -> "wilson"
  | Agresti_coull -> "agresti-coull"

let default_z = 1.96

(* Wald degenerates to a zero-width interval at phat in {0, 1} — the
   regime that matters most for reliable graphs — which is why it is
   kept only as the legacy reference. Wilson inverts the score test
   ((phat - p)^2 = z^2 p (1-p) / n), so its bounds are the two roots of
   a quadratic that always brackets phat and stays inside (0, 1) with
   nonzero width for every n >= 1. Agresti–Coull is the simple fallback:
   Wald recentred on the Wilson midpoint with z^2 pseudo-observations
   (its bounds can poke outside [0, 1]; they are clamped here). *)
let interval ?(z = default_z) m ~phat ~n =
  if n < 1 then invalid_arg "Relstats.interval: n < 1";
  if not (Float.is_finite z) || z <= 0. then
    invalid_arg "Relstats.interval: z must be finite and positive";
  let p = Float.max 0. (Float.min 1. phat) in
  let nf = float_of_int n in
  let clamp01 x = Float.max 0. (Float.min 1. x) in
  match m with
  | Wald ->
    let half = z *. sqrt (p *. (1. -. p) /. nf) in
    (clamp01 (p -. half), clamp01 (p +. half))
  | Wilson ->
    let z2 = z *. z in
    let denom = 1. +. (z2 /. nf) in
    let center = (p +. (z2 /. (2. *. nf))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1. -. p) /. nf) +. (z2 /. (4. *. nf *. nf)))
    in
    (clamp01 (center -. half), clamp01 (center +. half))
  | Agresti_coull ->
    let z2 = z *. z in
    let nt = nf +. z2 in
    let pt = ((p *. nf) +. (z2 /. 2.)) /. nt in
    let half = z *. sqrt (pt *. (1. -. pt) /. nt) in
    (clamp01 (pt -. half), clamp01 (pt +. half))
