.PHONY: build test bench bench-quick bench-smoke clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Speedup harness on a toy graph: the quick `parallel` section (karate,
# jobs 1/2/4) with its sequential-vs-parallel bit-identity column, plus
# the self-validated BENCH_parallel.json stats emission. The same
# invocation runs under `dune runtest` via bench/dune.
bench-smoke:
	dune exec bench/main.exe -- --only parallel --quick --json

clean:
	dune clean
