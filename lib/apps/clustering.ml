type clustering = {
  centers : int array;
  assignment : int array;
  reliability : float array;
}

let cluster ?engine ?(seed = 1) ?(samples = 500) g ~k =
  let n = Ugraph.n_vertices g in
  if k < 1 || k > n then invalid_arg "Clustering.cluster: k out of range";
  let set = Sampleset.shared ?engine ~seed g ~samples in
  let s = float_of_int samples in
  (* best_rel.(v): max estimated reliability from v to any chosen
     center; best_center.(v): index of that center. *)
  let best_rel = Array.make n neg_infinity in
  let best_center = Array.make n (-1) in
  let centers = Array.make k 0 in
  let highest_degree =
    let best = ref 0 in
    for v = 0 to n - 1 do
      if Ugraph.degree g v > Ugraph.degree g !best then best := v
    done;
    !best
  in
  let add_center i c =
    centers.(i) <- c;
    let counts = Sampleset.reach_counts set ~sources:[ c ] in
    Array.iteri
      (fun v cnt ->
        let r = float_of_int cnt /. s in
        if r > best_rel.(v) then begin
          best_rel.(v) <- r;
          best_center.(v) <- i
        end)
      counts;
    best_rel.(c) <- 1.;
    best_center.(c) <- i
  in
  add_center 0 highest_degree;
  for i = 1 to k - 1 do
    (* Farthest-first: the vertex with the lowest reliability to every
       existing center (ties towards smaller degree-weighted id for
       determinism). *)
    let next = ref (-1) and next_rel = ref infinity in
    for v = 0 to n - 1 do
      let already = Array.exists (fun c -> c = v) (Array.sub centers 0 i) in
      if (not already) && best_rel.(v) < !next_rel then begin
        next := v;
        next_rel := best_rel.(v)
      end
    done;
    add_center i !next
  done;
  { centers; assignment = best_center; reliability = best_rel }

let average_inner_reliability cl =
  let is_center = Hashtbl.create 8 in
  Array.iter (fun c -> Hashtbl.replace is_center c ()) cl.centers;
  let total = ref 0. and count = ref 0 in
  Array.iteri
    (fun v r ->
      if not (Hashtbl.mem is_center v) then begin
        total := !total +. r;
        incr count
      end)
    cl.reliability;
  if !count = 0 then 1. else !total /. float_of_int !count
