(** Differential self-validation of every estimation path in the
    library against an exact oracle, against paper identities and
    against its own reported variances.

    Three sections, all deterministic in [seed]:

    - {b oracle}: every {!Shapes.corpus} case is solved exactly with
      {!Bddbase.Exact} and then by every estimator —
      {!Mcsampling.monte_carlo}, {!Mcsampling.horvitz_thompson},
      {!S2bdd.estimate} across width caps, {!Reliability.estimate}
      with and without the extension — at [jobs] 1/2/8, checking the
      invariants each path promises: [lower <= value <= upper], the
      proven bounds contain the exact answer, [exact] claims are
      honest (value equals the oracle to 1e-9), and results are
      bit-identical at every [jobs] value.
    - {b metamorphic}: identities that need no oracle — self-loop,
      series, parallel and floating-cycle rewrites preserve [R]
      (Section 5 transforms), bridge factoring multiplies
      (Lemma 5.1), vertex relabelling leaves exact results unchanged,
      and the extension pipeline agrees with the raw exact BDD.
    - {b calibration}: the reported [variance_estimate] is replayed
      over many seeds and the empirical 95% CI coverage is required to
      sit within binomial tolerance of its nominal level.

    A violation carries the full reproducer (graph text, terminals,
    seed) so every failure is a replayable artifact. The driver behind
    [netrel selfcheck] and the budgeted [dune runtest] rule. *)

module Shapes : module type of Shapes
(** The corpus the oracle and metamorphic sections run over, re-exported
    (the library's only public module is [Check]). *)

type violation = {
  section : string;   (** ["oracle"] / ["metamorphic"] / ["calibration"] *)
  invariant : string; (** stable id, e.g. ["s2bdd.value-in-bounds"] *)
  case : string;      (** corpus case label *)
  detail : string;    (** human-readable: what was expected, what came out *)
  artifact : string;  (** reproducer: graph edge list, terminals, seed *)
}

type section = {
  s_name : string;
  s_cases : int;
  s_checks : int;
  s_violations : int;
  s_skipped : int;    (** cases the oracle could not solve (budget) *)
}

type report = {
  seed : int;
  trials : int;
  jobs : int list;        (** the jobs values every estimator ran at *)
  sections : section list;
  violations : violation list;  (** in discovery order *)
  cases : int;
  checks : int;
}

val ok : report -> bool
(** No section recorded a violation. *)

val default_jobs : int list
(** [[1; 2; 8]] — the sequential fast path, the smallest real pool and
    an oversubscribed pool. *)

val run :
  ?obs:Obs.t ->
  ?trace:Trace.t ->
  ?jobs:int list ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  report
(** Run all three sections over {!Shapes.corpus}[ ~seed ~trials]
    (default [trials = 50], [seed = 1]). [obs] (default
    {!Obs.disabled}) receives per-section counters and timers under
    the ["selfcheck"] prefix; [trace] (default {!Trace.disabled})
    receives one span per section and per oracle case. Neither affects
    the checks. *)

val report_json : report -> Obs.Json.t
(** The fixed-schema selfcheck document: top-level keys [netrel]
    (emitter identity, schema, [tool = "selfcheck"]), [run], [sections]
    (per-section case/check/violation/skip counts), [violations] (at
    most {!max_reported_violations}, with artifacts) and [result].
    Deterministic in the report, hence byte-stable for a fixed seed. *)

val max_reported_violations : int

val pp_report : Format.formatter -> report -> unit
(** The human-readable summary the CLI prints: one line per section
    plus each violation (capped) with its artifact indented. *)
