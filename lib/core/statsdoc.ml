module J = Obs.Json

type run = {
  command : string;
  method_ : string;
  graph : string;
  terminals : int list;
  seed : int;
  jobs : int;
  samples : int;
  width : int;
}

let schema_version = 2

let required_keys =
  [
    "netrel"; "run"; "preprocess"; "construction"; "sampling"; "adaptive";
    "par"; "gc"; "result";
  ]

let phase rendered name =
  match J.member name rendered with Some v -> v | None -> J.Obj []

let result_of_report (r : Reliability.report) =
  J.Obj
    [
      ("value", J.Float r.value);
      ("lower", J.Float r.lower);
      ("upper", J.Float r.upper);
      ("exact", J.Bool r.exact);
      ("s_given", J.Int r.s_given);
      ("s_reduced", J.Int r.s_reduced);
      ("samples_drawn", J.Int r.samples_drawn);
      ("subproblems", J.Int (List.length r.subresults));
    ]

let result_of_estimate (e : Mcsampling.estimate) =
  let lower, upper = Mcsampling.interval e in
  J.Obj
    [
      ("value", J.Float e.value);
      ("lower", J.Float lower);
      ("upper", J.Float upper);
      ("samples_used", J.Int e.samples_used);
      ("hits", J.Int e.hits);
      ("distinct", J.Int e.distinct);
      ("variance_estimate", J.Float e.variance_estimate);
      ("jobs_used", J.Int e.jobs_used);
      ("chunks", J.Int (Array.length e.chunk_samples));
    ]

let result_value ~value ~exact =
  J.Obj [ ("value", J.Float value); ("exact", J.Bool exact) ]

let result_of_adaptive ~value ~lower ~upper ~exact ~ci_width ~target_width
    ~samples_used ~samples_planned ~rounds ~stop =
  J.Obj
    [
      ("value", J.Float value);
      ("lower", J.Float lower);
      ("upper", J.Float upper);
      ("exact", J.Bool exact);
      ("ci_width", J.Float ci_width);
      ("target_width", J.Float target_width);
      ("samples_used", J.Int samples_used);
      ("samples_planned", J.Int samples_planned);
      ("rounds", J.Int rounds);
      ("stop", J.Str stop);
    ]

let build ~obs ~run ~seconds ~result =
  (* Throughput is derived here, at report time, from the summed
     monotonic kernel timer — the old mid-run gauge raced between
     chunks and whichever worker wrote last won. *)
  if Obs.mem obs "sampling.kernel.samples" then begin
    let samples =
      float_of_int (Obs.counter_value obs "sampling.kernel.samples")
    in
    let elapsed = Obs.timer_seconds obs "sampling.kernel.elapsed" in
    Obs.gauge obs "sampling.kernel.samples_per_sec"
      (if elapsed > 0. then samples /. elapsed else 0.)
  end;
  let rendered = Obs.to_json obs in
  let pc = Par.counters () in
  let par_section =
    match phase rendered "par" with
    | J.Obj fields ->
        J.Obj
          (fields
          @ [ ("batches", J.Int pc.Par.batches); ("tasks", J.Int pc.Par.tasks) ])
    | other -> other
  in
  J.Obj
    [
      ( "netrel",
        J.Obj
          [ ("emitter", J.Str "netrel"); ("schema", J.Int schema_version) ] );
      ( "run",
        J.Obj
          [
            ("command", J.Str run.command);
            ("method", J.Str run.method_);
            ("graph", J.Str run.graph);
            ("terminals", J.List (List.map (fun t -> J.Int t) run.terminals));
            ("seed", J.Int run.seed);
            ("jobs", J.Int run.jobs);
            ("samples", J.Int run.samples);
            ("width", J.Int run.width);
            ("seconds", J.Float seconds);
          ] );
      ("preprocess", phase rendered "preprocess");
      ("construction", phase rendered "construction");
      ("sampling", phase rendered "sampling");
      ("adaptive", phase rendered "adaptive");
      ("par", par_section);
      ("gc", phase rendered "gc");
      ("result", result);
    ]
