type stats = {
  recursive_calls : int;
  reductions : int;
}

type error = [ `Budget_exceeded of int ]

let default_call_budget = 2_000_000

exception Budget of int

(* Contract edge (u, v): redirect every occurrence of v to u. The
   vertex v goes dangling and the next reduction pass removes it; any
   self-loops or parallels created are likewise cleaned up there. *)
let contract g ~eid =
  let e = Ugraph.edge g eid in
  let u = e.Ugraph.u and v = e.Ugraph.v in
  let redirect x = if x = v then u else x in
  let edges =
    Ugraph.fold_edges
      (fun acc i (ed : Ugraph.edge) ->
        if i = eid then acc
        else { Ugraph.u = redirect ed.u; v = redirect ed.v; p = ed.p } :: acc)
      [] g
  in
  (Ugraph.create ~n:(Ugraph.n_vertices g) (List.rev edges), u, v)

let delete g ~eid =
  let edges =
    Ugraph.fold_edges
      (fun acc i (ed : Ugraph.edge) -> if i = eid then acc else ed :: acc)
      [] g
  in
  Ugraph.create ~n:(Ugraph.n_vertices g) (List.rev edges)

(* Pivot selection: an edge incident to a terminal with the largest
   probability — deciding high-probability terminal edges first
   collapses the recursion quickly on both branches. *)
let pick_pivot g ts =
  let is_terminal = Array.make (Ugraph.n_vertices g) false in
  List.iter (fun t -> is_terminal.(t) <- true) ts;
  let best = ref (-1) and best_p = ref (-1.) in
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) ->
      if e.u <> e.v && (is_terminal.(e.u) || is_terminal.(e.v)) && e.p > !best_p
      then begin
        best := eid;
        best_p := e.p
      end)
    g;
  if !best >= 0 then !best
  else begin
    (* No terminal-incident edge (cannot happen on a reduced connected
       subproblem, but stay total): fall back to the max-p edge. *)
    Ugraph.iter_edges
      (fun eid (e : Ugraph.edge) ->
        if e.u <> e.v && e.p > !best_p then begin
          best := eid;
          best_p := e.p
        end)
      g;
    !best
  end

let reliability ?(call_budget = default_call_budget) g ~terminals =
  Ugraph.validate_terminals g terminals;
  let calls = ref 0 and reductions = ref 0 in
  (* Reduce with the full extension pipeline (prune, bridge factoring,
     series/parallel/loop transform), then factor on a pivot edge of
     each remaining subproblem. *)
  let rec solve g ts =
    incr calls;
    if !calls > call_budget then raise (Budget !calls);
    incr reductions;
    match Preprocess.Pipeline.run g ~terminals:ts with
    | Preprocess.Pipeline.Trivial r -> Xprob.to_float_approx r
    | Preprocess.Pipeline.Reduced { pb; subproblems; _ } ->
      List.fold_left
        (fun acc (sp : Preprocess.Pipeline.subproblem) ->
          acc *. factor sp.Preprocess.Pipeline.graph sp.Preprocess.Pipeline.terminals)
        (Xprob.to_float_approx pb)
        subproblems
  and factor g ts =
    match (Ugraph.n_edges g, ts) with
    | 1, [ a; b ] when
        (let e = Ugraph.edge g 0 in
         (e.Ugraph.u = a && e.Ugraph.v = b) || (e.Ugraph.u = b && e.Ugraph.v = a))
      ->
      (* A fully collapsed subproblem: one edge between the two
         terminals. *)
      (Ugraph.edge g 0).Ugraph.p
    | _ -> factor_pivot g ts
  and factor_pivot g ts =
    let eid = pick_pivot g ts in
    if eid < 0 then
      (* Only self-loops left: connectivity is already decided; the
         pipeline would have resolved it, so terminals are trivially
         connected only if a single terminal remains. *)
      if List.length ts <= 1 then 1.
      else 0.
    else begin
      let e = Ugraph.edge g eid in
      let contracted, u, v = contract g ~eid in
      let ts_contracted =
        List.sort_uniq Int.compare
          (List.map (fun t -> if t = v then u else t) ts)
      in
      let on = solve contracted ts_contracted in
      let off = solve (delete g ~eid) ts in
      (e.Ugraph.p *. on) +. ((1. -. e.Ugraph.p) *. off)
    end
  in
  match solve g terminals with
  | r -> Ok (r, { recursive_calls = !calls; reductions = !reductions })
  | exception Budget n -> Error (`Budget_exceeded n)

let reliability_float ?call_budget g ~terminals =
  Result.map fst (reliability ?call_budget g ~terminals)
