(** Sequential stopping: estimate to a target confidence-interval width
    instead of a fixed sample budget.

    Every driver here draws in {e rounds} until the 95% interval around
    the running estimate is no wider than [ci_width] (or [max_samples]
    trips). The interval is always a valid one — Wilson score via
    {!Relstats.interval}, never the Wald interval that collapses to
    zero width at 0 or [n] hits — so stopping cannot be triggered by
    the degenerate-CI bug the fixed path used to exhibit.

    {2 Determinism}

    Each round's size is a pure function of the account so far (hits
    and samples drawn), so the whole round schedule — and therefore the
    estimate — is replayable from [(seed, ci_width, max_samples)].
    Rounds draw through the incremental chunked samplers
    ({!Mcsampling.Chunked}) or the per-stratum plan streams
    ({!S2bdd.draw_stratum}), both of which make [jobs] placement-only:
    {b for fixed inputs the result is bit-identical at every [jobs]
    value}. Note the chunk boundaries follow the round schedule, so an
    adaptive run and a fixed-budget run of the same total are two
    different (each internally deterministic) draws.

    {2 Instrumentation}

    All drivers record under the ["adaptive"] Obs prefix: [rounds],
    [samples_planned] / [samples_used] counters, [ci_width] /
    [target_width] gauges, the [stop] reason text (plus a [stop_*]
    counter), and — for the stratified driver — per-stratum
    [stratum<i>.drawn] / [stratum<i>.mass] gauges for the first 16
    strata. Each round streams one [adaptive.round] trace span
    (args: round, planned, running width) and the run closes with an
    [adaptive.done] instant. The underlying samplers keep their own
    ["sampling"] / ["construction"] accounts. *)

module S2bdd = Netrel.S2bdd

type stop =
  | Width_reached     (** interval width reached [ci_width] *)
  | Budget_exhausted  (** [max_samples] tripped first *)
  | Exact_answer      (** trivial input or exact construction: no
                          sampling happened, width is 0 *)

val stop_name : stop -> string
(** ["width-reached"] / ["max-samples"] / ["exact"]. *)

type result = {
  value : float;    (** stopped point estimate, clamped into
                        [[lower, upper]] *)
  lower : float;
  upper : float;    (** the valid (Wilson-based) interval the stopping
                        rule evaluated *)
  exact : bool;
  ci_width : float;       (** realised [upper - lower] *)
  target_width : float;   (** the [ci_width] argument *)
  samples_used : int;
  samples_planned : int;  (** round-schedule total; can exceed
                              [samples_used] only on the trivial path *)
  rounds : int;
  stop : stop;
  estimate : Mcsampling.estimate option;
      (** the final sampler estimate (MC/HT drivers only) *)
}

val default_max_samples : int
(** [1_000_000]. *)

val monte_carlo :
  ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
  ?kernel:Mcsampling.kernel_mode -> ?csr:Kernel.Csr.t -> ?max_samples:int ->
  Ugraph.t -> terminals:int list -> ci_width:float -> result
(** Adaptive plain Monte Carlo over {!Mcsampling.Chunked}. Round sizes
    start at one {!Mcsampling.chunk_target} chunk and then track the
    Wilson width requirement (at most quadrupling per round).
    @raise Invalid_argument on invalid terminals, [ci_width] outside
    [(0, 1)], or [max_samples < 1]. *)

val horvitz_thompson :
  ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
  ?kernel:Mcsampling.kernel_mode -> ?csr:Kernel.Csr.t -> ?max_samples:int ->
  Ugraph.t -> terminals:int list -> ci_width:float -> result
(** Adaptive Horvitz–Thompson. The interval prices [samples_used] as
    binomial trials at the (clamped) HT value — conservative for HT,
    whose deduplicated estimator has no more variance than MC on the
    same draws. @raise Invalid_argument as {!monte_carlo}. *)

val reliability :
  ?obs:Obs.t -> ?trace:Trace.t -> ?config:S2bdd.config ->
  ?extension:bool -> ?jobs:int -> ?prep:Preprocess.Pipeline.outcome ->
  ?orders:int array array -> ?max_samples:int ->
  Ugraph.t -> terminals:int list -> ci_width:float -> result
(** The full pipeline (Algorithm 1) under sequential stopping: the
    preprocess extension splits the problem, each subproblem runs
    {!S2bdd.prepare}, and every resulting sampling plan is drawn in
    Neyman-allocated rounds — round 1 proportional to stratum mass
    with every stratum covered, later rounds proportional to
    [mass_i * sigma^_i] with the half-count smoothed binomial spread,
    both apportioned by deterministic largest remainder. The
    per-subproblem interval combines the proven construction bounds
    with a Wilson interval on the pooled sampled mass (unsampled float
    slack counts against the upper bound), which is conservative for
    proportional stratification; subproblem intervals multiply, so
    each subproblem receives an even share [ci_width / (pb * k)] of
    the target width and [max_samples / k] of the budget (round 1 of
    a plan draws at least one descent per stratum even if that
    overshoots the share). Adaptive descents always use the plain MC
    indicator — see {!S2bdd.draw_stratum} — whatever
    [config.estimator] says; [config.samples] only seeds the
    construction's Theorem-1 stop rule.

    Strata within a round draw concurrently on the shared pool when
    [jobs > 1]; per-stratum streams make the result bit-identical at
    every [jobs] value.

    [prep] and [orders] replay a cached preprocessing outcome and its
    per-subproblem edge orderings for the same [(g, terminals)] (see
    {!Reliability.estimate}); the result is bit-identical to
    recomputing them. @raise Invalid_argument as {!monte_carlo} plus
    [jobs < 1]. *)
