let reachable_from g start =
  let n = Ugraph.n_vertices g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Ugraph.iter_incident g v (fun ~eid:_ ~other ->
        if not seen.(other) then begin
          seen.(other) <- true;
          Queue.add other queue
        end)
  done;
  seen

let is_connected g =
  let n = Ugraph.n_vertices g in
  if n <= 1 then true
  else Array.for_all Fun.id (reachable_from g 0)

let components g =
  let n = Ugraph.n_vertices g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for start = 0 to n - 1 do
    if comp.(start) < 0 then begin
      let id = !count in
      incr count;
      comp.(start) <- id;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Ugraph.iter_incident g v (fun ~eid:_ ~other ->
            if comp.(other) < 0 then begin
              comp.(other) <- id;
              Queue.add other queue
            end)
      done
    end
  done;
  (comp, !count)

let check_present g present =
  if Array.length present <> Ugraph.n_edges g then
    invalid_arg "Connectivity: present array has wrong length"

let terminals_connected g ~present ts =
  check_present g present;
  match ts with
  | [] -> invalid_arg "Connectivity.terminals_connected: empty terminal set"
  | [ _ ] -> true
  | start :: rest ->
    let n = Ugraph.n_vertices g in
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(start) <- true;
    Queue.add start queue;
    (* Early exit once every terminal is reached. *)
    let missing = ref (List.length rest) in
    let is_terminal = Array.make n false in
    List.iter (fun t -> is_terminal.(t) <- true) rest;
    (try
       while not (Queue.is_empty queue) do
         let v = Queue.pop queue in
         Ugraph.iter_incident g v (fun ~eid ~other ->
             if present.(eid) && not seen.(other) then begin
               seen.(other) <- true;
               if is_terminal.(other) then begin
                 is_terminal.(other) <- false;
                 decr missing;
                 if !missing = 0 then raise Exit
               end;
               Queue.add other queue
             end)
       done
     with Exit -> ());
    !missing = 0

let terminals_connected_dsu dsu g ~present ts =
  check_present g present;
  if Dsu.size dsu <> Ugraph.n_vertices g then
    invalid_arg "Connectivity.terminals_connected_dsu: DSU size mismatch";
  Dsu.reset dsu;
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) -> if present.(eid) then ignore (Dsu.union dsu e.u e.v))
    g;
  Dsu.all_connected dsu ts
