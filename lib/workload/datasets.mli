(** The seven experimental datasets of Table 2, as offline substitutes
    (DESIGN.md §5): the real Zachary karate club, plus synthetic graphs
    reproducing each dataset's topology class, degree profile and
    average edge probability.

    Default sizes are scaled down roughly 10–20x from the paper so that
    the full benchmark suite completes on a laptop; pass [scale] to grow
    or shrink them (vertex counts scale linearly with [scale]). *)

type t = {
  name : string;   (** full name, e.g. ["DBLP before 2000 (synthetic)"] *)
  abbr : string;   (** Table 2 abbreviation, e.g. ["DBLP1"] *)
  kind : string;   (** topology class, e.g. ["Coauthorship"] *)
  graph : Ugraph.t;
}

val karate : ?seed:int -> unit -> t
(** The real 34-vertex Zachary karate club with uniform random
    probabilities. *)

val am_rv : ?seed:int -> unit -> t
(** American-Revolution-class affiliation network (141 vertices /
    160 edges at the paper's true scale — small, so not scaled). *)

val dblp1 : ?seed:int -> ?scale:float -> unit -> t
val dblp2 : ?seed:int -> ?scale:float -> unit -> t
(** Coauthorship networks with the paper's
    [log(alpha+1)/log(alphaM+2)] probabilities. *)

val tokyo : ?seed:int -> ?scale:float -> unit -> t
val nyc : ?seed:int -> ?scale:float -> unit -> t
(** Road networks: near-planar grids with length-derived probabilities
    calibrated to the Table 2 averages. *)

val hit_direct : ?seed:int -> ?scale:float -> unit -> t
(** Protein-interaction network: heavy-tailed, dense
    (average degree ~27 at full scale). *)

val small : ?seed:int -> unit -> t list
(** [karate; am_rv] — the accuracy datasets (Tables 3 and 4). *)

val large : ?seed:int -> ?scale:float -> unit -> t list
(** [dblp1; dblp2; tokyo; nyc; hit_direct] — the efficiency datasets
    (Figures 3–5, Table 5). *)

val all : ?seed:int -> ?scale:float -> unit -> t list

val table2_header : string
val table2_row : t -> string
(** Fixed-width row matching Table 2's columns: abbreviation, type,
    #vertices, #edges, average degree, average probability. *)
