(** Synthetic graph generators reproducing the topology classes of the
    paper's Table 2 datasets (DESIGN.md §5 documents each
    substitution). All generators are deterministic in [seed] and return
    a connected graph (the largest component, relabelled). *)

val largest_component : Ugraph.t -> Ugraph.t
(** Restrict to the largest connected component, vertices renumbered. *)

val preferential_attachment :
  seed:int -> n:int -> edges_per_vertex:int -> Ugraph.t * int array
(** Barabási–Albert-style coauthorship topology with collaboration
    multiplicities: each arriving vertex attaches [edges_per_vertex]
    times to degree-biased targets; repeat attachments raise an edge's
    multiplicity [alpha] instead of creating parallels. Returns the
    graph (placeholder probability 0.5 on every edge — assign with
    {!Probability.coauthor}) and per-edge multiplicities. *)

val grid_road :
  seed:int -> rows:int -> cols:int -> keep:float -> Ugraph.t * float array
(** Road-network topology: a [rows * cols] grid whose edges survive with
    probability [keep] (plus a random spanning tree to stay connected),
    giving the low average degree (~2.3–2.5) of the paper's Tokyo/NYC
    datasets. Returns per-edge road lengths (perturbed unit lengths).
    Probabilities are placeholders; assign with {!Probability.road}. *)

val power_law :
  seed:int -> n:int -> target_edges:int -> exponent:float -> Ugraph.t
(** Chung–Lu-style protein-interaction topology: endpoints drawn
    proportionally to Zipf([exponent]) weights until [target_edges]
    distinct edges exist, yielding the heavy-tailed, high-average-degree
    shape of Hit-direct. Placeholder probabilities. *)

val bipartite_affiliation :
  seed:int -> people:int -> groups:int -> memberships:int -> Ugraph.t
(** Affiliation network (people x organisations) with skewed group
    sizes, the American-Revolution topology class: sparse and tree-like
    after 2-edge-component contraction. Placeholder probabilities. *)

val random_terminals : seed:int -> Ugraph.t -> k:int -> int list
(** [k] distinct uniformly random vertices (the paper's terminal
    selection). @raise Invalid_argument if [k] exceeds the vertex
    count. *)

(** {2 Large-graph generators}

    The 10^5–10^6-edge synthetic workloads behind the [large] bench
    section. Both run in O(n + m) with int-keyed tables (no tuple
    hashing, no global sort), stay deterministic in [seed], and emit
    placeholder probabilities — assign with {!Probability.uniform} /
    {!Probability.uniform_range}. *)

val random_geometric : seed:int -> n:int -> radius:float -> Ugraph.t
(** [n] points uniform in the unit square, an edge between every pair
    within Euclidean distance [radius] (grid-bucketed neighbour
    search, so generation is O(n + m)). Expected average degree is
    [n * pi * radius^2]; pick
    [radius = sqrt (deg / (pi * n))] to hit a target. Edges are
    emitted in ascending order of the lower endpoint id. Isolated
    vertices are kept. @raise Invalid_argument for [n < 2] or a
    radius outside (0, 1]. *)

val preferential_attachment_large :
  seed:int -> n:int -> edges_per_vertex:int -> Ugraph.t
(** Barabási–Albert-style growth like {!preferential_attachment}, but
    built for the 10^6-edge regime: duplicate edges are skipped via a
    packed int-pair table during generation (first-occurrence edge
    order, no multiplicity counting, no final sort) and the graph is
    returned without a largest-component pass. ~[n * edges_per_vertex]
    edges. *)
