open Testutil
module BF = Bddbase.Bruteforce
module S = Netrel.S2bdd
module SS = Netrel.Samplesize
module R = Netrel.Reliability

(* ---- Theorem 1 sample-size formula ---- *)

let t_samplesize_cases () =
  let s = 10_000 in
  Alcotest.(check int) "no bounds: s unchanged" s (SS.reduced ~s ~pc:0. ~pd:0.);
  Alcotest.(check int) "pc=0" (int_of_float (10_000. *. 0.7)) (SS.reduced ~s ~pc:0. ~pd:0.3);
  Alcotest.(check int) "pd=0" (int_of_float (10_000. *. 0.8)) (SS.reduced ~s ~pc:0.2 ~pd:0.);
  (* pc = pd = 0.1: floor(s * (1 - 4*0.1*0.9)) — 0.64 up to float
     rounding, so 6400 or 6399. *)
  let fl x = int_of_float (Float.floor (10_000. *. x)) in
  Alcotest.(check int) "pc=pd" (fl (1. -. (4. *. 0.1 *. 0.9))) (SS.reduced ~s ~pc:0.1 ~pd:0.1);
  (* pc < pd: 1 - 4*0.1*(1-0.3) = 0.72 *)
  Alcotest.(check int) "pc<pd" (fl (1. -. (4. *. 0.1 *. 0.7))) (SS.reduced ~s ~pc:0.1 ~pd:0.3);
  (* pc > pd: min(4*0.3*0.7, 4*(0.3*0.9 + (0.1-0.3))) = min(0.84, 0.28) *)
  Alcotest.(check int) "pc>pd"
    (fl (1. -. (4. *. ((0.3 *. 0.9) +. (0.1 -. 0.3)))))
    (SS.reduced ~s ~pc:0.3 ~pd:0.1);
  (* Exact bounds: no samples needed at all. *)
  Alcotest.(check int) "tight bounds" 0 (SS.reduced ~s ~pc:0.5 ~pd:0.5)

let t_samplesize_invalid () =
  Alcotest.check_raises "pc+pd > 1"
    (Invalid_argument "Samplesize: invalid bounds pc=0.8 pd=0.8") (fun () ->
      ignore (SS.reduced ~s:100 ~pc:0.8 ~pd:0.8))

let prop_samplesize_never_exceeds_s =
  QCheck.Test.make ~name:"s' in [0, s] for all valid bounds" ~count:1000
    QCheck.(triple (int_range 0 100000) (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (s, pc, pd) ->
      QCheck.assume (pc +. pd <= 1.);
      let s' = SS.reduced ~s ~pc ~pd in
      0 <= s' && s' <= s)

let prop_samplesize_monotone_in_pd_when_pc0 =
  QCheck.Test.make ~name:"s' decreases as pd tightens (pc = 0)" ~count:300
    QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (a, b) ->
      let pd1 = Float.min a b and pd2 = Float.max a b in
      SS.reduced ~s:10_000 ~pc:0. ~pd:pd2 <= SS.reduced ~s:10_000 ~pc:0. ~pd:pd1)

(* ---- S2BDD exactness (large width) ---- *)

let wide cfg = { cfg with S.width = 1 lsl 16 }

let t_s2bdd_exact_small () =
  List.iter
    (fun (name, g, ts) ->
      let expect = BF.reliability g ~terminals:ts in
      let r = S.estimate ~config:(wide S.default_config) g ~terminals:ts in
      Alcotest.(check bool) (name ^ " exact flag") true r.S.exact;
      check_close ~eps:1e-9 (name ^ " value") expect r.S.value;
      check_close ~eps:1e-9 (name ^ " lower=value") expect r.S.lower;
      check_close ~eps:1e-9 (name ^ " upper=value") expect r.S.upper)
    [
      ("fig1 k=3", fig1 (), [ 0; 3; 4 ]);
      ("fig1 k=2", fig1 (), [ 0; 4 ]);
      ("two triangles", two_triangles 0.6, [ 0; 4 ]);
      ("cycle", cycle4 0.5, [ 0; 2 ]);
      ("path", path4 0.7, [ 0; 3 ]);
    ]

let t_s2bdd_modes_exact () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  List.iter
    (fun (name, cfg) ->
      let r = S.estimate ~config:(wide cfg) g ~terminals:ts in
      check_close ~eps:1e-9 name expect r.S.value)
    [
      ("eager off", { S.default_config with S.eager = false });
      ("exact-count merge", { S.default_config with S.merge_flags = false });
      ("HT estimator", { S.default_config with S.estimator = S.Horvitz_thompson });
      ("natural order", { S.default_config with S.order = `Strategy Graphalgo.Ordering.Natural });
    ]

let t_s2bdd_trivial () =
  let g = path4 0.5 in
  let r = S.estimate g ~terminals:[ 1 ] in
  Alcotest.(check bool) "k=1 exact" true r.S.exact;
  check_close "k=1 value" 1. r.S.value;
  let disconnected = graph ~n:4 [ (0, 1, 0.9); (2, 3, 0.9) ] in
  check_close "separated" 0. (S.estimate disconnected ~terminals:[ 0; 3 ]).S.value

let t_s2bdd_flag_merge_smaller () =
  (* Lemma 4.3 merging must never give wider layers than exact-count
     merging. *)
  let g = two_triangles 0.5 in
  let ts = [ 0; 4 ] in
  let run merge_flags =
    (S.estimate ~config:(wide { S.default_config with S.merge_flags }) g ~terminals:ts)
      .S.max_width
  in
  Alcotest.(check bool) "flags <= exact" true (run true <= run false)

(* ---- S2BDD under deletion pressure: bounds and unbiasedness ---- *)

let t_s2bdd_bounds_contain_truth () =
  List.iter
    (fun (name, g, ts) ->
      let expect = BF.reliability g ~terminals:ts in
      List.iter
        (fun width ->
          let cfg = { S.default_config with S.width; S.samples = 50 } in
          let r = S.estimate ~config:cfg g ~terminals:ts in
          Alcotest.(check bool)
            (Printf.sprintf "%s w=%d: %.4f <= %.4f <= %.4f" name width r.S.lower
               expect r.S.upper)
            true
            (r.S.lower <= expect +. 1e-9 && expect <= r.S.upper +. 1e-9))
        [ 1; 2; 4 ])
    [
      ("fig1", fig1 (), [ 0; 3; 4 ]);
      ("two triangles", two_triangles 0.6, [ 0; 4 ]);
      ("grid-ish", graph ~n:6
         [ (0, 1, 0.6); (1, 2, 0.6); (3, 4, 0.6); (4, 5, 0.6);
           (0, 3, 0.6); (1, 4, 0.6); (2, 5, 0.6) ], [ 0; 5 ]);
    ]

let mean_std values =
  let n = float_of_int (Array.length values) in
  let mean = Array.fold_left ( +. ) 0. values /. n in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values /. n
  in
  (mean, sqrt var)

let statistical_unbiasedness name cfg g ts =
  let expect = BF.reliability g ~terminals:ts in
  let trials = 300 in
  let values =
    Array.init trials (fun i ->
        (S.estimate ~config:{ cfg with S.seed = 1000 + i } g ~terminals:ts).S.value)
  in
  let mean, std = mean_std values in
  let tol = 5. *. ((std /. sqrt (float_of_int trials)) +. 1e-4) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: mean %.4f within %.4f of %.4f (std %.4f)" name mean tol
       expect std)
    true
    (Float.abs (mean -. expect) <= tol)

let t_s2bdd_unbiased_mc () =
  let cfg = { S.default_config with S.width = 2; S.samples = 100 } in
  statistical_unbiasedness "MC w=2" cfg (fig1 ()) [ 0; 3; 4 ]

let t_s2bdd_unbiased_mc_width1 () =
  let cfg = { S.default_config with S.width = 1; S.samples = 100 } in
  statistical_unbiasedness "MC w=1" cfg (two_triangles 0.6) [ 0; 4 ]

let t_s2bdd_unbiased_ht () =
  let cfg =
    { S.default_config with S.width = 2; S.samples = 100;
      S.estimator = S.Horvitz_thompson }
  in
  statistical_unbiasedness "HT w=2" cfg (fig1 ()) [ 0; 3; 4 ]

let t_s2bdd_unbiased_random_heuristic () =
  let cfg =
    { S.default_config with S.width = 2; S.samples = 100;
      S.heuristic = S.Random_deletion }
  in
  statistical_unbiasedness "random deletion w=2" cfg (fig1 ()) [ 0; 3; 4 ]

let t_s2bdd_deterministic_by_seed () =
  let cfg = { S.default_config with S.width = 2; S.samples = 100 } in
  let g = fig1 () in
  let a = S.estimate ~config:cfg g ~terminals:[ 0; 3; 4 ] in
  let b = S.estimate ~config:cfg g ~terminals:[ 0; 3; 4 ] in
  check_close "same seed, same value" a.S.value b.S.value;
  Alcotest.(check int) "same samples" a.S.samples_drawn b.S.samples_drawn

let prop_s2bdd_bounds_valid =
  QCheck.Test.make ~name:"s2bdd bounds always contain brute force R" ~count:150
    (Test_bddbase.arb_graph_ts ~max_n:7 ~max_m:10 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let expect = BF.reliability g ~terminals:ts in
      let cfg = { S.default_config with S.width = 2; S.samples = 20 } in
      let r = S.estimate ~config:cfg g ~terminals:ts in
      r.S.lower <= expect +. 1e-9 && expect <= r.S.upper +. 1e-9)

let prop_s2bdd_exact_with_huge_width =
  QCheck.Test.make ~name:"s2bdd exact when width suffices" ~count:150
    (Test_bddbase.arb_graph_ts ~max_n:7 ~max_m:10 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let expect = BF.reliability g ~terminals:ts in
      let r = S.estimate ~config:(wide S.default_config) g ~terminals:ts in
      r.S.exact && Float.abs (r.S.value -. expect) <= 1e-9)

(* ---- result clamping and bound ordering regressions ---- *)

(* Regression: the raw stratified contribution can overshoot the proven
   upper bound under sampling noise (this seed is one such draw —
   raw ~ 0.7331 against upper 0.7248). The result must come back
   clamped into [lower, upper], with the excursion recorded in Obs
   rather than silently discarded. Pre-clamp code returned the raw
   value here. *)
let t_s2bdd_value_clamped_regression () =
  (* Bowtie: two triangles sharing vertex 2 — no bridge, so the raw
     graph hits the width cap with both terminals still separated. *)
  let g =
    graph ~n:5
      [ (0, 1, 0.6); (1, 2, 0.6); (2, 0, 0.6); (2, 3, 0.6); (3, 4, 0.6);
        (4, 2, 0.6) ]
  in
  let obs = Obs.create () in
  let cfg = { S.default_config with S.width = 2; S.samples = 20; S.seed = 26 } in
  let r = S.estimate ~obs ~config:cfg g ~terminals:[ 0; 4 ] in
  Alcotest.(check bool) "clamp event counted" true
    (Obs.counter_value obs "sampling.value_clamped" >= 1);
  let raw = Obs.gauge_value obs "sampling.raw_value" in
  Alcotest.(check bool)
    (Printf.sprintf "raw %.6f escapes [%.6f, %.6f]" raw r.S.lower r.S.upper)
    true
    (raw > r.S.upper);
  Alcotest.(check bool)
    (Printf.sprintf "value %.6f clamped into bounds" r.S.value)
    true
    (r.S.lower <= r.S.value && r.S.value <= r.S.upper);
  check_close "clamped to the violated bound" r.S.upper r.S.value

(* Regression: [lower] and [upper] are rounded independently from [pc]
   and [1 - pd], so on a fully resolved run they used to cross by an
   ulp (upper a hair below lower), putting value = lower above upper.
   This mix of near-one and near-zero probabilities reproduced it. *)
let t_s2bdd_bounds_ordered_when_exact () =
  let g =
    graph ~n:5
      [ (0, 1, 0.98875268947494399); (0, 2, 0.99109709523495815);
        (0, 3, 0.55054632160215988); (0, 4, 0.011082610370499964) ]
  in
  let r = S.estimate ~config:(wide S.default_config) g ~terminals:[ 1; 3; 4 ] in
  Alcotest.(check bool) "exact" true r.S.exact;
  Alcotest.(check bool)
    (Printf.sprintf "bounds ordered: %.17g <= %.17g" r.S.lower r.S.upper)
    true (r.S.lower <= r.S.upper);
  Alcotest.(check bool) "value within bounds" true
    (r.S.lower <= r.S.value && r.S.value <= r.S.upper)

(* ---- HT plug-in variance, Equation (8), against closed form ----

   On the 2-edge series graph 0-1-2 only the full mask connects the
   terminals, so the estimator collapses to a closed form: with
   q = p1 * p2 and pi = 1 - (1 - q)^s,

     value = q / pi        (if the full mask was drawn, else 0)
     var   = value (1 - value) / s  -  (s - 1) q^2 / (2 s)

   which pins every term of the implementation. *)
let ht_series_closed_form ~p ~s =
  let q = p *. p in
  let pi = 1. -. ((1. -. q) ** float_of_int s) in
  let value = q /. pi in
  let var =
    (value *. (1. -. value) /. float_of_int s)
    -. ((float_of_int s -. 1.) *. q *. q /. (2. *. float_of_int s))
  in
  (value, var)

let ht_series ~p ~seed ~samples =
  let g = graph ~n:3 [ (0, 1, p); (1, 2, p) ] in
  let obs = Obs.create () in
  let e = Mcsampling.horvitz_thompson ~obs ~seed g ~terminals:[ 0; 2 ] ~samples in
  (e, obs)

let t_ht_variance_closed_form () =
  (* p = 0.1, seed 1 draws the full mask: the plug-in is positive and
     must equal the closed form exactly. *)
  let e, obs = ht_series ~p:0.1 ~seed:1 ~samples:100 in
  let value, var = ht_series_closed_form ~p:0.1 ~s:100 in
  Alcotest.(check int) "full mask drawn once" 1 e.Mcsampling.hits;
  check_close ~eps:1e-15 "HT value = q/pi" value e.Mcsampling.value;
  Alcotest.(check bool) "closed-form variance positive" true (var > 0.);
  check_close ~eps:1e-15 "Eq.(8) = closed form" var e.Mcsampling.variance_estimate;
  Alcotest.(check int) "no clamp event" 0
    (Obs.counter_value obs "sampling.variance_clamped")

(* Regression: at p = 0.99 the Eq.(8) correction term dwarfs the first
   term and the plug-in goes negative (~ -0.475); it must come back
   clamped to 0 with the event counted and the raw value preserved in
   Obs. Pre-PR code clamped silently. *)
let t_ht_variance_clamped_regression () =
  let e, obs = ht_series ~p:0.99 ~seed:1 ~samples:100 in
  let _, raw_var = ht_series_closed_form ~p:0.99 ~s:100 in
  Alcotest.(check bool) "closed-form variance negative" true (raw_var < 0.);
  check_close "variance clamped to zero" 0. e.Mcsampling.variance_estimate;
  Alcotest.(check int) "clamp event counted" 1
    (Obs.counter_value obs "sampling.variance_clamped");
  check_close ~eps:1e-15 "raw variance preserved in Obs" raw_var
    (Obs.gauge_value obs "sampling.raw_variance")

(* ---- s_reduced reporting convention ---- *)

(* [report.s_reduced = 0] means "no sampling was needed", uniformly:
   trivially resolved runs, exact-by-construction runs (with and
   without the extension) and combined subproblem reports all follow
   it, even though the unused Theorem-1 budget of an exact run stays
   visible in [subresults]. Pre-PR, exact construction reported the
   unused s' while trivial runs reported 0. *)
let t_report_s_reduced_convention () =
  let g = two_triangles 0.6 in
  let ts = [ 0; 4 ] in
  let exact_ext = R.estimate ~config:(wide S.default_config) g ~terminals:ts in
  Alcotest.(check bool) "exact run" true exact_ext.R.exact;
  Alcotest.(check int) "exact (ext): s_reduced = 0" 0 exact_ext.R.s_reduced;
  let exact_raw =
    R.estimate ~config:(wide S.default_config) ~extension:false g ~terminals:ts
  in
  Alcotest.(check int) "exact (no ext): s_reduced = 0" 0 exact_raw.R.s_reduced;
  Alcotest.(check bool) "subresults keep the unused s'" true
    (List.for_all (fun (r : S.result) -> r.S.s_reduced > 0) exact_raw.R.subresults);
  let trivial = R.estimate g ~terminals:[ 0 ] in
  Alcotest.(check int) "trivial: s_reduced = 0" 0 trivial.R.s_reduced;
  let sampled =
    R.estimate
      ~config:{ S.default_config with S.width = 2; S.samples = 50 }
      ~extension:false g ~terminals:ts
  in
  Alcotest.(check bool) "sampled run" true (not sampled.R.exact);
  Alcotest.(check bool) "sampled: s_reduced > 0" true (sampled.R.s_reduced > 0)

(* ---- Reliability pipeline (Algorithm 1) ---- *)

let t_reliability_exact_small () =
  List.iter
    (fun (name, g, ts) ->
      let expect = BF.reliability g ~terminals:ts in
      let rep = R.estimate ~config:(wide S.default_config) g ~terminals:ts in
      Alcotest.(check bool) (name ^ " exact") true rep.R.exact;
      check_close ~eps:1e-9 name expect rep.R.value)
    [
      ("fig1", fig1 (), [ 0; 3; 4 ]);
      ("two triangles", two_triangles 0.6, [ 0; 4 ]);
      ("barbell", graph ~n:8
         [ (0, 1, 0.5); (1, 2, 0.5); (2, 0, 0.5); (2, 3, 0.9); (3, 4, 0.8);
           (4, 5, 0.5); (5, 6, 0.5); (6, 4, 0.5); (5, 7, 0.4) ], [ 0; 6 ]);
    ]

let t_reliability_extension_equivalent () =
  let g = two_triangles 0.6 in
  let ts = [ 0; 4 ] in
  let with_ext = R.estimate ~config:(wide S.default_config) g ~terminals:ts in
  let without = R.estimate ~config:(wide S.default_config) ~extension:false g ~terminals:ts in
  check_close ~eps:1e-9 "extension preserves exact value" without.R.value with_ext.R.value

let t_reliability_trivial () =
  let g = path4 0.5 in
  check_close "k=1" 1. (R.estimate g ~terminals:[ 0 ]).R.value;
  let disconnected = graph ~n:4 [ (0, 1, 0.9); (2, 3, 0.9) ] in
  let rep = R.estimate disconnected ~terminals:[ 0; 3 ] in
  check_close "separated" 0. rep.R.value;
  Alcotest.(check bool) "separated exact" true rep.R.exact

let t_reliability_exact_fn () =
  let g = two_triangles 0.6 in
  let ts = [ 0; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  (match R.exact g ~terminals:ts with
  | Ok r -> check_close ~eps:1e-9 "exact with ext" expect r
  | Error _ -> Alcotest.fail "DNF");
  match R.exact ~extension:false g ~terminals:ts with
  | Ok r -> check_close ~eps:1e-9 "exact without ext" expect r
  | Error _ -> Alcotest.fail "DNF"

let t_reliability_value_within_bounds () =
  let g = fig1 () in
  let cfg = { S.default_config with S.width = 2; S.samples = 50 } in
  for seed = 0 to 49 do
    let rep = R.estimate ~config:{ cfg with S.seed } g ~terminals:[ 0; 3; 4 ] in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: value %.4f in [%.4f, %.4f]" seed rep.R.value
         rep.R.lower rep.R.upper)
      true
      (rep.R.lower -. 1e-12 <= rep.R.value && rep.R.value <= rep.R.upper +. 1e-12)
  done

let prop_reliability_matches_bruteforce_exact =
  QCheck.Test.make ~name:"pipeline exact (wide) = brute force" ~count:150
    (Test_bddbase.arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let expect = BF.reliability g ~terminals:ts in
      let rep = R.estimate ~config:(wide S.default_config) g ~terminals:ts in
      rep.R.exact && Float.abs (rep.R.value -. expect) <= 1e-9)

let prop_reliability_bounds_valid_under_pressure =
  QCheck.Test.make ~name:"pipeline bounds contain R under deletion" ~count:100
    (Test_bddbase.arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let expect = BF.reliability g ~terminals:ts in
      let cfg = { S.default_config with S.width = 2; S.samples = 20 } in
      let rep = R.estimate ~config:cfg g ~terminals:ts in
      rep.R.lower <= expect +. 1e-9 && expect <= rep.R.upper +. 1e-9)

(* ---- baseline samplers ---- *)

let t_mc_sampler_statistics () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let est = Mcsampling.monte_carlo ~seed:7 g ~terminals:ts ~samples:40_000 in
  let sigma = sqrt (expect *. (1. -. expect) /. 40_000.) in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.4f ~ %.4f" est.Mcsampling.value expect)
    true
    (Float.abs (est.Mcsampling.value -. expect) <= 5. *. sigma);
  Alcotest.(check int) "samples used" 40_000 est.Mcsampling.samples_used

let t_ht_sampler_statistics () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let trials = 100 in
  let values =
    Array.init trials (fun i ->
        (Mcsampling.horvitz_thompson ~seed:(100 + i) g ~terminals:ts ~samples:500)
          .Mcsampling.value)
  in
  let mean, std = mean_std values in
  Alcotest.(check bool)
    (Printf.sprintf "HT mean %.4f ~ %.4f (std %.4f)" mean expect std)
    true
    (Float.abs (mean -. expect) <= (5. *. std /. sqrt (float_of_int trials)) +. 0.02)

let t_samplers_trivial () =
  let g = path4 0.5 in
  check_close "MC k=1" 1. (Mcsampling.monte_carlo g ~terminals:[ 0 ] ~samples:10).Mcsampling.value;
  Alcotest.check_raises "samples<=0" (Invalid_argument "Mcsampling: samples <= 0")
    (fun () -> ignore (Mcsampling.monte_carlo g ~terminals:[ 0; 1 ] ~samples:0))

let suite =
  ( "core",
    [
      Alcotest.test_case "samplesize: Theorem 1 cases" `Quick t_samplesize_cases;
      Alcotest.test_case "samplesize: invalid input" `Quick t_samplesize_invalid;
      Alcotest.test_case "s2bdd exact on small graphs" `Quick t_s2bdd_exact_small;
      Alcotest.test_case "s2bdd exact in all modes" `Quick t_s2bdd_modes_exact;
      Alcotest.test_case "s2bdd trivial cases" `Quick t_s2bdd_trivial;
      Alcotest.test_case "flag merge never wider" `Quick t_s2bdd_flag_merge_smaller;
      Alcotest.test_case "bounds contain truth under deletion" `Quick t_s2bdd_bounds_contain_truth;
      Alcotest.test_case "unbiased: MC w=2" `Slow t_s2bdd_unbiased_mc;
      Alcotest.test_case "unbiased: MC w=1" `Slow t_s2bdd_unbiased_mc_width1;
      Alcotest.test_case "unbiased: HT w=2" `Slow t_s2bdd_unbiased_ht;
      Alcotest.test_case "unbiased: random deletion" `Slow t_s2bdd_unbiased_random_heuristic;
      Alcotest.test_case "deterministic by seed" `Quick t_s2bdd_deterministic_by_seed;
      Alcotest.test_case "value clamped into bounds (regression)" `Quick t_s2bdd_value_clamped_regression;
      Alcotest.test_case "bounds ordered on exact runs (regression)" `Quick t_s2bdd_bounds_ordered_when_exact;
      Alcotest.test_case "HT Eq.(8) variance = closed form" `Quick t_ht_variance_closed_form;
      Alcotest.test_case "HT variance clamp counted (regression)" `Quick t_ht_variance_clamped_regression;
      Alcotest.test_case "s_reduced = 0 means no sampling" `Quick t_report_s_reduced_convention;
      Alcotest.test_case "pipeline exact on small graphs" `Quick t_reliability_exact_small;
      Alcotest.test_case "pipeline: extension equivalence" `Quick t_reliability_extension_equivalent;
      Alcotest.test_case "pipeline: trivial cases" `Quick t_reliability_trivial;
      Alcotest.test_case "pipeline: exact function" `Quick t_reliability_exact_fn;
      Alcotest.test_case "pipeline: value within bounds" `Quick t_reliability_value_within_bounds;
      Alcotest.test_case "baseline MC statistics" `Slow t_mc_sampler_statistics;
      Alcotest.test_case "baseline HT statistics" `Slow t_ht_sampler_statistics;
      Alcotest.test_case "baseline samplers trivial" `Quick t_samplers_trivial;
    ]
    @ qtests
        [
          prop_samplesize_never_exceeds_s;
          prop_samplesize_monotone_in_pd_when_pc0;
          prop_s2bdd_bounds_valid;
          prop_s2bdd_exact_with_huge_width;
          prop_reliability_matches_bruteforce_exact;
          prop_reliability_bounds_valid_under_pressure;
        ] )
