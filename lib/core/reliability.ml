module P = Preprocess.Pipeline

type report = {
  value : float;
  lower : float;
  upper : float;
  exact : bool;
  s_given : int;
  s_reduced : int;
  samples_drawn : int;
  subresults : S2bdd.result list;
  preprocess : P.stats option;
}

(* [clamp] used to live here to repair out-of-bounds subresult values;
   S2bdd now clamps at the source, so the report takes them as-is. *)

(* Report-level convention: [s_reduced = 0] means "no sampling needed".
   The trivial paths state it directly; [combine] and the
   no-extension path below derive it — an exact run never consumed its
   residual budget, so reporting the unused Theorem-1 [s'] there would
   make a trivially-resolved run and a construction-resolved exact run
   read differently for the same situation. The per-subproblem [s']
   values stay available unaltered in [subresults]. *)
let trivial_report cfg value =
  {
    value;
    lower = value;
    upper = value;
    exact = true;
    s_given = cfg.S2bdd.samples;
    s_reduced = 0;
    samples_drawn = 0;
    subresults = [];
    preprocess = None;
  }

let combine cfg ~pb ~stats subresults =
  let value, lower, upper, exact =
    List.fold_left
      (fun (v, lo, hi, ex) (r : S2bdd.result) ->
        (* [r.value] is clamped into [[r.lower, r.upper]] at the source
           (S2bdd), so the products nest: value stays within the
           combined bounds. *)
        ( v *. r.S2bdd.value,
          lo *. r.S2bdd.lower,
          hi *. r.S2bdd.upper,
          ex && r.S2bdd.exact ))
      (pb, pb, pb, true) subresults
  in
  {
    value;
    lower;
    upper;
    exact;
    s_given = cfg.S2bdd.samples;
    (* The binding residual budget: subproblems are independent, each
       with its own Theorem-1 budget, so the largest one dominates —
       unless the whole run resolved exactly, where no sampling was
       needed at all. *)
    s_reduced =
      if exact then 0
      else
        List.fold_left (fun acc (r : S2bdd.result) -> max acc r.S2bdd.s_reduced) 0 subresults;
    samples_drawn =
      List.fold_left
        (fun acc (r : S2bdd.result) -> acc + r.S2bdd.samples_drawn)
        0 subresults;
    subresults;
    preprocess = stats;
  }

(* Close the run with an "estimate" instant so traces (and the live
   reporter) always carry the final answer, whichever path produced
   it. *)
let emit_report trace (rep : report) =
  if Trace.enabled trace then
    Trace.instant trace "estimate"
      ~args:
        [
          ("value", Trace.Float rep.value);
          ("lower", Trace.Float rep.lower);
          ("upper", Trace.Float rep.upper);
          ("exact", Trace.Bool rep.exact);
          ("samples", Trace.Int rep.samples_drawn);
        ];
  rep

let estimate ?(obs = Obs.disabled) ?(trace = Trace.disabled)
    ?(config = S2bdd.default_config) ?(extension = true) ?(jobs = 1) ?prep
    ?orders g ~terminals =
  if jobs < 1 then invalid_arg "Reliability.estimate: jobs < 1";
  let ejobs = Par.effective_jobs jobs in
  let pool = if ejobs > 1 then Some (Par.Pool.shared ~jobs:ejobs) else None in
  if extension then begin
    (* [prep] short-circuits the pipeline with a previously computed
       outcome for the same (graph, terminals): the engine caches it
       across queries. Everything downstream — seed splitting, ordering,
       sampling — is a pure function of the outcome and [config], so a
       cached outcome yields the bit-identical report. *)
    let outcome =
      match prep with
      | Some o -> o
      | None -> P.run ~obs ~trace g ~terminals
    in
    match outcome with
    | P.Trivial r ->
      emit_report trace (trivial_report config (Xprob.to_float_exn r))
    | P.Reduced { pb; subproblems; stats } ->
      (* Per-subproblem seeds are drawn sequentially from the master
         seed BEFORE any subproblem runs, so the seed assignment — and
         hence every subresult — is independent of execution order.
         The subproblems then run as pool tasks (their descents nest on
         the same pool) with results collected in subproblem order.
         Each task records into its own observer ([Obs.fresh_like]) and
         its own trace buffer ([Trace.task], lane [i mod lanes]); both
         merge back in subproblem order, keeping the stats and the
         trace stream deterministic under any domain schedule. *)
      let seed_rng = Prng.create config.S2bdd.seed in
      let sub_arr = Array.of_list subproblems in
      let seeds =
        Array.map (fun _ -> Int64.to_int (Prng.bits64 seed_rng)) sub_arr
      in
      let sub_obs = Array.map (fun _ -> Obs.fresh_like obs) sub_arr in
      let lanes = Par.run_lanes ?pool () in
      let sub_trace =
        Array.mapi (fun i _ -> Trace.task trace ~lane:(i mod lanes)) sub_arr
      in
      let subresults =
        Par.run ?pool (Array.length sub_arr) (fun i ->
            let sp = sub_arr.(i) in
            let sub_cfg = { config with S2bdd.seed = seeds.(i) } in
            (* A cached per-subproblem ordering (the engine computes the
               same [`Auto] BFS order once per (graph, terminals)) slots
               in as [`Explicit]; an equal array yields the identical
               construction. *)
            let sub_cfg =
              match orders with
              | Some os -> { sub_cfg with S2bdd.order = `Explicit os.(i) }
              | None -> sub_cfg
            in
            Trace.span sub_trace.(i) "subproblem"
              ~args:
                [
                  ("index", Trace.Int i);
                  ("edges", Trace.Int (Ugraph.n_edges sp.P.graph));
                ]
            @@ fun () ->
            S2bdd.estimate ?pool ~obs:sub_obs.(i) ~trace:sub_trace.(i)
              ~config:sub_cfg sp.P.graph ~terminals:sp.P.terminals)
        |> Array.to_list
      in
      Array.iter (fun so -> Obs.merge ~into:obs so) sub_obs;
      Array.iter (fun st -> Trace.merge ~into:trace st) sub_trace;
      emit_report trace
        (combine config ~pb:(Xprob.to_float_exn pb) ~stats:(Some stats)
           subresults)
  end
  else begin
    let r = S2bdd.estimate ?pool ~obs ~trace ~config g ~terminals in
    emit_report trace
      {
        value = r.S2bdd.value;
        lower = r.S2bdd.lower;
        upper = r.S2bdd.upper;
        exact = r.S2bdd.exact;
        s_given = r.S2bdd.s_given;
        s_reduced = (if r.S2bdd.exact then 0 else r.S2bdd.s_reduced);
        samples_drawn = r.S2bdd.samples_drawn;
        subresults = [ r ];
        preprocess = None;
      }
  end

let exact ?node_budget ?(extension = true) g ~terminals =
  if not extension then Bddbase.Exact.reliability_float ?node_budget g ~terminals
  else begin
    match P.run g ~terminals with
    | P.Trivial r -> Ok (Xprob.to_float_exn r)
    | P.Reduced { pb; subproblems; _ } ->
      let rec go acc = function
        | [] -> Ok acc
        | (sp : P.subproblem) :: rest -> (
          match
            Bddbase.Exact.reliability_float ?node_budget sp.P.graph
              ~terminals:sp.P.terminals
          with
          | Ok r -> go (acc *. r) rest
          | Error e -> Error e)
      in
      go (Xprob.to_float_exn pb) subproblems
  end
