(** The end-to-end pipeline of Algorithm 1: preprocess with the
    extension technique, run an S2BDD per decomposed subproblem, and
    multiply.

    This is the primary public entry point of the library. *)

type report = {
  value : float;       (** estimated (or exact) [R[G, T]], within
                           [[lower, upper]] (each subresult is clamped
                           at the source, {!S2bdd.result}[.value]) *)
  lower : float;       (** proven lower bound (product form) *)
  upper : float;       (** proven upper bound *)
  exact : bool;        (** every subproblem resolved exactly *)
  s_given : int;
  s_reduced : int;
      (** largest final Theorem-1 budget over subproblems; [0] means
          {e no sampling was needed} — the run resolved exactly
          (trivially in preprocessing or by complete construction).
          Uniform across every path: trivial reports, combined
          subproblem reports and the no-extension path all follow it.
          The unused per-subproblem [s'] of an exact run stays
          available in [subresults]. *)
  samples_drawn : int;
  subresults : S2bdd.result list;
  preprocess : Preprocess.Pipeline.stats option;
      (** [None] when the extension produced a trivial answer or was
          disabled *)
}

val estimate :
  ?obs:Obs.t ->
  ?trace:Trace.t ->
  ?config:S2bdd.config ->
  ?extension:bool ->
  ?jobs:int ->
  ?prep:Preprocess.Pipeline.outcome ->
  ?orders:int array array ->
  Ugraph.t ->
  terminals:int list ->
  report
(** [estimate g ~terminals] approximates [R[G, T]].

    [obs] (default {!Obs.disabled}) collects the per-phase run account:
    preprocessing under ["preprocess"] (see {!Preprocess.Pipeline.run}),
    per-subproblem construction and descents under ["construction"] and
    ["sampling"] (see {!S2bdd.estimate}; subproblem observers are
    merged back in subproblem order, so the stats are deterministic at
    any [jobs]). Instrumentation never changes results.

    [trace] (default {!Trace.disabled}) streams the time-domain view of
    the same run: the preprocessing stage spans, one [subproblem] span
    per decomposed subproblem (recorded into a per-task buffer on lane
    [index mod lanes] and merged back in subproblem order, wrapping
    that subproblem's [layer]/[descent] events), and a final [estimate]
    instant carrying [value]/[lower]/[upper]/[exact]/[samples] — on
    every return path, trivial ones included.

    With [extension = true] (default) the graph is pruned, decomposed
    at bridges and transformed first (Section 5); each subproblem gets
    its own S2BDD with an independent seed split from [config.seed],
    and the results multiply with the bridge probability [pb]
    (Lemma 5.1). With [extension = false], a single S2BDD runs on the
    raw graph — the paper's "Pro w/o ext" configuration.

    [jobs] (default 1) sets the domain-pool size: decomposed
    subproblems run concurrently, and each S2BDD's stratified descents
    run on the same pool (see {!S2bdd.estimate}). Per-subproblem seeds
    are assigned before execution and results fold in subproblem
    order, so {b the report is bit-identical at every [jobs] value}.

    [prep] supplies a previously computed {!Preprocess.Pipeline.run}
    outcome for the same [(g, terminals)] pair, skipping the pipeline
    (meaningful only with [extension = true]). Everything downstream is
    a pure function of the outcome and [config], so the report is
    bit-identical to recomputing it — {!Engine}'s artifact cache relies
    on this.

    [orders] supplies one explicit edge ordering per decomposed
    subproblem (in subproblem order, matching [prep]); each must equal
    what [config.order] would have computed for that subproblem, which
    makes the construction bit-identical while skipping the ordering
    pass. Only meaningful together with [prep].
    @raise Invalid_argument if [jobs < 1]. *)

val exact :
  ?node_budget:int ->
  ?extension:bool ->
  Ugraph.t ->
  terminals:int list ->
  (float, Bddbase.Exact.error) Result.t
(** Exact reliability through the full-BDD baseline, optionally after
    the (exactness-preserving) extension technique. *)
