open Testutil

let t_roundtrip () =
  List.iter
    (fun x ->
      check_close (Printf.sprintf "roundtrip %g" x) x
        (Xprob.to_float_exn (Xprob.of_float x)))
    [ 0.; 1.; 0.5; 0.7; 1e-300; 1e300; 3.141592653589793; 4.9e-324 ]

let t_of_float_rejects () =
  List.iter
    (fun x ->
      Alcotest.check_raises
        (Printf.sprintf "of_float %g rejected" x)
        (Invalid_argument (Printf.sprintf "Xprob.of_float: %g" x))
        (fun () -> ignore (Xprob.of_float x)))
    [ -1.; -1e-300; Float.infinity ]

let t_mul_underflow () =
  (* 0.5^2000 underflows a double but must stay exact here. *)
  let x = Xprob.pow_int Xprob.half 2000 in
  check_close "log2 of 0.5^2000" (-2000.) (Xprob.log2 x);
  Alcotest.(check bool) "not zero" false (Xprob.is_zero x);
  check_close "to_float_approx underflows to 0" 0. (Xprob.to_float_approx x)

let t_mul_matches_float () =
  let a = Xprob.of_float 0.3 and b = Xprob.of_float 0.7 in
  check_close "0.3*0.7" (0.3 *. 0.7) (Xprob.to_float_exn (Xprob.mul a b))

let t_add_sub () =
  let a = Xprob.of_float 0.25 and b = Xprob.of_float 0.5 in
  check_close "add" 0.75 (Xprob.to_float_exn (Xprob.add a b));
  check_close "sub" 0.25 (Xprob.to_float_exn (Xprob.sub b a));
  Alcotest.(check bool) "sub to zero" true Xprob.(is_zero (sub b b))

let t_sub_negative_raises () =
  let a = Xprob.of_float 0.25 and b = Xprob.of_float 0.5 in
  Alcotest.check_raises "negative sub" (Invalid_argument "Xprob.sub: negative result")
    (fun () -> ignore (Xprob.sub a b))

let t_sub_cancellation_noise () =
  (* b slightly above a within relative 1e-12: clamps to zero. *)
  let a = Xprob.of_float 1.0 in
  let b = Xprob.add a (Xprob.of_float 1e-13) in
  Alcotest.(check bool) "clamped" true (Xprob.is_zero (Xprob.sub a b))

let t_add_disparate_magnitudes () =
  let tiny = Xprob.pow_int Xprob.half 500 in
  let s = Xprob.add Xprob.one tiny in
  check_close "1 + 2^-500 = 1" 1.0 (Xprob.to_float_exn s);
  (* Symmetric order. *)
  let s' = Xprob.add tiny Xprob.one in
  Alcotest.(check bool) "commutative" true (Xprob.equal s s')

let t_complement () =
  check_close "1-0.3" 0.7 (Xprob.to_float_exn (Xprob.complement (Xprob.of_float 0.3)));
  Alcotest.(check bool) "1-1=0" true (Xprob.is_zero (Xprob.complement Xprob.one));
  Alcotest.(check bool) "1-0=1" true (Xprob.equal Xprob.one (Xprob.complement Xprob.zero));
  Alcotest.check_raises "complement of >1"
    (Invalid_argument "Xprob.complement: argument exceeds one") (fun () ->
      ignore (Xprob.complement (Xprob.of_float 1.5)))

let t_div () =
  let a = Xprob.of_float 0.21 and b = Xprob.of_float 0.7 in
  check_close "0.21/0.7" 0.3 (Xprob.to_float_exn (Xprob.div a b));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Xprob.div a Xprob.zero))

let t_compare () =
  let xs = [ 0.; 1e-30; 0.1; 0.5; 0.9999; 1.; 2.5; 1e30 ] in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check int)
            (Printf.sprintf "compare %g %g" x y)
            (Float.compare x y)
            (Xprob.compare (Xprob.of_float x) (Xprob.of_float y)))
        xs)
    xs

let t_sum () =
  let xs = List.init 100 (fun i -> Xprob.of_float (float_of_int i)) in
  check_close "sum 0..99" 4950. (Xprob.to_float_exn (Xprob.sum xs))

let t_pow_int () =
  check_close "0.7^10" (0.7 ** 10.) (Xprob.to_float_exn (Xprob.pow_int (Xprob.of_float 0.7) 10));
  Alcotest.(check bool) "x^0 = 1" true
    (Xprob.equal Xprob.one (Xprob.pow_int (Xprob.of_float 0.3) 0));
  Alcotest.(check bool) "0^5 = 0" true (Xprob.is_zero (Xprob.pow_int Xprob.zero 5))

let t_log10 () =
  check_close ~eps:1e-12 "log10 1e-20" (-20.) (Xprob.log10 (Xprob.of_float 1e-20));
  let tiny = Xprob.pow_int (Xprob.of_float 0.1) 100_000 in
  check_close ~eps:1e-6 "log10 0.1^1e5" (-100_000.) (Xprob.log10 tiny)

let t_to_string () =
  Alcotest.(check string) "zero" "0" (Xprob.to_string Xprob.zero);
  let s = Xprob.to_string (Xprob.pow_int (Xprob.of_float 0.1) 5000) in
  Alcotest.(check bool) ("exponent notation: " ^ s) true
    (String.length s > 2 && String.contains s 'e')

let t_mantissa_exponent () =
  let m, e = Xprob.mantissa_exponent (Xprob.of_float 0.75) in
  check_close "mantissa" 0.75 m;
  Alcotest.(check int) "exponent" 0 e;
  Alcotest.(check bool) "normalised" true (m >= 0.5 && m < 1.)

(* Property tests *)

let pos_float = QCheck.Gen.map (fun f -> Float.abs f +. 1e-310) QCheck.Gen.pfloat

let arb_pair =
  QCheck.make ~print:(fun (a, b) -> Printf.sprintf "(%g, %g)" a b)
    QCheck.Gen.(pair pos_float pos_float)

let prop_mul_matches_float =
  QCheck.Test.make ~name:"xprob mul matches float where representable" ~count:500
    arb_pair (fun (a, b) ->
      let prod = a *. b in
      QCheck.assume (Float.is_finite prod && prod > 1e-300);
      let x = Xprob.to_float_exn (Xprob.mul (Xprob.of_float a) (Xprob.of_float b)) in
      Float.abs (x -. prod) <= 1e-12 *. prod)

let prop_add_matches_float =
  QCheck.Test.make ~name:"xprob add matches float" ~count:500 arb_pair
    (fun (a, b) ->
      let s = a +. b in
      QCheck.assume (Float.is_finite s);
      let x = Xprob.to_float_exn (Xprob.add (Xprob.of_float a) (Xprob.of_float b)) in
      Float.abs (x -. s) <= 1e-12 *. s)

let prop_order_embedding =
  QCheck.Test.make ~name:"xprob compare embeds float order" ~count:500 arb_pair
    (fun (a, b) ->
      Xprob.compare (Xprob.of_float a) (Xprob.of_float b) = Float.compare a b)

let prop_complement_involutive =
  QCheck.Test.make ~name:"complement involutive on [0,1]" ~count:500
    QCheck.(float_bound_inclusive 1.0)
    (fun p ->
      let x = Xprob.of_float p in
      let y = Xprob.complement (Xprob.complement x) in
      Float.abs (Xprob.to_float_exn y -. p) <= 1e-9)

let suite =
  ( "xprob",
    [
      Alcotest.test_case "roundtrip" `Quick t_roundtrip;
      Alcotest.test_case "of_float rejects bad input" `Quick t_of_float_rejects;
      Alcotest.test_case "mul survives underflow" `Quick t_mul_underflow;
      Alcotest.test_case "mul matches float" `Quick t_mul_matches_float;
      Alcotest.test_case "add/sub" `Quick t_add_sub;
      Alcotest.test_case "sub negative raises" `Quick t_sub_negative_raises;
      Alcotest.test_case "sub clamps cancellation noise" `Quick t_sub_cancellation_noise;
      Alcotest.test_case "add disparate magnitudes" `Quick t_add_disparate_magnitudes;
      Alcotest.test_case "complement" `Quick t_complement;
      Alcotest.test_case "div" `Quick t_div;
      Alcotest.test_case "compare embeds float order" `Quick t_compare;
      Alcotest.test_case "sum" `Quick t_sum;
      Alcotest.test_case "pow_int" `Quick t_pow_int;
      Alcotest.test_case "log10 deep underflow" `Quick t_log10;
      Alcotest.test_case "to_string" `Quick t_to_string;
      Alcotest.test_case "mantissa_exponent" `Quick t_mantissa_exponent;
    ]
    @ qtests
        [
          prop_mul_matches_float;
          prop_add_matches_float;
          prop_order_embedding;
          prop_complement_involutive;
        ] )
