(** Edge orderings for frontier-based BDD construction.

    The width of a frontier-based BDD is governed by the number of
    frontier vertices each layer keeps alive, which depends entirely on
    the order in which edges are processed (the [Ordering(E)] step of
    Algorithm 2). A good order keeps the incident edges of each vertex
    close together. *)

type strategy =
  | Natural      (** edge-identifier order, as stored *)
  | Bfs          (** vertices by BFS from a low-degree seed; edges grouped by first-visited endpoint *)
  | Dfs          (** same with DFS vertex order *)
  | Degree       (** vertices by ascending degree, greedily localised *)
  | Random of int  (** uniformly random order from the given seed *)
  | Bfs_from of int list
      (** multi-source BFS from the given vertices (typically the
          terminal set): edges incident to the sources come first, so a
          frontier-based construction decides each terminal's
          connectivity as early as possible — the property that makes
          the S2BDD's bounds tighten quickly *)

val strategy_name : strategy -> string

val all_strategies : strategy list
(** One representative of each constructor (seed 0 for [Random]). *)

val order_edges : strategy -> Ugraph.t -> int array
(** A permutation [pos -> eid] covering every edge exactly once. *)

(** {1 Frontier plans} *)

module Frontier : sig
  type plan = {
    order : int array;       (** [pos -> eid] *)
    pos_of_eid : int array;  (** inverse permutation *)
    first_pos : int array;
        (** per vertex: position of its first incident edge, or [-1] if
            isolated *)
    last_pos : int array;    (** per vertex: position of its last incident edge, or [-1] *)
    width : int array;
        (** [width.(l)]: number of frontier vertices alive after
            processing position [l] (vertices whose first position is
            [<= l] and last position [> l]) *)
    max_width : int;
  }

  val plan : Ugraph.t -> int array -> plan
  (** Build the frontier plan for a given edge order.
      @raise Invalid_argument if [order] is not a permutation of the
      edge identifiers. *)

  val max_width_of : Ugraph.t -> strategy -> int
  (** Convenience: frontier width of [order_edges strategy g]. *)
end

val best_order : Ugraph.t -> int array
(** The order among {!all_strategies} (excluding [Random]) with the
    smallest maximum frontier width, breaking ties towards [Bfs]. *)
