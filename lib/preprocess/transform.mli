(** The "Transform" phase of the paper's extension technique (Section 5):
    reliability-preserving local rewrites applied to fixpoint.

    - {e Loop}: a self-loop never affects connectivity; delete it.
    - {e Parallel edges}: replace edges [e, e'] between the same pair by
      one edge with [p = 1 - (1 - p(e)) * (1 - p(e'))].
    - {e Sequential edges}: a non-terminal vertex [v] of degree two with
      edges [(v, v'), (v, v'')] is replaced by the single edge
      [(v', v'')] with [p = p(e) * p(e')]; whole chains collapse in one
      round. A chain closing on itself (an ear) becomes a self-loop and
      dies the next round; a floating terminal-free cycle is deleted.
    - {e Dangling}: a non-terminal vertex of degree at most one cannot
      lie on any terminal–terminal path; delete it and its edge.

    Every rewrite preserves [R[G, T]] exactly (checked against brute
    force in the test suite). *)

type result = {
  graph : Ugraph.t;        (** transformed graph, vertices renumbered *)
  terminals : int list;    (** terminals in the new numbering *)
  old_of_new : int array;  (** original vertex id per new vertex id *)
  rounds : int;            (** fixpoint iterations performed *)
}

val run : Ugraph.t -> terminals:int list -> result
(** Apply all rewrites until none fires. Terminal vertices are always
    retained, even if the rewrites isolate them (which signals overall
    reliability zero to the caller). *)
