let uniform ~seed g =
  let rng = Prng.create seed in
  Ugraph.map_probs (fun _ _ -> Float.max 1e-9 (Prng.float rng)) g

let uniform_range ~seed ~lo ~hi g =
  if not (0. <= lo && lo <= hi && hi <= 1.) then
    invalid_arg "Probability.uniform_range: bad range";
  let rng = Prng.create seed in
  Ugraph.map_probs (fun _ _ -> Prng.uniform rng lo hi) g

let log_formula value max_value =
  Float.log (value +. 1.) /. Float.log (max_value +. 2.)

let check_len name arr g =
  if Array.length arr <> Ugraph.n_edges g then
    invalid_arg (Printf.sprintf "Probability.%s: per-edge array length mismatch" name)

let coauthor ~alphas g =
  check_len "coauthor" alphas g;
  let alpha_max = Array.fold_left max 1 alphas in
  Ugraph.map_probs
    (fun eid _ -> log_formula (float_of_int alphas.(eid)) (float_of_int alpha_max))
    g

let road ~lengths g =
  check_len "road" lengths g;
  let len_max = Array.fold_left Float.max 1e-9 lengths in
  Ugraph.map_probs (fun eid _ -> log_formula lengths.(eid) len_max) g

let interaction_scores ~seed g =
  let rng = Prng.create seed in
  (* Mean of two uniforms: triangular around 0.5, then slightly shifted
     down towards Hit-direct's 0.47 average, clamped into (0, 1]. *)
  Ugraph.map_probs
    (fun _ _ ->
      let x = ((Prng.float rng +. Prng.float rng) /. 2.) -. 0.03 in
      Float.max 0.01 (Float.min 1. x))
    g

let calibrate_mean ~target g =
  if target <= 0. || target >= 1. then
    invalid_arg "Probability.calibrate_mean: target outside (0, 1)";
  let ps =
    Ugraph.fold_edges (fun acc _ (e : Ugraph.edge) -> e.p :: acc) [] g
  in
  let adjustable = List.exists (fun p -> p > 0. && p < 1.) ps in
  if not adjustable then
    invalid_arg "Probability.calibrate_mean: no adjustable probabilities";
  let m = float_of_int (List.length ps) in
  let mean gamma =
    List.fold_left (fun acc p -> acc +. Float.pow p gamma) 0. ps /. m
  in
  (* mean is decreasing in gamma; bisect. *)
  let rec bisect lo hi n =
    let mid = (lo +. hi) /. 2. in
    if n = 0 then mid
    else if mean mid > target then bisect mid hi (n - 1)
    else bisect lo mid (n - 1)
  in
  let gamma = bisect 0.01 50. 60 in
  Ugraph.map_probs (fun _ (e : Ugraph.edge) -> Float.pow e.p gamma) g
