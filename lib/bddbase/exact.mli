(** Exact k-terminal reliability by a full frontier-based BDD — the
    paper's "BDD-based approach" baseline (Hardy et al. style, with the
    TdZDD-like frontier construction of Section 3.2.1).

    The construction keeps {e every} layer's node table alive (as the
    baseline does), so memory grows with the total BDD size; exceeding
    [node_budget] aborts with [`Node_budget_exceeded], reproducing the
    baseline's DNF behaviour on large graphs. Probability mass is pushed
    top-down; the 1-sink accumulates the exact reliability. *)

type stats = {
  layers : int;          (** number of edge layers processed *)
  total_nodes : int;     (** BDD size: nodes summed over all layers *)
  max_layer_nodes : int; (** widest layer *)
  pc : Xprob.t;          (** mass proven connected (the result) *)
  pd : Xprob.t;          (** mass proven disconnected *)
}

type error = [ `Node_budget_exceeded of int ]

val default_node_budget : int

val reliability :
  ?order:int array ->
  ?node_budget:int ->
  ?eager:bool ->
  Ugraph.t ->
  terminals:int list ->
  (Xprob.t * stats, error) Result.t
(** [reliability g ~terminals] computes the exact [R[G, T]].

    [order] defaults to {!Graphalgo.Ordering.best_order}.
    [node_budget] defaults to {!default_node_budget} total nodes.
    [eager] (default [false], matching the state-of-the-art baseline)
    enables the Lemma 4.1–4.2 early sinking; the result is identical,
    the BDD smaller.

    Degenerate cases are handled before construction: a single terminal
    yields 1; terminals that are topologically disconnected (or
    isolated) yield 0. *)

val reliability_float :
  ?order:int array ->
  ?node_budget:int ->
  ?eager:bool ->
  Ugraph.t ->
  terminals:int list ->
  (float, error) Result.t
(** {!reliability} rounded into a float (underflowing to 0 if beyond
    float range). *)
