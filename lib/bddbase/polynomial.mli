(** The reliability polynomial (Colbourn 1987, the classical object the
    paper's exact computation specialises): for a graph with [m] edges
    and terminal set [T],

    [R(p) = sum_j N_j p^j (1-p)^(m-j)]

    where [N_j] counts the [j]-edge subgraphs connecting all terminals.
    The coefficients are computed with the same frontier construction as
    the exact BDD, carrying one subgraph-count vector per node instead
    of a probability — so the whole polynomial costs one BDD pass.

    Counts are held in floats: exact up to [2^53], which covers every
    graph the exact BDD can finish anyway. *)

type t = private {
  n_edges : int;
  counts : float array;  (** [counts.(j)] is [N_j]; length [m + 1] *)
}

type error = [ `Node_budget_exceeded of int ]

val compute :
  ?order:int array ->
  ?node_budget:int ->
  Ugraph.t ->
  terminals:int list ->
  (t, error) Result.t
(** Coefficients of the reliability polynomial. Edge probabilities of
    the input are ignored (the polynomial is about the topology).
    Degenerate terminal sets are handled: a single terminal yields
    [N_j = C(m, j)]; separated terminals yield all zeros. *)

val eval : t -> float -> float
(** [eval poly p] is [R(p)] for a uniform edge probability [p],
    evaluated stably in the binomial basis.
    @raise Invalid_argument if [p] is outside [[0, 1]]. *)

val connected_subgraphs : t -> float
(** [sum_j N_j] — the number of possible graphs connecting the
    terminals (equals [2^m * R(1/2)]). *)

val pp : Format.formatter -> t -> unit
