(* Quickstart: build an uncertain graph, pick terminals, estimate the
   network reliability.

     dune exec examples/quickstart.exe *)

module S = Netrel.S2bdd
module R = Netrel.Reliability

let () =
  (* The uncertain graph from Figure 1 of the paper: five vertices,
     six edges, every edge present with probability 0.7. *)
  let p = 0.7 in
  let g =
    Ugraph.create ~n:5
      [
        { Ugraph.u = 0; v = 1; p }; (* a - b *)
        { Ugraph.u = 0; v = 2; p }; (* a - c *)
        { Ugraph.u = 1; v = 3; p }; (* b - d *)
        { Ugraph.u = 2; v = 3; p }; (* c - d *)
        { Ugraph.u = 1; v = 4; p }; (* b - e *)
        { Ugraph.u = 3; v = 4; p }; (* d - e *)
      ]
  in
  let terminals = [ 0; 3; 4 ] in
  (* a, d, e: the black vertices of Figure 1 *)

  (* Exact answer (the graph is tiny, so the S2BDD resolves it without
     sampling at all). *)
  let report = R.estimate g ~terminals in
  Printf.printf "Network reliability R[G, {a,d,e}] = %.6f%s\n" report.R.value
    (if report.R.exact then " (exact)" else "");
  Printf.printf "Proven bounds: [%.6f, %.6f]\n" report.R.lower report.R.upper;

  (* Cross-check against exhaustive enumeration of all 2^6 possible
     graphs (Definition 1 computed literally). *)
  let brute = Bddbase.Bruteforce.reliability g ~terminals in
  Printf.printf "Brute force over %d possible graphs: %.6f\n"
    (1 lsl Ugraph.n_edges g) brute;

  (* The same estimate under a constrained width: the S2BDD deletes
     nodes, keeps proven bounds, and samples only the unresolved
     remainder (stratified sampling, Theorems 1-2). *)
  let config = { S.default_config with S.width = 2; S.samples = 1_000 } in
  let constrained = R.estimate ~config g ~terminals in
  Printf.printf
    "Width-2 S2BDD: estimate %.6f in proven bounds [%.6f, %.6f], %d samples\n"
    constrained.R.value constrained.R.lower constrained.R.upper
    constrained.R.samples_drawn;

  (* Plain Monte Carlo baseline for comparison. *)
  let mc = Mcsampling.monte_carlo g ~terminals ~samples:10_000 in
  Printf.printf "Plain Monte Carlo (s = 10000): %.6f\n" mc.Mcsampling.value
