open Testutil

let t_singletons () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "size" 5 (Dsu.size d);
  Alcotest.(check int) "sets" 5 (Dsu.count_sets d);
  for i = 0 to 4 do
    Alcotest.(check int) "self root" i (Dsu.find d i);
    Alcotest.(check int) "component size" 1 (Dsu.component_size d i)
  done

let t_union_find () =
  let d = Dsu.create 6 in
  Alcotest.(check bool) "new union" true (Dsu.union d 0 1);
  Alcotest.(check bool) "redundant union" false (Dsu.union d 1 0);
  ignore (Dsu.union d 2 3);
  Alcotest.(check bool) "0~1" true (Dsu.connected d 0 1);
  Alcotest.(check bool) "0!~2" false (Dsu.connected d 0 2);
  ignore (Dsu.union d 1 2);
  Alcotest.(check bool) "0~3 transitively" true (Dsu.connected d 0 3);
  Alcotest.(check int) "component size" 4 (Dsu.component_size d 3);
  Alcotest.(check int) "sets" 3 (Dsu.count_sets d)

let t_reset () =
  let d = Dsu.create 4 in
  ignore (Dsu.union d 0 1);
  ignore (Dsu.union d 2 3);
  Dsu.reset d;
  Alcotest.(check int) "sets after reset" 4 (Dsu.count_sets d);
  Alcotest.(check bool) "disconnected" false (Dsu.connected d 0 1);
  Alcotest.(check int) "size 1" 1 (Dsu.component_size d 0)

let t_all_connected () =
  let d = Dsu.create 5 in
  Alcotest.(check bool) "empty list" true (Dsu.all_connected d []);
  Alcotest.(check bool) "singleton" true (Dsu.all_connected d [ 3 ]);
  ignore (Dsu.union d 0 1);
  ignore (Dsu.union d 1 2);
  Alcotest.(check bool) "connected triple" true (Dsu.all_connected d [ 0; 1; 2 ]);
  Alcotest.(check bool) "broken by 4" false (Dsu.all_connected d [ 0; 1; 4 ])

let t_create_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Dsu.create: negative size")
    (fun () -> ignore (Dsu.create (-1)))

let t_zero_size () =
  let d = Dsu.create 0 in
  Alcotest.(check int) "no sets" 0 (Dsu.count_sets d)

(* Property: DSU find induces the same partition as the naive relation
   closure of the applied unions. *)
let prop_matches_naive =
  let gen =
    QCheck.Gen.(
      sized (fun sz ->
          let n = 2 + (sz mod 20) in
          let pair = map2 (fun a b -> (a mod n, b mod n)) small_nat small_nat in
          map (fun ops -> (n, ops)) (list_size (int_bound 40) pair)))
  in
  let arb =
    QCheck.make
      ~print:(fun (n, ops) ->
        Printf.sprintf "n=%d ops=[%s]" n
          (String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) ops)))
      gen
  in
  QCheck.Test.make ~name:"dsu matches naive closure" ~count:300 arb
    (fun (n, ops) ->
      let d = Dsu.create n in
      (* Naive: adjacency matrix + Floyd–Warshall-style closure. *)
      let reach = Array.make_matrix n n false in
      for i = 0 to n - 1 do
        reach.(i).(i) <- true
      done;
      List.iter
        (fun (a, b) ->
          ignore (Dsu.union d a b);
          reach.(a).(b) <- true;
          reach.(b).(a) <- true)
        ops;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Dsu.connected d i j <> reach.(i).(j) then ok := false
        done
      done;
      !ok)

let prop_sets_count =
  QCheck.Test.make ~name:"dsu count_sets = distinct roots" ~count:200
    QCheck.(pair (int_range 1 30) (list_of_size (QCheck.Gen.int_bound 50) (pair small_nat small_nat)))
    (fun (n, ops) ->
      let d = Dsu.create n in
      List.iter (fun (a, b) -> ignore (Dsu.union d (a mod n) (b mod n))) ops;
      let roots = Hashtbl.create n in
      for i = 0 to n - 1 do
        Hashtbl.replace roots (Dsu.find d i) ()
      done;
      Hashtbl.length roots = Dsu.count_sets d)

let suite =
  ( "dsu",
    [
      Alcotest.test_case "singletons" `Quick t_singletons;
      Alcotest.test_case "union/find" `Quick t_union_find;
      Alcotest.test_case "reset" `Quick t_reset;
      Alcotest.test_case "all_connected" `Quick t_all_connected;
      Alcotest.test_case "create invalid" `Quick t_create_invalid;
      Alcotest.test_case "zero size" `Quick t_zero_size;
    ]
    @ qtests [ prop_matches_naive; prop_sets_count ] )
