(* Deep tests of the sparse frontier state machine: the fast
   (union-find) descent against the slow (state machine) descent,
   sparse-representation edge cases, and exactness under adversarial
   edge orders. *)

open Testutil
module F = Bddbase.Fstate
module BF = Bddbase.Bruteforce
module O = Graphalgo.Ordering

let ctx_of g ts order = F.make g ~order ~terminals:ts

(* Enumerate all sink probabilities by walking the machine with weights,
   from an arbitrary state: a reference for descend correctness. *)
let exact_from ctx ~pos st =
  let m = F.n_positions ctx in
  let rec go pos st acc =
    if pos >= m then failwith "live state at the end"
    else begin
      let e = F.edge_at ctx pos in
      let branch exists w sum =
        if w = 0. then sum
        else
          match F.step ctx ~eager:true ~pos st ~exists with
          | F.Sink1 -> sum +. (acc *. w)
          | F.Sink0 -> sum
          | F.Live st' -> go (pos + 1) st' (acc *. w) +. sum -. 0. |> fun x -> x
      in
      let s1 = branch true e.Ugraph.p 0. in
      branch false (1. -. e.Ugraph.p) s1
    end
  in
  go pos st 1.

(* descend_union must agree in distribution with the slow descend; we
   check something stronger on deterministic completions: with p in
   {0, 1} edges, both are deterministic and must agree exactly. *)
let t_descend_union_deterministic () =
  let r = rng () in
  for _ = 1 to 200 do
    let n = 2 + Prng.int r 6 in
    let m = 1 + Prng.int r 10 in
    let es =
      List.init m (fun _ ->
          (Prng.int r n, Prng.int r n, if Prng.bool r then 1.0 else 0.0))
    in
    let g = graph ~n es in
    let k = 2 + Prng.int r (n - 1) in
    let ts = Workload.Generators.random_terminals ~seed:(Prng.int r 10000) g ~k in
    let viable =
      List.for_all (fun t -> Ugraph.degree g t > 0) ts && List.length ts >= 2
    in
    if viable then begin
      let order = O.order_edges O.Bfs g in
      let ctx = ctx_of g ts order in
      let dsu = Dsu.create (2 * n) in
      let slow =
        F.descend ctx ~eager:true ~pos:0 F.initial ~bernoulli:(fun p -> p >= 0.5)
      in
      let fast, _, _ =
        F.descend_union ctx ~dsu ~detail:false ~pos:0 F.initial
          ~bernoulli:(fun p -> p >= 0.5)
      in
      Alcotest.(check bool) "fast = slow on deterministic graph" slow fast
    end
  done

(* From every reachable intermediate state of a small graph, the exact
   residual reliability computed by enumerating the machine must match
   brute force conditioning; and fast-descent sampling must agree
   statistically. *)
let t_descend_union_statistical_midstate () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let order = O.order_edges O.Natural g in
  let ctx = ctx_of g ts order in
  let dsu = Dsu.create (2 * Ugraph.n_vertices g) in
  let r = rng () in
  (* Walk two fixed decisions deep, then compare. *)
  let state2 =
    match F.step ctx ~eager:true ~pos:0 F.initial ~exists:true with
    | F.Live st1 -> (
      match F.step ctx ~eager:true ~pos:1 st1 ~exists:false with
      | F.Live st2 -> st2
      | _ -> Alcotest.fail "unexpected sink at depth 2")
    | _ -> Alcotest.fail "unexpected sink at depth 1"
  in
  let expect = exact_from ctx ~pos:2 state2 in
  let s = 60_000 in
  let hits = ref 0 in
  for _ = 1 to s do
    let c, _, _ =
      F.descend_union ctx ~dsu ~detail:false ~pos:2 state2
        ~bernoulli:(fun p -> Prng.bernoulli r p)
    in
    if c then incr hits
  done;
  let est = float_of_int !hits /. float_of_int s in
  let sigma = sqrt (expect *. (1. -. expect) /. float_of_int s) +. 1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "midstate estimate %.4f ~ %.4f" est expect)
    true
    (Float.abs (est -. expect) <= 5. *. sigma)

let t_descend_detail_consistency () =
  (* detail:true and detail:false must make identical bernoulli draws
     (same connectivity) given the same stream. *)
  let g = two_triangles 0.5 in
  let ts = [ 0; 4 ] in
  let order = O.order_edges O.Bfs g in
  let ctx = ctx_of g ts order in
  let dsu = Dsu.create (2 * Ugraph.n_vertices g) in
  for seed = 0 to 49 do
    let mk () =
      let r = Prng.create seed in
      fun p -> Prng.bernoulli r p
    in
    let c1, _, _ =
      F.descend_union ctx ~dsu ~detail:false ~pos:0 F.initial ~bernoulli:(mk ())
    in
    let c2, h, logq =
      F.descend_union ctx ~dsu ~detail:true ~pos:0 F.initial ~bernoulli:(mk ())
    in
    Alcotest.(check bool) "same connectivity" c1 c2;
    Alcotest.(check bool) "hash nonzero" true (h <> 0);
    Alcotest.(check bool) "logq <= 0" true (logq <= 0.)
  done

(* Sparse-representation specifics. *)

let t_initial_state_empty () =
  Alcotest.(check int) "no components" 0 (F.component_count F.initial);
  Alcotest.(check int) "empty exact key" 1 (Array.length (F.key_exact F.initial));
  Alcotest.(check int) "empty flags key" 1 (Array.length (F.key_flags F.initial))

let t_nonterminal_edges_stay_implicit () =
  (* Processing a non-existent edge between non-terminals keeps the
     state empty (the vertices stay implicit singletons). *)
  let g = path4 0.5 in
  let ctx = ctx_of g [ 0; 3 ] (Array.init 3 Fun.id) in
  (* Edge 1 = (1,2): neither endpoint is a terminal. But position 0
     processes edge (0,1) whose endpoint 0 is a terminal. Use a custom
     order starting with (1,2). *)
  let ctx2 = ctx_of g [ 0; 3 ] [| 1; 0; 2 |] in
  ignore ctx;
  match F.step ctx2 ~eager:true ~pos:0 F.initial ~exists:false with
  | F.Live st -> Alcotest.(check int) "still empty" 0 (F.component_count st)
  | _ -> Alcotest.fail "expected live"

let t_existent_edge_materialises () =
  let g = path4 0.5 in
  let ctx = ctx_of g [ 0; 3 ] [| 1; 0; 2 |] in
  match F.step ctx ~eager:true ~pos:0 F.initial ~exists:true with
  | F.Live st ->
    Alcotest.(check int) "one merged component" 1 (F.component_count st);
    Alcotest.(check (array int)) "no terminals in it" [| 0 |]
      (F.component_terminals st)
  | _ -> Alcotest.fail "expected live"

let t_terminal_entry_materialises () =
  let g = path4 0.5 in
  let ctx = ctx_of g [ 0; 3 ] (Array.init 3 Fun.id) in
  (* Edge (0,1) non-existent: terminal 0 enters, must be explicit;
     it also LEAVES at pos 0 (its only edge) -> Sink0. *)
  (match F.step ctx ~eager:true ~pos:0 F.initial ~exists:false with
  | F.Sink0 -> ()
  | _ -> Alcotest.fail "expected sink0: terminal 0 stranded");
  (* Existent: terminal 0 merges with vertex 1 and departs; the
     component lives on through vertex 1. *)
  match F.step ctx ~eager:true ~pos:0 F.initial ~exists:true with
  | F.Live st ->
    Alcotest.(check int) "one component" 1 (F.component_count st);
    Alcotest.(check (array int)) "carrying one terminal" [| 1 |]
      (F.component_terminals st)
  | _ -> Alcotest.fail "expected live"

let t_demotion_on_departure () =
  (* Graph: edges (0,1), (1,2), (2,3) with terminals 0 and 3 won't
     demote; use terminals {0, 3} on a graph where a non-terminal pair
     merges and one member departs: 0-1, 0-2, 1-3 with terminals 2,3.
     Edge order: (0,1) existent -> comp {0,1}; then (0,2): 0 departs
     (last edge of 0)... construct explicitly. *)
  let g = graph ~n:4 [ (0, 1, 0.5); (0, 2, 0.5); (1, 3, 0.5) ] in
  let ts = [ 2; 3 ] in
  let ctx = ctx_of g ts (Array.init 3 Fun.id) in
  match F.step ctx ~eager:true ~pos:0 F.initial ~exists:true with
  | F.Live st1 -> (
    Alcotest.(check int) "merged pair explicit" 1 (F.component_count st1);
    (* (0,2) non-existent: 0 departs; comp {1} has tc=0 -> demoted. *)
    match F.step ctx ~eager:true ~pos:1 st1 ~exists:false with
    | F.Sink0 ->
      (* terminal 2's only edge was (0,2): stranded. Correct! *)
      ()
    | F.Live _ -> Alcotest.fail "terminal 2 should be stranded"
    | F.Sink1 -> Alcotest.fail "cannot be connected")
  | _ -> Alcotest.fail "expected live"

let t_exactness_under_adversarial_orders () =
  (* Random graphs x random orders: probability-weighted enumeration of
     the machine must equal brute force. *)
  let r = rng () in
  for trial = 1 to 60 do
    let n = 3 + Prng.int r 4 in
    let m = 2 + Prng.int r 7 in
    let es =
      List.init m (fun _ ->
          (Prng.int r n, Prng.int r n, float_of_int (Prng.int r 11) /. 10.))
    in
    let g = graph ~n es in
    let ts = Workload.Generators.random_terminals ~seed:trial g ~k:2 in
    if List.for_all (fun t -> Ugraph.degree g t > 0) ts then begin
      let order = O.order_edges (O.Random trial) g in
      let ctx = ctx_of g ts order in
      let expect = BF.reliability g ~terminals:ts in
      let got = exact_from ctx ~pos:0 F.initial in
      check_close ~eps:1e-9 (Printf.sprintf "trial %d" trial) expect got
    end
  done

let t_remaining_degrees () =
  let g = path4 0.5 in
  let ctx = ctx_of g [ 0; 3 ] (Array.init 3 Fun.id) in
  Alcotest.(check (array int)) "after pos 0" [| 0; 1; 2; 1 |]
    (F.remaining_degrees ctx ~pos:0);
  Alcotest.(check (array int)) "after last pos" [| 0; 0; 0; 0 |]
    (F.remaining_degrees ctx ~pos:2)

let t_descend_union_dsu_too_small () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let ctx = ctx_of g ts (Array.init 6 Fun.id) in
  let small = Dsu.create 2 in
  Alcotest.check_raises "small dsu"
    (Invalid_argument "Fstate.descend_union: DSU too small") (fun () ->
      ignore
        (F.descend_union ctx ~dsu:small ~detail:false ~pos:0 F.initial
           ~bernoulli:(fun _ -> true)))

let suite =
  ( "fstate-extra",
    [
      Alcotest.test_case "fast descent = slow descent (deterministic)" `Quick
        t_descend_union_deterministic;
      Alcotest.test_case "fast descent unbiased from mid-state" `Slow
        t_descend_union_statistical_midstate;
      Alcotest.test_case "detail on/off consistent" `Quick t_descend_detail_consistency;
      Alcotest.test_case "initial state is empty" `Quick t_initial_state_empty;
      Alcotest.test_case "non-terminals stay implicit" `Quick
        t_nonterminal_edges_stay_implicit;
      Alcotest.test_case "existent edge materialises" `Quick t_existent_edge_materialises;
      Alcotest.test_case "terminal entry materialises" `Quick
        t_terminal_entry_materialises;
      Alcotest.test_case "demotion on departure" `Quick t_demotion_on_departure;
      Alcotest.test_case "exact under adversarial orders" `Quick
        t_exactness_under_adversarial_orders;
      Alcotest.test_case "remaining degrees" `Quick t_remaining_degrees;
      Alcotest.test_case "descend_union validates dsu size" `Quick
        t_descend_union_dsu_too_small;
    ] )
