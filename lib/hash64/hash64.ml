(* splitmix64 finalizer: xor-shift-multiply twice, then a final shift.
   Bijective on 64-bit words, full avalanche (every input bit flips each
   output bit with probability ~1/2). *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Payload bits per native-int word: OCaml ints are 63-bit here, and we
   keep digests non-negative, so pack 62 mask bits per word. *)
let word_bits = 62

(* Arbitrary non-zero 64-bit seed so the empty input does not hash to
   mix64(length) alone. *)
let seed = 0x27220A958FE4C9E1L

module Stream = struct
  type t = {
    mutable h : int64;    (* chained state *)
    mutable acc : int;    (* partial word of packed bits *)
    mutable nbits : int;  (* bits currently in [acc] *)
    mutable total : int;  (* bits absorbed overall *)
  }

  let create () = { h = seed; acc = 0; nbits = 0; total = 0 }

  let flush t =
    t.h <- mix64 (Int64.logxor t.h (Int64.of_int t.acc));
    t.acc <- 0;
    t.nbits <- 0

  let add_bit t b =
    if b then t.acc <- t.acc lor (1 lsl t.nbits);
    t.nbits <- t.nbits + 1;
    t.total <- t.total + 1;
    if t.nbits = word_bits then flush t

  let finish t =
    if t.nbits > 0 then flush t;
    (* Length fold: a mask of [m] bits and one of [m'] bits sharing a
       packed prefix must not share a digest. *)
    Int64.to_int (mix64 (Int64.logxor t.h (Int64.of_int t.total))) land max_int
end

let mask present m =
  let t = Stream.create () in
  for eid = 0 to m - 1 do
    Stream.add_bit t present.(eid)
  done;
  Stream.finish t

(* Digest of [bits] mask bits already packed 62-per-word LSB-first.
   Digest-identical to [mask]/[Stream] over the same bit sequence: the
   stream flushes exactly once per full 62-bit word plus once for a
   trailing partial word — i.e. once per packed word — and then folds
   the bit count, which is what the loop below replays. *)
let mask_words_sub words ~off ~bits =
  let nw = (bits + word_bits - 1) / word_bits in
  let h = ref seed in
  for i = 0 to nw - 1 do
    h := mix64 (Int64.logxor !h (Int64.of_int words.(off + i)))
  done;
  Int64.to_int (mix64 (Int64.logxor !h (Int64.of_int bits))) land max_int

let mask_words words ~bits = mask_words_sub words ~off:0 ~bits
