(** Amortized multi-query reliability engine.

    Every CLI estimate rebuilds preprocessing, the edge orderings and
    the sampling snapshot from scratch, but the workload the paper's
    evaluation implies (Table 5 reuses one graph across hundreds of
    runs) is many [(terminals, eps)] queries against the {e same}
    uncertain graph. The engine caches every artifact that is a pure
    deterministic function of its inputs — so serving a query through
    the engine is {b bit-identical} to computing it from scratch — and
    memoizes full query results:

    {ul
    {- {b graph context} — keyed by a 62-bit content digest of the
       graph ({!digest}, built on {!Hash64.mix64});}
    {- {b Csr snapshot} — {!Kernel.Csr.t} built once per graph and
       passed to the samplers via their [?csr] parameter;}
    {- {b preprocessing outcome} — the extension pipeline
       ({!Preprocess.Pipeline.run}) once per (graph, terminals), with
       the per-subproblem BFS edge orderings computed alongside and
       replayed via [?prep] / [?orders] of {!Reliability.estimate} and
       {!Adaptive.reliability};}
    {- {b results} — one full answer per distinct query signature
       (terminals, method, budgets, seed, jobs, kernel); a repeated
       query replays the stored answer and its stats verbatim;}
    {- {b client artifacts} — an untyped slot table ({!artifact}) so
       higher layers (e.g. [Uapps.Sampleset]) can share per-graph
       state through the engine without a dependency cycle.}}

    {b Cache key contract.} Cached artifacts are sound because every
    producer is deterministic: the pipeline emits subproblems in
    canonical (min-vertex-id) order, the transform preserves
    first-occurrence edge order, and orderings/seed-splitting are pure
    functions of the outcome. The graph digest folds the vertex count
    and the exact [(u, v, p)] bit patterns in edge order; two graphs
    with the same digest are treated as identical (a [2^-62]-grade
    collision risk, accepted as for the HT dedup tables).

    Cache traffic is counted on the engine observer under ["engine."]:
    [graph.hit/miss], [csr.hit/miss], [prep.hit/miss],
    [result.hit/miss], [artifact.hit/miss] and [queries] — the batch
    CLI's summary document exposes them, proving amortization. *)

type t

type method_ = Pro | Pro_ht | Sampling_mc | Sampling_ht

val method_name : method_ -> string
(** ["pro"] / ["pro-ht"] / ["sampling-mc"] / ["sampling-ht"] — the
    names {!Statsdoc} documents carry. *)

val method_of_name : string -> method_ option
(** Inverse of {!method_name}; also accepts the CLI aliases [mc] and
    [ht]. *)

type query = {
  terminals : int list;
  method_ : method_;
  samples : int;     (** fixed budget (Theorem 1 reduces it for Pro) *)
  width : int;       (** maximum S2BDD layer width *)
  ci_width : float option;
      (** adaptive sequential stopping instead of the fixed budget *)
  max_samples : int option;  (** cap for a [ci_width] run *)
  seed : int;
  jobs : int;
  kernel : Mcsampling.kernel_mode;  (** sampling-* methods only *)
}

val default : query
(** [terminals = []] (callers must fill it), method [Pro],
    [samples = 10_000], [width = 10_000], no stopping rule, seed 1,
    jobs 1, {!Mcsampling.Flat}. *)

type answer = {
  method_name : string;
  result : Obs.Json.t;   (** the {!Statsdoc} result section *)
  value : float;
  exact : bool;
  cached : bool;         (** served from the result memo *)
  obs : Obs.t;
      (** the query's observer (preprocess / construction / sampling
          phase accounts); replayed verbatim on a memo hit *)
}

val create : ?obs:Obs.t -> unit -> t
(** [obs] (default {!Obs.disabled}) receives the engine's cache
    counters; per-query observers are spawned from it
    ({!Obs.fresh_like}), so a disabled engine serves answers without
    recording stats. *)

val obs : t -> Obs.t

val digest : Ugraph.t -> int
(** Non-negative 62-bit content digest of a graph
    ([Bingraph.Digest.of_graph] — the same fold the binary container
    stores in its header). *)

val query : ?digest:int -> t -> Ugraph.t -> query -> answer
(** Serve one query, reusing every cached artifact for the graph. The
    estimate is bit-identical to the standalone from-scratch run at
    the same seed/jobs/kernel (the regression suite pins this at jobs
    1/2/8). [?digest] supplies the graph's content digest when the
    caller already holds it (read from a [Bingraph] header), skipping
    the O(m) re-hash per query — counted under
    [engine.digest_from_header]. It is trusted as the cache key, so it
    must be {!digest} of [g]. @raise Invalid_argument on invalid
    terminals, [jobs < 1], or budgets the underlying estimator
    rejects. *)

val counters : t -> (string * int) list
(** Snapshot of the cache counters (missing ones read 0), in a fixed
    order — [queries] first, then the [hit]/[miss] pairs. *)

val summary_json : t -> Obs.Json.t
(** [{"engine": {counters...}}] — the batch CLI's closing document. *)

val artifact : t -> Ugraph.t -> key:string -> build:(unit -> exn) -> exn
(** Per-graph client artifact slots, exn-as-universal-type: the caller
    wraps its value in a private exception constructor and unwraps the
    returned one. [build] runs once per (graph digest, [key]); later
    calls return the stored value ([artifact.hit]). *)
