(** Domain-parallel execution with a deterministic reduction contract.

    Every parallel surface of the library (the plain samplers, the
    S2BDD's stratified descents, the per-subproblem runs of
    Algorithm 1) is expressed as an {e ordered} list of independent
    tasks executed on a fixed-size pool of OCaml domains:

    - the task list depends only on the problem and the seed — never on
      the number of domains;
    - each task that needs randomness owns a dedicated [Prng] stream,
      split from the master generator in task order;
    - partial results are folded in task order.

    Consequently, for a fixed seed the result of every parallel
    computation in this library is {b bit-identical} at any [jobs]
    value: [jobs] trades wall-clock for cores, nothing else. The
    equivalence is enforced by [test/test_par.ml].

    The pool is {e reentrant}: a task may itself submit a batch (the
    reliability pipeline runs subproblems as tasks whose descents are
    again tasks). The submitting agent always participates in draining
    the queue before blocking, so nested batches cannot deadlock. *)

val default_jobs : unit -> int
(** The machine's recommended domain count (see
    [Domain.recommended_domain_count]), clamped to [max_jobs]. *)

val max_jobs : int
(** Upper bound on accepted [jobs] values (well under the OCaml
    runtime's 128-domain limit). *)

val forced_domains : unit -> int option
(** The [NETREL_FORCE_DOMAINS] environment override, if set to a
    positive integer: every parallel entry point behaves as though that
    [jobs] value had been requested — including [jobs = 1] call sites.
    Used by the test harness to force real multi-domain execution on
    paths that would otherwise take the sequential fast path; by the
    determinism contract this must not change any result. *)

val effective_jobs : int -> int
(** [effective_jobs requested] applies {!forced_domains} and clamps the
    result into [[1, max_jobs]].
    @raise Invalid_argument if [requested < 1]. *)

type counters = { batches : int; tasks : int }

val counters : unit -> counters
(** Process-wide execution totals: [batches] entries into a Par mapping
    ({!run}, {!run_jobs} or {!Pool.map}, including their sequential
    fast paths) and [tasks] elements mapped, both monotone over the
    process lifetime. Report sites snapshot before and after the work
    they account for; the counters are informational and never affect
    results. *)

val set_batch_hook : (int -> unit) option -> unit
(** Installs (or clears) a process-wide dispatch probe, called with the
    batch size at every entry into a Par mapping — {!run}, {!run_jobs}
    or {!Pool.map}, including their sequential fast paths — on the
    submitting agent, before any task of the batch runs.  Nested
    batches are submitted from worker domains, so the hook must be
    thread-safe.  Used by [Trace.install_par_hook] to stream task-
    dispatch events; purely observational, never affects results. *)

val chunks : total:int -> target:int -> (int * int) array
(** [chunks ~total ~target] splits [total] work items into
    [ceil (total / target)] contiguous chunks returned as
    [(offset, length)] pairs in offset order. Lengths are balanced
    (they differ by at most one) and every length is positive — zero-
    size chunks are never produced. The split depends only on [total]
    and [target], never on the number of domains; it is the unit of
    both work distribution and random-stream assignment.
    [total = 0] yields [[||]].
    @raise Invalid_argument if [total < 0] or [target < 1]. *)

module Pool : sig
  type t
  (** A fixed-size pool of worker domains plus the submitting caller.
      A pool with [jobs = n] owns [n - 1] worker domains; the caller
      is the [n]-th agent and helps drain every batch it submits, so
      [jobs = 1] pools never spawn a domain. *)

  val create : jobs:int -> t
  (** @raise Invalid_argument if [jobs < 1] or [jobs > max_jobs]. *)

  val jobs : t -> int
  (** Worker domains plus one (the participating caller). *)

  val map : t -> int -> (int -> 'a) -> 'a array
  (** [map t n f] computes [[| f 0; ...; f (n-1) |]], executing the
      calls on the pool's agents. Results are always returned in index
      order regardless of execution interleaving. If any [f i] raises,
      the first exception observed is re-raised in the caller after
      all tasks of the batch have settled. Tasks must not depend on
      each other; [f] may itself call [map] on the same pool
      (reentrancy is supported, see the module preamble). *)

  val shutdown : t -> unit
  (** Join all worker domains. The pool must not be used afterwards.
      Idempotent. *)

  val with_pool : jobs:int -> (t -> 'a) -> 'a
  (** [create], run, then [shutdown] (also on exceptions). *)

  val shared : jobs:int -> t
  (** A process-wide pool, created on first use and grown (never
      shrunk) to satisfy the largest [jobs] ever requested; shut down
      automatically at exit. Because results never depend on the
      domain count, serving a [jobs = 2] request from a larger shared
      pool is sound. Prefer this over {!create} on hot paths: domain
      spawn costs are paid once per process, not once per call.
      @raise Invalid_argument as {!create}. *)
end

val run_lanes : ?pool:Pool.t -> unit -> int
(** The number of domain lanes a {!run} with the same [?pool] argument
    occupies: the pool's size when given, the forced-domain count when
    [NETREL_FORCE_DOMAINS] redirects the sequential fallback, and [1]
    otherwise.  Call sites that assign per-task trace lanes use this as
    the modulus, so lane assignment matches the domain budget actually
    in effect. *)

val run : ?pool:Pool.t -> int -> (int -> 'a) -> 'a array
(** [run ?pool n f]: {!Pool.map} on [pool] when given, otherwise a
    plain sequential [Array.init n f] — except that when
    {!forced_domains} is set, the sequential fallback is redirected to
    a forced shared pool. The deterministic-reduction contract makes
    the three execution modes indistinguishable from results. *)

val run_jobs : jobs:int -> int -> (int -> 'a) -> 'a array
(** [run_jobs ~jobs n f]: sequential when {!effective_jobs}[ jobs]
    is 1, otherwise {!Pool.map} on the {!Pool.shared} pool of that
    size. @raise Invalid_argument if [jobs < 1]. *)
