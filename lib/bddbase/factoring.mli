(** Exact k-terminal reliability by the Factoring Theorem — Equation (12)
    of the paper (Colbourn 1987):

    [R[GE] = p(e) * R[GE + e existent] + (1 - p(e)) * R[GE + e absent]]

    with reliability-preserving reductions applied at every recursion
    step (self-loop deletion, parallel-edge merge, series contraction,
    dangling removal — the same rewrites as the extension technique's
    transform phase — plus bridge factoring via Lemma 5.1 through the
    full pipeline at the root).

    This is the classical exact alternative to the BDD-based approach:
    exponential in the worst case, but the reductions make it practical
    on small and series-parallel-ish graphs. Used as an independent
    exact baseline to cross-check the BDD and the S2BDD. *)

type stats = {
  recursive_calls : int;  (** factoring branches explored *)
  reductions : int;       (** transform fixpoints applied *)
}

type error = [ `Budget_exceeded of int ]

val default_call_budget : int
(** 2 million recursive calls. *)

val reliability :
  ?call_budget:int ->
  Ugraph.t ->
  terminals:int list ->
  (float * stats, error) Result.t
(** Exact [R[G, T]]. Degenerate cases (single terminal, separated
    terminals) resolve without recursion. Aborts with
    [`Budget_exceeded] after [call_budget] branches. *)

val reliability_float :
  ?call_budget:int ->
  Ugraph.t ->
  terminals:int list ->
  (float, error) Result.t
