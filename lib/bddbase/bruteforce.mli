(** Exact network reliability by exhaustive enumeration of all [2^|E|]
    possible graphs (Definition 1, computed literally).

    Only feasible for tiny graphs; used as the ground truth oracle in
    tests and for the paper's Figure 1 example. *)

val max_edges : int
(** Enumeration refuses beyond this many edges (25). *)

val reliability : Ugraph.t -> terminals:int list -> float
(** @raise Invalid_argument if the graph has more than {!max_edges}
    edges or the terminal set is invalid. A single terminal gives 1. *)
