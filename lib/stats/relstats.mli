(** Accuracy metrics and measurement helpers for the experiments.

    Section 7.6 evaluates approximation quality over [q1] searches
    (terminal sets) with [q2] repetitions each:
    {ul
    {- variance:   [sum_ij (R_i - R^_ij)^2 / (q1 * q2)]}
    {- error rate: [sum_ij |R_i - R^_ij| / (q1 * q2 * R_i)]}} *)

val variance : exact:float array -> estimates:float array array -> float
(** [variance ~exact ~estimates] with [estimates.(i)] the repetitions
    for search [i]. @raise Invalid_argument on shape mismatch or empty
    input. *)

val error_rate : exact:float array -> estimates:float array array -> float
(** As above; searches with [R_i = 0] contribute [0] when the estimate
    is also [0] and [1] otherwise (relative error against a zero truth
    saturates). *)

val mean : float array -> float
val std_dev : float array -> float
(** Population standard deviation. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [[0, 1]], linear interpolation.
    @raise Invalid_argument on empty input. *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock seconds for one call. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Run [repeats] times (default 3) and report the median wall time
    with the last result. *)

val format_seconds : float -> string
(** Human-readable: ["412us"], ["3.2ms"], ["1.54s"]. *)
