module BT = Graphalgo.Blocktree

type subproblem = {
  graph : Ugraph.t;
  terminals : int list;
}

type stats = {
  original_vertices : int;
  original_edges : int;
  pruned_vertices : int;
  pruned_edges : int;
  n_bridges : int;
  n_subproblems : int;
  final_edges : int;
  max_subproblem_edges : int;
  transform_rounds : int;
}

type outcome =
  | Trivial of Xprob.t
  | Reduced of {
      pb : Xprob.t;
      subproblems : subproblem list;
      stats : stats;
    }

let reduction_ratio st =
  if st.original_edges = 0 then 0.
  else float_of_int st.max_subproblem_edges /. float_of_int st.original_edges

(* Decompose a pruned graph at its bridges. Bridge endpoints become
   mandatory terminals of their side (Lemma 5.1). Returns the bridge
   probability product and one subproblem per bridge-free component
   that retains at least two terminals. *)
let decompose pruned terminals =
  let is_bridge = Graphalgo.Bridges.bridges pruned in
  let n = Ugraph.n_vertices pruned in
  let pb = ref Xprob.one in
  let n_bridges = ref 0 in
  let must_connect = Array.make n false in
  List.iter (fun t -> must_connect.(t) <- true) terminals;
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) ->
      if is_bridge.(eid) then begin
        incr n_bridges;
        pb := Xprob.mul !pb (Xprob.of_float e.p);
        must_connect.(e.u) <- true;
        must_connect.(e.v) <- true
      end)
    pruned;
  (* Components of the bridge-free remainder. *)
  let dsu = Dsu.create n in
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) ->
      if not is_bridge.(eid) then ignore (Dsu.union dsu e.u e.v))
    pruned;
  let members = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    let r = Dsu.find dsu v in
    Hashtbl.replace members r (v :: (Option.value ~default:[] (Hashtbl.find_opt members r)))
  done;
  (* Emit subproblems in canonical order (ascending min vertex id of the
     component) rather than [Hashtbl.fold] bucket order: Prng stream
     assignment, stats and trace output are then stable by construction,
     and cached pipeline outcomes are reproducible. Each member list was
     built by consing from [n-1] down, so its head is the component
     minimum. *)
  let comps =
    Hashtbl.fold (fun _root vs acc -> vs :: acc) members []
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
  in
  let subs =
    List.filter_map
      (fun vs ->
        let ts = List.filter (fun v -> must_connect.(v)) vs in
        if List.length ts < 2 then None
        else begin
          let vs_arr = Array.of_list vs in
          let sub, old_of_new = Ugraph.induced pruned vs_arr in
          let ts = Ugraph.relabel_terminals ~old_of_new ts in
          Some { graph = sub; terminals = ts }
        end)
      comps
  in
  (!pb, !n_bridges, subs)

(* Record the per-phase reduction account under "preprocess.". *)
let observe_stats o st =
  Obs.add o "original_vertices" st.original_vertices;
  Obs.add o "original_edges" st.original_edges;
  Obs.add o "pruned_vertices" st.pruned_vertices;
  Obs.add o "pruned_edges" st.pruned_edges;
  Obs.add o "bridges" st.n_bridges;
  Obs.add o "subproblems" st.n_subproblems;
  Obs.add o "final_edges" st.final_edges;
  Obs.add o "transform_rounds" st.transform_rounds;
  Obs.gauge o "reduction_ratio" (reduction_ratio st)

let run ?(obs = Obs.disabled) ?(trace = Trace.disabled) g ~terminals =
  Ugraph.validate_terminals g terminals;
  let o = Obs.sub obs "preprocess" in
  let t_pre = Trace.now trace in
  (* Every return path closes the covering "preprocess" span, so traces
     carry the outcome even when the pipeline resolves trivially. *)
  let finish outcome extra =
    Trace.complete trace ~ts:t_pre "preprocess"
      ~args:(("outcome", Trace.Str outcome) :: extra)
  in
  let trivial label x =
    Obs.text o "outcome" label;
    finish label [];
    Trivial x
  in
  if List.length terminals < 2 then trivial "trivial_one" Xprob.one
  else if List.exists (fun t -> Ugraph.degree g t = 0) terminals then
    trivial "trivial_zero" Xprob.zero
  else begin
    (* Allocation accounting covers the whole non-trivial pipeline: the
       trivial returns above never build intermediate graphs, so their
       GC deltas would only be noise. *)
    let emit =
      if Trace.enabled trace then
        Some (fun k v -> Trace.counter trace ("preprocess." ^ k) v)
      else None
    in
    Obs.gc_phase o ?emit "gc" @@ fun () ->
    (* Prune: restrict to the Steiner subtree of the block tree. *)
    let pruned_opt =
      Trace.span trace "prune" @@ fun () ->
      Obs.time o "prune" @@ fun () ->
      let bt = BT.build g ~terminals in
      if BT.terminals_separated bt then None
      else begin
        let keep_comps = BT.steiner_keep bt in
        let keep_vertex = BT.kept_vertices bt keep_comps in
        let kept =
          Array.of_list
            (List.filter (fun v -> keep_vertex.(v))
               (List.init (Ugraph.n_vertices g) Fun.id))
        in
        let pruned, old_of_new = Ugraph.induced g kept in
        let terminals' = Ugraph.relabel_terminals ~old_of_new terminals in
        Some (pruned, terminals')
      end
    in
    match pruned_opt with
    | None -> trivial "trivial_zero" Xprob.zero
    | Some (pruned, terminals') ->
      (* Decompose at the surviving bridges. *)
      let pb, n_bridges, raw_subs =
        Trace.span trace "decompose" @@ fun () ->
        Obs.time o "decompose" @@ fun () -> decompose pruned terminals'
      in
      (* Transform each subproblem. *)
      let rounds = ref 0 in
      let subproblems =
        Trace.span trace "transform" @@ fun () ->
        Obs.time o "transform" @@ fun () ->
        List.filter_map
          (fun sp ->
            let tr = Transform.run sp.graph ~terminals:sp.terminals in
            rounds := !rounds + tr.Transform.rounds;
            if List.length tr.Transform.terminals < 2 then None
            else
              Some { graph = tr.Transform.graph; terminals = tr.Transform.terminals })
          raw_subs
      in
      (* A transform can only isolate a terminal if it was never
         connectable; the Steiner prune precludes that, but check. *)
      let zero =
        List.exists
          (fun sp ->
            List.exists (fun t -> Ugraph.degree sp.graph t = 0) sp.terminals
            ||
            let present = Array.make (Ugraph.n_edges sp.graph) true in
            not
              (Graphalgo.Connectivity.terminals_connected sp.graph ~present
                 sp.terminals))
          subproblems
      in
      if zero then trivial "trivial_zero" Xprob.zero
      else begin
        let final_edges =
          List.fold_left (fun acc sp -> acc + Ugraph.n_edges sp.graph) 0 subproblems
        in
        let max_sub =
          List.fold_left (fun acc sp -> max acc (Ugraph.n_edges sp.graph)) 0 subproblems
        in
        let stats =
          {
            original_vertices = Ugraph.n_vertices g;
            original_edges = Ugraph.n_edges g;
            pruned_vertices = Ugraph.n_vertices pruned;
            pruned_edges = Ugraph.n_edges pruned;
            n_bridges;
            n_subproblems = List.length subproblems;
            final_edges;
            max_subproblem_edges = max_sub;
            transform_rounds = !rounds;
          }
        in
        Obs.text o "outcome" "reduced";
        observe_stats o stats;
        finish "reduced"
          [
            ("subproblems", Trace.Int stats.n_subproblems);
            ("bridges", Trace.Int stats.n_bridges);
            ("final_edges", Trace.Int stats.final_edges);
          ];
        Reduced { pb; subproblems; stats }
      end
  end
