type result = {
  vertex : int;
  reliability : float;
}

let search_with set ~sources ~eta =
  if eta < 0. || eta > 1. then invalid_arg "Reliability_search: eta outside [0,1]";
  let counts = Sampleset.reach_counts set ~sources in
  let s = float_of_int (Sampleset.samples set) in
  let is_source = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace is_source v ()) sources;
  let hits = ref [] in
  Array.iteri
    (fun v c ->
      if not (Hashtbl.mem is_source v) then begin
        let r = float_of_int c /. s in
        if r >= eta then hits := { vertex = v; reliability = r } :: !hits
      end)
    counts;
  List.sort
    (fun a b ->
      match Float.compare b.reliability a.reliability with
      | 0 -> Int.compare a.vertex b.vertex
      | c -> c)
    !hits

let search ?(seed = 1) ?(samples = 1000) g ~sources ~eta =
  let set = Sampleset.draw ~seed g ~samples in
  search_with set ~sources ~eta
