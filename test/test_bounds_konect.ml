open Testutil
module B = Netrel.Bounds
module BF = Bddbase.Bruteforce

(* ---- anytime bounds ---- *)

let t_bounds_exact_small () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let b = B.compute g ~terminals:ts in
  Alcotest.(check bool) "exact" true b.B.exact;
  check_close ~eps:1e-9 "lower" expect b.B.lower;
  check_close ~eps:1e-9 "upper" expect b.B.upper

let t_bounds_contain_truth_narrow () =
  let g = two_triangles 0.6 in
  let ts = [ 0; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let b = B.compute ~width:1 ~extension:false g ~terminals:ts in
  Alcotest.(check bool) "not exact" false b.B.exact;
  Alcotest.(check bool)
    (Printf.sprintf "%.4f in [%.4f, %.4f]" expect b.B.lower b.B.upper)
    true
    (b.B.lower <= expect +. 1e-9 && expect <= b.B.upper +. 1e-9)

let t_bounds_decides () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let b = B.compute g ~terminals:ts in
  Alcotest.(check bool) "above low threshold" true
    (B.decides b ~threshold:(expect /. 2.) = `Above);
  Alcotest.(check bool) "below high threshold" true
    (B.decides b ~threshold:((expect +. 1.) /. 2.) = `Below);
  let loose = { b with B.lower = 0.1; B.upper = 0.9 } in
  Alcotest.(check bool) "unknown in between" true
    (B.decides loose ~threshold:0.5 = `Unknown)

let prop_bounds_always_valid =
  QCheck.Test.make ~name:"anytime bounds contain brute force R" ~count:100
    (Test_bddbase.arb_graph_ts ~max_n:7 ~max_m:10 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let expect = BF.reliability g ~terminals:ts in
      let b = B.compute ~width:2 g ~terminals:ts in
      b.B.lower <= expect +. 1e-9 && expect <= b.B.upper +. 1e-9)

(* ---- konect loader ---- *)

let sample_konect =
  "% sample KONECT file\n\
   # hash comments too\n\
   1 2\n\
   2 3 0.5\n\
   1 2\n\
   3 3\n\
   \n\
   4 1 0.25 1234567\n"

let t_konect_parse_uniform () =
  let g = Workload.Konect.parse sample_konect ~scheme:(`Uniform 1) in
  (* Vertices 1,2,3,4 -> 4; edges: (1,2) x2 merged, (2,3), (4,1); the
     self-loop (3,3) dropped. *)
  Alcotest.(check int) "vertices" 4 (Ugraph.n_vertices g);
  Alcotest.(check int) "edges" 3 (Ugraph.n_edges g);
  Ugraph.iter_edges
    (fun _ (e : Ugraph.edge) ->
      Alcotest.(check bool) "p in (0,1)" true (e.p > 0. && e.p < 1.))
    g

let t_konect_coauthor_multiplicity () =
  let g = Workload.Konect.parse sample_konect ~scheme:`Coauthor in
  (* (1,2) has multiplicity 2, others 1; alphaM = 2. *)
  let p_mult = Float.log 3. /. Float.log 4. in
  let p_single = Float.log 2. /. Float.log 4. in
  let e0 = Ugraph.edge g 0 in
  check_close "merged edge probability" p_mult e0.Ugraph.p;
  let e1 = Ugraph.edge g 1 in
  check_close "single edge probability" p_single e1.Ugraph.p

let t_konect_weight () =
  let g = Workload.Konect.parse "1 2 0.25\n2 3 0.75\n" ~scheme:`Weight in
  check_close "first weight" 0.25 (Ugraph.edge g 0).Ugraph.p;
  check_close "second weight" 0.75 (Ugraph.edge g 1).Ugraph.p;
  Alcotest.check_raises "missing weight"
    (Invalid_argument "Konect: `Weight scheme but no weight column") (fun () ->
      ignore (Workload.Konect.parse "1 2\n" ~scheme:`Weight));
  Alcotest.check_raises "weight out of range"
    (Invalid_argument "Konect: weight 7 outside [0,1] for an edge") (fun () ->
      ignore (Workload.Konect.parse "1 2 7\n" ~scheme:`Weight))

let t_konect_errors () =
  Alcotest.check_raises "garbage" (Invalid_argument "Konect: malformed line 1: \"zap\"")
    (fun () -> ignore (Workload.Konect.parse "zap\n" ~scheme:`Coauthor));
  Alcotest.check_raises "empty" (Invalid_argument "Konect: no edges") (fun () ->
      ignore (Workload.Konect.parse "% nothing\n" ~scheme:`Coauthor))

let t_konect_file_roundtrip () =
  let path = Filename.temp_file "konect" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc sample_konect;
      close_out oc;
      let g = Workload.Konect.load path ~scheme:(`Uniform 3) in
      Alcotest.(check int) "edges" 3 (Ugraph.n_edges g))

let t_konect_end_to_end () =
  (* A loaded KONECT graph flows straight into the estimator. *)
  let g = Workload.Konect.parse "1 2 0.9\n2 3 0.9\n3 1 0.9\n" ~scheme:`Weight in
  let rep = Netrel.Reliability.estimate g ~terminals:[ 0; 2 ] in
  Alcotest.(check bool) "exact" true rep.Netrel.Reliability.exact;
  check_close ~eps:1e-9 "triangle reliability"
    (BF.reliability g ~terminals:[ 0; 2 ])
    rep.Netrel.Reliability.value

let suite =
  ( "bounds-konect",
    [
      Alcotest.test_case "bounds: exact on small graph" `Quick t_bounds_exact_small;
      Alcotest.test_case "bounds: narrow width still valid" `Quick
        t_bounds_contain_truth_narrow;
      Alcotest.test_case "bounds: threshold decisions" `Quick t_bounds_decides;
      Alcotest.test_case "konect: parse + uniform scheme" `Quick t_konect_parse_uniform;
      Alcotest.test_case "konect: coauthor multiplicities" `Quick
        t_konect_coauthor_multiplicity;
      Alcotest.test_case "konect: weight scheme" `Quick t_konect_weight;
      Alcotest.test_case "konect: malformed input" `Quick t_konect_errors;
      Alcotest.test_case "konect: file loading" `Quick t_konect_file_roundtrip;
      Alcotest.test_case "konect: end to end" `Quick t_konect_end_to_end;
    ]
    @ qtests [ prop_bounds_always_valid ] )
