(* End-to-end flows across the whole stack: dataset generation ->
   preprocessing -> estimation, cross-method consistency, and
   monotonicity of the bounds in the construction budget. *)

open Testutil
module S = Netrel.S2bdd
module R = Netrel.Reliability
module B = Netrel.Bounds
module BF = Bddbase.Bruteforce
module D = Workload.Datasets

let t_dataset_to_estimate () =
  (* The full user journey on a generated dataset. *)
  let d = D.tokyo ~scale:0.12 () in
  let g = d.D.graph in
  let ts = Workload.Generators.random_terminals ~seed:3 g ~k:4 in
  let config = { S.default_config with S.samples = 2_000; S.width = 500 } in
  let rep = R.estimate ~config g ~terminals:ts in
  Alcotest.(check bool) "value in [0,1]" true (rep.R.value >= 0. && rep.R.value <= 1.);
  Alcotest.(check bool) "lower <= value <= upper" true
    (rep.R.lower <= rep.R.value +. 1e-12 && rep.R.value <= rep.R.upper +. 1e-12);
  Alcotest.(check bool) "bounds sane" true (rep.R.lower <= rep.R.upper +. 1e-12)

let t_exact_flag_collapses_bounds () =
  let g = (D.am_rv ()).D.graph in
  let ts = Workload.Generators.random_terminals ~seed:5 g ~k:8 in
  let rep = R.estimate g ~terminals:ts in
  Alcotest.(check bool) "exact" true rep.R.exact;
  check_close ~eps:1e-15 "lower = upper" rep.R.lower rep.R.upper;
  check_close ~eps:1e-15 "value = lower" rep.R.lower rep.R.value

let t_methods_agree_on_small () =
  (* All estimation paths agree (within sampling noise) on fig1. *)
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let exact = BF.reliability g ~terminals:ts in
  let pro = (R.estimate g ~terminals:ts).R.value in
  let mc = (Mcsampling.monte_carlo ~seed:2 g ~terminals:ts ~samples:50_000).Mcsampling.value in
  let fact =
    match Bddbase.Factoring.reliability_float g ~terminals:ts with
    | Ok r -> r
    | Error _ -> Alcotest.fail "factoring budget"
  in
  check_close ~eps:1e-9 "pro = exact" exact pro;
  check_close ~eps:1e-9 "factoring = exact" exact fact;
  Alcotest.(check bool) "mc close" true (Float.abs (mc -. exact) < 0.02)

let t_bounds_monotone_in_width () =
  (* With a fixed edge order, a wider cap keeps a superset of nodes, so
     both bounds can only tighten. *)
  let g = two_triangles 0.6 in
  let ts = [ 0; 4 ] in
  let order = `Explicit (Graphalgo.Ordering.order_edges Graphalgo.Ordering.Bfs g) in
  let run w =
    let config = { S.default_config with S.width = w; S.samples = 50; S.order = order } in
    S.estimate ~config g ~terminals:ts
  in
  let widths = [ 1; 2; 4; 8; 64 ] in
  let results = List.map run widths in
  let rec mono = function
    | a :: (b :: _ as rest) ->
      a.S.lower <= b.S.lower +. 1e-12
      && b.S.upper <= a.S.upper +. 1e-12
      && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "bounds tighten with width" true (mono results);
  let last = List.nth results (List.length results - 1) in
  Alcotest.(check bool) "widest is exact" true last.S.exact

let t_report_determinism () =
  let g = (D.dblp1 ~scale:0.05 ()).D.graph in
  let ts = Workload.Generators.random_terminals ~seed:9 g ~k:5 in
  let config = { S.default_config with S.samples = 500; S.width = 200 } in
  let a = R.estimate ~config g ~terminals:ts in
  let b = R.estimate ~config g ~terminals:ts in
  check_close "same value" a.R.value b.R.value;
  Alcotest.(check int) "same descents" a.R.samples_drawn b.R.samples_drawn;
  Alcotest.(check int) "same s'" a.R.s_reduced b.R.s_reduced

let t_zero_probability_bridge () =
  (* A p=0 bridge between the terminals forces R = 0 through the
     decomposition product. *)
  let g =
    graph ~n:6
      [ (0, 1, 0.9); (1, 2, 0.9); (2, 0, 0.9); (2, 3, 0.0); (3, 4, 0.9);
        (4, 5, 0.9); (5, 3, 0.9) ]
  in
  let rep = R.estimate g ~terminals:[ 0; 4 ] in
  check_close "R = 0 through dead bridge" 0. rep.R.value;
  check_close "upper also 0" 0. rep.R.upper

let t_certain_bridge () =
  (* A p=1 bridge contributes factor 1. *)
  let g = graph ~n:4 [ (0, 1, 0.5); (0, 1, 0.5); (1, 2, 1.0); (2, 3, 0.5); (2, 3, 0.5) ] in
  let expect = BF.reliability g ~terminals:[ 0; 3 ] in
  let rep = R.estimate g ~terminals:[ 0; 3 ] in
  Alcotest.(check bool) "exact" true rep.R.exact;
  check_close ~eps:1e-9 "matches" expect rep.R.value

let t_bounds_api_on_dataset () =
  let g = (D.nyc ~scale:0.1 ()).D.graph in
  let ts = Workload.Generators.random_terminals ~seed:2 g ~k:6 in
  let b = B.compute ~width:300 g ~terminals:ts in
  Alcotest.(check bool) "interval sane" true (0. <= b.B.lower && b.B.lower <= b.B.upper && b.B.upper <= 1.)

let t_pipeline_ht_statistical () =
  (* HT through the full pipeline (decomposition + S2BDD strata). *)
  let g = two_triangles 0.6 in
  let ts = [ 0; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let trials = 200 in
  let values =
    Array.init trials (fun i ->
        let config =
          { S.default_config with S.samples = 100; S.width = 2;
            S.estimator = S.Horvitz_thompson; S.seed = 500 + i }
        in
        (R.estimate ~config g ~terminals:ts).R.value)
  in
  let mean = Array.fold_left ( +. ) 0. values /. float_of_int trials in
  let std =
    sqrt (Array.fold_left (fun a v -> a +. ((v -. mean) ** 2.)) 0. values
          /. float_of_int trials)
  in
  let tol = (5. *. std /. sqrt (float_of_int trials)) +. 1e-3 in
  Alcotest.(check bool)
    (Printf.sprintf "pipeline HT mean %.4f ~ %.4f" mean expect)
    true
    (Float.abs (mean -. expect) <= tol)

let suite =
  ( "integration",
    [
      Alcotest.test_case "dataset -> estimate journey" `Quick t_dataset_to_estimate;
      Alcotest.test_case "exact flag collapses bounds" `Quick t_exact_flag_collapses_bounds;
      Alcotest.test_case "all methods agree on fig1" `Slow t_methods_agree_on_small;
      Alcotest.test_case "bounds monotone in width" `Quick t_bounds_monotone_in_width;
      Alcotest.test_case "report determinism" `Quick t_report_determinism;
      Alcotest.test_case "zero-probability bridge" `Quick t_zero_probability_bridge;
      Alcotest.test_case "certain bridge" `Quick t_certain_bridge;
      Alcotest.test_case "bounds API on dataset" `Quick t_bounds_api_on_dataset;
      Alcotest.test_case "pipeline HT unbiased" `Slow t_pipeline_ht_statistical;
    ] )
