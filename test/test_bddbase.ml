open Testutil
module BF = Bddbase.Bruteforce
module Exact = Bddbase.Exact
module Fstate = Bddbase.Fstate
module O = Graphalgo.Ordering

let exact_float ?order ?eager g ~terminals =
  match Exact.reliability_float ?order ?eager g ~terminals with
  | Ok r -> r
  | Error (`Node_budget_exceeded n) -> Alcotest.failf "unexpected DNF at %d nodes" n

(* ---- brute force oracle ---- *)

let t_bf_single_edge () =
  let g = graph ~n:2 [ (0, 1, 0.37) ] in
  check_close "single edge" 0.37 (BF.reliability g ~terminals:[ 0; 1 ])

let t_bf_path () =
  let g = path4 0.8 in
  check_close "path ends" (0.8 ** 3.) (BF.reliability g ~terminals:[ 0; 3 ]);
  check_close "path all terminals" (0.8 ** 3.)
    (BF.reliability g ~terminals:[ 0; 1; 2; 3 ]);
  check_close "adjacent pair" 0.8 (BF.reliability g ~terminals:[ 0; 1 ])

let t_bf_parallel () =
  let g = graph ~n:2 [ (0, 1, 0.5); (0, 1, 0.4) ] in
  check_close "parallel pair" (1. -. (0.5 *. 0.6)) (BF.reliability g ~terminals:[ 0; 1 ])

let t_bf_cycle () =
  let g = cycle4 0.5 in
  let p2 = 0.25 in
  check_close "opposite corners" (1. -. ((1. -. p2) ** 2.))
    (BF.reliability g ~terminals:[ 0; 2 ])

let t_bf_fig1 () =
  (* The paper's Figure 1 walkthrough: every possible graph with four
     existent and two non-existent edges has probability 0.0216. *)
  let g = fig1 () in
  let r = BF.reliability g ~terminals:[ 0; 3; 4 ] in
  Alcotest.(check bool) (Printf.sprintf "reliability %.6f in (0,1)" r) true
    (r > 0. && r < 1.)

let t_bf_degenerate () =
  let g = path4 0.5 in
  check_close "k=1" 1. (BF.reliability g ~terminals:[ 2 ]);
  let disconnected = graph ~n:4 [ (0, 1, 0.9); (2, 3, 0.9) ] in
  check_close "separated" 0. (BF.reliability disconnected ~terminals:[ 0; 3 ]);
  let certain = path4 1.0 in
  check_close "all p=1" 1. (BF.reliability certain ~terminals:[ 0; 3 ]);
  let dead = path4 0.0 in
  check_close "all p=0" 0. (BF.reliability dead ~terminals:[ 0; 3 ])

let t_bf_refuses_large () =
  let es = List.init 26 (fun i -> (i, i + 1, 0.5)) in
  let g = graph ~n:27 es in
  Alcotest.check_raises "too many edges"
    (Invalid_argument "Bruteforce.reliability: 26 edges > 25") (fun () ->
      ignore (BF.reliability g ~terminals:[ 0; 26 ]))

(* ---- exact BDD ---- *)

let t_exact_matches_bf_known () =
  List.iter
    (fun (name, g, ts) ->
      let expect = BF.reliability g ~terminals:ts in
      check_close ~eps:1e-12 (name ^ " lazy") expect (exact_float g ~terminals:ts);
      check_close ~eps:1e-12 (name ^ " eager") expect
        (exact_float ~eager:true g ~terminals:ts))
    [
      ("single edge", graph ~n:2 [ (0, 1, 0.37) ], [ 0; 1 ]);
      ("path", path4 0.8, [ 0; 3 ]);
      ("path all", path4 0.8, [ 0; 1; 2; 3 ]);
      ("cycle", cycle4 0.5, [ 0; 2 ]);
      ("fig1 k=3", fig1 (), [ 0; 3; 4 ]);
      ("fig1 k=2", fig1 (), [ 0; 4 ]);
      ("fig1 k=5", fig1 (), [ 0; 1; 2; 3; 4 ]);
      ("two triangles", two_triangles 0.6, [ 0; 4 ]);
      ("parallel", graph ~n:2 [ (0, 1, 0.5); (0, 1, 0.4) ], [ 0; 1 ]);
      ("with self loop", graph ~n:3 [ (0, 0, 0.5); (0, 1, 0.7); (1, 2, 0.7) ], [ 0; 2 ]);
    ]

let t_exact_degenerate () =
  let g = path4 0.5 in
  check_close "k=1" 1. (exact_float g ~terminals:[ 1 ]);
  let disconnected = graph ~n:4 [ (0, 1, 0.9); (2, 3, 0.9) ] in
  check_close "separated" 0. (exact_float disconnected ~terminals:[ 0; 3 ]);
  let isolated = graph ~n:3 [ (0, 1, 0.5) ] in
  check_close "isolated terminal" 0. (exact_float isolated ~terminals:[ 0; 2 ])

let t_exact_budget () =
  let g = two_triangles 0.5 in
  match Exact.reliability ~node_budget:2 g ~terminals:[ 0; 4 ] with
  | Error (`Node_budget_exceeded n) ->
    Alcotest.(check bool) "budget exceeded count" true (n > 2)
  | Ok _ -> Alcotest.fail "expected DNF"

let t_exact_stats () =
  let g = fig1 () in
  match Exact.reliability g ~terminals:[ 0; 3; 4 ] with
  | Error _ -> Alcotest.fail "unexpected DNF"
  | Ok (r, st) ->
    Alcotest.(check int) "layers" 6 st.Exact.layers;
    Alcotest.(check bool) "nodes positive" true (st.Exact.total_nodes > 0);
    check_close ~eps:1e-12 "pc is result" (Xprob.to_float_exn r)
      (Xprob.to_float_exn st.Exact.pc);
    check_close ~eps:1e-12 "pc + pd = 1" 1.
      (Xprob.to_float_exn (Xprob.add st.Exact.pc st.Exact.pd))

let t_eager_never_larger () =
  let g = two_triangles 0.5 in
  let sz eager =
    match Exact.reliability ~eager g ~terminals:[ 0; 4 ] with
    | Ok (_, st) -> st.Exact.total_nodes
    | Error _ -> Alcotest.fail "DNF"
  in
  Alcotest.(check bool) "eager <= lazy" true (sz true <= sz false)

(* ---- property tests against brute force ---- *)

let arb_graph_ts ~max_n ~max_m ~max_k =
  let gen =
    QCheck.Gen.(
      int_range 2 max_n >>= fun n ->
      int_range 1 max_m >>= fun m ->
      int_range 2 (min max_k n) >>= fun k ->
      let edge =
        map3
          (fun u v p -> (u mod n, v mod n, float_of_int (p mod 11) /. 10.))
          small_nat small_nat small_nat
      in
      list_repeat m edge >>= fun es ->
      (* k distinct terminals via a shuffled prefix. *)
      let perm = Array.init n Fun.id in
      map
        (fun seed ->
          Prng.shuffle (Prng.create seed) perm;
          (n, es, Array.to_list (Array.sub perm 0 k)))
        int)
  in
  QCheck.make
    ~print:(fun (n, es, ts) ->
      Printf.sprintf "n=%d ts=[%s] es=[%s]" n
        (String.concat ";" (List.map string_of_int ts))
        (String.concat " "
           (List.map (fun (u, v, p) -> Printf.sprintf "(%d,%d,%.1f)" u v p) es)))
    gen

let prop_exact_matches_bruteforce =
  QCheck.Test.make ~name:"exact BDD = brute force (all orders, both modes)"
    ~count:250 (arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let expect = BF.reliability g ~terminals:ts in
      List.for_all
        (fun (order, eager) ->
          let got = exact_float ~order:(O.order_edges order g) ~eager g ~terminals:ts in
          Float.abs (got -. expect) <= 1e-9)
        [ (O.Natural, false); (O.Bfs, false); (O.Natural, true); (O.Bfs, true);
          (O.Random 3, true) ])

let prop_pc_pd_sum_to_one =
  QCheck.Test.make ~name:"pc + pd = 1 when construction completes" ~count:150
    (arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      match Exact.reliability g ~terminals:ts with
      | Error _ -> false
      | Ok (_, st) ->
        Float.abs (Xprob.to_float_exn (Xprob.add st.Exact.pc st.Exact.pd) -. 1.)
        <= 1e-9)

(* ---- descend: unbiased completion sampling ---- *)

let t_descend_estimates_reliability () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let order = O.best_order g in
  let ctx = Fstate.make g ~order ~terminals:ts in
  let r = rng () in
  let s = 40_000 in
  let hits = ref 0 in
  for _ = 1 to s do
    if Fstate.descend ctx ~eager:true ~pos:0 Fstate.initial
         ~bernoulli:(fun p -> Prng.bernoulli r p)
    then incr hits
  done;
  let est = float_of_int !hits /. float_of_int s in
  let sigma = sqrt (expect *. (1. -. expect) /. float_of_int s) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.4f within 5 sigma of %.4f" est expect)
    true
    (Float.abs (est -. expect) <= 5. *. sigma)

let t_descend_from_intermediate () =
  (* Step manually one layer, then descend from both children; the
     weighted average must equal the exact reliability. *)
  let g = path4 0.5 in
  let ts = [ 0; 3 ] in
  let order = Array.init 3 Fun.id in
  let ctx = Fstate.make g ~order ~terminals:ts in
  let expect = BF.reliability g ~terminals:ts in
  let r = rng () in
  let est_from st pos =
    let s = 40_000 in
    let hits = ref 0 in
    for _ = 1 to s do
      if Fstate.descend ctx ~eager:true ~pos st ~bernoulli:(fun p -> Prng.bernoulli r p)
      then incr hits
    done;
    float_of_int !hits /. float_of_int s
  in
  match Fstate.step ctx ~eager:true ~pos:0 Fstate.initial ~exists:true with
  | Fstate.Live st ->
    (* Non-existent first edge of a path disconnects terminal 0. *)
    (match Fstate.step ctx ~eager:true ~pos:0 Fstate.initial ~exists:false with
    | Fstate.Sink0 -> ()
    | _ -> Alcotest.fail "expected sink0 on missing first path edge");
    let est = 0.5 *. est_from st 1 in
    Alcotest.(check bool)
      (Printf.sprintf "weighted estimate %.4f ~ %.4f" est expect)
      true
      (Float.abs (est -. expect) <= 0.02)
  | _ -> Alcotest.fail "expected live state"

(* ---- fstate internals ---- *)

let t_fstate_rejects_bad_input () =
  let g = path4 0.5 in
  let order = Array.init 3 Fun.id in
  Alcotest.check_raises "k=1" (Invalid_argument "Fstate.make: need at least two terminals")
    (fun () -> ignore (Fstate.make g ~order ~terminals:[ 0 ]));
  let isolated = graph ~n:3 [ (0, 1, 0.5) ] in
  Alcotest.check_raises "isolated terminal"
    (Invalid_argument "Fstate.make: isolated terminal (reliability is trivially zero)")
    (fun () -> ignore (Fstate.make isolated ~order:[| 0 |] ~terminals:[ 0; 2 ]))

let t_fstate_keys () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let ctx = Fstate.make g ~order:(Array.init 6 Fun.id) ~terminals:ts in
  match Fstate.step ctx ~eager:true ~pos:0 Fstate.initial ~exists:true with
  | Fstate.Live st ->
    Alcotest.(check bool) "exact key at least as long as flags key" true
      (Array.length (Fstate.key_exact st) = Array.length (Fstate.key_flags st));
    Alcotest.(check bool) "component count positive" true (Fstate.component_count st > 0)
  | _ -> Alcotest.fail "expected live"

let t_heuristic_monotone_in_pn () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let ctx = Fstate.make g ~order:(Array.init 6 Fun.id) ~terminals:ts in
  match Fstate.step ctx ~eager:true ~pos:0 Fstate.initial ~exists:true with
  | Fstate.Live st ->
    let rem = Fstate.remaining_degrees ctx ~pos:0 in
    let h1 = Fstate.heuristic_log2 ctx ~rem st ~log2_pn:(-1.) in
    let h2 = Fstate.heuristic_log2 ctx ~rem st ~log2_pn:(-10.) in
    Alcotest.(check bool) "higher pn, higher priority" true (h1 > h2)
  | _ -> Alcotest.fail "expected live"

let suite =
  ( "bddbase",
    [
      Alcotest.test_case "bf: single edge" `Quick t_bf_single_edge;
      Alcotest.test_case "bf: path" `Quick t_bf_path;
      Alcotest.test_case "bf: parallel" `Quick t_bf_parallel;
      Alcotest.test_case "bf: cycle" `Quick t_bf_cycle;
      Alcotest.test_case "bf: fig1" `Quick t_bf_fig1;
      Alcotest.test_case "bf: degenerate cases" `Quick t_bf_degenerate;
      Alcotest.test_case "bf: refuses large input" `Quick t_bf_refuses_large;
      Alcotest.test_case "exact = brute force on known graphs" `Quick t_exact_matches_bf_known;
      Alcotest.test_case "exact: degenerate cases" `Quick t_exact_degenerate;
      Alcotest.test_case "exact: node budget DNF" `Quick t_exact_budget;
      Alcotest.test_case "exact: stats" `Quick t_exact_stats;
      Alcotest.test_case "eager BDD never larger" `Quick t_eager_never_larger;
      Alcotest.test_case "descend estimates R" `Slow t_descend_estimates_reliability;
      Alcotest.test_case "descend from intermediate state" `Slow t_descend_from_intermediate;
      Alcotest.test_case "fstate input validation" `Quick t_fstate_rejects_bad_input;
      Alcotest.test_case "fstate keys" `Quick t_fstate_keys;
      Alcotest.test_case "heuristic monotone in pn" `Quick t_heuristic_monotone_in_pn;
    ]
    @ qtests [ prop_exact_matches_bruteforce; prop_pc_pd_sum_to_one ] )
