type t = {
  comp_of_vertex : int array;
  n_comps : int;
  adj : (int * int) list array;
  terminal_count : int array;
}

let build g ~terminals =
  Ugraph.validate_terminals g terminals;
  let comp_of_vertex, n_comps = Bridges.two_edge_components g in
  let is_bridge = Bridges.bridges g in
  let adj = Array.make n_comps [] in
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) ->
      if is_bridge.(eid) then begin
        let cu = comp_of_vertex.(e.u) and cv = comp_of_vertex.(e.v) in
        adj.(cu) <- (cv, eid) :: adj.(cu);
        adj.(cv) <- (cu, eid) :: adj.(cv)
      end)
    g;
  let terminal_count = Array.make n_comps 0 in
  List.iter
    (fun t ->
      let c = comp_of_vertex.(t) in
      terminal_count.(c) <- terminal_count.(c) + 1)
    terminals;
  { comp_of_vertex; n_comps; adj; terminal_count }

(* Supernode components of the contracted forest. *)
let forest_components bt =
  let comp = Array.make bt.n_comps (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for start = 0 to bt.n_comps - 1 do
    if comp.(start) < 0 then begin
      let id = !count in
      incr count;
      comp.(start) <- id;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let c = Queue.pop queue in
        List.iter
          (fun (c', _) ->
            if comp.(c') < 0 then begin
              comp.(c') <- id;
              Queue.add c' queue
            end)
          bt.adj.(c)
      done
    end
  done;
  (comp, !count)

let terminals_separated bt =
  let comp, _ = forest_components bt in
  let terminal_comp = ref (-1) in
  let separated = ref false in
  Array.iteri
    (fun c cnt ->
      if cnt > 0 then
        if !terminal_comp < 0 then terminal_comp := comp.(c)
        else if comp.(c) <> !terminal_comp then separated := true)
    bt.terminal_count;
  !separated

let steiner_keep bt =
  if terminals_separated bt then Array.make bt.n_comps false
  else begin
    let keep = Array.make bt.n_comps false in
    let tree_comp, _ = forest_components bt in
    (* Restrict to the tree containing the terminals. *)
    let terminal_tree = ref (-1) in
    Array.iteri
      (fun c cnt -> if cnt > 0 && !terminal_tree < 0 then terminal_tree := tree_comp.(c))
      bt.terminal_count;
    (match !terminal_tree with
    | -1 -> () (* no terminals: callers prevent this via build's validation *)
    | tt ->
      Array.iteri (fun c tc -> keep.(c) <- tc = tt) tree_comp;
      (* Iteratively strip terminal-free leaves of the kept tree. *)
      let live_degree = Array.make bt.n_comps 0 in
      Array.iteri
        (fun c neighbours ->
          if keep.(c) then
            live_degree.(c) <-
              List.length (List.filter (fun (c', _) -> keep.(c')) neighbours))
        bt.adj;
      let queue = Queue.create () in
      Array.iteri
        (fun c _ ->
          if keep.(c) && live_degree.(c) <= 1 && bt.terminal_count.(c) = 0 then
            Queue.add c queue)
        bt.adj;
      while not (Queue.is_empty queue) do
        let c = Queue.pop queue in
        if keep.(c) && live_degree.(c) <= 1 && bt.terminal_count.(c) = 0 then begin
          keep.(c) <- false;
          List.iter
            (fun (c', _) ->
              if keep.(c') then begin
                live_degree.(c') <- live_degree.(c') - 1;
                if live_degree.(c') <= 1 && bt.terminal_count.(c') = 0 then
                  Queue.add c' queue
              end)
            bt.adj.(c)
        end
      done);
    keep
  end

let kept_vertices bt keep =
  Array.map (fun c -> keep.(c)) bt.comp_of_vertex

let kept_bridges bt keep =
  let out = Hashtbl.create 64 in
  Array.iteri
    (fun c neighbours ->
      if keep.(c) then
        List.iter (fun (c', eid) -> if keep.(c') then Hashtbl.replace out eid ()) neighbours)
    bt.adj;
  out
