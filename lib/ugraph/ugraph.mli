(** Uncertain graphs: undirected graphs whose edges exist independently
    with a given probability.

    This is the substrate type of the whole library (the paper's
    [G = (V, E, p)], Section 3.1).  Vertices are the integers
    [[0, n_vertices)].  The representation supports parallel edges and
    self-loops because the preprocessing transformations (Section 5 of the
    paper) create parallel edges when contracting series chains; reliability
    semantics are well defined for both.

    The structure is immutable after construction and carries a CSR-style
    adjacency index built eagerly, so neighbourhood iteration allocates
    nothing. *)

type edge = { u : int; v : int; p : float }
(** An undirected uncertain edge between [u] and [v] existing with
    probability [p]. The orientation of [(u, v)] carries no meaning. *)

type t

val create : n:int -> edge list -> t
(** [create ~n edges] builds a graph with [n] vertices.
    @raise Invalid_argument if an endpoint is outside [[0, n)] or a
    probability is outside [[0, 1]] or not finite. *)

val of_arrays : n:int -> edge array -> t
(** Like {!create} from an array; the array is copied. *)

val n_vertices : t -> int
val n_edges : t -> int

val edge : t -> int -> edge
(** [edge g i] is the edge with identifier [i] in [[0, n_edges)]. *)

val edges : t -> edge array
(** A fresh copy of the edge array, indexed by edge identifier. *)

val iter_edges : (int -> edge -> unit) -> t -> unit
val fold_edges : ('a -> int -> edge -> 'a) -> 'a -> t -> 'a

val degree : t -> int -> int
(** Number of incident edge endpoints at a vertex. A self-loop counts
    once. *)

val iter_incident : t -> int -> (eid:int -> other:int -> unit) -> unit
(** Iterate the edges incident to a vertex. For a self-loop [other] equals
    the vertex itself and the edge is visited once. *)

val incident_eids : t -> int -> int array
(** Edge identifiers incident to a vertex (self-loops once). *)

val incident_get : t -> int -> int -> int * int
(** [incident_get g v i] is the [i]-th incident [(eid, other_endpoint)]
    of [v], for [i] in [[0, degree g v)]. Constant time, no allocation
    beyond the result pair; intended for iterative DFS/BFS that cannot
    use {!iter_incident}. *)

val neighbours : t -> int -> int array
(** Endpoint vertices adjacent to a vertex, one entry per incident edge
    (so duplicated under parallel edges). *)

val other_endpoint : edge -> int -> int
(** [other_endpoint e v] is the endpoint of [e] that is not [v]
    ([v] itself for a self-loop).
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)

val has_self_loop : t -> bool
val has_parallel_edge : t -> bool

val avg_degree : t -> float
val avg_prob : t -> float

val map_probs : (int -> edge -> float) -> t -> t
(** Rebuild the graph with new edge probabilities. *)

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the distinct vertices [vs],
    renumbered [0..]; returns [(sub, old_of_new)] where
    [old_of_new.(new_id) = old_id]. Edges with an endpoint outside [vs]
    are dropped. @raise Invalid_argument on duplicate vertices. *)

val relabel_terminals : old_of_new:int array -> int list -> int list
(** Map terminal ids of the original graph into the induced subgraph's
    numbering. Terminals not present in the subgraph are dropped. *)

val validate_terminals : t -> int list -> unit
(** @raise Invalid_argument if the terminal list is empty, contains a
    duplicate, or mentions a vertex outside the graph. *)

(** {1 Text I/O}

    Format: blank lines and [#]-prefixed comments are ignored; the first
    data line holds the vertex count; every following data line holds
    [u v p] (whitespace separated). *)

val to_channel : out_channel -> t -> unit
val of_channel : in_channel -> t
val to_file : string -> t -> unit
val of_file : string -> t
val of_string : string -> t
val to_buffer : Buffer.t -> t -> unit

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: vertex/edge counts, average degree, average
    probability (the columns of the paper's Table 2). *)
