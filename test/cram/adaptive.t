Sequential stopping from the CLI: --ci-width replaces the fixed
--samples budget with draw-until-the-interval-is-narrow. The interval
is the Wilson score interval (never the Wald one that collapses to
zero width at 0 hits), the run reports the samples the stopping rule
actually spent, and for a fixed seed the estimate is bit-identical at
every --jobs value. NETREL_FAKE_CLOCK pins the observer clock, so the
stats documents below are byte-stable.

  $ export NETREL_FAKE_CLOCK=1

A multi-round plain-MC run on karate — the second round is planned
from the first round's Wilson width, so the spent budget lands near
the requirement instead of on a power-of-two:

  $ netrel estimate --dataset karate --terminals 0,33 --method sampling-mc \
  >   --ci-width 0.0015 --jobs 1 | grep -v time
  graph Karate: |V|=34 |E|=78 avg_deg=4.59 avg_prob=0.534
  terminals: [0, 33]
  R = 0.9992985972
  ci95 = [0.9985527541, 0.9996601983]  (width 0.001107, target 0.0015)
  adaptive: 9980 samples in 2 rounds, stop = width-reached

The stratified pro driver (Neyman-allocated rounds over the S2BDD
sampling plan) reaches the same target with far fewer descents, because
the proven construction bounds already confine the answer:

  $ netrel estimate --dataset karate --terminals 0,33 --method pro \
  >   --width 64 --ci-width 0.02 --jobs 1 | grep -v time
  graph Karate: |V|=34 |E|=78 avg_deg=4.59 avg_prob=0.534
  terminals: [0, 33]
  R = 0.9998433689
  ci95 = [0.9989405176, 0.9999768658]  (width 0.001036, target 0.02)
  adaptive: 4096 samples in 1 rounds, stop = width-reached

--jobs is placement-only: apart from the run.jobs metadata line, the
full stats document is byte-identical across jobs values:

  $ netrel estimate --dataset karate --terminals 0,33 --method sampling-mc \
  >   --ci-width 0.0015 --jobs 1 --stats json | grep -v '"jobs"' > adaptive_j1.json
  $ netrel estimate --dataset karate --terminals 0,33 --method sampling-mc \
  >   --ci-width 0.0015 --jobs 8 --stats json | grep -v '"jobs"' > adaptive_j8.json
  $ cmp adaptive_j1.json adaptive_j8.json

The adaptive section carries the loop account, its per-phase GC delta
(all zeros under the fake clock), and the round-size histogram; the
result carries the stopped Wilson interval (nonzero width even this
close to 1):

  $ sed -n '/"adaptive"/,/^  },/p' adaptive_j1.json
    "adaptive": {
      "ci_width": 0.0011074442102849691,
      "gc": {
        "compactions": 0,
        "major_collections": 0,
        "major_words": 0,
        "minor_collections": 0,
        "minor_words": 0,
        "promoted_words": 0,
        "top_heap_words": 0.0
      },
      "hist": {
        "round_size": {
          "count": 2,
          "max": 5884,
          "p50": 4096,
          "p90": 5632,
          "p99": 5632,
          "buckets": [
            [
              144,
              1
            ],
            [
              150,
              1
            ]
          ]
        }
      },
      "rounds": 2,
      "samples_planned": 9980,
      "samples_used": 9980,
      "stop": "width-reached",
      "stop_width-reached": 1,
      "target_width": 0.0015
    },
  $ grep -E '^    "(value|lower|upper|exact)"' adaptive_j1.json
      "value": 0.99929859719438874,
      "lower": 0.9985527541033743,
      "upper": 0.99966019831365927,
      "exact": false,

Error paths exit 2 with a clean message — --ci-width only applies to
the estimating methods, --max-samples only modifies --ci-width, and
the target width must be a proper fraction:

  $ netrel estimate --dataset karate --terminals 0,33 --method bdd \
  >   --ci-width 0.02 2>&1
  netrel: --ci-width applies to pro / sampling-mc / sampling-ht only
  [2]

  $ netrel estimate --dataset karate --terminals 0,33 --method sampling-mc \
  >   --max-samples 100 2>&1
  netrel: --max-samples requires --ci-width
  [2]

  $ netrel estimate --dataset karate --terminals 0,33 --method sampling-mc \
  >   --ci-width 1.5 2>&1 | tail -1
  netrel: Adaptive: ci_width must be in (0, 1)
