module P = Preprocess.Pipeline
module S2bdd = Netrel.S2bdd
module MC = Mcsampling.Chunked

type stop =
  | Width_reached
  | Budget_exhausted
  | Exact_answer

let stop_name = function
  | Width_reached -> "width-reached"
  | Budget_exhausted -> "max-samples"
  | Exact_answer -> "exact"

type result = {
  value : float;
  lower : float;
  upper : float;
  exact : bool;
  ci_width : float;
  target_width : float;
  samples_used : int;
  samples_planned : int;
  rounds : int;
  stop : stop;
  estimate : Mcsampling.estimate option;
}

let default_max_samples = 1_000_000

let validate ~ci_width ~max_samples =
  if not (Float.is_finite ci_width) || ci_width <= 0. || ci_width >= 1. then
    invalid_arg "Adaptive: ci_width must be in (0, 1)";
  if max_samples < 1 then invalid_arg "Adaptive: max_samples < 1"

(* Next-round size, a pure function of the account so far — the round
   schedule (and hence the whole run) is replayable from the seed. The
   required total comes from inverting the large-n Wilson width
   [2 z sqrt(p (1-p) / n) <= w] at the Agresti–Coull-smoothed
   proportion (the +2/+4 pseudo-counts keep 0-hit prefixes from
   planning an absurdly small budget). Growth is bounded both ways:
   at least one {!Mcsampling.chunk_target} chunk of progress per round
   (the plan can undershoot the actual Wilson width near the
   boundaries), at most 4x what was already drawn (a bad early [p^]
   must not commit the whole budget in one round). *)
let next_round ~hits ~drawn ~width ~max_samples =
  let remaining = max_samples - drawn in
  if remaining <= 0 then 0
  else if drawn = 0 then min Mcsampling.chunk_target remaining
  else begin
    let z = Relstats.default_z in
    let pt = (float_of_int hits +. 2.) /. (float_of_int drawn +. 4.) in
    let n_req =
      Float.ceil (4. *. z *. z *. pt *. (1. -. pt) /. (width *. width))
    in
    let need =
      if n_req >= float_of_int max_int then max_int - drawn
      else int_of_float n_req - drawn
    in
    let next = max Mcsampling.chunk_target (min need (4 * drawn)) in
    min next remaining
  end

(* Largest-remainder apportionment of [total] over non-negative
   [weights] (sum > 0): floors first, then one extra to the largest
   fractional parts, ties to the lower index — deterministic, exact
   sum. *)
let apportion ~total weights =
  let k = Array.length weights in
  let sum = Array.fold_left ( +. ) 0. weights in
  let shares =
    Array.map (fun w -> float_of_int total *. w /. sum) weights
  in
  let out = Array.map (fun s -> int_of_float (Float.floor s)) shares in
  let rem = total - Array.fold_left ( + ) 0 out in
  let idx = Array.init k (fun i -> i) in
  Array.sort
    (fun a b ->
      let fa = shares.(a) -. Float.floor shares.(a)
      and fb = shares.(b) -. Float.floor shares.(b) in
      if fa = fb then compare a b else Float.compare fb fa)
    idx;
  for j = 0 to rem - 1 do
    let i = idx.(j) in
    out.(i) <- out.(i) + 1
  done;
  out

let trivial ~target_width value =
  {
    value;
    lower = value;
    upper = value;
    exact = true;
    ci_width = 0.;
    target_width;
    samples_used = 0;
    samples_planned = 0;
    rounds = 0;
    stop = Exact_answer;
    estimate = None;
  }

let finish_obs ao r =
  Obs.add ao "rounds" r.rounds;
  Obs.add ao "samples_planned" r.samples_planned;
  Obs.add ao "samples_used" r.samples_used;
  Obs.gauge ao "ci_width" r.ci_width;
  Obs.gauge ao "target_width" r.target_width;
  Obs.text ao "stop" (stop_name r.stop);
  Obs.incr ao ("stop_" ^ stop_name r.stop);
  r

let emit_result trace r =
  if Trace.enabled trace then
    Trace.instant trace "adaptive.done"
      ~args:
        [
          ("value", Trace.Float r.value);
          ("lower", Trace.Float r.lower);
          ("upper", Trace.Float r.upper);
          ("width", Trace.Float r.ci_width);
          ("rounds", Trace.Int r.rounds);
          ("samples", Trace.Int r.samples_used);
          ("stop", Trace.Str (stop_name r.stop));
        ];
  r

(* ------------------------------------------------------------------ *)
(* Plain samplers                                                      *)
(* ------------------------------------------------------------------ *)

(* One sequential-stopping loop shared by MC and HT: [hits]/[samples]
   feed the planner, [estimate] prices the current interval. *)
let sampler_loop ~ao ~trace ~ci_width ~max_samples ~draw ~samples ~hits
    ~estimate =
  let rounds = ref 0 in
  let planned = ref 0 in
  let finished = ref None in
  while !finished = None do
    let drawn = samples () in
    (* [hits] may cost an estimate replay (HT) and is undefined before
       the first draw — only consult it once something was drawn. *)
    let h = if drawn = 0 then 0 else hits () in
    let next = next_round ~hits:h ~drawn ~width:ci_width ~max_samples in
    if next = 0 then finished := Some Budget_exhausted
    else begin
      let ts = Trace.now trace in
      (* Round-size distribution and per-round GC cost: the round
         schedule is a deterministic function of the observed hit
         counts, so the histogram is byte-stable for a fixed seed. *)
      Obs.hist ao "hist.round_size" next;
      Obs.gc_phase ao "gc" (fun () -> draw next);
      incr rounds;
      planned := !planned + next;
      let e = estimate () in
      let lower, upper = Mcsampling.interval e in
      let width = upper -. lower in
      if Trace.enabled trace then
        Trace.complete trace ~ts "adaptive.round"
          ~args:
            [
              ("round", Trace.Int !rounds);
              ("planned", Trace.Int next);
              ("samples", Trace.Int (samples ()));
              ("width", Trace.Float width);
            ];
      if width <= ci_width then finished := Some Width_reached
    end
  done;
  let stop = Option.get !finished in
  let e = estimate () in
  let lower, upper = Mcsampling.interval e in
  finish_obs ao
    {
      value = Float.max 0. (Float.min 1. e.Mcsampling.value);
      lower;
      upper;
      exact = false;
      ci_width = upper -. lower;
      target_width = ci_width;
      samples_used = e.Mcsampling.samples_used;
      samples_planned = !planned;
      rounds = !rounds;
      stop;
      estimate = Some e;
    }

let monte_carlo ?(obs = Obs.disabled) ?(trace = Trace.disabled) ?seed ?jobs
    ?kernel ?csr ?(max_samples = default_max_samples) g ~terminals ~ci_width =
  validate ~ci_width ~max_samples;
  Ugraph.validate_terminals g terminals;
  let ao = Obs.sub obs "adaptive" in
  if List.length terminals < 2 then
    emit_result trace (finish_obs ao (trivial ~target_width:ci_width 1.))
  else begin
    let t = MC.mc_create ~obs ~trace ?seed ?jobs ?kernel ?csr g ~terminals in
    emit_result trace
      (sampler_loop ~ao ~trace ~ci_width ~max_samples
         ~draw:(fun n -> MC.mc_draw t ~samples:n)
         ~samples:(fun () -> MC.mc_samples t)
         ~hits:(fun () -> MC.mc_hits t)
         ~estimate:(fun () -> MC.mc_estimate t))
  end

let horvitz_thompson ?(obs = Obs.disabled) ?(trace = Trace.disabled) ?seed
    ?jobs ?kernel ?csr ?(max_samples = default_max_samples) g ~terminals
    ~ci_width =
  validate ~ci_width ~max_samples;
  Ugraph.validate_terminals g terminals;
  let ao = Obs.sub obs "adaptive" in
  if List.length terminals < 2 then
    emit_result trace (finish_obs ao (trivial ~target_width:ci_width 1.))
  else begin
    let t = MC.ht_create ~obs ~trace ?seed ?jobs ?kernel ?csr g ~terminals in
    (* The HT planner reads hits as round(value * samples): the HT value
       is a weighted sum, not a count, but the planner only needs a
       smoothed variance proxy. *)
    let hits () =
      let e = MC.ht_estimate t in
      let v = Float.max 0. (Float.min 1. e.Mcsampling.value) in
      int_of_float (Float.round (v *. float_of_int e.Mcsampling.samples_used))
    in
    emit_result trace
      (sampler_loop ~ao ~trace ~ci_width ~max_samples
         ~draw:(fun n -> MC.ht_draw t ~samples:n)
         ~samples:(fun () -> MC.ht_samples t)
         ~hits
         ~estimate:(fun () -> MC.ht_estimate t))
  end

(* ------------------------------------------------------------------ *)
(* Stratified S2BDD plans (Neyman re-allocation)                       *)
(* ------------------------------------------------------------------ *)

(* How many per-stratum gauges a plan run records: real graphs can shed
   thousands of strata and the stats document must stay bounded. *)
let max_stratum_gauges = 16

type plan_outcome = {
  po_value : float;
  po_lower : float;
  po_upper : float;
  po_exact : bool;
  po_samples : int;
  po_planned : int;
  po_rounds : int;
  po_stop : stop;
}

let outcome_of_exact (r : S2bdd.result) =
  {
    po_value = r.S2bdd.value;
    po_lower = r.S2bdd.lower;
    po_upper = r.S2bdd.upper;
    po_exact = true;
    po_samples = 0;
    po_planned = 0;
    po_rounds = 0;
    po_stop = Exact_answer;
  }

(* The honest interval of a partially sampled plan. Let
   [U = upper - lower] be the unresolved mass and [Us] the mass the
   strata actually carry ([U - Us] is float slack, clamped at 0). The
   proportionally weighted pooled proportion
   [r^ = sum_i (mass_i / Us) * hits_i / drawn_i] estimates the connected
   fraction of the sampled mass; a Wilson interval on [(r^, N)] scaled
   by [Us] then brackets the sampled mass's contribution at least as
   conservatively as the true stratified variance would (proportional
   stratification never has more variance than one binomial of the same
   [N] — variance decomposition drops the between-strata term). Any
   unsampled slack counts fully against the upper bound. *)
let plan_interval plan =
  let lower, upper = S2bdd.plan_bounds plan in
  let k = S2bdd.n_strata plan in
  let us = ref 0. and n = ref 0 and r_eff = ref 0. in
  for i = 0 to k - 1 do
    us := !us +. S2bdd.stratum_mass plan i;
    n := !n + S2bdd.stratum_drawn plan i
  done;
  if !us > 0. then
    for i = 0 to k - 1 do
      let d = S2bdd.stratum_drawn plan i in
      if d > 0 then
        r_eff :=
          !r_eff
          +. S2bdd.stratum_mass plan i /. !us
             *. (float_of_int (S2bdd.stratum_hits plan i) /. float_of_int d)
    done;
  let slack = Float.max 0. (upper -. lower -. !us) in
  if !n = 0 then (lower, upper, !r_eff, !n)
  else begin
    let wl, wu = Relstats.interval Relstats.Wilson ~phat:!r_eff ~n:!n in
    let lo = lower +. (!us *. wl) in
    let hi = Float.min upper (lower +. (!us *. wu) +. slack) in
    (lo, Float.max lo hi, !r_eff, !n)
  end

(* Per-stratum Neyman weight [mass_i * sigma^_i] with the half-count
   smoothed binomial spread — strictly positive, so every stratum keeps
   a nonzero chance of further refinement even after an all-miss or
   all-hit prefix. *)
let neyman_weight plan i =
  let n = float_of_int (S2bdd.stratum_drawn plan i) in
  let h = float_of_int (S2bdd.stratum_hits plan i) in
  let sigma = sqrt ((h +. 0.5) *. (n -. h +. 0.5)) /. (n +. 1.) in
  S2bdd.stratum_mass plan i *. sigma

let run_plan ?pool ~ao ~trace ~sub ~ci_width ~max_samples plan =
  let lower, upper = S2bdd.plan_bounds plan in
  let k = S2bdd.n_strata plan in
  let total_mass = ref 0. in
  for i = 0 to k - 1 do
    total_mass := !total_mass +. S2bdd.stratum_mass plan i
  done;
  let rounds = ref 0 in
  let planned = ref 0 in
  let finished = ref None in
  if upper -. lower <= ci_width then finished := Some Width_reached;
  while !finished = None do
    let _, _, r_eff, drawn = plan_interval plan in
    (* Plan against the width the Wilson part must reach once the
       mass scaling and the unsampled slack are taken out. *)
    let slack = Float.max 0. (upper -. lower -. !total_mass) in
    let w_eff =
      if !total_mass > 0. then (ci_width -. slack) /. !total_mass else 0.
    in
    let next =
      if w_eff <= 0. then 0
      else
        next_round
          ~hits:(int_of_float (Float.round (r_eff *. float_of_int drawn)))
          ~drawn ~width:w_eff ~max_samples
    in
    if next = 0 then finished := Some Budget_exhausted
    else begin
      let ts = Trace.now trace in
      (* Round 1 is proportional-to-mass with every stratum covered
         (there is no variance signal yet); later rounds re-allocate by
         the observed Neyman weights. *)
      let alloc =
        if !rounds = 0 then begin
          let next = max next k in
          let base =
            apportion ~total:(next - k)
              (Array.init k (fun i -> S2bdd.stratum_mass plan i))
          in
          Array.map (fun n -> n + 1) base
        end
        else apportion ~total:next (Array.init k (fun i -> neyman_weight plan i))
      in
      let this_round = Array.fold_left ( + ) 0 alloc in
      let targets =
        Array.of_list
          (List.filter (fun i -> alloc.(i) > 0) (List.init k (fun i -> i)))
      in
      Obs.hist ao "hist.round_size" this_round;
      (* Distinct strata only: safe to draw concurrently (each owns its
         stream, counters and scratch). *)
      Obs.gc_phase ao "gc" (fun () ->
          ignore
            (Par.run ?pool (Array.length targets) (fun j ->
                 let i = targets.(j) in
                 S2bdd.draw_stratum plan i ~n:alloc.(i))));
      incr rounds;
      planned := !planned + this_round;
      let lo, hi, _, _ = plan_interval plan in
      let width = hi -. lo in
      if Trace.enabled trace then
        Trace.complete trace ~ts "adaptive.round"
          ~args:
            [
              ("sub", Trace.Int sub);
              ("round", Trace.Int !rounds);
              ("planned", Trace.Int this_round);
              ("strata", Trace.Int (Array.length targets));
              ("width", Trace.Float width);
            ];
      if width <= ci_width then finished := Some Width_reached
    end
  done;
  let lo, hi, _, drawn = plan_interval plan in
  for i = 0 to min k max_stratum_gauges - 1 do
    Obs.gauge ao
      (Printf.sprintf "stratum%d.drawn" i)
      (float_of_int (S2bdd.stratum_drawn plan i));
    Obs.gauge ao
      (Printf.sprintf "stratum%d.mass" i)
      (S2bdd.stratum_mass plan i)
  done;
  (* Point value: the plan's own stratified estimate, pulled into the
     honest interval (they can disagree by sampling noise near the
     clamp boundaries). *)
  let value =
    let _, _, r_eff, _ = plan_interval plan in
    let v = lower +. (!total_mass *. r_eff) in
    Float.max lo (Float.min hi v)
  in
  {
    po_value = value;
    po_lower = lo;
    po_upper = hi;
    po_exact = false;
    po_samples = drawn;
    po_planned = !planned;
    po_rounds = !rounds;
    po_stop = Option.get !finished;
  }

let combine_outcomes ~target_width ~pb outcomes =
  let value, lower, upper, exact =
    Array.fold_left
      (fun (v, lo, hi, ex) o ->
        (v *. o.po_value, lo *. o.po_lower, hi *. o.po_upper, ex && o.po_exact))
      (pb, pb, pb, true) outcomes
  in
  let samples = Array.fold_left (fun a o -> a + o.po_samples) 0 outcomes in
  let planned = Array.fold_left (fun a o -> a + o.po_planned) 0 outcomes in
  let rounds = Array.fold_left (fun a o -> a + o.po_rounds) 0 outcomes in
  let stop =
    if exact then Exact_answer
    else if Array.exists (fun o -> o.po_stop = Budget_exhausted) outcomes then
      Budget_exhausted
    else Width_reached
  in
  {
    value;
    lower;
    upper;
    exact;
    ci_width = upper -. lower;
    target_width;
    samples_used = samples;
    samples_planned = planned;
    rounds;
    stop;
    estimate = None;
  }

let reliability ?(obs = Obs.disabled) ?(trace = Trace.disabled)
    ?(config = S2bdd.default_config) ?(extension = true) ?(jobs = 1) ?prep
    ?orders ?(max_samples = default_max_samples) g ~terminals ~ci_width =
  validate ~ci_width ~max_samples;
  if jobs < 1 then invalid_arg "Adaptive.reliability: jobs < 1";
  let ejobs = Par.effective_jobs jobs in
  let pool = if ejobs > 1 then Some (Par.Pool.shared ~jobs:ejobs) else None in
  let ao = Obs.sub obs "adaptive" in
  let run_sub ~sub ~obs ~trace ~width ~cap cfg sg sterminals =
    match S2bdd.prepare ~obs ~trace ~config:cfg sg ~terminals:sterminals with
    | S2bdd.Exact r -> outcome_of_exact r
    | S2bdd.Sampling plan ->
      run_plan ?pool ~ao ~trace ~sub ~ci_width:width ~max_samples:cap plan
  in
  let result =
    if extension then begin
      (* As in {!Reliability.estimate}: [prep] replays a cached pipeline
         outcome for the same (graph, terminals); the rounds that follow
         are a pure function of the outcome, config and seed. *)
      let outcome =
        match prep with
        | Some o -> o
        | None -> P.run ~obs ~trace g ~terminals
      in
      match outcome with
      | P.Trivial r ->
        finish_obs ao (trivial ~target_width:ci_width (Xprob.to_float_exn r))
      | P.Reduced { pb; subproblems; stats = _ } ->
        (* Seeds are drawn before any subproblem runs (order
           independence, as in {!Reliability.estimate}). Constructions
           and rounds run sequentially per subproblem — the strata
           within a round are the parallel surface. *)
        let pbf = Xprob.to_float_exn pb in
        let seed_rng = Prng.create config.S2bdd.seed in
        let sub_arr = Array.of_list subproblems in
        let seeds =
          Array.map (fun _ -> Int64.to_int (Prng.bits64 seed_rng)) sub_arr
        in
        let k_s = Array.length sub_arr in
        (* Product-interval width is at most [pb * sum of sub widths]
           (all factors in [[0, 1]]), so an even split of the target
           over the subproblems is sufficient. *)
        let width =
          Float.min 1. (ci_width /. (pbf *. float_of_int (max 1 k_s)))
        in
        let cap = max 1 (max_samples / max 1 k_s) in
        let outcomes =
          Array.mapi
            (fun i (sp : P.subproblem) ->
              let cfg = { config with S2bdd.seed = seeds.(i) } in
              let cfg =
                match orders with
                | Some os -> { cfg with S2bdd.order = `Explicit os.(i) }
                | None -> cfg
              in
              run_sub ~sub:i ~obs ~trace ~width ~cap cfg sp.P.graph
                sp.P.terminals)
            sub_arr
        in
        finish_obs ao (combine_outcomes ~target_width:ci_width ~pb:pbf outcomes)
    end
    else
      let o =
        run_sub ~sub:0 ~obs ~trace ~width:ci_width ~cap:max_samples config g
          terminals
      in
      finish_obs ao (combine_outcomes ~target_width:ci_width ~pb:1. [| o |])
  in
  emit_result trace result
