let max_edges = 25

let reliability g ~terminals =
  Ugraph.validate_terminals g terminals;
  let m = Ugraph.n_edges g in
  if m > max_edges then
    invalid_arg (Printf.sprintf "Bruteforce.reliability: %d edges > %d" m max_edges);
  match terminals with
  | [] | [ _ ] -> 1.
  | _ ->
    let n = Ugraph.n_vertices g in
    let dsu = Dsu.create n in
    let present = Array.make m false in
    let total = ref 0. in
    for mask = 0 to (1 lsl m) - 1 do
      let prob = ref 1. in
      for i = 0 to m - 1 do
        let e = Ugraph.edge g i in
        if mask land (1 lsl i) <> 0 then begin
          present.(i) <- true;
          prob := !prob *. e.Ugraph.p
        end
        else begin
          present.(i) <- false;
          prob := !prob *. (1. -. e.Ugraph.p)
        end
      done;
      if !prob > 0.
         && Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present terminals
      then total := !total +. !prob
    done;
    !total
