(* Exactness on small graphs: the paper emphasises that the S2BDD
   computes the EXACT reliability when the width cap is never hit —
   something plain sampling can never do (Table 4: zero error on Am-Rv).
   This example walks the spectrum: brute force, exact BDD, exact
   S2BDD, width-limited S2BDD with proven bounds, and plain sampling.

     dune exec examples/exact_vs_approx.exe *)

module D = Workload.Datasets
module R = Netrel.Reliability
module S = Netrel.S2bdd

let () =
  let d = D.am_rv () in
  let g = d.D.graph in
  let terminals = Workload.Generators.random_terminals ~seed:11 g ~k:10 in
  Printf.printf "Dataset: %s (%s)\n\n" d.D.name
    (Format.asprintf "%a" Ugraph.pp_stats g);

  (* Ground truth through the exact BDD baseline (full layer storage). *)
  let exact, bdd_t =
    Relstats.time (fun () ->
        match Bddbase.Exact.reliability_float g ~terminals with
        | Ok r -> r
        | Error (`Node_budget_exceeded _) -> failwith "BDD baseline DNF")
  in
  Printf.printf "%-34s %-14.8g (%s)\n" "Exact BDD baseline:" exact
    (Relstats.format_seconds bdd_t);

  (* S2BDD with a generous width: detects exactness by itself. *)
  let wide = { S.default_config with S.width = 1 lsl 16 } in
  let rep, pro_t = Relstats.time (fun () -> R.estimate ~config:wide g ~terminals) in
  Printf.printf "%-34s %-14.8g (%s)%s\n" "S2BDD, width 65536:" rep.R.value
    (Relstats.format_seconds pro_t)
    (if rep.R.exact then "  <- reported exact" else "");

  (* S2BDD with a tiny width: approximate, but the answer comes with
     PROVEN bounds that always contain the truth. *)
  let narrow = { S.default_config with S.width = 16; S.samples = 2_000 } in
  let rep2, t2 = Relstats.time (fun () -> R.estimate ~config:narrow g ~terminals) in
  Printf.printf "%-34s %-14.8g (%s) bounds [%.3g, %.3g]\n" "S2BDD, width 16:"
    rep2.R.value (Relstats.format_seconds t2) rep2.R.lower rep2.R.upper;
  assert (rep2.R.lower <= exact && exact <= rep2.R.upper);

  (* Plain sampling cannot resolve a reliability of this magnitude with
     a realistic sample budget: most runs return 0. *)
  (* The reliability polynomial: the same frontier construction carries
     subgraph counts instead of probabilities, giving R(p) for EVERY
     uniform edge probability at once. *)
  (let small = Testgraph.fig1 in
   match Bddbase.Polynomial.compute small ~terminals:[ 0; 3; 4 ] with
   | Error _ -> ()
   | Ok poly ->
     Printf.printf "\nReliability polynomial of the Figure-1 graph (k = 3):\n  %s\n"
       (Format.asprintf "%a" Bddbase.Polynomial.pp poly);
     List.iter
       (fun p -> Printf.printf "  R(%.1f) = %.6f\n" p (Bddbase.Polynomial.eval poly p))
       [ 0.3; 0.5; 0.7; 0.9 ];
     print_newline ());

  let mc, mc_t =
    Relstats.time (fun () -> Mcsampling.monte_carlo ~seed:3 g ~terminals ~samples:10_000)
  in
  Printf.printf "%-34s %-14.8g (%s)\n" "Plain Monte Carlo, s=10000:"
    mc.Mcsampling.value (Relstats.format_seconds mc_t);
  print_newline ();
  Printf.printf
    "The S2BDD reproduces the exact value (and knows it is exact); with a\n\
     width cap of 16 it still brackets the truth with proven bounds, while\n\
     plain sampling at s = 10000 %s.\n"
    (if mc.Mcsampling.value = 0. then
       "misses the event entirely and reports 0"
     else "only lands within sampling noise")
