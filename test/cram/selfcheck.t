The self-check driver: a small fixed-seed budget must come back clean,
and the --json report schema is pinned byte-for-byte (the document
carries no timing, so it is stable under NETREL_FAKE_CLOCK and without).

  $ export NETREL_FAKE_CLOCK=1

  $ netrel selfcheck --trials 3 --seed 1
  selfcheck: seed=1 trials=3 jobs=1,2,8
    oracle       cases=18   checks=1080  violations=0   skipped=0
    metamorphic  cases=27   checks=135   violations=0   skipped=0
    calibration  cases=11   checks=14    violations=0   skipped=0
  result: OK (56 cases, 1229 checks, 0 violations)

  $ netrel selfcheck --trials 3 --seed 1 --json
  {
    "netrel": {
      "emitter": "netrel",
      "schema": 2,
      "tool": "selfcheck"
    },
    "run": {
      "seed": 1,
      "trials": 3,
      "jobs": [
        1,
        2,
        8
      ]
    },
    "sections": [
      {
        "name": "oracle",
        "cases": 18,
        "checks": 1080,
        "violations": 0,
        "skipped": 0
      },
      {
        "name": "metamorphic",
        "cases": 27,
        "checks": 135,
        "violations": 0,
        "skipped": 0
      },
      {
        "name": "calibration",
        "cases": 11,
        "checks": 14,
        "violations": 0,
        "skipped": 0
      }
    ],
    "violations": [],
    "result": {
      "cases": 56,
      "checks": 1229,
      "violations": 0,
      "ok": true
    }
  }

Two runs at the same seed are byte-identical:

  $ netrel selfcheck --trials 3 --seed 7 --json > a.json
  $ netrel selfcheck --trials 3 --seed 7 --json > b.json
  $ cmp a.json b.json
