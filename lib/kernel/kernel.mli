(** Flat sampling kernels: the shared allocation-free fast path under
    every estimator's inner loop (MC, HT, and the S2BDD stratified
    descents), which all bottom out in "draw one possible graph, test
    terminal connectivity".

    Three pieces:

    - {!Csr}: an immutable struct-of-arrays snapshot of the graph —
      edge endpoints, probabilities, and per-vertex adjacency in unboxed
      [int array]/[float array], indexed by {e position} (edge id for
      {!Csr.of_graph}, processing-order position for {!Csr.of_order}).
      This extends the [ord_u]/[ord_v]/[ord_p] idea from the frontier
      machine to the whole pipeline: hot loops stream flat arrays
      instead of chasing boxed edge records through closures.

    - Draw loops writing into a reusable scratch ({!t}): one
      {!Prng.bernoulli} per edge {b in position order} — exactly the
      stream the pre-kernel samplers consumed, so seeded outputs are
      bit-identical (the draw-order contract, DESIGN.md section 10).
      Drawn-present positions are appended to a scratch buffer as they
      are drawn; the detail variants additionally pack the outcome bits
      62-per-word for {!Hash64.mask_words} (no [bool array] re-scan)
      and fold the probability in the same float-operation order as the
      reference implementations.

    - An early-exit union–find over the drawn-present buffer:
      generation-stamped (no O(elements) reset per sample) and counting
      {e live} required components so the union loop stops as soon as
      the terminals have merged, instead of unioning every present edge
      and re-checking all terminal pairs at the end. Early exit cannot
      change the verdict — unions never split components, so once the
      required-component count reaches 1 it stays there ([live <= 1] is
      monotone under union).

    The kernel never draws fewer Prng values than the reference (the
    draw always scans every remaining edge); only the union work is cut
    short. Differential oracles: [Mcsampling.Reference] and
    [Fstate.descend_union], kept bit-for-bit compatible and checked by
    [test/test_kernel.ml] and the [netrel selfcheck] sweep. *)

(** Immutable CSR-style graph snapshot. *)
module Csr : sig
  type t = private {
    n : int;  (** vertex count *)
    m : int;  (** edge (position) count *)
    eu : int array;  (** endpoint u by position *)
    ev : int array;  (** endpoint v by position *)
    ep : float array;  (** existence probability by position *)
    off : int array;  (** adjacency offsets, length [n + 1] *)
    adj_pos : int array;  (** incident positions, CSR-packed *)
    adj_other : int array;  (** matching opposite endpoints *)
  }

  val of_graph : Ugraph.t -> t
  (** Snapshot in natural edge order: position = edge id. *)

  val of_order : Ugraph.t -> order:int array -> t
  (** Snapshot in processing order: position [i] holds edge
      [order.(i)]. [order] need not cover every edge id. *)

  val n_vertices : t -> int
  val n_edges : t -> int

  val iter_incident : t -> int -> (pos:int -> other:int -> unit) -> unit
  (** Iterate the positions incident to a vertex (self-loops once),
      mirroring {!Ugraph.iter_incident} in position space. *)
end

type t
(** Mutable per-domain scratch: the drawn-present buffer, the packed
    mask words, and the stamped union–find. Grows on demand and is
    reused across samples; nothing leaks between samples (the buffers
    are rewritten per draw, the union–find is invalidated wholesale by
    bumping its generation stamp). *)

val create : unit -> t

val scratch : unit -> t
(** The calling domain's scratch (domain-local storage). Samplers and
    descents share it — safe because a domain runs one task at a time
    and every round fully re-initialises what it reads. *)

(** {2 Draw loops}

    All variants draw every remaining edge in position order, one
    {!Prng.bernoulli} (or [bernoulli]) call per edge. *)

val draw : t -> Csr.t -> Prng.t -> unit
(** MC draw: fill the present buffer only. *)

val draw_prob : t -> Csr.t -> Prng.t -> Xprob.t
(** HT draw: additionally packs the mask words for {!mask_hash} and
    returns the possible graph's probability, folded with
    [Xprob.scale p] / [Xprob.scale (1 - p)] in draw order. *)

val draw_sub : t -> Csr.t -> pos:int -> detail:bool -> bernoulli:(float -> bool) -> float
(** Descent draw: positions [pos .. m - 1] (the start-position offset of
    a resumed S2BDD descent). With [~detail:true] also packs the mask
    words (bit [i] = outcome of position [pos + i]) and returns the
    completion's log-probability, accumulated as [log p] for existent
    edges with [p < 1] and [log1p (-p)] for non-existent ones; with
    [~detail:false] returns [0.]. *)

val n_present : t -> int
(** Number of present edges in the last draw. *)

val mask_hash : t -> int
(** 62-bit content hash ({!Hash64.mask_words}) of the last
    {!draw_prob} / detail {!draw_sub} mask. Digest-identical to
    {!Hash64.mask} over the corresponding [bool array]. *)

(** {2 Early-exit connectivity rounds}

    A round is: {!round_begin}, then {!mark} every required element
    (and optionally pre-seed with {!union} — the S2BDD descent anchors
    frontier components this way), then {!union_drawn}. [live] counts
    components holding at least one marked element; the terminals are
    connected exactly when [live <= 1]. *)

val round_begin : t -> elems:int -> unit
(** Invalidate the union–find and size it for elements
    [0 .. elems - 1]. O(1) amortised: stamping replaces the O(elems)
    reset per sample. *)

val mark : t -> int -> unit
(** Flag an element as required (terminal or terminal-carrying
    component). *)

val union : t -> int -> int -> unit

val connected : t -> bool
(** Whether at most one live required component remains. *)

val union_drawn : t -> Csr.t -> bool
(** Union the endpoints of the drawn-present positions in draw order,
    stopping as soon as {!connected} holds; returns {!connected}. *)

val connected_terminals : t -> Csr.t -> int array -> bool
(** One full round: [round_begin] over the graph's vertices, [mark]
    each terminal, [union_drawn]. The complete MC connectivity check
    for the last draw. *)
