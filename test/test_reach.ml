open Testutil
module BF = Bddbase.Bruteforce

let t_two_terminal () =
  let g = fig1 () in
  let expect = BF.reliability g ~terminals:[ 0; 4 ] in
  let rep = Reach.two_terminal g ~source:0 ~target:4 in
  Alcotest.(check bool) "exact" true rep.Netrel.Reliability.exact;
  check_close ~eps:1e-9 "value" expect rep.Netrel.Reliability.value

let t_two_terminal_validation () =
  let g = fig1 () in
  Alcotest.check_raises "same vertex" (Invalid_argument "Reach: source equals target")
    (fun () -> ignore (Reach.two_terminal g ~source:1 ~target:1));
  Alcotest.check_raises "range" (Invalid_argument "Reach: vertex out of range")
    (fun () -> ignore (Reach.two_terminal g ~source:0 ~target:99))

let t_hop_distance () =
  let g = path4 0.5 in
  let all = Array.make 3 true in
  Alcotest.(check (option int)) "end to end" (Some 3) (Reach.hop_distance g ~present:all 0 3);
  Alcotest.(check (option int)) "self" (Some 0) (Reach.hop_distance g ~present:all 2 2);
  let broken = [| true; false; true |] in
  Alcotest.(check (option int)) "cut" None (Reach.hop_distance g ~present:broken 0 3);
  Alcotest.(check (option int)) "within piece" (Some 1)
    (Reach.hop_distance g ~present:broken 2 3)

let t_distance_exact_path () =
  (* On a path with d >= length, the query equals plain s-t
     reliability; with d < length it is 0. *)
  let g = path4 0.8 in
  check_close "d=3 equals st-reliability" (0.8 ** 3.)
    (Reach.distance_constrained_exact g ~source:0 ~target:3 ~d:3);
  check_close "d=2 impossible" 0.
    (Reach.distance_constrained_exact g ~source:0 ~target:3 ~d:2);
  check_close "d huge" (0.8 ** 3.)
    (Reach.distance_constrained_exact g ~source:0 ~target:3 ~d:10)

let t_distance_exact_detour () =
  (* Cycle: direct edge (1 hop) or the long way (3 hops). *)
  let g = cycle4 0.5 in
  let direct = 0.5 in
  let detour = 0.5 ** 3. in
  check_close "d=1: direct only" direct
    (Reach.distance_constrained_exact g ~source:0 ~target:1 ~d:1);
  check_close "d=3: either route" (direct +. ((1. -. direct) *. detour))
    (Reach.distance_constrained_exact g ~source:0 ~target:1 ~d:3);
  (* d=3 unconstrained equals two-terminal reliability here. *)
  check_close "d=3 = st reliability" (BF.reliability g ~terminals:[ 0; 1 ])
    (Reach.distance_constrained_exact g ~source:0 ~target:1 ~d:3)

let t_distance_mc_statistics () =
  let g = cycle4 0.5 in
  let expect = Reach.distance_constrained_exact g ~source:0 ~target:1 ~d:3 in
  let est = Reach.distance_constrained_mc ~seed:5 g ~source:0 ~target:1 ~d:3 ~samples:40_000 in
  let sigma = sqrt (expect *. (1. -. expect) /. 40_000.) in
  Alcotest.(check bool)
    (Printf.sprintf "mc %.4f ~ %.4f" est.Reach.value expect)
    true
    (Float.abs (est.Reach.value -. expect) <= 5. *. sigma)

let t_distance_validation () =
  let g = path4 0.5 in
  Alcotest.check_raises "negative d" (Invalid_argument "Reach: negative distance bound")
    (fun () -> ignore (Reach.distance_constrained_exact g ~source:0 ~target:3 ~d:(-1)));
  Alcotest.check_raises "zero samples" (Invalid_argument "Reach: samples <= 0")
    (fun () ->
      ignore (Reach.distance_constrained_mc g ~source:0 ~target:3 ~d:2 ~samples:0))

let prop_distance_monotone_in_d =
  QCheck.Test.make ~name:"P(dist <= d) nondecreasing in d" ~count:100
    (Test_bddbase.arb_graph_ts ~max_n:6 ~max_m:9 ~max_k:2)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      match ts with
      | [ s; t ] ->
        let values =
          List.map (fun d -> Reach.distance_constrained_exact g ~source:s ~target:t ~d)
            [ 0; 1; 2; 3; 10 ]
        in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b +. 1e-12 && mono rest
          | _ -> true
        in
        mono values
      | _ -> QCheck.assume_fail ())

let prop_distance_unbounded_equals_st =
  QCheck.Test.make ~name:"P(dist <= n) = s-t reliability" ~count:100
    (Test_bddbase.arb_graph_ts ~max_n:6 ~max_m:9 ~max_k:2)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      match ts with
      | [ s; t ] ->
        let unbounded = Reach.distance_constrained_exact g ~source:s ~target:t ~d:n in
        let st = BF.reliability g ~terminals:[ s; t ] in
        Float.abs (unbounded -. st) <= 1e-9
      | _ -> QCheck.assume_fail ())

let suite =
  ( "reach",
    [
      Alcotest.test_case "two-terminal = k=2 reliability" `Quick t_two_terminal;
      Alcotest.test_case "two-terminal validation" `Quick t_two_terminal_validation;
      Alcotest.test_case "hop distance" `Quick t_hop_distance;
      Alcotest.test_case "distance-constrained exact: path" `Quick t_distance_exact_path;
      Alcotest.test_case "distance-constrained exact: detour" `Quick t_distance_exact_detour;
      Alcotest.test_case "distance-constrained MC statistics" `Slow t_distance_mc_statistics;
      Alcotest.test_case "distance validation" `Quick t_distance_validation;
    ]
    @ qtests [ prop_distance_monotone_in_d; prop_distance_unbounded_equals_st ] )
