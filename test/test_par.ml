(* The deterministic-reduction contract of lib/par: for a fixed seed,
   every parallel surface (plain samplers, S2BDD descents, decomposed
   subproblems) returns bit-identical results at any jobs value.
   Also: Par.chunks / Par.Pool edge cases and a statistical regression
   of the parallel MC sampler against the exact BDD value. *)

open Testutil
module S = Netrel.S2bdd
module R = Netrel.Reliability
module D = Workload.Datasets

let jobs_values = [ 1; 2; 8 ]

(* Everything except [jobs_used], which intentionally varies. *)
let same_estimate (a : Mcsampling.estimate) (b : Mcsampling.estimate) =
  Float.equal a.Mcsampling.value b.Mcsampling.value
  && a.Mcsampling.samples_used = b.Mcsampling.samples_used
  && a.Mcsampling.hits = b.Mcsampling.hits
  && a.Mcsampling.distinct = b.Mcsampling.distinct
  && Float.equal a.Mcsampling.variance_estimate b.Mcsampling.variance_estimate
  && a.Mcsampling.chunk_samples = b.Mcsampling.chunk_samples

let all_equal ~eq = function
  | [] | [ _ ] -> true
  | x :: rest -> List.for_all (eq x) rest

(* ---- Par.chunks ---- *)

let test_chunks_cover () =
  List.iter
    (fun (total, target) ->
      let cs = Par.chunks ~total ~target in
      let expect_n = (total + target - 1) / target in
      Alcotest.(check int)
        (Printf.sprintf "chunk count %d/%d" total target)
        expect_n (Array.length cs);
      let next = ref 0 and mn = ref max_int and mx = ref 0 in
      Array.iter
        (fun (off, len) ->
          Alcotest.(check int) "contiguous" !next off;
          Alcotest.(check bool) "positive length" true (len > 0);
          mn := min !mn len;
          mx := max !mx len;
          next := off + len)
        cs;
      Alcotest.(check int) "covers total" total !next;
      Alcotest.(check bool) "balanced" true (!mx - !mn <= 1))
    [ (1, 4096); (4096, 4096); (4097, 4096); (10_000, 4096); (10_000, 1);
      (7, 3); (5, 10) ]

let test_chunks_empty () =
  Alcotest.(check int) "total = 0" 0 (Array.length (Par.chunks ~total:0 ~target:4096))

let test_chunks_invalid () =
  Alcotest.check_raises "total < 0"
    (Invalid_argument "Par.chunks: total < 0") (fun () ->
      ignore (Par.chunks ~total:(-1) ~target:10));
  Alcotest.check_raises "target < 1"
    (Invalid_argument "Par.chunks: target < 1") (fun () ->
      ignore (Par.chunks ~total:10 ~target:0))

(* ---- Par.Pool ---- *)

let test_pool_basic () =
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          (* More tasks than agents, fewer tasks than agents, one, none. *)
          List.iter
            (fun n ->
              let got = Par.Pool.map p n (fun i -> i * i) in
              Alcotest.(check (array int))
                (Printf.sprintf "map jobs=%d n=%d" jobs n)
                (Array.init n (fun i -> i * i))
                got)
            [ 0; 1; 3; 17 ]))
    [ 1; 2; 8 ]

let test_pool_jobs_exceed_tasks () =
  (* jobs > samples: the pool must not hang waiting for work that does
     not exist, and every index must be computed exactly once. *)
  let got = Par.run_jobs ~jobs:8 3 (fun i -> 10 + i) in
  Alcotest.(check (array int)) "jobs > tasks" [| 10; 11; 12 |] got

let test_pool_exception () =
  Par.Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.check_raises "first failure re-raised" (Failure "boom")
        (fun () -> ignore (Par.Pool.map p 5 (fun i -> if i = 2 then failwith "boom" else i)));
      (* The pool must survive a failed batch. *)
      Alcotest.(check (array int)) "pool usable after failure"
        [| 0; 1; 2 |]
        (Par.Pool.map p 3 Fun.id))

let test_effective_jobs_invalid () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Par.effective_jobs: jobs < 1") (fun () ->
      ignore (Par.effective_jobs 0))

(* ---- bit-identical estimates across jobs ---- *)

let mc ~jobs ~seed ~samples g ts =
  Mcsampling.monte_carlo ~seed ~jobs g ~terminals:ts ~samples

let ht ~jobs ~seed ~samples g ts =
  Mcsampling.horvitz_thompson ~seed ~jobs g ~terminals:ts ~samples

let prop_mc_jobs_equivalent =
  QCheck.Test.make ~name:"MC bit-identical at jobs 1/2/8" ~count:25
    (Test_bddbase.arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      (* 5000 samples span two 4096-chunks, so the reduction is real. *)
      all_equal ~eq:same_estimate
        (List.map (fun jobs -> mc ~jobs ~seed:42 ~samples:5_000 g ts) jobs_values))

let prop_ht_jobs_equivalent =
  QCheck.Test.make ~name:"HT bit-identical at jobs 1/2/8" ~count:25
    (Test_bddbase.arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      all_equal ~eq:same_estimate
        (List.map (fun jobs -> ht ~jobs ~seed:42 ~samples:5_000 g ts) jobs_values))

let prop_reliability_jobs_equivalent =
  QCheck.Test.make ~name:"Reliability.estimate bit-identical at jobs 1/2/8"
    ~count:15
    (Test_bddbase.arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      (* A tiny width forces node deletion, so the stratified descents
         (the parallel surface inside each S2BDD) actually run; the
         whole report — value, bounds, budgets, every subresult — must
         be structurally identical. *)
      let config = { S.default_config with S.samples = 400; S.width = 2 } in
      all_equal ~eq:( = )
        (List.map
           (fun jobs -> R.estimate ~config ~jobs g ~terminals:ts)
           jobs_values))

let test_mc_three_chunks () =
  (* Fixed-size check on a named graph: 10_000 samples = 3 chunks. *)
  let g = fig1 () in
  let es = List.map (fun jobs -> mc ~jobs ~seed:7 ~samples:10_000 g [ 0; 4 ]) jobs_values in
  Alcotest.(check int) "3 chunks" 3
    (Array.length (List.hd es).Mcsampling.chunk_samples);
  Alcotest.(check bool) "bit-identical" true (all_equal ~eq:same_estimate es)

(* ---- HT dedup / chunk-merge semantics ---- *)

let test_ht_all_masks_equal () =
  (* p = 1 everywhere: every one of the 10_000 samples draws the same
     full mask, across 3 chunks. The per-chunk tables each collapse to
     one entry and the chunk-order merge must collapse those to one
     distinct sample with pi = 1. *)
  let g = fig1 ~p:1.0 () in
  List.iter
    (fun jobs ->
      let e = ht ~jobs ~seed:3 ~samples:10_000 g [ 0; 4 ] in
      Alcotest.(check int) "distinct" 1 e.Mcsampling.distinct;
      Alcotest.(check int) "hits" 1 e.Mcsampling.hits;
      check_close "value" 1.0 e.Mcsampling.value)
    jobs_values

let test_ht_two_masks () =
  (* One edge at p = 0.5: exactly two possible masks. With 10_000
     samples both appear (up to probability 2^-9999) in every chunk;
     the merge keeps first occurrences and the estimate is
     0.5 / pi with pi = 1 - 0.5^10000 ~ 1. *)
  let g = graph ~n:2 [ (0, 1, 0.5) ] in
  let es = List.map (fun jobs -> ht ~jobs ~seed:11 ~samples:10_000 g [ 0; 1 ]) jobs_values in
  List.iter
    (fun (e : Mcsampling.estimate) ->
      Alcotest.(check int) "distinct" 2 e.Mcsampling.distinct;
      check_close ~eps:1e-12 "value" 0.5 e.Mcsampling.value)
    es;
  Alcotest.(check bool) "bit-identical" true (all_equal ~eq:same_estimate es)

(* ---- statistical regression: parallel MC vs exact BDD ---- *)

let test_mc_agresti_coull () =
  (* Karate workload: the jobs=4 MC estimate must land inside the
     Agresti–Coull 99.9% interval around the exact BDD reliability.
     False-failure probability ~1e-3 at the fixed seed (deterministic
     in practice: the sampler never changes for a fixed seed). *)
  let g = (D.karate ~seed:1 ()).D.graph in
  let ts = [ 0; 33 ] in
  let exact =
    match R.exact g ~terminals:ts with
    | Ok r -> r
    | Error _ -> Alcotest.fail "exact BDD DNF on karate"
  in
  let s = 40_000 in
  let e = mc ~jobs:4 ~seed:123 ~samples:s g ts in
  let z = 3.2905 (* 99.9% two-sided *) in
  let n_tilde = float_of_int s +. (z *. z) in
  let p_tilde = (float_of_int e.Mcsampling.hits +. (z *. z /. 2.)) /. n_tilde in
  let halfwidth = z *. sqrt (p_tilde *. (1. -. p_tilde) /. n_tilde) in
  if Float.abs (p_tilde -. exact) > halfwidth then
    Alcotest.failf
      "MC estimate outside 99.9%% Agresti-Coull interval: exact=%.6f \
       p~=%.6f halfwidth=%.6f (hits=%d/%d)"
      exact p_tilde halfwidth e.Mcsampling.hits s

let suite =
  ( "par",
    [
      Alcotest.test_case "chunks cover and balance" `Quick test_chunks_cover;
      Alcotest.test_case "chunks of zero total" `Quick test_chunks_empty;
      Alcotest.test_case "chunks invalid args" `Quick test_chunks_invalid;
      Alcotest.test_case "pool map basics" `Quick test_pool_basic;
      Alcotest.test_case "jobs > tasks" `Quick test_pool_jobs_exceed_tasks;
      Alcotest.test_case "exception propagation" `Quick test_pool_exception;
      Alcotest.test_case "effective_jobs validation" `Quick test_effective_jobs_invalid;
      Alcotest.test_case "MC equivalence, 3 chunks" `Quick test_mc_three_chunks;
      Alcotest.test_case "HT merge: all masks equal" `Quick test_ht_all_masks_equal;
      Alcotest.test_case "HT merge: two masks" `Quick test_ht_two_masks;
      Alcotest.test_case "MC within Agresti-Coull 99.9% of exact" `Slow
        test_mc_agresti_coull;
    ]
    @ qtests
        [
          prop_mc_jobs_equivalent;
          prop_ht_jobs_equivalent;
          prop_reliability_jobs_equivalent;
        ] )
