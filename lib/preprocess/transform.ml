type result = {
  graph : Ugraph.t;
  terminals : int list;
  old_of_new : int array;
  rounds : int;
}

(* One fixpoint round over a plain edge list (u, v, p), vertices in
   [0, n). Returns (edges', changed). The rewrites within a round are
   staged — loops, then parallels, then chains, then dangling vertices —
   so each stage works on the previous stage's output; rewrites enabled
   by a later stage fire in the next round. *)
let round n is_terminal edges =
  let changed = ref false in
  (* Stage 1: drop self-loops. *)
  let edges =
    List.filter
      (fun (u, v, _) ->
        if u = v then begin
          changed := true;
          false
        end
        else true)
      edges
  in
  (* Stage 2: merge parallel edges; a single edge survives per vertex
     pair with failure probabilities multiplied. *)
  (* Keys are the packed vertex pair [min * 2^31 + max] — an immediate
     int, so lookups hash a machine word instead of walking a boxed
     tuple through the polymorphic hash (measurable at 10^6 edges;
     vertex ids fit 31 bits long before anything else here does). *)
  let pair_fail : (int, float) Hashtbl.t = Hashtbl.create (List.length edges) in
  let pack u v = if u < v then (u lsl 31) lor v else (v lsl 31) lor u in
  (* [order] keeps first-occurrence key order: rebuilding the surviving
     edges from a [Hashtbl.fold] would emit them in hash-bucket order,
     making downstream edge orderings (and any digest over them) depend
     on [Hashtbl] internals rather than the input. *)
  let order = ref [] in
  List.iter
    (fun (u, v, p) ->
      let key = pack u v in
      match Hashtbl.find_opt pair_fail key with
      | None ->
        order := key :: !order;
        Hashtbl.add pair_fail key (1. -. p)
      | Some q ->
        changed := true;
        Hashtbl.replace pair_fail key (q *. (1. -. p)))
    edges;
  let edges =
    List.rev_map
      (fun key -> (key lsr 31, key land 0x7FFFFFFF, 1. -. Hashtbl.find pair_fail key))
      !order
  in
  (* Stage 3: contract chains through degree-2 non-terminal vertices. *)
  let edge_arr = Array.of_list edges in
  let m = Array.length edge_arr in
  let adj = Array.make n [] in
  Array.iteri
    (fun i (u, v, _) ->
      adj.(u) <- (i, v) :: adj.(u);
      adj.(v) <- (i, u) :: adj.(v))
    edge_arr;
  let deg = Array.map List.length adj in
  let eligible v = deg.(v) = 2 && not is_terminal.(v) in
  let edge_dead = Array.make m false in
  let visited = Array.make n false in
  let extra = ref [] in
  (* Walk away from [start] through [via] until a non-eligible vertex
     (or back to [start], meaning a closed cycle of eligible
     vertices). Marks traversed edges dead and interior vertices
     visited. *)
  let walk start via0 =
    let rec go cur_v (eidx, w) p_acc =
      let _, _, p = edge_arr.(eidx) in
      edge_dead.(eidx) <- true;
      let p_acc = p_acc *. p in
      ignore cur_v;
      if w = start then `Cycle
      else if eligible w then begin
        visited.(w) <- true;
        match List.find_opt (fun (e', _) -> not edge_dead.(e')) adj.(w) with
        | Some next -> go w next p_acc
        | None -> `End (w, p_acc) (* parallel stub: treat as chain end *)
      end
      else `End (w, p_acc)
    in
    go start via0 1.0
  in
  for v = 0 to n - 1 do
    if eligible v && not visited.(v) then begin
      visited.(v) <- true;
      match adj.(v) with
      | [ e1; e2 ] -> (
        changed := true;
        match walk v e1 with
        | `Cycle ->
          (* A floating cycle of non-terminals: both edges of [v] are
             already dead; nothing replaces them. *)
          ()
        | `End (a, pa) -> (
          match walk v e2 with
          | `Cycle ->
            (* Cannot happen: the first walk consumed one of v's edges. *)
            assert false
          | `End (b, pb) ->
            (* The chain a -...- v -...- b becomes one edge; a = b gives
               an ear, i.e. a self-loop removed next round. *)
            extra := (a, b, pa *. pb) :: !extra))
      | _ -> assert false
    end
  done;
  let edges =
    !extra
    @ List.filteri (fun i _ -> not edge_dead.(i)) (Array.to_list edge_arr)
  in
  (* Stage 4: drop edges incident to dangling non-terminals. *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let dangling v = (not is_terminal.(v)) && deg.(v) <= 1 in
  let edges =
    List.filter
      (fun (u, v, _) ->
        if (u <> v && dangling u) || (u <> v && dangling v) then begin
          changed := true;
          false
        end
        else true)
      edges
  in
  (edges, !changed)

let run g ~terminals =
  Ugraph.validate_terminals g terminals;
  let n = Ugraph.n_vertices g in
  let is_terminal = Array.make n false in
  List.iter (fun t -> is_terminal.(t) <- true) terminals;
  let edges =
    Ugraph.fold_edges (fun acc _ (e : Ugraph.edge) -> (e.u, e.v, e.p) :: acc) [] g
  in
  let rec fixpoint edges rounds =
    let edges', changed = round n is_terminal edges in
    if changed then fixpoint edges' (rounds + 1) else (edges', rounds)
  in
  let edges, rounds = fixpoint edges 0 in
  (* Compact: keep terminals and any vertex still carrying an edge. *)
  let keep = Array.copy is_terminal in
  List.iter
    (fun (u, v, _) ->
      keep.(u) <- true;
      keep.(v) <- true)
    edges;
  let old_of_new =
    Array.of_list (List.filter (fun v -> keep.(v)) (List.init n Fun.id))
  in
  let new_of_old = Array.make n (-1) in
  Array.iteri (fun nw old -> new_of_old.(old) <- nw) old_of_new;
  let graph =
    Ugraph.create ~n:(Array.length old_of_new)
      (List.rev_map
         (fun (u, v, p) -> { Ugraph.u = new_of_old.(u); v = new_of_old.(v); p })
         edges)
  in
  let terminals = List.map (fun t -> new_of_old.(t)) terminals in
  { graph; terminals; old_of_new; rounds }
