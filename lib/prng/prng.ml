(* xoshiro256** seeded via SplitMix64, on int64. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step: used only for seeding and for [split]. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  (* xoshiro requires a non-zero state; SplitMix64 output of any seed is
     astronomically unlikely to be all zero, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)
let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = of_seed64 (bits64 g)

let float g =
  (* Top 53 bits -> [0,1). *)
  let x = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float x *. 0x1.0p-53

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0"
  else if bound = 1 then 0
  else begin
    (* Rejection sampling on the top bits for an unbiased draw. *)
    let bound64 = Int64.of_int bound in
    let rec loop () =
      let r = Int64.shift_right_logical (bits64 g) 1 in
      let v = Int64.rem r bound64 in
      if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then loop ()
      else Int64.to_int v
    in
    loop ()
  end

let bool g = Int64.compare (bits64 g) 0L < 0
let bernoulli g p = if p >= 1. then true else if p <= 0. then false else float g < p
let uniform g lo hi = lo +. ((hi -. lo) *. float g)

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array"
  else arr.(int g (Array.length arr))

let weighted_index g ws =
  let total = Array.fold_left (fun acc w ->
      if w < 0. || Float.is_nan w then invalid_arg "Prng.weighted_index: negative weight"
      else acc +. w) 0. ws
  in
  if total <= 0. then invalid_arg "Prng.weighted_index: zero total weight";
  let target = float g *. total in
  let n = Array.length ws in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. ws.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  (* Skip any zero-weight suffix that the scan's fallback might hit. *)
  let i = scan 0 0. in
  if ws.(i) > 0. then i
  else
    let rec back j = if ws.(j) > 0. then j else back (j - 1) in
    back i

(* Word-parallel Bernoulli draws: one bit-lane per world, 62 worlds per
   native int (matching Hash64.word_bits, so lane masks pack the same
   way the content hashes do). A lane's uniform variate is read off as
   an infinite binary expansion, one digit per drawn word; comparing it
   against the binary expansion of [p] digit-by-digit decides every
   lane at its first digit that differs from [p]'s. Expected words per
   draw is ~log2(lanes) + 2 regardless of [p] — the undecided mask
   halves per digit — and the comparison is exact (floats are dyadic,
   so the frac-doubling walk below terminates with no quantisation
   bias). *)
module Bitbatch = struct
  let lanes = 62
  let all = (1 lsl lanes) - 1

  (* Top 62 of the 64 generator bits, as a non-negative native int. *)
  let word g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

  let draw g p =
    if p >= 1. then all
    else if p <= 0. then 0
    else begin
      (* Invariant: lanes in [undecided] have matched every digit of
         [p] so far; [result] holds the verdicts of decided lanes.
         Digit d of p is produced by doubling the remaining fraction;
         a lane whose uniform digit is 0 where p's is 1 decides
         "present" (U < p), the converse decides "absent" (U > p).
         When the fraction hits 0 the remaining digits of p are all 0,
         so every still-undecided lane has U >= p: absent. *)
      let result = ref 0 and undecided = ref all in
      let frac = ref p in
      while !undecided <> 0 && !frac > 0. do
        let r = word g in
        let f2 = !frac *. 2. in
        if f2 >= 1. then begin
          frac := f2 -. 1.;
          result := !result lor (!undecided land lnot r land all);
          undecided := !undecided land r
        end
        else begin
          frac := f2;
          undecided := !undecided land lnot r land all
        end
      done;
      !result
    end

  (* Scalar replay of one lane: runs the identical word-parallel draw
     (consuming the identical stream — word count depends only on [p]
     and the drawn words themselves) and extracts the lane's bit. *)
  let bernoulli_lane g ~lane p =
    if lane < 0 || lane >= lanes then invalid_arg "Prng.Bitbatch.bernoulli_lane";
    (draw g p lsr lane) land 1 = 1

  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
    go 0 x
end

module Alias = struct
  type table = { prob : float array; alias : int array }

  let size t = Array.length t.prob

  let build ws =
    let n = Array.length ws in
    if n = 0 then invalid_arg "Prng.Alias.build: empty weights";
    let total = Array.fold_left (fun acc w ->
        if w < 0. || Float.is_nan w then invalid_arg "Prng.Alias.build: negative weight"
        else acc +. w) 0. ws
    in
    if total <= 0. then invalid_arg "Prng.Alias.build: zero total weight";
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) ws in
    let prob = Array.make n 1. and alias = Array.init n (fun i -> i) in
    let small = Stack.create () and large = Stack.create () in
    Array.iteri (fun i p -> Stack.push i (if p < 1. then small else large)) scaled;
    while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
      let s = Stack.pop small and l = Stack.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
      Stack.push l (if scaled.(l) < 1. then small else large)
    done;
    (* Leftovers are 1.0 up to rounding; the defaults already cover them. *)
    { prob; alias }

  let sample g t =
    let i = int g (Array.length t.prob) in
    if float g < t.prob.(i) then i else t.alias.(i)
end
