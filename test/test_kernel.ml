(* Differential tests for the flat sampling kernels (lib/kernel).
   The kernel's contract is bit-identity with the retained reference
   paths — same Prng consumption, same hashes, same float-operation
   order — so almost everything here is an exact equality check against
   [Mcsampling.Reference], [Fstate.descend_union], or the bool-array
   originals, not a tolerance comparison. *)

open Testutil
module K = Kernel
module F = Bddbase.Fstate
module O = Graphalgo.Ordering

let arb_graph_ts = Test_bddbase.arb_graph_ts

(* Drain both generators once: if the kernel consumed a different
   number of Prng draws than the reference, the streams desynchronise
   and the next value differs with overwhelming probability. *)
let streams_synced r1 r2 = Prng.int r1 1_000_000 = Prng.int r2 1_000_000

(* ---- CSR snapshot ---- *)

let t_csr_matches_graph () =
  let r = rng () in
  for _ = 1 to 100 do
    let n = 1 + Prng.int r 8 in
    let m = Prng.int r 14 in
    let es =
      List.init m (fun _ ->
          (Prng.int r n, Prng.int r n, float_of_int (Prng.int r 11) /. 10.))
    in
    let g = graph ~n es in
    let c = K.Csr.of_graph g in
    Alcotest.(check int) "n" n (K.Csr.n_vertices c);
    Alcotest.(check int) "m" m (K.Csr.n_edges c);
    for eid = 0 to m - 1 do
      let e = Ugraph.edge g eid in
      Alcotest.(check int) "eu" e.Ugraph.u c.K.Csr.eu.(eid);
      Alcotest.(check int) "ev" e.Ugraph.v c.K.Csr.ev.(eid);
      Alcotest.(check (float 0.)) "ep" e.Ugraph.p c.K.Csr.ep.(eid)
    done;
    for v = 0 to n - 1 do
      let got = ref [] in
      K.Csr.iter_incident c v (fun ~pos ~other ->
          got := (pos, other) :: !got);
      let want =
        Array.to_list (Ugraph.incident_eids g v)
        |> List.map (fun eid ->
               let e = Ugraph.edge g eid in
               (eid, if e.Ugraph.u = v then e.Ugraph.v else e.Ugraph.u))
      in
      let sort = List.sort (fun (a, _) (b, _) -> Int.compare a b) in
      Alcotest.(check (list (pair int int)))
        "incident" (sort want) (sort !got)
    done
  done

let t_csr_of_order () =
  let r = rng () in
  for _ = 1 to 50 do
    let g = fig1 () in
    let order = Array.init (Ugraph.n_edges g) Fun.id in
    Prng.shuffle r order;
    let c = K.Csr.of_order g ~order in
    Array.iteri
      (fun pos eid ->
        let e = Ugraph.edge g eid in
        Alcotest.(check int) "eu" e.Ugraph.u c.K.Csr.eu.(pos);
        Alcotest.(check int) "ev" e.Ugraph.v c.K.Csr.ev.(pos);
        Alcotest.(check (float 0.)) "ep" e.Ugraph.p c.K.Csr.ep.(pos))
      order
  done

(* ---- packed-word hashing ---- *)

let prop_mask_words_matches_stream =
  QCheck.Test.make ~name:"mask_words = Stream digest" ~count:500
    QCheck.(list bool)
    (fun bits ->
      let nb = List.length bits in
      let words = Array.make ((nb / Hash64.word_bits) + 1) 0 in
      List.iteri
        (fun i b ->
          if b then
            words.(i / Hash64.word_bits) <-
              words.(i / Hash64.word_bits)
              lor (1 lsl (i mod Hash64.word_bits)))
        bits;
      let st = Hash64.Stream.create () in
      List.iter (Hash64.Stream.add_bit st) bits;
      Hash64.mask_words words ~bits:nb = Hash64.Stream.finish st)

(* ---- draw loops vs the reference draw ---- *)

let reference_draw rng g present =
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) -> present.(eid) <- Prng.bernoulli rng e.p)
    g

let present_positions present =
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) present;
  List.rev !acc

(* The scratch's present buffer is not exposed, so the plain draw is
   pinned by present count + stream sync here; the detail draw below
   pins the exact drawn set through the mask hash. *)
let prop_draw_matches_reference =
  QCheck.Test.make ~name:"draw: same Prng stream, same present count"
    ~count:300
    (arb_graph_ts ~max_n:8 ~max_m:14 ~max_k:4)
    (fun (n, es, _) ->
      let g = graph ~n es in
      let seed = 7 * n + List.length es in
      let r1 = Prng.create seed and r2 = Prng.create seed in
      let present = Array.make (max (Ugraph.n_edges g) 1) false in
      reference_draw r1 g present;
      let c = K.Csr.of_graph g in
      let sc = K.create () in
      K.draw sc c r2;
      List.length (present_positions present) = K.n_present sc
      && streams_synced r1 r2)

let prop_draw_prob_matches_reference =
  QCheck.Test.make ~name:"draw_prob: same prob, same mask hash" ~count:300
    (arb_graph_ts ~max_n:8 ~max_m:14 ~max_k:4)
    (fun (n, es, _) ->
      let g = graph ~n es in
      let m = Ugraph.n_edges g in
      let seed = 13 * n + List.length es in
      let r1 = Prng.create seed and r2 = Prng.create seed in
      let present = Array.make (max m 1) false in
      let prob_ref = ref Xprob.one in
      Ugraph.iter_edges
        (fun eid (e : Ugraph.edge) ->
          if Prng.bernoulli r1 e.p then begin
            present.(eid) <- true;
            prob_ref := Xprob.scale e.p !prob_ref
          end
          else begin
            present.(eid) <- false;
            prob_ref := Xprob.scale (1. -. e.p) !prob_ref
          end)
        g;
      let c = K.Csr.of_graph g in
      let sc = K.create () in
      let prob = K.draw_prob sc c r2 in
      prob = !prob_ref
      && K.mask_hash sc = Hash64.mask present m
      && streams_synced r1 r2)

(* ---- early-exit connectivity vs the full union-find pass ---- *)

let prop_connectivity_matches =
  QCheck.Test.make ~name:"connected_terminals = terminals_connected_dsu"
    ~count:300
    (arb_graph_ts ~max_n:8 ~max_m:14 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let seed = 31 * n + List.length es in
      let r1 = Prng.create seed and r2 = Prng.create seed in
      let present = Array.make (max (Ugraph.n_edges g) 1) false in
      let dsu = Dsu.create n in
      let c = K.Csr.of_graph g in
      let sc = K.create () in
      let term_arr = Array.of_list ts in
      let ok = ref true in
      (* Many rounds on one scratch: exercises the generation stamping
         (a stale union-find leaking state across rounds would show up
         as a verdict mismatch). *)
      for _ = 1 to 20 do
        reference_draw r1 g present;
        K.draw sc c r2;
        let want =
          Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present ts
        in
        let got = K.connected_terminals sc c term_arr in
        if want <> got then ok := false
      done;
      !ok && streams_synced r1 r2)

(* ---- sampler bit-identity: kernel path vs retained reference ---- *)

let mc_projection (e : Mcsampling.estimate) =
  ( e.Mcsampling.value,
    e.Mcsampling.samples_used,
    e.Mcsampling.hits,
    e.Mcsampling.distinct,
    e.Mcsampling.variance_estimate,
    e.Mcsampling.chunk_samples )

let prop_samplers_match_reference =
  QCheck.Test.make ~name:"MC/HT = Reference at jobs 1/2/8" ~count:40
    (arb_graph_ts ~max_n:7 ~max_m:12 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let samples = 700 in
      let seed = 5 + n in
      let mc_ref =
        Mcsampling.Reference.monte_carlo ~seed g ~terminals:ts ~samples
      in
      let ht_ref =
        Mcsampling.Reference.horvitz_thompson ~seed g ~terminals:ts ~samples
      in
      List.for_all
        (fun jobs ->
          mc_projection
            (Mcsampling.monte_carlo ~seed ~jobs g ~terminals:ts ~samples)
          = mc_projection mc_ref
          && mc_projection
               (Mcsampling.horvitz_thompson ~seed ~jobs g ~terminals:ts
                  ~samples)
             = mc_projection ht_ref)
        [ 1; 2; 8 ])

(* ---- descent: kernel path vs descend_union, incl. resume offset ---- *)

(* A viable Fstate instance: every terminal needs positive degree. *)
let viable g ts =
  List.length ts >= 2 && List.for_all (fun t -> Ugraph.degree g t > 0) ts

let prop_descend_kernel_matches_union =
  QCheck.Test.make ~name:"descend_kernel = descend_union (both details)"
    ~count:200
    (arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      QCheck.assume (viable g ts);
      let order = O.order_edges (O.Bfs_from ts) g in
      let ctx = F.make g ~order ~terminals:ts in
      let dsu = Dsu.create (2 * n) in
      let sc = K.create () in
      let seed = 17 * n + List.length es in
      List.for_all
        (fun detail ->
          let r1 = Prng.create seed and r2 = Prng.create seed in
          let a =
            F.descend_union ctx ~dsu ~detail ~pos:0 F.initial
              ~bernoulli:(fun p -> Prng.bernoulli r1 p)
          in
          let b =
            F.descend_kernel ctx ~scratch:sc ~detail ~pos:0 F.initial
              ~bernoulli:(fun p -> Prng.bernoulli r2 p)
          in
          a = b && streams_synced r1 r2)
        [ false; true ])

(* Resumed descents: step the machine a few positions in, then complete
   from the live mid-state at a non-zero start offset. The kernel must
   reproduce the reference triple exactly — including the completion
   hash, whose bit indexing restarts at the offset. *)
let prop_descend_kernel_resume =
  QCheck.Test.make ~name:"descend_kernel = descend_union (resume offset)"
    ~count:200
    (arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      QCheck.assume (viable g ts);
      let order = O.order_edges (O.Bfs_from ts) g in
      let ctx = F.make g ~order ~terminals:ts in
      let m = F.n_positions ctx in
      QCheck.assume (m >= 2);
      let walk = Prng.create (23 * n + m) in
      let steps = 1 + Prng.int walk (m - 1) in
      let rec advance pos st =
        if pos >= steps then Some (pos, st)
        else
          let e = F.edge_at ctx pos in
          match
            F.step ctx ~eager:true ~pos st
              ~exists:(Prng.bernoulli walk e.Ugraph.p)
          with
          | F.Sink1 | F.Sink0 -> None
          | F.Live st' -> advance (pos + 1) st'
      in
      match advance 0 F.initial with
      | None -> QCheck.assume_fail ()
      | Some (pos, st) ->
        let dsu = Dsu.create (2 * n) in
        let sc = K.create () in
        let seed = 29 * n + pos in
        List.for_all
          (fun detail ->
            let r1 = Prng.create seed and r2 = Prng.create seed in
            let a =
              F.descend_union ctx ~dsu ~detail ~pos st
                ~bernoulli:(fun p -> Prng.bernoulli r1 p)
            in
            let b =
              F.descend_kernel ctx ~scratch:sc ~detail ~pos st
                ~bernoulli:(fun p -> Prng.bernoulli r2 p)
            in
            a = b && streams_synced r1 r2)
          [ false; true ])

let suite =
  ( "kernel",
    [
      Alcotest.test_case "csr matches graph" `Quick t_csr_matches_graph;
      Alcotest.test_case "csr of_order layout" `Quick t_csr_of_order;
    ]
    @ qtests
        [
          prop_mask_words_matches_stream;
          prop_draw_matches_reference;
          prop_draw_prob_matches_reference;
          prop_connectivity_matches;
          prop_samplers_match_reference;
          prop_descend_kernel_matches_union;
          prop_descend_kernel_resume;
        ] )
