module P = Preprocess.Pipeline
module S = Netrel.S2bdd
module R = Netrel.Reliability
module SD = Netrel.Statsdoc
module O = Graphalgo.Ordering
module J = Obs.Json

type method_ = Pro | Pro_ht | Sampling_mc | Sampling_ht

let method_name = function
  | Pro -> "pro"
  | Pro_ht -> "pro-ht"
  | Sampling_mc -> "sampling-mc"
  | Sampling_ht -> "sampling-ht"

let method_of_name s =
  match String.lowercase_ascii s with
  | "pro" -> Some Pro
  | "pro-ht" -> Some Pro_ht
  | "sampling-mc" | "mc" -> Some Sampling_mc
  | "sampling-ht" | "ht" -> Some Sampling_ht
  | _ -> None

type query = {
  terminals : int list;
  method_ : method_;
  samples : int;
  width : int;
  ci_width : float option;
  max_samples : int option;
  seed : int;
  jobs : int;
  kernel : Mcsampling.kernel_mode;
}

let default =
  {
    terminals = [];
    method_ = Pro;
    samples = 10_000;
    width = 10_000;
    ci_width = None;
    max_samples = None;
    seed = 1;
    jobs = 1;
    kernel = Mcsampling.Flat;
  }

type answer = {
  method_name : string;
  result : J.t;
  value : float;
  exact : bool;
  cached : bool;
  obs : Obs.t;
}

(* A preprocessing outcome plus everything derived from it that later
   queries replay: the per-subproblem BFS edge orderings (what [`Auto]
   would recompute) and the observer that recorded the pipeline's phase
   account, merged into every consumer query's observer so cached and
   fresh documents carry the same preprocess section. *)
type prep_entry = {
  outcome : P.outcome;
  orders : int array array;
  pobs : Obs.t;
}

type ctx = {
  graph : Ugraph.t;
  mutable csr : Kernel.Csr.t option;
  preps : (string, prep_entry) Hashtbl.t;
  memo : (string, answer) Hashtbl.t;
  slots : (string, exn) Hashtbl.t;
}

type t = {
  obs : Obs.t;
  eo : Obs.t; (* Obs.sub obs "engine": the cache counters *)
  ctxs : (int, ctx) Hashtbl.t;
}

let create ?(obs = Obs.disabled) () =
  { obs; eo = Obs.sub obs "engine"; ctxs = Hashtbl.create 4 }

let obs t = t.obs

(* ---- graph digest ---- *)

(* Chained splitmix64 over the graph content: vertex count, then the
   exact (u, v, p) bit patterns in edge order. Edge order is part of
   the identity on purpose — every downstream artifact (Csr layout,
   orderings, seed consumption) depends on it. The fold itself lives in
   Bingraph.Digest (one implementation for the engine key and the
   binary-container header, which must stay bit-compatible). *)
let digest = Bingraph.Digest.of_graph

(* [?digest] lets a caller that already knows the graph's content
   digest (read from a binary-container header) skip the O(m) re-hash
   on every query. Trusted like any other cache key: a wrong digest
   aliases two graphs, so only header digests that were computed by
   Bingraph over the same edge array belong here. *)
let context ?digest:(d0 = None) t g =
  let d =
    match d0 with
    | Some d ->
      Obs.incr t.eo "digest_from_header";
      d
    | None -> digest g
  in
  match Hashtbl.find_opt t.ctxs d with
  | Some ctx ->
    Obs.incr t.eo "graph.hit";
    ctx
  | None ->
    Obs.incr t.eo "graph.miss";
    let ctx =
      { graph = g; csr = None; preps = Hashtbl.create 8;
        memo = Hashtbl.create 16; slots = Hashtbl.create 4 }
    in
    Hashtbl.replace t.ctxs d ctx;
    ctx

let csr t ctx =
  match ctx.csr with
  | Some c ->
    Obs.incr t.eo "csr.hit";
    c
  | None ->
    Obs.incr t.eo "csr.miss";
    let c = Kernel.Csr.of_graph ctx.graph in
    ctx.csr <- Some c;
    c

let terminals_key ts = String.concat "," (List.map string_of_int ts)

let prep t ctx ~terminals =
  let key = terminals_key terminals in
  match Hashtbl.find_opt ctx.preps key with
  | Some pe ->
    Obs.incr t.eo "prep.hit";
    pe
  | None ->
    Obs.incr t.eo "prep.miss";
    let pobs = Obs.fresh_like t.obs in
    let outcome = P.run ~obs:pobs ctx.graph ~terminals in
    let orders =
      match outcome with
      | P.Trivial _ -> [||]
      | P.Reduced { subproblems; _ } ->
        subproblems
        |> List.map (fun (sp : P.subproblem) ->
               O.order_edges (O.Bfs_from sp.P.terminals) sp.P.graph)
        |> Array.of_list
    in
    let pe = { outcome; orders; pobs } in
    Hashtbl.replace ctx.preps key pe;
    pe

(* ---- queries ---- *)

let memo_key q =
  Printf.sprintf "t=%s;m=%s;s=%d;w=%d;cw=%s;ms=%s;seed=%d;jobs=%d;k=%s"
    (terminals_key q.terminals) (method_name q.method_) q.samples q.width
    (match q.ci_width with None -> "-" | Some w -> Printf.sprintf "%.17g" w)
    (match q.max_samples with None -> "-" | Some n -> string_of_int n)
    q.seed q.jobs
    (match q.kernel with Mcsampling.Flat -> "flat" | Mcsampling.Bitsliced -> "bitsliced")

(* Mirror of the CLI's method dispatch ([run_estimate_stats]): same
   estimator entry points, same configs, same Statsdoc result shapes —
   with the cached Csr / prep / orders slotted into the pure-reuse
   parameters, so answers stay bit-identical to the from-scratch path. *)
let dispatch t ctx qobs q =
  let estimator ht = if ht then S.Horvitz_thompson else S.Monte_carlo in
  let adaptive_doc (r : Adaptive.result) =
    SD.result_of_adaptive ~value:r.Adaptive.value ~lower:r.Adaptive.lower
      ~upper:r.Adaptive.upper ~exact:r.Adaptive.exact
      ~ci_width:r.Adaptive.ci_width ~target_width:r.Adaptive.target_width
      ~samples_used:r.Adaptive.samples_used
      ~samples_planned:r.Adaptive.samples_planned ~rounds:r.Adaptive.rounds
      ~stop:(Adaptive.stop_name r.Adaptive.stop)
  in
  let g = ctx.graph in
  let ts = q.terminals in
  match (q.method_, q.ci_width) with
  | (Pro | Pro_ht), Some w ->
    let config =
      { S.default_config with S.samples = q.samples; S.width = q.width;
        S.estimator = estimator (q.method_ = Pro_ht); S.seed = q.seed }
    in
    let pe = prep t ctx ~terminals:ts in
    Obs.merge ~into:qobs pe.pobs;
    let r =
      Adaptive.reliability ~obs:qobs ~config ~jobs:q.jobs ~prep:pe.outcome
        ~orders:pe.orders ?max_samples:q.max_samples g ~terminals:ts
        ~ci_width:w
    in
    (method_name q.method_, adaptive_doc r, r.Adaptive.value, r.Adaptive.exact)
  | (Pro | Pro_ht), None ->
    let config =
      { S.default_config with S.samples = q.samples; S.width = q.width;
        S.estimator = estimator (q.method_ = Pro_ht); S.seed = q.seed }
    in
    let pe = prep t ctx ~terminals:ts in
    Obs.merge ~into:qobs pe.pobs;
    let rep =
      R.estimate ~obs:qobs ~config ~jobs:q.jobs ~prep:pe.outcome
        ~orders:pe.orders g ~terminals:ts
    in
    (method_name q.method_, SD.result_of_report rep, rep.R.value, rep.R.exact)
  | Sampling_mc, Some w ->
    let r =
      Adaptive.monte_carlo ~obs:qobs ~seed:q.seed ~jobs:q.jobs
        ~kernel:q.kernel ~csr:(csr t ctx) ?max_samples:q.max_samples g
        ~terminals:ts ~ci_width:w
    in
    ("sampling-mc", adaptive_doc r, r.Adaptive.value, r.Adaptive.exact)
  | Sampling_ht, Some w ->
    let r =
      Adaptive.horvitz_thompson ~obs:qobs ~seed:q.seed ~jobs:q.jobs
        ~kernel:q.kernel ~csr:(csr t ctx) ?max_samples:q.max_samples g
        ~terminals:ts ~ci_width:w
    in
    ("sampling-ht", adaptive_doc r, r.Adaptive.value, r.Adaptive.exact)
  | Sampling_mc, None ->
    let e =
      Mcsampling.monte_carlo ~obs:qobs ~seed:q.seed ~jobs:q.jobs
        ~kernel:q.kernel ~csr:(csr t ctx) g ~terminals:ts ~samples:q.samples
    in
    ("sampling-mc", SD.result_of_estimate e, e.Mcsampling.value, false)
  | Sampling_ht, None ->
    let e =
      Mcsampling.horvitz_thompson ~obs:qobs ~seed:q.seed ~jobs:q.jobs
        ~kernel:q.kernel ~csr:(csr t ctx) g ~terminals:ts ~samples:q.samples
    in
    ("sampling-ht", SD.result_of_estimate e, e.Mcsampling.value, false)

let query ?digest t g q =
  let ctx = context ~digest t g in
  Obs.incr t.eo "queries";
  let key = memo_key q in
  match Hashtbl.find_opt ctx.memo key with
  | Some a ->
    Obs.incr t.eo "result.hit";
    { a with cached = true }
  | None ->
    Obs.incr t.eo "result.miss";
    if q.jobs < 1 then invalid_arg "Engine.query: jobs < 1";
    Ugraph.validate_terminals g q.terminals;
    let qobs = Obs.fresh_like t.obs in
    let method_name, result, value, exact =
      Obs.gc_phase qobs "gc" @@ fun () -> dispatch t ctx qobs q
    in
    let a = { method_name; result; value; exact; cached = false; obs = qobs } in
    Hashtbl.replace ctx.memo key a;
    a

(* ---- counters / summary ---- *)

let counter_names =
  [
    "queries"; "digest_from_header"; "graph.hit"; "graph.miss"; "csr.hit";
    "csr.miss"; "prep.hit"; "prep.miss"; "result.hit"; "result.miss";
    "artifact.hit"; "artifact.miss";
  ]

let counters t =
  List.map
    (fun k ->
      let full = "engine." ^ k in
      (k, if Obs.mem t.obs full then Obs.counter_value t.obs full else 0))
    counter_names

let summary_json t =
  J.Obj
    [ ("engine", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (counters t))) ]

(* ---- client artifact slots ---- *)

let artifact t g ~key ~build =
  let ctx = context t g in
  match Hashtbl.find_opt ctx.slots key with
  | Some e ->
    Obs.incr t.eo "artifact.hit";
    e
  | None ->
    Obs.incr t.eo "artifact.miss";
    let e = build () in
    Hashtbl.replace ctx.slots key e;
    e
