(** Edge-existence probability assignment schemes from Section 7.1. *)

val uniform : seed:int -> Ugraph.t -> Ugraph.t
(** Independent uniform [(0, 1)] probabilities (the paper's scheme for
    the small datasets). *)

val uniform_range : seed:int -> lo:float -> hi:float -> Ugraph.t -> Ugraph.t
(** Uniform in [[lo, hi)] — used to steer a dataset's average
    probability to its Table 2 value. *)

val coauthor : alphas:int array -> Ugraph.t -> Ugraph.t
(** The paper's DBLP scheme: [p(e) = log(alpha + 1) / log(alphaM + 2)]
    where [alpha] is the collaboration count of edge [e] and [alphaM]
    the maximum over the graph.
    @raise Invalid_argument on a length mismatch. *)

val road : lengths:float array -> Ugraph.t -> Ugraph.t
(** The same logarithmic scheme applied to road lengths (Section 7.1
    assigns Tokyo/NYC probabilities "in the same manner ... using road
    lengths"). Lengths are scaled into a positive range first.
    @raise Invalid_argument on a length mismatch. *)

val interaction_scores : seed:int -> Ugraph.t -> Ugraph.t
(** Protein-interaction scores in (0, 1]: a beta-like unimodal draw
    centred near 0.47, matching Hit-direct's average probability. *)

val calibrate_mean : target:float -> Ugraph.t -> Ugraph.t
(** Apply a power transform [p -> p^gamma] (bisected on [gamma]) so the
    average edge probability lands on [target], preserving the
    heterogeneity ordering of the edges. Used to match each dataset's
    Table 2 average probability.
    @raise Invalid_argument if [target] is outside (0, 1) or the graph
    has no edges with [0 < p < 1] to calibrate. *)
