module J = Obs.Json

type direction = Lower_better | Higher_better

type status = Ok | Regression | Improvement

type row = {
  group : string;
  metric : string;
  old_median : float;
  new_median : float;
  tolerance : float;
  delta : float;
  status : status;
}

type report = {
  rows : row list;
  regressions : int;
  improvements : int;
  missing_groups : string list;
  new_groups : string list;
}

let default_rel_tol = 0.25
let default_mad_mult = 6.0

(* The metric table: dotted path into a Statsdoc document, which
   direction is good, and an absolute noise floor below which a delta
   is never a regression no matter how small the baseline. The floors
   are the documented part of the contract (README "Memory & latency
   profiles"): 20 ms of wall clock, 1 ms of per-chunk latency, and a
   megaword of allocation are all within same-machine run-to-run noise
   for the quick sections. *)
let metrics =
  [
    ("run.seconds", Lower_better, 0.02);
    ("sampling.kernel.samples_per_sec", Higher_better, 0.0);
    ("sampling.hist.chunk_ns.p50", Lower_better, 1e6);
    ("sampling.hist.chunk_ns.p99", Lower_better, 1e6);
    ("gc.minor_words", Lower_better, 1e6);
    ("gc.top_heap_words", Lower_better, 1e6);
  ]

let direction_name = function
  | Lower_better -> "lower"
  | Higher_better -> "higher"

let status_name = function
  | Ok -> "ok"
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"

(* ---- document access ---- *)

let path_value doc path =
  let rec walk v = function
    | [] -> (
      match v with
      | J.Int i -> Some (float_of_int i)
      | J.Float f when Float.is_finite f -> Some f
      | _ -> None)
    | k :: rest -> (
      match J.member k v with None -> None | Some v' -> walk v' rest)
  in
  walk doc (String.split_on_char '.' path)

let run_key doc =
  match J.member "run" doc with
  | None -> None
  | Some run -> (
    match (J.member "method" run, J.member "graph" run) with
    | Some (J.Str m), Some (J.Str g) -> Some (m ^ "/" ^ g)
    | _ -> None)

(* Group a BENCH document's runs by "method/graph", preserving first-seen
   order (repeats of the same pair collect into one group). *)
let groups_of doc =
  match J.member "runs" doc with
  | Some (J.List runs) ->
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun r ->
        match run_key r with
        | None -> ()
        | Some key ->
          if not (Hashtbl.mem tbl key) then begin
            order := key :: !order;
            Hashtbl.replace tbl key []
          end;
          Hashtbl.replace tbl key (r :: Hashtbl.find tbl key))
      runs;
    Result.Ok
      (List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !order)
  | _ -> Result.Error "document has no top-level \"runs\" list"

let validate_doc doc =
  match groups_of doc with
  | Result.Error _ as e -> e
  | Result.Ok [] -> Result.Error "document has no runs with run.method/run.graph"
  | Result.Ok groups -> Result.Ok groups

(* ---- statistics ---- *)

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let mad xs =
  let m = median xs in
  median (List.map (fun x -> Float.abs (x -. m)) xs)

(* ---- comparison ---- *)

let compare_group ~rel_tol ~mad_mult ~group old_runs new_runs =
  List.filter_map
    (fun (path, dir, abs_floor) ->
      let values runs = List.filter_map (fun r -> path_value r path) runs in
      let old_vals = values old_runs and new_vals = values new_runs in
      if old_vals = [] || new_vals = [] then None
      else begin
        let old_median = median old_vals and new_median = median new_vals in
        let tolerance =
          Float.max
            (Float.max (rel_tol *. Float.abs old_median) (mad_mult *. mad old_vals))
            abs_floor
        in
        let delta = new_median -. old_median in
        (* Positive [worse] means the new median moved in the bad
           direction for this metric. *)
        let worse =
          match dir with Lower_better -> delta | Higher_better -> -.delta
        in
        let status =
          if worse > tolerance then Regression
          else if -.worse > tolerance then Improvement
          else Ok
        in
        Some { group; metric = path; old_median; new_median; tolerance; delta;
               status }
      end)
    metrics

let compare_docs ?(rel_tol = default_rel_tol) ?(mad_mult = default_mad_mult)
    ~old_doc ~new_doc () =
  match (validate_doc old_doc, validate_doc new_doc) with
  | Result.Error e, _ -> Result.Error ("old document: " ^ e)
  | _, Result.Error e -> Result.Error ("new document: " ^ e)
  | Result.Ok old_groups, Result.Ok new_groups ->
    let rows =
      List.concat_map
        (fun (group, old_runs) ->
          match List.assoc_opt group new_groups with
          | None -> []
          | Some new_runs ->
            compare_group ~rel_tol ~mad_mult ~group old_runs new_runs)
        old_groups
    in
    let missing_groups =
      List.filter_map
        (fun (g, _) ->
          if List.mem_assoc g new_groups then None else Some g)
        old_groups
    and new_groups_only =
      List.filter_map
        (fun (g, _) ->
          if List.mem_assoc g old_groups then None else Some g)
        new_groups
    in
    let count st = List.length (List.filter (fun r -> r.status = st) rows) in
    Result.Ok
      {
        rows;
        regressions = count Regression;
        improvements = count Improvement;
        missing_groups;
        new_groups = new_groups_only;
      }

let regressed rep = rep.regressions > 0

(* ---- rendering ---- *)

let fmt_value v =
  (* %.6g keeps the table deterministic and compact; full precision
     lives in the --json rendering. *)
  Printf.sprintf "%.6g" v

let render_human rep =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %-36s %14s %14s %12s %12s\n" "group" "metric" "old"
       "new" "tolerance" "status");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %-36s %14s %14s %12s %12s\n" r.group r.metric
           (fmt_value r.old_median) (fmt_value r.new_median)
           (fmt_value r.tolerance) (status_name r.status)))
    rep.rows;
  List.iter
    (fun g ->
      Buffer.add_string b
        (Printf.sprintf "[group %s: in baseline only, skipped]\n" g))
    rep.missing_groups;
  List.iter
    (fun g ->
      Buffer.add_string b (Printf.sprintf "[group %s: new, no baseline]\n" g))
    rep.new_groups;
  Buffer.add_string b
    (Printf.sprintf "benchdiff: %d compared, %d regression(s), %d improvement(s)\n"
       (List.length rep.rows) rep.regressions rep.improvements);
  Buffer.contents b

let render_json rep =
  let dir_of metric =
    match
      List.find_opt (fun (p, _, _) -> p = metric) metrics
    with
    | Some (_, d, _) -> direction_name d
    | None -> "lower"
  in
  J.Obj
    [
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("group", J.Str r.group);
                   ("metric", J.Str r.metric);
                   ("direction", J.Str (dir_of r.metric));
                   ("old_median", J.Float r.old_median);
                   ("new_median", J.Float r.new_median);
                   ("delta", J.Float r.delta);
                   ("tolerance", J.Float r.tolerance);
                   ("status", J.Str (status_name r.status));
                 ])
             rep.rows) );
      ("missing_groups", J.List (List.map (fun g -> J.Str g) rep.missing_groups));
      ("new_groups", J.List (List.map (fun g -> J.Str g) rep.new_groups));
      ("regressions", J.Int rep.regressions);
      ("improvements", J.Int rep.improvements);
    ]
