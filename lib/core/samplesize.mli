(** Sample-size reduction from reliability bounds — Theorems 1 and 2.

    Given a plain-sampling budget of [s] samples and the proven bounds
    [pc <= R <= 1 - pd], stratified sampling achieves a variance no
    larger than plain sampling's with only [s'] samples, where [s'] is
    given by the five-case formula of Theorem 1 (the same [s'] applies
    to the Horvitz–Thompson estimator by Theorem 2). *)

val reduced : s:int -> pc:float -> pd:float -> int
(** [reduced ~s ~pc ~pd] is [s'], clamped into [[0, s]].
    @raise Invalid_argument unless [0 <= pc], [0 <= pd] and
    [pc + pd <= 1] (up to rounding slack). *)

val reduction_factor : pc:float -> pd:float -> float
(** [s' / s] in the limit — the quantity plotted in Figure 4(b). *)
