(** Uncertain-graph clustering in the style of Ceccarello et al.
    (PVLDB 2017, cited as [6]): a greedy k-center where the
    "distance" between vertices is the connection UNreliability
    [1 - Pr(u ~ v)].

    Centers are chosen farthest-first (the classical 2-approximation
    scheme, transplanted to the reliability metric); every vertex is
    then assigned to its most-reliable center. Reliabilities come from
    one shared {!Sampleset}, so the whole clustering costs
    [O(k * samples * (V + E))]. *)

type clustering = {
  centers : int array;
  assignment : int array;
      (** per vertex: index into [centers] of its cluster *)
  reliability : float array;
      (** per vertex: estimated connection probability to its center
          (1 for the centers themselves) *)
}

val cluster :
  ?engine:Engine.t ->
  ?seed:int ->
  ?samples:int ->
  Ugraph.t ->
  k:int ->
  clustering
(** [cluster g ~k] picks [k] centers farthest-first under the
    unreliability distance, starting from the highest-degree vertex.
    [samples] defaults to 500. [engine] shares the sample set across
    analyses over the same graph ({!Sampleset.shared}) — results are
    identical with or without it.
    @raise Invalid_argument unless [1 <= k <= n_vertices]. *)

val average_inner_reliability : clustering -> float
(** Mean over non-center vertices of the reliability to their center —
    the quality score reported by the clustering experiments. *)
