(** Flat sampling kernels: the shared allocation-free fast path under
    every estimator's inner loop (MC, HT, and the S2BDD stratified
    descents), which all bottom out in "draw one possible graph, test
    terminal connectivity".

    Three pieces:

    - {!Csr}: an immutable struct-of-arrays snapshot of the graph —
      edge endpoints, probabilities, and per-vertex adjacency in unboxed
      [int array]/[float array], indexed by {e position} (edge id for
      {!Csr.of_graph}, processing-order position for {!Csr.of_order}).
      This extends the [ord_u]/[ord_v]/[ord_p] idea from the frontier
      machine to the whole pipeline: hot loops stream flat arrays
      instead of chasing boxed edge records through closures.

    - Draw loops writing into a reusable scratch ({!t}): one
      {!Prng.bernoulli} per edge {b in position order} — exactly the
      stream the pre-kernel samplers consumed, so seeded outputs are
      bit-identical (the draw-order contract, DESIGN.md section 10).
      Drawn-present positions are appended to a scratch buffer as they
      are drawn; the detail variants additionally pack the outcome bits
      62-per-word for {!Hash64.mask_words} (no [bool array] re-scan)
      and fold the probability in the same float-operation order as the
      reference implementations.

    - An early-exit union–find over the drawn-present buffer:
      generation-stamped (no O(elements) reset per sample) and counting
      {e live} required components so the union loop stops as soon as
      the terminals have merged, instead of unioning every present edge
      and re-checking all terminal pairs at the end. Early exit cannot
      change the verdict — unions never split components, so once the
      required-component count reaches 1 it stays there ([live <= 1] is
      monotone under union).

    The kernel never draws fewer Prng values than the reference (the
    draw always scans every remaining edge); only the union work is cut
    short. Differential oracles: [Mcsampling.Reference] and
    [Fstate.descend_union], kept bit-for-bit compatible and checked by
    [test/test_kernel.ml] and the [netrel selfcheck] sweep. *)

(** Immutable CSR-style graph snapshot. *)
module Csr : sig
  type t = private {
    n : int;  (** vertex count *)
    m : int;  (** edge (position) count *)
    eu : int array;  (** endpoint u by position *)
    ev : int array;  (** endpoint v by position *)
    ep : float array;  (** existence probability by position *)
    off : int array;  (** adjacency offsets, length [n + 1] *)
    adj_pos : int array;  (** incident positions, CSR-packed *)
    adj_other : int array;  (** matching opposite endpoints *)
  }

  val of_graph : Ugraph.t -> t
  (** Snapshot in natural edge order: position = edge id. *)

  val of_order : Ugraph.t -> order:int array -> t
  (** Snapshot in processing order: position [i] holds edge
      [order.(i)]. [order] need not cover every edge id. *)

  val of_arrays : n:int -> eu:int array -> ev:int array -> ep:float array -> t
  (** Snapshot straight from packed endpoint/probability arrays in
      natural edge order (position [i] = edge [i]) — the binary-graph
      fast path, no intermediate [Ugraph.t]. The arrays are copied;
      endpoints and probabilities are validated as in [Ugraph.create].
      Raises [Invalid_argument] on length mismatch or range errors. *)

  val n_vertices : t -> int
  val n_edges : t -> int

  val iter_incident : t -> int -> (pos:int -> other:int -> unit) -> unit
  (** Iterate the positions incident to a vertex (self-loops once),
      mirroring {!Ugraph.iter_incident} in position space. *)
end

(** Packed bit-matrix transposition between the kernel's two layouts:
    edge-major (one word per edge, bit = world — the bit-sliced draw
    slab) and world-major (one row of packed words per world — what
    {!Hash64} digests). Both dimensions pack LSB-first,
    [Hash64.word_bits] per word, rows padded to whole words. *)
module Bitslab : sig
  val words_per_row : cols:int -> int
  (** Packed words per row of [cols] bits. *)

  val transpose : src:int array -> rows:int -> cols:int -> dst:int array -> unit
  (** [transpose ~src ~rows ~cols ~dst] writes the [cols × rows]
      transpose of the [rows × cols] bit matrix [src] into [dst]
      (which must hold at least [cols * words_per_row ~cols:rows]
      words; that prefix is fully overwritten). An involution:
      transposing back yields the original matrix. *)
end

type t
(** Mutable per-domain scratch: the drawn-present buffer, the packed
    mask words, the bit-sliced world slab, and the stamped union–find.
    Grows on demand and is reused across samples; nothing leaks
    between samples (the buffers are rewritten per draw, the
    union–find is invalidated wholesale by bumping its generation
    stamp). The scratch remembers which {!Csr.t} the last draw ran
    against, and every connectivity entry point rejects any other
    snapshot with [Invalid_argument] — positions in the draw buffers
    are meaningless against a different graph, and the pre-check
    failure mode was a silently wrong verdict. *)

val create : unit -> t

val scratch : unit -> t
(** The calling domain's scratch (domain-local storage). Samplers and
    descents share it — safe because a domain runs one task at a time
    and every round fully re-initialises what it reads. *)

(** {2 Draw loops}

    All variants draw every remaining edge in position order, one
    {!Prng.bernoulli} (or [bernoulli]) call per edge. *)

val draw : t -> Csr.t -> Prng.t -> unit
(** MC draw: fill the present buffer only. *)

val draw_prob : t -> Csr.t -> Prng.t -> Xprob.t
(** HT draw: additionally packs the mask words for {!mask_hash} and
    returns the possible graph's probability, folded with
    [Xprob.scale p] / [Xprob.scale (1 - p)] in draw order. *)

val draw_sub : t -> Csr.t -> pos:int -> detail:bool -> bernoulli:(float -> bool) -> float
(** Descent draw: positions [pos .. m - 1] (the start-position offset of
    a resumed S2BDD descent). With [~detail:true] also packs the mask
    words (bit [i] = outcome of position [pos + i]) and returns the
    completion's log-probability, accumulated as [log p] for existent
    edges with [p < 1] and [log1p (-p)] for non-existent ones; with
    [~detail:false] returns [0.]. *)

val n_present : t -> int
(** Number of present edges in the last draw. *)

val mask_hash : t -> int
(** 62-bit content hash ({!Hash64.mask_words}) of the last
    {!draw_prob} / detail {!draw_sub} mask. Digest-identical to
    {!Hash64.mask} over the corresponding [bool array]. *)

(** {2 Bit-sliced world-parallel draws}

    One {!Prng.Bitbatch.draw} per edge fills a slab word whose bit [l]
    is world [l]'s outcome — [Prng.Bitbatch.lanes] (62) worlds per
    pass at an expected [~log2 62 + 2] generator words per edge.
    Verdicts are not bit-identical to the scalar draw order (the
    streams differ by construction); the per-world contract is instead
    replayability: lane [l] of the slab equals
    [Prng.Bitbatch.bernoulli_lane ~lane:l] replayed against a copy of
    the batch stream, which the differential battery checks. *)

val draw_bitsliced : t -> Csr.t -> Prng.t -> unit
(** Fill the slab: one batch draw per edge in position order. *)

val connected_lanes : t -> Csr.t -> int array -> active:int -> int
(** [connected_lanes t c terminals ~active] returns the verdict word
    for the last bit-sliced draw: bit [l] set iff lane [l] is in
    [active] and its world connects [terminals]. Word-wide agreement
    sweeps settle unanimous batches in one union–find round each
    (subset world connected ⇒ all lanes hit; superset world
    disconnected ⇒ all lanes miss); only disagreeing batches peel
    per-lane early-exit rounds. *)

val connected_lane : t -> Csr.t -> int array -> lane:int -> bool
(** One lane's verdict alone (the HT path, after dedup). *)

val transpose_worlds : t -> unit
(** Transpose the slab into world-major packed mask rows for
    {!world_hash}. *)

val world_hash : t -> lane:int -> int
(** Content hash of lane [lane]'s world after {!transpose_worlds}.
    Digest-identical to {!Hash64.mask} over that world's [bool array]
    (and hence to the flat path's {!mask_hash} on an equal mask). *)

val world_prob : t -> Csr.t -> lane:int -> Xprob.t
(** Lane [lane]'s possible-graph probability, folded with
    [Xprob.scale p] / [Xprob.scale (1 - p)] in position order — the
    reference float-operation order. *)

val slab_word : t -> int -> int
(** [slab_word t pos] reads slab word [pos] of the last bit-sliced
    draw (test and selfcheck surface).
    @raise Invalid_argument outside the drawn range. *)

val set_slab_word : t -> int -> int -> unit
(** Overwrite a slab word (lane-permutation metamorphic checks only;
    masked to the lane width). *)

(** {2 Early-exit connectivity rounds}

    A round is: {!round_begin}, then {!mark} every required element
    (and optionally pre-seed with {!union} — the S2BDD descent anchors
    frontier components this way), then {!union_drawn}. [live] counts
    components holding at least one marked element; the terminals are
    connected exactly when [live <= 1]. *)

val round_begin : t -> elems:int -> unit
(** Invalidate the union–find and size it for elements
    [0 .. elems - 1]. O(1) amortised: stamping replaces the O(elems)
    reset per sample. *)

val mark : t -> int -> unit
(** Flag an element as required (terminal or terminal-carrying
    component). *)

val union : t -> int -> int -> unit

val connected : t -> bool
(** Whether at most one live required component remains. *)

val union_drawn : t -> Csr.t -> bool
(** Union the endpoints of the drawn-present positions in draw order,
    stopping as soon as {!connected} holds; returns {!connected}.
    @raise Invalid_argument if the last draw ran against a different
    {!Csr.t} than [c] (the draw buffers hold positions, which another
    snapshot would misread). *)

val connected_terminals : t -> Csr.t -> int array -> bool
(** One full round: [round_begin] over the graph's vertices, [mark]
    each terminal, [union_drawn]. The complete MC connectivity check
    for the last draw. *)

val union_steps : t -> int
(** Edge-union attempts performed by the last full connectivity entry
    point ({!connected_terminals}, {!connected_lane} or
    {!connected_lanes} — for the latter summed over agreement sweeps
    and lane peels). This is the early-exit depth: how far into the
    drawn-present buffer the union loop ran before the terminals
    merged (or the buffer ran out), the quantity the observability
    layer histograms to show what early exit actually saves. Raw
    {!union_drawn} calls accumulate onto the last entry point's
    count. *)
