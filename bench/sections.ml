(* One section per table/figure of the paper's evaluation (Section 7),
   plus the ablations listed in DESIGN.md. Each section prints the same
   rows/series the paper reports; EXPERIMENTS.md records the
   paper-vs-measured comparison. *)

module D = Workload.Datasets
module G = Workload.Generators
module S = Netrel.S2bdd
module R = Netrel.Reliability
module SS = Netrel.Samplesize
module P = Preprocess.Pipeline
module O = Graphalgo.Ordering

type config = {
  scale : float;   (* dataset scale factor *)
  quick : bool;    (* cut repetitions / budgets for a fast pass *)
  seed : int;
  json : bool;     (* also write BENCH_<section>.json stats files *)
  trace : bool;    (* also write BENCH_<section>_trace.json event traces *)
  force : bool;    (* overwrite an existing BENCH_<section>.json *)
  repeats : int;   (* instrumented runs per (dataset, method) pair *)
  baseline : string option;
      (* compare freshly collected runs against this BENCH_*.json
         instead of writing a file; a regression fails the bench run *)
}

let default_config =
  { scale = 1.0; quick = false; seed = 1; json = false; trace = false;
    force = false; repeats = 1; baseline = None }

let banner title note =
  Printf.printf "\n=== %s ===\n%s\n\n" title note

(* ---- structured per-phase stats (BENCH_<section>.json) ----

   With --json, instrumented runs collect an Obs account per
   (dataset, method) pair and each section writes one JSON file:
   { "section": ..., "runs": [ <Statsdoc document>, ... ] }. The file
   is read back and re-validated immediately — a malformed document or
   a missing top-level key fails the bench run (and hence the runtest
   smoke rule that drives the quick parallel section). *)

module J = Obs.Json
module SD = Netrel.Statsdoc

let validate_stats_doc doc =
  List.iter
    (fun k ->
      if J.member k doc = None then
        failwith (Printf.sprintf "stats document missing top-level key %S" k))
    SD.required_keys;
  (* Durations come off the monotonic clock now; a negative run.seconds
     would mean a wall-clock step leaked back in. *)
  match J.member "run" doc with
  | None -> failwith "stats document missing run"
  | Some run -> (
    match J.member "seconds" run with
    | Some (J.Float s) when s >= 0. -> ()
    | Some (J.Float s) ->
      failwith (Printf.sprintf "stats document run.seconds = %g < 0" s)
    | _ -> failwith "stats document missing run.seconds")

(* --baseline: instead of writing BENCH_<section>.json, diff the fresh
   runs against the given baseline file with the noise-aware benchdiff
   gate. A baseline written for another section is skipped with a note
   (so `--baseline` composes with multi-section runs); a regression
   fails the whole bench run. *)
let diff_against_baseline ~section ~path doc =
  let module B = Netrel.Benchdiff in
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let old_doc = J.of_string_exn s in
  let applies =
    match J.member "section" old_doc with
    | Some (J.Str s) -> s = section
    | _ -> true
  in
  if not applies then
    Printf.printf "[baseline %s: section mismatch, skipping %s]\n" path section
  else
    match B.compare_docs ~old_doc ~new_doc:doc () with
    | Error msg -> failwith (path ^ ": " ^ msg)
    | Ok rep ->
      print_string (B.render_human rep);
      if B.regressed rep then
        failwith
          (Printf.sprintf "benchdiff: %d regression(s) against %s"
             rep.B.regressions path)

let emit_json cfg ~section ?(trace = Trace.disabled) runs =
  if cfg.json then begin
    let file = Printf.sprintf "BENCH_%s.json" section in
    let doc =
      J.Obj
        [
          ("section", J.Str section);
          ("schema", J.Int SD.schema_version);
          ("runs", J.List runs);
        ]
    in
    match cfg.baseline with
    | Some path -> diff_against_baseline ~section ~path doc
    | None ->
    if Sys.file_exists file && not cfg.force then
      failwith
        (Printf.sprintf
           "%s already exists; pass --force to overwrite (or --baseline \
            %s to compare instead)"
           file file);
    let out = open_out file in
    output_string out (J.to_string ~pretty:true doc);
    output_char out '\n';
    close_out out;
    (* Emit-then-reparse self check: the schema must survive a round
       trip through our own parser. *)
    let ic = open_in file in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let parsed = J.of_string_exn s in
    (match J.member "schema" parsed with
    | Some (J.Int v) when v = SD.schema_version -> ()
    | _ -> failwith ("missing/wrong schema version in " ^ file));
    (match J.member "runs" parsed with
    | Some (J.List rs) when List.length rs = List.length runs ->
      List.iter validate_stats_doc rs
    | _ -> failwith ("bad runs array in " ^ file));
    Printf.printf "[wrote %s: %d instrumented run(s)]\n" file (List.length runs)
  end;
  if Trace.enabled trace then begin
    let file = Printf.sprintf "BENCH_%s_trace.json" section in
    let out = open_out file in
    Trace.write_chrome out trace;
    close_out out;
    (* Same discipline as the stats files: reparse and schema-check. *)
    let ic = open_in file in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    (match Trace.validate_chrome (J.of_string_exn s) with
    | Ok () -> ()
    | Error msg -> failwith (file ^ ": " ^ msg));
    Printf.printf "[wrote %s: %d event(s)]\n" file
      (List.length (Trace.events trace) + List.length (Trace.shared_events trace))
  end

(* Per-section trace sink (disabled unless --trace): instrumented runs
   stream their events into it and emit_json writes the Chrome file. *)
let section_trace cfg = if cfg.trace then Trace.create () else Trace.disabled

(* One instrumented run: execute [f ~obs ~trace], time it on the
   observer's clock, and assemble the Statsdoc document. *)
let stats_run cfg ~method_name ~graph ~ts ~s ~w ~trace f =
  let obs = Obs.create () in
  let t0 = Obs.now obs in
  let result = f ~obs ~trace in
  let seconds = Obs.now obs -. t0 in
  let run_meta =
    { SD.command = "bench"; method_ = method_name; graph; terminals = ts;
      seed = cfg.seed; jobs = 1; samples = s; width = w }
  in
  SD.build ~obs ~run:run_meta ~seconds ~result

(* [--repeats N] collects N identically-seeded documents per pair: the
   computed results are bit-identical (determinism contract), only the
   wall-clock and GC readings vary, which is exactly the repeat noise
   benchdiff's median/MAD thresholds feed on. *)
let stats_runs cfg ~method_name ~graph ~ts ~s ~w ~trace f =
  List.init (max 1 cfg.repeats) (fun _ ->
      stats_run cfg ~method_name ~graph ~ts ~s ~w ~trace f)

let terminals cfg ~search g ~k =
  G.random_terminals ~seed:(cfg.seed + (1000 * search)) g ~k

(* ---- method runners ---- *)

let s2_config cfg ~s ~w ~estimator ~seed =
  { S.default_config with S.samples = s; S.width = w; S.estimator; S.seed;
    S.max_work = (if cfg.quick then 20_000_000 else S.default_config.S.max_work) }

let run_pro cfg ?(ext = true) ?(estimator = S.Monte_carlo) ~s ~w ~seed g ts =
  let config = s2_config cfg ~s ~w ~estimator ~seed in
  Relstats.time (fun () -> R.estimate ~config ~extension:ext g ~terminals:ts)

let run_sampling ?(estimator = S.Monte_carlo) ~s ~seed g ts =
  match estimator with
  | S.Monte_carlo ->
    Relstats.time (fun () -> (Mcsampling.monte_carlo ~seed g ~terminals:ts ~samples:s).Mcsampling.value)
  | S.Horvitz_thompson ->
    Relstats.time (fun () ->
        (Mcsampling.horvitz_thompson ~seed g ~terminals:ts ~samples:s).Mcsampling.value)

let run_bdd ~budget g ts =
  Relstats.time (fun () ->
      Bddbase.Exact.reliability_float ~node_budget:budget g ~terminals:ts)

(* ---- Table 2: dataset statistics ---- *)

let table2 cfg =
  banner "Table 2: dataset statistics"
    "Synthetic substitutes for the paper's datasets (DESIGN.md section 5);\n\
     sizes are scaled ~10-20x down so the suite runs on a laptop.";
  print_endline D.table2_header;
  List.iter
    (fun d -> print_endline (D.table2_row d))
    (D.all ~seed:cfg.seed ~scale:cfg.scale ())

(* ---- Figure 3: response time overview ---- *)

let fig3 cfg =
  banner "Figure 3: response time, Pro(MC) vs Pro(MC) w/o ext vs Sampling(MC) vs BDD"
    "Paper shape: Pro fastest on every dataset and k; the BDD baseline DNFs\n\
     (memory) on all large datasets; the gap is largest on road networks.";
  let s = if cfg.quick then 2_000 else 10_000 in
  let w = if cfg.quick then 500 else 1_000 in
  let ks = if cfg.quick then [ 10 ] else [ 5; 10; 20 ] in
  let searches = if cfg.quick then 1 else 3 in
  let budget = 200_000 in
  let datasets = D.large ~seed:cfg.seed ~scale:cfg.scale () in
  List.iter
    (fun k ->
      Printf.printf "--- k = %d (s = %d, w = %d, avg of %d searches) ---\n" k s w
        searches;
      Printf.printf "%-8s %12s %12s %12s %12s %9s\n" "Dataset" "Pro(MC)"
        "Pro w/o ext" "Sampling(MC)" "BDD" "Speedup";
      List.iter
        (fun (d : D.t) ->
          let g = d.D.graph in
          let avg f =
            let total = ref 0. in
            for search = 1 to searches do
              let ts = terminals cfg ~search g ~k in
              let _, dt = f ts in
              total := !total +. dt
            done;
            !total /. float_of_int searches
          in
          let pro = avg (fun ts -> run_pro cfg ~s ~w ~seed:cfg.seed g ts) in
          let pro_noext =
            avg (fun ts -> run_pro cfg ~ext:false ~s ~w ~seed:cfg.seed g ts)
          in
          let sampling = avg (fun ts -> run_sampling ~s ~seed:cfg.seed g ts) in
          let bdd_result = ref "" in
          let bdd =
            avg (fun ts ->
                let r, dt = run_bdd ~budget g ts in
                (match r with
                | Ok _ -> bdd_result := Relstats.format_seconds dt
                | Error (`Node_budget_exceeded _) -> bdd_result := "DNF");
                (r, dt))
          in
          ignore bdd;
          Printf.printf "%-8s %12s %12s %12s %12s %8.1fx\n" d.D.abbr
            (Relstats.format_seconds pro)
            (Relstats.format_seconds pro_noext)
            (Relstats.format_seconds sampling)
            !bdd_result (sampling /. pro))
        datasets;
      print_newline ())
    ks

(* ---- Figure 4: effect of the number of samples ---- *)

let fig4 cfg =
  banner "Figure 4: reduction rates vs number of samples"
    "Paper shape: both the response-time ratio Pro/Sampling (a) and the\n\
     sample-count ratio s'/s (b) drop as s grows - the bound-based\n\
     reduction pays off most when many samples are requested.";
  let w = 1_000 in
  let k = 10 in
  let ss = if cfg.quick then [ 100; 1_000 ] else [ 100; 1_000; 10_000; 100_000 ] in
  let datasets = D.large ~seed:cfg.seed ~scale:cfg.scale () in
  Printf.printf "%-8s %10s %16s %16s %16s\n" "Dataset" "s" "time Pro/Samp"
    "samples s'/s" "drawn/s";
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      List.iter
        (fun s ->
          (* Hit-d at s = 100k is ~2 minutes of pure baseline sampling;
             skip the largest budget there unless asked for. *)
          if not (cfg.quick && s > 1_000)
             && not (s >= 100_000 && Ugraph.n_edges g > 20_000)
          then begin
            let rep, pro_t = run_pro cfg ~s ~w ~seed:cfg.seed g ts in
            let _, samp_t = run_sampling ~s ~seed:cfg.seed g ts in
            let ratio_t = pro_t /. samp_t in
            let ratio_s =
              float_of_int rep.R.s_reduced /. float_of_int (max 1 rep.R.s_given)
            in
            let ratio_drawn =
              float_of_int rep.R.samples_drawn /. float_of_int (max 1 s)
            in
            Printf.printf "%-8s %10d %16.3f %16.3f %16.3f\n" d.D.abbr s ratio_t
              ratio_s ratio_drawn
          end)
        ss;
      print_newline ())
    datasets

(* ---- Figure 5: effect of the maximum width ---- *)

let fig5 cfg =
  banner "Figure 5: memory and response time vs maximum width w"
    "Paper shape: memory grows with w but not with the graph; response time\n\
     is comparatively flat in w.";
  let s = if cfg.quick then 2_000 else 10_000 in
  let k = 10 in
  let ws = if cfg.quick then [ 100; 1_000 ] else [ 100; 1_000; 10_000 ] in
  let datasets = D.large ~seed:cfg.seed ~scale:cfg.scale () in
  Printf.printf "%-8s %8s %14s %12s %10s %10s\n" "Dataset" "w" "peak [MB]"
    "time" "layers" "maxwidth";
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      List.iter
        (fun w ->
          let rep, dt = run_pro cfg ~ext:false ~s ~w ~seed:cfg.seed g ts in
          let sub = List.hd rep.R.subresults in
          (* Resident S2BDD memory: widest single layer (the S2BDD keeps
             one layer plus the sinks). *)
          let mb = float_of_int (8 * sub.S.peak_state_words) /. 1_048_576. in
          Printf.printf "%-8s %8d %14.2f %12s %10d %10d\n" d.D.abbr w mb
            (Relstats.format_seconds dt) sub.S.layers_built sub.S.max_width)
        ws;
      print_newline ())
    datasets

(* ---- Tables 3 and 4: accuracy on the small datasets ---- *)

(* Ground truth for the accuracy tables: the exact BDD, falling back to
   a wide flag-merging S2BDD (coarser node merging reaches much further)
   under a width-minimising order. Returns [None] when both blow up. *)
let exact_or_none g ts =
  match R.exact ~node_budget:(1 lsl 21) g ~terminals:ts with
  | Ok r -> Some r
  | Error _ ->
    (* Flag merging reaches much further than the exact-count BDD, but
       some k=10/20 searches stay intractable: bound the effort and let
       the caller draw a fresh search instead. A width-capped run is
       only usable when the `exact` flag holds. *)
    let config =
      { S.default_config with S.width = 1 lsl 16;
        S.order = `Explicit (O.best_order g);
        S.samples = 1;  (* bounds only: no sampling on failed attempts *)
        S.max_work = 60_000_000 }
    in
    let rep = R.estimate ~config ~extension:false g ~terminals:ts in
    if rep.R.exact then Some rep.R.value else None

let accuracy_table cfg ~title ~note ~dataset =
  banner title note;
  let q1 = if cfg.quick then 5 else 10 in
  let q2 = if cfg.quick then 5 else 8 in
  let s = 1_000 in
  let w = 2_000 in
  let ks = if cfg.quick then [ 10 ] else [ 5; 10; 20 ] in
  let d : D.t = dataset in
  let g = d.D.graph in
  Printf.printf "(q1 = %d searches x q2 = %d runs, s = %d, w = %d)\n\n" q1 q2 s w;
  Printf.printf "%-4s %-14s %14s %12s\n" "k" "Method" "Variance" "Error rate";
  List.iter
    (fun k ->
      (* Collect q1 searches whose exact reliability is tractable. *)
      let searches_list = ref [] and exact_list = ref [] in
      let search = ref 0 in
      while List.length !searches_list < q1 && !search < (2 * q1) + 5 do
        incr search;
        let ts = terminals cfg ~search:!search g ~k in
        match exact_or_none g ts with
        | Some r ->
          searches_list := ts :: !searches_list;
          exact_list := r :: !exact_list
        | None -> ()
      done;
      let searches = Array.of_list (List.rev !searches_list) in
      let exact = Array.of_list (List.rev !exact_list) in
      if Array.length searches < q1 then
        Printf.printf "(only %d of %d searches had tractable exact R)\n"
          (Array.length searches) q1;
      if Array.length searches > 0 then begin
        let eval name f =
          let estimates =
            Array.mapi
              (fun i ts ->
                Array.init q2 (fun j ->
                    let seed = cfg.seed + (7919 * ((i * q2) + j)) in
                    f ~seed ts))
              searches
          in
          Printf.printf "%-4d %-14s %14.3e %12.4f\n" k name
            (Relstats.variance ~exact ~estimates)
            (Relstats.error_rate ~exact ~estimates)
        in
        eval "Pro(MC)" (fun ~seed ts ->
            (fst (run_pro cfg ~s ~w ~seed g ts)).R.value);
        eval "Pro(HT)" (fun ~seed ts ->
            (fst (run_pro cfg ~estimator:S.Horvitz_thompson ~s ~w ~seed g ts)).R.value);
        eval "Sampling(MC)" (fun ~seed ts -> fst (run_sampling ~s ~seed g ts));
        eval "Sampling(HT)" (fun ~seed ts ->
            fst (run_sampling ~estimator:S.Horvitz_thompson ~s ~seed g ts))
      end;
      print_newline ())
    ks

let table3 cfg =
  accuracy_table cfg ~title:"Table 3: accuracy on the Karate dataset"
    ~note:"Paper shape: Pro matches or beats Sampling on both variance and\n\
           error rate; MC and HT are close (sampling with replacement)."
    ~dataset:(D.karate ~seed:cfg.seed ())

let table4 cfg =
  accuracy_table cfg ~title:"Table 4: accuracy on the Am-Rv dataset"
    ~note:"Paper shape: Pro is EXACT on Am-Rv (zero variance and error);\n\
           plain sampling degrades badly as k grows because R is tiny."
    ~dataset:(D.am_rv ~seed:cfg.seed ())

(* ---- Table 5: effect of the extension technique ---- *)

let table5 cfg =
  banner "Table 5: extension technique (preprocess time, reduced size)"
    "Paper shape: preprocessing is orders of magnitude cheaper than the\n\
     reliability computation; road networks shrink the most, protein\n\
     networks barely.";
  let k = 10 in
  Printf.printf "%-8s %14s %16s %12s %12s\n" "Dataset" "Process time"
    "Reduced size" "#subprob" "#bridges";
  let stats_docs = ref [] in
  let tr = section_trace cfg in
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      (if cfg.json || cfg.trace then
         let docs =
           stats_runs cfg ~method_name:"preprocess" ~graph:d.D.abbr ~ts ~s:0
             ~w:0 ~trace:tr
             (fun ~obs ~trace ->
               match P.run ~obs ~trace g ~terminals:ts with
               | P.Trivial r ->
                 SD.result_value ~value:(Xprob.to_float_approx r) ~exact:true
               | P.Reduced { stats; _ } ->
                 J.Obj
                   [ ("reduction_ratio", J.Float (P.reduction_ratio stats));
                     ("subproblems", J.Int stats.P.n_subproblems);
                     ("bridges", J.Int stats.P.n_bridges) ])
         in
         if cfg.json then
           List.iter (fun doc -> stats_docs := doc :: !stats_docs) docs);
      let outcome, dt = Relstats.time (fun () -> P.run g ~terminals:ts) in
      match outcome with
      | P.Trivial _ ->
        Printf.printf "%-8s %14s %16s %12s %12s\n" d.D.abbr
          (Relstats.format_seconds dt) "trivial" "-" "-"
      | P.Reduced { stats; _ } ->
        Printf.printf "%-8s %14s %16.3f %12d %12d\n" d.D.abbr
          (Relstats.format_seconds dt)
          (P.reduction_ratio stats)
          stats.P.n_subproblems stats.P.n_bridges)
    (D.all ~seed:cfg.seed ~scale:cfg.scale ());
  emit_json cfg ~section:"table5" ~trace:tr (List.rev !stats_docs)

(* ---- Ablation A1: edge ordering ---- *)

let ablation_ordering cfg =
  banner "Ablation A1: edge-ordering strategies (DESIGN.md section 4)"
    "The S2BDD's bounds depend on when each terminal's edges are decided;\n\
     multi-source BFS from the terminals (`Auto`) tightens them fastest.";
  let s = if cfg.quick then 1_000 else 10_000 in
  let w = 1_000 in
  let k = 10 in
  let datasets =
    [ D.tokyo ~seed:(cfg.seed + 3) ~scale:cfg.scale ();
      D.dblp1 ~seed:(cfg.seed + 1) ~scale:cfg.scale () ]
  in
  Printf.printf "%-8s %-16s %12s %12s %10s\n" "Dataset" "Ordering" "time"
    "bound gap" "s'/s";
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      let strategies =
        [ ("terminal-bfs", `Auto); ("bfs", `Strategy O.Bfs);
          ("dfs", `Strategy O.Dfs); ("natural", `Strategy O.Natural);
          ("random", `Strategy (O.Random 7)) ]
      in
      List.iter
        (fun (name, order) ->
          let config =
            { (s2_config cfg ~s ~w ~estimator:S.Monte_carlo ~seed:cfg.seed) with
              S.order = (order :> [ `Auto | `Strategy of O.strategy | `Explicit of int array ]) }
          in
          let rep, dt =
            Relstats.time (fun () ->
                R.estimate ~config ~extension:false g ~terminals:ts)
          in
          Printf.printf "%-8s %-16s %12s %12.2e %10.3f\n" d.D.abbr name
            (Relstats.format_seconds dt)
            (rep.R.upper -. rep.R.lower)
            (float_of_int rep.R.s_reduced /. float_of_int (max 1 rep.R.s_given)))
        strategies;
      print_newline ())
    datasets

(* ---- Ablation A2: early-sink lemmas ---- *)

let ablation_lemmas cfg =
  banner "Ablation A2: Lemma 4.1/4.2 eager sinking on vs off"
    "Eager sinking resolves states mid-layer instead of waiting for\n\
     frontier departures: smaller layers and earlier bounds at identical\n\
     exact results.";
  let s = 1_000 in
  let w = 1_000 in
  let k = 10 in
  let datasets =
    [ D.karate ~seed:cfg.seed (); D.am_rv ~seed:cfg.seed ();
      D.tokyo ~seed:(cfg.seed + 3) ~scale:(cfg.scale *. 0.25) () ]
  in
  Printf.printf "%-8s %-8s %12s %12s %12s\n" "Dataset" "Eager" "time"
    "bound gap" "max width";
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      List.iter
        (fun eager ->
          let config =
            { (s2_config cfg ~s ~w ~estimator:S.Monte_carlo ~seed:cfg.seed) with
              S.eager }
          in
          let rep, dt =
            Relstats.time (fun () ->
                R.estimate ~config ~extension:false g ~terminals:ts)
          in
          let sub = List.hd rep.R.subresults in
          Printf.printf "%-8s %-8b %12s %12.2e %12d\n" d.D.abbr eager
            (Relstats.format_seconds dt)
            (rep.R.upper -. rep.R.lower)
            sub.S.max_width)
        [ true; false ];
      print_newline ())
    datasets

(* ---- Ablation A3: deletion heuristic ---- *)

let ablation_heuristic cfg =
  banner "Ablation A3: Equation-(10) deletion heuristic vs random deletion"
    "The heuristic keeps nodes likely to reach a sink, so the bounds\n\
     (and hence Theorem-1 sample reduction) are tighter than with\n\
     random deletion at the same width.";
  let s = 1_000 in
  let k = 10 in
  let g = (D.karate ~seed:cfg.seed ()).D.graph in
  let ts = terminals cfg ~search:1 g ~k in
  Printf.printf "%-10s %-10s %12s %10s\n" "Width" "Heuristic" "bound gap" "s'/s";
  List.iter
    (fun w ->
      List.iter
        (fun (name, heuristic) ->
          let config =
            { (s2_config cfg ~s ~w ~estimator:S.Monte_carlo ~seed:cfg.seed) with
              S.heuristic }
          in
          let rep =
            R.estimate ~config ~extension:false g ~terminals:ts
          in
          Printf.printf "%-10d %-10s %12.4f %10.3f\n" w name
            (rep.R.upper -. rep.R.lower)
            (float_of_int rep.R.s_reduced /. float_of_int (max 1 rep.R.s_given)))
        [ ("paper", S.Paper_heuristic); ("random", S.Random_deletion) ];
      print_newline ())
    [ 8; 32; 128 ]

(* ---- Ablation A4: exact methods head-to-head ---- *)

let ablation_exact cfg =
  banner "Ablation A4: exact computation methods on small graphs"
    "The paper claims the S2BDD computes the exact answer on small graphs\n\
     (which sampling never can); brute force, the full BDD, the factoring\n\
     algorithm (Eq. 12 + reductions) and a wide S2BDD must agree exactly.";
  let datasets = [ D.karate ~seed:cfg.seed (); D.am_rv ~seed:cfg.seed () ] in
  Printf.printf "%-8s %-3s %12s %12s %12s %12s %10s\n" "Dataset" "k" "BDD"
    "Factoring" "S2BDD" "value" "agree";
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      List.iter
        (fun k ->
          let ts = terminals cfg ~search:1 g ~k in
          let bdd, bdd_t =
            Relstats.time (fun () ->
                match R.exact g ~terminals:ts with
                | Ok r -> r
                | Error _ -> nan)
          in
          let fact, fact_t =
            Relstats.time (fun () ->
                match
                  Bddbase.Factoring.reliability_float
                    ~call_budget:(if cfg.quick then 50_000 else 500_000)
                    g ~terminals:ts
                with
                | Ok r -> r
                | Error (`Budget_exceeded _) -> nan)
          in
          let s2, s2_t =
            Relstats.time (fun () ->
                (* Width-minimising order: for an exact run the bounds
                   do not matter, only the BDD width does. *)
                let config =
                  { S.default_config with S.width = 1 lsl 17;
                    S.order = `Explicit (O.best_order g) }
                in
                let rep = R.estimate ~config ~extension:false g ~terminals:ts in
                if rep.R.exact then rep.R.value else nan)
          in
          let agree a b =
            Float.is_nan a || Float.is_nan b || Float.abs (a -. b) <= 1e-9
          in
          Printf.printf "%-8s %-3d %12s %12s %12s %12.5g %10b\n" d.D.abbr k
            (Relstats.format_seconds bdd_t)
            (if Float.is_nan fact then "budget" else Relstats.format_seconds fact_t)
            (Relstats.format_seconds s2_t)
            bdd
            (agree bdd fact && agree bdd s2 && agree fact s2))
        [ 2; 5 ];
      print_newline ())
    datasets

(* ---- Parallel: domain-pool speedup and determinism ---- *)

let parallel cfg =
  banner "Parallel: sequential vs parallel sampling (Par domain pool)"
    (Printf.sprintf
       "Determinism contract: for a fixed seed every estimate is bit-identical\n\
        at every jobs value (per-chunk Prng.split streams, ordered reduction),\n\
        so `= seq` must read true on every row. Speedup tracks the host's\n\
        core count (this host reports %d domains; a single-core host shows ~1.0x)."
       (Par.default_jobs ()));
  let s = if cfg.quick then 10_000 else 40_000 in
  let w = if cfg.quick then 64 else 1_000 in
  let k = 10 in
  let jobs_list = [ 1; 2; 4 ] in
  let datasets =
    if cfg.quick then [ D.karate ~seed:cfg.seed () ]
    else D.large ~seed:cfg.seed ~scale:cfg.scale ()
  in
  let stats_docs = ref [] in
  let tr = section_trace cfg in
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      Printf.printf "--- %s (s = %d, w = %d, k = %d) ---\n" d.D.abbr s w k;
      Printf.printf "%-13s %5s %14s %10s %8s %-16s %6s\n" "Method" "jobs" "R"
        "time" "speedup" "chunks x samples" "= seq";
      let bench name f =
        let base_v = ref nan and base_t = ref nan in
        List.iter
          (fun jobs ->
            let (v, work), dt = Relstats.time (fun () -> f jobs) in
            if jobs = 1 then begin
              base_v := v;
              base_t := dt
            end;
            Printf.printf "%-13s %5d %14.8f %10s %7.1fx %-16s %6b\n" name jobs v
              (Relstats.format_seconds dt)
              (!base_t /. dt) work
              (Float.equal v !base_v))
          jobs_list;
        print_newline ()
      in
      (* Per-worker sample counts: the chunk layout depends only on the
         total sample budget, never on jobs, so the column repeats. *)
      let chunk_layout cs =
        let n = Array.length cs in
        if n = 0 then "-"
        else begin
          let mn = Array.fold_left min max_int cs
          and mx = Array.fold_left max 0 cs in
          if mn = mx then Printf.sprintf "%d x %d" n mn
          else Printf.sprintf "%d x %d..%d" n mn mx
        end
      in
      bench "Sampling(MC)" (fun jobs ->
          let e = Mcsampling.monte_carlo ~seed:cfg.seed ~jobs g ~terminals:ts ~samples:s in
          (e.Mcsampling.value, chunk_layout e.Mcsampling.chunk_samples));
      bench "Sampling(HT)" (fun jobs ->
          let e =
            Mcsampling.horvitz_thompson ~seed:cfg.seed ~jobs g ~terminals:ts ~samples:s
          in
          (e.Mcsampling.value, chunk_layout e.Mcsampling.chunk_samples));
      bench "Pro(MC)" (fun jobs ->
          let config = s2_config cfg ~s ~w ~estimator:S.Monte_carlo ~seed:cfg.seed in
          let rep = R.estimate ~config ~jobs g ~terminals:ts in
          (rep.R.value, Printf.sprintf "drawn = %d" rep.R.samples_drawn));
      if cfg.json || cfg.trace then begin
        let add docs =
          if cfg.json then
            List.iter (fun doc -> stats_docs := doc :: !stats_docs) docs
        in
        add
          (stats_runs cfg ~method_name:"sampling-mc" ~graph:d.D.abbr ~ts ~s ~w
             ~trace:tr
             (fun ~obs ~trace ->
               SD.result_of_estimate
                 (Mcsampling.monte_carlo ~obs ~trace ~seed:cfg.seed ~jobs:1 g
                    ~terminals:ts ~samples:s)));
        add
          (stats_runs cfg ~method_name:"sampling-ht" ~graph:d.D.abbr ~ts ~s ~w
             ~trace:tr
             (fun ~obs ~trace ->
               SD.result_of_estimate
                 (Mcsampling.horvitz_thompson ~obs ~trace ~seed:cfg.seed ~jobs:1
                    g ~terminals:ts ~samples:s)));
        add
          (stats_runs cfg ~method_name:"pro" ~graph:d.D.abbr ~ts ~s ~w ~trace:tr
             (fun ~obs ~trace ->
               let config =
                 s2_config cfg ~s ~w ~estimator:S.Monte_carlo ~seed:cfg.seed
               in
               SD.result_of_report
                 (R.estimate ~obs ~trace ~config ~jobs:1 g ~terminals:ts)))
      end)
    datasets;
  emit_json cfg ~section:"parallel" ~trace:tr (List.rev !stats_docs)

(* ---- Kernels: flat sampling fast path vs retained reference ---- *)

(* A kernel-path stats document must carry the throughput counters the
   README points readers at; a silent instrumentation regression would
   otherwise leave BENCH_kernels.json claiming nothing. *)
let assert_kernel_counters ~method_name doc =
  let missing what =
    failwith
      (Printf.sprintf "stats doc for %s missing %s" method_name what)
  in
  match J.member "sampling" doc with
  | None -> missing "sampling"
  | Some sampling -> (
    match J.member "kernel" sampling with
    | None -> missing "sampling.kernel"
    | Some kern ->
      if J.member "samples" kern = None then missing "sampling.kernel.samples";
      if J.member "samples_per_sec" kern = None then
        missing "sampling.kernel.samples_per_sec")

let kernels cfg =
  banner "Kernels: flat sampling fast path vs retained reference"
    "Same seed, same chunk layout, same Prng streams: `= ref` must read\n\
     true on every row (the kernel is a bit-identical fast path through\n\
     CSR arrays, packed mask words and an early-exit union-find, not a\n\
     different estimator). Speedup = reference time / kernel time at\n\
     jobs = 1; samples/s is the kernel-path throughput, recorded in\n\
     BENCH_kernels.json under sampling.kernel.samples_per_sec.";
  let s = if cfg.quick then 10_000 else 40_000 in
  let k = 10 in
  let datasets =
    let karate = D.karate ~seed:cfg.seed () in
    if cfg.quick then [ karate ]
    else karate :: D.large ~seed:cfg.seed ~scale:cfg.scale ()
  in
  let stats_docs = ref [] in
  let tr = section_trace cfg in
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      Printf.printf "--- %s (s = %d, k = %d, jobs = 1) ---\n" d.D.abbr s k;
      Printf.printf "%-13s %14s %10s %10s %8s %11s %6s\n" "Method" "R"
        "reference" "kernel" "speedup" "samples/s" "= ref";
      let row name reference kernel =
        let re, rt = Relstats.time reference in
        let ke, kt = Relstats.time kernel in
        Printf.printf "%-13s %14.8f %10s %10s %7.1fx %11.0f %6b\n" name
          ke.Mcsampling.value
          (Relstats.format_seconds rt)
          (Relstats.format_seconds kt)
          (rt /. kt)
          (if kt > 0. then float_of_int s /. kt else 0.)
          (re = ke)
      in
      row "Sampling(MC)"
        (fun () ->
          Mcsampling.Reference.monte_carlo ~seed:cfg.seed g ~terminals:ts
            ~samples:s)
        (fun () ->
          Mcsampling.monte_carlo ~seed:cfg.seed ~jobs:1 g ~terminals:ts
            ~samples:s);
      row "Sampling(HT)"
        (fun () ->
          Mcsampling.Reference.horvitz_thompson ~seed:cfg.seed g ~terminals:ts
            ~samples:s)
        (fun () ->
          Mcsampling.horvitz_thompson ~seed:cfg.seed ~jobs:1 g ~terminals:ts
            ~samples:s);
      print_newline ();
      if cfg.json || cfg.trace then begin
        let add docs =
          if cfg.json then
            List.iter (fun doc -> stats_docs := doc :: !stats_docs) docs
        in
        let kernel_doc method_name f =
          let docs =
            stats_runs cfg ~method_name ~graph:d.D.abbr ~ts ~s ~w:0 ~trace:tr f
          in
          List.iter (assert_kernel_counters ~method_name) docs;
          add docs
        in
        kernel_doc "kernel-mc" (fun ~obs ~trace ->
            SD.result_of_estimate
              (Mcsampling.monte_carlo ~obs ~trace ~seed:cfg.seed ~jobs:1 g
                 ~terminals:ts ~samples:s));
        kernel_doc "kernel-ht" (fun ~obs ~trace ->
            SD.result_of_estimate
              (Mcsampling.horvitz_thompson ~obs ~trace ~seed:cfg.seed ~jobs:1
                 g ~terminals:ts ~samples:s));
        (* Reference rows carry wall time only (the reference paths are
           deliberately uninstrumented); they give the JSON file its
           before/after pair per dataset. *)
        add
          (stats_runs cfg ~method_name:"reference-mc" ~graph:d.D.abbr ~ts ~s
             ~w:0 ~trace:tr
             (fun ~obs:_ ~trace:_ ->
               SD.result_of_estimate
                 (Mcsampling.Reference.monte_carlo ~seed:cfg.seed g
                    ~terminals:ts ~samples:s)));
        add
          (stats_runs cfg ~method_name:"reference-ht" ~graph:d.D.abbr ~ts ~s
             ~w:0 ~trace:tr
             (fun ~obs:_ ~trace:_ ->
               SD.result_of_estimate
                 (Mcsampling.Reference.horvitz_thompson ~seed:cfg.seed g
                    ~terminals:ts ~samples:s)))
      end)
    datasets;
  emit_json cfg ~section:"kernels" ~trace:tr (List.rev !stats_docs)

(* ---- Bitsliced: 62-world bit-parallel sampling vs the flat kernel ---- *)

(* The bitsliced rows must also prove which kernel actually ran: a stats
   document that silently fell back to the flat path would make the
   throughput comparison meaningless, so sampling.kernel.mode is read
   back and matched against the requested mode. *)
let assert_kernel_mode ~method_name ~expect doc =
  match J.member "sampling" doc with
  | None -> failwith (Printf.sprintf "stats doc for %s missing sampling" method_name)
  | Some sampling -> (
    match J.member "kernel" sampling with
    | None ->
      failwith (Printf.sprintf "stats doc for %s missing sampling.kernel" method_name)
    | Some kern -> (
      match J.member "mode" kern with
      | Some (J.Str m) when m = expect -> ()
      | Some (J.Str m) ->
        failwith
          (Printf.sprintf "stats doc for %s: sampling.kernel.mode = %S, expected %S"
             method_name m expect)
      | _ ->
        failwith
          (Printf.sprintf "stats doc for %s missing sampling.kernel.mode" method_name)))

let bitsliced cfg =
  banner "Bitsliced: 62-world bit-parallel sampling vs the flat kernel"
    "One Bitbatch draw fills a 62-lane slab word per edge; connectivity\n\
     peels lanes into the shared early-exit union-find after word-wide\n\
     agreement sweeps. Estimates are statistically exchangeable with the\n\
     flat kernel but NOT bit-identical (each mode owns its stream\n\
     discipline; bit-identity holds across jobs within a mode only).\n\
     Speedup = flat time / bitsliced time at jobs = 1; both modes'\n\
     sampling.kernel.{mode,samples_per_sec} land in BENCH_bitsliced.json.";
  let s = if cfg.quick then 10_000 else 40_000 in
  let k = 10 in
  let datasets =
    let karate = D.karate ~seed:cfg.seed () in
    if cfg.quick then [ karate ]
    else karate :: D.large ~seed:cfg.seed ~scale:cfg.scale ()
  in
  let stats_docs = ref [] in
  let tr = section_trace cfg in
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      Printf.printf "--- %s (s = %d, k = %d, jobs = 1) ---\n" d.D.abbr s k;
      Printf.printf "%-13s %14s %14s %10s %10s %8s %11s\n" "Method" "R flat"
        "R bitsliced" "flat" "bitsliced" "speedup" "samples/s";
      let row name flat bits =
        let fe, ft = Relstats.time flat in
        let be, bt = Relstats.time bits in
        Printf.printf "%-13s %14.8f %14.8f %10s %10s %7.1fx %11.0f\n" name
          fe.Mcsampling.value be.Mcsampling.value
          (Relstats.format_seconds ft)
          (Relstats.format_seconds bt)
          (ft /. bt)
          (if bt > 0. then float_of_int s /. bt else 0.)
      in
      row "Sampling(MC)"
        (fun () ->
          Mcsampling.monte_carlo ~seed:cfg.seed ~jobs:1 g ~terminals:ts
            ~samples:s)
        (fun () ->
          Mcsampling.monte_carlo ~seed:cfg.seed ~jobs:1
            ~kernel:Mcsampling.Bitsliced g ~terminals:ts ~samples:s);
      row "Sampling(HT)"
        (fun () ->
          Mcsampling.horvitz_thompson ~seed:cfg.seed ~jobs:1 g ~terminals:ts
            ~samples:s)
        (fun () ->
          Mcsampling.horvitz_thompson ~seed:cfg.seed ~jobs:1
            ~kernel:Mcsampling.Bitsliced g ~terminals:ts ~samples:s);
      print_newline ();
      if cfg.json || cfg.trace then begin
        let add docs =
          if cfg.json then
            List.iter (fun doc -> stats_docs := doc :: !stats_docs) docs
        in
        let mode_doc method_name ~kernel ~expect run =
          let docs =
            stats_runs cfg ~method_name ~graph:d.D.abbr ~ts ~s ~w:0 ~trace:tr
              (fun ~obs ~trace -> SD.result_of_estimate (run ~obs ~trace ~kernel))
          in
          List.iter
            (fun doc ->
              assert_kernel_counters ~method_name doc;
              assert_kernel_mode ~method_name ~expect doc)
            docs;
          add docs
        in
        let mc ~obs ~trace ~kernel =
          Mcsampling.monte_carlo ~obs ~trace ~seed:cfg.seed ~jobs:1 ~kernel g
            ~terminals:ts ~samples:s
        and ht ~obs ~trace ~kernel =
          Mcsampling.horvitz_thompson ~obs ~trace ~seed:cfg.seed ~jobs:1
            ~kernel g ~terminals:ts ~samples:s
        in
        mode_doc "flat-mc" ~kernel:Mcsampling.Flat ~expect:"flat" mc;
        mode_doc "bitsliced-mc" ~kernel:Mcsampling.Bitsliced ~expect:"bitsliced" mc;
        mode_doc "flat-ht" ~kernel:Mcsampling.Flat ~expect:"flat" ht;
        mode_doc "bitsliced-ht" ~kernel:Mcsampling.Bitsliced ~expect:"bitsliced" ht
      end)
    datasets;
  emit_json cfg ~section:"bitsliced" ~trace:tr (List.rev !stats_docs)

(* ---- Adaptive: sequential stopping vs fixed sample budgets ---- *)

(* An adaptive stats document must prove the driver actually ran the
   stopping loop: the "adaptive" phase has to carry the round/budget
   counters and the width gauges the README points readers at. *)
let assert_adaptive_counters ~method_name doc =
  match J.member "adaptive" doc with
  | None ->
    failwith (Printf.sprintf "stats doc for %s missing adaptive" method_name)
  | Some a ->
    List.iter
      (fun k ->
        if J.member k a = None then
          failwith
            (Printf.sprintf "stats doc for %s missing adaptive.%s" method_name k))
      [ "rounds"; "samples_planned"; "samples_used"; "ci_width"; "target_width" ]

let adaptive_result_doc (r : Adaptive.result) =
  SD.result_of_adaptive ~value:r.Adaptive.value ~lower:r.Adaptive.lower
    ~upper:r.Adaptive.upper ~exact:r.Adaptive.exact
    ~ci_width:r.Adaptive.ci_width ~target_width:r.Adaptive.target_width
    ~samples_used:r.Adaptive.samples_used
    ~samples_planned:r.Adaptive.samples_planned ~rounds:r.Adaptive.rounds
    ~stop:(Adaptive.stop_name r.Adaptive.stop)

let adaptive cfg =
  banner "Adaptive: sequential stopping vs fixed sample budgets"
    "Each method draws in rounds until the 95% Wilson interval is no wider\n\
     than the target; `samples` is what the stopping rule actually spent\n\
     vs the fixed 10k default budget. Paper shape: Pro reaches the target\n\
     width with far fewer descents than plain sampling (the proven bounds\n\
     shrink the unresolved mass), and for a fixed seed every row is\n\
     bit-identical at every jobs value.";
  let width = if cfg.quick then 0.02 else 0.01 in
  let cap = if cfg.quick then 200_000 else Adaptive.default_max_samples in
  let fixed = 10_000 in
  let k = 10 in
  let datasets =
    let karate = D.karate ~seed:cfg.seed () in
    if cfg.quick then [ karate ]
    else karate :: D.large ~seed:cfg.seed ~scale:cfg.scale ()
  in
  let stats_docs = ref [] in
  let tr = section_trace cfg in
  List.iter
    (fun (d : D.t) ->
      let g = d.D.graph in
      let ts = terminals cfg ~search:1 g ~k in
      Printf.printf "--- %s (target width = %g, cap = %d, k = %d) ---\n"
        d.D.abbr width cap k;
      Printf.printf "%-13s %14s %10s %9s %7s %-14s %10s %8s\n" "Method" "R"
        "width" "samples" "rounds" "stop" "time" "vs 10k";
      let row name run =
        let r, dt = Relstats.time run in
        Printf.printf "%-13s %14.8f %10.2e %9d %7d %-14s %10s %7.2fx\n" name
          r.Adaptive.value r.Adaptive.ci_width r.Adaptive.samples_used
          r.Adaptive.rounds
          (Adaptive.stop_name r.Adaptive.stop)
          (Relstats.format_seconds dt)
          (float_of_int r.Adaptive.samples_used /. float_of_int fixed);
        r
      in
      let _ =
        row "Sampling(MC)" (fun () ->
            Adaptive.monte_carlo ~seed:cfg.seed ~jobs:1 g ~terminals:ts
              ~ci_width:width ~max_samples:cap)
      in
      let _ =
        row "Sampling(HT)" (fun () ->
            Adaptive.horvitz_thompson ~seed:cfg.seed ~jobs:1 g ~terminals:ts
              ~ci_width:width ~max_samples:cap)
      in
      let _ =
        row "Pro(MC)" (fun () ->
            let config =
              s2_config cfg ~s:fixed ~w:(if cfg.quick then 64 else 1_000)
                ~estimator:S.Monte_carlo ~seed:cfg.seed
            in
            Adaptive.reliability ~config ~jobs:1 g ~terminals:ts
              ~ci_width:width ~max_samples:cap)
      in
      print_newline ();
      if cfg.json || cfg.trace then begin
        let add docs =
          if cfg.json then
            List.iter (fun doc -> stats_docs := doc :: !stats_docs) docs
        in
        let adaptive_doc method_name run =
          let docs =
            stats_runs cfg ~method_name ~graph:d.D.abbr ~ts ~s:cap ~w:0
              ~trace:tr
              (fun ~obs ~trace -> adaptive_result_doc (run ~obs ~trace))
          in
          List.iter (assert_adaptive_counters ~method_name) docs;
          add docs
        in
        adaptive_doc "adaptive-mc" (fun ~obs ~trace ->
            Adaptive.monte_carlo ~obs ~trace ~seed:cfg.seed ~jobs:1 g
              ~terminals:ts ~ci_width:width ~max_samples:cap);
        adaptive_doc "adaptive-ht" (fun ~obs ~trace ->
            Adaptive.horvitz_thompson ~obs ~trace ~seed:cfg.seed ~jobs:1 g
              ~terminals:ts ~ci_width:width ~max_samples:cap);
        adaptive_doc "adaptive-pro" (fun ~obs ~trace ->
            let config =
              s2_config cfg ~s:fixed ~w:(if cfg.quick then 64 else 1_000)
                ~estimator:S.Monte_carlo ~seed:cfg.seed
            in
            Adaptive.reliability ~obs ~trace ~config ~jobs:1 g ~terminals:ts
              ~ci_width:width ~max_samples:cap)
      end)
    datasets;
  emit_json cfg ~section:"adaptive" ~trace:tr (List.rev !stats_docs)

(* ---- batch: the amortized multi-query engine vs from-scratch ---- *)

let batch cfg =
  banner "Batch: amortized multi-query engine vs from-scratch"
    "The workload behind `netrel batch`/`serve`: 16 queries (4 distinct,\n\
     each repeated 4 times) against one graph. The engine builds the\n\
     graph context, Csr snapshot and per-terminal-set preprocessing once\n\
     and memoizes full results, so repeats are near-free; every answer\n\
     is asserted bit-identical to the from-scratch estimate. The section\n\
     fails if the cache counters do not prove the amortization or the\n\
     per-query speedup falls below the floor.";
  let d = D.karate ~seed:cfg.seed () in
  let g = d.D.graph in
  let s_pro = if cfg.quick then 3_000 else 10_000 in
  let w = if cfg.quick then 64 else 1_000 in
  let s_mc = if cfg.quick then 2_000 else 10_000 in
  let distinct =
    [
      { Engine.default with Engine.terminals = [ 0; 33 ]; samples = s_pro;
        width = w; seed = cfg.seed };
      { Engine.default with Engine.terminals = [ 0; 33 ];
        method_ = Engine.Sampling_mc; samples = s_mc; seed = cfg.seed };
      { Engine.default with Engine.terminals = [ 0; 16; 33 ];
        samples = s_pro; width = w; ci_width = Some 0.02;
        max_samples = Some 100_000; seed = cfg.seed };
      { Engine.default with Engine.terminals = [ 0; 33 ];
        method_ = Engine.Sampling_ht; samples = s_mc; seed = cfg.seed };
    ]
  in
  let queries = List.concat (List.init 4 (fun _ -> distinct)) in
  let n = List.length queries in
  let eng = Engine.create ~obs:(Obs.create ()) () in
  let served =
    List.map
      (fun q ->
        let t0 = Relstats.now_monotonic () in
        let a = Engine.query eng g q in
        (q, a, Relstats.now_monotonic () -. t0))
      queries
  in
  let engine_dt = List.fold_left (fun acc (_, _, dt) -> acc +. dt) 0. served in
  (* The same 16 queries computed from scratch, exactly as the CLI's
     single-shot estimate path would. *)
  let scratch_one (q : Engine.query) =
    let config =
      { S.default_config with S.samples = q.Engine.samples;
        S.width = q.Engine.width; S.seed = q.Engine.seed }
    in
    match (q.Engine.method_, q.Engine.ci_width) with
    | Engine.Pro, None ->
      (R.estimate ~config g ~terminals:q.Engine.terminals).R.value
    | Engine.Pro, Some cw ->
      (Adaptive.reliability ~config ~jobs:1 ?max_samples:q.Engine.max_samples g
         ~terminals:q.Engine.terminals ~ci_width:cw)
        .Adaptive.value
    | Engine.Sampling_mc, None ->
      (Mcsampling.monte_carlo ~seed:q.Engine.seed g
         ~terminals:q.Engine.terminals ~samples:q.Engine.samples)
        .Mcsampling.value
    | Engine.Sampling_ht, None ->
      (Mcsampling.horvitz_thompson ~seed:q.Engine.seed g
         ~terminals:q.Engine.terminals ~samples:q.Engine.samples)
        .Mcsampling.value
    | _ -> assert false
  in
  let scratch =
    List.map
      (fun q ->
        let t0 = Relstats.now_monotonic () in
        let v = scratch_one q in
        (v, Relstats.now_monotonic () -. t0))
      queries
  in
  let scratch_dt = List.fold_left (fun acc (_, dt) -> acc +. dt) 0. scratch in
  List.iter2
    (fun (_, (a : Engine.answer), _) (v, _) ->
      if a.Engine.value <> v then
        failwith
          (Printf.sprintf
             "batch: engine answer %.17g diverged from from-scratch %.17g"
             a.Engine.value v))
    served scratch;
  Printf.printf "%-13s %-10s %14s %12s %12s\n" "Method" "Terminals" "R"
    "engine" "scratch";
  List.iter2
    (fun (q, (a : Engine.answer), edt) (_, sdt) ->
      Printf.printf "%-13s %-10s %14.8f %12s %12s%s\n" a.Engine.method_name
        (String.concat "," (List.map string_of_int q.Engine.terminals))
        a.Engine.value
        (Relstats.format_seconds edt)
        (Relstats.format_seconds sdt)
        (if a.Engine.cached then "  (memo hit)" else ""))
    served scratch;
  let counters = Engine.counters eng in
  let c k = List.assoc k counters in
  Printf.printf
    "\nengine counters: queries=%d graph hit/miss=%d/%d csr=%d/%d \
     prep=%d/%d result=%d/%d\n"
    (c "queries") (c "graph.hit") (c "graph.miss") (c "csr.hit")
    (c "csr.miss") (c "prep.hit") (c "prep.miss") (c "result.hit")
    (c "result.miss");
  if
    c "queries" <> n || c "graph.miss" <> 1 || c "csr.miss" > 1
    || c "prep.miss" <> 2
    || c "result.miss" <> List.length distinct
    || c "result.hit" <> n - List.length distinct
  then failwith "batch: cache counters do not prove the amortization";
  let speedup = scratch_dt /. engine_dt in
  Printf.printf
    "total: engine %s vs scratch %s for %d queries -> per-query %s vs %s \
     (%.1fx)\n"
    (Relstats.format_seconds engine_dt)
    (Relstats.format_seconds scratch_dt)
    n
    (Relstats.format_seconds (engine_dt /. float_of_int n))
    (Relstats.format_seconds (scratch_dt /. float_of_int n))
    speedup;
  (* The amortization floor: 12 of 16 queries are memo hits, so the
     engine does a quarter of the work plus cache lookups. The quick
     (tier-1 smoke) floor is looser to absorb CI noise. *)
  let floor = if cfg.quick then 2.0 else 3.0 in
  if speedup < floor then
    failwith
      (Printf.sprintf "batch: amortized speedup %.2fx below the %gx floor"
         speedup floor);
  if cfg.json then begin
    let doc_of ~method_name ~seconds ~terminals ~samples ~result ~obs =
      let run_meta =
        { SD.command = "bench"; method_ = method_name; graph = d.D.abbr;
          terminals; seed = cfg.seed; jobs = 1; samples; width = w }
      in
      SD.build ~obs ~run:run_meta ~seconds ~result
    in
    let engine_docs =
      List.map
        (fun (q, (a : Engine.answer), dt) ->
          doc_of
            ~method_name:("batch-" ^ a.Engine.method_name)
            ~seconds:dt ~terminals:q.Engine.terminals
            ~samples:q.Engine.samples ~result:a.Engine.result ~obs:a.Engine.obs)
        served
    in
    (* One from-scratch document per distinct query, for the latency
       baseline the committed BENCH file records. *)
    let scratch_docs =
      List.map
        (fun q ->
          stats_run cfg
            ~method_name:("scratch-" ^ Engine.method_name q.Engine.method_)
            ~graph:d.D.abbr ~ts:q.Engine.terminals ~s:q.Engine.samples ~w
            ~trace:Trace.disabled
            (fun ~obs ~trace:_ ->
              let config =
                { S.default_config with S.samples = q.Engine.samples;
                  S.width = q.Engine.width; S.seed = q.Engine.seed }
              in
              match (q.Engine.method_, q.Engine.ci_width) with
              | Engine.Pro, None ->
                SD.result_of_report
                  (R.estimate ~obs ~config g ~terminals:q.Engine.terminals)
              | Engine.Pro, Some cw ->
                adaptive_result_doc
                  (Adaptive.reliability ~obs ~config ~jobs:1
                     ?max_samples:q.Engine.max_samples g
                     ~terminals:q.Engine.terminals ~ci_width:cw)
              | Engine.Sampling_mc, None ->
                SD.result_of_estimate
                  (Mcsampling.monte_carlo ~obs ~seed:q.Engine.seed g
                     ~terminals:q.Engine.terminals ~samples:q.Engine.samples)
              | Engine.Sampling_ht, None ->
                SD.result_of_estimate
                  (Mcsampling.horvitz_thompson ~obs ~seed:q.Engine.seed g
                     ~terminals:q.Engine.terminals ~samples:q.Engine.samples)
              | _ -> assert false))
        distinct
    in
    emit_json cfg ~section:"batch" (engine_docs @ scratch_docs)
  end

(* ---- Large: the 10^5..10^6-edge scale-out trajectory ---- *)

(* Binary-container trajectory: pack a synthetic large graph into the
   mmap-able container, reopen it with [Bingraph.load], build the CSR
   straight from the packed arrays and sample without ever
   materializing a [Ugraph.t] on the hot path. Each kernel row asserts
   the CSR-direct estimate bit-identical to the text-path estimate for
   the same kernel (the round-trip invariant lib/check sweeps at small
   sizes, exercised here at bench scale). *)
let large cfg =
  banner "Large graphs: mmap-able binary container + CSR-direct sampling"
    "Synthetic 10^5-edge (quick) to 10^6-edge graphs are packed into the\n\
     binary container (lib/bingraph), reopened with Unix.map_file and\n\
     sampled straight from the packed arrays (Kernel.Csr.of_arrays +\n\
     monte_carlo_csr). `= text` asserts the binary-path estimate\n\
     bit-identical to the Ugraph text path per kernel; mmap open + CSR\n\
     build time lands in run.seconds of the load-mmap rows, kernel\n\
     throughput in sampling.kernel.samples_per_sec of the mc rows.";
  let graphs =
    if cfg.quick then
      [ ("pa-large",
         fun () ->
           G.preferential_attachment_large ~seed:cfg.seed ~n:40_000
             ~edges_per_vertex:3);
        ("geo-large",
         fun () ->
           G.random_geometric ~seed:(cfg.seed + 1) ~n:30_000
             ~radius:(sqrt (8. /. (Float.pi *. 30_000.)))) ]
    else
      [ ("pa-large",
         fun () ->
           G.preferential_attachment_large ~seed:cfg.seed ~n:300_000
             ~edges_per_vertex:3);
        ("geo-large",
         fun () ->
           G.random_geometric ~seed:(cfg.seed + 1) ~n:200_000
             ~radius:(sqrt (10. /. (Float.pi *. 200_000.)))) ]
  in
  let s = if cfg.quick then 200 else 2_000 in
  let k = 5 in
  let stats_docs = ref [] in
  let tr = section_trace cfg in
  List.iter
    (fun (name, gen) ->
      let g = Workload.Probability.uniform ~seed:(cfg.seed + 2) (gen ()) in
      let ts = terminals cfg ~search:1 g ~k in
      let tmp = Filename.temp_file "netrel_large_" ".nrb" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
        (fun () ->
          Bingraph.to_file tmp (Bingraph.of_graph g);
          let load_csr () =
            let bg = Bingraph.load tmp in
            Bingraph.validate bg;
            let eu, ev, ep = Bingraph.to_arrays bg in
            (bg, Kernel.Csr.of_arrays ~n:(Bingraph.n_vertices bg) ~eu ~ev ~ep)
          in
          let (bg, csr), load_t = Relstats.time load_csr in
          Printf.printf
            "--- %s (n = %d, m = %d, s = %d, k = %d, jobs = 1) ---\n" name
            (Bingraph.n_vertices bg) (Bingraph.n_edges bg) s k;
          Printf.printf "mmap open + CSR build: %s\n"
            (Relstats.format_seconds load_t);
          Printf.printf "%-15s %14s %10s %11s %7s\n" "Method" "R" "time"
            "samples/s" "= text";
          let row label kern =
            let text_e =
              Mcsampling.monte_carlo ~seed:cfg.seed ~jobs:1 ~kernel:kern g
                ~terminals:ts ~samples:s
            in
            let e, t =
              Relstats.time (fun () ->
                  Mcsampling.monte_carlo_csr ~seed:cfg.seed ~jobs:1
                    ~kernel:kern csr ~terminals:ts ~samples:s)
            in
            let same = e = text_e in
            Printf.printf "%-15s %14.8f %10s %11.0f %7b\n" label
              e.Mcsampling.value
              (Relstats.format_seconds t)
              (if t > 0. then float_of_int s /. t else 0.)
              same;
            if not same then
              failwith
                (Printf.sprintf
                   "large: %s %s binary-path estimate diverged from the \
                    text path" name label)
          in
          row "MC(flat)" Mcsampling.Flat;
          row "MC(bitsliced)" Mcsampling.Bitsliced;
          print_newline ();
          if cfg.json || cfg.trace then begin
            let add docs =
              if cfg.json then
                List.iter (fun doc -> stats_docs := doc :: !stats_docs) docs
            in
            (* run.seconds of these rows is the mmap open + CSR build
               cost; the result value records the edge count so the
               document states what was loaded. *)
            add
              (stats_runs cfg ~method_name:"load-mmap" ~graph:name ~ts ~s:0
                 ~w:0 ~trace:tr
                 (fun ~obs:_ ~trace:_ ->
                   let bg, _csr = load_csr () in
                   SD.result_value
                     ~value:(float_of_int (Bingraph.n_edges bg))
                     ~exact:true));
            let mode_doc method_name ~kernel ~expect =
              let docs =
                stats_runs cfg ~method_name ~graph:name ~ts ~s ~w:0 ~trace:tr
                  (fun ~obs ~trace ->
                    SD.result_of_estimate
                      (Mcsampling.monte_carlo_csr ~obs ~trace ~seed:cfg.seed
                         ~jobs:1 ~kernel csr ~terminals:ts ~samples:s))
              in
              List.iter
                (fun doc ->
                  assert_kernel_counters ~method_name doc;
                  assert_kernel_mode ~method_name ~expect doc)
                docs;
              add docs
            in
            mode_doc "mc-flat" ~kernel:Mcsampling.Flat ~expect:"flat";
            mode_doc "mc-bitsliced" ~kernel:Mcsampling.Bitsliced
              ~expect:"bitsliced"
          end))
    graphs;
  emit_json cfg ~section:"large" ~trace:tr (List.rev !stats_docs)

let all_sections =
  [
    ("table2", table2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("ablation_ordering", ablation_ordering);
    ("ablation_lemmas", ablation_lemmas);
    ("ablation_heuristic", ablation_heuristic);
    ("ablation_exact", ablation_exact);
    ("parallel", parallel);
    ("kernels", kernels);
    ("bitsliced", bitsliced);
    ("adaptive", adaptive);
    ("batch", batch);
    ("large", large);
  ]
