(** The scalable and sampling BDD (S2BDD) — Section 4 of the paper.

    The S2BDD keeps a single BDD layer plus the two sinks. Each layer is
    built from the previous by the four procedures of Section 4.3:

    - {e generating}: both edge decisions are expanded for every node,
      with the early connect/disconnect conditions of Lemmas 4.1–4.2
      routing mass to the sinks ([pc] and [pd]) as soon as possible;
    - {e merging}: nodes whose component partition and per-component
      terminal {e flags} coincide are merged (Lemma 4.3) — coarser than
      the classical exact-count merge, and still exact;
    - {e deleting}: when a layer exceeds the width cap [w], the
      lowest-priority nodes under the heuristic
      [h(n) = p_n * max_f (t_{n,f}/k, 1/d_{n,f})] (Equation 10) are
      deleted;
    - {e sampling}: deleted nodes are sampled immediately by
      dynamic-programming descent (the node's frontier state is a
      sufficient statistic, so possible graphs are completed by flipping
      only the remaining edges), with per-node allocations
      [~ s' * p_n] under randomised rounding.

    The estimator is exactly unbiased: a node deleted when the current
    reduced budget was [s'] contributes
    [(N_n / s'_n) * R^_n] with [E[N_n] = s'_n * p_n], so the expectation
    telescopes to the true residual mass regardless of when nodes were
    deleted or how [s'] evolved. [R^_n] is the within-node Monte Carlo
    mean or Horvitz–Thompson sum, per {!estimator}.

    When the construction finishes with no deletions, the result is the
    {e exact} reliability ([exact = true]), which plain sampling can
    never deliver. *)

type estimator =
  | Monte_carlo
  | Horvitz_thompson

type deletion_heuristic =
  | Paper_heuristic  (** Equation (10) priorities *)
  | Random_deletion  (** ablation: delete uniformly at random *)

type config = {
  samples : int;       (** the plain-sampling budget [s] being matched *)
  width : int;         (** maximum layer width [w] *)
  estimator : estimator;
  seed : int;
  order : [ `Auto | `Strategy of Graphalgo.Ordering.strategy | `Explicit of int array ];
  eager : bool;        (** Lemmas 4.1–4.2 extended early sinking *)
  merge_flags : bool;  (** Lemma 4.3 flag-based merging (exact-count merge when false) *)
  heuristic : deletion_heuristic;
  patience : int;
      (** abort construction after this many consecutive width-saturated
          layers with negligible bound progress *)
  min_progress : float;
      (** relative [pc + pd] growth under which a saturated layer counts
          as stagnant *)
  max_work : int;
      (** hard cap on construction effort (cumulative node-state
          operations); past it the remaining mass falls back to the
          unbiased stratified sampler *)
}

val default_config : config
(** [samples = 10_000], [width = 10_000], Monte Carlo, seed 1, [`Auto]
    order, eager sinking, flag merging, paper heuristic, patience 50,
    min_progress 1e-5, max_work 8e7. *)

type stop_reason =
  | Completed    (** every layer processed *)
  | Converged
      (** residual live mass would receive under one descent: bounds are
          as tight as the budget can use *)
  | Stagnated    (** saturated layers stopped improving the bounds *)
  | Work_capped  (** construction effort budget exhausted *)

val stop_reason_name : stop_reason -> string

type result = {
  value : float;
      (** estimated (or exact) reliability, always clamped into
          [[lower, upper]] — the raw (possibly overshooting) stratified
          contribution is recorded under the [sampling.contribution] /
          [sampling.raw_value] Obs gauges, with [sampling.value_clamped]
          counting the runs where the clamp actually bound *)
  lower : float;        (** [pc]: proven lower bound *)
  upper : float;
      (** [1 - pd]: proven upper bound; rounded up to [lower] when the
          two independently rounded floats would cross by an ulp (fully
          resolved runs), so [lower <= upper] always holds *)
  pc : Xprob.t;
  pd : Xprob.t;
  exact : bool;         (** no mass was left to sampling *)
  s_given : int;
  s_reduced : int;
      (** final Theorem-1 budget [s'] at the achieved bounds — reported
          even when [exact] (where it went unused; see
          {!Reliability.report} whose [s_reduced] is [0] in that case) *)
  samples_drawn : int;  (** descents actually performed *)
  sampled_nodes : int;  (** deleted/leftover nodes that received samples *)
  deleted_nodes : int;
  layers_built : int;
  max_width : int;      (** widest layer constructed (post-merge) *)
  peak_state_words : int;
      (** resident S2BDD memory proxy: the largest total state-word
          footprint of any single layer (the S2BDD keeps one layer) *)
  aborted : bool;       (** construction stopped before the final layer *)
  stop : stop_reason;
}

val estimate :
  ?pool:Par.Pool.t -> ?obs:Obs.t -> ?trace:Trace.t -> ?config:config ->
  Ugraph.t -> terminals:int list -> result
(** Estimate [R[G, T]] with an S2BDD over the graph as given (no
    extension technique; see {!Reliability.estimate} for the full
    Algorithm 1). Handles [k < 2] and topologically separated terminals
    without construction.

    [obs] (default {!Obs.disabled}) records the construction account
    under ["construction"] — per-layer [width]/[pc]/[pd] series, the
    [merges]/[layers]/[work]/[deleted_nodes]/[sampled_nodes] counters,
    [max_width]/[peak_state_words]/[s_reduced] gauges, the [stop]
    reason and a [build] timer — and the stratified descents under
    ["sampling"] ([descent_tasks], [samples], per-task [descent] spans,
    the [estimator] text). Instrumentation never touches the random
    streams: results are bit-identical with and without [obs]. The
    observer must be owned by the calling thread; descent tasks only
    measure durations locally and the caller records them in task
    order.

    [trace] (default {!Trace.disabled}) streams the time-domain view:
    one [layer] span per layer (args [layer]/[width]/[pc]/[pd]/
    [deleted]) plus a [width] counter, a [construction] span over the
    whole loop carrying the stop reason, and one [descent] span per
    stratified task, recorded into per-task buffers on lane
    [task mod lanes] ({!Par.run_lanes}) and merged back in consumption
    order — the trace stream, like the result, is jobs-independent in
    content.

    When [pool] is given, the stratified DP descents of deleted and
    leftover nodes run on it: construction stays sequential (each layer
    depends on the previous), but every sampled node's descents are an
    independent task recorded in consumption order and executed after
    construction. Each task draws from its own {!Prng.split} stream
    assigned at enqueue time and the per-task contributions fold in
    consumption order, so the result is {b bit-identical} with and
    without a pool, at any pool size. *)

(** {2 Adaptive sampling plans}

    The sequential-stopping driver ({!Adaptive}) cannot use {!estimate}
    directly: the fixed path allocates every node's descent budget at
    deletion time. [prepare] runs the {e same} construction (same
    config, same heuristic draws, same stop rules) but records each
    deleted/leftover node as a {e stratum} — mass, frontier state,
    descent layer and a private {!Prng.split} stream — and leaves all
    budget decisions to the caller, who draws between rounds with
    {!draw_stratum} (Neyman re-allocation lives in the driver).

    Determinism: a stratum's stream is private and advanced
    sequentially, so its [(drawn, hits)] counters after a total of [n]
    draws do not depend on the round schedule that reached [n], nor on
    which domain ran the rounds. Distinct strata may be drawn
    concurrently; the same stratum must never be drawn from two domains
    at once. *)

type plan
(** A prepared construction with unresolved mass: proven bounds plus
    the strata awaiting samples. *)

type prepared =
  | Exact of result
      (** trivial input, or the construction resolved every node — the
          answer is exact and nothing needs sampling *)
  | Sampling of plan

val prepare :
  ?obs:Obs.t -> ?trace:Trace.t -> ?config:config ->
  Ugraph.t -> terminals:int list -> prepared
(** Run the construction and return the sampling plan (or the exact
    answer). [config.samples] still seeds the Theorem-1 budget reduction
    that drives the convergence stop rule; it does not allocate any
    descents. Obs/trace instrumentation matches {!estimate}'s
    construction phase. @raise Invalid_argument as {!estimate}. *)

val plan_bounds : plan -> float * float
(** [(lower, upper)] proven bounds [pc, 1 - pd] (same ulp guard as
    {!result.upper}). The gap is the mass the strata carry. *)

val n_strata : plan -> int
(** At least [1]. *)

val stratum_mass : plan -> int -> float
val stratum_drawn : plan -> int -> int
val stratum_hits : plan -> int -> int

val draw_stratum : plan -> int -> n:int -> unit
(** [draw_stratum p i ~n] performs [n] more Monte-Carlo DP descents
    from stratum [i]'s frontier state and folds them into its counters.
    Adaptive descents always use the plain MC indicator — the HT
    within-node deduplication needs the node's final sample total up
    front, which sequential stopping cannot know.
    @raise Invalid_argument when [n <= 0]. *)

val plan_result : config -> plan -> result
(** Package the plan's current stratified point estimate
    [lower + sum_i mass_i * hits_i / drawn_i] (strata still at zero
    draws contribute zero) as a {!result} — same clamping contract as
    {!estimate}; [samples_drawn]/[sampled_nodes] reflect the draws so
    far. The confidence interval around it is the driver's job. *)
