(** Noise-aware comparison of two BENCH_*.json documents (the
    [{ "section"; "schema"; "runs": [<Statsdoc>...] }] files the bench
    harness writes with [--json]) — the engine behind
    [netrel benchdiff OLD NEW] and bench's [--baseline] mode.

    Runs are grouped by [(run.method, run.graph)]; repeats of the same
    pair within one file are treated as repeated measurements. For each
    tracked metric the comparison is median-of-repeats against
    median-of-repeats, and the per-metric threshold is

    [max (rel_tol * |old_median|) (mad_mult * MAD(old)) abs_floor]

    so that a noisy baseline (large median absolute deviation across
    its repeats) automatically widens its own gate, while sub-floor
    jitter (20 ms of wall clock, 1 ms of chunk latency, a megaword of
    allocation) never trips it. Each metric carries a direction:
    [run.seconds], the chunk-latency quantiles and the GC words are
    lower-better, [sampling.kernel.samples_per_sec] is higher-better.
    A metric missing on either side (e.g. an old-schema baseline
    without histograms) is skipped, never an error: the gate only
    compares what both documents measured. *)

type direction = Lower_better | Higher_better

type status = Ok | Regression | Improvement

type row = {
  group : string;      (** ["method/graph"] *)
  metric : string;     (** dotted path into the run document *)
  old_median : float;
  new_median : float;
  tolerance : float;   (** realised absolute threshold for this row *)
  delta : float;       (** [new_median -. old_median], unsigned direction *)
  status : status;
}

type report = {
  rows : row list;
  regressions : int;
  improvements : int;
  missing_groups : string list;  (** in the baseline, absent from new *)
  new_groups : string list;      (** in new, absent from the baseline *)
}

val default_rel_tol : float
(** Relative tolerance [0.25]: a 25% median shift is the default gate. *)

val default_mad_mult : float
(** MAD multiplier [6.0] — roughly 4 sigma for normal noise
    (MAD ~ 0.674 sigma). *)

val metrics : (string * direction * float) list
(** The tracked metrics: dotted path, direction, absolute floor. *)

val compare_docs :
  ?rel_tol:float -> ?mad_mult:float -> old_doc:Obs.Json.t ->
  new_doc:Obs.Json.t -> unit -> (report, string) result
(** Compare two parsed BENCH documents. [Error] only on structurally
    unusable input (no [runs] list, or no run carrying
    [run.method]/[run.graph]); a regression is a successful comparison
    with {!regressed} true. *)

val regressed : report -> bool

val render_human : report -> string
(** Fixed-width table, one row per (group, metric), plus skipped-group
    notes and a one-line summary. Deterministic for equal reports. *)

val render_json : report -> Obs.Json.t
(** The same report as a JSON document (full float precision). *)
