module F = Bddbase.Fstate
module O = Graphalgo.Ordering

(* GC accounting around a phase or a parallel task: measure only when
   the observer is live and the fake clock has not pinned metrics off
   (byte-stability contract); record the zero delta otherwise so the
   stats document keeps its shape. *)
let gc_begin o =
  if Obs.enabled o && Obs.gc_counters_live () then
    Some (Metrics.Gcstat.snapshot ())
  else None

let gc_end = function
  | None -> Metrics.Gcstat.zero
  | Some before ->
      Metrics.Gcstat.delta ~before ~after:(Metrics.Gcstat.snapshot ())

type estimator =
  | Monte_carlo
  | Horvitz_thompson

type deletion_heuristic =
  | Paper_heuristic
  | Random_deletion

type config = {
  samples : int;
  width : int;
  estimator : estimator;
  seed : int;
  order : [ `Auto | `Strategy of Graphalgo.Ordering.strategy | `Explicit of int array ];
  eager : bool;
  merge_flags : bool;
  heuristic : deletion_heuristic;
  patience : int;
  min_progress : float;
  max_work : int;
}

let default_config =
  {
    samples = 10_000;
    width = 10_000;
    estimator = Monte_carlo;
    seed = 1;
    order = `Auto;
    eager = true;
    merge_flags = true;
    heuristic = Paper_heuristic;
    patience = 50;
    min_progress = 1e-5;
    max_work = 80_000_000;
  }

type stop_reason =
  | Completed    (* every layer processed; all mass resolved or deleted *)
  | Converged    (* expected residual sampling work fell below one descent *)
  | Stagnated    (* saturated layers stopped improving the bounds *)
  | Work_capped  (* construction effort budget exhausted *)

let stop_reason_name = function
  | Completed -> "completed"
  | Converged -> "converged"
  | Stagnated -> "stagnated"
  | Work_capped -> "work-capped"

type result = {
  value : float;
  lower : float;
  upper : float;
  pc : Xprob.t;
  pd : Xprob.t;
  exact : bool;
  s_given : int;
  s_reduced : int;
  samples_drawn : int;
  sampled_nodes : int;
  deleted_nodes : int;
  layers_built : int;
  max_width : int;
  peak_state_words : int;
  aborted : bool;
  stop : stop_reason;
}

let trivial_result cfg value =
  {
    value;
    lower = value;
    upper = value;
    pc = (if value >= 1. then Xprob.one else Xprob.zero);
    pd = (if value >= 1. then Xprob.zero else Xprob.one);
    exact = true;
    s_given = cfg.samples;
    s_reduced = 0;
    samples_drawn = 0;
    sampled_nodes = 0;
    deleted_nodes = 0;
    layers_built = 0;
    max_width = 0;
    peak_state_words = 0;
    aborted = false;
    stop = Completed;
  }

(* Randomised rounding: E[alloc rng x] = x exactly. *)
let alloc rng x =
  if x <= 0. then 0
  else
    let f = Float.floor x in
    int_of_float f + (if Prng.bernoulli rng (x -. f) then 1 else 0)

(* One DP descent from a node's state: the state anchors past
   connectivity, the remaining edges are flipped, one early-exit
   union-find pass over the drawn edges decides the indicator. Runs on
   the per-domain kernel scratch ([Kernel.scratch] — re-initialised per
   descent, so reuse across tasks and domains cannot affect results).
   Returns [(connected, hash, log_q)]; the hash and log-probability are
   only computed for the HT estimator. *)
let descend_detailed ctx sc rng ~detail ~pos st =
  F.descend_kernel ctx ~scratch:sc ~detail ~pos st
    ~bernoulli:(fun p -> Prng.bernoulli rng p)

(* Horvitz–Thompson weight q / (1 - (1 - q)^n): the single shared
   implementation lives in Mcsampling (this module used to carry a
   divergent copy with its own underflow threshold). *)
let ht_weight = Mcsampling.ht_weight

(* Within-node reliability estimate from [n >= 1] descents. *)
let node_r_hat ctx cfg sc rng ~pos st ~n =
  match cfg.estimator with
  | Monte_carlo ->
    let hits = ref 0 in
    for _ = 1 to n do
      let connected, _, _ = descend_detailed ctx sc rng ~detail:false ~pos st in
      if connected then incr hits
    done;
    float_of_int !hits /. float_of_int n
  | Horvitz_thompson ->
    let seen : (int, float * bool) Hashtbl.t = Hashtbl.create n in
    for _ = 1 to n do
      let connected, h, logq = descend_detailed ctx sc rng ~detail:true ~pos st in
      if not (Hashtbl.mem seen h) then Hashtbl.add seen h (logq, connected)
    done;
    Hashtbl.fold
      (fun _ (logq, connected) acc ->
        if connected then acc +. ht_weight ~logq ~n else acc)
      seen 0.

(* One deferred stratified-sampling task: a deleted (or leftover) node
   whose [n] DP descents from [st] at layer [pos] contribute
   [factor * R^_n] to the estimate. Tasks are recorded in consumption
   order during construction and executed afterwards — possibly on a
   domain pool, since each node's descent is independent: the frontier
   state is a sufficient statistic and nothing in the construction
   depends on descent outcomes. Each task owns its [Prng] stream, split
   from the construction generator at enqueue time, so the contribution
   vector is bit-identical however many domains execute it. *)
type descent_task = {
  t_pos : int;
  t_st : F.state;
  t_n : int;
  t_factor : float;
  t_rng : Prng.t;
}

(* [`Auto] orders edges by multi-source BFS from the terminals: each
   terminal's incident edges are decided as early as possible, which is
   what lets [pc]/[pd] accumulate quickly (and hence Theorem 1 cut the
   sample budget). *)
let resolve_order cfg g ~terminals =
  match cfg.order with
  | `Auto -> O.order_edges (O.Bfs_from terminals) g
  | `Strategy s -> O.order_edges s g
  | `Explicit o -> o

(* The trivial answers every entry point shares: k < 2 connects by
   definition; an isolated terminal or terminals in different components
   of the all-present graph can never connect. *)
let trivial_of cfg co g ~terminals =
  if List.length terminals < 2 then begin
    Obs.incr co "trivial";
    Some (trivial_result cfg 1.)
  end
  else if List.exists (fun t -> Ugraph.degree g t = 0) terminals then begin
    Obs.incr co "trivial";
    Some (trivial_result cfg 0.)
  end
  else if
    not
      (Graphalgo.Connectivity.terminals_connected g
         ~present:(Array.make (Ugraph.n_edges g) true)
         terminals)
  then begin
    Obs.incr co "trivial";
    Some (trivial_result cfg 0.)
  end
  else None

(* What one construction run established, independent of how the
   deleted / leftover mass is then sampled. *)
type construction = {
  c_pc : Xprob.t;
  c_pd : Xprob.t;
  c_layers : int;
  c_max_width : int;
  c_peak_state_words : int;
  c_deleted_nodes : int;
  c_stop : stop_reason;
  c_s_reduced : int;
}

(* The layer-by-layer S2BDD construction (Section 4.3), parameterised
   over [consume]: what happens to a node deleted at a saturated layer
   or left over after an early abort. The fixed-budget estimator
   enqueues descent tasks with randomised-rounding allocations; the
   adaptive planner records each node as a sampling stratum. [consume]
   receives the Theorem-1 budget [s_cur] current at consumption time,
   the descent layer [pos], the node's frontier state and its mass —
   and is responsible for any draws it makes on [rng] (the fixed
   estimator's allocation draws stay on the construction stream, so its
   stream consumption is bit-identical to the pre-refactor code). *)
let construct ~obs ~co ~trace ~cfg ~ctx ~rng g ~consume =
  let m = F.n_positions ctx in
  let key_fn = if cfg.merge_flags then F.key_flags else F.key_exact in
  let pc = ref Xprob.zero and pd = ref Xprob.zero in
  let s_cur = ref cfg.samples in
  let deleted_nodes = ref 0 in
  let max_width = ref 1 in
  let peak_state_words = ref 0 in
  let stagnant = ref 0 in
  let stop = ref Completed in
  let work = ref 0 in
  let merges = ref 0 in
  let deleted_mass = ref Xprob.zero in
  let update_s_cur () =
    s_cur :=
      Samplesize.reduced ~s:cfg.samples
        ~pc:(Xprob.to_float_approx !pc)
        ~pd:(Xprob.to_float_approx !pd)
  in
  let current = ref (F.Key_table.create 16) in
  F.Key_table.replace !current (key_fn F.initial) (F.initial, ref Xprob.one);
    (* Remaining-degree table, decremented as each edge is processed so
     the deletion heuristic reads d values in O(state size). *)
  let rem = Array.init (Ugraph.n_vertices g) (Ugraph.degree g) in
  let pos = ref 0 in
  let t_build = Obs.now obs in
  let t_construction = Trace.now trace in
  while !stop = Completed && !pos < m && F.Key_table.length !current > 0 do
    let t_layer = Trace.now trace in
    let deleted_before = !deleted_nodes in
    let e = F.edge_at ctx !pos in
    let resolved_before =
      Xprob.to_float_approx !pc +. Xprob.to_float_approx !pd
    in
    let next = F.Key_table.create (2 * F.Key_table.length !current) in
    let expand key (st, pn) =
      work := !work + (2 * (4 + Array.length key));
      let branch exists weight =
        if weight > 0. then begin
          let p' = Xprob.scale weight !pn in
          match F.step ctx ~eager:cfg.eager ~pos:!pos st ~exists with
          | F.Sink1 -> pc := Xprob.add !pc p'
          | F.Sink0 -> pd := Xprob.add !pd p'
          | F.Live st' -> (
            let key = key_fn st' in
            match F.Key_table.find_opt next key with
            | Some (_, acc) ->
              incr merges;
              acc := Xprob.add !acc p'
            | None -> F.Key_table.replace next key (st', ref p'))
        end
      in
      branch true e.Ugraph.p;
      branch false (1. -. e.Ugraph.p)
    in
    F.Key_table.iter expand !current;
    rem.(e.Ugraph.u) <- rem.(e.Ugraph.u) - 1;
    if e.Ugraph.v <> e.Ugraph.u then rem.(e.Ugraph.v) <- rem.(e.Ugraph.v) - 1;
    let width = F.Key_table.length next in
    if width > !max_width then max_width := width;
    update_s_cur ();
    (* Deleting procedure: keep the top-w nodes by priority, sample
       the rest right away (their states are discarded after). *)
    let saturated = width > cfg.width in
    if saturated then begin
      let nodes = Array.make width (F.initial, Xprob.zero, 0.) in
      let i = ref 0 in
      F.Key_table.iter
        (fun _ (st, pn) ->
          let prio =
            match cfg.heuristic with
            | Paper_heuristic ->
              F.heuristic_log2 ctx ~rem st ~log2_pn:(Xprob.log2 !pn)
            | Random_deletion -> Prng.float rng
          in
          nodes.(!i) <- (st, !pn, prio);
          incr i)
        next;
      Array.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) nodes;
      F.Key_table.reset next;
      for j = 0 to cfg.width - 1 do
        let st, pn, _ = nodes.(j) in
        F.Key_table.replace next (key_fn st) (st, ref pn)
      done;
      for j = cfg.width to width - 1 do
        let st, pn, _ = nodes.(j) in
        incr deleted_nodes;
        deleted_mass := Xprob.add !deleted_mass pn;
        consume ~s_cur:!s_cur ~pos:(!pos + 1) st pn
      done
    end;
    let layer_words =
      F.Key_table.fold
        (fun key _ acc -> acc + Array.length key + 8)
        next 0
    in
    if layer_words > !peak_state_words then peak_state_words := layer_words;
    current := next;
    incr pos;
    (* Stagnation abort: saturated layers that no longer move the
       bounds mean further construction cannot pay for itself. *)
    let resolved_after =
      Xprob.to_float_approx !pc +. Xprob.to_float_approx !pd
    in
    let gain = resolved_after -. resolved_before in
    (* Per-layer trajectory: pre-deletion width and the resolved-mass
       bounds after the layer (bounded series; see Obs.series), plus
       the width distribution (histogram — the tail is what saturates
       the deletion heuristic). *)
    Obs.series co "width" (float_of_int width);
    Obs.hist co "hist.layer_width" width;
    Obs.series co "pc" (Xprob.to_float_approx !pc);
    Obs.series co "pd" (Xprob.to_float_approx !pd);
    if Trace.enabled trace then begin
      Trace.complete trace ~ts:t_layer "layer"
        ~args:
          [
            ("layer", Int !pos);
            ("width", Int width);
            ("pc", Float (Xprob.to_float_approx !pc));
            ("pd", Float (Xprob.to_float_approx !pd));
            ("deleted", Int (!deleted_nodes - deleted_before));
          ];
      Trace.counter trace "width" (float_of_int width)
    end;
    if saturated && gain < cfg.min_progress *. (1. -. resolved_before) then begin
      incr stagnant;
      if !stagnant >= cfg.patience then stop := Stagnated
    end
    else stagnant := 0;
    (* Hard cap on construction effort: wide-frontier graphs whose
       bounds keep crawling would otherwise dominate the run without
       paying for themselves (the remaining mass falls back to
       stratified sampling, which stays unbiased). *)
    if !work > cfg.max_work then stop := Work_capped;
    (* Convergence: when the live mass still undecided would receive
       less than one descent under the current Theorem-1 budget,
       further layers cannot reduce the sampling cost any more. Only
       applies once deletion has made the run inexact anyway —
       otherwise finishing yields the exact answer. *)
    if !stop = Completed && !deleted_nodes > 0 && F.Key_table.length !current > 0
    then begin
      let live =
        F.Key_table.fold (fun _ (_, pn) acc -> Xprob.add acc !pn) !current
          Xprob.zero
      in
      if
        float_of_int (max 1 !s_cur) *. Xprob.to_float_approx live < 1.0
      then stop := Converged
    end
  done;
  update_s_cur ();
  if Trace.enabled trace then
    Trace.complete trace ~ts:t_construction "construction"
      ~args:
        [
          ("stop", Str (stop_reason_name !stop));
          ("layers", Int !pos);
          ("edges", Int m);
          ("pc", Float (Xprob.to_float_approx !pc));
          ("pd", Float (Xprob.to_float_approx !pd));
          ("s_reduced", Int !s_cur);
          ("deleted", Int !deleted_nodes);
        ];
  (* Leftover live nodes (early abort): each becomes its own sampling
     stratum, exactly like a deleted node. *)
  if F.Key_table.length !current > 0 then begin
    if !pos >= m then
      invalid_arg "S2bdd.estimate: live states after the final layer";
    F.Key_table.iter
      (fun _ (st, pn) -> consume ~s_cur:!s_cur ~pos:!pos st !pn)
      !current
  end;
  Obs.record_span co "build" (Obs.now obs -. t_build);
  Obs.add co "layers" !pos;
  Obs.add co "merges" !merges;
  Obs.add co "work" !work;
  Obs.add co "deleted_nodes" !deleted_nodes;
  Obs.gauge_max co "max_width" (float_of_int !max_width);
  Obs.gauge_max co "peak_state_words" (float_of_int !peak_state_words);
  Obs.gauge co "s_reduced" (float_of_int !s_cur);
  Obs.text co "stop" (stop_reason_name !stop);
  Obs.incr co ("stop_" ^ stop_reason_name !stop);
  {
    c_pc = !pc;
    c_pd = !pd;
    c_layers = !pos;
    c_max_width = !max_width;
    c_peak_state_words = !peak_state_words;
    c_deleted_nodes = !deleted_nodes;
    c_stop = !stop;
    c_s_reduced = !s_cur;
  }

let estimate ?pool ?(obs = Obs.disabled) ?(trace = Trace.disabled)
    ?(config = default_config) g ~terminals =
  Ugraph.validate_terminals g terminals;
  let cfg = config in
  if cfg.samples <= 0 then invalid_arg "S2bdd.estimate: samples <= 0";
  if cfg.width <= 0 then invalid_arg "S2bdd.estimate: width <= 0";
  let co = Obs.sub obs "construction" in
  match trivial_of cfg co g ~terminals with
  | Some r -> r
  | None ->
    let order = resolve_order cfg g ~terminals in
    let ctx = F.make g ~order ~terminals in
    let rng = Prng.create cfg.seed in
    let tasks = ref [] in
    let samples_drawn = ref 0 in
    let sampled_nodes = ref 0 in
    (* Consuming a node enqueues its descent task. Nodes with a
       meaningful share of the budget use the textbook stratified
       estimator (deterministic allocation, contribution [p_n * R^_n]);
       the long tail of tiny nodes uses randomised rounding with
       contribution [(N_n / s') * R^_n], whose expectation telescopes
       to [p_n * R_n] even when [N_n = 0]. Both branches are exactly
       unbiased; the first avoids the allocation (rounding) variance
       where it would matter. Allocation draws stay on the
       construction stream; descent draws move to the task's split
       stream. *)
    let consume ~s_cur ~pos st pn =
      let s_eff = max 1 s_cur in
      let x = float_of_int s_eff *. Xprob.to_float_approx pn in
      let enqueue n factor =
        tasks :=
          { t_pos = pos; t_st = st; t_n = n; t_factor = factor;
            t_rng = Prng.split rng }
          :: !tasks;
        samples_drawn := !samples_drawn + n;
        incr sampled_nodes
      in
      if x >= 0.5 then
        enqueue (max 1 (int_of_float (Float.round x))) (Xprob.to_float_approx pn)
      else begin
        let n = alloc rng x in
        if n > 0 then enqueue n (float_of_int n /. float_of_int s_eff)
      end
    in
    let gc0 = gc_begin co in
    let c = construct ~obs ~co ~trace ~cfg ~ctx ~rng g ~consume in
    Obs.record_gc co "gc" (gc_end gc0);
    Obs.add co "sampled_nodes" !sampled_nodes;
    (* Stratified descents: every consumed node is an independent task;
       run them on the pool (or inline) and fold the per-task
       contributions in consumption order. *)
    let task_arr = Array.of_list (List.rev !tasks) in
    let so = Obs.sub obs "sampling" in
    Obs.text so "estimator"
      (match cfg.estimator with Monte_carlo -> "mc" | Horvitz_thompson -> "ht");
    Obs.add so "descent_tasks" (Array.length task_arr);
    Obs.add so "samples" !samples_drawn;
    let lanes = Par.run_lanes ?pool () in
    let contribs =
      Par.run ?pool (Array.length task_arr) (fun i ->
          let tr = Trace.task trace ~lane:(i mod lanes) in
          let ts = Trace.now tr in
          let t0 = Obs.now obs in
          let g0 = gc_begin so in
          let t = task_arr.(i) in
          let sc = Kernel.scratch () in
          let c =
            t.t_factor
            *. node_r_hat ctx cfg sc t.t_rng ~pos:t.t_pos t.t_st ~n:t.t_n
          in
          Trace.complete tr ~ts "descent"
            ~args:[ ("task", Int i); ("n", Int t.t_n) ];
          (c, Obs.now obs -. t0, gc_end g0, tr))
    in
    let descent_secs = ref 0. in
    let contribution =
      Array.fold_left
        (fun acc (c, dt, gd, tr) ->
          Obs.record_span so "descent" dt;
          Obs.hist_seconds so "hist.descent_ns" dt;
          Obs.record_gc so "gc" gd;
          descent_secs := !descent_secs +. dt;
          Trace.merge ~into:trace tr;
          acc +. c)
        0. contribs
    in
    (* Kernel time over the descent tasks: summed per-task wall time
       (so the derived samples/sec reads as per-domain throughput),
       recorded as a monotonic-timer span; the samples_per_sec figure
       itself is derived at report time (Statsdoc), never stored. *)
    Obs.add so "kernel.samples" !samples_drawn;
    Obs.record_span so "kernel.elapsed" !descent_secs;
    let lower = Xprob.to_float_approx c.c_pc in
    (* [pc] and [pd] are each correct to an ulp, but the float rounding
       of [1 - pd] is independent of [pc]'s, so on a fully resolved run
       (pc + pd = 1) the two float bounds can cross by an ulp. Keep the
       interval well-formed: [lower <= upper] is part of the result's
       contract. *)
    let upper = Float.max lower (1. -. Xprob.to_float_approx c.c_pd) in
    let exact = c.c_deleted_nodes = 0 && c.c_stop = Completed in
    (* The stratified contribution is an unbiased estimate of the mass
       between the proven bounds, but a realisation can overshoot them
       (even past 1) under sampling noise. Clamp at the source so every
       caller — Reliability, bench sections, report.subresults — sees a
       value inside [lower, upper]; the raw contribution stays readable
       through Obs. *)
    let raw = lower +. contribution in
    let value =
      if exact then lower
      else begin
        Obs.gauge so "contribution" contribution;
        if raw < lower || raw > upper then begin
          Obs.incr so "value_clamped";
          Obs.gauge so "raw_value" raw;
          Float.max lower (Float.min upper raw)
        end
        else raw
      end
    in
    {
      value;
      lower;
      upper;
      pc = c.c_pc;
      pd = c.c_pd;
      exact;
      s_given = cfg.samples;
      s_reduced = c.c_s_reduced;
      samples_drawn = !samples_drawn;
      sampled_nodes = !sampled_nodes;
      deleted_nodes = c.c_deleted_nodes;
      layers_built = c.c_layers;
      max_width = c.c_max_width;
      peak_state_words = c.c_peak_state_words;
      aborted = c.c_stop <> Completed;
      stop = c.c_stop;
    }

(* ------------------------------------------------------------------ *)
(* Adaptive sampling plans                                             *)
(* ------------------------------------------------------------------ *)

(* One sampling stratum of an adaptive plan: a deleted (or leftover)
   node, its mass, and its own descent stream. [sm_drawn]/[sm_hits]
   accumulate across rounds; because the stream is private and advanced
   sequentially, the counters after a total of [n] draws do not depend
   on how the rounds partitioned [n] — nor on which domain ran them. *)
type stratum = {
  sm_pos : int;
  sm_state : F.state;
  sm_mass : float;
  sm_rng : Prng.t;
  mutable sm_drawn : int;
  mutable sm_hits : int;
}

type plan = {
  p_ctx : F.ctx;
  p_construction : construction;
  p_strata : stratum array;
}

type prepared =
  | Exact of result  (* trivial, or construction resolved every node *)
  | Sampling of plan

let construction_result cfg c ~value ~samples_drawn ~sampled_nodes =
  let lower = Xprob.to_float_approx c.c_pc in
  let upper = Float.max lower (1. -. Xprob.to_float_approx c.c_pd) in
  {
    value = Float.max lower (Float.min upper value);
    lower;
    upper;
    pc = c.c_pc;
    pd = c.c_pd;
    exact = c.c_deleted_nodes = 0 && c.c_stop = Completed;
    s_given = cfg.samples;
    s_reduced = c.c_s_reduced;
    samples_drawn;
    sampled_nodes;
    deleted_nodes = c.c_deleted_nodes;
    layers_built = c.c_layers;
    max_width = c.c_max_width;
    peak_state_words = c.c_peak_state_words;
    aborted = c.c_stop <> Completed;
    stop = c.c_stop;
  }

let prepare ?(obs = Obs.disabled) ?(trace = Trace.disabled)
    ?(config = default_config) g ~terminals =
  Ugraph.validate_terminals g terminals;
  let cfg = config in
  if cfg.samples <= 0 then invalid_arg "S2bdd.prepare: samples <= 0";
  if cfg.width <= 0 then invalid_arg "S2bdd.prepare: width <= 0";
  let co = Obs.sub obs "construction" in
  match trivial_of cfg co g ~terminals with
  | Some r -> Exact r
  | None ->
    let order = resolve_order cfg g ~terminals in
    let ctx = F.make g ~order ~terminals in
    let rng = Prng.create cfg.seed in
    let strata = ref [] in
    (* Every consumed node becomes a stratum with its own split stream;
       no allocation draws happen here — the adaptive driver decides
       budgets between rounds (Neyman allocation), so the plan only has
       to remember mass and position. *)
    let consume ~s_cur:_ ~pos st pn =
      strata :=
        {
          sm_pos = pos;
          sm_state = st;
          sm_mass = Xprob.to_float_approx pn;
          sm_rng = Prng.split rng;
          sm_drawn = 0;
          sm_hits = 0;
        }
        :: !strata
    in
    let gc0 = gc_begin co in
    let c = construct ~obs ~co ~trace ~cfg ~ctx ~rng g ~consume in
    Obs.record_gc co "gc" (gc_end gc0);
    let strata = Array.of_list (List.rev !strata) in
    Obs.add co "sampled_nodes" (Array.length strata);
    if Array.length strata = 0 then
      Exact (construction_result cfg c ~value:(Xprob.to_float_approx c.c_pc)
               ~samples_drawn:0 ~sampled_nodes:0)
    else Sampling { p_ctx = ctx; p_construction = c; p_strata = strata }

let plan_bounds p =
  let lower = Xprob.to_float_approx p.p_construction.c_pc in
  (lower, Float.max lower (1. -. Xprob.to_float_approx p.p_construction.c_pd))

let n_strata p = Array.length p.p_strata
let stratum_mass p i = p.p_strata.(i).sm_mass
let stratum_drawn p i = p.p_strata.(i).sm_drawn
let stratum_hits p i = p.p_strata.(i).sm_hits

(* Draw [n] more Monte-Carlo descents for stratum [i]. Strata are
   independent (private stream, private counters, per-call scratch), so
   distinct strata may be drawn concurrently; the {e same} stratum must
   not. Adaptive sampling always descends with the plain MC indicator —
   the HT within-node dedup needs the final per-node total up front,
   which an adaptive budget does not know. *)
let draw_stratum p i ~n =
  if n <= 0 then invalid_arg "S2bdd.draw_stratum: n <= 0";
  let s = p.p_strata.(i) in
  let sc = Kernel.scratch () in
  let hits = ref 0 in
  for _ = 1 to n do
    let connected, _, _ =
      descend_detailed p.p_ctx sc s.sm_rng ~detail:false ~pos:s.sm_pos
        s.sm_state
    in
    if connected then incr hits
  done;
  s.sm_drawn <- s.sm_drawn + n;
  s.sm_hits <- s.sm_hits + !hits

(* The plan's current stratified point estimate packaged as a [result]
   (same clamping contract as [estimate]); the adaptive driver owns the
   confidence interval, this owns the bookkeeping fields. *)
let plan_result cfg p =
  let c = p.p_construction in
  let lower = Xprob.to_float_approx c.c_pc in
  let contribution =
    Array.fold_left
      (fun acc s ->
        if s.sm_drawn > 0 then
          acc
          +. s.sm_mass *. float_of_int s.sm_hits /. float_of_int s.sm_drawn
        else acc)
      0. p.p_strata
  in
  let drawn = Array.fold_left (fun acc s -> acc + s.sm_drawn) 0 p.p_strata in
  let sampled =
    Array.fold_left
      (fun acc s -> if s.sm_drawn > 0 then acc + 1 else acc)
      0 p.p_strata
  in
  construction_result cfg p.p_construction ~value:(lower +. contribution)
    ~samples_drawn:drawn ~sampled_nodes:sampled
