module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let escape_into b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  (* Deterministic float text: the shortest of %.12g / %.17g that
     round-trips, with a trailing ".0" forced onto integral values so
     the token stays a JSON float. *)
  let float_repr x =
    let s = Printf.sprintf "%.12g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s
    else s ^ ".0"

  let to_string ?(pretty = false) v =
    let b = Buffer.create 256 in
    let pad level = if pretty then Buffer.add_string b (String.make (2 * level) ' ') in
    let nl () = if pretty then Buffer.add_char b '\n' in
    let colon = if pretty then ": " else ":" in
    let rec emit level v =
      match v with
      | Null -> Buffer.add_string b "null"
      | Bool v -> Buffer.add_string b (if v then "true" else "false")
      | Int i -> Buffer.add_string b (string_of_int i)
      | Float x ->
          if Float.is_finite x then Buffer.add_string b (float_repr x)
          else Buffer.add_string b "null"
      | Str s ->
          Buffer.add_char b '"';
          escape_into b s;
          Buffer.add_char b '"'
      | List [] -> Buffer.add_string b "[]"
      | List xs ->
          Buffer.add_char b '[';
          nl ();
          List.iteri
            (fun i x ->
              if i > 0 then (Buffer.add_char b ','; nl ());
              pad (level + 1);
              emit (level + 1) x)
            xs;
          nl ();
          pad level;
          Buffer.add_char b ']'
      | Obj [] -> Buffer.add_string b "{}"
      | Obj kvs ->
          Buffer.add_char b '{';
          nl ();
          List.iteri
            (fun i (k, x) ->
              if i > 0 then (Buffer.add_char b ','; nl ());
              pad (level + 1);
              Buffer.add_char b '"';
              escape_into b k;
              Buffer.add_char b '"';
              Buffer.add_string b colon;
              emit (level + 1) x)
            kvs;
          nl ();
          pad level;
          Buffer.add_char b '}'
    in
    emit 0 v;
    Buffer.contents b

  let of_string_exn s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then (
        pos := !pos + l;
        v)
      else fail "invalid literal"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents b
        else if c = '\\' then (
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let cp =
                match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                | Some cp -> cp
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* BMP-only UTF-8 encoding; enough for our own output. *)
              if cp < 0x80 then Buffer.add_char b (Char.chr cp)
              else if cp < 0x800 then (
                Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
              else (
                Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
          | _ -> fail "unknown escape");
          go ())
        else (
          Buffer.add_char b c;
          go ())
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numeric c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numeric s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then (
            incr pos;
            Obj [])
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  fields ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            fields []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then (
            incr pos;
            List [])
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elems []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* Bounded series: when full, keep every other recorded point and
   double the stride, so long trajectories decimate deterministically
   to at most [series_cap] points. *)
let series_cap = 512

type series = {
  mutable values : float array;
  mutable len : int;
  mutable every : int;   (* one recorded point per [every] appends *)
  mutable pending : int; (* appends to skip before the next record *)
}

type counter_r = { mutable c : int }
type gauge_r = { mutable g : float }
type timer_r = { mutable total : float; mutable count : int }
type text_r = { mutable txt : string }

type cell =
  | Counter of counter_r
  | Gauge of gauge_r
  | Timer of timer_r
  | Text of text_r
  | Series of series
  | Hist of Metrics.Histogram.t

type t = {
  on : bool;
  prefix : string;
  cells : (string, cell) Hashtbl.t;
  clock : unit -> float;
}

let zero_clock () = 0.

let disabled = { on = false; prefix = ""; cells = Hashtbl.create 1; clock = zero_clock }

let fake_clock_requested () =
  match Sys.getenv_opt "NETREL_FAKE_CLOCK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* CLOCK_MONOTONIC via the bechamel stub: immune to wall-clock steps,
   so durations (and the throughput figures derived from them at report
   time) can never go negative or get skewed by NTP adjustments. *)
let monotonic_clock () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let default_clock () =
  if fake_clock_requested () then zero_clock else monotonic_clock

let create ?clock () =
  let clock = match clock with Some c -> c | None -> default_clock () in
  { on = true; prefix = ""; cells = Hashtbl.create 64; clock }

let enabled t = t.on
let now t = t.clock ()

let key t name = if t.prefix = "" then name else t.prefix ^ "." ^ name

let sub t p = if (not t.on) || p = "" then t else { t with prefix = key t p }

let fresh_like t =
  if t.on then { t with prefix = ""; cells = Hashtbl.create 64 } else disabled

let kind_clash k = invalid_arg ("Obs: key bound to a different cell kind: " ^ k)

let counter_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Counter r) -> r
  | Some _ -> kind_clash k
  | None ->
      let r = { c = 0 } in
      Hashtbl.add t.cells k (Counter r);
      r

let gauge_cell t k v0 =
  match Hashtbl.find_opt t.cells k with
  | Some (Gauge r) -> r
  | Some _ -> kind_clash k
  | None ->
      let r = { g = v0 } in
      Hashtbl.add t.cells k (Gauge r);
      r

let timer_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Timer r) -> r
  | Some _ -> kind_clash k
  | None ->
      let r = { total = 0.; count = 0 } in
      Hashtbl.add t.cells k (Timer r);
      r

let text_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Text r) -> r
  | Some _ -> kind_clash k
  | None ->
      let r = { txt = "" } in
      Hashtbl.add t.cells k (Text r);
      r

let series_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Series s) -> s
  | Some _ -> kind_clash k
  | None ->
      let s = { values = Array.make series_cap 0.; len = 0; every = 1; pending = 0 } in
      Hashtbl.add t.cells k (Series s);
      s

let hist_cell t k =
  match Hashtbl.find_opt t.cells k with
  | Some (Hist h) -> h
  | Some _ -> kind_clash k
  | None ->
      let h = Metrics.Histogram.create () in
      Hashtbl.add t.cells k (Hist h);
      h

let add t name d =
  if t.on then (
    let r = counter_cell t (key t name) in
    r.c <- r.c + d)

let incr t name = add t name 1

let gauge t name v =
  if t.on then (
    let r = gauge_cell t (key t name) v in
    r.g <- v)

let gauge_max t name v =
  if t.on then (
    let r = gauge_cell t (key t name) v in
    if v > r.g then r.g <- v)

let text t name s =
  if t.on then (
    let r = text_cell t (key t name) in
    r.txt <- s)

let record_span t name dt =
  if t.on then (
    let r = timer_cell t (key t name) in
    r.total <- r.total +. dt;
    r.count <- r.count + 1)

let time t name f =
  if not t.on then f ()
  else
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () -> record_span t name (Float.max 0. (t.clock () -. t0)))
      f

let series_push s v =
  if s.pending > 0 then s.pending <- s.pending - 1
  else begin
    if s.len = Array.length s.values then begin
      let half = s.len / 2 in
      for i = 0 to half - 1 do
        s.values.(i) <- s.values.(2 * i)
      done;
      s.len <- half;
      s.every <- s.every * 2
    end;
    s.values.(s.len) <- v;
    s.len <- s.len + 1;
    s.pending <- s.every - 1
  end

let series t name v = if t.on then series_push (series_cell t (key t name)) v

let hist t name v =
  if t.on then Metrics.Histogram.record (hist_cell t (key t name)) v

let ns_of_seconds dt =
  if dt <= 0. then 0 else int_of_float ((dt *. 1e9) +. 0.5)

let hist_seconds t name dt = hist t name (ns_of_seconds dt)

let hist_merge t name h =
  if t.on then Metrics.Histogram.merge ~into:(hist_cell t (key t name)) h

let counter_value t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Counter r) -> r.c
  | _ -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Gauge r) -> r.g
  | _ -> 0.

let text_value t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Text r) -> r.txt
  | _ -> ""

let timer_seconds t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Timer r) -> r.total
  | _ -> 0.

let timer_count t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Timer r) -> r.count
  | _ -> 0

let series_values t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Series s) -> Array.sub s.values 0 s.len
  | _ -> [||]

let hist_count t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Hist h) -> Metrics.Histogram.count h
  | _ -> 0

let hist_max t name =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Hist h) -> Metrics.Histogram.max_value h
  | _ -> 0

let hist_quantile t name q =
  match Hashtbl.find_opt t.cells (key t name) with
  | Some (Hist h) -> Metrics.Histogram.quantile h q
  | _ -> 0

let mem t name = Hashtbl.mem t.cells (key t name)

let merge ~into src =
  if into.on && src.on then begin
    let keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) src.cells []
      |> List.sort String.compare
    in
    List.iter
      (fun k ->
        match Hashtbl.find src.cells k with
        | Counter r -> add into k r.c
        | Gauge r -> gauge_max into k r.g
        | Text r -> text into k r.txt
        | Timer r ->
            let d = timer_cell into (key into k) in
            d.total <- d.total +. r.total;
            d.count <- d.count + r.count
        | Series s ->
            let d = series_cell into (key into k) in
            for i = 0 to s.len - 1 do
              series_push d s.values.(i)
            done
        | Hist h ->
            Metrics.Histogram.merge ~into:(hist_cell into (key into k)) h)
      keys
  end

(* GC accounting.  Word and collection deltas accumulate as counters
   (so per-task deltas add up under ordered reduction exactly like
   spans do); the heap high-water mark is a max-gauge.  Under the fake
   clock the cells are still created but pinned to zero — the document
   keeps its shape while staying byte-stable and jobs-invariant. *)

let gc_counters_live () = not (fake_clock_requested ())

let record_gc t name (d : Metrics.Gcstat.delta) =
  if t.on then begin
    add t (name ^ ".minor_words") d.minor_words;
    add t (name ^ ".promoted_words") d.promoted_words;
    add t (name ^ ".major_words") d.major_words;
    add t (name ^ ".minor_collections") d.minor_collections;
    add t (name ^ ".major_collections") d.major_collections;
    add t (name ^ ".compactions") d.compactions;
    gauge_max t (name ^ ".top_heap_words") (float_of_int d.top_heap_words)
  end

let gc_phase t ?emit name f =
  let live = (t.on || emit <> None) && gc_counters_live () in
  if not live then begin
    record_gc t name Metrics.Gcstat.zero;
    f ()
  end
  else
    let before = Metrics.Gcstat.snapshot () in
    Fun.protect
      ~finally:(fun () ->
        let d =
          Metrics.Gcstat.delta ~before ~after:(Metrics.Gcstat.snapshot ())
        in
        record_gc t name d;
        match emit with
        | None -> ()
        | Some emit ->
            emit (name ^ ".minor_words") (float_of_int d.minor_words);
            emit (name ^ ".major_words") (float_of_int d.major_words);
            emit (name ^ ".top_heap_words") (float_of_int d.top_heap_words))
      f

let cell_json = function
  | Counter r -> Json.Int r.c
  | Gauge r -> Json.Float r.g
  | Text r -> Json.Str r.txt
  | Timer r -> Json.Obj [ ("seconds", Json.Float r.total); ("count", Json.Int r.count) ]
  | Hist h ->
      let module H = Metrics.Histogram in
      Json.Obj
        [
          ("count", Json.Int (H.count h));
          ("max", Json.Int (H.max_value h));
          ("p50", Json.Int (H.quantile h 0.5));
          ("p90", Json.Int (H.quantile h 0.9));
          ("p99", Json.Int (H.quantile h 0.99));
          ( "buckets",
            Json.List
              (List.map
                 (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
                 (H.nonzero_buckets h)) );
        ]
  | Series s ->
      Json.Obj
        [
          ("every", Json.Int s.every);
          ("values", Json.List (List.init s.len (fun i -> Json.Float s.values.(i))));
        ]

let to_json t =
  let entries =
    Hashtbl.fold (fun k c acc -> (String.split_on_char '.' k, c) :: acc) t.cells []
    |> List.sort (fun (a, _) (b, _) -> List.compare String.compare a b)
  in
  (* Group sorted dotted paths into a nested object tree. *)
  let rec build entries =
    let rec group = function
      | [] -> []
      | ([], _) :: tl -> group tl (* empty segment: drop *)
      | ((head :: _), _) :: _ as all ->
          let same, others =
            List.partition (fun (p, _) -> match p with h :: _ -> h = head | [] -> false) all
          in
          let inner = List.map (fun (p, c) -> (List.tl p, c)) same in
          (head, inner) :: group others
    in
    Json.Obj
      (List.map
         (fun (head, inner) ->
           let leaves, deeper = List.partition (fun (p, _) -> p = []) inner in
           match (leaves, deeper) with
           | [ (_, c) ], [] -> (head, cell_json c)
           | [], _ -> (head, build deeper)
           | (_, c) :: _, _ -> (
               (* key is both a leaf and a prefix: leaf goes under "value" *)
               match build deeper with
               | Json.Obj fields -> (head, Json.Obj (("value", cell_json c) :: fields))
               | other -> (head, other))
         )
         (group entries))
  in
  build entries
