let reduction_factor ~pc ~pd =
  if pc < 0. || pd < 0. || pc +. pd > 1. +. 1e-9 then
    invalid_arg (Printf.sprintf "Samplesize: invalid bounds pc=%g pd=%g" pc pd);
  let raw =
    if pc = 0. && pd = 0. then 1.
    else if pc = 0. then 1. -. pd
    else if pd = 0. then 1. -. pc
    else if pc = pd then 1. -. (4. *. pc *. (1. -. pc))
    else if pc < pd then 1. -. (4. *. pc *. (1. -. pd))
    else
      1.
      -. Float.min
           (4. *. pc *. (1. -. pc))
           (4. *. ((pc *. (1. -. pd)) +. (pd -. pc)))
  in
  Float.max 0. (Float.min 1. raw)

let reduced ~s ~pc ~pd =
  if s < 0 then invalid_arg "Samplesize.reduced: negative s";
  int_of_float (Float.floor (float_of_int s *. reduction_factor ~pc ~pd))
