let () =
  Alcotest.run "netrel"
    [
      Test_xprob.suite;
      Test_prng.suite;
      Test_dsu.suite;
      Test_ugraph.suite;
      Test_graphalgo.suite;
      Test_bddbase.suite;
      Test_preprocess.suite;
      Test_core.suite;
      Test_workload.suite;
      Test_fstate_extra.suite;
      Test_factoring.suite;
      Test_reach.suite;
      Test_apps.suite;
      Test_polynomial.suite;
      Test_bounds_konect.suite;
      Test_integration.suite;
      Test_par.suite;
      Test_obs.suite;
      Test_trace.suite;
      Test_check.suite;
      Test_kernel.suite;
      Test_kernel_bitsliced.suite;
      Test_stats.suite;
      Test_adaptive.suite;
    ]
