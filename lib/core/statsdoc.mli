(** Assembly of the one-JSON-document-per-run structured stats report
    behind the CLI's [--stats json] flag (and bench's BENCH_*.json
    per-phase breakdowns).

    The document's top level is fixed: [netrel] (emitter identity and
    schema version), [run] (what was asked), [preprocess],
    [construction], [sampling], [adaptive] and [par] (the per-phase accounts
    recorded into an {!Obs.t} during the run — empty objects for phases
    that did not execute), [gc] (the whole-run [Gc.quick_stat] delta,
    schema 2), and [result] (what came out). Keys inside
    the phase objects are sorted ({!Obs.to_json}), so for a fixed seed
    and a deterministic clock the document is byte-stable.

    Schema history: v2 added the top-level [gc] section, per-phase
    [gc.*] counters and [hist.*] histogram objects inside the phase
    sections, and made [sampling.kernel.samples_per_sec] a report-time
    derivation from the [kernel.elapsed] monotonic timer. *)

type run = {
  command : string;    (** e.g. ["estimate"] or ["bench"] *)
  method_ : string;    (** estimation method name, e.g. ["pro"], ["mc"] *)
  graph : string;      (** dataset abbreviation or file path *)
  terminals : int list;
  seed : int;
  jobs : int;          (** effective domain count *)
  samples : int;
  width : int;
}

val schema_version : int

val required_keys : string list
(** The fixed top-level keys, in emission order: every document
    {!build} produces binds exactly these. *)

val result_of_report : Reliability.report -> Obs.Json.t
(** [result] object for a full-pipeline run: value, bounds, exactness,
    budgets and the subproblem count. *)

val result_of_estimate : Mcsampling.estimate -> Obs.Json.t
(** [result] object for a plain sampler run: value, the 95% Wilson
    [lower]/[upper] bounds ({!Mcsampling.interval} — nonzero width even
    at 0 or [n] hits, unlike the Wald interval [variance_estimate]
    implies), samples, hits, distinct, variance and the chunk count. *)

val result_of_adaptive :
  value:float -> lower:float -> upper:float -> exact:bool ->
  ci_width:float -> target_width:float -> samples_used:int ->
  samples_planned:int -> rounds:int -> stop:string -> Obs.Json.t
(** [result] object for a sequential-stopping run (labelled arguments
    because the adaptive driver lives above this library): the stopped
    point estimate, its realised interval and width against the target,
    the sample account, the round count and the stop reason. *)

val result_value : value:float -> exact:bool -> Obs.Json.t
(** Minimal [result] object (exact BDD / brute force). *)

val build :
  obs:Obs.t -> run:run -> seconds:float -> result:Obs.Json.t -> Obs.Json.t
(** One stats document: phase sections are pulled out of [obs]'s
    rendered tree (absent sections become [{}]), [seconds] is the
    end-to-end wall-clock of the run as measured by the caller on
    [obs]'s clock, and the current {!Par.counters} snapshot is folded
    into the [par] section. *)
