(** The frontier state machine shared by the exact baseline BDD and the
    paper's S2BDD.

    A node of a frontier-based BDD at layer [l] represents an
    intermediate graph (Section 3.1): edges before position [l] are
    fixed existent/non-existent, the rest are uncertain.  The node's
    state is a sufficient statistic of that past: the partition of the
    current frontier vertices into connected components plus, per
    component, the number of terminals attached to it
    (the [c]/[t] attributes of Definition 2; the [d] attribute is
    derivable from the layer context and exposed by
    {!component_uncertain_degrees}).

    Because the state is sufficient for the future, it also drives the
    paper's dynamic-programming sampling: {!descend} completes an
    intermediate graph into a possible graph by sampling the remaining
    edges and stepping this same machine to a sink. *)

type state
(** Canonical frontier state. Equal states are interchangeable: they
    generate identical sub-BDDs. The representation is sparse: only
    {e non-trivial} frontier vertices (in a component spanning two or
    more frontier vertices, or carrying a terminal) are stored; the
    rest are implicit singletons, so state size tracks the active
    cluster boundary rather than the frontier width. *)

type ctx
(** Immutable per-instance context: graph, edge order, frontier plan,
    terminal bookkeeping and per-layer slot maps. *)

val make :
  Ugraph.t -> order:int array -> terminals:int list -> ctx
(** Precompute layer contexts for a graph under an edge order.
    @raise Invalid_argument on an invalid order or terminal set. *)

val n_positions : ctx -> int
val n_terminals : ctx -> int
val edge_at : ctx -> int -> Ugraph.edge
(** The edge processed at a position (layer). *)

val frontier_size_after : ctx -> int -> int
(** Number of frontier vertices after processing a position. *)

val initial : state
(** The empty state before processing position 0 (the BDD root). *)

(** Result of processing one edge decision. *)
type outcome =
  | Sink1          (** all terminals connected: contributes to [pc] *)
  | Sink0          (** terminals disconnected forever: contributes to [pd] *)
  | Live of state  (** still undecided; a node at the next layer *)

val step : ctx -> eager:bool -> pos:int -> state -> exists:bool -> outcome
(** Process the edge at [pos] with the given existence decision on a
    state valid at layer [pos].

    With [eager = true], the extended conditions of Lemmas 4.1–4.2 fire:
    a component holding every terminal sinks to 1 immediately; otherwise
    sinks trigger when departing vertices strand a terminal-bearing
    component.  With [eager = false] (the state-of-the-art baseline
    behaviour), only departure-time resolution is applied.  Both modes
    are exact; eager mode resolves sooner and keeps layers smaller. *)

val key_exact : state -> int array
(** Canonical merge key preserving exact per-component terminal counts
    (baseline BDD node merging). *)

val key_flags : state -> int array
(** Coarser canonical key using only per-component terminal flags —
    the Lemma 4.3 merge criterion (still exact; merges more nodes). *)

val component_count : state -> int

val component_terminals : state -> int array
(** Terminal count per component id. *)

val component_uncertain_degrees : ctx -> pos:int -> state -> int array
(** Per component id: total number of uncertain (position [> pos])
    edge endpoints over the component's frontier vertices — the
    [d_{n,f}] attribute, for a state at layer [pos + 1]. *)

val remaining_degrees : ctx -> pos:int -> int array
(** Per vertex: number of incident edges at positions strictly after
    [pos]. O(|V| log deg); construction loops instead maintain this
    incrementally and hand it to {!heuristic_log2}. *)

val heuristic_log2 : ctx -> rem:int array -> state -> log2_pn:float -> float
(** Priority of a node for the deleting procedure, Equation (10):
    [h(n) = p_n * max_f (t_{n,f} / k, 1 / d_{n,f})] over frontier
    components with [t > 0], computed in log2 to survive tiny [p_n].
    [rem] is the per-vertex remaining-degree table at the state's layer
    (from {!remaining_degrees} or maintained incrementally). States with
    no terminal-bearing frontier component rank lowest at equal [p_n]
    (factor [1 / (2k * (1 + width))]). *)

val descend :
  ctx -> eager:bool -> pos:int -> state ->
  bernoulli:(float -> bool) -> bool
(** Complete the intermediate graph represented by a state at layer
    [pos] into a random possible graph: draws every remaining edge with
    [bernoulli p] and steps to a sink. Returns [true] on [Sink1].
    Unbiased conditional sample given the node.
    @raise Invalid_argument if the machine reaches the end without
    sinking (impossible when every terminal has positive degree and
    [k >= 2], which {!make} enforces). *)

val descend_union :
  ctx ->
  dsu:Dsu.t ->
  detail:bool ->
  pos:int ->
  state ->
  bernoulli:(float -> bool) ->
  bool * int * float
(** Fast equivalent of {!descend}: completes the possible graph by
    sampling every remaining edge and checks terminal connectivity with
    one union–find pass instead of stepping the state machine —
    [O(remaining edges)] per sample, like the plain Monte Carlo
    sampler. Returns [(connected, completion_hash, log_probability)];
    the latter two feed the Horvitz–Thompson estimator and are only
    computed when [detail] is [true] (the empty-stream digest and [0.]
    otherwise — the Monte Carlo estimator skips that work).

    [dsu] must have size at least
    [n_vertices + component_count state]; size [2 * n_vertices] always
    suffices. It is reset on entry.

    This is the retained {e reference} implementation; production
    descents run {!descend_kernel}, which is kept bit-for-bit
    compatible (same draws, same hash, same log-probability, same
    verdict) and checked against this one by [test/test_kernel.ml]. *)

val descend_kernel :
  ctx ->
  scratch:Kernel.t ->
  detail:bool ->
  pos:int ->
  state ->
  bernoulli:(float -> bool) ->
  bool * int * float
(** Kernel fast path for {!descend_union}: draws the completion through
    {!Kernel.draw_sub} (flat position buffer; packed mask words when
    [detail]) and checks connectivity with the early-exit generation-
    stamped union–find — the union loop stops as soon as the required
    components have merged instead of unioning every present edge.
    Bit-identical to {!descend_union} on the same [bernoulli] stream:
    same number of draws in the same order, same completion hash, same
    log-probability, same verdict. [scratch] is re-initialised on
    entry (a shared per-domain scratch from {!Kernel.scratch} is the
    intended argument). *)

module Key_table : Hashtbl.S with type key = int array
(** Hash tables over merge keys (array-content hashing). *)
