(** Reliable-subgraph discovery in the style of Jin, Liu and Aggarwal
    (KDD 2011, cited as [18]): given seed terminals and a reliability
    threshold, grow a small vertex set containing the seeds whose
    induced subgraph still connects them with probability above the
    threshold.

    Greedy top-down: start from the whole graph; repeatedly remove the
    non-seed vertex whose removal hurts the (shared-sample estimated)
    seed reliability the least, while the reliability stays at or above
    [threshold]. The procedure evaluates candidates on one shared
    {!Sampleset} for consistency and speed. *)

type result = {
  vertices : int list;       (** retained vertex set, including seeds *)
  subgraph : Ugraph.t;       (** induced subgraph, renumbered *)
  seed_terminals : int list; (** seeds in the subgraph's numbering *)
  reliability : float;       (** estimated seed reliability in it *)
}

val discover :
  ?engine:Engine.t ->
  ?seed:int ->
  ?samples:int ->
  ?max_rounds:int ->
  Ugraph.t ->
  seeds:int list ->
  threshold:float ->
  result
(** [samples] defaults to 500; [max_rounds] (vertex removals attempted,
    default [n_vertices]) bounds the work. [engine] shares the sample
    set across analyses over the same graph ({!Sampleset.shared}) —
    results are identical with or without it.
    @raise Invalid_argument on invalid seeds or threshold outside
    [[0, 1]]. *)
