(** The existing sampling-based baselines of Section 3.2.2: naive Monte
    Carlo ("Sampling(MC)") and Horvitz–Thompson ("Sampling(HT)", the
    unequal-probability estimator of Jin et al. used by the paper).

    Both sample [s] possible graphs by flipping every edge independently
    and testing terminal connectivity with a reused union–find —
    [O(s * (|V| + |E|))], the complexity quoted in the paper. *)

type estimate = {
  value : float;          (** estimated network reliability *)
  samples_used : int;
  hits : int;             (** samples in which the terminals connect *)
  distinct : int;
      (** distinct possible graphs among the samples (HT only;
          equals [samples_used] for MC) *)
  variance_estimate : float;
      (** plug-in variance: Equation (2) for MC, Equation (8) for HT *)
}

val monte_carlo :
  ?seed:int -> Ugraph.t -> terminals:int list -> samples:int -> estimate
(** Plain Monte Carlo: [R^ = (1/s) * sum_i I(Gp_i, T)].
    @raise Invalid_argument on invalid terminals or [samples <= 0]. *)

val horvitz_thompson :
  ?seed:int -> Ugraph.t -> terminals:int list -> samples:int -> estimate
(** Horvitz–Thompson over the distinct sampled possible graphs:
    [R^ = sum_i I * Pr[Gp_i] / pi_i] with
    [pi_i = 1 - (1 - Pr[Gp_i])^s]. Sampled graphs are deduplicated by a
    63-bit content hash of the edge mask (collisions are negligible and
    only perturb, never bias systematically, the estimate).
    @raise Invalid_argument as for {!monte_carlo}. *)
