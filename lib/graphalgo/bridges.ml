type result = {
  is_bridge : bool array;
  is_articulation : bool array;
}

(* Iterative Tarjan low-link DFS. The explicit stack stores, per frame:
   the vertex, the edge id used to enter it (-1 at a root), and a cursor
   into its incidence list. Low-link propagation to the parent happens at
   frame pop. *)
let run g =
  let n = Ugraph.n_vertices g and m = Ugraph.n_edges g in
  let disc = Array.make n (-1) in
  let low = Array.make n max_int in
  let is_bridge = Array.make m false in
  let is_articulation = Array.make n false in
  let time = ref 0 in
  (* Frame stacks; a DFS path never exceeds n frames. *)
  let st_v = Array.make (n + 1) 0 in
  let st_eid = Array.make (n + 1) (-1) in
  let st_idx = Array.make (n + 1) 0 in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      let root_children = ref 0 in
      let sp = ref 0 in
      let push v eid =
        st_v.(!sp) <- v;
        st_eid.(!sp) <- eid;
        st_idx.(!sp) <- 0;
        incr sp;
        disc.(v) <- !time;
        low.(v) <- !time;
        incr time
      in
      push root (-1);
      while !sp > 0 do
        let fr = !sp - 1 in
        let v = st_v.(fr) in
        if st_idx.(fr) < Ugraph.degree g v then begin
          let i = st_idx.(fr) in
          st_idx.(fr) <- i + 1;
          let eid, w = Ugraph.incident_get g v i in
          if eid <> st_eid.(fr) && w <> v then begin
            if disc.(w) < 0 then begin
              if v = root then incr root_children;
              push w eid
            end
            else if disc.(w) < low.(v) then low.(v) <- disc.(w)
          end
        end
        else begin
          (* Pop and propagate to the parent frame, if any. *)
          decr sp;
          if !sp > 0 then begin
            let u = st_v.(!sp - 1) in
            if low.(v) < low.(u) then low.(u) <- low.(v);
            if low.(v) > disc.(u) then is_bridge.(st_eid.(fr)) <- true;
            if u <> root && low.(v) >= disc.(u) then is_articulation.(u) <- true
          end
        end
      done;
      if !root_children >= 2 then is_articulation.(root) <- true
    end
  done;
  { is_bridge; is_articulation }

let bridges g = (run g).is_bridge
let articulation_points g = (run g).is_articulation

let bridge_eids g =
  let b = bridges g in
  let acc = ref [] in
  for i = Array.length b - 1 downto 0 do
    if b.(i) then acc := i :: !acc
  done;
  !acc

let two_edge_components g =
  let b = bridges g in
  let n = Ugraph.n_vertices g in
  let dsu = Dsu.create n in
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) -> if not b.(eid) then ignore (Dsu.union dsu e.u e.v))
    g;
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    let r = Dsu.find dsu v in
    if comp.(r) < 0 then begin
      comp.(r) <- !count;
      incr count
    end;
    comp.(v) <- comp.(r)
  done;
  (comp, !count)

let naive_bridges g =
  let m = Ugraph.n_edges g in
  let out = Array.make m false in
  let present = Array.make m true in
  for eid = 0 to m - 1 do
    let e = Ugraph.edge g eid in
    if e.Ugraph.u <> e.Ugraph.v then begin
      present.(eid) <- false;
      out.(eid) <-
        not (Connectivity.terminals_connected g ~present [ e.Ugraph.u; e.Ugraph.v ]);
      present.(eid) <- true
    end
  done;
  out
