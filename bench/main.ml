(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) plus the DESIGN.md ablations.

   Usage:
     dune exec bench/main.exe                    # all sections
     dune exec bench/main.exe -- --only fig3,table5
     dune exec bench/main.exe -- --quick         # fast pass
     dune exec bench/main.exe -- --scale 0.5     # smaller datasets
     dune exec bench/main.exe -- --bechamel      # also run microbenches *)

let () =
  let only = ref "" in
  let quick = ref false in
  let scale = ref 1.0 in
  let seed = ref 1 in
  let bechamel = ref false in
  let json = ref false in
  let trace = ref false in
  let force = ref false in
  let repeats = ref 1 in
  let baseline = ref "" in
  let spec =
    [
      ("--only", Arg.Set_string only,
       "SECTIONS comma-separated subset (table2,fig3,fig4,fig5,table3,table4,\
        table5,ablation_ordering,ablation_lemmas,ablation_heuristic,\
        ablation_exact,parallel,kernels,bitsliced,adaptive,batch,large)");
      ("--quick", Arg.Set quick, " reduced repetitions and budgets");
      ("--scale", Arg.Set_float scale, "FLOAT dataset scale factor (default 1.0)");
      ("--seed", Arg.Set_int seed, "INT master seed (default 1)");
      ("--bechamel", Arg.Set bechamel, " also run the bechamel microbenchmarks");
      ("--json", Arg.Set json,
       " also write BENCH_<section>.json per-phase stats (self-validated)");
      ("--trace", Arg.Set trace,
       " also write BENCH_<section>_trace.json Chrome event traces for the \
        instrumented runs (self-validated)");
      ("--force", Arg.Set force,
       " overwrite an existing BENCH_<section>.json (without it, --json \
        refuses to clobber a committed baseline)");
      ("--repeats", Arg.Set_int repeats,
       "N instrumented runs per (dataset, method) pair (default 1); \
        repeats give `netrel benchdiff` its median/MAD noise bands");
      ("--baseline", Arg.Set_string baseline,
       "FILE compare the freshly collected --json runs against this \
        BENCH_*.json instead of writing files; a regression fails the run");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "netrel benchmark harness";
  let cfg =
    { Sections.scale = !scale; Sections.quick = !quick; Sections.seed = !seed;
      Sections.json = !json; Sections.trace = !trace; Sections.force = !force;
      Sections.repeats = !repeats;
      Sections.baseline = (if !baseline = "" then None else Some !baseline) }
  in
  let wanted =
    if !only = "" then List.map fst Sections.all_sections
    else String.split_on_char ',' !only |> List.map String.trim
  in
  Printf.printf
    "netrel benchmark harness - reproducing Sasaki et al., EDBT 2019\n\
     (scale=%.2f%s, seed=%d; dataset substitutions documented in DESIGN.md)\n"
    !scale
    (if !quick then ", quick" else "")
    !seed;
  (* Section wall-clock on CLOCK_MONOTONIC, matching the stats timings:
     an NTP step mid-run would make gettimeofday differences negative or
     skewed in the emitted BENCH_*.json. *)
  let total_t0 = Relstats.now_monotonic () in
  List.iter
    (fun name ->
      match List.assoc_opt name Sections.all_sections with
      | Some f ->
        let t0 = Relstats.now_monotonic () in
        f cfg;
        Printf.printf "[section %s: %s]\n%!" name
          (Relstats.format_seconds (Relstats.now_monotonic () -. t0))
      | None ->
        Printf.eprintf "unknown section %S; known: %s\n" name
          (String.concat ", " (List.map fst Sections.all_sections));
        exit 2)
    wanted;
  if !bechamel then Micro.run !seed;
  Printf.printf "\nTotal: %s\n"
    (Relstats.format_seconds (Relstats.now_monotonic () -. total_t0))
