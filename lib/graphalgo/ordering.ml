type strategy =
  | Natural
  | Bfs
  | Dfs
  | Degree
  | Random of int
  | Bfs_from of int list

let strategy_name = function
  | Natural -> "natural"
  | Bfs -> "bfs"
  | Dfs -> "dfs"
  | Degree -> "degree"
  | Random seed -> Printf.sprintf "random(%d)" seed
  | Bfs_from sources ->
    Printf.sprintf "bfs_from(%s)" (String.concat "," (List.map string_of_int sources))

let all_strategies = [ Natural; Bfs; Dfs; Degree; Random 0 ]

(* Emit, for each vertex in [vertex_order], its not-yet-emitted incident
   edges. This keeps each vertex's incident edges contiguous, which is
   the property that keeps frontiers narrow. *)
let edges_by_vertex_order g vertex_order =
  let m = Ugraph.n_edges g in
  let emitted = Array.make m false in
  let out = Array.make m 0 in
  let cursor = ref 0 in
  Array.iter
    (fun v ->
      Ugraph.iter_incident g v (fun ~eid ~other:_ ->
          if not emitted.(eid) then begin
            emitted.(eid) <- true;
            out.(!cursor) <- eid;
            incr cursor
          end))
    vertex_order;
  assert (!cursor = m);
  out

let seed_vertex g =
  (* Lowest-degree non-isolated vertex: starting at the periphery keeps
     early frontiers small. Falls back to 0 on an edgeless graph. *)
  let n = Ugraph.n_vertices g in
  let best = ref 0 and best_deg = ref max_int in
  for v = 0 to n - 1 do
    let d = Ugraph.degree g v in
    if d > 0 && d < !best_deg then begin
      best := v;
      best_deg := d
    end
  done;
  !best

let bfs_vertex_order_from g sources =
  let n = Ugraph.n_vertices g in
  let order = Array.make n 0 in
  let seen = Array.make n false in
  let cursor = ref 0 in
  let queue = Queue.create () in
  let visit v =
    seen.(v) <- true;
    Queue.add v queue
  in
  (* Low-degree sources first: their incident-edge blocks are small and
     carry the most immediately-resolvable mass (a vertex of degree d is
     fully decided after d positions), whereas a hub's block blows the
     frontier up before anything can resolve. Also makes the order
     independent of the callers' terminal-list order. *)
  let sources =
    List.sort
      (fun a b ->
        match Int.compare (Ugraph.degree g a) (Ugraph.degree g b) with
        | 0 -> Int.compare a b
        | c -> c)
      sources
  in
  let drain () =
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      order.(!cursor) <- v;
      incr cursor;
      Ugraph.iter_incident g v (fun ~eid:_ ~other ->
          if not seen.(other) then visit other)
    done
  in
  List.iter (fun v -> if not seen.(v) then visit v) sources;
  drain ();
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      visit v;
      drain ()
    end
  done;
  order

let bfs_vertex_order g = bfs_vertex_order_from g [ seed_vertex g ]

let dfs_vertex_order g =
  let n = Ugraph.n_vertices g in
  let order = Array.make n 0 in
  let seen = Array.make n false in
  let cursor = ref 0 in
  (* Iterative DFS with an explicit (vertex, incidence cursor) stack. *)
  let st_v = Array.make (n + 1) 0 and st_i = Array.make (n + 1) 0 in
  let run root =
    let sp = ref 0 in
    let push v =
      seen.(v) <- true;
      order.(!cursor) <- v;
      incr cursor;
      st_v.(!sp) <- v;
      st_i.(!sp) <- 0;
      incr sp
    in
    push root;
    while !sp > 0 do
      let fr = !sp - 1 in
      let v = st_v.(fr) in
      if st_i.(fr) < Ugraph.degree g v then begin
        let i = st_i.(fr) in
        st_i.(fr) <- i + 1;
        let _, w = Ugraph.incident_get g v i in
        if not seen.(w) then push w
      end
      else decr sp
    done
  in
  run (seed_vertex g);
  for v = 0 to n - 1 do
    if not seen.(v) then run v
  done;
  order

let degree_vertex_order g =
  let n = Ugraph.n_vertices g in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare (Ugraph.degree g a) (Ugraph.degree g b) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  order

let order_edges strategy g =
  let m = Ugraph.n_edges g in
  match strategy with
  | Natural -> Array.init m Fun.id
  | Bfs -> edges_by_vertex_order g (bfs_vertex_order g)
  | Dfs -> edges_by_vertex_order g (dfs_vertex_order g)
  | Degree -> edges_by_vertex_order g (degree_vertex_order g)
  | Random seed ->
    let order = Array.init m Fun.id in
    Prng.shuffle (Prng.create seed) order;
    order
  | Bfs_from sources -> edges_by_vertex_order g (bfs_vertex_order_from g sources)

module Frontier = struct
  type plan = {
    order : int array;
    pos_of_eid : int array;
    first_pos : int array;
    last_pos : int array;
    width : int array;
    max_width : int;
  }

  let plan g order =
    let n = Ugraph.n_vertices g and m = Ugraph.n_edges g in
    if Array.length order <> m then
      invalid_arg "Ordering.Frontier.plan: order length mismatch";
    let pos_of_eid = Array.make m (-1) in
    Array.iteri
      (fun pos eid ->
        if eid < 0 || eid >= m || pos_of_eid.(eid) >= 0 then
          invalid_arg "Ordering.Frontier.plan: order is not a permutation";
        pos_of_eid.(eid) <- pos)
      order;
    let first_pos = Array.make n (-1) and last_pos = Array.make n (-1) in
    Array.iteri
      (fun pos eid ->
        let e = Ugraph.edge g eid in
        let touch v =
          if first_pos.(v) < 0 then first_pos.(v) <- pos;
          last_pos.(v) <- pos
        in
        touch e.Ugraph.u;
        touch e.Ugraph.v)
      order;
    let width = Array.make (max m 1) 0 in
    let alive = ref 0 and max_width = ref 0 in
    (* Sweep positions: vertices enter at first_pos, leave after
       last_pos. Count entries/exits per position first. *)
    let enters = Array.make (m + 1) 0 and leaves = Array.make (m + 1) 0 in
    for v = 0 to n - 1 do
      if first_pos.(v) >= 0 then begin
        enters.(first_pos.(v)) <- enters.(first_pos.(v)) + 1;
        leaves.(last_pos.(v)) <- leaves.(last_pos.(v)) + 1
      end
    done;
    for pos = 0 to m - 1 do
      alive := !alive + enters.(pos) - leaves.(pos);
      width.(pos) <- !alive;
      if !alive > !max_width then max_width := !alive
    done;
    { order = Array.copy order; pos_of_eid; first_pos; last_pos; width;
      max_width = !max_width }

  let max_width_of g strategy = (plan g (order_edges strategy g)).max_width
end

let best_order g =
  let candidates = [ Bfs; Dfs; Degree; Natural ] in
  let scored =
    List.map (fun s -> (Frontier.max_width_of g s, order_edges s g)) candidates
  in
  match scored with
  | [] -> assert false
  | (w0, o0) :: rest ->
    let _, best =
      List.fold_left
        (fun (bw, bo) (w, o) -> if w < bw then (w, o) else (bw, bo))
        (w0, o0) rest
    in
    best
