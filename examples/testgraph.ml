(* Tiny shared fixtures for the examples. *)

(* The paper's Figure 1 uncertain graph (all edges p = 0.7). *)
let fig1 =
  Ugraph.create ~n:5
    [
      { Ugraph.u = 0; v = 1; p = 0.7 };
      { Ugraph.u = 0; v = 2; p = 0.7 };
      { Ugraph.u = 1; v = 3; p = 0.7 };
      { Ugraph.u = 2; v = 3; p = 0.7 };
      { Ugraph.u = 1; v = 4; p = 0.7 };
      { Ugraph.u = 3; v = 4; p = 0.7 };
    ]
