The structured stats document behind `--stats json`: one JSON object per
run with a fixed set of top-level keys. NETREL_FAKE_CLOCK pins the
observer clock to 0, so for a fixed seed at --jobs 1 the document is
byte-stable across runs.

  $ export NETREL_FAKE_CLOCK=1

The default (pro) method on a dataset that preprocesses to an exact
answer — every phase section is present, in order:

  $ netrel estimate --dataset am-rv --terminals 0,50,100 --jobs 1 --stats json > stats1.json
  $ grep -E '^  "(netrel|run|preprocess|construction|sampling|adaptive|par|result)":' stats1.json
    "netrel": {
    "run": {
    "preprocess": {
    "construction": {
    "sampling": {
    "adaptive": {},
    "par": {
    "result": {

Run metadata records what was asked; the result carries the estimate:

  $ grep -E '^    "(command|method|graph|seconds)"' stats1.json
      "command": "estimate",
      "method": "pro",
      "graph": "Am-Rv",
      "seconds": 0.0
An exact answer reports a point interval (lower = value = upper) —
sampled runs get a Wilson interval there instead, never the Wald one
that collapses to zero width at 0 hits:

  $ grep -E '^    "(value|lower|upper|exact)"' stats1.json
      "value": 0.046087808504265595,
      "lower": 0.046087808504265595,
      "upper": 0.046087808504265595,
      "exact": true,

Byte-stability: a second identical invocation produces the identical
document:

  $ netrel estimate --dataset am-rv --terminals 0,50,100 --jobs 1 --stats json > stats2.json
  $ cmp stats1.json stats2.json

The plain Horvitz-Thompson sampler fills the sampling section instead,
including the dedup account the estimator runs on:

  $ netrel estimate --dataset karate --terminals 0,33 --method sampling-ht \
  >   --samples 2000 --jobs 1 --stats json > ht.json
  $ grep -E '"(estimator|dedup_ratio|samples_used)"' ht.json
      "dedup_ratio": 1.0,
      "estimator": "ht",
      "samples_used": 2000,
  $ grep -E '^    "(value|lower|upper)"' ht.json
      "value": 0.99900000000114042,
      "lower": 0.99636098981255705,
      "upper": 0.99972572682440763,

The document is parseable by the bundled JSON parser (the bench harness
re-validates BENCH_*.json the same way), and trivial runs stay honest:
a one-terminal problem reports zero samples drawn:

  $ netrel estimate --dataset karate --terminals 0 --method sampling-mc \
  >   --jobs 1 --stats json | grep -E '"(value|samples_used|hits)"'
      "value": 1.0,
      "samples_used": 0,
      "hits": 0,
