(** The self-check graph corpus: small uncertain graphs for which the
    exact oracle ({!Bddbase.Exact}) is cheap, mixing uniformly random
    topologies with the adversarial shapes the preprocessing
    transformations ({!Preprocess.Transform}) and the S2BDD deletion
    machinery are known to find hard — ears whose walk returns to its
    anchor, parallel stubs, bridges, floating cycles of non-terminals,
    self-loops and parallel bundles — plus scaled-down instances of the
    {!Workload.Generators} topology classes.

    Everything is deterministic in the generator passed in: the corpus
    for a seed is the corpus forever, so any violation found against it
    is a reproducible artifact. *)

type case = {
  label : string;       (** stable human-readable case id *)
  graph : Ugraph.t;
  terminals : int list;
}

val render : case -> string
(** The reproducer artifact for a violation report: the case label, the
    graph in {!Ugraph} edge-list text format and the terminal list —
    enough to replay the case by hand. *)

val rand_prob : Prng.t -> float
(** One edge probability from the corpus's mixture of regimes: uniform,
    near-0, near-1, exactly 1/2 and mid-range draws. *)

val adversarial : Prng.t -> case list
(** The fixed adversarial topologies (ear, parallel stub, floating
    cycle, bridged blobs, theta, series chain, parallel bundle,
    self-loops, star, double bridge), with probabilities drawn from
    [rand_prob]. *)

val generator_cases : Prng.t -> case list
(** Small instances of the {!Workload.Generators} topology classes
    (grid road, power law, affiliation, preferential attachment) with
    uniform probabilities. *)

val random_case : Prng.t -> index:int -> case
(** One random graph: 2–8 vertices, up to 14 edges with endpoints drawn
    uniformly (so self-loops and parallel edges occur), probabilities
    from [rand_prob], 2–4 random distinct terminals. Disconnected
    graphs and unreachable terminal sets are deliberately possible. *)

val corpus : seed:int -> trials:int -> case list
(** [adversarial @ generator_cases @ trials random cases], everything
    derived from [seed]. *)
