let largest_component g =
  let comp, count = Graphalgo.Connectivity.components g in
  if count <= 1 then g
  else begin
    let sizes = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let members =
      Array.of_list
        (List.filter
           (fun v -> comp.(v) = !best)
           (List.init (Ugraph.n_vertices g) Fun.id))
    in
    fst (Ugraph.induced g members)
  end

let preferential_attachment ~seed ~n ~edges_per_vertex =
  if n < 2 || edges_per_vertex < 1 then
    invalid_arg "Generators.preferential_attachment: bad parameters";
  let rng = Prng.create seed in
  (* Degree-biased target selection via the repeated-endpoints trick:
     every edge endpoint is appended to [endpoints]; a uniform draw from
     it is a degree-proportional draw. *)
  let n_endpoints = ref 2 in
  let endpoint_arr = Array.make (2 * n * edges_per_vertex + 4) 0 in
  endpoint_arr.(0) <- 0;
  endpoint_arr.(1) <- 1;
  let multiplicity : (int * int, int) Hashtbl.t = Hashtbl.create (n * edges_per_vertex) in
  let note u v =
    let key = if u < v then (u, v) else (v, u) in
    Hashtbl.replace multiplicity key
      (1 + Option.value ~default:0 (Hashtbl.find_opt multiplicity key))
  in
  note 0 1;
  for v = 2 to n - 1 do
    for _ = 1 to edges_per_vertex do
      let target = endpoint_arr.(Prng.int rng !n_endpoints) in
      if target <> v then begin
        note v target;
        endpoint_arr.(!n_endpoints) <- v;
        endpoint_arr.(!n_endpoints + 1) <- target;
        n_endpoints := !n_endpoints + 2
      end
    done
  done;
  let pairs = Hashtbl.fold (fun k a acc -> (k, a) :: acc) multiplicity [] in
  (* Keys (vertex pairs) are unique in [multiplicity], so a key-only
     comparator reproduces the polymorphic sort order exactly. *)
  let pairs =
    List.sort
      (fun ((a, b), _) ((c, d), _) ->
        match Int.compare a c with 0 -> Int.compare b d | e -> e)
      pairs
  in
  let edges =
    List.map (fun ((u, v), _) -> { Ugraph.u; v; p = 0.5 }) pairs
  in
  let alphas = Array.of_list (List.map snd pairs) in
  (* Attachments always target the initial component, so every edge
     survives [largest_component] (only self-isolated vertices can
     drop), keeping [alphas] aligned with edge identifiers. *)
  (largest_component (Ugraph.create ~n edges), alphas)

let grid_road ~seed ~rows ~cols ~keep =
  if rows < 2 || cols < 2 then invalid_arg "Generators.grid_road: bad grid";
  if keep < 0. || keep > 1. then invalid_arg "Generators.grid_road: bad keep";
  let rng = Prng.create seed in
  let idx r c = (r * cols) + c in
  let candidates = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c < cols - 1 then candidates := (idx r c, idx r (c + 1)) :: !candidates;
      if r < rows - 1 then candidates := (idx r c, idx (r + 1) c) :: !candidates
    done
  done;
  (* A random spanning tree (random-order Kruskal) keeps the road map
     connected; the remaining grid edges survive with probability
     [keep]. *)
  let cand = Array.of_list !candidates in
  Prng.shuffle rng cand;
  let dsu = Dsu.create (rows * cols) in
  let chosen = ref [] in
  Array.iter
    (fun (u, v) ->
      if Dsu.union dsu u v then chosen := (u, v) :: !chosen
      else if Prng.bernoulli rng keep then chosen := (u, v) :: !chosen)
    cand;
  let lengths =
    Array.of_list (List.map (fun _ -> 0.2 +. (1.8 *. Prng.float rng)) !chosen)
  in
  let edges = List.map (fun (u, v) -> { Ugraph.u; v; p = 0.5 }) !chosen in
  (* Grid + spanning tree is connected by construction; keep the order
     aligned with [lengths], so no component filtering here. *)
  (Ugraph.create ~n:(rows * cols) edges, lengths)

let power_law ~seed ~n ~target_edges ~exponent =
  if n < 2 || target_edges < 1 then invalid_arg "Generators.power_law: bad parameters";
  let rng = Prng.create seed in
  let weights =
    Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) exponent)
  in
  let table = Prng.Alias.build weights in
  (* Random vertex labels so the heavy tail is not clustered at low
     ids. *)
  let label = Array.init n Fun.id in
  Prng.shuffle rng label;
  let seen = Hashtbl.create target_edges in
  let edges = ref [] in
  let attempts = ref 0 in
  let max_attempts = 50 * target_edges in
  while Hashtbl.length seen < target_edges && !attempts < max_attempts do
    incr attempts;
    let u = label.(Prng.Alias.sample rng table) in
    let v = label.(Prng.Alias.sample rng table) in
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := { Ugraph.u; v; p = 0.5 } :: !edges
      end
    end
  done;
  largest_component (Ugraph.create ~n !edges)

let bipartite_affiliation ~seed ~people ~groups ~memberships =
  if people < 1 || groups < 1 || memberships < people then
    invalid_arg "Generators.bipartite_affiliation: bad parameters";
  let rng = Prng.create seed in
  (* Group popularity is Zipf-skewed, as in real affiliation data. *)
  let weights = Array.init groups (fun i -> 1. /. float_of_int (i + 1)) in
  let table = Prng.Alias.build weights in
  let n = people + groups in
  let seen = Hashtbl.create memberships in
  let edges = ref [] in
  (* Every person joins one group; the remaining memberships spread. *)
  let add person group =
    let u = person and v = people + group in
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      edges := { Ugraph.u; v; p = 0.5 } :: !edges
    end
  in
  for person = 0 to people - 1 do
    add person (Prng.Alias.sample rng table)
  done;
  let attempts = ref 0 in
  while Hashtbl.length seen < memberships && !attempts < 50 * memberships do
    incr attempts;
    add (Prng.int rng people) (Prng.Alias.sample rng table)
  done;
  largest_component (Ugraph.create ~n !edges)

let random_terminals ~seed g ~k =
  let n = Ugraph.n_vertices g in
  if k > n then invalid_arg "Generators.random_terminals: k exceeds vertices";
  let rng = Prng.create seed in
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  Array.to_list (Array.sub perm 0 k)
