(* The self-check subsystem checked: corpus determinism, a clean run at
   a small budget, report determinism and the JSON report document. *)

module C = Check
module J = Obs.Json

let small_run =
  (* One shared run: the suite asserts different facets of the same
     report. jobs [1; 2] keeps the budget small; the full 1/2/8 sweep
     belongs to `netrel selfcheck` and its runtest rule. *)
  lazy (C.run ~jobs:[ 1; 2 ] ~trials:3 ~seed:11 ())

let t_corpus_deterministic () =
  let labels trials seed =
    List.map (fun (c : C.Shapes.case) -> c.C.Shapes.label)
      (C.Shapes.corpus ~seed ~trials)
  in
  Alcotest.(check (list string)) "same seed, same corpus" (labels 6 3) (labels 6 3);
  Alcotest.(check bool) "adversarial shapes present" true
    (List.mem "adv:ear" (labels 0 3) && List.mem "adv:split" (labels 0 3));
  Alcotest.(check int) "trials add random cases"
    (List.length (labels 0 3) + 4)
    (List.length (labels 4 3))

let t_corpus_case_renders () =
  List.iter
    (fun (c : C.Shapes.case) ->
      let art = C.Shapes.render c in
      Alcotest.(check bool) (c.C.Shapes.label ^ " renders label") true
        (String.length art > 0
        && String.sub art 0 5 = "case "
        && List.exists
             (fun line ->
               String.length line >= 9 && String.sub line 0 9 = "terminals")
             (String.split_on_char '\n' art)))
    (C.Shapes.corpus ~seed:2 ~trials:2)

let t_run_clean_at_small_budget () =
  let rep = Lazy.force small_run in
  Alcotest.(check bool) "ok" true (C.ok rep);
  Alcotest.(check (list string)) "three sections"
    [ "oracle"; "metamorphic"; "calibration" ]
    (List.map (fun s -> s.C.s_name) rep.C.sections);
  Alcotest.(check bool) "checks counted" true (rep.C.checks > 0);
  Alcotest.(check bool) "cases counted" true (rep.C.cases > 0);
  Alcotest.(check int) "no violations" 0 (List.length rep.C.violations);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.C.s_name ^ " ran cases") true (s.C.s_cases > 0);
      Alcotest.(check bool) (s.C.s_name ^ " ran checks") true (s.C.s_checks > 0))
    rep.C.sections

let t_run_deterministic () =
  let a = Lazy.force small_run in
  let b = C.run ~jobs:[ 1; 2 ] ~trials:3 ~seed:11 () in
  Alcotest.(check bool) "same seed, same report" true (a = b)

let t_run_obs_never_changes_report () =
  let obs = Obs.create () in
  let with_obs = C.run ~obs ~jobs:[ 1 ] ~trials:1 ~seed:4 () in
  let without = C.run ~jobs:[ 1 ] ~trials:1 ~seed:4 () in
  Alcotest.(check bool) "obs is observation only" true (with_obs = without);
  Alcotest.(check bool) "per-section counters recorded" true
    (Obs.counter_value obs "selfcheck.oracle.checks" > 0
    && Obs.counter_value obs "selfcheck.metamorphic.checks" > 0
    && Obs.counter_value obs "selfcheck.calibration.checks" > 0)

let t_report_json_schema () =
  let rep = Lazy.force small_run in
  let doc = C.report_json rep in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("has " ^ key) true
        (Option.is_some (J.member key doc)))
    [ "netrel"; "run"; "sections"; "violations"; "result" ];
  (match J.member "netrel" doc with
  | Some header ->
    Alcotest.(check bool) "tool = selfcheck" true
      (J.member "tool" header = Some (J.Str "selfcheck"))
  | None -> Alcotest.fail "missing netrel header");
  (match J.member "result" doc with
  | Some result ->
    Alcotest.(check bool) "result.ok" true
      (J.member "ok" result = Some (J.Bool true));
    Alcotest.(check bool) "result.checks matches report" true
      (J.member "checks" result = Some (J.Int rep.C.checks))
  | None -> Alcotest.fail "missing result");
  (* The emitted document must survive its own parser byte-for-byte. *)
  let s = J.to_string ~pretty:true doc in
  Alcotest.(check string) "round-trips" s
    (J.to_string ~pretty:true (J.of_string_exn s))

let t_pp_report () =
  let rep = Lazy.force small_run in
  let text = Format.asprintf "%a" C.pp_report rep in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (let n = String.length needle in
         let rec find i =
           i + n <= String.length text
           && (String.sub text i n = needle || find (i + 1))
         in
         find 0))
    [ "selfcheck:"; "oracle"; "metamorphic"; "calibration"; "result: OK" ]

let suite =
  ( "check",
    [
      Alcotest.test_case "corpus deterministic in seed" `Quick t_corpus_deterministic;
      Alcotest.test_case "corpus cases render artifacts" `Quick t_corpus_case_renders;
      Alcotest.test_case "small-budget run is clean" `Slow t_run_clean_at_small_budget;
      Alcotest.test_case "report deterministic in seed" `Slow t_run_deterministic;
      Alcotest.test_case "obs never changes the report" `Slow t_run_obs_never_changes_report;
      Alcotest.test_case "json report schema" `Slow t_report_json_schema;
      Alcotest.test_case "human report" `Slow t_pp_report;
    ] )
