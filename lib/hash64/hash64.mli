(** 62-bit content hashing built on a full-avalanche 64-bit mixer.

    This replaces the weakened FNV-1a variants that used to identify
    sampled possible graphs (the HT dedup in {!Mcsampling} and the
    descent dedup in [Fstate]). Those hashed one [bool] per step with a
    32-bit FNV prime, so a flipped input bit could only ever influence
    {e higher} output bits — the low bits of the state depended on just
    a handful of trailing mask positions, and structured mask pairs
    collided far more often than the [2^-62] a uniform hash promises.
    Colliding masks are silently merged by the dedup tables, biasing
    the Horvitz–Thompson estimate.

    Here every 62-bit word of packed mask bits is folded into a 64-bit
    state through the splitmix64 finalizer, whose two xor-shift-multiply
    rounds diffuse each input bit to every output bit.  The total bit
    count is folded in at the end so masks of different lengths sharing
    a prefix cannot collide trivially. *)

val mix64 : int64 -> int64
(** The splitmix64 / murmur3-style finalizer: a bijective full-avalanche
    mix of a 64-bit word. *)

val word_bits : int
(** Payload bits per packed word: [62] (OCaml native ints are 63-bit and
    digests stay non-negative). *)

val mask_words : int array -> bits:int -> int
(** [mask_words words ~bits] hashes [bits] mask bits already packed
    LSB-first, {!word_bits} per word, into [words] (only the first
    [ceil (bits / word_bits)] entries are read; a trailing partial word
    must be zero-padded above its valid bits). Digest-identical to
    {!mask} / {!Stream} over the same bit sequence — the fast path for
    callers that pack words during the draw instead of re-scanning a
    [bool array]. *)

val mask_words_sub : int array -> off:int -> bits:int -> int
(** [mask_words_sub words ~off ~bits] is {!mask_words} over the packed
    words starting at index [off] — the row-addressed variant for
    callers holding many masks in one flat slab (the bit-sliced
    kernel's transposed world masks). [mask_words] is [~off:0]. *)

val mask : bool array -> int -> int
(** [mask present m] hashes the first [m] entries of [present] (packed
    LSB-first into 62-bit words) to a non-negative 62-bit native int.
    Equivalent to streaming the bits through {!Stream} and calling
    {!Stream.finish}. *)

(** Incremental interface for call sites that produce bits one at a
    time (e.g. [Fstate]'s stratified descents, which discover the edge
    outcomes during the walk). *)
module Stream : sig
  type t

  val create : unit -> t

  val add_bit : t -> bool -> unit

  val finish : t -> int
  (** Fold in the bit count and return the non-negative 62-bit digest.
      The stream must not be reused afterwards. *)
end
