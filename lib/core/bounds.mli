(** Anytime reliability bounds without sampling.

    The S2BDD's [pc <= R <= 1 - pd] bounds are useful on their own —
    e.g. to prove that a reliability clears (or cannot clear) a
    threshold — and they only require construction, no sampling. This
    module runs the construction under an effort budget and returns the
    proven interval. *)

type t = {
  lower : float;
  upper : float;
  exact : bool;       (** the interval collapsed: lower = upper = R *)
  layers_built : int;
  work_used : bool;   (** true when the effort budget stopped construction *)
}

val compute :
  ?width:int ->
  ?max_work:int ->
  ?order:[ `Auto | `Strategy of Graphalgo.Ordering.strategy | `Explicit of int array ] ->
  ?extension:bool ->
  Ugraph.t ->
  terminals:int list ->
  t
(** Proven bounds on [R[G, T]] under the given construction budget
    ([width] defaults to 10000, [max_work] to the {!S2bdd}
    default). With [extension] (default true) the bounds multiply over
    the decomposed subproblems, which keeps them valid. *)

val decides : t -> threshold:float -> [ `Above | `Below | `Unknown ]
(** Whether the interval settles a threshold query:
    [`Above] when [lower >= threshold], [`Below] when
    [upper < threshold], [`Unknown] otherwise. *)
