(** Reliability search (Khan, Bonchi, Gionis, Gullo — EDBT 2014, cited
    as [22]): given source vertices and a probability threshold [eta],
    return every vertex reachable from the sources with probability at
    least [eta].

    The implementation shares one {!Sampleset} across all per-vertex
    estimates (one multi-source BFS per sample), so the whole query
    costs the same as a single Monte Carlo reliability estimate. *)

type result = {
  vertex : int;
  reliability : float;  (** estimated reachability probability *)
}

val search :
  ?seed:int ->
  ?samples:int ->
  Ugraph.t ->
  sources:int list ->
  eta:float ->
  result list
(** Vertices with estimated reachability [>= eta], sorted by decreasing
    reliability (sources excluded). [samples] defaults to 1000.
    @raise Invalid_argument on an empty source list, out-of-range
    sources, or [eta] outside [[0, 1]]. *)

val search_with : Sampleset.t -> sources:int list -> eta:float -> result list
(** Same, over a prebuilt sample set (cheaper when issuing many
    queries). *)
