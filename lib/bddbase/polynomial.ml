type t = {
  n_edges : int;
  counts : float array;
}

type error = [ `Node_budget_exceeded of int ]

let binomial m j =
  (* C(m, j) in floats; exact for every m the exact BDD can handle. *)
  let j = min j (m - j) in
  let acc = ref 1. in
  for i = 1 to j do
    acc := !acc *. float_of_int (m - j + i) /. float_of_int i
  done;
  !acc

let all_subsets m = { n_edges = m; counts = Array.init (m + 1) (binomial m) }
let none m = { n_edges = m; counts = Array.make (m + 1) 0. }

(* Node values are count vectors indexed by the number of existent
   edges chosen so far; a 1-arc shifts the vector by one, a 0-arc keeps
   it. The 1-sink accumulates, per total edge count, the completions of
   each sunk prefix: a prefix with [j] existent edges out of [l]
   processed contributes [C(m - l, i)] subgraphs with [j + i] existent
   edges for every [i]. *)
let compute ?order ?(node_budget = Exact.default_node_budget) g ~terminals =
  Ugraph.validate_terminals g terminals;
  let m = Ugraph.n_edges g in
  let degenerate =
    match terminals with
    | [] | [ _ ] -> Some (all_subsets m)
    | ts ->
      if List.exists (fun t -> Ugraph.degree g t = 0) ts then Some (none m)
      else if
        Graphalgo.Connectivity.terminals_connected g
          ~present:(Array.make m true) ts
      then None
      else Some (none m)
  in
  match degenerate with
  | Some poly -> Ok poly
  | None ->
    let order =
      match order with Some o -> o | None -> Graphalgo.Ordering.best_order g
    in
    let ctx = Fstate.make g ~order ~terminals in
    let counts = Array.make (m + 1) 0. in
    (* sink1 at layer l (edges processed = l + 1) with j existent edges:
       the remaining m - l - 1 edges are free. *)
    let absorb ~processed vec =
      let free = m - processed in
      Array.iteri
        (fun j c ->
          if c > 0. then
            for i = 0 to free do
              counts.(j + i) <- counts.(j + i) +. (c *. binomial free i)
            done)
        vec
    in
    let current = ref (Fstate.Key_table.create 16) in
    Fstate.Key_table.replace !current
      (Fstate.key_exact Fstate.initial)
      (Fstate.initial, Array.make (m + 1) 0.);
    (match Fstate.Key_table.find_opt !current (Fstate.key_exact Fstate.initial) with
    | Some (_, vec) -> vec.(0) <- 1.
    | None -> assert false);
    let total_nodes = ref 1 in
    let budget_hit = ref false in
    let pos = ref 0 in
    while (not !budget_hit) && !pos < m && Fstate.Key_table.length !current > 0 do
      let next = Fstate.Key_table.create (2 * Fstate.Key_table.length !current) in
      let expand _ (st, vec) =
        let branch exists =
          let shifted =
            if exists then begin
              let out = Array.make (m + 1) 0. in
              Array.iteri (fun j c -> if c > 0. then out.(j + 1) <- c) vec;
              out
            end
            else Array.copy vec
          in
          match Fstate.step ctx ~eager:true ~pos:!pos st ~exists with
          | Fstate.Sink1 -> absorb ~processed:(!pos + 1) shifted
          | Fstate.Sink0 -> ()
          | Fstate.Live st' -> (
            let key = Fstate.key_exact st' in
            match Fstate.Key_table.find_opt next key with
            | Some (_, acc) ->
              Array.iteri (fun j c -> acc.(j) <- acc.(j) +. c) shifted
            | None -> Fstate.Key_table.replace next key (st', shifted))
        in
        branch true;
        branch false
      in
      Fstate.Key_table.iter expand !current;
      current := next;
      total_nodes := !total_nodes + Fstate.Key_table.length next;
      if !total_nodes > node_budget then budget_hit := true;
      incr pos
    done;
    if !budget_hit then Error (`Node_budget_exceeded !total_nodes)
    else Ok { n_edges = m; counts }

let eval poly p =
  if p < 0. || p > 1. then invalid_arg "Polynomial.eval: p outside [0,1]";
  let m = poly.n_edges in
  (* Binomial-basis evaluation: sum_j N_j p^j (1-p)^(m-j), accumulating
     the powers incrementally to stay stable. *)
  let q = 1. -. p in
  let total = ref 0. in
  Array.iteri
    (fun j nj ->
      if nj > 0. then
        total := !total +. (nj *. (p ** float_of_int j) *. (q ** float_of_int (m - j))))
    poly.counts;
  !total

let connected_subgraphs poly = Array.fold_left ( +. ) 0. poly.counts

let pp fmt poly =
  Format.fprintf fmt "R(p) = sum over j of N_j p^j (1-p)^(%d-j), N = ["
    poly.n_edges;
  Array.iteri
    (fun j c -> if j > 0 then Format.fprintf fmt "; %g" c else Format.fprintf fmt "%g" c)
    poly.counts;
  Format.fprintf fmt "]"
