(* Flat sampling kernels. See kernel.mli for the contract; DESIGN.md
   section 10 documents the layout, the draw-order contract, and the
   early-exit invariant. *)

module Csr = struct
  type t = {
    n : int;
    m : int;
    eu : int array;
    ev : int array;
    ep : float array;
    off : int array;
    adj_pos : int array;
    adj_other : int array;
  }

  (* Two-pass CSR fill: degree count, prefix sums, then scatter. A
     self-loop contributes one endpoint slot, matching Ugraph. *)
  let build_adjacency ~n ~m eu ev =
    let off = Array.make (n + 1) 0 in
    for pos = 0 to m - 1 do
      off.(eu.(pos) + 1) <- off.(eu.(pos) + 1) + 1;
      if ev.(pos) <> eu.(pos) then off.(ev.(pos) + 1) <- off.(ev.(pos) + 1) + 1
    done;
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let total = off.(n) in
    let adj_pos = Array.make (max total 1) 0 in
    let adj_other = Array.make (max total 1) 0 in
    let cursor = Array.sub off 0 n in
    for pos = 0 to m - 1 do
      let u = eu.(pos) and v = ev.(pos) in
      let cu = cursor.(u) in
      adj_pos.(cu) <- pos;
      adj_other.(cu) <- v;
      cursor.(u) <- cu + 1;
      if v <> u then begin
        let cv = cursor.(v) in
        adj_pos.(cv) <- pos;
        adj_other.(cv) <- u;
        cursor.(v) <- cv + 1
      end
    done;
    (off, adj_pos, adj_other)

  let of_order g ~order =
    let n = Ugraph.n_vertices g in
    let m = Array.length order in
    let eu = Array.make (max m 1) 0
    and ev = Array.make (max m 1) 0
    and ep = Array.make (max m 1) 0. in
    Array.iteri
      (fun pos eid ->
        let e = Ugraph.edge g eid in
        eu.(pos) <- e.Ugraph.u;
        ev.(pos) <- e.Ugraph.v;
        ep.(pos) <- e.Ugraph.p)
      order;
    let off, adj_pos, adj_other = build_adjacency ~n ~m eu ev in
    { n; m; eu; ev; ep; off; adj_pos; adj_other }

  let of_graph g = of_order g ~order:(Array.init (Ugraph.n_edges g) Fun.id)

  (* Packed-array constructor: the binary-graph fast path builds the
     snapshot straight from Bingraph's edge arrays, no adjacency-list
     Ugraph.t in between. Validation mirrors Ugraph.create so the
     snapshot invariants hold regardless of where the arrays came
     from. *)
  let of_arrays ~n ~eu ~ev ~ep =
    let m = Array.length eu in
    if Array.length ev <> m || Array.length ep <> m then
      invalid_arg "Kernel.Csr.of_arrays: eu/ev/ep length mismatch";
    if n < 0 then invalid_arg "Kernel.Csr.of_arrays: negative vertex count";
    for pos = 0 to m - 1 do
      let u = eu.(pos) and v = ev.(pos) and p = ep.(pos) in
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Kernel.Csr.of_arrays: edge (%d,%d) outside vertex range [0,%d)"
             u v n);
      if not (p >= 0. && p <= 1.) then
        invalid_arg
          (Printf.sprintf "Kernel.Csr.of_arrays: probability %g outside [0,1]" p)
    done;
    let eu = Array.copy eu and ev = Array.copy ev and ep = Array.copy ep in
    let eu = if m = 0 then [| 0 |] else eu
    and ev = if m = 0 then [| 0 |] else ev
    and ep = if m = 0 then [| 0. |] else ep in
    let off, adj_pos, adj_other = build_adjacency ~n ~m eu ev in
    { n; m; eu; ev; ep; off; adj_pos; adj_other }

  let n_vertices t = t.n
  let n_edges t = t.m

  let iter_incident t v f =
    for i = t.off.(v) to t.off.(v + 1) - 1 do
      f ~pos:t.adj_pos.(i) ~other:t.adj_other.(i)
    done
end

(* Bit-matrix transposition between the two packed layouts the kernels
   use: edge-major (one word per edge, bit = world — the bit-sliced
   draw slab) and world-major (one row of packed words per world — the
   layout Hash64 digests). Rows and columns are both packed LSB-first,
   Hash64.word_bits per word, rows padded to whole words. *)
module Bitslab = struct
  let word_bits = Hash64.word_bits
  let words_per_row ~cols = (cols + word_bits - 1) / word_bits

  let transpose ~src ~rows ~cols ~dst =
    let wpr_s = words_per_row ~cols and wpr_d = words_per_row ~cols:rows in
    Array.fill dst 0 (cols * wpr_d) 0;
    for r = 0 to rows - 1 do
      let base = r * wpr_s in
      for c = 0 to cols - 1 do
        if (src.(base + (c / word_bits)) lsr (c mod word_bits)) land 1 = 1
        then begin
          let d = (c * wpr_d) + (r / word_bits) in
          dst.(d) <- dst.(d) lor (1 lsl (r mod word_bits))
        end
      done
    done
end

type t = {
  (* Draw buffers. [present] holds the drawn-present positions of the
     last draw; [words] the packed mask bits of the last detail draw. *)
  mutable present : int array;
  mutable n_present : int;
  mutable words : int array;
  mutable mask_bits : int;
  (* Bit-sliced draw buffers. [slab.(pos)] holds the last
     [draw_bitsliced]'s outcome bits for edge [pos], one bit-lane per
     world; [tmask] is its world-major transpose ([transpose_worlds]),
     [tmask_wpr] packed words per world row. *)
  mutable slab : int array;
  mutable slab_edges : int;
  mutable tmask : int array;
  mutable tmask_wpr : int;
  (* The snapshot the last draw ran against. Draw buffers hold
     *positions*, which are only meaningful against that snapshot:
     connectivity entry points reject any other Csr instead of
     silently unioning garbage endpoints. *)
  mutable drawn_for : Csr.t;
  (* Generation-stamped union-find: an element whose [stamp] is not the
     current [gen] is an untouched singleton. [round_begin] bumps [gen]
     instead of resetting the arrays, so starting a round costs O(1)
     however large the last graph was. [tcnt] counts marked (required)
     elements per root; [live] counts roots with [tcnt > 0]. *)
  mutable parent : int array;
  mutable rank : int array;
  mutable tcnt : int array;
  mutable stamp : int array;
  mutable gen : int;
  mutable live : int;
  (* Edge-union attempts performed by the last connectivity entry point
     (summed over agreement sweeps and lane peels for the bit-sliced
     path) — the early-exit depth the observability layer histograms. *)
  mutable union_steps : int;
}

(* A Csr no caller can hold: fresh scratch rejects connectivity calls
   until its first draw. Compared by physical identity only. *)
let no_draw_yet : Csr.t =
  { Csr.n = 0; m = 0; eu = [||]; ev = [||]; ep = [||]; off = [| 0 |];
    adj_pos = [||]; adj_other = [||] }

let create () =
  {
    present = [||];
    n_present = 0;
    words = [||];
    mask_bits = 0;
    slab = [||];
    slab_edges = 0;
    tmask = [||];
    tmask_wpr = 0;
    drawn_for = no_draw_yet;
    parent = [||];
    rank = [||];
    tcnt = [||];
    stamp = [||];
    gen = 0;
    live = 0;
    union_steps = 0;
  }

let scratch_key : t Domain.DLS.key = Domain.DLS.new_key create
let scratch () = Domain.DLS.get scratch_key

let ensure_edges t m =
  if Array.length t.present < m then t.present <- Array.make (max m 1) 0

let ensure_words t bits =
  let nw = (bits + Hash64.word_bits - 1) / Hash64.word_bits in
  if Array.length t.words < nw then t.words <- Array.make (max nw 1) 0

(* ---- draws ---- *)

let draw t (c : Csr.t) rng =
  let m = c.Csr.m in
  ensure_edges t m;
  let ep = c.Csr.ep and present = t.present in
  let np = ref 0 in
  for pos = 0 to m - 1 do
    if Prng.bernoulli rng ep.(pos) then begin
      present.(!np) <- pos;
      incr np
    end
  done;
  t.n_present <- !np;
  t.drawn_for <- c

let draw_prob t (c : Csr.t) rng =
  let m = c.Csr.m in
  ensure_edges t m;
  ensure_words t m;
  let ep = c.Csr.ep and present = t.present and words = t.words in
  let np = ref 0 and acc = ref 0 and nbits = ref 0 and w = ref 0 in
  let prob = ref Xprob.one in
  for pos = 0 to m - 1 do
    let p = ep.(pos) in
    (* One Prng call per edge in position order, and the same
       float-operation order as the reference draw: both are part of
       the bit-identity contract. *)
    if Prng.bernoulli rng p then begin
      present.(!np) <- pos;
      incr np;
      acc := !acc lor (1 lsl !nbits);
      prob := Xprob.scale p !prob
    end
    else prob := Xprob.scale (1. -. p) !prob;
    incr nbits;
    if !nbits = Hash64.word_bits then begin
      words.(!w) <- !acc;
      incr w;
      acc := 0;
      nbits := 0
    end
  done;
  if !nbits > 0 then words.(!w) <- !acc;
  t.n_present <- !np;
  t.mask_bits <- m;
  t.drawn_for <- c;
  !prob

let draw_sub t (c : Csr.t) ~pos ~detail ~bernoulli =
  let m = c.Csr.m in
  let remaining = m - pos in
  ensure_edges t remaining;
  let ep = c.Csr.ep and present = t.present in
  let np = ref 0 in
  let logq = ref 0. in
  if detail then begin
    ensure_words t remaining;
    let words = t.words in
    let acc = ref 0 and nbits = ref 0 and w = ref 0 in
    for p = pos to m - 1 do
      let pe = ep.(p) in
      let exists = bernoulli pe in
      if exists then begin
        present.(!np) <- p;
        incr np;
        acc := !acc lor (1 lsl !nbits);
        if pe < 1. then logq := !logq +. Float.log pe
      end
      else logq := !logq +. Float.log1p (-.pe);
      incr nbits;
      if !nbits = Hash64.word_bits then begin
        words.(!w) <- !acc;
        incr w;
        acc := 0;
        nbits := 0
      end
    done;
    if !nbits > 0 then words.(!w) <- !acc;
    t.mask_bits <- remaining
  end
  else
    for p = pos to m - 1 do
      if bernoulli ep.(p) then begin
        present.(!np) <- p;
        incr np
      end
    done;
  t.n_present <- !np;
  t.drawn_for <- c;
  !logq

let n_present t = t.n_present
let mask_hash t = Hash64.mask_words t.words ~bits:t.mask_bits

(* ---- bit-sliced draws ---- *)

let ensure_slab t m =
  if Array.length t.slab < m then t.slab <- Array.make (max m 1) 0

let draw_bitsliced t (c : Csr.t) rng =
  let m = c.Csr.m in
  ensure_slab t m;
  let ep = c.Csr.ep and slab = t.slab in
  for pos = 0 to m - 1 do
    slab.(pos) <- Prng.Bitbatch.draw rng ep.(pos)
  done;
  t.slab_edges <- m;
  t.drawn_for <- c

let slab_word t pos =
  if pos < 0 || pos >= t.slab_edges then invalid_arg "Kernel.slab_word";
  t.slab.(pos)

let set_slab_word t pos w =
  if pos < 0 || pos >= t.slab_edges then invalid_arg "Kernel.set_slab_word";
  t.slab.(pos) <- w land Prng.Bitbatch.all

let transpose_worlds t =
  let m = t.slab_edges in
  let wpr = Bitslab.words_per_row ~cols:m in
  let need = Prng.Bitbatch.lanes * wpr in
  if need > 0 && Array.length t.tmask < need then t.tmask <- Array.make need 0;
  Bitslab.transpose ~src:t.slab ~rows:m ~cols:Prng.Bitbatch.lanes ~dst:t.tmask;
  t.tmask_wpr <- wpr

let world_hash t ~lane =
  Hash64.mask_words_sub t.tmask ~off:(lane * t.tmask_wpr) ~bits:t.slab_edges

(* ---- early-exit connectivity ---- *)

let ensure_elems t size =
  if Array.length t.parent < size then begin
    t.parent <- Array.make size 0;
    t.rank <- Array.make size 0;
    t.tcnt <- Array.make size 0;
    (* Fresh stamps are 0, which never equals a live generation
       (round_begin makes gen >= 1): everything starts stale. *)
    t.stamp <- Array.make size 0
  end

let round_begin t ~elems =
  ensure_elems t elems;
  if t.gen = max_int then begin
    (* Unreachable in practice; keep the stamp invariant anyway. *)
    Array.fill t.stamp 0 (Array.length t.stamp) 0;
    t.gen <- 0
  end;
  t.gen <- t.gen + 1;
  t.live <- 0

(* Lazily re-initialise an element on first touch this round. Interior
   nodes of a parent chain were all touched when they were unioned, so
   [find] only needs the one check at its entry point. *)
let touch t x =
  if t.stamp.(x) <> t.gen then begin
    t.stamp.(x) <- t.gen;
    t.parent.(x) <- x;
    t.rank.(x) <- 0;
    t.tcnt.(x) <- 0
  end

let find t x =
  touch t x;
  let parent = t.parent in
  let rec loop x =
    let p = parent.(x) in
    if p = x then x
    else begin
      let gp = parent.(p) in
      (* Path halving. *)
      parent.(x) <- gp;
      loop gp
    end
  in
  loop x

let mark t x =
  let r = find t x in
  if t.tcnt.(r) = 0 then t.live <- t.live + 1;
  t.tcnt.(r) <- t.tcnt.(r) + 1

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.tcnt.(rb) > 0 then begin
      if t.tcnt.(ra) > 0 then t.live <- t.live - 1;
      t.tcnt.(ra) <- t.tcnt.(ra) + t.tcnt.(rb);
      t.tcnt.(rb) <- 0
    end;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1
  end

let connected t = t.live <= 1

(* Positions in the draw buffers are indices into [drawn_for]; a
   different Csr (notably a different-sized graph reusing the same
   domain's scratch) would read them as unrelated endpoints and return
   a silently wrong verdict. One physical-equality test per round. *)
let check_drawn t (c : Csr.t) =
  if t.drawn_for != c then
    invalid_arg "Kernel: no draw against this Csr in scratch (draw first)"

let mark_terminals t terminals =
  for i = 0 to Array.length terminals - 1 do
    mark t terminals.(i)
  done

let union_drawn t (c : Csr.t) =
  check_drawn t c;
  let eu = c.Csr.eu and ev = c.Csr.ev and present = t.present in
  let np = t.n_present in
  let i = ref 0 in
  (* Early exit: [live] is monotone non-increasing under union, so
     stopping at [live <= 1] yields the same verdict as unioning every
     drawn edge. *)
  while t.live > 1 && !i < np do
    let pos = present.(!i) in
    union t eu.(pos) ev.(pos);
    incr i
  done;
  t.union_steps <- t.union_steps + !i;
  t.live <= 1

let union_steps t = t.union_steps

let connected_terminals t (c : Csr.t) terminals =
  round_begin t ~elems:c.Csr.n;
  t.union_steps <- 0;
  mark_terminals t terminals;
  union_drawn t c

(* ---- bit-sliced connectivity ---- *)

(* Union the slab edges present in lane [lane], early-exiting like
   [union_drawn]. The round must already be begun and marked. *)
let union_lane t (c : Csr.t) ~lane =
  let eu = c.Csr.eu and ev = c.Csr.ev and slab = t.slab in
  let m = t.slab_edges in
  let i = ref 0 in
  while t.live > 1 && !i < m do
    if (slab.(!i) lsr lane) land 1 = 1 then union t eu.(!i) ev.(!i);
    incr i
  done;
  t.union_steps <- t.union_steps + !i;
  t.live <= 1

let connected_lane t (c : Csr.t) terminals ~lane =
  check_drawn t c;
  if lane < 0 || lane >= Prng.Bitbatch.lanes then
    invalid_arg "Kernel.connected_lane";
  round_begin t ~elems:c.Csr.n;
  t.union_steps <- 0;
  mark_terminals t terminals;
  union_lane t c ~lane

let connected_lanes t (c : Csr.t) terminals ~active =
  check_drawn t c;
  let active = active land Prng.Bitbatch.all in
  if active = 0 then 0
  else begin
    let slab = t.slab and m = t.slab_edges in
    let eu = c.Csr.eu and ev = c.Csr.ev in
    (* Word-wide agreement sweeps before any per-lane work. Subset
       round: union only the edges every active lane drew; each lane's
       world is a superset of that, so if it already connects the
       terminals all lanes do. This also settles marked-component
       counts < 2 (single or duplicated terminals) with no union at
       all. *)
    round_begin t ~elems:c.Csr.n;
    t.union_steps <- 0;
    mark_terminals t terminals;
    let i = ref 0 in
    while t.live > 1 && !i < m do
      if slab.(!i) land active = active then union t eu.(!i) ev.(!i);
      incr i
    done;
    t.union_steps <- t.union_steps + !i;
    if t.live <= 1 then active
    else begin
      (* Superset round: union every edge any active lane drew; each
         lane's world is a subset, so if even this union fails to
         connect, every lane fails. *)
      round_begin t ~elems:c.Csr.n;
      mark_terminals t terminals;
      let i = ref 0 in
      while t.live > 1 && !i < m do
        if slab.(!i) land active <> 0 then union t eu.(!i) ev.(!i);
        incr i
      done;
      t.union_steps <- t.union_steps + !i;
      if t.live > 1 then 0
      else begin
        (* Lanes disagree: peel each active lane into its own
           early-exit round. *)
        let verdict = ref 0 in
        for lane = 0 to Prng.Bitbatch.lanes - 1 do
          if (active lsr lane) land 1 = 1 then begin
            round_begin t ~elems:c.Csr.n;
            mark_terminals t terminals;
            if union_lane t c ~lane then verdict := !verdict lor (1 lsl lane)
          end
        done;
        !verdict
      end
    end
  end

let world_prob t (c : Csr.t) ~lane =
  check_drawn t c;
  let ep = c.Csr.ep and slab = t.slab in
  let prob = ref Xprob.one in
  for pos = 0 to t.slab_edges - 1 do
    let p = ep.(pos) in
    if (slab.(pos) lsr lane) land 1 = 1 then prob := Xprob.scale p !prob
    else prob := Xprob.scale (1. -. p) !prob
  done;
  !prob
