(* netrel: command-line front end.

   Subcommands:
     estimate    approximate / exact network reliability of a graph
     stats       dataset statistics (Table 2 columns)
     preprocess  show the extension technique's reduction
     gen         emit a built-in synthetic dataset as an edge-list file *)

open Cmdliner
module D = Workload.Datasets
module S = Netrel.S2bdd
module R = Netrel.Reliability
module P = Preprocess.Pipeline

(* ---- graph sources ---- *)

let dataset_by_name name ~seed ~scale =
  match String.lowercase_ascii name with
  | "karate" -> Some (D.karate ~seed ())
  | "am-rv" | "amrv" | "am_rv" -> Some (D.am_rv ~seed ())
  | "dblp1" -> Some (D.dblp1 ~seed ~scale ())
  | "dblp2" -> Some (D.dblp2 ~seed ~scale ())
  | "tokyo" -> Some (D.tokyo ~seed ~scale ())
  | "nyc" -> Some (D.nyc ~seed ~scale ())
  | "hit-d" | "hitd" | "hit_direct" | "hit-direct" -> Some (D.hit_direct ~seed ~scale ())
  | _ -> None

let dataset_names = "karate, am-rv, dblp1, dblp2, tokyo, nyc, hit-d"

(* [--graph FILE] sniffs the 8-byte Bingraph magic, so binary
   containers work everywhere a text edge list does. For binary files
   the header digest rides along (third component) — the engine
   commands pass it to [Engine.query] and skip the O(m) re-hash. *)
let load_graph_full ~file ~dataset ~seed ~scale =
  match (file, dataset) with
  | Some path, None ->
    if Bingraph.is_binary_file path then begin
      let bg = Bingraph.load path in
      Bingraph.validate bg;
      Ok (Bingraph.to_graph bg, Filename.basename path, Some (Bingraph.digest bg))
    end
    else Ok (Ugraph.of_file path, Filename.basename path, None)
  | None, Some name -> (
    match dataset_by_name name ~seed ~scale with
    | Some d -> Ok (d.D.graph, d.D.abbr, None)
    | None ->
      Error (Printf.sprintf "unknown dataset %S (known: %s)" name dataset_names))
  | Some _, Some _ -> Error "--graph and --dataset are mutually exclusive"
  | None, None -> Error "one of --graph FILE or --dataset NAME is required"

let load_graph ~file ~dataset ~seed ~scale =
  Result.map (fun (g, name, _) -> (g, name)) (load_graph_full ~file ~dataset ~seed ~scale)

(* ---- shared options ---- *)

let graph_file =
  let doc = "Read the uncertain graph from $(docv) (edge-list format: first \
             data line is the vertex count, then `u v p` lines)." in
  Arg.(value & opt (some file) None & info [ "g"; "graph" ] ~docv:"FILE" ~doc)

let dataset_arg =
  let doc = Printf.sprintf "Use a built-in synthetic dataset: %s." dataset_names in
  Arg.(value & opt (some string) None & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let verbose_arg =
  let doc = "Show live run progress on stderr (alias for $(b,--progress))." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let progress_arg =
  let doc = "Render a live convergence line on stderr: current phase, \
             running estimate with its 95% CI half-width, samples drawn \
             (and rate), HT dedup ratio, construction layer/width." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let trace_arg =
  let doc = "Stream structured trace events (spans, instants, counters \
             over preprocessing, S2BDD layers, descents and sampler \
             chunks, one lane per domain) and write them to $(docv) on \
             exit — also on error exits, so partial traces stay valid." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc = "Trace file format: $(b,chrome) (Chrome trace-event JSON, \
             loadable in Perfetto or chrome://tracing; default) or \
             $(b,jsonl) (a header line plus one JSON object per event)." in
  Arg.(value
       & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
       & info [ "trace-format" ] ~docv:"FMT" ~doc)

let seed_arg =
  let doc = "Master random seed (graphs, terminals and sampling are all \
             deterministic in it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc)

let scale_arg =
  let doc = "Scale factor for built-in datasets (1.0 is the library default, \
             already ~10-20x below the paper's sizes)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FLOAT" ~doc)

let terminals_arg =
  let doc = "Comma-separated terminal vertex ids, e.g. $(b,0,5,9)." in
  Arg.(value & opt (some string) None & info [ "t"; "terminals" ] ~docv:"IDS" ~doc)

let jobs_arg =
  let doc = "Number of domains (cores) used for sampling. Estimates are \
             bit-identical at every value — $(docv) trades wall-clock for \
             cores, nothing else. Default: the machine's domain count." in
  Arg.(value & opt int (Par.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let k_arg =
  let doc = "Pick $(docv) terminals uniformly at random instead of \
             --terminals." in
  Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc)

let parse_terminals g ~terminals ~k ~seed =
  match (terminals, k) with
  | Some s, None ->
    (* Validate here, not deep in the library: out-of-range or duplicate
       ids otherwise surface as obscure failures several layers down. *)
    let n = Ugraph.n_vertices g in
    let rec go acc seen = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match int_of_string_opt x with
        | None ->
          Error
            (Printf.sprintf
               "could not parse --terminals: %S is not a vertex id (expected \
                e.g. 0,5,9)" x)
        | Some t when t < 0 || t >= n ->
          Error (Printf.sprintf "--terminals: vertex %d outside [0,%d)" t n)
        | Some t when List.mem t seen ->
          Error (Printf.sprintf "--terminals: duplicate terminal %d" t)
        | Some t -> go (t :: acc) (t :: seen) rest)
    in
    go [] [] (String.split_on_char ',' s |> List.map String.trim)
  | None, Some k -> Ok (Workload.Generators.random_terminals ~seed g ~k)
  | Some _, Some _ -> Error "--terminals and -k are mutually exclusive"
  | None, None -> Error "one of --terminals IDS or -k K is required"

let or_die = function
  | Ok x -> x
  | Error msg ->
    Printf.eprintf "netrel: %s\n" msg;
    exit 2

let check_jobs jobs =
  if jobs < 1 then
    or_die (Error (Printf.sprintf "--jobs must be >= 1 (got %d)" jobs))

(* Turn library precondition failures into clean CLI errors. *)
let guarded f =
  try f ()
  with Invalid_argument msg | Failure msg ->
    Printf.eprintf "netrel: %s\n" msg;
    exit 2

(* ---- estimate ---- *)

type method_ = Pro | Sampling_mc | Sampling_ht | Bdd | Brute

let method_conv =
  let parse = function
    | "pro" -> Ok Pro
    | "sampling-mc" | "mc" -> Ok Sampling_mc
    | "sampling-ht" | "ht" -> Ok Sampling_ht
    | "bdd" -> Ok Bdd
    | "brute" -> Ok Brute
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  Arg.conv (parse, fun fmt m ->
      Format.pp_print_string fmt
        (match m with
        | Pro -> "pro" | Sampling_mc -> "sampling-mc" | Sampling_ht -> "sampling-ht"
        | Bdd -> "bdd" | Brute -> "brute"))

let kernel_arg =
  let doc = "Sampling draw kernel for $(b,sampling-mc) / $(b,sampling-ht): \
             $(b,flat) (scalar draw, default) or $(b,bitsliced) \
             (word-parallel, 62 worlds per pass). Either kernel is \
             bit-identical to itself at every --jobs value, but the two \
             consume the seed's random streams differently, so estimates \
             agree statistically — not byte-for-byte — across kernels. \
             Ignored by the other methods." in
  Arg.(value
       & opt (enum [ ("flat", Mcsampling.Flat);
                     ("bitsliced", Mcsampling.Bitsliced) ])
           Mcsampling.Flat
       & info [ "kernel" ] ~docv:"KERNEL" ~doc)

(* Shared human-readable rendering of a sequential-stopping run. *)
let print_adaptive (r : Adaptive.result) dt =
  Printf.printf "R = %.10g%s\nci95 = [%.10g, %.10g]  (width %.4g, target %.4g)\n"
    r.Adaptive.value
    (if r.Adaptive.exact then "  (exact)" else "")
    r.Adaptive.lower r.Adaptive.upper r.Adaptive.ci_width
    r.Adaptive.target_width;
  Printf.printf "adaptive: %d samples in %d rounds, stop = %s\n"
    r.Adaptive.samples_used r.Adaptive.rounds
    (Adaptive.stop_name r.Adaptive.stop);
  Printf.printf "time: %s\n" (Relstats.format_seconds dt)

let adaptive_result_doc (r : Adaptive.result) =
  let module SD = Netrel.Statsdoc in
  SD.result_of_adaptive ~value:r.Adaptive.value ~lower:r.Adaptive.lower
    ~upper:r.Adaptive.upper ~exact:r.Adaptive.exact
    ~ci_width:r.Adaptive.ci_width ~target_width:r.Adaptive.target_width
    ~samples_used:r.Adaptive.samples_used
    ~samples_planned:r.Adaptive.samples_planned ~rounds:r.Adaptive.rounds
    ~stop:(Adaptive.stop_name r.Adaptive.stop)

(* --stats json: run the chosen method under a live observer and emit
   one structured stats document (Statsdoc) on stdout in place of the
   human-readable report. The observer never touches random streams,
   so the computed result is identical to the plain run; with
   NETREL_FAKE_CLOCK set the whole document is byte-stable in the
   seed (the cram test exercises exactly that). *)
let run_estimate_stats ~g ~name ~ts ~seed ~samples ~width ~ht ~no_ext ~method_
    ~jobs ~kernel ~trace ~ci_width ~max_samples =
  let module SD = Netrel.Statsdoc in
  let obs = Obs.create () in
  let t0 = Obs.now obs in
  (* Whole-run GC account (the document's top-level "gc" section, and
     Chrome counter events when tracing); the per-phase sections keep
     their own finer-grained deltas. *)
  let gc_emit =
    if Trace.enabled trace then Some (fun k v -> Trace.counter trace k v)
    else None
  in
  let method_name, result =
    Obs.gc_phase obs ?emit:gc_emit "gc" @@ fun () ->
    match (method_, ci_width) with
    | Pro, Some w ->
      let estimator = if ht then S.Horvitz_thompson else S.Monte_carlo in
      let config = { S.default_config with S.samples; S.width;
                     S.estimator; S.seed = seed } in
      let r = Adaptive.reliability ~obs ~trace ~config
                ~extension:(not no_ext) ~jobs ?max_samples g ~terminals:ts
                ~ci_width:w in
      ((if ht then "pro-ht" else "pro"), adaptive_result_doc r)
    | Sampling_mc, Some w ->
      let r = Adaptive.monte_carlo ~obs ~trace ~seed ~jobs ~kernel
                ?max_samples g ~terminals:ts ~ci_width:w in
      ("sampling-mc", adaptive_result_doc r)
    | Sampling_ht, Some w ->
      let r = Adaptive.horvitz_thompson ~obs ~trace ~seed ~jobs ~kernel
                ?max_samples g ~terminals:ts ~ci_width:w in
      ("sampling-ht", adaptive_result_doc r)
    | (Bdd | Brute), Some _ ->
      (* Rejected before dispatch; keep the match total. *)
      assert false
    | Pro, None ->
      let estimator = if ht then S.Horvitz_thompson else S.Monte_carlo in
      let config = { S.default_config with S.samples; S.width;
                     S.estimator; S.seed = seed } in
      let rep = R.estimate ~obs ~trace ~config ~extension:(not no_ext) ~jobs g
                  ~terminals:ts in
      ((if ht then "pro-ht" else "pro"), SD.result_of_report rep)
    | Sampling_mc, None ->
      let est =
        Mcsampling.monte_carlo ~obs ~trace ~seed ~jobs ~kernel g ~terminals:ts
          ~samples
      in
      ("sampling-mc", SD.result_of_estimate est)
    | Sampling_ht, None ->
      let est =
        Mcsampling.horvitz_thompson ~obs ~trace ~seed ~jobs ~kernel g
          ~terminals:ts ~samples
      in
      ("sampling-ht", SD.result_of_estimate est)
    | Bdd, None -> (
      match R.exact ~extension:(not no_ext) g ~terminals:ts with
      | Ok r -> ("bdd", SD.result_value ~value:r ~exact:true)
      | Error (`Node_budget_exceeded n) ->
        ( "bdd",
          Obs.Json.Obj
            [ ("error", Obs.Json.Str "node_budget_exceeded");
              ("nodes", Obs.Json.Int n) ] ))
    | Brute, None ->
      let r = Bddbase.Bruteforce.reliability g ~terminals:ts in
      ("brute", SD.result_value ~value:r ~exact:true)
  in
  let seconds = Obs.now obs -. t0 in
  let run_meta =
    { SD.command = "estimate"; method_ = method_name; graph = name;
      terminals = ts; seed; jobs = Par.effective_jobs jobs; samples; width }
  in
  let doc = SD.build ~obs ~run:run_meta ~seconds ~result in
  print_endline (Obs.Json.to_string ~pretty:true doc)

let estimate_cmd =
  let samples =
    let doc = "Plain-sampling budget $(docv) to match (Theorem 1 reduces it)." in
    Arg.(value & opt int 10_000 & info [ "s"; "samples" ] ~docv:"S" ~doc)
  in
  let width =
    let doc = "Maximum S2BDD layer width $(docv)." in
    Arg.(value & opt int 10_000 & info [ "w"; "width" ] ~docv:"W" ~doc)
  in
  let ht =
    let doc = "Use the Horvitz-Thompson estimator instead of Monte Carlo." in
    Arg.(value & flag & info [ "ht" ] ~doc)
  in
  let no_ext =
    let doc = "Disable the extension technique (prune/decompose/transform)." in
    Arg.(value & flag & info [ "no-extension" ] ~doc)
  in
  let ci_width =
    let doc = "Adaptive sequential stopping: instead of a fixed --samples \
               budget, draw sampling rounds until the 95% confidence \
               interval (Wilson score) is at most $(docv) wide or \
               --max-samples trips. Applies to $(b,pro), $(b,sampling-mc) \
               and $(b,sampling-ht); the round schedule is deterministic in \
               the seed, so results stay bit-identical at every --jobs \
               value." in
    Arg.(value & opt (some float) None
         & info [ "ci-width" ] ~docv:"WIDTH" ~doc)
  in
  let max_samples =
    let doc = "Hard sample cap for a --ci-width run (default 1000000)." in
    Arg.(value & opt (some int) None
         & info [ "max-samples" ] ~docv:"N" ~doc)
  in
  let method_ =
    let doc = "Computation method: $(b,pro) (the paper's approach, default), \
               $(b,sampling-mc), $(b,sampling-ht), $(b,bdd) (exact baseline), \
               $(b,brute) (exhaustive, tiny graphs only)." in
    Arg.(value & opt method_conv Pro & info [ "m"; "method" ] ~docv:"METHOD" ~doc)
  in
  let stats_fmt =
    let doc = "Emit machine-readable per-phase run statistics instead of the \
               human-readable report: $(docv) is $(b,none) (default) or \
               $(b,json) (one JSON document on stdout: run metadata, \
               preprocess / construction / sampling / par phase accounts, \
               result)." in
    Arg.(value & opt (enum [ ("none", `None); ("json", `Json) ]) `None
         & info [ "stats" ] ~docv:"FORMAT" ~doc)
  in
  let run verbose file dataset seed scale terminals k samples width ht no_ext
      ci_width max_samples method_ jobs kernel stats trace_file trace_format
      progress =
    guarded @@ fun () ->
    check_jobs jobs;
    (match (ci_width, max_samples, method_) with
    | Some _, _, (Bdd | Brute) ->
      or_die
        (Error "--ci-width applies to pro / sampling-mc / sampling-ht only")
    | None, Some _, _ -> or_die (Error "--max-samples requires --ci-width")
    | _ -> ());
    let g, name = or_die (load_graph ~file ~dataset ~seed ~scale) in
    let ts = or_die (parse_terminals g ~terminals ~k ~seed:(seed + 17)) in
    (try Ugraph.validate_terminals g ts
     with Invalid_argument msg -> or_die (Error msg));
    (* The trace sink is created only after every [or_die] above: those
       exit directly, while library failures below raise and unwind
       through [finalize], so an open --trace file is always written
       out (partial but valid) before [guarded] turns the exception
       into an error exit. *)
    let reporter =
      if progress || verbose then Some (Trace.Progress.create ()) else None
    in
    let trace =
      if trace_file = None && Option.is_none reporter then Trace.disabled
      else
        Trace.create
          ?on_event:
            (Option.map (fun r ev -> Trace.Progress.on_event r ev) reporter)
          ()
    in
    if Trace.enabled trace then Trace.install_par_hook trace;
    let finalize () =
      Option.iter Trace.Progress.finish reporter;
      match trace_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            match trace_format with
            | `Chrome -> Trace.write_chrome oc trace
            | `Jsonl -> Trace.write_jsonl oc trace)
    in
    Fun.protect ~finally:finalize @@ fun () ->
    match stats with
    | `Json -> run_estimate_stats ~g ~name ~ts ~seed ~samples ~width ~ht ~no_ext
                 ~method_ ~jobs ~kernel ~trace ~ci_width ~max_samples
    | `None ->
    Printf.printf "graph %s: %s\nterminals: [%s]\n" name
      (Format.asprintf "%a" Ugraph.pp_stats g)
      (String.concat ", " (List.map string_of_int ts));
    match (method_, ci_width) with
    | Pro, Some w ->
      let estimator = if ht then S.Horvitz_thompson else S.Monte_carlo in
      let config = { S.default_config with S.samples = samples; S.width = width;
                     S.estimator; S.seed = seed } in
      let r, dt =
        Relstats.time (fun () ->
            Adaptive.reliability ~trace ~config ~extension:(not no_ext) ~jobs
              ?max_samples g ~terminals:ts ~ci_width:w)
      in
      print_adaptive r dt
    | (Sampling_mc | Sampling_ht), Some w ->
      let f = if method_ = Sampling_mc then Adaptive.monte_carlo
              else Adaptive.horvitz_thompson in
      let r, dt =
        Relstats.time (fun () ->
            f ~trace ~seed ~jobs ~kernel ?max_samples g ~terminals:ts
              ~ci_width:w)
      in
      print_adaptive r dt
    | (Bdd | Brute), Some _ -> assert false (* rejected above *)
    | Pro, None ->
      let estimator = if ht then S.Horvitz_thompson else S.Monte_carlo in
      let config = { S.default_config with S.samples = samples; S.width = width;
                     S.estimator; S.seed = seed } in
      let rep, dt =
        Relstats.time (fun () ->
            R.estimate ~trace ~config ~extension:(not no_ext) ~jobs g
              ~terminals:ts)
      in
      Printf.printf "R = %.10g%s\nbounds = [%.10g, %.10g]\n" rep.R.value
        (if rep.R.exact then "  (exact)" else "")
        rep.R.lower rep.R.upper;
      Printf.printf "budget: s = %d -> s' = %d, %d descents drawn\n"
        rep.R.s_given rep.R.s_reduced rep.R.samples_drawn;
      Printf.printf "time: %s\n" (Relstats.format_seconds dt)
    | (Sampling_mc | Sampling_ht), None ->
      let f = if method_ = Sampling_mc then Mcsampling.monte_carlo
              else Mcsampling.horvitz_thompson in
      let est, dt =
        Relstats.time (fun () ->
            f ~trace ~seed ~jobs ~kernel g ~terminals:ts ~samples)
      in
      Printf.printf "R = %.10g  (%d samples, %d hits)\ntime: %s\n"
        est.Mcsampling.value est.Mcsampling.samples_used est.Mcsampling.hits
        (Relstats.format_seconds dt)
    | Bdd, None -> (
      let res, dt =
        Relstats.time (fun () ->
            R.exact ~extension:(not no_ext) g ~terminals:ts)
      in
      match res with
      | Ok r -> Printf.printf "R = %.10g  (exact)\ntime: %s\n" r
                  (Relstats.format_seconds dt)
      | Error (`Node_budget_exceeded n) ->
        Printf.printf "DNF: BDD node budget exceeded at %d nodes (%s)\n" n
          (Relstats.format_seconds dt))
    | Brute, None ->
      let r, dt =
        Relstats.time (fun () -> Bddbase.Bruteforce.reliability g ~terminals:ts)
      in
      Printf.printf "R = %.10g  (exhaustive over 2^%d possible graphs)\ntime: %s\n"
        r (Ugraph.n_edges g) (Relstats.format_seconds dt)
  in
  let doc = "Compute the network reliability of terminals in an uncertain graph" in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(const run $ verbose_arg $ graph_file $ dataset_arg $ seed_arg $ scale_arg
          $ terminals_arg $ k_arg $ samples $ width $ ht $ no_ext $ ci_width
          $ max_samples $ method_ $ jobs_arg $ kernel_arg $ stats_fmt
          $ trace_arg $ trace_format_arg $ progress_arg)

(* ---- stats ---- *)

let stats_cmd =
  let run file dataset seed scale = guarded @@ fun () ->
    match (file, dataset) with
    | None, None ->
      print_endline D.table2_header;
      List.iter (fun d -> print_endline (D.table2_row d)) (D.all ~seed ~scale ())
    | _ ->
      let g, name = or_die (load_graph ~file ~dataset ~seed ~scale) in
      Printf.printf "%s: %s\n" name (Format.asprintf "%a" Ugraph.pp_stats g);
      let bridges = Graphalgo.Bridges.bridge_eids g in
      let _, comps = Graphalgo.Connectivity.components g in
      Printf.printf "connected components: %d, bridges: %d\n" comps
        (List.length bridges)
  in
  let doc = "Print dataset statistics (all built-ins when no source is given)" in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ graph_file $ dataset_arg $ seed_arg $ scale_arg)

(* ---- preprocess ---- *)

let preprocess_cmd =
  let run file dataset seed scale terminals k = guarded @@ fun () ->
    let g, name = or_die (load_graph ~file ~dataset ~seed ~scale) in
    let ts = or_die (parse_terminals g ~terminals ~k ~seed:(seed + 17)) in
    Printf.printf "graph %s: %s\n" name (Format.asprintf "%a" Ugraph.pp_stats g);
    match P.run g ~terminals:ts with
    | P.Trivial r -> Printf.printf "resolved outright: R = %s\n" (Xprob.to_string r)
    | P.Reduced { pb; subproblems; stats } ->
      Printf.printf
        "pruned: %d -> %d vertices, %d -> %d edges\n\
         decomposed at %d bridges (pb = %s) into %d subproblem(s)\n\
         transformed to %d edges total (reduction ratio %.3f, %d rounds)\n"
        stats.P.original_vertices stats.P.pruned_vertices stats.P.original_edges
        stats.P.pruned_edges stats.P.n_bridges (Xprob.to_string pb)
        stats.P.n_subproblems stats.P.final_edges
        (P.reduction_ratio stats) stats.P.transform_rounds;
      List.iteri
        (fun i (sp : P.subproblem) ->
          Printf.printf "  #%d: %s, terminals [%s]\n" i
            (Format.asprintf "%a" Ugraph.pp_stats sp.P.graph)
            (String.concat ", " (List.map string_of_int sp.P.terminals)))
        subproblems
  in
  let doc = "Show the extension technique's reduction (Section 5)" in
  Cmd.v (Cmd.info "preprocess" ~doc)
    Term.(const run $ graph_file $ dataset_arg $ seed_arg $ scale_arg
          $ terminals_arg $ k_arg)

(* ---- gen ---- *)

let gen_cmd =
  let out =
    let doc = "Write the edge list to $(docv) (stdout when omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let dataset_req =
    let doc = Printf.sprintf "Dataset to generate: %s." dataset_names in
    Arg.(required & opt (some string) None & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)
  in
  let run dataset seed scale out = guarded @@ fun () ->
    match dataset_by_name dataset ~seed ~scale with
    | None ->
      or_die (Error (Printf.sprintf "unknown dataset %S (known: %s)" dataset
                       dataset_names))
    | Some d -> (
      match out with
      | Some path ->
        Ugraph.to_file path d.D.graph;
        Printf.printf "wrote %s (%s)\n" path
          (Format.asprintf "%a" Ugraph.pp_stats d.D.graph)
      | None -> Ugraph.to_channel stdout d.D.graph)
  in
  let doc = "Generate a built-in synthetic dataset as an edge-list file" in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run $ dataset_req $ seed_arg $ scale_arg $ out)

(* ---- convert ---- *)

let convert_cmd =
  let input_pos =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"INPUT"
             ~doc:"Input graph: text edge list, SNAP/KONECT edge list, \
                   or binary container.")
  in
  let output_pos =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OUTPUT"
             ~doc:"Output file; a $(b,.nrb) extension selects binary \
                   unless $(b,--to) says otherwise.")
  in
  let from_arg =
    let doc = "Input format: $(b,auto) (sniffed), $(b,text), $(b,snap), \
               or $(b,bin)." in
    Arg.(value
         & opt (enum [ ("auto", `Auto); ("text", `Text); ("snap", `Snap);
                       ("bin", `Bin) ]) `Auto
         & info [ "from" ] ~docv:"FMT" ~doc)
  in
  let to_arg =
    let doc = "Output format: $(b,auto) (by extension), $(b,text), or \
               $(b,bin)." in
    Arg.(value
         & opt (enum [ ("auto", `Auto); ("text", `Text); ("bin", `Bin) ]) `Auto
         & info [ "to" ] ~docv:"FMT" ~doc)
  in
  let prob_arg =
    let doc = "Default probability for SNAP/KONECT edges without a \
               probability column." in
    Arg.(value & opt float 0.5 & info [ "prob" ] ~docv:"P" ~doc)
  in
  (* Our text format opens with a vertex-count line (one integer token,
     comments aside); SNAP rows always carry at least two fields. *)
  let sniff_text path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec first_data () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            let t = String.trim line in
            if t = "" || t.[0] = '#' || t.[0] = '%' then first_data ()
            else Some t
        in
        match first_data () with
        | None -> `Text
        | Some t ->
          if String.exists (fun c -> c = ' ' || c = '\t') t then `Snap
          else `Text)
  in
  let run from_fmt to_fmt prob input output = guarded @@ fun () ->
    let from_fmt =
      match from_fmt with
      | `Auto -> if Bingraph.is_binary_file input then `Bin else sniff_text input
      | (`Text | `Snap | `Bin) as f -> f
    in
    let bg =
      match from_fmt with
      | `Bin ->
        let bg = Bingraph.load input in
        Bingraph.validate bg;
        bg
      | `Text -> Bingraph.of_graph (Ugraph.of_file input)
      | `Snap -> Bingraph.Snap.of_file ~default_prob:prob input
    in
    let to_fmt =
      match to_fmt with
      | `Auto -> if Filename.check_suffix output ".nrb" then `Bin else `Text
      | (`Text | `Bin) as f -> f
    in
    (match to_fmt with
    | `Bin -> Bingraph.to_file output bg
    | `Text -> Ugraph.to_file output (Bingraph.to_graph bg));
    Printf.printf "wrote %s (%s, %d vertices, %d edges, digest %016x)\n"
      output
      (match to_fmt with `Bin -> "binary" | `Text -> "text")
      (Bingraph.n_vertices bg) (Bingraph.n_edges bg) (Bingraph.digest bg)
  in
  let doc = "Convert between text, SNAP/KONECT, and binary (mmap-able) \
             graph formats" in
  Cmd.v (Cmd.info "convert" ~doc)
    Term.(const run $ from_arg $ to_arg $ prob_arg $ input_pos $ output_pos)

(* ---- bounds ---- *)

let bounds_cmd =
  let width =
    let doc = "Maximum S2BDD layer width." in
    Arg.(value & opt int 10_000 & info [ "w"; "width" ] ~docv:"W" ~doc)
  in
  let threshold =
    let doc = "Also report whether the bounds decide $(docv)." in
    Arg.(value & opt (some float) None & info [ "threshold" ] ~docv:"P" ~doc)
  in
  let run file dataset seed scale terminals k width threshold = guarded @@ fun () ->
    let g, name = or_die (load_graph ~file ~dataset ~seed ~scale) in
    let ts = or_die (parse_terminals g ~terminals ~k ~seed:(seed + 17)) in
    Printf.printf "graph %s: %s\n" name (Format.asprintf "%a" Ugraph.pp_stats g);
    let b, dt =
      Relstats.time (fun () -> Netrel.Bounds.compute ~width g ~terminals:ts)
    in
    Printf.printf "proven bounds: [%.10g, %.10g]%s\n" b.Netrel.Bounds.lower
      b.Netrel.Bounds.upper
      (if b.Netrel.Bounds.exact then "  (exact)" else "");
    (match threshold with
    | None -> ()
    | Some p ->
      let verdict =
        match Netrel.Bounds.decides b ~threshold:p with
        | `Above -> "R >= threshold (proven)"
        | `Below -> "R < threshold (proven)"
        | `Unknown -> "undecided at this construction budget"
      in
      Printf.printf "threshold %.4g: %s\n" p verdict);
    Printf.printf "time: %s\n" (Relstats.format_seconds dt)
  in
  let doc = "Prove reliability bounds without sampling (anytime bounds)" in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(const run $ graph_file $ dataset_arg $ seed_arg $ scale_arg
          $ terminals_arg $ k_arg $ width $ threshold)

(* ---- search ---- *)

let search_cmd =
  let sources =
    let doc = "Comma-separated source vertex ids." in
    Arg.(required & opt (some string) None & info [ "sources" ] ~docv:"IDS" ~doc)
  in
  let eta =
    let doc = "Reliability threshold in [0, 1]." in
    Arg.(value & opt float 0.5 & info [ "eta" ] ~docv:"ETA" ~doc)
  in
  let samples =
    let doc = "Shared sample count." in
    Arg.(value & opt int 2_000 & info [ "s"; "samples" ] ~docv:"S" ~doc)
  in
  let run file dataset seed scale sources eta samples = guarded @@ fun () ->
    let g, name = or_die (load_graph ~file ~dataset ~seed ~scale) in
    let srcs =
      or_die
        (try
           Ok (String.split_on_char ',' sources
              |> List.map (fun x -> int_of_string (String.trim x)))
         with Failure _ -> Error "could not parse --sources")
    in
    Printf.printf "graph %s: %s\n" name (Format.asprintf "%a" Ugraph.pp_stats g);
    let hits, dt =
      Relstats.time (fun () ->
          Uapps.Reliability_search.search ~seed ~samples g ~sources:srcs ~eta)
    in
    Printf.printf "%d vertices reachable with probability >= %.3f (%s):\n"
      (List.length hits) eta (Relstats.format_seconds dt);
    List.iter
      (fun r ->
        Printf.printf "  %6d  %.4f\n" r.Uapps.Reliability_search.vertex
          r.Uapps.Reliability_search.reliability)
      hits
  in
  let doc = "Reliability search: vertices reliably reachable from sources" in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(const run $ graph_file $ dataset_arg $ seed_arg $ scale_arg $ sources
          $ eta $ samples)

(* ---- selfcheck ---- *)

let selfcheck_cmd =
  let trials =
    let doc = "Number of random corpus cases on top of the fixed adversarial \
               and generator shapes. Also scales the calibration replicate \
               count." in
    Arg.(value & opt int 50 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let json =
    let doc = "Emit the machine-readable selfcheck report (one JSON document \
               on stdout: run metadata, per-section tallies, violations with \
               reproducer artifacts, overall result) instead of the \
               human-readable summary." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run trials seed json trace_file trace_format = guarded @@ fun () ->
    if trials < 0 then or_die (Error "--trials must be >= 0");
    let trace = if trace_file = None then Trace.disabled else Trace.create () in
    if Trace.enabled trace then Trace.install_par_hook trace;
    let finalize () =
      match trace_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            match trace_format with
            | `Chrome -> Trace.write_chrome oc trace
            | `Jsonl -> Trace.write_jsonl oc trace)
    in
    let rep =
      Fun.protect ~finally:finalize @@ fun () ->
      Check.run ~trace ~trials ~seed ()
    in
    if json then
      print_endline (Obs.Json.to_string ~pretty:true (Check.report_json rep))
    else Format.printf "%a" Check.pp_report rep;
    if not (Check.ok rep) then exit 1
  in
  let doc = "Differential self-validation: every estimator against the exact \
             oracle, metamorphic identities and CI calibration" in
  Cmd.v (Cmd.info "selfcheck" ~doc)
    Term.(const run $ trials $ seed_arg $ json $ trace_arg $ trace_format_arg)

(* ---- reach ---- *)

let reach_cmd =
  let source =
    Arg.(required & opt (some int) None
         & info [ "source" ] ~docv:"U" ~doc:"Source vertex.")
  in
  let target =
    Arg.(required & opt (some int) None
         & info [ "target" ] ~docv:"V" ~doc:"Target vertex.")
  in
  let dist =
    let doc = "Hop-distance bound; omit for plain s-t reliability." in
    Arg.(value & opt (some int) None & info [ "max-dist" ] ~docv:"D" ~doc)
  in
  let samples =
    Arg.(value & opt int 10_000
         & info [ "s"; "samples" ] ~docv:"S" ~doc:"Sample budget.")
  in
  let run file dataset seed scale source target dist samples = guarded @@ fun () ->
    let g, name = or_die (load_graph ~file ~dataset ~seed ~scale) in
    Printf.printf "graph %s: %s\n" name (Format.asprintf "%a" Ugraph.pp_stats g);
    match dist with
    | None ->
      let rep, dt =
        Relstats.time (fun () -> Reach.two_terminal g ~source ~target)
      in
      Printf.printf "s-t reliability = %.10g%s  bounds [%.4g, %.4g]\ntime: %s\n"
        rep.Netrel.Reliability.value
        (if rep.Netrel.Reliability.exact then " (exact)" else "")
        rep.Netrel.Reliability.lower rep.Netrel.Reliability.upper
        (Relstats.format_seconds dt)
    | Some d ->
      let est, dt =
        Relstats.time (fun () ->
            Reach.distance_constrained_mc ~seed g ~source ~target ~d ~samples)
      in
      Printf.printf "Pr(dist(%d, %d) <= %d) = %.6g  (%d samples, %s)\n" source
        target d est.Reach.value est.Reach.samples_used
        (Relstats.format_seconds dt)
  in
  let doc = "Two-terminal and distance-constrained reachability" in
  Cmd.v (Cmd.info "reach" ~doc)
    Term.(const run $ graph_file $ dataset_arg $ seed_arg $ scale_arg $ source
          $ target $ dist $ samples)

(* ---- batch / serve ---- *)

(* One query per line: whitespace-separated key=value tokens.
     terminals=0,5,9 [method=pro|pro-ht|sampling-mc|sampling-ht]
     [samples=N] [width=W] [ci-width=X] [max-samples=N] [seed=N]
     [kernel=flat|bitsliced]
   Unset keys fall back to the command-line defaults. Blank lines and
   '#' comments are skipped by both commands. *)
let parse_query_line g ~defaults line =
  let fields =
    String.map (function '\t' -> ' ' | c -> c) (String.trim line)
    |> String.split_on_char ' '
    |> List.filter (fun s -> s <> "")
  in
  let rec go q ~has_terminals = function
    | [] ->
      if has_terminals then Ok q
      else Error "query line is missing terminals=IDS"
    | tok :: rest -> (
      match String.index_opt tok '=' with
      | None ->
        Error (Printf.sprintf "bad query token %S (expected key=value)" tok)
      | Some i ->
        let k = String.sub tok 0 i in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        let continue q = go q ~has_terminals rest in
        let int_field f =
          match int_of_string_opt v with
          | Some n -> continue (f n)
          | None -> Error (Printf.sprintf "query key %s: bad integer %S" k v)
        in
        (match k with
        | "terminals" | "t" -> (
          match parse_terminals g ~terminals:(Some v) ~k:None ~seed:0 with
          | Ok ts -> go { q with Engine.terminals = ts } ~has_terminals:true rest
          | Error e -> Error e)
        | "method" | "m" -> (
          match Engine.method_of_name v with
          | Some m -> continue { q with Engine.method_ = m }
          | None ->
            Error
              (Printf.sprintf
                 "unknown query method %S (pro, pro-ht, sampling-mc, \
                  sampling-ht)" v))
        | "samples" | "s" -> int_field (fun n -> { q with Engine.samples = n })
        | "width" | "w" -> int_field (fun n -> { q with Engine.width = n })
        | "max-samples" ->
          int_field (fun n -> { q with Engine.max_samples = Some n })
        | "seed" -> int_field (fun n -> { q with Engine.seed = n })
        | "ci-width" -> (
          match float_of_string_opt v with
          | Some w -> continue { q with Engine.ci_width = Some w }
          | None -> Error (Printf.sprintf "query key ci-width: bad float %S" v))
        | "kernel" -> (
          match String.lowercase_ascii v with
          | "flat" -> continue { q with Engine.kernel = Mcsampling.Flat }
          | "bitsliced" ->
            continue { q with Engine.kernel = Mcsampling.Bitsliced }
          | _ ->
            Error
              (Printf.sprintf "unknown kernel %S (flat, bitsliced)" v))
        | _ -> Error (Printf.sprintf "unknown query key %S" k)))
  in
  go defaults ~has_terminals:false fields

let query_doc ~command ~graph_name (q : Engine.query) (a : Engine.answer)
    ~seconds =
  let module SD = Netrel.Statsdoc in
  let run_meta =
    { SD.command; method_ = a.Engine.method_name; graph = graph_name;
      terminals = q.Engine.terminals; seed = q.Engine.seed;
      jobs = Par.effective_jobs q.Engine.jobs; samples = q.Engine.samples;
      width = q.Engine.width }
  in
  SD.build ~obs:a.Engine.obs ~run:run_meta ~seconds ~result:a.Engine.result

let batch_samples_arg =
  let doc = "Default plain-sampling budget for query lines without \
             $(b,samples=)." in
  Arg.(value & opt int 10_000 & info [ "s"; "samples" ] ~docv:"S" ~doc)

let batch_width_arg =
  let doc = "Default maximum S2BDD layer width for query lines without \
             $(b,width=)." in
  Arg.(value & opt int 10_000 & info [ "w"; "width" ] ~docv:"W" ~doc)

let batch_cmd =
  let file_pos =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"Newline-delimited query file: one \
                   $(b,terminals=...) $(b,key=value) line per query.")
  in
  let run file dataset seed scale jobs kernel samples width qfile =
    guarded @@ fun () ->
    check_jobs jobs;
    let g, name, digest = or_die (load_graph_full ~file ~dataset ~seed ~scale) in
    let obs = Obs.create () in
    let eng = Engine.create ~obs () in
    let defaults =
      { Engine.default with Engine.samples; width; seed; jobs; kernel }
    in
    let ic = open_in qfile in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec read acc =
            match input_line ic with
            | l -> read (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          read [])
    in
    List.iter
      (fun line ->
        let t = String.trim line in
        if t <> "" && t.[0] <> '#' then begin
          let q = or_die (parse_query_line g ~defaults line) in
          let t0 = Obs.now obs in
          let a = Engine.query ?digest eng g q in
          let seconds = Obs.now obs -. t0 in
          print_endline
            (Obs.Json.to_string ~pretty:true
               (query_doc ~command:"batch" ~graph_name:name q a ~seconds))
        end)
      lines;
    (* Closing summary: the cache counters prove the amortization
       (preprocessing/construction executed once, later queries hit). *)
    print_endline (Obs.Json.to_string ~pretty:true (Engine.summary_json eng))
  in
  let doc = "Answer many reliability queries against one graph through the \
             amortized engine (one stats document per query, then the \
             engine cache summary)" in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const run $ graph_file $ dataset_arg $ seed_arg $ scale_arg
          $ jobs_arg $ kernel_arg $ batch_samples_arg $ batch_width_arg
          $ file_pos)

let serve_cmd =
  let run file dataset seed scale jobs kernel samples width =
    guarded @@ fun () ->
    check_jobs jobs;
    let g, name, digest = or_die (load_graph_full ~file ~dataset ~seed ~scale) in
    let obs = Obs.create () in
    let eng = Engine.create ~obs () in
    let defaults =
      { Engine.default with Engine.samples; width; seed; jobs; kernel }
    in
    (* Line protocol on stdin/stdout, one compact JSON document per
       answer; errors keep the server alive. [stats] emits the engine
       cache summary, [quit] (or EOF) ends the session. *)
    let respond doc = print_endline (Obs.Json.to_string ~pretty:false doc) in
    let rec loop () =
      match input_line stdin with
      | exception End_of_file -> ()
      | line ->
        let t = String.trim line in
        if t = "" || t.[0] = '#' then loop ()
        else if t = "quit" || t = "exit" then ()
        else if t = "stats" then begin
          respond (Engine.summary_json eng);
          loop ()
        end
        else begin
          (match parse_query_line g ~defaults line with
          | Error msg -> respond (Obs.Json.Obj [ ("error", Obs.Json.Str msg) ])
          | Ok q -> (
            match
              let t0 = Obs.now obs in
              let a = Engine.query ?digest eng g q in
              (a, Obs.now obs -. t0)
            with
            | a, seconds ->
              respond (query_doc ~command:"serve" ~graph_name:name q a ~seconds)
            | exception (Invalid_argument msg | Failure msg) ->
              respond (Obs.Json.Obj [ ("error", Obs.Json.Str msg) ])));
          loop ()
        end
    in
    loop ()
  in
  let doc = "Serve reliability queries over a line protocol on \
             stdin/stdout, amortizing preprocessing and construction \
             across queries" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ graph_file $ dataset_arg $ seed_arg $ scale_arg
          $ jobs_arg $ kernel_arg $ batch_samples_arg $ batch_width_arg)

(* ---- benchdiff ---- *)

let benchdiff_cmd =
  let module B = Netrel.Benchdiff in
  let old_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"OLD" ~doc:"Baseline BENCH_*.json document.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"NEW" ~doc:"Candidate BENCH_*.json document.")
  in
  let tolerance =
    let doc = "Relative tolerance on each metric's median (0.25 = a 25% \
               shift in the bad direction is a regression). The realised \
               per-row threshold is the max of this, the MAD-based noise \
               band of the baseline's repeats, and the metric's absolute \
               floor." in
    Arg.(value & opt float B.default_rel_tol
         & info [ "tolerance" ] ~docv:"REL" ~doc)
  in
  let mad_mult =
    let doc = "Multiplier on the baseline repeats' median absolute \
               deviation (default 6.0, ~4 sigma for normal noise)." in
    Arg.(value & opt float B.default_mad_mult
         & info [ "mad-mult" ] ~docv:"M" ~doc)
  in
  let json =
    let doc = "Emit the comparison as one JSON document instead of the \
               human-readable table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run old_file new_file tolerance mad_mult json = guarded @@ fun () ->
    let parse path =
      let ic = open_in path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      try Obs.Json.of_string_exn s
      with Obs.Json.Parse_error msg -> or_die (Error (path ^ ": " ^ msg))
    in
    let old_doc = parse old_file and new_doc = parse new_file in
    match
      B.compare_docs ~rel_tol:tolerance ~mad_mult ~old_doc ~new_doc ()
    with
    | Error msg -> or_die (Error msg)
    | Ok rep ->
      if json then
        print_endline (Obs.Json.to_string ~pretty:true (B.render_json rep))
      else print_string (B.render_human rep);
      if B.regressed rep then exit 1
  in
  let doc = "Compare two BENCH_*.json documents with noise-aware \
             per-metric thresholds (median-of-repeats, MAD bands, \
             direction-aware); exits 1 on regression, 2 on unusable \
             input" in
  Cmd.v (Cmd.info "benchdiff" ~doc)
    Term.(const run $ old_file $ new_file $ tolerance $ mad_mult $ json)

let () =
  let doc = "network reliability in uncertain graphs (S2BDD, EDBT 2019)" in
  let info = Cmd.info "netrel" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ estimate_cmd; stats_cmd; preprocess_cmd; gen_cmd; convert_cmd;
            bounds_cmd; search_cmd; reach_cmd; selfcheck_cmd; batch_cmd;
            serve_cmd; benchdiff_cmd ]))
