type edge = { u : int; v : int; p : float }

(* CSR adjacency: the incident edge ids of vertex [v] are
   [eid.(offsets.(v)) .. eid.(offsets.(v+1) - 1)], with [nbr] holding the
   matching opposite endpoints. Self-loops appear once. *)
type t = {
  n : int;
  edge_arr : edge array;
  offsets : int array;
  nbr : int array;
  eid : int array;
}

let check_edge n e =
  if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n then
    invalid_arg
      (Printf.sprintf "Ugraph: edge (%d,%d) outside vertex range [0,%d)" e.u e.v n);
  if Float.is_nan e.p || e.p < 0. || e.p > 1. then
    invalid_arg (Printf.sprintf "Ugraph: probability %g outside [0,1]" e.p)

let build n edge_arr =
  Array.iter (check_edge n) edge_arr;
  let deg = Array.make n 0 in
  let bump v = deg.(v) <- deg.(v) + 1 in
  Array.iter
    (fun e ->
      bump e.u;
      if e.v <> e.u then bump e.v)
    edge_arr;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let m2 = offsets.(n) in
  let nbr = Array.make m2 0 and eid = Array.make m2 0 in
  let cursor = Array.copy offsets in
  Array.iteri
    (fun i e ->
      let put v other =
        nbr.(cursor.(v)) <- other;
        eid.(cursor.(v)) <- i;
        cursor.(v) <- cursor.(v) + 1
      in
      put e.u e.v;
      if e.v <> e.u then put e.v e.u)
    edge_arr;
  { n; edge_arr; offsets; nbr; eid }

let of_arrays ~n edges = build n (Array.copy edges)
let create ~n edges = build n (Array.of_list edges)

let n_vertices g = g.n
let n_edges g = Array.length g.edge_arr
let edge g i = g.edge_arr.(i)
let edges g = Array.copy g.edge_arr
let iter_edges f g = Array.iteri f g.edge_arr

let fold_edges f init g =
  let acc = ref init in
  Array.iteri (fun i e -> acc := f !acc i e) g.edge_arr;
  !acc

let degree g v = g.offsets.(v + 1) - g.offsets.(v)

let iter_incident g v f =
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f ~eid:g.eid.(i) ~other:g.nbr.(i)
  done

let incident_eids g v =
  Array.sub g.eid g.offsets.(v) (degree g v)

let incident_get g v i =
  let j = g.offsets.(v) + i in
  (g.eid.(j), g.nbr.(j))

let neighbours g v = Array.sub g.nbr g.offsets.(v) (degree g v)

let other_endpoint e v =
  if e.u = v then e.v
  else if e.v = v then e.u
  else invalid_arg "Ugraph.other_endpoint: vertex not an endpoint"

let has_self_loop g = Array.exists (fun e -> e.u = e.v) g.edge_arr

let has_parallel_edge g =
  let seen = Hashtbl.create (n_edges g) in
  Array.exists
    (fun e ->
      let key = if e.u <= e.v then (e.u, e.v) else (e.v, e.u) in
      if Hashtbl.mem seen key then true
      else begin
        Hashtbl.add seen key ();
        false
      end)
    g.edge_arr

let avg_degree g =
  if g.n = 0 then 0. else 2. *. float_of_int (n_edges g) /. float_of_int g.n

let avg_prob g =
  let m = n_edges g in
  if m = 0 then 0.
  else Array.fold_left (fun acc e -> acc +. e.p) 0. g.edge_arr /. float_of_int m

let map_probs f g =
  build g.n (Array.mapi (fun i e -> { e with p = f i e }) g.edge_arr)

let induced g vs =
  let new_of_old = Hashtbl.create (Array.length vs) in
  Array.iteri
    (fun new_id old_id ->
      if Hashtbl.mem new_of_old old_id then
        invalid_arg "Ugraph.induced: duplicate vertex";
      if old_id < 0 || old_id >= g.n then
        invalid_arg "Ugraph.induced: vertex out of range";
      Hashtbl.add new_of_old old_id new_id)
    vs;
  let sub_edges = ref [] in
  Array.iter
    (fun e ->
      match (Hashtbl.find_opt new_of_old e.u, Hashtbl.find_opt new_of_old e.v) with
      | Some u', Some v' -> sub_edges := { u = u'; v = v'; p = e.p } :: !sub_edges
      | _ -> ())
    g.edge_arr;
  (create ~n:(Array.length vs) (List.rev !sub_edges), Array.copy vs)

let relabel_terminals ~old_of_new ts =
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun new_id old_id -> Hashtbl.add new_of_old old_id new_id) old_of_new;
  List.filter_map (fun t -> Hashtbl.find_opt new_of_old t) ts

let validate_terminals g ts =
  if ts = [] then invalid_arg "Ugraph.validate_terminals: empty terminal set";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if t < 0 || t >= g.n then
        invalid_arg (Printf.sprintf "Ugraph.validate_terminals: vertex %d out of range" t);
      if Hashtbl.mem seen t then
        invalid_arg (Printf.sprintf "Ugraph.validate_terminals: duplicate terminal %d" t);
      Hashtbl.add seen t ())
    ts

(* ---- text I/O ---- *)

let to_buffer buf g =
  Buffer.add_string buf (Printf.sprintf "# uncertain graph: %d vertices, %d edges\n" g.n (n_edges g));
  Buffer.add_string buf (string_of_int g.n);
  Buffer.add_char buf '\n';
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" e.u e.v e.p))
    g.edge_arr

let to_channel oc g =
  let buf = Buffer.create 65536 in
  to_buffer buf g;
  Buffer.output_buffer oc buf

let to_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc g)

(* Streaming parser: lines are read one at a time into a reusable
   buffer and fields are sliced out of it in place, so parsing a
   million-edge file allocates three short token strings per edge
   instead of the whole file as a line list plus a per-line field
   list. SNAP/KONECT exports are tab-separated and DOS files carry a
   trailing CR; both count as blanks between fields. The canonical
   writer comment `# uncertain graph: n vertices, m edges` doubles as
   a truncation guard: when the first line carries it, the edge count
   at end of input must match the declared one. *)

let is_blank = function ' ' | '\t' | '\r' -> true | _ -> false

(* [next_line buf] refills [buf] with the next raw line (newline
   stripped) and returns false at end of input with nothing read. *)
let parse_stream ~next_line =
  let buf = Buffer.create 256 in
  let declared_edges = ref (-1) in
  let first_line = ref true in
  let n = ref (-1) in (* vertex count; -1 = count line not seen yet *)
  let edges = ref [] in
  let m = ref 0 in
  let token_from pos =
    let len = Buffer.length buf in
    let i = ref pos in
    while !i < len && is_blank (Buffer.nth buf !i) do incr i done;
    if !i >= len then None
    else begin
      let start = !i in
      while !i < len && not (is_blank (Buffer.nth buf !i)) do incr i done;
      Some (start, !i)
    end
  in
  let sub (start, stop) = Buffer.sub buf start (stop - start) in
  let bad why =
    invalid_arg
      (Printf.sprintf "Ugraph.of_channel: %s in edge line %S" why
         (String.trim (Buffer.contents buf)))
  in
  let rec go () =
    if next_line buf then begin
      (match token_from 0 with
       | None -> () (* blank line *)
       | Some (start, _) when Buffer.nth buf start = '#' ->
         if !first_line then
           (* the writer's own header arms the truncation guard *)
           (try
              Scanf.sscanf (Buffer.contents buf)
                " # uncertain graph: %d vertices, %d edges" (fun _ m ->
                  declared_edges := m)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
       | Some t1 ->
         if !n < 0 then begin
           match token_from (snd t1), int_of_string_opt (sub t1) with
           | None, Some count -> n := count
           | _ -> invalid_arg "Ugraph.of_channel: bad vertex count line"
         end
         else begin
           let t2 = token_from (snd t1) in
           let t3 = Option.bind t2 (fun t -> token_from (snd t)) in
           let t4 = Option.bind t3 (fun t -> token_from (snd t)) in
           match (t2, t3, t4) with
           | Some t2, Some t3, None ->
             let vertex span =
               let s = sub span in
               match int_of_string_opt s with
               | Some x when x >= 0 && x < !n -> x
               | Some x -> bad (Printf.sprintf "vertex id %d outside [0,%d)" x !n)
               | None -> bad (Printf.sprintf "unreadable vertex id %S" s)
             in
             let u = vertex t1 and v = vertex t2 in
             let p =
               let s = sub t3 in
               match float_of_string_opt s with
               | Some p when (not (Float.is_nan p)) && p >= 0. && p <= 1. -> p
               | Some p -> bad (Printf.sprintf "probability %g outside [0,1]" p)
               | None -> bad (Printf.sprintf "unreadable probability %S" s)
             in
             edges := { u; v; p } :: !edges;
             incr m
           | _ -> bad "expected three fields `u v p`"
         end);
      first_line := false;
      go ()
    end
  in
  go ();
  if !n < 0 then invalid_arg "Ugraph.of_channel: empty input";
  if !declared_edges >= 0 && !declared_edges <> !m then
    invalid_arg
      (Printf.sprintf
         "Ugraph.of_channel: truncated input: header declares %d edges, got %d"
         !declared_edges !m);
  create ~n:!n (List.rev !edges)

let of_channel ic =
  parse_stream ~next_line:(fun buf ->
      Buffer.clear buf;
      let rec go got =
        match input_char ic with
        | '\n' -> true
        | c ->
          Buffer.add_char buf c;
          go true
        | exception End_of_file -> got
      in
      go false)

let of_string s =
  let pos = ref 0 in
  parse_stream ~next_line:(fun buf ->
      Buffer.clear buf;
      if !pos > String.length s then false
      else begin
        let stop =
          match String.index_from_opt s !pos '\n' with
          | Some i -> i
          | None -> String.length s
        in
        Buffer.add_substring buf s !pos (stop - !pos);
        pos := stop + 1;
        true
      end)

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

let pp_stats fmt g =
  Format.fprintf fmt "|V|=%d |E|=%d avg_deg=%.2f avg_prob=%.3f" g.n (n_edges g)
    (avg_degree g) (avg_prob g)
