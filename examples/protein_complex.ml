(* Protein-complex scenario from the paper's introduction: in a
   protein-protein interaction network, interactions are uncertain
   (sensitivity to experimental conditions), so an analyst scores a
   candidate protein complex by the network reliability of its member
   proteins — the probability that they are all mutually reachable
   through observed interactions.

     dune exec examples/protein_complex.exe *)

module D = Workload.Datasets
module R = Netrel.Reliability
module S = Netrel.S2bdd

let () =
  (* Synthetic Hit-direct-style PPI network (heavy-tailed, dense), at a
     reduced scale so the example runs in a few seconds. *)
  let d = D.hit_direct ~scale:0.15 () in
  (* Analysts often threshold interaction confidence; recalibrating the
     scores downwards models keeping only low-confidence evidence, which
     is where reliability analysis earns its keep. *)
  let g = Workload.Probability.calibrate_mean ~target:0.18 d.D.graph in
  Printf.printf "PPI network: %s\n\n" (Format.asprintf "%a" Ugraph.pp_stats g);

  (* Candidate complexes: a tight neighbourhood around a hub protein
     versus a random set of proteins. A real complex should have much
     higher reliability than random picks. *)
  let hub =
    let best = ref 0 in
    for v = 0 to Ugraph.n_vertices g - 1 do
      if Ugraph.degree g v > Ugraph.degree g !best then best := v
    done;
    !best
  in
  let neighbourhood =
    hub
    :: (Array.to_list (Ugraph.neighbours g hub)
       |> List.sort_uniq compare
       |> List.filteri (fun i _ -> i < 4))
  in
  let random_set = Workload.Generators.random_terminals ~seed:7 g ~k:5 in
  let config = { S.default_config with S.samples = 5_000; S.width = 500 } in
  let score name terminals =
    let report, dt = Relstats.time (fun () -> R.estimate ~config g ~terminals) in
    Printf.printf
      "%-22s R = %-10.4g  bounds [%.3g, %.3g]  (%s, %d samples%s)\n" name
      report.R.value report.R.lower report.R.upper
      (Relstats.format_seconds dt)
      report.R.samples_drawn
      (if report.R.exact then ", exact" else "")
  in
  score "hub neighbourhood" (List.sort_uniq compare neighbourhood);
  score "random proteins" random_set;
  print_newline ();
  Printf.printf
    "A candidate complex whose members are tightly interconnected scores a\n\
     far higher reliability than a random protein set - the signal the\n\
     paper's introduction describes for complex detection.\n"
