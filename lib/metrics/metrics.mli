(** Deterministic measurement primitives shared by the observability
    stack: an HDR-style log-bucketed histogram whose merge is exact
    integer bucket addition (so parallel ordered reduction cannot
    perturb it), and GC accounting snapshots/deltas over
    [Gc.quick_stat].

    This library is dependency-free on purpose: {!Obs} builds its
    histogram cells and GC phase accounting on top of it, and tests can
    exercise the arithmetic directly. *)

module Histogram : sig
  (** Fixed-layout base-2 histogram over non-negative integers.

      Values are bucketed by their power-of-two magnitude with
      {!sub_count} linear sub-buckets per octave (the HdrHistogram
      layout with 4 significant value bits).  The layout is a constant
      of the library — every histogram has the same bucket boundaries —
      so {!merge} is plain element-wise addition of counts: exact,
      associative and commutative.  Relative bucket error is bounded by
      [1/16] (6.25%).

      Negative values are clamped to [0] on record.  All state is
      integral; two histograms fed the same multiset of values are
      structurally identical regardless of recording or merge order. *)

  type t

  val sub_bits : int
  (** Sub-bucket resolution: [2^sub_bits] linear buckets per octave. *)

  val sub_count : int
  (** [1 lsl sub_bits]. *)

  val bucket_count : int
  (** Total number of buckets in the fixed layout (covers every
      non-negative OCaml [int]). *)

  val create : unit -> t
  (** An empty histogram. *)

  val copy : t -> t

  val record : t -> int -> unit
  (** [record h v] adds one occurrence of [v] (clamped to [>= 0]). *)

  val record_n : t -> int -> int -> unit
  (** [record_n h v n] adds [n] occurrences of [v].  [n <= 0] is a
      no-op. *)

  val count : t -> int
  (** Total number of recorded values. *)

  val max_value : t -> int
  (** Largest value recorded so far ([0] when empty) — tracked exactly,
      not bucket-rounded. *)

  val quantile : t -> float -> int
  (** [quantile h q] for [q] in [[0, 1]]: the lower bound of the bucket
      holding the value of rank [ceil (q * count)] (rank clamped to
      [[1, count]]); [0] when empty.  Lower bounds are monotone in the
      bucket index, so quantiles are monotone in [q], and
      [quantile h 1.0 <= max_value h]. *)

  val merge : into:t -> t -> unit
  (** Element-wise addition of bucket counts; [max_value] takes the
      maximum.  Exact: merging in any order or grouping yields the same
      histogram. *)

  val nonzero_buckets : t -> (int * int) list
  (** [(bucket_index, count)] pairs in increasing index order, empty
      buckets omitted — the compact wire encoding. *)

  val bucket_of : int -> int
  (** The bucket index a value falls into (exposed for tests). *)

  val lower_bound : int -> int
  (** The smallest value mapping to the given bucket index (exposed for
      tests); [lower_bound (bucket_of v) <= v]. *)

  val equal : t -> t -> bool
  (** Structural equality on counts and exact max. *)
end

module Gcstat : sig
  (** Allocation and collection accounting over [Gc.quick_stat].

      A {!snapshot} freezes the allocator counters; {!delta} turns a
      before/after pair into per-phase costs.  Word counts are reported
      as non-negative integers (OCaml's float-valued counters are exact
      integers until well past 2^53 words, far beyond any run we
      account). *)

  type snapshot

  type delta = {
    minor_words : int;       (** words allocated in the minor heap *)
    promoted_words : int;    (** words promoted minor -> major *)
    major_words : int;       (** words allocated in the major heap *)
    minor_collections : int;
    major_collections : int;
    compactions : int;
    top_heap_words : int;    (** absolute high-water mark at [after] *)
  }

  val snapshot : unit -> snapshot

  val delta : before:snapshot -> after:snapshot -> delta

  val zero : delta
  (** The all-zero delta — what phases record when measurement is
      pinned off (fake clock) so document shape is preserved. *)
end
