Streaming trace events and the live progress reporter. NETREL_FAKE_CLOCK
pins the shared Obs/Trace clock to 0, so at --jobs 1 for a fixed seed
both the --progress frames and the exported trace are byte-stable: the
whole file is pinned below via its checksum, and the interesting
structure is shown inline. (The human-readable report on stdout carries
a real wall-clock line, so it is discarded throughout.)

  $ export NETREL_FAKE_CLOCK=1

A traced karate estimate. With the fake clock the reporter only renders
on phase transitions (stderr is not a TTY here, so one line per frame):

  $ netrel estimate --dataset karate --terminals 0,33 --width 64 \
  >   --samples 3000 --jobs 1 --trace trace.json --progress 2>&1 >/dev/null
  progress: preprocess
  progress: construction layer 1 width 2
  progress: sampling
  progress: done est 0.998333 +/-0.410699 samples 2402

--verbose is an alias for --progress:

  $ netrel estimate --dataset karate --terminals 0,33 --width 64 \
  >   --samples 3000 --jobs 1 --verbose 2>&1 >/dev/null
  progress: preprocess
  progress: construction layer 1 width 2
  progress: sampling
  progress: done est 0.998333 +/-0.410699 samples 2402

The Chrome trace-event document: process/thread metadata first, then
the event stream. At --jobs 1 every task lands on lane 0 (tid 0); the
par.batch dispatch instants ride the control lane:

  $ head -16 trace.json
  {
    "traceEvents": [
      {
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {
          "name": "netrel"
        }
      },
      {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,

The run's shape, by event name: the preprocessing stages, the
subproblem left after decomposition, one span per S2BDD layer (plus
its width counter sample), the stratified descent tasks, the pool
dispatches, and the final estimate instant:

  $ grep -o '"name": "[a-z._]*"' trace.json | sort | uniq -c | sort -k2 | sed 's/^ *//'
  1 "name": "construction"
  1 "name": "control"
  1 "name": "decompose"
  607 "name": "descent"
  1 "name": "estimate"
  43 "name": "layer"
  1 "name": "netrel"
  2 "name": "par.batch"
  1 "name": "preprocess"
  1 "name": "process_name"
  1 "name": "prune"
  1 "name": "subproblem"
  2 "name": "thread_name"
  1 "name": "transform"
  43 "name": "width"

Layer spans carry the frontier width and the running exact bounds:

  $ grep -A10 '"name": "layer"' trace.json | head -11
        "name": "layer",
        "ph": "X",
        "pid": 0,
        "tid": 0,
        "ts": 0.0,
        "dur": 0.0,
        "args": {
          "layer": 1,
          "width": 2,
          "pc": 0.0,
          "pd": 0.0,

Nothing was dropped, and the whole file is byte-stable (any change to
the event stream or the export format shows up here):

  $ grep '"dropped"' trace.json | sed 's/^ *//'
  "dropped": 0
  $ md5sum trace.json | cut -d' ' -f1
  b68d40dcf3f7a21076616b1ba66f97a0

The JSONL format: a header line, then one object per event:

  $ netrel estimate --dataset karate --terminals 0,33 --width 64 \
  >   --samples 3000 --jobs 1 --trace trace.jsonl --trace-format jsonl \
  >   > /dev/null
  $ head -2 trace.jsonl
  {"netrel":"trace","schema":1,"dropped":0}
  {"name":"prune","ph":"X","pid":0,"tid":0,"ts":0.0,"dur":0.0}
  $ wc -l < trace.jsonl
  703

A trace is finalized even on an error exit, so partial traces are
still valid JSON: an invalid sampling budget kills the run after
preprocessing, and the events recorded up to that point survive.

  $ netrel estimate --dataset karate --terminals 0,33 --samples 0 \
  >   --jobs 1 --trace partial.json 2>&1 >/dev/null
  netrel: S2bdd.estimate: samples <= 0
  [2]
  $ grep -c '"ph"' partial.json
  8
  $ grep -o '"name": "[a-z._]*"' partial.json | sort | uniq -c | sort -k2 | sed 's/^ *//'
  1 "name": "control"
  1 "name": "decompose"
  1 "name": "netrel"
  1 "name": "par.batch"
  1 "name": "preprocess"
  1 "name": "process_name"
  1 "name": "prune"
  2 "name": "thread_name"
  1 "name": "transform"
