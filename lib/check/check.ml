module Shapes = Shapes
module J = Obs.Json
module S2bdd = Netrel.S2bdd
module Reliability = Netrel.Reliability
module Statsdoc = Netrel.Statsdoc

type violation = {
  section : string;
  invariant : string;
  case : string;
  detail : string;
  artifact : string;
}

type section = {
  s_name : string;
  s_cases : int;
  s_checks : int;
  s_violations : int;
  s_skipped : int;
}

type report = {
  seed : int;
  trials : int;
  jobs : int list;
  sections : section list;
  violations : violation list;
  cases : int;
  checks : int;
}

let ok r = List.for_all (fun s -> s.s_violations = 0) r.sections
let default_jobs = [ 1; 2; 8 ]
let max_reported_violations = 25

(* Numeric contracts. [eps_exact] is the honesty tolerance for claims of
   exactness (and for identities both sides of which are computed by the
   exact BDD: the only slack is Xprob accumulation order). The accuracy
   tolerances are deliberately loose — they exist to catch gross
   estimator defects (wrong normalisation, sign errors, broken
   reductions), not to retest variance; sampling noise at the selfcheck
   budget sits far inside them (see the calibration section for the
   statistical test proper). *)
let eps_exact = 1e-9
let oracle_samples = 400
let mc_accuracy_tol = 0.18 (* > 7 sigma at s = 400, R in [0,1] *)
let ht_accuracy_tol = 0.3 (* HT weights admit heavier tails *)
let s2_accuracy_tol = 0.4 (* width-capped runs add stratification noise *)

(* A section under construction: a tally plus the shared violation
   sink. [checks] is bumped on every invariant evaluated; a failing one
   also lands in the sink with its reproducer. *)
type tally = {
  name : string;
  mutable cases : int;
  mutable checks : int;
  mutable viols : int;
  mutable skipped : int;
  sink : violation list ref;
}

let tally name sink =
  { name; cases = 0; checks = 0; viols = 0; skipped = 0; sink }

let close_tally t =
  {
    s_name = t.name;
    s_cases = t.cases;
    s_checks = t.checks;
    s_violations = t.viols;
    s_skipped = t.skipped;
  }

let check t ~invariant ~case ~artifact cond detail =
  t.checks <- t.checks + 1;
  if not cond then begin
    t.viols <- t.viols + 1;
    t.sink :=
      { section = t.name; invariant; case; detail = detail (); artifact }
      :: !(t.sink)
  end

let close a b tol = Float.abs (a -. b) <= tol

(* Per-case estimator seeds come from their own stream (the corpus has
   its own), drawn in corpus order before any estimator runs — the seed
   in a violation artifact replays the case alone. *)
let case_seed rng = Int64.to_int (Prng.bits64 rng) land max_int

let artifact_of c ~seed =
  Printf.sprintf "%sseed %d\n" (Shapes.render c) seed

(* ------------------------------------------------------------------ *)
(* Oracle section                                                      *)
(* ------------------------------------------------------------------ *)

(* Everything except [jobs_used], which legitimately reflects the
   requested pool size. *)
let mc_projection (e : Mcsampling.estimate) =
  ( e.Mcsampling.value,
    e.Mcsampling.samples_used,
    e.Mcsampling.hits,
    e.Mcsampling.distinct,
    e.Mcsampling.variance_estimate,
    e.Mcsampling.chunk_samples )

let report_projection (r : Reliability.report) =
  ( r.Reliability.value,
    r.Reliability.lower,
    r.Reliability.upper,
    r.Reliability.exact,
    r.Reliability.s_given,
    r.Reliability.s_reduced,
    r.Reliability.samples_drawn,
    List.map
      (fun (s : S2bdd.result) ->
        ( s.S2bdd.value,
          s.S2bdd.lower,
          s.S2bdd.upper,
          s.S2bdd.exact,
          s.S2bdd.s_reduced,
          s.S2bdd.samples_drawn,
          s.S2bdd.stop ))
      r.Reliability.subresults )

let sampler_checks t ~tag ~case ~artifact ~rex ~upper_capped ~tol results =
  (match results with
  | [] -> ()
  | (j0, e0) :: rest ->
    List.iter
      (fun (j, e) ->
        check t ~invariant:(tag ^ ".jobs-identical") ~case ~artifact
          (mc_projection e = mc_projection e0)
          (fun () ->
            Printf.sprintf "jobs=%d value=%.17g differs from jobs=%d value=%.17g"
              j e.Mcsampling.value j0 e0.Mcsampling.value))
      rest;
    check t ~invariant:(tag ^ ".value-in-range") ~case ~artifact
      (e0.Mcsampling.value >= 0.
      && ((not upper_capped) || e0.Mcsampling.value <= 1.))
      (fun () -> Printf.sprintf "value = %.17g out of range" e0.Mcsampling.value);
    check t ~invariant:(tag ^ ".variance-nonnegative") ~case ~artifact
      (e0.Mcsampling.variance_estimate >= 0.)
      (fun () ->
        Printf.sprintf "variance_estimate = %.17g < 0"
          e0.Mcsampling.variance_estimate);
    check t ~invariant:(tag ^ ".accuracy") ~case ~artifact
      (close e0.Mcsampling.value rex tol)
      (fun () ->
        Printf.sprintf "value = %.17g vs exact %.17g (tol %g)"
          e0.Mcsampling.value rex tol))

let s2_result_checks t ~tag ~case ~artifact ~rex (r : S2bdd.result) =
  check t ~invariant:(tag ^ ".value-in-bounds") ~case ~artifact
    (r.S2bdd.lower <= r.S2bdd.value && r.S2bdd.value <= r.S2bdd.upper)
    (fun () ->
      Printf.sprintf "value = %.17g outside [%.17g, %.17g]" r.S2bdd.value
        r.S2bdd.lower r.S2bdd.upper);
  check t ~invariant:(tag ^ ".bounds-contain-exact") ~case ~artifact
    (r.S2bdd.lower -. eps_exact <= rex && rex <= r.S2bdd.upper +. eps_exact)
    (fun () ->
      Printf.sprintf "exact %.17g outside proven [%.17g, %.17g]" rex
        r.S2bdd.lower r.S2bdd.upper);
  check t ~invariant:(tag ^ ".exact-honest") ~case ~artifact
    ((not r.S2bdd.exact) || close r.S2bdd.value rex eps_exact)
    (fun () ->
      Printf.sprintf "claims exact but value = %.17g vs %.17g" r.S2bdd.value rex);
  check t ~invariant:(tag ^ ".accuracy") ~case ~artifact
    (close r.S2bdd.value rex s2_accuracy_tol)
    (fun () ->
      Printf.sprintf "value = %.17g vs exact %.17g (tol %g)" r.S2bdd.value rex
        s2_accuracy_tol)

let reliability_checks t ~tag ~case ~artifact ~rex results =
  match results with
  | [] -> ()
  | (j0, r0) :: rest ->
    List.iter
      (fun (j, r) ->
        check t ~invariant:(tag ^ ".jobs-identical") ~case ~artifact
          (report_projection r = report_projection r0)
          (fun () ->
            Printf.sprintf "jobs=%d value=%.17g differs from jobs=%d value=%.17g"
              j r.Reliability.value j0 r0.Reliability.value))
      rest;
    check t ~invariant:(tag ^ ".value-in-bounds") ~case ~artifact
      (r0.Reliability.lower <= r0.Reliability.value
      && r0.Reliability.value <= r0.Reliability.upper)
      (fun () ->
        Printf.sprintf "value = %.17g outside [%.17g, %.17g]"
          r0.Reliability.value r0.Reliability.lower r0.Reliability.upper);
    check t ~invariant:(tag ^ ".bounds-contain-exact") ~case ~artifact
      (r0.Reliability.lower -. eps_exact <= rex
      && rex <= r0.Reliability.upper +. eps_exact)
      (fun () ->
        Printf.sprintf "exact %.17g outside proven [%.17g, %.17g]" rex
          r0.Reliability.lower r0.Reliability.upper);
    check t ~invariant:(tag ^ ".exact-honest") ~case ~artifact
      ((not r0.Reliability.exact) || close r0.Reliability.value rex eps_exact)
      (fun () ->
        Printf.sprintf "claims exact but value = %.17g vs %.17g"
          r0.Reliability.value rex);
    check t ~invariant:(tag ^ ".exact-implies-no-sampling") ~case ~artifact
      ((not r0.Reliability.exact) || r0.Reliability.s_reduced = 0)
      (fun () ->
        Printf.sprintf "exact run reports s_reduced = %d (want 0)"
          r0.Reliability.s_reduced);
    check t ~invariant:(tag ^ ".accuracy") ~case ~artifact
      (close r0.Reliability.value rex s2_accuracy_tol)
      (fun () ->
        Printf.sprintf "value = %.17g vs exact %.17g (tol %g)"
          r0.Reliability.value rex s2_accuracy_tol)

let oracle_case t trace ~jobs (c : Shapes.case) ~seed ~rex =
  Trace.span trace "selfcheck.case" ~args:[ ("label", Trace.Str c.Shapes.label) ]
  @@ fun () ->
  let case = c.Shapes.label in
  let artifact = artifact_of c ~seed in
  let g = c.Shapes.graph and terminals = c.Shapes.terminals in
  let per_jobs run = List.map (fun j -> (j, run j)) jobs in
  let mc_results =
    per_jobs (fun j ->
        Mcsampling.monte_carlo ~seed ~jobs:j g ~terminals
          ~samples:oracle_samples)
  in
  sampler_checks t ~tag:"mc" ~case ~artifact ~rex ~upper_capped:true
    ~tol:mc_accuracy_tol mc_results;
  let ht_results =
    per_jobs (fun j ->
        Mcsampling.horvitz_thompson ~seed ~jobs:j g ~terminals
          ~samples:oracle_samples)
  in
  sampler_checks t ~tag:"ht" ~case ~artifact ~rex ~upper_capped:false
    ~tol:ht_accuracy_tol ht_results;
  (* The bit-sliced kernel draws different possible graphs from the
     same seed (one batch stream feeds 62 worlds), so there is no
     cross-mode bit-identity to pin; it must instead satisfy the same
     estimator invariants as the flat mode — jobs-bit-identity within
     the mode, range, non-negative variance, and agreement with the
     exact oracle at the sampling tolerance. *)
  let mc_bitsliced_results =
    per_jobs (fun j ->
        Mcsampling.monte_carlo ~seed ~jobs:j ~kernel:Mcsampling.Bitsliced g
          ~terminals ~samples:oracle_samples)
  in
  sampler_checks t ~tag:"mc-bitsliced" ~case ~artifact ~rex ~upper_capped:true
    ~tol:mc_accuracy_tol mc_bitsliced_results;
  let ht_bitsliced_results =
    per_jobs (fun j ->
        Mcsampling.horvitz_thompson ~seed ~jobs:j
          ~kernel:Mcsampling.Bitsliced g ~terminals ~samples:oracle_samples)
  in
  sampler_checks t ~tag:"ht-bitsliced" ~case ~artifact ~rex
    ~upper_capped:false ~tol:ht_accuracy_tol ht_bitsliced_results;
  (* Differential oracle for the flat sampling kernels: the retained
     pre-kernel implementations must reproduce the kernel-path
     estimates bit for bit (same seed, same chunking, same draws). *)
  let kernel_vs_reference ~tag results reference =
    match results with
    | [] -> ()
    | (_, e0) :: _ ->
      let r = reference ?seed:(Some seed) g ~terminals ~samples:oracle_samples in
      check t
        ~invariant:(tag ^ ".kernel-matches-reference")
        ~case ~artifact
        (mc_projection e0 = mc_projection r)
        (fun () ->
          Printf.sprintf "kernel value = %.17g vs reference %.17g"
            e0.Mcsampling.value r.Mcsampling.value)
  in
  kernel_vs_reference ~tag:"mc" mc_results Mcsampling.Reference.monte_carlo;
  kernel_vs_reference ~tag:"ht" ht_results
    Mcsampling.Reference.horvitz_thompson;
  (* Binary-container round trip: serializing through lib/bingraph and
     parsing the bytes back must preserve the graph bit for bit — the
     header digest equals a recomputation over the round-tripped graph,
     and MC estimates at every jobs level are bit-identical to the
     text-path results above (same seed, same chunk layout). *)
  let bg = Bingraph.of_bytes (Bingraph.to_bytes (Bingraph.of_graph g)) in
  let g' = Bingraph.to_graph bg in
  check t ~invariant:"bingraph.digest-stable" ~case ~artifact
    (Bingraph.digest bg = Bingraph.Digest.of_graph g')
    (fun () ->
      Printf.sprintf "header digest %d vs recomputed %d" (Bingraph.digest bg)
        (Bingraph.Digest.of_graph g'));
  List.iter
    (fun (j, (e : Mcsampling.estimate)) ->
      let e' =
        Mcsampling.monte_carlo ~seed ~jobs:j g' ~terminals
          ~samples:oracle_samples
      in
      check t ~invariant:"bingraph.roundtrip-mc-identical" ~case ~artifact
        (mc_projection e = mc_projection e')
        (fun () ->
          Printf.sprintf "jobs=%d binary value=%.17g vs text value=%.17g" j
            e'.Mcsampling.value e.Mcsampling.value))
    mc_results;
  let s2 ~width ~estimator =
    let config =
      {
        S2bdd.default_config with
        S2bdd.samples = oracle_samples;
        width;
        estimator;
        seed;
      }
    in
    S2bdd.estimate ~config g ~terminals
  in
  List.iter
    (fun width ->
      s2_result_checks t
        ~tag:(Printf.sprintf "s2bdd.w%d" width)
        ~case ~artifact ~rex
        (s2 ~width ~estimator:S2bdd.Monte_carlo))
    [ 1; 4; 32; 65536 ];
  s2_result_checks t ~tag:"s2bdd.w4-ht" ~case ~artifact ~rex
    (s2 ~width:4 ~estimator:S2bdd.Horvitz_thompson);
  let reliability ~extension j =
    let config =
      { S2bdd.default_config with S2bdd.samples = oracle_samples; width = 16; seed }
    in
    Reliability.estimate ~config ~extension ~jobs:j g ~terminals
  in
  reliability_checks t ~tag:"reliability.ext" ~case ~artifact ~rex
    (per_jobs (reliability ~extension:true));
  reliability_checks t ~tag:"reliability.noext" ~case ~artifact ~rex
    (per_jobs (reliability ~extension:false))

(* ------------------------------------------------------------------ *)
(* Metamorphic section                                                 *)
(* ------------------------------------------------------------------ *)

(* The exact-BDD oracle on the raw graph: the reference both sides of
   every identity are pushed through. *)
let exact0 g ~terminals =
  Reliability.exact ~extension:false g ~terminals

let rebuild ?(extra_vertices = 0) g edges =
  Ugraph.create ~n:(Ugraph.n_vertices g + extra_vertices) edges

let edge_list g = Array.to_list (Ugraph.edges g)

(* Rewrites of Section 5, inverted: each takes a case and returns a
   transformed (graph, terminals) whose reliability provably equals the
   original's. *)
let add_self_loop rng (c : Shapes.case) =
  let loop = { Ugraph.u = 0; v = 0; p = Shapes.rand_prob rng } in
  (rebuild c.Shapes.graph (loop :: edge_list c.Shapes.graph), c.Shapes.terminals)

let add_floating_cycle rng (c : Shapes.case) =
  let n = Ugraph.n_vertices c.Shapes.graph in
  let tri =
    [
      { Ugraph.u = n; v = n + 1; p = Shapes.rand_prob rng };
      { Ugraph.u = n + 1; v = n + 2; p = Shapes.rand_prob rng };
      { Ugraph.u = n + 2; v = n; p = Shapes.rand_prob rng };
    ]
  in
  ( rebuild ~extra_vertices:3 c.Shapes.graph (tri @ edge_list c.Shapes.graph),
    c.Shapes.terminals )

(* Split edge 0 into two parallels with the same combined presence
   probability: p = 1 - (1 - p1)(1 - p2). *)
let split_parallel rng (c : Shapes.case) =
  match edge_list c.Shapes.graph with
  | [] -> None
  | e :: rest ->
    let p1 = e.Ugraph.p *. (0.2 +. (0.6 *. Prng.float rng)) in
    let p2 = 1. -. ((1. -. e.Ugraph.p) /. (1. -. p1)) in
    let p2 = Float.max 0. (Float.min 1. p2) in
    let es =
      { e with Ugraph.p = p1 } :: { e with Ugraph.p = p2 } :: rest
    in
    Some (rebuild c.Shapes.graph es, c.Shapes.terminals)

(* Subdivide edge 0 through a fresh non-terminal, splitting its
   probability multiplicatively: p = p^a * p^(1-a). *)
let subdivide_series rng (c : Shapes.case) =
  match edge_list c.Shapes.graph with
  | [] -> None
  | e :: rest ->
    let w = Ugraph.n_vertices c.Shapes.graph in
    let a = 0.2 +. (0.6 *. Prng.float rng) in
    let es =
      { Ugraph.u = e.Ugraph.u; v = w; p = Float.pow e.Ugraph.p a }
      :: { Ugraph.u = w; v = e.Ugraph.v; p = Float.pow e.Ugraph.p (1. -. a) }
      :: rest
    in
    Some (rebuild ~extra_vertices:1 c.Shapes.graph es, c.Shapes.terminals)

let relabel rng (c : Shapes.case) =
  let n = Ugraph.n_vertices c.Shapes.graph in
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  let es =
    List.map
      (fun (e : Ugraph.edge) ->
        { Ugraph.u = perm.(e.Ugraph.u); v = perm.(e.Ugraph.v); p = e.Ugraph.p })
      (edge_list c.Shapes.graph)
  in
  ( Ugraph.create ~n es,
    List.map (fun v -> perm.(v)) c.Shapes.terminals )

(* Lemma 5.1 on a synthetic bridge: join two solved cases at one
   terminal each through a fresh bridge edge; the joined reliability
   must factor as pb * R1 * R2. *)
let bridge_join rng (c1 : Shapes.case) (c2 : Shapes.case) =
  let n1 = Ugraph.n_vertices c1.Shapes.graph in
  let shift =
    List.map (fun (e : Ugraph.edge) ->
        { e with Ugraph.u = e.Ugraph.u + n1; v = e.Ugraph.v + n1 })
  in
  let pb = Shapes.rand_prob rng in
  let bridge =
    {
      Ugraph.u = List.hd c1.Shapes.terminals;
      v = List.hd c2.Shapes.terminals + n1;
      p = pb;
    }
  in
  let g =
    Ugraph.create
      ~n:(n1 + Ugraph.n_vertices c2.Shapes.graph)
      ((bridge :: edge_list c1.Shapes.graph)
      @ shift (edge_list c2.Shapes.graph))
  in
  let terminals =
    c1.Shapes.terminals @ List.map (fun v -> v + n1) c2.Shapes.terminals
  in
  (pb, g, terminals)

let metamorphic_case t rng (c : Shapes.case) ~rex =
  let case = c.Shapes.label in
  let artifact = Shapes.render c in
  let identity invariant = function
    | None -> ()
    | Some (g, terminals) -> (
      match exact0 g ~terminals with
      | Error (`Node_budget_exceeded _) -> t.skipped <- t.skipped + 1
      | Ok r ->
        check t ~invariant ~case ~artifact
          (close r rex eps_exact)
          (fun () ->
            Printf.sprintf "transformed exact %.17g vs original %.17g" r rex))
  in
  identity "metamorphic.self-loop" (Some (add_self_loop rng c));
  identity "metamorphic.floating-cycle" (Some (add_floating_cycle rng c));
  identity "metamorphic.parallel-split" (split_parallel rng c);
  identity "metamorphic.series-subdivision" (subdivide_series rng c);
  identity "metamorphic.relabel" (Some (relabel rng c));
  (match Reliability.exact ~extension:true c.Shapes.graph ~terminals:c.Shapes.terminals with
  | Error (`Node_budget_exceeded _) -> t.skipped <- t.skipped + 1
  | Ok r ->
    check t ~invariant:"metamorphic.extension-exactness" ~case ~artifact
      (close r rex eps_exact)
      (fun () ->
        Printf.sprintf "extension pipeline exact %.17g vs raw BDD %.17g" r rex));
  (* Relabeling worlds: lane [l] of the bit-sliced verdict word depends
     only on bit [l] of every slab word, so permuting the 62 bit-lanes
     of a drawn slab must permute the verdict bits identically — the
     kernel may not couple worlds that share a batch. *)
  let lanes = Prng.Bitbatch.lanes in
  let csr = Kernel.Csr.of_graph c.Shapes.graph in
  let sc = Kernel.create () in
  let slab_seed = case_seed rng in
  let terminals = Array.of_list c.Shapes.terminals in
  Kernel.draw_bitsliced sc csr (Prng.create slab_seed);
  let before =
    Kernel.connected_lanes sc csr terminals ~active:Prng.Bitbatch.all
  in
  let perm = Array.init lanes (fun l -> l) in
  Prng.shuffle rng perm;
  for pos = 0 to Kernel.Csr.n_edges csr - 1 do
    let w = Kernel.slab_word sc pos in
    let w' = ref 0 in
    for l = 0 to lanes - 1 do
      if (w lsr l) land 1 = 1 then w' := !w' lor (1 lsl perm.(l))
    done;
    Kernel.set_slab_word sc pos !w'
  done;
  let after =
    Kernel.connected_lanes sc csr terminals ~active:Prng.Bitbatch.all
  in
  let permuted_ok = ref true in
  for l = 0 to lanes - 1 do
    if (after lsr perm.(l)) land 1 <> (before lsr l) land 1 then
      permuted_ok := false
  done;
  check t ~invariant:"metamorphic.lane-permutation" ~case
    ~artifact:(artifact ^ Printf.sprintf "slab seed %d\n" slab_seed)
    !permuted_ok
    (fun () ->
      Printf.sprintf "permuted verdict %#x vs original %#x" after before)

let metamorphic_bridge t rng (c1, r1) (c2, r2) =
  let pb, g, terminals = bridge_join rng c1 c2 in
  let case =
    Printf.sprintf "bridge(%s | %s)" c1.Shapes.label c2.Shapes.label
  in
  let artifact = Shapes.render c1 ^ Shapes.render c2 in
  match exact0 g ~terminals with
  | Error (`Node_budget_exceeded _) -> t.skipped <- t.skipped + 1
  | Ok r ->
    check t ~invariant:"metamorphic.bridge-factoring" ~case ~artifact
      (close r (pb *. r1 *. r2) eps_exact)
      (fun () ->
        Printf.sprintf "joined exact %.17g vs pb * R1 * R2 = %.17g" r
          (pb *. r1 *. r2))

(* ------------------------------------------------------------------ *)
(* Calibration section                                                 *)
(* ------------------------------------------------------------------ *)

let calibration_samples = 800
let ci_z = 1.96 (* nominal 95% normal interval *)

let uniform_graph p es n =
  List.map (fun (u, v) -> { Ugraph.u; v; p }) es |> Ugraph.create ~n

let grid_graph rows cols p =
  let idx r c = (r * cols) + c in
  let es = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then es := (idx r c, idx r (c + 1)) :: !es;
      if r + 1 < rows then es := (idx r c, idx (r + 1) c) :: !es
    done
  done;
  uniform_graph p !es (rows * cols)

(* Fixed mid-reliability topologies, chosen per estimator: the CI
   behind [variance_estimate] is only claimed where its normal
   approximation applies. MC's holds on any graph with R away from
   {0, 1}. HT's Eq.(8) plug-in additionally assumes the sparse-sampling
   regime — every sampled possible graph distinct (dedup ratio ~ 1) —
   so its graphs carry enough edges that mask collisions at the
   calibration budget are negligible; outside that regime the
   correction term swamps the estimate (see the variance-clamp counter)
   and the CI degenerates by design, which is the estimator's
   documented limitation, not a coverage bug. *)
let mc_calibration_cases =
  [
    ( "cal:grid23",
      grid_graph 2 3 0.7,
      [ 0; 5 ] );
    ( "cal:theta+chord",
      uniform_graph 0.6
        [ (0, 2); (2, 1); (0, 3); (3, 1); (0, 4); (4, 1); (0, 1); (2, 3) ]
        5,
      [ 0; 1 ] );
  ]

let ht_calibration_cases =
  [
    ("cal:grid56", grid_graph 5 6 0.7, [ 0; 29 ]);
    ("cal:grid66", grid_graph 6 6 0.65, [ 0; 35 ]);
  ]

(* The fewest covering replicates out of [n] we accept as consistent
   with true coverage >= 95%: mean minus 4.5 binomial standard
   deviations minus a 2-replicate slack for the CLT approximation error
   of the intervals themselves. *)
let min_covering n =
  let fn = float_of_int n in
  let lo = (0.95 *. fn) -. ((4.5 *. sqrt (fn *. 0.95 *. 0.05)) +. 2.) in
  int_of_float (Float.ceil lo)

(* Coverage floor for the {e stopped} estimator. Sequential stopping
   peeks at the interval after every round, and stopping exactly when
   the interval first looks narrow biases coverage low relative to the
   fixed-n Wilson guarantee (optional stopping). The floor is therefore
   the same 4.5-sigma binomial bound evaluated at a 90% nominal level:
   stopped Wilson coverage sits comfortably above it in practice, while
   a genuine interval bug — the zero-width Wald interval at 0 hits this
   release fixed, a wrong mass scaling — lands far below. *)
let min_covering_stopped n =
  let fn = float_of_int n in
  let lo = (0.90 *. fn) -. ((4.5 *. sqrt (fn *. 0.90 *. 0.10)) +. 2.) in
  int_of_float (Float.ceil lo)

(* Narrow enough that the driver needs more than one round (the
   schedule actually adapts), loose enough that the cap never trips at
   the calibration scale. *)
let adaptive_ci_width = 0.015
let adaptive_max_samples = 40_000

let calibration t rng ~trials =
  let replicates = max 40 (min 400 (2 * trials)) in
  let calibrate tag run (label, g, terminals) =
    match exact0 g ~terminals with
    | Error (`Node_budget_exceeded _) -> t.skipped <- t.skipped + 1
    | Ok rex ->
      t.cases <- t.cases + 1;
      let case = Printf.sprintf "%s/%s" label tag in
      let artifact =
        Printf.sprintf "calibration %s exact=%.17g replicates=%d samples=%d\n"
          case rex replicates calibration_samples
      in
      let covered = ref 0 in
      for _ = 1 to replicates do
        let seed = case_seed rng in
        let (e : Mcsampling.estimate) = run g ~terminals ~seed in
        let half = ci_z *. sqrt (Float.max 0. e.Mcsampling.variance_estimate) in
        if Float.abs (e.Mcsampling.value -. rex) <= half +. 1e-12 then
          incr covered
      done;
      check t ~invariant:"calibration.ci-coverage" ~case ~artifact
        (!covered >= min_covering replicates)
        (fun () ->
          Printf.sprintf "%d/%d replicates covered (floor %d)" !covered
            replicates (min_covering replicates))
  in
  List.iter
    (calibrate "mc" (fun g ~terminals ~seed ->
         Mcsampling.monte_carlo ~seed g ~terminals
           ~samples:calibration_samples))
    mc_calibration_cases;
  List.iter
    (calibrate "ht" (fun g ~terminals ~seed ->
         Mcsampling.horvitz_thompson ~seed g ~terminals
           ~samples:calibration_samples))
    ht_calibration_cases;
  (* Lanes of one batch word are driven by disjoint bit positions of
     the shared random words, so the 62 worlds are mutually independent
     and the CI theory above carries over to the bit-sliced kernel
     unchanged — coverage is re-tested rather than assumed. *)
  List.iter
    (calibrate "mc-bitsliced" (fun g ~terminals ~seed ->
         Mcsampling.monte_carlo ~seed ~kernel:Mcsampling.Bitsliced g
           ~terminals ~samples:calibration_samples))
    mc_calibration_cases;
  List.iter
    (calibrate "ht-bitsliced" (fun g ~terminals ~seed ->
         Mcsampling.horvitz_thompson ~seed ~kernel:Mcsampling.Bitsliced g
           ~terminals ~samples:calibration_samples))
    ht_calibration_cases;
  (* Sequential stopping: the interval the run {e stopped on} must still
     cover the truth (at the looser stopped floor, see
     [min_covering_stopped]) and the stopping rule itself must engage —
     every replicate ends on width-reached, not on the sample cap. *)
  let calibrate_adaptive tag run (label, g, terminals) =
    match exact0 g ~terminals with
    | Error (`Node_budget_exceeded _) -> t.skipped <- t.skipped + 1
    | Ok rex ->
      t.cases <- t.cases + 1;
      let case = Printf.sprintf "%s/%s" label tag in
      let artifact =
        Printf.sprintf
          "calibration %s exact=%.17g replicates=%d ci_width=%g cap=%d\n" case
          rex replicates adaptive_ci_width adaptive_max_samples
      in
      let covered = ref 0 and width_reached = ref 0 in
      for _ = 1 to replicates do
        let seed = case_seed rng in
        let (r : Adaptive.result) = run g ~terminals ~seed in
        if r.Adaptive.stop = Adaptive.Width_reached then incr width_reached;
        if
          r.Adaptive.lower -. 1e-12 <= rex && rex <= r.Adaptive.upper +. 1e-12
        then incr covered
      done;
      check t ~invariant:"calibration.stopped-ci-coverage" ~case ~artifact
        (!covered >= min_covering_stopped replicates)
        (fun () ->
          Printf.sprintf "%d/%d stopped replicates covered (floor %d)"
            !covered replicates (min_covering_stopped replicates));
      check t ~invariant:"calibration.stopping-rule-engages" ~case ~artifact
        (!width_reached = replicates)
        (fun () ->
          Printf.sprintf "%d/%d replicates stopped on width-reached"
            !width_reached replicates)
  in
  List.iter
    (calibrate_adaptive "adaptive-mc" (fun g ~terminals ~seed ->
         Adaptive.monte_carlo ~seed g ~terminals ~ci_width:adaptive_ci_width
           ~max_samples:adaptive_max_samples))
    mc_calibration_cases;
  calibrate_adaptive "adaptive-pro"
    (fun g ~terminals ~seed ->
      (* A tiny width cap forces deletion, so the Neyman-stratified plan
         path — not just the proven bounds — is what gets calibrated. *)
      let config =
        {
          S2bdd.default_config with
          S2bdd.samples = calibration_samples;
          width = 2;
          seed;
        }
      in
      Adaptive.reliability ~config g ~terminals ~ci_width:adaptive_ci_width
        ~max_samples:adaptive_max_samples)
    (List.hd mc_calibration_cases)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let record_tally o t =
  let p k v = Obs.add o (t.name ^ "." ^ k) v in
  p "cases" t.cases;
  p "checks" t.checks;
  p "violations" t.viols;
  p "skipped" t.skipped

let run ?(obs = Obs.disabled) ?(trace = Trace.disabled) ?(jobs = default_jobs)
    ?(trials = 50) ?(seed = 1) () =
  if jobs = [] || List.exists (fun j -> j < 1) jobs then
    invalid_arg "Check.run: jobs must be a non-empty list of positive ints";
  let o = Obs.sub obs "selfcheck" in
  let sink = ref [] in
  let corpus = Shapes.corpus ~seed ~trials in
  (* Independent streams per concern, all derived from [seed]: estimator
     seeds (oracle + calibration) and metamorphic draws must not shift
     when a section's internals change. *)
  let seed_rng = Prng.create (seed lxor 0x5e1fc) in
  let meta_rng = Prng.create (seed lxor 0x3e7a) in
  let cal_rng = Prng.create (seed lxor 0xca11b) in
  (* Solve every case once; the oracle result feeds all sections. An
     unsolvable case (node budget) is skipped everywhere. *)
  let solved, skipped_cases =
    List.fold_left
      (fun (acc, sk) (c : Shapes.case) ->
        let cseed = case_seed seed_rng in
        match
          exact0 c.Shapes.graph ~terminals:c.Shapes.terminals
        with
        | Ok rex -> ((c, cseed, rex) :: acc, sk)
        | Error (`Node_budget_exceeded _) -> (acc, sk + 1))
      ([], 0) corpus
  in
  let solved = List.rev solved in
  let oracle_t = tally "oracle" sink in
  oracle_t.skipped <- skipped_cases;
  Obs.time o "oracle" (fun () ->
      Trace.span trace "selfcheck.oracle" @@ fun () ->
      List.iter
        (fun (c, cseed, rex) ->
          oracle_t.cases <- oracle_t.cases + 1;
          oracle_case oracle_t trace ~jobs c ~seed:cseed ~rex)
        solved);
  record_tally o oracle_t;
  let meta_t = tally "metamorphic" sink in
  Obs.time o "metamorphic" (fun () ->
      Trace.span trace "selfcheck.metamorphic" @@ fun () ->
      List.iter
        (fun (c, _, rex) ->
          meta_t.cases <- meta_t.cases + 1;
          metamorphic_case meta_t meta_rng c ~rex)
        solved;
      let rec pair = function
        | (c1, _, r1) :: (c2, _, r2) :: rest ->
          meta_t.cases <- meta_t.cases + 1;
          metamorphic_bridge meta_t meta_rng (c1, r1) (c2, r2);
          pair rest
        | _ -> ()
      in
      pair solved);
  record_tally o meta_t;
  let cal_t = tally "calibration" sink in
  Obs.time o "calibration" (fun () ->
      Trace.span trace "selfcheck.calibration" @@ fun () ->
      calibration cal_t cal_rng ~trials);
  record_tally o cal_t;
  let sections = [ close_tally oracle_t; close_tally meta_t; close_tally cal_t ] in
  {
    seed;
    trials;
    jobs;
    sections;
    violations = List.rev !sink;
    cases = List.fold_left (fun a s -> a + s.s_cases) 0 sections;
    checks = List.fold_left (fun a s -> a + s.s_checks) 0 sections;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let violation_json v =
  J.Obj
    [
      ("section", J.Str v.section);
      ("invariant", J.Str v.invariant);
      ("case", J.Str v.case);
      ("detail", J.Str v.detail);
      ("artifact", J.Str v.artifact);
    ]

let section_json s =
  J.Obj
    [
      ("name", J.Str s.s_name);
      ("cases", J.Int s.s_cases);
      ("checks", J.Int s.s_checks);
      ("violations", J.Int s.s_violations);
      ("skipped", J.Int s.s_skipped);
    ]

let take n l =
  List.filteri (fun i _ -> i < n) l

let report_json r =
  let nviol = List.length r.violations in
  J.Obj
    [
      ( "netrel",
        J.Obj
          [
            ("emitter", J.Str "netrel");
            ("schema", J.Int Statsdoc.schema_version);
            ("tool", J.Str "selfcheck");
          ] );
      ( "run",
        J.Obj
          [
            ("seed", J.Int r.seed);
            ("trials", J.Int r.trials);
            ("jobs", J.List (List.map (fun j -> J.Int j) r.jobs));
          ] );
      ("sections", J.List (List.map section_json r.sections));
      ( "violations",
        J.List (List.map violation_json (take max_reported_violations r.violations))
      );
      ( "result",
        J.Obj
          [
            ("cases", J.Int r.cases);
            ("checks", J.Int r.checks);
            ("violations", J.Int nviol);
            ("ok", J.Bool (ok r));
          ] );
    ]

let pp_report fmt r =
  Format.fprintf fmt "selfcheck: seed=%d trials=%d jobs=%s@." r.seed r.trials
    (String.concat "," (List.map string_of_int r.jobs));
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-12s cases=%-4d checks=%-5d violations=%-3d skipped=%d@."
        s.s_name s.s_cases s.s_checks s.s_violations s.s_skipped)
    r.sections;
  let nviol = List.length r.violations in
  let shown = take max_reported_violations r.violations in
  List.iter
    (fun v ->
      Format.fprintf fmt "violation [%s] %s on %s: %s@." v.section v.invariant
        v.case v.detail;
      String.split_on_char '\n' v.artifact
      |> List.iter (fun line ->
             if line <> "" then Format.fprintf fmt "    %s@." line))
    shown;
  if nviol > List.length shown then
    Format.fprintf fmt "... and %d more violations@."
      (nviol - List.length shown);
  Format.fprintf fmt "result: %s (%d cases, %d checks, %d violations)@."
    (if ok r then "OK" else "FAIL")
    r.cases r.checks nviol
