type case = {
  label : string;
  graph : Ugraph.t;
  terminals : int list;
}

let render c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "case %s\n" c.label);
  Ugraph.to_buffer buf c.graph;
  Buffer.add_string buf
    (Printf.sprintf "terminals %s\n"
       (String.concat "," (List.map string_of_int c.terminals)));
  Buffer.contents buf

(* Edge probabilities are drawn from a mixture of regimes: the
   mid-range draws exercise the samplers, the near-0 / near-1 tails
   exercise the Xprob accumulation and the HT log-weight path, and the
   exact 1/2 class gives masks of equal probability (the HT dedup's
   worst case for the correction term). *)
let rand_prob rng =
  match Prng.int rng 5 with
  | 0 -> Prng.float rng
  | 1 -> 0.02 *. Prng.float rng
  | 2 -> 1. -. (0.02 *. Prng.float rng)
  | 3 -> 0.5
  | _ -> 0.1 +. (0.8 *. Prng.float rng)

let graph ~n es rng =
  Ugraph.create ~n
    (List.map (fun (u, v) -> { Ugraph.u; v; p = rand_prob rng }) es)

let adversarial rng =
  let mk label ~n es terminals = { label; graph = graph ~n es rng; terminals } in
  [
    (* A chain of non-terminals whose contraction walk returns to its
       anchor (the transform's ear, a = b): becomes a self-loop next
       round. *)
    mk "adv:ear" ~n:4 [ (0, 3); (0, 1); (1, 2); (2, 0) ] [ 0; 3 ];
    (* A degree-2 non-terminal attached by two parallel edges: the
       walk's dead-edge stub branch. *)
    mk "adv:parallel-stub" ~n:4 [ (0, 1); (1, 2); (1, 3); (1, 3) ] [ 0; 2 ];
    (* Two triangles joined by a bridge: Lemma 5.1 decomposition. *)
    mk "adv:bridge" ~n:6
      [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ]
      [ 0; 4 ];
    (* A cycle of non-terminals disconnected from the terminal path:
       the transform's floating-cycle deletion. *)
    mk "adv:floating-cycle" ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5); (5, 3) ]
      [ 0; 2 ];
    (* A pure series chain through interior non-terminals. *)
    mk "adv:series-chain" ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
      [ 0; 5 ];
    (* Three parallel edges between the terminals. *)
    mk "adv:parallel-bundle" ~n:2 [ (0, 1); (0, 1); (0, 1) ] [ 0; 1 ];
    (* Self-loops on every vertex of a triangle: pure no-ops for R. *)
    mk "adv:self-loops" ~n:3
      [ (0, 1); (1, 2); (2, 0); (0, 0); (1, 1); (2, 2) ]
      [ 0; 2 ];
    (* Theta: three internally disjoint length-2 paths — series
       contraction creates a parallel bundle mid-fixpoint. *)
    mk "adv:theta" ~n:5 [ (0, 2); (2, 1); (0, 3); (3, 1); (0, 4); (4, 1) ]
      [ 0; 1 ];
    (* A star with a non-terminal centre and terminal leaves. *)
    mk "adv:star" ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] [ 1; 3; 4 ];
    (* Two bridges in series between three 2-edge-connected blobs. *)
    mk "adv:double-bridge" ~n:8
      [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3); (5, 6);
        (6, 7); (7, 6) ]
      [ 0; 7 ];
    (* Terminals in separate components: R must be exactly 0. *)
    mk "adv:split" ~n:4 [ (0, 1); (2, 3) ] [ 0; 3 ];
  ]

let with_uniform_probs rng g =
  Ugraph.map_probs (fun _ _ -> rand_prob rng) g

let generator_cases rng =
  let seed () = Int64.to_int (Prng.bits64 rng) land 0x3FFFFFF in
  let terminals g k =
    Workload.Generators.random_terminals ~seed:(seed ())
      g
      ~k:(min k (Ugraph.n_vertices g))
  in
  let grid, _ = Workload.Generators.grid_road ~seed:(seed ()) ~rows:2 ~cols:3 ~keep:0.5 in
  let grid = with_uniform_probs rng grid in
  let pl =
    with_uniform_probs rng
      (Workload.Generators.power_law ~seed:(seed ()) ~n:8 ~target_edges:10
         ~exponent:2.0)
  in
  let aff =
    with_uniform_probs rng
      (Workload.Generators.bipartite_affiliation ~seed:(seed ()) ~people:5
         ~groups:3 ~memberships:8)
  in
  let pa, alphas =
    Workload.Generators.preferential_attachment ~seed:(seed ()) ~n:7
      ~edges_per_vertex:1
  in
  let pa = Workload.Probability.coauthor ~alphas pa in
  [
    { label = "gen:grid-road"; graph = grid; terminals = terminals grid 2 };
    { label = "gen:power-law"; graph = pl; terminals = terminals pl 3 };
    { label = "gen:affiliation"; graph = aff; terminals = terminals aff 2 };
    { label = "gen:pref-attach"; graph = pa; terminals = terminals pa 2 };
  ]

let random_case rng ~index =
  let n = 2 + Prng.int rng 7 in
  let m = 1 + Prng.int rng 14 in
  let edges =
    List.init m (fun _ ->
        { Ugraph.u = Prng.int rng n; v = Prng.int rng n; p = rand_prob rng })
  in
  let k = min n (2 + Prng.int rng 3) in
  let perm = Array.init n Fun.id in
  Prng.shuffle rng perm;
  {
    label = Printf.sprintf "rand:%d(n=%d,m=%d)" index n m;
    graph = Ugraph.create ~n edges;
    terminals = Array.to_list (Array.sub perm 0 k);
  }

let corpus ~seed ~trials =
  let rng = Prng.create seed in
  adversarial rng @ generator_cases rng
  @ List.init (max 0 trials) (fun i -> random_case rng ~index:i)
