(** Lightweight run instrumentation: counters, gauges, timers, text
    annotations and bounded series, collected under dotted keys and
    rendered as one deterministic JSON document.

    {2 Zero overhead when disabled}

    Every entry point takes an observer [t]; the {!disabled} observer
    (the default everywhere in the library) makes each call a single
    branch on [enabled] and nothing else — no allocation, no clock
    read, no table lookup.  Hot loops may therefore call [Obs.incr]
    unconditionally; code that must not pay even the branch can guard
    on {!enabled}.

    {2 Determinism}

    An observer is mutated only from the thread that owns it.  Parallel
    work creates one observer per task with {!fresh_like}, and the
    caller folds them back in task order with {!merge} — the same
    discipline as the deterministic-reduction contract in {!Par}.
    Rendering sorts keys, so two runs that record the same values
    produce byte-identical JSON.  Timers use the observer's clock; the
    [NETREL_FAKE_CLOCK] environment variable (any non-empty value other
    than ["0"]) pins the default clock to a constant [0.] so seeded
    runs are byte-stable end to end — the test hook behind the
    [--stats json] cram test. *)

(** Deterministic JSON values: construction, rendering and a minimal
    parser (used by tests and by bench's emit-then-reparse self check —
    no external JSON dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : ?pretty:bool -> t -> string
  (** Renders [t] deterministically: object keys in the order given,
      floats via the shortest ["%.12g"] representation that round-trips
      (falling back to ["%.17g"]), non-finite floats as [null].  With
      [~pretty:true], 2-space indentation. *)

  val of_string_exn : string -> t
  (** Strict parser for the subset emitted by {!to_string} (standard
      JSON; [\u] escapes limited to the BMP).
      @raise Parse_error on malformed input. *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k], if any;
      [None] on non-objects. *)
end

type t

val disabled : t
(** The no-op observer: every recording call returns immediately. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A live observer.  [clock] defaults to {!default_clock}[ ()]. *)

val default_clock : unit -> unit -> float
(** The clock {!create} uses when none is given: [CLOCK_MONOTONIC]
    seconds (via the bechamel stub — immune to wall-clock steps), or
    the constant [0.] clock when [NETREL_FAKE_CLOCK] is set (see
    above).  Shared with {!Trace} so every subsystem honours the same
    pin. *)

val enabled : t -> bool

val sub : t -> string -> t
(** [sub t p] is a view of [t] that prefixes every key with [p ^ "."].
    Shares storage with [t]; [sub disabled _ == disabled]. *)

val fresh_like : t -> t
(** An empty observer with the same clock and enabledness (and no
    prefix): give one to each parallel task, then {!merge} them back in
    task order. *)

val now : t -> float
(** The observer's clock (constant [0.] for {!disabled}). *)

(** {2 Recording} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val gauge : t -> string -> float -> unit
(** Sets the gauge (last write wins). *)

val gauge_max : t -> string -> float -> unit
(** Sets the gauge to the max of its current value and the argument. *)

val text : t -> string -> string -> unit
(** Sets a text annotation (last write wins). *)

val record_span : t -> string -> float -> unit
(** Adds an externally measured duration (seconds) to a timer:
    total accumulates, span count increments. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f] and records its wall-clock duration as a
    span on timer [name] (also on exceptional exit).  When [t] is
    disabled this is exactly [f ()]. *)

val series : t -> string -> float -> unit
(** Appends a point to a bounded series (per-layer trajectories).  At
    most 512 points are stored: on overflow every other point is
    dropped and the sampling stride doubles, deterministically — the
    JSON records the final stride as [every]. *)

val hist : t -> string -> int -> unit
(** Records an integer value into a {!Metrics.Histogram} cell: fixed
    base-2 sub-bucketed layout, so merging is exact bucket-count
    addition and quantiles are deterministic (see {!Metrics}). *)

val hist_seconds : t -> string -> float -> unit
(** [hist t name (round (dt * 1e9))]: records a duration in integer
    nanoseconds.  Name the key with an [_ns] suffix so readers (and
    benchdiff's direction table) know the unit. *)

val hist_merge : t -> string -> Metrics.Histogram.t -> unit
(** Merges an externally accumulated histogram (e.g. one a parallel
    worker filled locally) into the named cell — exact, so fold order
    cannot perturb the result. *)

(** {2 GC accounting} *)

val gc_counters_live : unit -> bool
(** Whether GC deltas are measured at all: false under
    [NETREL_FAKE_CLOCK], where phases record zeros instead so
    documents stay byte-stable and jobs-invariant. *)

val record_gc : t -> string -> Metrics.Gcstat.delta -> unit
(** Records a measured GC delta under [name.*]: word/collection
    counters add (per-task deltas accumulate under ordered reduction),
    [name.top_heap_words] is a max-gauge. *)

val gc_phase : t -> ?emit:(string -> float -> unit) -> string -> (unit -> 'a) -> 'a
(** [gc_phase t name f] runs [f] and records the [Gc.quick_stat] delta
    it caused under [name.*] (also on exceptional exit).  [emit] is
    called with [(key, value)] for the headline counters (minor/major
    words, top-heap words) when measurement is live — the hook
    {!Trace} counter events ride on.  Under the fake clock nothing is
    measured or emitted and the cells record zero. *)

(** {2 Reading back} *)

val counter_value : t -> string -> int
val gauge_value : t -> string -> float
val text_value : t -> string -> string
val timer_seconds : t -> string -> float
val timer_count : t -> string -> int
val series_values : t -> string -> float array

val hist_count : t -> string -> int
val hist_max : t -> string -> int
val hist_quantile : t -> string -> float -> int

val mem : t -> string -> bool
(** Whether a cell exists under the (prefixed) name — lets report-time
    derivations distinguish "never recorded" from a zero value. *)

(** {2 Aggregation and rendering} *)

val merge : into:t -> t -> unit
(** Folds [src]'s cells into [into] (applying [into]'s prefix):
    counters and timers add, gauges take the max, text takes [src]'s
    value, series points append in order.  Keys are visited in sorted
    order, so merging is deterministic.  No-op if either side is
    disabled. *)

val to_json : t -> Json.t
(** All cells as a nested object: dotted keys split on ['.'], keys
    sorted at every level.  Counters render as ints, gauges as floats,
    text as strings, timers as [{"seconds": s, "count": n}], series as
    [{"every": k, "values": [...]}], histograms as
    [{"count", "max", "p50", "p90", "p99", "buckets": [[idx, n], ...]}]
    with only non-empty buckets listed.  A key that is both a leaf and
    a prefix renders the leaf under ["value"]. *)
