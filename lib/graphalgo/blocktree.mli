(** The bridge/block tree used by the paper's extension technique
    (Section 5, "Prune"): contract every 2-edge-connected component to a
    supernode; bridges become tree edges, so the contracted graph is a
    forest. The minimal Steiner subtree spanning the terminal-bearing
    supernodes identifies exactly the vertices and edges that can affect
    the network reliability. *)

type t = {
  comp_of_vertex : int array;  (** 2ECC id of every original vertex *)
  n_comps : int;
  adj : (int * int) list array;
      (** per supernode: [(other_supernode, bridge_eid)] tree edges *)
  terminal_count : int array;  (** per supernode, set by {!build} *)
}

val build : Ugraph.t -> terminals:int list -> t
(** Contract 2ECCs and record which supernodes host terminals. *)

val steiner_keep : t -> bool array
(** [steiner_keep bt] marks the supernodes of the minimal subtree
    spanning all terminal-bearing supernodes: iteratively strips
    terminal-free leaves, then drops everything not in the terminal
    component.

    If the terminal supernodes lie in different trees of the forest, the
    terminals can never be connected; every supernode is then marked
    [false] — callers must detect this case via {!terminals_separated}
    before pruning. *)

val terminals_separated : t -> bool
(** [true] when terminal-bearing supernodes fall in two or more distinct
    trees of the forest (reliability is exactly zero). *)

val kept_vertices : t -> bool array -> bool array
(** Expand a supernode keep-mask back to original vertices. *)

val kept_bridges : t -> bool array -> (int, unit) Hashtbl.t
(** Bridge edge ids whose both endpoints' supernodes are kept (the tree
    edges of the Steiner subtree). *)
