open Testutil
module BF = Bddbase.Bruteforce
module SSet = Uapps.Sampleset
module RSearch = Uapps.Reliability_search
module Clust = Uapps.Clustering
module RSub = Uapps.Reliable_subgraph

(* ---- sample sets ---- *)

let t_sampleset_deterministic () =
  let g = fig1 () in
  let a = SSet.draw ~seed:3 g ~samples:50 in
  let b = SSet.draw ~seed:3 g ~samples:50 in
  for sample = 0 to 49 do
    for eid = 0 to Ugraph.n_edges g - 1 do
      Alcotest.(check bool) "same bits" (SSet.edge_present a ~sample ~eid)
        (SSet.edge_present b ~sample ~eid)
    done
  done

let t_sampleset_edge_frequency () =
  let g = graph ~n:2 [ (0, 1, 0.3) ] in
  let set = SSet.draw ~seed:1 g ~samples:50_000 in
  let count = ref 0 in
  for sample = 0 to 49_999 do
    if SSet.edge_present set ~sample ~eid:0 then incr count
  done;
  let rate = float_of_int !count /. 50_000. in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f ~ 0.3" rate) true
    (Float.abs (rate -. 0.3) < 0.01)

let t_sampleset_extremes () =
  let g = graph ~n:2 [ (0, 1, 1.0); (0, 1, 0.0) ] in
  let set = SSet.draw ~seed:1 g ~samples:100 in
  for sample = 0 to 99 do
    Alcotest.(check bool) "p=1 always" true (SSet.edge_present set ~sample ~eid:0);
    Alcotest.(check bool) "p=0 never" false (SSet.edge_present set ~sample ~eid:1)
  done

let t_connected_count_matches_reliability () =
  let g = fig1 () in
  let ts = [ 0; 3; 4 ] in
  let expect = BF.reliability g ~terminals:ts in
  let samples = 40_000 in
  let set = SSet.draw ~seed:7 g ~samples in
  let est = float_of_int (SSet.connected_count set ts) /. float_of_int samples in
  let sigma = sqrt (expect *. (1. -. expect) /. float_of_int samples) in
  Alcotest.(check bool)
    (Printf.sprintf "count/s %.4f ~ %.4f" est expect)
    true
    (Float.abs (est -. expect) <= 5. *. sigma)

let t_reach_counts_basics () =
  let g = path4 1.0 in
  let set = SSet.draw ~seed:1 g ~samples:10 in
  Alcotest.(check (array int)) "everything reached under p=1"
    [| 10; 10; 10; 10 |]
    (SSet.reach_counts set ~sources:[ 0 ]);
  let dead = path4 0.0 in
  let set0 = SSet.draw ~seed:1 dead ~samples:10 in
  Alcotest.(check (array int)) "only the source under p=0" [| 10; 0; 0; 0 |]
    (SSet.reach_counts set0 ~sources:[ 0 ])

let t_pairwise_counts () =
  let g = two_triangles 1.0 in
  let set = SSet.draw ~seed:1 g ~samples:5 in
  let pairs = SSet.pairwise_counts set [ 0; 4; 5 ] in
  Alcotest.(check int) "three pairs" 3 (List.length pairs);
  List.iter
    (fun (_, _, c) -> Alcotest.(check int) "fully connected graph" 5 c)
    pairs

(* ---- reliability search ---- *)

let t_search_certain_graph () =
  let g = two_triangles 1.0 in
  let results = RSearch.search ~samples:100 g ~sources:[ 0 ] ~eta:0.9 in
  Alcotest.(check int) "all other vertices found" 5 (List.length results);
  List.iter
    (fun r -> check_close "certain reach" 1. r.RSearch.reliability)
    results

let t_search_threshold () =
  (* Path with decaying reach: vertices further from the source fall
     under the threshold. *)
  let g = path4 0.5 in
  let results = RSearch.search ~seed:5 ~samples:20_000 g ~sources:[ 0 ] ~eta:0.2 in
  let found = List.map (fun r -> r.RSearch.vertex) results in
  (* Reach probabilities: v1 = 0.5, v2 = 0.25, v3 = 0.125. *)
  Alcotest.(check (list int)) "v1 and v2 pass eta=0.2" [ 1; 2 ] found;
  let r1 = List.hd results in
  Alcotest.(check int) "sorted by reliability" 1 r1.RSearch.vertex;
  Alcotest.(check bool) "estimate near 0.5" true
    (Float.abs (r1.RSearch.reliability -. 0.5) < 0.02)

let t_search_excludes_sources () =
  let g = fig1 () in
  let results = RSearch.search ~samples:200 g ~sources:[ 0; 1 ] ~eta:0. in
  Alcotest.(check bool) "sources excluded" true
    (List.for_all (fun r -> r.RSearch.vertex <> 0 && r.RSearch.vertex <> 1) results)

let t_search_validation () =
  let g = fig1 () in
  Alcotest.check_raises "bad eta"
    (Invalid_argument "Reliability_search: eta outside [0,1]") (fun () ->
      ignore (RSearch.search g ~sources:[ 0 ] ~eta:1.5))

(* ---- clustering ---- *)

let t_clustering_two_blobs () =
  (* Two dense triangles joined by a feeble bridge: k = 2 must split at
     the bridge. *)
  let g =
    graph ~n:6
      [ (0, 1, 0.95); (1, 2, 0.95); (2, 0, 0.95); (2, 3, 0.05); (3, 4, 0.95);
        (4, 5, 0.95); (5, 3, 0.95) ]
  in
  let cl = Clust.cluster ~seed:2 ~samples:2_000 g ~k:2 in
  Alcotest.(check int) "two centers" 2 (Array.length cl.Clust.centers);
  let cluster_of v = cl.Clust.assignment.(v) in
  Alcotest.(check int) "0 with 1" (cluster_of 0) (cluster_of 1);
  Alcotest.(check int) "1 with 2" (cluster_of 1) (cluster_of 2);
  Alcotest.(check int) "3 with 4" (cluster_of 3) (cluster_of 4);
  Alcotest.(check int) "4 with 5" (cluster_of 4) (cluster_of 5);
  Alcotest.(check bool) "split across the bridge" true
    (cluster_of 0 <> cluster_of 3);
  let quality = Clust.average_inner_reliability cl in
  Alcotest.(check bool)
    (Printf.sprintf "high inner reliability %.3f" quality)
    true (quality > 0.8)

let t_clustering_k_equals_n () =
  let g = path4 0.5 in
  let cl = Clust.cluster ~samples:100 g ~k:4 in
  let sorted = Array.copy cl.Clust.centers in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "everyone a center" [| 0; 1; 2; 3 |] sorted;
  check_close "inner reliability vacuous" 1. (Clust.average_inner_reliability cl)

let t_clustering_validation () =
  let g = path4 0.5 in
  Alcotest.check_raises "k too large"
    (Invalid_argument "Clustering.cluster: k out of range") (fun () ->
      ignore (Clust.cluster g ~k:5))

(* ---- reliable subgraph ---- *)

let t_subgraph_prunes_pendant () =
  (* Triangle with seeds {0, 1} plus a pendant path: the pendant cannot
     help and must be pruned. *)
  let g =
    graph ~n:6
      [ (0, 1, 0.9); (1, 2, 0.9); (2, 0, 0.9); (2, 3, 0.8); (3, 4, 0.8); (4, 5, 0.8) ]
  in
  let r = RSub.discover ~seed:4 ~samples:2_000 g ~seeds:[ 0; 1 ] ~threshold:0.9 in
  Alcotest.(check bool) "small core" true (List.length r.RSub.vertices <= 3);
  Alcotest.(check bool) "contains seeds" true
    (List.mem 0 r.RSub.vertices && List.mem 1 r.RSub.vertices);
  Alcotest.(check bool) "meets threshold" true (r.RSub.reliability >= 0.9);
  Alcotest.(check int) "seed terminals relabelled" 2 (List.length r.RSub.seed_terminals)

let t_subgraph_keeps_needed_path () =
  (* Seeds at the two ends of a reliable path: nothing removable without
     dropping below the threshold. *)
  let g = path4 0.99 in
  let r = RSub.discover ~seed:4 ~samples:2_000 g ~seeds:[ 0; 3 ] ~threshold:0.9 in
  Alcotest.(check int) "whole path kept" 4 (List.length r.RSub.vertices)

let t_subgraph_unreachable_threshold () =
  (* Threshold above the achievable reliability: nothing is removed and
     the reported estimate stays below it. *)
  let g = path4 0.5 in
  let r = RSub.discover ~samples:1_000 g ~seeds:[ 0; 3 ] ~threshold:0.99 in
  Alcotest.(check bool) "reports honest reliability" true (r.RSub.reliability < 0.99);
  Alcotest.(check int) "graph untouched" 4 (List.length r.RSub.vertices)

let suite =
  ( "apps",
    [
      Alcotest.test_case "sampleset deterministic" `Quick t_sampleset_deterministic;
      Alcotest.test_case "sampleset edge frequency" `Slow t_sampleset_edge_frequency;
      Alcotest.test_case "sampleset p in {0,1}" `Quick t_sampleset_extremes;
      Alcotest.test_case "connected_count ~ reliability" `Slow
        t_connected_count_matches_reliability;
      Alcotest.test_case "reach counts basics" `Quick t_reach_counts_basics;
      Alcotest.test_case "pairwise counts" `Quick t_pairwise_counts;
      Alcotest.test_case "search: certain graph" `Quick t_search_certain_graph;
      Alcotest.test_case "search: threshold" `Slow t_search_threshold;
      Alcotest.test_case "search: excludes sources" `Quick t_search_excludes_sources;
      Alcotest.test_case "search: validation" `Quick t_search_validation;
      Alcotest.test_case "clustering: two blobs" `Quick t_clustering_two_blobs;
      Alcotest.test_case "clustering: k = n" `Quick t_clustering_k_equals_n;
      Alcotest.test_case "clustering: validation" `Quick t_clustering_validation;
      Alcotest.test_case "subgraph: prunes pendant" `Quick t_subgraph_prunes_pendant;
      Alcotest.test_case "subgraph: keeps needed path" `Quick t_subgraph_keeps_needed_path;
      Alcotest.test_case "subgraph: honest on unreachable threshold" `Quick
        t_subgraph_unreachable_threshold;
    ] )
