(* Zachary's karate club (1977), the standard 34-vertex / 78-edge social
   network, 0-indexed. Public-domain data, embedded verbatim so the
   accuracy experiments run offline on the paper's actual small
   dataset. *)

let edges_1indexed =
  [
    (1, 2); (1, 3); (1, 4); (1, 5); (1, 6); (1, 7); (1, 8); (1, 9); (1, 11);
    (1, 12); (1, 13); (1, 14); (1, 18); (1, 20); (1, 22); (1, 32);
    (2, 3); (2, 4); (2, 8); (2, 14); (2, 18); (2, 20); (2, 22); (2, 31);
    (3, 4); (3, 8); (3, 9); (3, 10); (3, 14); (3, 28); (3, 29); (3, 33);
    (4, 8); (4, 13); (4, 14);
    (5, 7); (5, 11);
    (6, 7); (6, 11); (6, 17);
    (7, 17);
    (9, 31); (9, 33); (9, 34);
    (10, 34);
    (14, 34);
    (15, 33); (15, 34);
    (16, 33); (16, 34);
    (19, 33); (19, 34);
    (20, 34);
    (21, 33); (21, 34);
    (23, 33); (23, 34);
    (24, 26); (24, 28); (24, 30); (24, 33); (24, 34);
    (25, 26); (25, 28); (25, 32);
    (26, 32);
    (27, 30); (27, 34);
    (28, 34);
    (29, 32); (29, 34);
    (30, 33); (30, 34);
    (31, 33); (31, 34);
    (32, 33); (32, 34);
    (33, 34);
  ]

let n_vertices = 34

let edges = List.map (fun (u, v) -> (u - 1, v - 1)) edges_1indexed

(* Uniform random edge probabilities, as the paper assigns to its small
   datasets. *)
let graph ?(seed = 1) () =
  let rng = Prng.create seed in
  Ugraph.create ~n:n_vertices
    (List.map (fun (u, v) -> { Ugraph.u; v; p = Prng.float rng }) edges)
