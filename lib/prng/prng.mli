(** Deterministic, splittable pseudo-random number generation.

    Every randomised component of the library (samplers, workload
    generators, probability assignment) draws from this module so that a
    single integer seed reproduces an entire experiment bit-for-bit.

    The generator is xoshiro256** (Blackman & Vigna), seeded through
    SplitMix64; both implemented here from scratch on [int64].  States are
    mutable and not thread-safe; use {!split} to derive independent
    streams for parallel or structurally separate uses. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed via
    SplitMix64 expansion. Equal seeds give equal streams. *)

val split : t -> t
(** [split g] derives a new generator whose future output is independent
    of [g]'s (distinct SplitMix64 re-seeding), advancing [g]. *)

val copy : t -> t
(** Duplicate the current state; both copies then produce the same
    stream. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val float : t -> float
(** Uniform in [[0, 1)] with 53 random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)] (rejection sampling,
    unbiased). @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to
    [[0, 1]]). *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform in [[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index g ws] samples index [i] with probability
    [ws.(i) / sum ws] by linear scan. Weights must be non-negative with a
    positive sum. @raise Invalid_argument otherwise. *)

module Alias : sig
  (** Walker alias tables: O(n) build, O(1) weighted sampling, used by
      the stratified sampler when one stratum is drawn many times. *)

  type table

  val build : float array -> table
  (** @raise Invalid_argument on negative weights or a non-positive
      sum. *)

  val sample : t -> table -> int
  val size : table -> int
end
