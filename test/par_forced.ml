(* Runs with NETREL_FORCE_DOMAINS=2 (and OCAMLRUNPARAM=b) from the
   dune runtest alias: every parallel entry point — including jobs = 1
   call sites that would otherwise take the sequential fast path — is
   redirected onto a 2-domain pool. By the deterministic-reduction
   contract this must not change any result, so the same jobs-
   equivalence checks as test_par.ml must hold verbatim, and the
   samplers must report the forced domain count. *)

module S = Netrel.S2bdd
module R = Netrel.Reliability

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let graph ~n es =
  Ugraph.create ~n (List.map (fun (u, v, p) -> ({ u; v; p } : Ugraph.edge)) es)

let fig1 =
  graph ~n:5
    [ (0, 1, 0.7); (0, 2, 0.7); (1, 3, 0.7); (2, 3, 0.7); (1, 4, 0.7); (3, 4, 0.7) ]

let two_triangles =
  graph ~n:6
    [ (0, 1, 0.6); (1, 2, 0.6); (2, 0, 0.6); (2, 3, 0.6); (3, 4, 0.6);
      (4, 5, 0.6); (5, 3, 0.6) ]

let () =
  (match Par.forced_domains () with
  | Some 2 -> ()
  | Some n -> fail "expected NETREL_FORCE_DOMAINS=2, got %d" n
  | None -> fail "NETREL_FORCE_DOMAINS not set; run via the dune rule");
  (* The override must engage even at the jobs = 1 default ... *)
  let e1 = Mcsampling.monte_carlo ~seed:5 fig1 ~terminals:[ 0; 4 ] ~samples:10_000 in
  if e1.Mcsampling.jobs_used <> 2 then
    fail "jobs_used = %d under forcing, expected 2" e1.Mcsampling.jobs_used;
  (* ... without changing any result: jobs 1/2/8 all collapse onto the
     forced pool and must agree bit-for-bit with each other. *)
  let runs f = List.map f [ 1; 2; 8 ] in
  let check_all_equal what = function
    | [] -> ()
    | x :: rest -> if not (List.for_all (( = ) x) rest) then fail "%s diverged" what
  in
  check_all_equal "MC (value, hits)"
    (runs (fun jobs ->
         let e =
           Mcsampling.monte_carlo ~seed:5 ~jobs fig1 ~terminals:[ 0; 4 ]
             ~samples:10_000
         in
         (e.Mcsampling.value, e.Mcsampling.hits, e.Mcsampling.chunk_samples)));
  check_all_equal "HT (value, distinct)"
    (runs (fun jobs ->
         let e =
           Mcsampling.horvitz_thompson ~seed:5 ~jobs fig1 ~terminals:[ 0; 4 ]
             ~samples:10_000
         in
         (e.Mcsampling.value, e.Mcsampling.distinct, e.Mcsampling.chunk_samples)));
  (* The bit-sliced kernel shares the chunked reduction, so the same
     invariance must hold on its own stream (never compared cross-mode). *)
  check_all_equal "bitsliced MC (value, hits)"
    (runs (fun jobs ->
         let e =
           Mcsampling.monte_carlo ~seed:5 ~jobs ~kernel:Mcsampling.Bitsliced
             fig1 ~terminals:[ 0; 4 ] ~samples:10_000
         in
         (e.Mcsampling.value, e.Mcsampling.hits, e.Mcsampling.chunk_samples)));
  check_all_equal "bitsliced HT (value, distinct)"
    (runs (fun jobs ->
         let e =
           Mcsampling.horvitz_thompson ~seed:5 ~jobs
             ~kernel:Mcsampling.Bitsliced fig1 ~terminals:[ 0; 4 ]
             ~samples:10_000
         in
         (e.Mcsampling.value, e.Mcsampling.distinct, e.Mcsampling.chunk_samples)));
  (* Full pipeline on a bridge-decomposable graph: subproblems and
     descents both land on the forced pool (width 2 forces deletion). *)
  let config = { S.default_config with S.samples = 500; S.width = 2 } in
  check_all_equal "Reliability.estimate report"
    (runs (fun jobs -> R.estimate ~config ~jobs two_triangles ~terminals:[ 0; 4 ]));
  print_endline "par_forced: OK (2 forced domains, all estimates invariant)"
