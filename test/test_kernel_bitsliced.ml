(* Differential battery for the bit-sliced world-parallel kernel.

   The bit-sliced draw cannot be bit-identical to the scalar draw order
   (one batch stream feeds 62 worlds), so unlike test_kernel.ml these
   are not cross-mode stream-sync checks. The contract pinned here is:

   - the slab is exactly the per-lane replay: bit [l] of every slab
     word equals [Prng.Bitbatch.bernoulli_lane ~lane:l] replayed
     against a copy of the batch stream (and the replay leaves the
     stream in the same state as the batch draw);
   - each peeled early-exit verdict equals the full-DSU verdict over
     that lane's replayed bool mask;
   - world hashes are digest-identical to [Hash64.mask] over the
     replayed mask (so HT dedup semantics match the flat path);
   - within the bitsliced mode, MC/HT estimates are bit-identical at
     jobs 1/2/8 (the ordered-reduction contract holds per mode). *)

open Testutil
module K = Kernel
module B = Prng.Bitbatch

let arb_graph_ts = Test_bddbase.arb_graph_ts

let streams_synced r1 r2 = Prng.int r1 1_000_000 = Prng.int r2 1_000_000

(* Replay lane [lane] of a bit-sliced draw: the scalar per-world draw,
   fed by a fresh copy of the batch stream. *)
let replay_lane g ~seed ~lane =
  let r = Prng.create seed in
  let m = Ugraph.n_edges g in
  ( Array.init m (fun eid ->
        B.bernoulli_lane r ~lane (Ugraph.edge g eid).Ugraph.p),
    r )

let slab_bit sc ~pos ~lane = (K.slab_word sc pos lsr lane) land 1 = 1

(* ---- transpose ---- *)

let prop_transpose_involution =
  QCheck.Test.make ~name:"Bitslab: transpose o transpose = id" ~count:300
    QCheck.(pair (int_bound 80) (int_bound 80))
    (fun (rows, cols) ->
      let r = rng () in
      let wpr = K.Bitslab.words_per_row ~cols in
      let top_bits = cols - ((wpr - 1) * Hash64.word_bits) in
      let src =
        Array.init (rows * wpr) (fun i ->
            let w = Int64.to_int (Int64.shift_right_logical (Prng.bits64 r) 2) in
            (* Zero the padding above the row's last valid bit. *)
            if i mod wpr = wpr - 1 && top_bits < Hash64.word_bits then
              w land ((1 lsl top_bits) - 1)
            else w)
      in
      let wpr_d = K.Bitslab.words_per_row ~cols:rows in
      let dst = Array.make (max (cols * wpr_d) 1) 0 in
      let back = Array.make (max (rows * wpr) 1) 0 in
      K.Bitslab.transpose ~src ~rows ~cols ~dst;
      K.Bitslab.transpose ~src:dst ~rows:cols ~cols:rows ~dst:back;
      Array.for_all2 ( = ) src (Array.sub back 0 (Array.length src)))

(* ---- per-lane replay ---- *)

let prop_slab_equals_lane_replay =
  QCheck.Test.make ~name:"draw_bitsliced: slab lane = bernoulli_lane replay"
    ~count:150
    (arb_graph_ts ~max_n:8 ~max_m:14 ~max_k:4)
    (fun (n, es, _) ->
      let g = graph ~n es in
      let m = Ugraph.n_edges g in
      let seed = 11 * n + m in
      let batch_rng = Prng.create seed in
      let c = K.Csr.of_graph g in
      let sc = K.create () in
      K.draw_bitsliced sc c batch_rng;
      let ok = ref true in
      for lane = 0 to B.lanes - 1 do
        let present, replay_rng = replay_lane g ~seed ~lane in
        for pos = 0 to m - 1 do
          if slab_bit sc ~pos ~lane <> present.(pos) then ok := false
        done;
        (* The replay consumed the identical stream. *)
        if not (streams_synced replay_rng (Prng.copy batch_rng)) then
          ok := false
      done;
      !ok)

(* The batch draw is exact for the degenerate probabilities: p <= 0 and
   p >= 1 consume no randomness and decide every lane, like
   Prng.bernoulli. *)
let t_batch_degenerate_probs () =
  let r = rng () in
  let before = Prng.copy r in
  Alcotest.(check int) "p=1 -> all lanes" B.all (B.draw r 1.);
  Alcotest.(check int) "p=0 -> no lanes" 0 (B.draw r 0.);
  Alcotest.(check int) "p<0 -> no lanes" 0 (B.draw r (-0.5));
  Alcotest.(check int) "p>1 -> all lanes" B.all (B.draw r 1.5);
  Alcotest.(check bool) "no stream consumed" true (streams_synced r before)

(* Marginal sanity: lane-0 frequency over many draws approaches p. *)
let t_batch_marginal () =
  let r = rng () in
  List.iter
    (fun p ->
      let hits = ref 0 and total = 20_000 in
      for _ = 1 to total do
        if B.draw r p land 1 = 1 then incr hits
      done;
      let freq = float_of_int !hits /. float_of_int total in
      if Float.abs (freq -. p) > 0.02 then
        Alcotest.failf "p=%g: lane-0 frequency %.4f" p freq)
    [ 0.1; 0.5; 0.7; 0.9 ]

(* ---- verdicts vs the full-DSU reference ---- *)

let prop_lane_verdicts_match_dsu =
  QCheck.Test.make ~name:"connected_lanes = per-lane full DSU" ~count:150
    (arb_graph_ts ~max_n:8 ~max_m:14 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let seed = 17 * n + List.length es in
      let c = K.Csr.of_graph g in
      let sc = K.create () in
      let term_arr = Array.of_list ts in
      let dsu = Dsu.create n in
      let ok = ref true in
      let batch_rng = Prng.create seed in
      (* Several rounds on one scratch exercise the generation
         stamping across peels. *)
      for _ = 1 to 5 do
        K.draw_bitsliced sc c batch_rng;
        let verdict = K.connected_lanes sc c term_arr ~active:B.all in
        for lane = 0 to B.lanes - 1 do
          let present =
            Array.init (Ugraph.n_edges g) (fun pos -> slab_bit sc ~pos ~lane)
          in
          let want =
            Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present ts
          in
          if (verdict lsr lane) land 1 = 1 <> want then ok := false;
          (* The single-lane entry point (HT path) agrees. *)
          if K.connected_lane sc c term_arr ~lane <> want then ok := false
        done;
        (* Restricting [active] masks the verdict and nothing else. *)
        let active = 0x2AAAAAAAAAAAAAA land B.all in
        if K.connected_lanes sc c term_arr ~active <> verdict land active
        then ok := false
      done;
      !ok)

(* ---- world hash and probability vs the replayed mask ---- *)

let prop_world_hash_prob_match_replay =
  QCheck.Test.make ~name:"world_hash/world_prob = replayed-mask reference"
    ~count:150
    (arb_graph_ts ~max_n:8 ~max_m:14 ~max_k:4)
    (fun (n, es, _) ->
      let g = graph ~n es in
      let m = Ugraph.n_edges g in
      let seed = 23 * n + m in
      let c = K.Csr.of_graph g in
      let sc = K.create () in
      K.draw_bitsliced sc c (Prng.create seed);
      K.transpose_worlds sc;
      let ok = ref true in
      for lane = 0 to B.lanes - 1 do
        let present = Array.init m (fun pos -> slab_bit sc ~pos ~lane) in
        if K.world_hash sc ~lane <> Hash64.mask present m then ok := false;
        let prob = ref Xprob.one in
        Array.iteri
          (fun pos b ->
            let p = c.K.Csr.ep.(pos) in
            prob := Xprob.scale (if b then p else 1. -. p) !prob)
          present;
        if K.world_prob sc c ~lane <> !prob then ok := false
      done;
      !ok)

(* ---- sampler determinism within the bitsliced mode ---- *)

let mc_projection (e : Mcsampling.estimate) =
  ( e.Mcsampling.value,
    e.Mcsampling.samples_used,
    e.Mcsampling.hits,
    e.Mcsampling.distinct,
    e.Mcsampling.variance_estimate,
    e.Mcsampling.chunk_samples )

let prop_bitsliced_jobs_identical =
  QCheck.Test.make ~name:"bitsliced MC/HT bit-identical at jobs 1/2/8"
    ~count:25
    (arb_graph_ts ~max_n:7 ~max_m:12 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      (* 700 is not a lane multiple: every chunk ends in a ragged
         batch whose inactive lanes must not leak into the counts. *)
      let samples = 700 in
      let seed = 5 + n in
      let kernel = Mcsampling.Bitsliced in
      let mc1 =
        Mcsampling.monte_carlo ~seed ~jobs:1 ~kernel g ~terminals:ts ~samples
      in
      let ht1 =
        Mcsampling.horvitz_thompson ~seed ~jobs:1 ~kernel g ~terminals:ts
          ~samples
      in
      List.for_all
        (fun jobs ->
          mc_projection
            (Mcsampling.monte_carlo ~seed ~jobs ~kernel g ~terminals:ts
               ~samples)
          = mc_projection mc1
          && mc_projection
               (Mcsampling.horvitz_thompson ~seed ~jobs ~kernel g
                  ~terminals:ts ~samples)
             = mc_projection ht1)
        [ 2; 8 ])

(* ---- edge cases ---- *)

let t_zero_edge_graph () =
  let g = graph ~n:2 [] in
  let c = K.Csr.of_graph g in
  let sc = K.create () in
  K.draw_bitsliced sc c (rng ());
  Alcotest.(check int)
    "disconnected terminals: no lane connects" 0
    (K.connected_lanes sc c [| 0; 1 |] ~active:B.all);
  K.transpose_worlds sc;
  Alcotest.(check int)
    "empty-mask hash" (Hash64.mask [||] 0) (K.world_hash sc ~lane:3);
  let e =
    Mcsampling.monte_carlo ~seed:3 ~kernel:Mcsampling.Bitsliced g
      ~terminals:[ 0; 1 ] ~samples:200
  in
  Alcotest.(check (float 0.)) "MC estimate 0" 0. e.Mcsampling.value

let t_single_edge () =
  let g = graph ~n:2 [ (0, 1, 0.5) ] in
  let c = K.Csr.of_graph g in
  let sc = K.create () in
  K.draw_bitsliced sc c (rng ());
  (* The verdict word IS the slab word: lane connects iff it drew the
     one edge. *)
  Alcotest.(check int)
    "verdict = slab word"
    (K.slab_word sc 0)
    (K.connected_lanes sc c [| 0; 1 |] ~active:B.all)

let t_self_loop_only () =
  let g = graph ~n:2 [ (0, 0, 0.9) ] in
  let c = K.Csr.of_graph g in
  let sc = K.create () in
  K.draw_bitsliced sc c (rng ());
  Alcotest.(check int)
    "self-loops never connect" 0
    (K.connected_lanes sc c [| 0; 1 |] ~active:B.all)

let t_terminals_already_connected () =
  (* One marked component before any union: every active lane connects
     with no edge work at all — on a zero-edge graph included. *)
  let g = graph ~n:3 [] in
  let c = K.Csr.of_graph g in
  let sc = K.create () in
  K.draw_bitsliced sc c (rng ());
  Alcotest.(check int)
    "duplicate terminal marks" B.all
    (K.connected_lanes sc c [| 1; 1 |] ~active:B.all);
  Alcotest.(check int)
    "single terminal" 0x7
    (K.connected_lanes sc c [| 2 |] ~active:0x7);
  Alcotest.(check bool)
    "single-lane entry point" true
    (K.connected_lane sc c [| 1; 1 |] ~lane:0)

let t_ragged_last_word () =
  (* 70 edges: the world-major rows span two packed words, the second
     ragged. The hash must still replay Hash64.mask exactly. *)
  let m = 70 in
  let n = m + 1 in
  let es = List.init m (fun i -> (i, i + 1, 0.5)) in
  let g = graph ~n es in
  let c = K.Csr.of_graph g in
  let sc = K.create () in
  K.draw_bitsliced sc c (rng ());
  K.transpose_worlds sc;
  for lane = 0 to B.lanes - 1 do
    let present = Array.init m (fun pos -> slab_bit sc ~pos ~lane) in
    Alcotest.(check int)
      (Printf.sprintf "ragged world hash, lane %d" lane)
      (Hash64.mask present m)
      (K.world_hash sc ~lane)
  done

(* ---- scratch reuse across graphs: the draw/union pairing check ---- *)

let t_scratch_graph_mismatch () =
  let g_a = fig1 () in
  let g_b = graph ~n:3 [ (0, 1, 0.5); (1, 2, 0.5) ] in
  let csr_a = K.Csr.of_graph g_a and csr_b = K.Csr.of_graph g_b in
  let sc = K.create () in
  let r = rng () in
  (* Fresh scratch: no draw at all yet. *)
  Alcotest.check_raises "connectivity before any draw"
    (Invalid_argument "Kernel: no draw against this Csr in scratch (draw first)")
    (fun () -> ignore (K.connected_terminals sc csr_a [| 0; 4 |]));
  (* Flat draw against A, connectivity against B: the present buffer
     holds positions into A, which B would silently misread. *)
  K.draw sc csr_a r;
  Alcotest.check_raises "flat draw A, union B"
    (Invalid_argument "Kernel: no draw against this Csr in scratch (draw first)")
    (fun () -> ignore (K.connected_terminals sc csr_b [| 0; 2 |]));
  Alcotest.(check bool)
    "matching Csr still works" true
    (let _ = K.connected_terminals sc csr_a [| 0; 4 |] in
     true);
  (* Same for the bit-sliced entry points. *)
  K.draw_bitsliced sc csr_b r;
  Alcotest.check_raises "bitsliced draw B, peel A"
    (Invalid_argument "Kernel: no draw against this Csr in scratch (draw first)")
    (fun () -> ignore (K.connected_lanes sc csr_a [| 0; 4 |] ~active:B.all));
  Alcotest.check_raises "bitsliced draw B, lane A"
    (Invalid_argument "Kernel: no draw against this Csr in scratch (draw first)")
    (fun () -> ignore (K.connected_lane sc csr_a [| 0; 4 |] ~lane:0));
  ignore (K.connected_lanes sc csr_b [| 0; 2 |] ~active:B.all)

let suite =
  ( "kernel-bitsliced",
    [
      Alcotest.test_case "batch degenerate probabilities" `Quick
        t_batch_degenerate_probs;
      Alcotest.test_case "batch lane-0 marginal" `Quick t_batch_marginal;
      Alcotest.test_case "zero-edge graph" `Quick t_zero_edge_graph;
      Alcotest.test_case "single edge" `Quick t_single_edge;
      Alcotest.test_case "self-loop only" `Quick t_self_loop_only;
      Alcotest.test_case "terminals already connected" `Quick
        t_terminals_already_connected;
      Alcotest.test_case "ragged last word" `Quick t_ragged_last_word;
      Alcotest.test_case "scratch graph mismatch" `Quick
        t_scratch_graph_mismatch;
    ]
    @ qtests
        [
          prop_transpose_involution;
          prop_slab_equals_lane_replay;
          prop_lane_verdicts_match_dsu;
          prop_world_hash_prob_match_replay;
          prop_bitsliced_jobs_identical;
        ] )
