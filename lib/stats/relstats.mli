(** Accuracy metrics and measurement helpers for the experiments.

    Section 7.6 evaluates approximation quality over [q1] searches
    (terminal sets) with [q2] repetitions each:
    {ul
    {- variance:   [sum_ij (R_i - R^_ij)^2 / (q1 * q2)]}
    {- error rate: [sum_ij |R_i - R^_ij| / (q1 * q2 * R_i)]}} *)

val variance : exact:float array -> estimates:float array array -> float
(** [variance ~exact ~estimates] with [estimates.(i)] the repetitions
    for search [i]. @raise Invalid_argument on shape mismatch or empty
    input. *)

val error_rate : exact:float array -> estimates:float array array -> float
(** As above; searches with [R_i = 0] contribute [0] when the estimate
    is also [0] and [1] otherwise (relative error against a zero truth
    saturates). *)

val mean : float array -> float
val std_dev : float array -> float
(** Sample standard deviation (n−1 divisor, unbiased variance): a
    single observation reports [0.] rather than claim zero spread with
    a population divisor. @raise Invalid_argument on empty input. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [[0, 1]], linear interpolation.
    @raise Invalid_argument on empty input. *)

val now_monotonic : unit -> float
(** Seconds on [CLOCK_MONOTONIC] (arbitrary origin): immune to NTP
    steps, safe to difference. *)

val time : (unit -> 'a) -> 'a * float
(** Elapsed monotonic seconds for one call, clamped at [0.]. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Run [repeats] times (default 3) and report the median elapsed
    monotonic time with the last result. *)

val format_seconds : float -> string
(** Human-readable: ["412us"], ["3.2ms"], ["1.54s"]. *)

(** {2 Binomial confidence intervals}

    Interval estimators for a proportion observed as [phat] out of [n]
    Bernoulli trials. {!Wald} is the fixed normal interval
    [phat ± z sqrt(phat (1-phat) / n)] — it collapses to zero width at
    [phat ∈ {0, 1}], exactly the regime that matters for reliable
    graphs, and is retained only as the legacy reference. {!Wilson}
    (score inversion) always has nonzero width, always contains [phat],
    and its width is strictly decreasing in [n] for a fixed [phat];
    {!Agresti_coull} is the simpler add-[z²] pseudo-count fallback
    (slightly wider than Wilson, bounds clamped into [[0, 1]]). *)

type interval_method = Wald | Wilson | Agresti_coull

val interval_method_name : interval_method -> string
(** ["wald"] / ["wilson"] / ["agresti-coull"]. *)

val default_z : float
(** [1.96] — the nominal two-sided 95% normal quantile. *)

val interval :
  ?z:float -> interval_method -> phat:float -> n:int -> float * float
(** [interval m ~phat ~n] is the [(lower, upper)] confidence interval
    for the success probability, both bounds in [[0, 1]] with
    [lower <= upper]. [phat] is clamped into [[0, 1]] first (the HT
    estimator can overshoot 1 under sampling noise). [z] defaults to
    {!default_z}. @raise Invalid_argument when [n < 1] or [z] is not
    finite and positive. *)
