(** Loader for KONECT-style edge lists (the repository the paper's small
    datasets come from: [http://konect.uni-koblenz.de]).

    Accepted line format, whitespace-separated:
    {v
    % comment (also # comments)
    u v
    u v weight
    u v weight timestamp
    v}

    Vertex labels may be arbitrary non-negative integers (KONECT is
    1-indexed); they are compacted to [0..n-1] in first-appearance
    order. Duplicate edges are merged, accumulating a multiplicity used
    by the [`Coauthor] probability scheme. *)

type probability_scheme =
  [ `Uniform of int  (** seed: independent uniform (0,1) probabilities *)
  | `Coauthor  (** the paper's [log(alpha+1)/log(alphaM+2)] on multiplicities *)
  | `Weight  (** use the weight column directly; must lie in [0, 1] *)
  ]

val parse : string -> scheme:probability_scheme -> Ugraph.t
(** Parse from a string. Self-loops are dropped.
    @raise Invalid_argument on malformed lines, or on [`Weight] with a
    missing / out-of-range weight column. *)

val load : string -> scheme:probability_scheme -> Ugraph.t
(** Parse from a file path. *)
