let check_shape exact estimates =
  let q1 = Array.length exact in
  if q1 = 0 || Array.length estimates <> q1 then
    invalid_arg "Relstats: exact and estimates shapes differ";
  Array.iter
    (fun row -> if Array.length row = 0 then invalid_arg "Relstats: empty repetition row")
    estimates

let fold_cells f init exact estimates =
  let acc = ref init and cells = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun est ->
          incr cells;
          acc := f !acc exact.(i) est)
        row)
    estimates;
  (!acc, !cells)

let variance ~exact ~estimates =
  check_shape exact estimates;
  let total, cells =
    fold_cells (fun acc r est -> acc +. ((r -. est) ** 2.)) 0. exact estimates
  in
  total /. float_of_int cells

let error_rate ~exact ~estimates =
  check_shape exact estimates;
  let term r est =
    if r = 0. then if est = 0. then 0. else 1. else Float.abs (r -. est) /. r
  in
  let total, cells = fold_cells (fun acc r est -> acc +. term r est) 0. exact estimates in
  total /. float_of_int cells

let mean xs =
  if Array.length xs = 0 then invalid_arg "Relstats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let std_dev xs =
  let m = mean xs in
  let v =
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
    /. float_of_int (Array.length xs)
  in
  sqrt v

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Relstats.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Relstats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let time_median ?(repeats = 3) f =
  if repeats <= 0 then invalid_arg "Relstats.time_median: repeats <= 0";
  let last = ref None in
  let times =
    Array.init repeats (fun _ ->
        let x, dt = time f in
        last := Some x;
        dt)
  in
  match !last with
  | None -> assert false
  | Some x -> (x, quantile times 0.5)

let format_seconds s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s
