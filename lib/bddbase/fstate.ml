(* Frontier state machine. See fstate.mli for the model.

   States are SPARSE: only "non-trivial" frontier vertices are stored —
   those whose component either spans at least two frontier vertices or
   carries a terminal. A frontier vertex absent from the state is an
   implicit singleton component with no terminal: every incident edge
   processed so far was non-existent. On percolation-sparse graphs this
   keeps states tiny even when the frontier itself is huge, which is
   what makes layer processing affordable on non-planar inputs.

   Invariants of a canonical state:
   - [verts] strictly increasing vertex ids;
   - [comp_of.(i)] is the component of [verts.(i)], ids assigned by
     first appearance (so equal partitions are equal arrays);
   - [tc.(c)] terminal count of component [c]; every component is
     non-trivial (size >= 2 or [tc > 0]). *)

type state = { verts : int array; comp_of : int array; tc : int array }

type ctx = {
  g : Ugraph.t;
  k : int;
  order : int array;
  first_pos : int array;
  last_pos : int array;
  width_after : int array;
  terminal_arr : int array;
  is_terminal : bool array;
  incident_positions : int array array; (* per vertex, sorted *)
  (* Edge endpoints and probabilities laid out in processing order
     (position [i] = edge [order.(i)]): descents stream through these
     flat arrays sequentially (the permuted accesses through [order]
     into the boxed edge records would dominate the per-sample cost
     otherwise). The snapshot also carries the CSR adjacency, unused by
     the descents themselves but shared with every other kernel
     consumer. *)
  csr : Kernel.Csr.t;
}

let initial = { verts = [||]; comp_of = [||]; tc = [||] }

type outcome =
  | Sink1
  | Sink0
  | Live of state

let n_positions ctx = Array.length ctx.order
let n_terminals ctx = ctx.k
let edge_at ctx pos = Ugraph.edge ctx.g ctx.order.(pos)
let frontier_size_after ctx pos = ctx.width_after.(pos)

let make g ~order ~terminals =
  Ugraph.validate_terminals g terminals;
  let k = List.length terminals in
  if k < 2 then invalid_arg "Fstate.make: need at least two terminals";
  List.iter
    (fun t ->
      if Ugraph.degree g t = 0 then
        invalid_arg "Fstate.make: isolated terminal (reliability is trivially zero)")
    terminals;
  let plan = Graphalgo.Ordering.Frontier.plan g order in
  let n = Ugraph.n_vertices g in
  let is_terminal = Array.make n false in
  List.iter (fun t -> is_terminal.(t) <- true) terminals;
  let incident_positions =
    Array.init n (fun v ->
        let ps =
          Array.map (fun eid -> plan.Graphalgo.Ordering.Frontier.pos_of_eid.(eid))
            (Ugraph.incident_eids g v)
        in
        Array.sort Int.compare ps;
        ps)
  in
  let csr = Kernel.Csr.of_order g ~order in
  {
    g;
    k;
    order = Array.copy order;
    first_pos = plan.Graphalgo.Ordering.Frontier.first_pos;
    last_pos = plan.Graphalgo.Ordering.Frontier.last_pos;
    width_after = plan.Graphalgo.Ordering.Frontier.width;
    terminal_arr = Array.of_list terminals;
    is_terminal;
    incident_positions;
    csr;
  }

let find_vert st x =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if st.verts.(mid) = x then mid
      else if st.verts.(mid) < x then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length st.verts)

(* Remaining uncertain degree of vertex [v] strictly after position
   [pos]: incident positions greater than [pos]. *)
let rem_deg ctx v ~pos =
  let ps = ctx.incident_positions.(v) in
  let len = Array.length ps in
  let rec go lo hi =
    if lo >= hi then lo else
    let mid = (lo + hi) / 2 in
    if ps.(mid) <= pos then go (mid + 1) hi else go lo mid
  in
  len - go 0 len

let step ctx ~eager ~pos st ~exists =
  let e = edge_at ctx pos in
  let u = e.Ugraph.u and v = e.Ugraph.v in
  let nv = Array.length st.verts and nc = Array.length st.tc in
  (* Working arrays sized for up to two insertions. *)
  let w_verts = Array.make (nv + 2) 0 in
  let w_comp = Array.make (nv + 2) 0 in
  let w_tc = Array.make (nc + 2) 0 in
  Array.blit st.tc 0 w_tc 0 nc;
  let w_len = ref 0 and w_nc = ref nc in
  (* Materialisation set: a vertex joins the explicit representation if
     it is an entering terminal, or an endpoint of an existent non-loop
     edge (its component will have size >= 2). *)
  let entering x = ctx.first_pos.(x) = pos in
  let needs x =
    (entering x && ctx.is_terminal.(x)) || (exists && u <> v)
  in
  let insert_sorted =
    let pending = ref [] in
    if needs u && find_vert st u < 0 then pending := [ u ];
    if v <> u && needs v && find_vert st v < 0 then
      pending := List.sort_uniq Int.compare (v :: !pending);
    !pending
  in
  (* Merge old verts with pending insertions, both sorted. *)
  let rec emit i pending =
    match pending with
    | p :: rest when i >= nv || p < st.verts.(i) ->
      w_verts.(!w_len) <- p;
      w_comp.(!w_len) <- !w_nc;
      (* New singleton: terminal iff it is a terminal vertex (it may
         have entered earlier as an implicit non-terminal only if not a
         terminal, so is_terminal decides). *)
      w_tc.(!w_nc) <- (if ctx.is_terminal.(p) then 1 else 0);
      incr w_nc;
      incr w_len;
      emit i rest
    | _ when i < nv ->
      w_verts.(!w_len) <- st.verts.(i);
      w_comp.(!w_len) <- st.comp_of.(i);
      incr w_len;
      emit (i + 1) pending
    | [] -> ()
    | _ -> emit i pending
  in
  emit 0 insert_sorted;
  let len = !w_len in
  let find x =
    let rec go lo hi =
      if lo >= hi then -1
      else
        let mid = (lo + hi) / 2 in
        if w_verts.(mid) = x then mid
        else if w_verts.(mid) < x then go (mid + 1) hi
        else go lo mid
    in
    go 0 len
  in
  (* Apply an existent edge: merge the endpoint components. *)
  let early_sink1 = ref false in
  if exists && u <> v then begin
    let iu = find u and iv = find v in
    let cu = w_comp.(iu) and cv = w_comp.(iv) in
    if cu <> cv then begin
      let keep, dead = if cu < cv then (cu, cv) else (cv, cu) in
      for i = 0 to len - 1 do
        if w_comp.(i) = dead then w_comp.(i) <- keep
      done;
      w_tc.(keep) <- w_tc.(keep) + w_tc.(dead);
      w_tc.(dead) <- 0;
      if eager && w_tc.(keep) = ctx.k then early_sink1 := true
    end
  end;
  if !early_sink1 then Sink1
  else begin
    (* Departures: only the endpoints can leave at this position. *)
    let removed = Array.make len false in
    let sink0 = ref false and sink1 = ref false in
    let leave x =
      if ctx.last_pos.(x) = pos then begin
        let ix = find x in
        if ix >= 0 && not removed.(ix) then begin
          removed.(ix) <- true;
          let c = w_comp.(ix) in
          (* Does c still have an explicit member? *)
          let members = ref 0 and last_member = ref (-1) in
          for i = 0 to len - 1 do
            if (not removed.(i)) && w_comp.(i) = c then begin
              incr members;
              last_member := i
            end
          done;
          if !members = 0 then begin
            if w_tc.(c) = ctx.k then sink1 := true
            else if w_tc.(c) > 0 then sink0 := true
          end
          else if !members = 1 && w_tc.(c) = 0 then
            (* Demote the leftover lone non-terminal to implicit. *)
            removed.(!last_member) <- true
        end
        (* An implicit singleton leaving carries no terminal: silent. *)
      end
    in
    leave u;
    if v <> u then leave v;
    if !sink1 then Sink1
    else if !sink0 then Sink0
    else begin
      (* Compact and canonically renumber. *)
      let out_len = ref 0 in
      for i = 0 to len - 1 do
        if not removed.(i) then incr out_len
      done;
      let verts = Array.make !out_len 0 in
      let comp_of = Array.make !out_len 0 in
      let rename = Array.make (nc + 2) (-1) in
      let tc_out = Array.make !out_len 0 in
      let cursor = ref 0 and n_comps = ref 0 in
      for i = 0 to len - 1 do
        if not removed.(i) then begin
          let c = w_comp.(i) in
          if rename.(c) < 0 then begin
            rename.(c) <- !n_comps;
            tc_out.(!n_comps) <- w_tc.(c);
            incr n_comps
          end;
          verts.(!cursor) <- w_verts.(i);
          comp_of.(!cursor) <- rename.(c);
          incr cursor
        end
      done;
      Live { verts; comp_of; tc = Array.sub tc_out 0 !n_comps }
    end
  end

let key_exact st =
  let nv = Array.length st.verts and nt = Array.length st.tc in
  let key = Array.make ((2 * nv) + 1 + nt) (-1) in
  Array.blit st.verts 0 key 0 nv;
  Array.blit st.comp_of 0 key nv nv;
  Array.blit st.tc 0 key ((2 * nv) + 1) nt;
  key

let key_flags st =
  let nv = Array.length st.verts and nt = Array.length st.tc in
  let key = Array.make ((2 * nv) + 1 + nt) (-1) in
  Array.blit st.verts 0 key 0 nv;
  Array.blit st.comp_of 0 key nv nv;
  Array.iteri (fun i t -> key.((2 * nv) + 1 + i) <- (if t > 0 then 1 else 0)) st.tc;
  key

let component_count st = Array.length st.tc
let component_terminals st = Array.copy st.tc

let remaining_degrees ctx ~pos =
  Array.init (Ugraph.n_vertices ctx.g) (fun v -> rem_deg ctx v ~pos)

let component_uncertain_degrees ctx ~pos st =
  let d = Array.make (Array.length st.tc) 0 in
  Array.iteri
    (fun i v -> d.(st.comp_of.(i)) <- d.(st.comp_of.(i)) + rem_deg ctx v ~pos)
    st.verts;
  d

let heuristic_log2 ctx ~rem st ~log2_pn =
  let k = float_of_int ctx.k in
  (* [rem] is the caller-maintained remaining-degree table (see
     {!remaining_degrees}); per-component d sums come from it in O(state
     size). *)
  let d = Array.make (Array.length st.tc) 0 in
  Array.iteri
    (fun i v -> d.(st.comp_of.(i)) <- d.(st.comp_of.(i)) + rem.(v))
    st.verts;
  let best = ref neg_infinity in
  Array.iteri
    (fun c t ->
      if t > 0 then begin
        let dc = max 1 d.(c) in
        let f = Float.max (float_of_int t /. k) (1. /. float_of_int dc) in
        if f > !best then best := f
      end)
    st.tc;
  let factor =
    if !best > neg_infinity then !best
    else 1. /. (2. *. k *. float_of_int (1 + Array.length st.verts))
  in
  log2_pn +. Float.log2 factor

let descend ctx ~eager ~pos st ~bernoulli =
  let m = n_positions ctx in
  let rec go pos st =
    if pos >= m then
      invalid_arg "Fstate.descend: reached the end without sinking"
    else
      let e = edge_at ctx pos in
      let exists = bernoulli e.Ugraph.p in
      match step ctx ~eager ~pos st ~exists with
      | Sink1 -> true
      | Sink0 -> false
      | Live st' -> go (pos + 1) st'
  in
  go pos st

(* Fast descent: complete the possible graph directly and run one
   union-find connectivity check. The node's explicit components are
   anchored to virtual DSU elements [n + comp_id]; implicit singletons
   need no anchor. The terminals to connect are the flagged components
   plus terminals that have not entered the frontier yet. *)
let descend_union ctx ~dsu ~detail ~pos st ~bernoulli =
  let g = ctx.g in
  let n = Ugraph.n_vertices g in
  if Dsu.size dsu < n + Array.length st.tc then
    invalid_arg "Fstate.descend_union: DSU too small";
  Dsu.reset dsu;
  let m = n_positions ctx in
  (* Completion identity for the HT dedup: a full-avalanche 62-bit hash
     of the drawn edge outcomes (Hash64). The per-bool FNV-1a that used
     to live here had the same upward-only bit diffusion flaw as the old
     Mcsampling.mask_hash, so structured completions could collide and
     be merged by the descent dedup table. *)
  let hs = Hash64.Stream.create () in
  let logq = ref 0. in
  let eu = ctx.csr.Kernel.Csr.eu
  and ev = ctx.csr.Kernel.Csr.ev
  and ep = ctx.csr.Kernel.Csr.ep in
  if detail then
    (* HT needs the completion's identity and conditional probability. *)
    for p = pos to m - 1 do
      let pe = ep.(p) in
      let exists = bernoulli pe in
      Hash64.Stream.add_bit hs exists;
      if exists then begin
        if pe < 1. then logq := !logq +. Float.log pe;
        ignore (Dsu.union dsu eu.(p) ev.(p))
      end
      else logq := !logq +. Float.log1p (-.pe)
    done
  else
    for p = pos to m - 1 do
      if bernoulli ep.(p) then ignore (Dsu.union dsu eu.(p) ev.(p))
    done;
  Array.iteri (fun i v -> ignore (Dsu.union dsu v (n + st.comp_of.(i)))) st.verts;
  let anchor = ref (-1) in
  let connected = ref true in
  let require x =
    if !anchor < 0 then anchor := Dsu.find dsu x
    else if Dsu.find dsu x <> !anchor then connected := false
  in
  Array.iteri (fun c t -> if t > 0 then require (n + c)) st.tc;
  Array.iter (fun t -> if ctx.first_pos.(t) >= pos then require t) ctx.terminal_arr;
  (!connected, Hash64.Stream.finish hs, !logq)

(* What [descend_union] returns as the hash when [detail] is false: the
   digest of an empty Hash64 stream (a fixed non-zero constant, not 0).
   [descend_kernel] must return the same value to stay bit-compatible. *)
let empty_digest = Hash64.mask_words [||] ~bits:0

(* Kernel fast path for [descend_union]: same draw order, same float
   operations, same completion hash — but drawing through the flat
   kernel (present-position buffer, packed mask words) and checking
   connectivity with the early-exit union-find instead of unioning
   every present edge into a full-reset [Dsu.t].

   Element layout mirrors [descend_union]: vertices [0 .. n-1], virtual
   anchors [n + comp_id] for the state's explicit components. Anchors
   are unioned before the terminal marks — safe, because an anchor
   union only ever touches roots with [tcnt = 0], so [live] stays
   untouched; the marks must precede [union_drawn], which early-exits
   on the live count. *)
let descend_kernel ctx ~scratch ~detail ~pos st ~bernoulli =
  let n = Ugraph.n_vertices ctx.g in
  let nc = Array.length st.tc in
  let logq = Kernel.draw_sub scratch ctx.csr ~pos ~detail ~bernoulli in
  let hash = if detail then Kernel.mask_hash scratch else empty_digest in
  Kernel.round_begin scratch ~elems:(n + nc);
  Array.iteri
    (fun i v -> Kernel.union scratch v (n + st.comp_of.(i)))
    st.verts;
  Array.iteri (fun c t -> if t > 0 then Kernel.mark scratch (n + c)) st.tc;
  Array.iter
    (fun t -> if ctx.first_pos.(t) >= pos then Kernel.mark scratch t)
    ctx.terminal_arr;
  (Kernel.union_drawn scratch ctx.csr, hash, logq)

module Key_table = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b = a = b

  let hash a =
    (* FNV-1a over every element; Hashtbl.hash would only inspect a
       bounded prefix, which collides badly on wide frontiers. Unlike
       the content hashes above this one only buckets — keys are
       compared by structural equality on collision — so FNV's weak
       diffusion costs at most table balance, never correctness. *)
    let h = ref 0x811C9DC5 in
    Array.iter (fun x -> h := (!h lxor (x + 0x9E3779B9)) * 0x01000193 land max_int) a;
    !h
end)
