(** The sampling-based baselines of Section 3.2.2: naive Monte Carlo
    ("Sampling(MC)") and Horvitz–Thompson ("Sampling(HT)", the
    unequal-probability estimator of Jin et al. used by the paper).

    Both sample [s] possible graphs by flipping every edge independently
    and testing terminal connectivity with a reused union–find —
    [O(s * (|V| + |E|))], the complexity quoted in the paper.

    {2 Parallel execution and determinism}

    Samples are drawn in fixed-size chunks (currently 4096 samples per
    chunk); chunk [i] always draws from the [i]-th {!Prng.split} stream
    of the master seed and partial results are folded in chunk order.
    The [jobs] argument therefore only selects how many domains execute
    the chunks: {b for a fixed [seed] and [samples] the returned
    estimate is bit-identical at every [jobs] value} (including the
    sequential [jobs = 1] fast path, which runs the same chunked code
    on the calling domain). Each domain draws through the flat sampling
    kernel ({!Kernel}): a CSR snapshot of the graph plus one reusable
    per-domain scratch holding the drawn-present buffer, the packed mask
    words, and the early-exit union–find. The kernel consumes the exact
    same Prng stream in the exact same order as the retained
    {!Reference} implementations, so moving the hot loops onto it
    changed throughput, not results.

    {2 Instrumentation}

    Both samplers accept an {!Obs.t} and record under the ["sampling"]
    prefix: counters [samples], [hits], [connectivity_checks] (and, for
    HT, [distinct] plus a [dedup_ratio] gauge), per-chunk spans on the
    [chunk] timer, a [total] timer, and for HT a [merge] timer around
    the ordered table merge. The kernel fast path additionally records a
    [kernel.samples] counter and a [kernel.elapsed] timer (the summed
    monotonic wall-clock of the parallel sampling region; [0.] under a
    fake clock) from which the report layer derives
    [kernel.samples_per_sec] — the throughput figure is computed at
    report time, never stored mid-run. Per-chunk latency, early-exit
    union depth and (for HT) dedup-table occupancy additionally land in
    [hist.chunk_ns], [hist.early_exit_depth] and [hist.dedup_occupancy]
    histograms, and each chunk's [Gc.quick_stat] delta accumulates
    under [gc.*]. They also accept a {!Trace.t} and stream
    one [mc.chunk] / [ht.chunk] span per chunk (recorded into a
    per-task buffer on lane [chunk mod jobs] and merged back in chunk
    order, per the {!Trace} lane contract; HT chunks carry
    [unique]/[drawn] dedup args), an [ht.merge] span around the ordered
    table merge, and a final [estimate] instant with
    [value]/[lower]/[upper]/[samples] args (95% normal CI). Timings are
    measured but results are unchanged: instrumentation never touches
    the sampling streams. *)

type estimate = {
  value : float;          (** estimated network reliability *)
  samples_used : int;     (** samples drawn ([0] for the trivial
                              [k < 2] answer, which draws nothing) *)
  hits : int;             (** samples in which the terminals connect;
                              for HT, counted over distinct samples *)
  distinct : int;
      (** distinct possible graphs among the samples. {b HT only}: MC
          never deduplicates and reports [0] here rather than guess *)
  variance_estimate : float;
      (** plug-in variance: Equation (2) for MC, Equation (8) for HT.
          The HT plug-in can come out negative (its correction term is
          itself an estimate); it is clamped to [0.] here, and each
          clamping is counted under the [sampling.variance_clamped]
          Obs counter (raw value in the [sampling.raw_variance] gauge) *)
  jobs_used : int;
      (** domains the sampler was allowed to use (after the
          [NETREL_FORCE_DOMAINS] override); does not affect results *)
  chunk_samples : int array;
      (** per-chunk sample allocation, fixed by [samples] alone —
          the work units distributed over the domain pool ([[||]] for
          the trivial [k < 2] answer) *)
}

type kernel_mode =
  | Flat  (** scalar draw: one [Prng.bernoulli] per edge per sample —
              the pre-kernel stream, bit-identical to {!Reference} *)
  | Bitsliced
      (** word-parallel draw: 62 worlds per {!Prng.Bitbatch.draw} pass
          through [Kernel.draw_bitsliced] *)
(** Which draw kernel the samplers run on (default {!Flat}). Each mode
    is bit-identical to itself at every [jobs] value, but the modes
    consume the per-chunk streams differently: for the same seed they
    sample {e different} possible graphs, so estimates agree
    statistically (same distribution, checked by the selfcheck oracle
    and calibration sweeps), never bitwise across modes. *)

val kernel_mode_name : kernel_mode -> string
(** ["flat"] / ["bitsliced"] — the [sampling.kernel.mode] Obs text and
    the CLI [--kernel] spelling. *)

val chunk_target : int
(** Samples per chunk (currently 4096) — part of the determinism
    contract: chunk [i] of a budget always covers the same sample
    indices and draws from the [i]-th split stream. The adaptive driver
    sizes its rounds in these units. *)

val chunk_target_for : edges:int -> int
(** The chunk size every sampler actually uses, as a pure function of
    the graph's edge count: {!chunk_target} up to 32768 edges (every
    built-in dataset — their seeded estimates keep the historical
    layout), then shrinking as [32768 * chunk_target / edges] (floored
    at 64) so a chunk's bernoulli-draw budget stays roughly constant
    and a small sample budget on a million-edge graph still splits
    across domains. Part of the determinism contract: depends only on
    [edges], never on [--jobs]. *)

val interval :
  ?z:float -> ?method_:Relstats.interval_method -> estimate -> float * float
(** [(lower, upper)] confidence interval for an estimate, default the
    95% Wilson score interval on [(value, samples_used)] — in contrast
    to the Wald interval implied by [variance_estimate], it keeps a
    nonzero width at [hits ∈ {0, n}] (a 0-hit run has [upper > 0]).
    [value] is clamped into [[0, 1]] first (HT can overshoot under
    sampling noise). The trivial [k < 2] estimate ([samples_used = 0])
    is exact and reports the point interval [(value, value)]. *)

val mask_hash : bool array -> int -> int
(** [mask_hash present m] is the non-negative 62-bit content hash of the
    first [m] mask bits ({!Hash64.mask}) identifying a sampled possible
    graph in the HT dedup tables. Exposed for the collision regression
    tests. *)

val ht_weight : logq:float -> n:int -> float
(** The Horvitz–Thompson weight [q / pi] with [pi = 1 - (1 - q)^n],
    computed stably from [logq = ln q] (so probabilities far below
    float range are handled): [1/n <= ht_weight ~logq ~n <= 1], tending
    to [1/n] as [q -> 0] and equal to [1] at [q = 1]. This is the
    single shared implementation used by {!horvitz_thompson} and by the
    S2BDD descent estimator. *)

val monte_carlo :
  ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
  ?kernel:kernel_mode -> ?csr:Kernel.Csr.t -> Ugraph.t ->
  terminals:int list -> samples:int -> estimate
(** Plain Monte Carlo: [R^ = (1/s) * sum_i I(Gp_i, T)]. [jobs]
    (default 1) sets the domain count; see the determinism contract
    above. [kernel] (default {!Flat}) selects the draw kernel; the
    chosen mode is recorded in the [sampling.kernel.mode] Obs text.
    [csr] supplies a prebuilt {!Kernel.Csr.t} snapshot of [g] (the
    engine's per-graph cache); the Csr is a pure function of the graph,
    so passing one never changes the estimate. MC draws with
    replacement and never deduplicates, so [distinct = 0] (not
    measured). @raise Invalid_argument on invalid terminals,
    [samples <= 0], or [jobs <= 0]. *)

val horvitz_thompson :
  ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
  ?kernel:kernel_mode -> ?csr:Kernel.Csr.t -> Ugraph.t ->
  terminals:int list -> samples:int -> estimate
(** Horvitz–Thompson over the distinct sampled possible graphs:
    [R^ = sum_i I * Pr[Gp_i] / pi_i] with
    [pi_i = 1 - (1 - Pr[Gp_i])^s].

    Sampled graphs are deduplicated by a 62-bit content hash of the
    edge mask ({!mask_hash}, full-avalanche packed-word mixing). A hash
    collision {e merges} the colliding masks: the later mask is treated
    as a duplicate of the earlier one, so its probability and indicator
    are dropped from the sum — a bias of order [2^-62] per sample pair,
    negligible against sampling error but not exactly zero (the hash is
    not a perfect identity). The previous per-bool FNV-1a variant made
    that bias real: its 32-bit prime only carried flipped input bits
    upward, admitting structured collision pairs (see the regression
    test), which is why it was replaced.

    Under chunking, each chunk deduplicates locally and the per-chunk
    tables are then merged in chunk order before the pi-weighted sum,
    keeping the first occurrence of every hash. Chunk order is sample
    order, so the merged table — and hence the estimate — is exactly
    what a sequential pass over all [s] samples would produce, for any
    [jobs]. Connectivity is evaluated once per chunk-distinct mask, so
    a mask sampled in two different chunks has its indicator computed
    twice (same result) but counted once.

    @raise Invalid_argument as for {!monte_carlo}. *)

val monte_carlo_csr :
  ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
  ?kernel:kernel_mode -> Kernel.Csr.t ->
  terminals:int list -> samples:int -> estimate
(** {!monte_carlo} on a bare snapshot — the binary-graph fast path,
    where the Csr came from [Kernel.Csr.of_arrays] and no [Ugraph.t]
    ever existed. Terminals are validated against the snapshot's
    vertex count. For a snapshot built by [Kernel.Csr.of_graph g] the
    result is bit-identical to [monte_carlo g] (same chunk layout,
    same streams). *)

val horvitz_thompson_csr :
  ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
  ?kernel:kernel_mode -> Kernel.Csr.t ->
  terminals:int list -> samples:int -> estimate
(** {!horvitz_thompson} on a bare snapshot; see {!monte_carlo_csr}. *)

(** The pre-kernel sampling paths, retained verbatim as the
    differential oracle for the flat kernels: boxed-edge iteration into
    a [bool array] mask, full-reset union–find connectivity, bool-array
    mask hashing, and the list-accumulating HT merge. Sequential, but
    chunked and split-streamed identically to the kernel path — for a
    fixed seed the estimates are bit-identical to {!monte_carlo} /
    {!horvitz_thompson} at every [jobs] value. Exercised by
    [test/test_kernel.ml], the bench [kernels] section, and the
    [netrel selfcheck] oracle sweep; not instrumented and not meant for
    production use. *)
module Reference : sig
  val monte_carlo :
    ?seed:int -> Ugraph.t -> terminals:int list -> samples:int -> estimate

  val horvitz_thompson :
    ?seed:int -> Ugraph.t -> terminals:int list -> samples:int -> estimate
end

(** Incremental chunked drawing for the sequential-stopping driver
    ({!Adaptive}): the same kernels, chunk streams and ordered
    reductions as the fixed-budget samplers, but resumable — the
    sampler retains the master generator and splits one fresh stream
    per chunk as rounds request more samples, in global chunk order.
    A run is replayable from [(seed, round schedule)]; [jobs] only
    places chunks on domains. The chunk {e boundaries} follow the
    round schedule rather than one balanced partition of the final
    total, so an adaptive run and a fixed-budget run of the same total
    are two different (each internally deterministic) draws.

    Drawing functions raise [Invalid_argument] on non-positive sample
    counts; [*_create] rejects invalid terminals, [jobs <= 0] and the
    trivial [k < 2] case (the caller answers it without sampling).
    [*_estimate] raises until at least one draw happened. *)
module Chunked : sig
  type mc
  type ht

  val mc_create :
    ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
    ?kernel:kernel_mode -> ?csr:Kernel.Csr.t -> Ugraph.t ->
    terminals:int list -> mc

  val mc_draw : mc -> samples:int -> unit
  (** Draw one round of [samples] more samples (split into
      {!chunk_target}-sized chunks, dispatched over the domain pool,
      folded in chunk order). *)

  val mc_samples : mc -> int
  val mc_hits : mc -> int

  val mc_estimate : mc -> estimate
  (** The Monte-Carlo estimate over everything drawn so far;
      [chunk_samples] records the actual chunk schedule. *)

  val ht_create :
    ?obs:Obs.t -> ?trace:Trace.t -> ?seed:int -> ?jobs:int ->
    ?kernel:kernel_mode -> ?csr:Kernel.Csr.t -> Ugraph.t ->
    terminals:int list -> ht

  val ht_draw : ht -> samples:int -> unit

  val ht_samples : ht -> int

  val ht_estimate : ht -> estimate
  (** The Horvitz–Thompson estimate over everything drawn so far. HT
      weights depend on the total sample count, so each call replays
      the ordered merge of all per-chunk dedup tables and the
      pi-weighted fold at the current total — identical to what the
      fixed-budget sampler computes for that total and schedule. *)
end
