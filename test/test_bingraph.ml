(* Round-trip and parser tests for the binary graph container
   (lib/bingraph). The container's contract is bit-exactness: text ->
   binary -> text reproduces the serialized bytes, the header digest
   equals the engine's cache key, and sampling straight from the packed
   arrays is bit-identical to the Ugraph path. The SNAP parser tests pin
   the streaming loader's edge cases (comments, tabs, CR endings,
   missing probability column, id compaction) and its error messages. *)

open Testutil
module B = Bingraph

let arb_graph_ts = Test_bddbase.arb_graph_ts

let text g =
  let b = Buffer.create 256 in
  Ugraph.to_buffer b g;
  Buffer.contents b

let invalid_msg f =
  match f () with
  | exception Invalid_argument msg -> msg
  | _ -> Alcotest.fail "expected Invalid_argument"

let contains ~sub s =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let check_contains what ~sub msg =
  if not (contains ~sub msg) then
    Alcotest.failf "%s: message %S does not contain %S" what msg sub

(* ---- byte codec round trips ---- *)

let prop_roundtrip_bit_identical =
  QCheck.Test.make ~name:"bingraph: text -> binary -> text bit-identical"
    ~count:300
    (arb_graph_ts ~max_n:12 ~max_m:20 ~max_k:4)
    (fun (n, es, _ts) ->
      let g = graph ~n es in
      let bg = B.of_graph g in
      let bg' = B.of_bytes (B.to_bytes bg) in
      let g' = B.to_graph bg' in
      text g = text g'
      && B.digest bg = B.digest bg'
      && B.digest bg = B.Digest.of_graph g
      && B.digest bg = Engine.digest g)

let prop_csr_direct_estimates =
  QCheck.Test.make
    ~name:"bingraph: monte_carlo_csr from packed arrays = graph path"
    ~count:50
    (arb_graph_ts ~max_n:8 ~max_m:12 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let bg = B.of_graph g in
      let eu, ev, ep = B.to_arrays bg in
      let csr = Kernel.Csr.of_arrays ~n:(B.n_vertices bg) ~eu ~ev ~ep in
      List.for_all
        (fun jobs ->
          Mcsampling.monte_carlo ~seed:7 ~jobs g ~terminals:ts ~samples:300
          = Mcsampling.monte_carlo_csr ~seed:7 ~jobs csr ~terminals:ts
              ~samples:300)
        [ 1; 2; 8 ]
      && Mcsampling.monte_carlo ~seed:7 ~jobs:2 ~kernel:Mcsampling.Bitsliced g
           ~terminals:ts ~samples:300
         = Mcsampling.monte_carlo_csr ~seed:7 ~jobs:2
             ~kernel:Mcsampling.Bitsliced csr ~terminals:ts ~samples:300)

let with_tmp f =
  let tmp = Filename.temp_file "test_bingraph_" ".nrb" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
  @@ fun () -> f tmp

let t_mmap_load () =
  let g = fig1 () in
  let bg = B.of_graph g in
  with_tmp @@ fun tmp ->
  B.to_file tmp bg;
  Alcotest.(check bool) "is_binary_file" true (B.is_binary_file tmp);
  let m1 = B.load tmp and m2 = B.of_file tmp in
  B.validate m1;
  Alcotest.(check int) "digest mmap" (B.digest bg) (B.digest m1);
  Alcotest.(check int) "digest of_file" (B.digest bg) (B.digest m2);
  Alcotest.(check int) "n" (B.n_vertices bg) (B.n_vertices m1);
  Alcotest.(check int) "m" (B.n_edges bg) (B.n_edges m1);
  for i = 0 to B.n_edges bg - 1 do
    Alcotest.(check bool) "edge" true (B.edge bg i = B.edge m1 i)
  done;
  (* the header digest is trustworthy: it equals a recomputation over
     the mmap-loaded graph (the property the engine relies on when it
     skips its O(m) re-hash) *)
  Alcotest.(check int) "digest recompute" (Engine.digest (B.to_graph m1))
    (B.digest m1)

let t_empty_graph () =
  let g = Ugraph.create ~n:3 [] in
  let bg = B.of_graph g in
  with_tmp @@ fun tmp ->
  B.to_file tmp bg;
  let m = B.load tmp in
  B.validate m;
  Alcotest.(check int) "n" 3 (B.n_vertices m);
  Alcotest.(check int) "m" 0 (B.n_edges m);
  Alcotest.(check bool) "text" true (text g = text (B.to_graph m))

let t_corrupt_bytes () =
  let b = B.to_bytes (B.of_graph (fig1 ())) in
  check_contains "truncated" ~sub:"truncated"
    (invalid_msg (fun () -> B.of_bytes (Bytes.sub b 0 (Bytes.length b - 8))));
  let bad_magic = Bytes.copy b in
  Bytes.set bad_magic 0 'X';
  check_contains "magic" ~sub:"bad magic"
    (invalid_msg (fun () -> B.of_bytes bad_magic));
  let bad_tag = Bytes.copy b in
  Bytes.set bad_tag 32 '\xFF';
  check_contains "order tag" ~sub:"byte-order tag"
    (invalid_msg (fun () -> B.of_bytes bad_tag));
  check_contains "short header" ~sub:"truncated header"
    (invalid_msg (fun () -> B.of_bytes (Bytes.sub b 0 10)))

let t_validate_rejects () =
  (* hand-corrupt a probability in the packed bytes: the header still
     parses, [validate] must catch the payload *)
  let b = B.to_bytes (B.of_graph (fig1 ())) in
  let off_ep = 40 + (8 * 6) in
  Bytes.set_int64_le b off_ep (Int64.bits_of_float 1.5);
  let bg = B.of_bytes b in
  check_contains "probability" ~sub:"outside [0,1]"
    (invalid_msg (fun () -> B.validate bg))

(* ---- SNAP / KONECT parser ---- *)

let t_snap_basic () =
  let input = "# SNAP comment\n% KONECT header\n10 20 0.25\n20\t30\r\n10 30\n" in
  let bg = B.Snap.of_string ~default_prob:0.75 input in
  Alcotest.(check int) "n" 3 (B.n_vertices bg);
  Alcotest.(check int) "m" 3 (B.n_edges bg);
  (* ids compacted in first-appearance order: 10 -> 0, 20 -> 1, 30 -> 2 *)
  Alcotest.(check bool) "edge0" true
    (B.edge bg 0 = { Ugraph.u = 0; v = 1; p = 0.25 });
  Alcotest.(check bool) "edge1 (tab+CR, default prob)" true
    (B.edge bg 1 = { Ugraph.u = 1; v = 2; p = 0.75 });
  Alcotest.(check bool) "edge2 (default prob)" true
    (B.edge bg 2 = { Ugraph.u = 0; v = 2; p = 0.75 })

let t_snap_extra_columns () =
  (* KONECT rows carry weight + timestamp columns after the probability;
     they are ignored *)
  let bg = B.Snap.of_string "1 2 0.5 1234567890\n2 3 0.25 42 extra\n" in
  Alcotest.(check int) "m" 2 (B.n_edges bg);
  Alcotest.(check bool) "edge1" true
    (B.edge bg 1 = { Ugraph.u = 1; v = 2; p = 0.25 })

let t_snap_missing_final_newline () =
  let bg = B.Snap.of_string "1 2 0.5\n3 4" in
  Alcotest.(check int) "m" 2 (B.n_edges bg);
  Alcotest.(check bool) "edge1" true
    (B.edge bg 1 = { Ugraph.u = 2; v = 3; p = 0.5 })

let t_snap_of_file_matches_of_string () =
  let input = "# c\n5 6 0.125\n6 7\n" in
  with_tmp @@ fun tmp ->
  let oc = open_out_bin tmp in
  output_string oc input;
  close_out oc;
  Alcotest.(check int) "digest"
    (B.digest (B.Snap.of_string input))
    (B.digest (B.Snap.of_file tmp))

let t_snap_errors () =
  let msg input = invalid_msg (fun () -> B.Snap.of_string input) in
  check_contains "one field" ~sub:"line 1: expected `u v [p]`, got one field"
    (msg "5\n");
  check_contains "bad id" ~sub:"line 2: unreadable vertex id \"a\""
    (msg "# c\na b\n");
  check_contains "negative id" ~sub:"unreadable vertex id \"-1\"" (msg "-1 2\n");
  check_contains "bad prob" ~sub:"line 1: unreadable probability \"zz\""
    (msg "1 2 zz\n");
  check_contains "prob range" ~sub:"probability 1.5 outside [0,1]"
    (msg "1 2 1.5\n");
  check_contains "no edges" ~sub:"no edges in input" (msg "# only comments\n");
  check_contains "bad default" ~sub:"default probability 2 outside [0,1]"
    (invalid_msg (fun () -> B.Snap.of_string ~default_prob:2.0 "1 2\n"))

let suite =
  ( "bingraph",
    [
      Alcotest.test_case "mmap load = in-memory load" `Quick t_mmap_load;
      Alcotest.test_case "empty graph round trip" `Quick t_empty_graph;
      Alcotest.test_case "corrupt bytes rejected" `Quick t_corrupt_bytes;
      Alcotest.test_case "validate rejects bad payload" `Quick
        t_validate_rejects;
      Alcotest.test_case "snap: comments/tabs/CR/default prob" `Quick
        t_snap_basic;
      Alcotest.test_case "snap: extra KONECT columns ignored" `Quick
        t_snap_extra_columns;
      Alcotest.test_case "snap: missing final newline" `Quick
        t_snap_missing_final_newline;
      Alcotest.test_case "snap: of_file = of_string" `Quick
        t_snap_of_file_matches_of_string;
      Alcotest.test_case "snap: bad lines raise with line numbers" `Quick
        t_snap_errors;
    ]
    @ qtests [ prop_roundtrip_bit_identical; prop_csr_direct_estimates ] )
