(* Binary uncertain-graph container: packed int32/float64 edge arrays
   behind a fixed little-endian header, mmap-able in O(1). See the .mli
   for the on-disk layout. *)

type int32_arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type float64_arr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  m : int;
  eu : int32_arr;
  ev : int32_arr;
  ep : float64_arr;
  digest : int;
}

let magic = "NRBG0001"
let header_bytes = 40
let order_tag = 0x0123456789ABCDEFL
let mask62 = 0x3FFF_FFFF_FFFF_FFFFL

let n_vertices t = t.n
let n_edges t = t.m
let digest t = t.digest

let edge t i =
  if i < 0 || i >= t.m then
    invalid_arg (Printf.sprintf "Bingraph.edge: index %d outside [0,%d)" i t.m);
  { Ugraph.u = Int32.to_int t.eu.{i}; v = Int32.to_int t.ev.{i}; p = t.ep.{i} }

module Digest = struct
  (* Must stay bit-compatible with the engine cache key: chained
     splitmix64 over vertex count then exact (u, v, p) bit patterns in
     edge order ([Engine.digest] delegates here). *)
  let fold acc w = Hash64.mix64 (Int64.add (Int64.mul acc 0x9E3779B97F4A7C15L) w)

  let of_graph g =
    let acc = ref (Hash64.mix64 (Int64.of_int (Ugraph.n_vertices g))) in
    Ugraph.iter_edges
      (fun _ (e : Ugraph.edge) ->
        acc := fold !acc (Int64.of_int e.Ugraph.u);
        acc := fold !acc (Int64.of_int e.Ugraph.v);
        acc := fold !acc (Int64.bits_of_float e.Ugraph.p))
      g;
    Int64.to_int (Int64.logand !acc mask62)

  let of_packed ~n ~m (eu : int32_arr) (ev : int32_arr) (ep : float64_arr) =
    let acc = ref (Hash64.mix64 (Int64.of_int n)) in
    for i = 0 to m - 1 do
      acc := fold !acc (Int64.of_int32 eu.{i});
      acc := fold !acc (Int64.of_int32 ev.{i});
      acc := fold !acc (Int64.bits_of_float ep.{i})
    done;
    Int64.to_int (Int64.logand !acc mask62)
end

let alloc_int32 m = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout m
let alloc_float64 m = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout m

let int32_max = 0x7FFF_FFFF

let of_graph g =
  let n = Ugraph.n_vertices g and m = Ugraph.n_edges g in
  if n > int32_max then
    invalid_arg (Printf.sprintf "Bingraph.of_graph: %d vertices exceed int32 range" n);
  let eu = alloc_int32 m and ev = alloc_int32 m and ep = alloc_float64 m in
  Ugraph.iter_edges
    (fun i (e : Ugraph.edge) ->
      eu.{i} <- Int32.of_int e.Ugraph.u;
      ev.{i} <- Int32.of_int e.Ugraph.v;
      ep.{i} <- e.Ugraph.p)
    g;
  { n; m; eu; ev; ep; digest = Digest.of_packed ~n ~m eu ev ep }

let to_graph t =
  Ugraph.create ~n:t.n (List.init t.m (edge t))

let to_arrays t =
  let eu = Array.init t.m (fun i -> Int32.to_int t.eu.{i}) in
  let ev = Array.init t.m (fun i -> Int32.to_int t.ev.{i}) in
  let ep = Array.init t.m (fun i -> t.ep.{i}) in
  (eu, ev, ep)

let validate t =
  for i = 0 to t.m - 1 do
    let u = Int32.to_int t.eu.{i} and v = Int32.to_int t.ev.{i} and p = t.ep.{i} in
    if u < 0 || u >= t.n || v < 0 || v >= t.n then
      invalid_arg
        (Printf.sprintf "Bingraph.validate: edge %d endpoints (%d,%d) outside [0,%d)"
           i u v t.n);
    if not (p >= 0. && p <= 1.) then
      invalid_arg
        (Printf.sprintf "Bingraph.validate: edge %d probability %g outside [0,1]" i p)
  done

(* --- byte codec ------------------------------------------------------ *)

let file_bytes m = header_bytes + (16 * m)

let write_header b ~n ~m ~digest =
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int64_le b 8 (Int64.of_int n);
  Bytes.set_int64_le b 16 (Int64.of_int m);
  Bytes.set_int64_le b 24 (Int64.of_int digest);
  Bytes.set_int64_le b 32 order_tag

let check_header ~what b ~total_len =
  if Bytes.length b < header_bytes then
    invalid_arg (Printf.sprintf "Bingraph.%s: truncated header (%d bytes)" what
                   (Bytes.length b));
  if Bytes.sub_string b 0 8 <> magic then
    invalid_arg (Printf.sprintf "Bingraph.%s: bad magic (not a %s file)" what magic);
  let n = Int64.to_int (Bytes.get_int64_le b 8) in
  let m = Int64.to_int (Bytes.get_int64_le b 16) in
  let digest = Int64.to_int (Bytes.get_int64_le b 24) in
  if Bytes.get_int64_le b 32 <> order_tag then
    invalid_arg
      (Printf.sprintf "Bingraph.%s: byte-order tag mismatch (foreign-endian file?)"
         what);
  if n < 0 || m < 0 then
    invalid_arg (Printf.sprintf "Bingraph.%s: negative counts n=%d m=%d" what n m);
  if total_len <> file_bytes m then
    invalid_arg
      (Printf.sprintf
         "Bingraph.%s: size mismatch: header declares %d edges (%d bytes) but \
          input has %d bytes (truncated?)"
         what m (file_bytes m) total_len);
  (n, m, digest)

let to_bytes t =
  let b = Bytes.create (file_bytes t.m) in
  write_header b ~n:t.n ~m:t.m ~digest:t.digest;
  let off_eu = header_bytes and off_ev = header_bytes + (4 * t.m) in
  let off_ep = header_bytes + (8 * t.m) in
  for i = 0 to t.m - 1 do
    Bytes.set_int32_le b (off_eu + (4 * i)) t.eu.{i};
    Bytes.set_int32_le b (off_ev + (4 * i)) t.ev.{i};
    Bytes.set_int64_le b (off_ep + (8 * i)) (Int64.bits_of_float t.ep.{i})
  done;
  b

let of_bytes b =
  let n, m, digest = check_header ~what:"of_bytes" b ~total_len:(Bytes.length b) in
  let eu = alloc_int32 m and ev = alloc_int32 m and ep = alloc_float64 m in
  let off_eu = header_bytes and off_ev = header_bytes + (4 * m) in
  let off_ep = header_bytes + (8 * m) in
  for i = 0 to m - 1 do
    eu.{i} <- Bytes.get_int32_le b (off_eu + (4 * i));
    ev.{i} <- Bytes.get_int32_le b (off_ev + (4 * i));
    ep.{i} <- Int64.float_of_bits (Bytes.get_int64_le b (off_ep + (8 * i)))
  done;
  { n; m; eu; ev; ep; digest }

let to_file path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_bytes oc (to_bytes t)

let of_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  of_bytes b

(* --- mmap load ------------------------------------------------------- *)

let really_read fd b len =
  let got = ref 0 in
  (try
     while !got < len do
       let k = Unix.read fd b !got (len - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  !got

let map1 (type a b) fd ~pos (kind : (a, b) Bigarray.kind) m :
    (a, b, Bigarray.c_layout) Bigarray.Array1.t =
  if m = 0 then Bigarray.Array1.create kind Bigarray.c_layout 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false [| m |])

let load path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let hdr = Bytes.create header_bytes in
  let got = really_read fd hdr header_bytes in
  if got < header_bytes then
    invalid_arg (Printf.sprintf "Bingraph.load: %s: truncated header (%d bytes)"
                   path got);
  let total_len = (Unix.fstat fd).Unix.st_size in
  let n, m, digest = check_header ~what:"load" hdr ~total_len in
  let eu = map1 fd ~pos:header_bytes Bigarray.int32 m in
  let ev = map1 fd ~pos:(header_bytes + (4 * m)) Bigarray.int32 m in
  let ep = map1 fd ~pos:(header_bytes + (8 * m)) Bigarray.float64 m in
  { n; m; eu; ev; ep; digest }

let is_binary_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let b = Bytes.create 8 in
    (match really_input ic b 0 8 with
     | () -> Bytes.to_string b = magic
     | exception End_of_file -> false)

(* --- streaming SNAP / KONECT parser ---------------------------------- *)

module Snap = struct
  (* Growable packed edge store: plain arrays doubled on demand, so the
     parse allocates O(log m) arrays total instead of per-line lists. *)
  type store = {
    mutable eu : int array;
    mutable ev : int array;
    mutable ep : float array;
    mutable len : int;
  }

  let store () = { eu = Array.make 1024 0; ev = Array.make 1024 0;
                   ep = Array.make 1024 0.; len = 0 }

  let push s u v p =
    if s.len = Array.length s.eu then begin
      let grow a zero =
        let b = Array.make (2 * Array.length a) zero in
        Array.blit a 0 b 0 s.len; b
      in
      s.eu <- grow s.eu 0; s.ev <- grow s.ev 0; s.ep <- grow s.ep 0.
    end;
    s.eu.(s.len) <- u; s.ev.(s.len) <- v; s.ep.(s.len) <- p;
    s.len <- s.len + 1

  let bad ~line fmt =
    Printf.ksprintf
      (fun msg -> invalid_arg (Printf.sprintf "Bingraph.Snap: line %d: %s" line msg))
      fmt

  let is_ws c = c = ' ' || c = '\t' || c = '\r'

  (* Parse one whitespace-separated token from the reusable line buffer
     [buf] starting at [!pos]; returns the [(start, stop)] span or None
     at end of line. *)
  let next_token buf pos =
    let len = Buffer.length buf in
    while !pos < len && is_ws (Buffer.nth buf !pos) do incr pos done;
    if !pos >= len then None
    else begin
      let start = !pos in
      while !pos < len && not (is_ws (Buffer.nth buf !pos)) do incr pos done;
      Some (start, !pos)
    end

  let token_int buf (start, stop) ~line ~what =
    let v = ref 0 and ok = ref (stop > start) in
    for i = start to stop - 1 do
      match Buffer.nth buf i with
      | '0' .. '9' as c -> v := (!v * 10) + (Char.code c - Char.code '0')
      | _ -> ok := false
    done;
    if not !ok then
      bad ~line "unreadable %s %S" what (Buffer.sub buf start (stop - start));
    !v

  let token_prob buf (start, stop) ~line =
    let s = Buffer.sub buf start (stop - start) in
    match float_of_string_opt s with
    | None -> bad ~line "unreadable probability %S" s
    | Some p ->
      if not (p >= 0. && p <= 1.) then bad ~line "probability %g outside [0,1]" p;
      p

  let parse ?(default_prob = 0.5) ~next_line () =
    if not (default_prob >= 0. && default_prob <= 1.) then
      invalid_arg
        (Printf.sprintf "Bingraph.Snap: default probability %g outside [0,1]"
           default_prob);
    let buf = Buffer.create 256 in
    let ids : (int, int) Hashtbl.t = Hashtbl.create 4096 in
    let n = ref 0 in
    let compact id =
      match Hashtbl.find_opt ids id with
      | Some c -> c
      | None ->
        let c = !n in
        Hashtbl.add ids id c;
        incr n;
        c
    in
    let s = store () in
    let line = ref 0 in
    let rec go () =
      if next_line buf then begin
        incr line;
        let pos = ref 0 in
        (match next_token buf pos with
         | None -> ()                        (* blank line *)
         | Some (start, _) when
             (match Buffer.nth buf start with '#' | '%' -> true | _ -> false) ->
           ()                                (* comment / KONECT header *)
         | Some t1 ->
           let u = token_int buf t1 ~line:!line ~what:"vertex id" in
           (match next_token buf pos with
            | None -> bad ~line:!line "expected `u v [p]`, got one field"
            | Some t2 ->
              let v = token_int buf t2 ~line:!line ~what:"vertex id" in
              let p =
                match next_token buf pos with
                | None -> default_prob
                | Some t3 -> token_prob buf t3 ~line:!line
                (* further columns (KONECT timestamps) are ignored *)
              in
              (* bind [compact u] first: argument positions evaluate
                 right-to-left, which would flip first-appearance order *)
              let cu = compact u in
              let cv = compact v in
              push s cu cv p));
        go ()
      end
    in
    go ();
    if s.len = 0 then invalid_arg "Bingraph.Snap: no edges in input";
    let m = s.len in
    let eu = alloc_int32 m and ev = alloc_int32 m and ep = alloc_float64 m in
    for i = 0 to m - 1 do
      eu.{i} <- Int32.of_int s.eu.(i);
      ev.{i} <- Int32.of_int s.ev.(i);
      ep.{i} <- s.ep.(i)
    done;
    let n = !n in
    { n; m; eu; ev; ep; digest = Digest.of_packed ~n ~m eu ev ep }

  let channel_lines ic buf =
    Buffer.clear buf;
    let rec go got =
      match input_char ic with
      | '\n' -> true
      | c -> Buffer.add_char buf c; go true
      | exception End_of_file -> got
    in
    go false

  let of_channel ?default_prob ic =
    parse ?default_prob ~next_line:(fun buf -> channel_lines ic buf) ()

  let of_file ?default_prob path =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    of_channel ?default_prob ic

  let of_string ?default_prob str =
    let pos = ref 0 in
    let next_line buf =
      Buffer.clear buf;
      if !pos >= String.length str then false
      else begin
        let stop =
          match String.index_from_opt str !pos '\n' with
          | Some i -> i
          | None -> String.length str
        in
        Buffer.add_substring buf str !pos (stop - !pos);
        pos := stop + 1;
        true
      end
    in
    parse ?default_prob ~next_line ()
end
