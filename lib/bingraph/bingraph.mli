(** Compact binary container for uncertain graphs.

    The on-disk layout is a fixed 40-byte header followed by three
    dense arrays in canonical edge order, all little-endian:

    {v
    offset   size  field
    0        8     magic "NRBG0001" (format + version)
    8        8     int64  n  (vertex count)
    16       8     int64  m  (edge count)
    24       8     int64  62-bit content digest (= Engine.digest)
    32       8     int64  byte-order tag 0x0123456789ABCDEF
    40       4m    int32  eu.(i)  (first endpoint of edge i)
    40+4m    4m    int32  ev.(i)  (second endpoint of edge i)
    40+8m    8m    float64 ep.(i) (edge probability, exact bits)
    v}

    Probabilities are stored as raw IEEE-754 bit patterns, so a
    text → binary → text round trip is bit-identical (the text writer
    already prints [%.17g]). The header digest is the same chained
    splitmix64 fold [lib/engine] uses as its cache key, so a
    binary-loaded graph can skip the O(m) re-hash.

    [load] maps the three arrays with [Unix.map_file]: opening a
    million-edge graph is O(1) page-table work, not O(m) parsing.
    Every structural error raises [Invalid_argument] with a precise
    message (the CLI turns these into exit 2). *)

type t

val n_vertices : t -> int
val n_edges : t -> int

val digest : t -> int
(** The 62-bit content digest carried in (or computed for) the header.
    Equal to {!Digest.of_graph} of the corresponding [Ugraph.t]. *)

val edge : t -> int -> Ugraph.edge
(** Edge [i] in canonical order. Bounds-checked. *)

val of_graph : Ugraph.t -> t
(** Copy a graph into the packed representation (computes the digest).
    Raises [Invalid_argument] if a vertex id exceeds int32 range. *)

val to_graph : t -> Ugraph.t
(** Materialize the adjacency-list representation (validates edges). *)

val to_arrays : t -> int array * int array * float array
(** [(eu, ev, ep)] as plain OCaml arrays in canonical edge order — the
    direct feed for [Kernel.Csr.of_arrays], no [Ugraph.t] in between. *)

val validate : t -> unit
(** Range-check every edge (endpoints in [[0,n)], probabilities in
    [[0,1]], not NaN). [load] trusts the mmap'd bytes until this is
    called; the CLI calls it on every binary open. *)

val to_bytes : t -> bytes
(** Serialize to the on-disk layout (header + arrays). *)

val of_bytes : bytes -> t
(** Parse the on-disk layout from memory (copies into fresh arrays).
    Shares all header/size checks with {!load}. *)

val to_file : string -> t -> unit
val of_file : string -> t
(** Read the whole file into memory ({!of_bytes}); the differential
    twin of {!load} for tests. *)

val load : string -> t
(** Open via [Unix.map_file]: header read + three O(1) mappings. The
    arrays are shared with the page cache — treat them as read-only. *)

val is_binary_file : string -> bool
(** Sniff the 8-byte magic; false for short/unreadable/text files. *)

module Digest : sig
  val of_graph : Ugraph.t -> int
  (** Chained [Hash64.mix64] over vertex count then exact (u, v, p)
      bit patterns in edge order, masked to 62 bits — the canonical
      graph content digest ([Engine.digest] delegates here). *)
end

module Snap : sig
  (** Streaming one-pass parser for SNAP / KONECT-style edge lists:
      [#]/[%] comment lines, space/tab separated, optional trailing CR,
      arbitrary non-negative vertex ids compacted in first-appearance
      order, an optional third probability column falling back to
      [default_prob] (extra trailing columns — KONECT timestamps — are
      ignored). No per-line string splitting: one reusable line buffer,
      tokens parsed in place. Bad lines raise [Invalid_argument] with
      the 1-based line number. *)

  val of_channel : ?default_prob:float -> in_channel -> t
  val of_file : ?default_prob:float -> string -> t
  val of_string : ?default_prob:float -> string -> t
end
