open Testutil

let t_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Prng.bits64 a) (Prng.bits64 b)
  done

let t_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 0 to 63 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check int) "different seeds, different streams" 0 !same

let t_copy () =
  let a = rng () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copies agree" (Prng.bits64 a) (Prng.bits64 b)

let t_split_independent () =
  let a = rng () in
  let b = Prng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let differs = ref false in
  for _ = 0 to 15 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "split differs from parent" true !differs

let t_float_range () =
  let g = rng () in
  for _ = 0 to 9999 do
    let x = Prng.float g in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %.17g" x
  done

let t_float_mean () =
  let g = rng () in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f close to 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

let t_int_bounds () =
  let g = rng () in
  for bound = 1 to 20 do
    for _ = 0 to 499 do
      let x = Prng.int g bound in
      if x < 0 || x >= bound then Alcotest.failf "int %d out of [0,%d)" x bound
    done
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (Prng.int g 0))

let t_int_uniformity () =
  let g = rng () in
  let bound = 10 and n = 100_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to n do
    let i = Prng.int g bound in
    counts.(i) <- counts.(i) + 1
  done;
  (* Chi-squared with 9 dof: 99.99% quantile ~ 33.7. *)
  let expected = float_of_int n /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.2f < 33.7" chi2) true (chi2 < 33.7)

let t_bernoulli () =
  let g = rng () in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f close to 0.3" rate)
    true
    (Float.abs (rate -. 0.3) < 0.01);
  Alcotest.(check bool) "p=0 never" false (Prng.bernoulli g 0.);
  Alcotest.(check bool) "p=1 always" true (Prng.bernoulli g 1.)

let t_shuffle_permutation () =
  let g = rng () in
  let arr = Array.init 100 (fun i -> i) in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 (fun i -> i)) sorted

let t_weighted_index () =
  let g = rng () in
  let ws = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Prng.weighted_index g ws in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  let r0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "weight-1 rate %.3f ~ 0.25" r0) true
    (Float.abs (r0 -. 0.25) < 0.015);
  Alcotest.check_raises "all zero raises"
    (Invalid_argument "Prng.weighted_index: zero total weight") (fun () ->
      ignore (Prng.weighted_index g [| 0.; 0. |]))

let t_alias () =
  let g = rng () in
  let ws = [| 0.1; 0.2; 0.; 0.7 |] in
  let table = Prng.Alias.build ws in
  Alcotest.(check int) "size" 4 (Prng.Alias.size table);
  let counts = Array.make 4 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Prng.Alias.sample g table in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(2);
  Array.iteri
    (fun i w ->
      if w > 0. then
        let rate = float_of_int counts.(i) /. float_of_int n in
        Alcotest.(check bool)
          (Printf.sprintf "alias rate[%d] %.4f ~ %.1f" i rate w)
          true
          (Float.abs (rate -. w) < 0.01))
    ws

let prop_int_in_range =
  QCheck.Test.make ~name:"prng int stays in range" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let prop_uniform_in_range =
  QCheck.Test.make ~name:"prng uniform stays in range" ~count:200
    QCheck.(pair small_int (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (seed, (a, b)) ->
      QCheck.assume (a < b);
      let g = Prng.create seed in
      let x = Prng.uniform g a b in
      x >= a && x < b)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick t_determinism;
      Alcotest.test_case "seed sensitivity" `Quick t_seed_sensitivity;
      Alcotest.test_case "copy" `Quick t_copy;
      Alcotest.test_case "split independence" `Quick t_split_independent;
      Alcotest.test_case "float range" `Quick t_float_range;
      Alcotest.test_case "float mean" `Quick t_float_mean;
      Alcotest.test_case "int bounds" `Quick t_int_bounds;
      Alcotest.test_case "int uniformity (chi2)" `Quick t_int_uniformity;
      Alcotest.test_case "bernoulli" `Quick t_bernoulli;
      Alcotest.test_case "shuffle is a permutation" `Quick t_shuffle_permutation;
      Alcotest.test_case "weighted_index" `Quick t_weighted_index;
      Alcotest.test_case "alias table" `Quick t_alias;
    ]
    @ qtests [ prop_int_in_range; prop_uniform_in_range ] )
