The benchdiff regression gate: compare two BENCH_*.json documents with
noise-aware per-metric thresholds. Synthetic fixtures so every number
(and hence the output) is pinned byte-for-byte.

A baseline with two repeats of kernel-mc (median 0.105 s, throughput
97.5k samples/s) plus one kernel-ht run:

  $ cat > OLD.json <<'EOF'
  > {"section":"kernels","schema":2,"runs":[
  >  {"run":{"method":"kernel-mc","graph":"Karate","seconds":0.10},
  >   "sampling":{"kernel":{"samples_per_sec":100000.0},
  >               "hist":{"chunk_ns":{"p50":2000000,"p99":4000000}}},
  >   "gc":{"minor_words":5000000,"top_heap_words":2000000}},
  >  {"run":{"method":"kernel-mc","graph":"Karate","seconds":0.11},
  >   "sampling":{"kernel":{"samples_per_sec":95000.0},
  >               "hist":{"chunk_ns":{"p50":2100000,"p99":4100000}}},
  >   "gc":{"minor_words":5000000,"top_heap_words":2000000}},
  >  {"run":{"method":"kernel-ht","graph":"Karate","seconds":0.20},
  >   "sampling":{"kernel":{"samples_per_sec":50000.0}},
  >   "gc":{"minor_words":9000000,"top_heap_words":3000000}}]}
  > EOF

A healthy candidate: every metric within the gate (25% of the old
median, 6 MADs of the baseline repeats, or the absolute floor,
whichever is widest). Exit 0.

  $ cat > NEW_OK.json <<'EOF'
  > {"section":"kernels","schema":2,"runs":[
  >  {"run":{"method":"kernel-mc","graph":"Karate","seconds":0.105},
  >   "sampling":{"kernel":{"samples_per_sec":98000.0},
  >               "hist":{"chunk_ns":{"p50":2050000,"p99":4050000}}},
  >   "gc":{"minor_words":5100000,"top_heap_words":2000000}},
  >  {"run":{"method":"kernel-ht","graph":"Karate","seconds":0.21},
  >   "sampling":{"kernel":{"samples_per_sec":49000.0}},
  >   "gc":{"minor_words":9100000,"top_heap_words":3000000}}]}
  > EOF

  $ netrel benchdiff OLD.json NEW_OK.json
  group                        metric                                          old            new    tolerance       status
  kernel-mc/Karate             run.seconds                                   0.105          0.105         0.03           ok
  kernel-mc/Karate             sampling.kernel.samples_per_sec               97500          98000        24375           ok
  kernel-mc/Karate             sampling.hist.chunk_ns.p50                 2.05e+06       2.05e+06        1e+06           ok
  kernel-mc/Karate             sampling.hist.chunk_ns.p99                 4.05e+06       4.05e+06   1.0125e+06           ok
  kernel-mc/Karate             gc.minor_words                                5e+06        5.1e+06     1.25e+06           ok
  kernel-mc/Karate             gc.top_heap_words                             2e+06          2e+06        1e+06           ok
  kernel-ht/Karate             run.seconds                                     0.2           0.21         0.05           ok
  kernel-ht/Karate             sampling.kernel.samples_per_sec               50000          49000        12500           ok
  kernel-ht/Karate             gc.minor_words                                9e+06        9.1e+06     2.25e+06           ok
  kernel-ht/Karate             gc.top_heap_words                             3e+06          3e+06        1e+06           ok
  benchdiff: 10 compared, 0 regression(s), 0 improvement(s)

An injected 2x slowdown on kernel-mc (wall clock doubled, throughput
halved, chunk latency up): the gate trips on the timing metrics and
the exit code is 1.

  $ cat > NEW_SLOW.json <<'EOF'
  > {"section":"kernels","schema":2,"runs":[
  >  {"run":{"method":"kernel-mc","graph":"Karate","seconds":0.22},
  >   "sampling":{"kernel":{"samples_per_sec":45000.0},
  >               "hist":{"chunk_ns":{"p50":4500000,"p99":9000000}}},
  >   "gc":{"minor_words":5100000,"top_heap_words":2000000}},
  >  {"run":{"method":"kernel-ht","graph":"Karate","seconds":0.20},
  >   "sampling":{"kernel":{"samples_per_sec":50000.0}},
  >   "gc":{"minor_words":9000000,"top_heap_words":3000000}}]}
  > EOF

  $ netrel benchdiff OLD.json NEW_SLOW.json
  group                        metric                                          old            new    tolerance       status
  kernel-mc/Karate             run.seconds                                   0.105           0.22         0.03   REGRESSION
  kernel-mc/Karate             sampling.kernel.samples_per_sec               97500          45000        24375   REGRESSION
  kernel-mc/Karate             sampling.hist.chunk_ns.p50                 2.05e+06        4.5e+06        1e+06   REGRESSION
  kernel-mc/Karate             sampling.hist.chunk_ns.p99                 4.05e+06          9e+06   1.0125e+06   REGRESSION
  kernel-mc/Karate             gc.minor_words                                5e+06        5.1e+06     1.25e+06           ok
  kernel-mc/Karate             gc.top_heap_words                             2e+06          2e+06        1e+06           ok
  kernel-ht/Karate             run.seconds                                     0.2            0.2         0.05           ok
  kernel-ht/Karate             sampling.kernel.samples_per_sec               50000          50000        12500           ok
  kernel-ht/Karate             gc.minor_words                                9e+06          9e+06     2.25e+06           ok
  kernel-ht/Karate             gc.top_heap_words                             3e+06          3e+06        1e+06           ok
  benchdiff: 10 compared, 4 regression(s), 0 improvement(s)
  [1]

A wider --tolerance waves the same slowdown through (10.0 = only a
10x median shift fails — the cross-machine setting the tier-1 smoke
gate uses):

  $ netrel benchdiff OLD.json NEW_SLOW.json --tolerance 10.0 | tail -1
  benchdiff: 10 compared, 0 regression(s), 0 improvement(s)

Groups present on only one side are reported but never compared, and
metrics missing from either document (the ht runs carry no histograms)
are skipped — visible above as kernel-ht rows having no chunk_ns
lines.

  $ cat > NEW_PARTIAL.json <<'EOF'
  > {"section":"kernels","schema":2,"runs":[
  >  {"run":{"method":"kernel-mc","graph":"Karate","seconds":0.10}},
  >  {"run":{"method":"kernel-new","graph":"Karate","seconds":0.10}}]}
  > EOF

  $ netrel benchdiff OLD.json NEW_PARTIAL.json
  group                        metric                                          old            new    tolerance       status
  kernel-mc/Karate             run.seconds                                   0.105            0.1         0.03           ok
  [group kernel-ht/Karate: in baseline only, skipped]
  [group kernel-new/Karate: new, no baseline]
  benchdiff: 1 compared, 0 regression(s), 0 improvement(s)

--json emits the same report as one machine-readable document:

  $ netrel benchdiff OLD.json NEW_PARTIAL.json --json
  {
    "rows": [
      {
        "group": "kernel-mc/Karate",
        "metric": "run.seconds",
        "direction": "lower",
        "old_median": 0.10500000000000001,
        "new_median": 0.1,
        "delta": -0.0050000000000000044,
        "tolerance": 0.029999999999999985,
        "status": "ok"
      }
    ],
    "missing_groups": [
      "kernel-ht/Karate"
    ],
    "new_groups": [
      "kernel-new/Karate"
    ],
    "regressions": 0,
    "improvements": 0
  }

Unusable input (no runs list) is a usage error, exit 2:

  $ echo '{}' > EMPTY.json
  $ netrel benchdiff EMPTY.json NEW_OK.json
  netrel: old document: document has no top-level "runs" list
  [2]
