(** Bridges, articulation points and 2-edge-connected components
    (Definition 3 of the paper), via one iterative Tarjan low-link DFS.

    Iterative because road-network-like inputs contain paths tens of
    thousands of vertices long, which would overflow the OCaml stack
    under a recursive DFS.

    Parallel edges are handled correctly: only the specific edge used to
    enter a vertex is skipped, so a parallel pair is never reported as a
    bridge. Self-loops are never bridges and never create articulation
    points. *)

type result = {
  is_bridge : bool array;        (** per edge identifier *)
  is_articulation : bool array;  (** per vertex *)
}

val run : Ugraph.t -> result
(** Single DFS over all components. O(|V| + |E|). *)

val bridges : Ugraph.t -> bool array
val articulation_points : Ugraph.t -> bool array

val bridge_eids : Ugraph.t -> int list
(** Bridge edge identifiers in increasing order (the paper's set [B]). *)

val two_edge_components : Ugraph.t -> int array * int
(** [(comp, count)] labelling every vertex with its 2-edge-connected
    component (component of the graph after deleting all bridges). Ids
    are assigned in increasing order of smallest member vertex. An
    isolated vertex forms its own component. *)

val naive_bridges : Ugraph.t -> bool array
(** O(|E| * (|V| + |E|)) reference implementation (delete each edge and
    test whether its endpoints disconnect): used to cross-check {!run}
    in tests. *)
