type estimate = {
  value : float;
  samples_used : int;
  hits : int;
  distinct : int;
  variance_estimate : float;
  jobs_used : int;
  chunk_samples : int array;
}

(* Samples are drawn in fixed-size chunks so that work distribution and
   random-stream assignment are independent of the number of domains:
   chunk [i] always covers the same sample indices and always draws from
   the [i]-th [Prng.split] of the master generator, whether the chunks
   run on one domain or eight. [chunk_target] is therefore part of the
   determinism contract: changing it changes which possible graphs a
   seed draws (it does not change the estimator's distribution). *)
let chunk_target = 4096

(* Edge-count-aware chunk sizing for the large-graph regime: a chunk's
   work is roughly [len * edges] bernoulli draws, so on a million-edge
   graph 4096-sample chunks would leave a small budget as one or two
   indivisible lumps and starve the other domains. The target shrinks
   past [chunk_edge_threshold] edges so every chunk stays near a fixed
   [threshold * chunk_target] edge-draw budget. Like [chunk_target],
   this function is part of the determinism contract: it depends only
   on the edge count, never on [--jobs], and every built-in dataset
   (Hit-d is the largest at ~25k edges) sits below the threshold, so
   their seeded estimates keep the historical 4096 layout. *)
let chunk_edge_threshold = 32_768

let chunk_target_for ~edges =
  if edges <= chunk_edge_threshold then chunk_target
  else max 64 (chunk_edge_threshold * chunk_target / edges)

(* Which draw kernel the samplers run on. [Flat] is the scalar draw
   (one bernoulli per edge per sample, the pre-kernel stream —
   bit-identical to [Reference]); [Bitsliced] draws 62 worlds per pass
   through [Kernel.draw_bitsliced]. Each mode is bit-identical to
   itself at every [jobs] value (same chunk streams, same ordered
   reduction), but the two modes consume the chunk streams differently
   and so draw different possible graphs from the same seed: estimates
   agree statistically, not bitwise, across modes. *)
type kernel_mode = Flat | Bitsliced

let kernel_mode_name = function Flat -> "flat" | Bitsliced -> "bitsliced"

let validate g ~terminals ~samples ~jobs =
  Ugraph.validate_terminals g terminals;
  if samples <= 0 then invalid_arg "Mcsampling: samples <= 0";
  if jobs <= 0 then invalid_arg "Mcsampling: jobs <= 0"

(* The [k < 2] answer needs no sampling, and the estimate says so:
   nothing was drawn, nothing hit, nothing deduplicated — only [value]
   and the domain budget carry information. *)
let trivial_estimate ~jobs value =
  { value; samples_used = 0; hits = 0; distinct = 0; variance_estimate = 0.;
    jobs_used = Par.effective_jobs jobs; chunk_samples = [||] }

(* Draw one possible graph into [present]; returns its probability.
   Reference path only — the hot loops draw through Kernel. *)
let draw_sample rng g present =
  let prob = ref Xprob.one in
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) ->
      if Prng.bernoulli rng e.p then begin
        present.(eid) <- true;
        prob := Xprob.scale e.p !prob
      end
      else begin
        present.(eid) <- false;
        prob := Xprob.scale (1. -. e.p) !prob
      end)
    g;
  !prob

(* The 62-bit content hash that identifies a sampled possible graph for
   the HT dedup. Packed-word mixing (Hash64) replaced a per-bool FNV-1a
   whose 32-bit prime only diffused bits upward; the old hash admitted
   structured collision pairs that silently merged distinct possible
   graphs (see the regression test in test_core.ml). *)
let mask_hash present m = Hash64.mask present m

(* pi_i = 1 - (1 - q)^s, and the HT weight q / pi_i, computed stably
   from log q (natural log), which survives probabilities far below
   float range. For q -> 0 the weight tends to 1/s; it is 1 at q = 1.
   Shared by Sampling(HT) and the S2BDD descent estimator — the two
   call sites previously carried divergent underflow thresholds. *)
let ht_weight ~logq ~n =
  let nf = float_of_int n in
  if logq >= 0. then 1.
  else if logq < -690. then 1. /. nf (* exp would underflow below ~1e-300 *)
  else
    let q = Float.exp logq in
    let pi = -.Float.expm1 (nf *. Float.log1p (-.q)) in
    if pi <= 0. then 1. /. nf else q /. pi

let ln2 = Float.log 2.
let ht_weight_x q_x s = ht_weight ~logq:(Xprob.log2 q_x *. ln2) ~n:s

(* The per-chunk master streams, split in chunk order from the seed:
   stream [i] belongs to chunk [i] no matter which domain runs it. *)
let chunk_streams ~seed n =
  let master = Prng.create seed in
  Array.init n (fun _ -> Prng.split master)

(* The 95% interval an estimate carries. Wald
   (value ± 1.96 sqrt(variance)) collapsed to a zero-width interval
   whenever hits ∈ {0, n} — a false certificate in exactly the
   high-reliability regime — so the reported bounds are the Wilson
   score interval on (value, n) instead; the raw Wald variance stays
   available in [variance_estimate] and under the
   [sampling.wald_variance] Obs gauge. The trivial k < 2 answer drew
   nothing and is exact, so it reports the point interval. *)
let interval ?z ?(method_ = Relstats.Wilson) (e : estimate) =
  if e.samples_used = 0 then (e.value, e.value)
  else Relstats.interval ?z method_ ~phat:e.value ~n:e.samples_used

let emit_estimate trace (e : estimate) =
  if Trace.enabled trace then begin
    let lower, upper = interval e in
    Trace.instant trace "estimate"
      ~args:
        [
          ("value", Float e.value);
          ("lower", Float lower);
          ("upper", Float upper);
          ("samples", Int e.samples_used);
        ]
  end;
  e

(* Per-chunk sampling loops, one per kernel mode. The flat bodies are
   the original inner loops verbatim (the bit-identity contract with
   [Reference] rests on them); the bit-sliced bodies draw batches of
   [Prng.Bitbatch.lanes] worlds per pass, masking the ragged last
   batch to its live lanes — the full-width draw always runs, so a
   chunk's stream consumption is independent of how the batch
   boundaries land. *)

(* Worker-local instrumentation for one chunk: an early-exit-depth
   histogram filled on the worker and merged exactly (bucket-count
   addition) on the calling thread, plus the chunk's GC delta. Both
   are [None]/zero when the observer is disabled, preserving the
   zero-overhead contract; GC measurement is additionally pinned off
   under NETREL_FAKE_CLOCK so documents stay byte-stable. *)
let chunk_depth o =
  if Obs.enabled o then Some (Metrics.Histogram.create ()) else None

let depth_record depth sc =
  match depth with
  | None -> ()
  | Some h -> Metrics.Histogram.record h (Kernel.union_steps sc)

let chunk_gc_begin o =
  if Obs.enabled o && Obs.gc_counters_live () then
    Some (Metrics.Gcstat.snapshot ())
  else None

let chunk_gc_end = function
  | None -> Metrics.Gcstat.zero
  | Some before ->
      Metrics.Gcstat.delta ~before ~after:(Metrics.Gcstat.snapshot ())

(* Fold one chunk's instrumentation into the sampling observer (main
   thread, chunk order). *)
let chunk_obs o dt depth gd =
  Obs.record_span o "chunk" dt;
  Obs.hist_seconds o "hist.chunk_ns" dt;
  (match depth with
  | None -> ()
  | Some h -> Obs.hist_merge o "hist.early_exit_depth" h);
  Obs.record_gc o "gc" gd

let mc_chunk_flat ?depth csr term_arr rng len =
  let sc = Kernel.scratch () in
  let hits = ref 0 in
  for _ = 1 to len do
    Kernel.draw sc csr rng;
    if Kernel.connected_terminals sc csr term_arr then incr hits;
    depth_record depth sc
  done;
  !hits

let mc_chunk_bitsliced ?depth csr term_arr rng len =
  let sc = Kernel.scratch () in
  let hits = ref 0 in
  let remaining = ref len in
  while !remaining > 0 do
    let batch = min !remaining Prng.Bitbatch.lanes in
    Kernel.draw_bitsliced sc csr rng;
    let active =
      if batch = Prng.Bitbatch.lanes then Prng.Bitbatch.all
      else (1 lsl batch) - 1
    in
    hits :=
      !hits
      + Prng.Bitbatch.popcount
          (Kernel.connected_lanes sc csr term_arr ~active);
    depth_record depth sc;
    remaining := !remaining - batch
  done;
  !hits

(* Terminal/budget validation against a Csr snapshot alone, for the
   [_csr] entry points where no [Ugraph.t] ever exists. Mirrors
   [Ugraph.validate_terminals] against the snapshot's vertex count. *)
let validate_csr csr ~terminals ~samples ~jobs =
  let n = Kernel.Csr.n_vertices csr in
  if terminals = [] then invalid_arg "Mcsampling: empty terminal set";
  let seen = Hashtbl.create (List.length terminals) in
  List.iter
    (fun t ->
      if t < 0 || t >= n then
        invalid_arg (Printf.sprintf "Mcsampling: terminal %d out of range [0,%d)" t n);
      if Hashtbl.mem seen t then
        invalid_arg (Printf.sprintf "Mcsampling: duplicate terminal %d" t);
      Hashtbl.add seen t ())
    terminals;
  if samples <= 0 then invalid_arg "Mcsampling: samples <= 0";
  if jobs <= 0 then invalid_arg "Mcsampling: jobs <= 0"

(* The non-trivial MC body, shared by the graph and csr-direct entry
   points. The caller has validated terminals and budgets. *)
let mc_sampled ~obs ~o ~trace ~seed ~jobs ~kernel csr ~terminals ~samples =
    Obs.time o "total" @@ fun () ->
    let term_arr = Array.of_list terminals in
    let chunks =
      Par.chunks ~total:samples
        ~target:(chunk_target_for ~edges:(Kernel.Csr.n_edges csr))
    in
    let rngs = chunk_streams ~seed (Array.length chunks) in
    let lanes = Par.effective_jobs jobs in
    let t_kernel = Obs.now obs in
    let chunk_hits =
      Par.run_jobs ~jobs (Array.length chunks) (fun i ->
          let tr = Trace.task trace ~lane:(i mod lanes) in
          let ts = Trace.now tr in
          let t0 = Obs.now obs in
          let depth = chunk_depth o in
          let g0 = chunk_gc_begin o in
          let _, len = chunks.(i) in
          let rng = rngs.(i) in
          let hits =
            match kernel with
            | Flat -> mc_chunk_flat ?depth csr term_arr rng len
            | Bitsliced -> mc_chunk_bitsliced ?depth csr term_arr rng len
          in
          Trace.complete tr ~ts "mc.chunk"
            ~args:
              [ ("chunk", Int i); ("samples", Int len); ("hits", Int hits) ];
          (hits, Obs.now obs -. t0, depth, chunk_gc_end g0, tr))
    in
    let kernel_secs = Obs.now obs -. t_kernel in
    (* Ordered reduction: integer hits fold in chunk order (associative
       here, but the convention keeps every reducer shape-identical);
       per-task trace buffers fold back in the same order. *)
    let hits =
      Array.fold_left
        (fun acc (h, dt, depth, gd, tr) ->
          chunk_obs o dt depth gd;
          Trace.merge ~into:trace tr;
          acc + h)
        0 chunk_hits
    in
    let value = float_of_int hits /. float_of_int samples in
    Obs.add o "samples" samples;
    Obs.add o "hits" hits;
    Obs.add o "connectivity_checks" samples;
    Obs.add o "kernel.samples" samples;
    Obs.record_span o "kernel.elapsed" kernel_secs;
    let variance_estimate = value *. (1. -. value) /. float_of_int samples in
    Obs.gauge o "wald_variance" variance_estimate;
    emit_estimate trace
      {
        value;
        samples_used = samples;
        hits;
        distinct = 0;
        variance_estimate;
        jobs_used = Par.effective_jobs jobs;
        chunk_samples = Array.map snd chunks;
      }

(* [?csr] lets a caller holding a prebuilt snapshot (the engine's
   per-graph cache) skip reconstruction. The Csr is a pure function of
   [g], so a cached snapshot cannot change any estimate. *)
let monte_carlo ?(obs = Obs.disabled) ?(trace = Trace.disabled) ?(seed = 1)
    ?(jobs = 1) ?(kernel = Flat) ?csr g ~terminals ~samples =
  validate g ~terminals ~samples ~jobs;
  let o = Obs.sub obs "sampling" in
  Obs.text o "estimator" "mc";
  Obs.text o "kernel.mode" (kernel_mode_name kernel);
  if List.length terminals < 2 then begin
    Obs.incr o "trivial";
    emit_estimate trace (trivial_estimate ~jobs 1.)
  end
  else
    let csr = match csr with Some c -> c | None -> Kernel.Csr.of_graph g in
    mc_sampled ~obs ~o ~trace ~seed ~jobs ~kernel csr ~terminals ~samples

(* Csr-direct entry point: sample a snapshot that never had a Ugraph.t
   behind it (mmap'd binary graphs via Kernel.Csr.of_arrays). For a
   snapshot built by Kernel.Csr.of_graph the result is bit-identical
   to [monte_carlo] — same chunk layout, same streams. *)
let monte_carlo_csr ?(obs = Obs.disabled) ?(trace = Trace.disabled) ?(seed = 1)
    ?(jobs = 1) ?(kernel = Flat) csr ~terminals ~samples =
  validate_csr csr ~terminals ~samples ~jobs;
  let o = Obs.sub obs "sampling" in
  Obs.text o "estimator" "mc";
  Obs.text o "kernel.mode" (kernel_mode_name kernel);
  if List.length terminals < 2 then begin
    Obs.incr o "trivial";
    emit_estimate trace (trivial_estimate ~jobs 1.)
  end
  else mc_sampled ~obs ~o ~trace ~seed ~jobs ~kernel csr ~terminals ~samples

(* HT stage-1 bodies: dedup a chunk's draws into (hash -> entry) plus
   the first-occurrence order. Both kernels produce the same tuple
   shape, so stage 2 (the ordered merge) and the weighted fold are
   mode-independent. The world hashes agree across modes on equal
   masks (both replay the Hash64.mask digest), so dedup semantics are
   identical; only the sampled worlds differ. *)

let ht_chunk_flat ?depth csr term_arr rng len =
  let sc = Kernel.scratch () in
  let seen : (int, Xprob.t * bool) Hashtbl.t = Hashtbl.create len in
  let order = Array.make len 0 in
  let n_order = ref 0 in
  for _ = 1 to len do
    let prob = Kernel.draw_prob sc csr rng in
    let h = Kernel.mask_hash sc in
    if not (Hashtbl.mem seen h) then begin
      let connected = Kernel.connected_terminals sc csr term_arr in
      depth_record depth sc;
      Hashtbl.add seen h (prob, connected);
      order.(!n_order) <- h;
      incr n_order
    end
  done;
  (seen, order, !n_order)

let ht_chunk_bitsliced ?depth csr term_arr rng len =
  let sc = Kernel.scratch () in
  let seen : (int, Xprob.t * bool) Hashtbl.t = Hashtbl.create len in
  let order = Array.make len 0 in
  let n_order = ref 0 in
  let remaining = ref len in
  while !remaining > 0 do
    let batch = min !remaining Prng.Bitbatch.lanes in
    Kernel.draw_bitsliced sc csr rng;
    Kernel.transpose_worlds sc;
    for lane = 0 to batch - 1 do
      let h = Kernel.world_hash sc ~lane in
      if not (Hashtbl.mem seen h) then begin
        let prob = Kernel.world_prob sc csr ~lane in
        let connected = Kernel.connected_lane sc csr term_arr ~lane in
        depth_record depth sc;
        Hashtbl.add seen h (prob, connected);
        order.(!n_order) <- h;
        incr n_order
      end
    done;
    remaining := !remaining - batch
  done;
  (seen, order, !n_order)

(* The non-trivial HT body, shared by the graph and csr-direct entry
   points. The caller has validated terminals and budgets. *)
let ht_sampled ~obs ~o ~trace ~seed ~jobs ~kernel csr ~terminals ~samples =
    Obs.time o "total" @@ fun () ->
    let term_arr = Array.of_list terminals in
    let chunks =
      Par.chunks ~total:samples
        ~target:(chunk_target_for ~edges:(Kernel.Csr.n_edges csr))
    in
    let rngs = chunk_streams ~seed (Array.length chunks) in
    let lanes = Par.effective_jobs jobs in
    (* Stage 1 (parallel): each chunk dedups its own draws. A chunk's
       table records hash -> (probability, connected) for the chunk's
       distinct masks (sized by the chunk length — the only masks it
       can hold), plus the first-occurrence order in a flat array so
       the merge below is deterministic by construction rather than by
       hash-table layout. Connectivity runs once per chunk-distinct
       mask. *)
    let t_kernel = Obs.now obs in
    let chunk_tables =
      Par.run_jobs ~jobs (Array.length chunks) (fun i ->
          let tr = Trace.task trace ~lane:(i mod lanes) in
          let ts = Trace.now tr in
          let t0 = Obs.now obs in
          let depth = chunk_depth o in
          let g0 = chunk_gc_begin o in
          let _, len = chunks.(i) in
          let rng = rngs.(i) in
          let seen, order, n_order =
            match kernel with
            | Flat -> ht_chunk_flat ?depth csr term_arr rng len
            | Bitsliced -> ht_chunk_bitsliced ?depth csr term_arr rng len
          in
          Trace.complete tr ~ts "ht.chunk"
            ~args:
              [
                ("chunk", Int i);
                ("samples", Int len);
                ("unique", Int (Hashtbl.length seen));
                ("drawn", Int len);
              ];
          (seen, order, n_order, Obs.now obs -. t0, depth, chunk_gc_end g0, tr))
    in
    let kernel_secs = Obs.now obs -. t_kernel in
    (* Stage 2 (ordered reduction): merge the per-chunk tables in chunk
       order, keeping the first occurrence of every hash — exactly what
       a sequential single pass over all samples would keep, since
       chunk order is sample order. The surviving entries, enumerated
       in global first-occurrence order, drive the pi-weighted sum, so
       the float accumulation order is fixed. The sum of per-chunk
       distinct counts bounds the merged count, so one exact-capacity
       array (cursor-filled) replaces the old list accumulator, and the
       dedup table is sized by that bound instead of [samples]. *)
    let entries, n_entries =
      Trace.span trace "ht.merge" @@ fun () ->
      Obs.time o "merge" @@ fun () ->
      let bound =
        Array.fold_left
          (fun acc (_, _, n_order, _, _, _, _) -> acc + n_order)
          0 chunk_tables
      in
      let merged : (int, unit) Hashtbl.t = Hashtbl.create bound in
      let entries = Array.make (max bound 1) (Xprob.one, false) in
      let cursor = ref 0 in
      Array.iter
        (fun (tab, order, n_order, dt, depth, gd, tr) ->
          chunk_obs o dt depth gd;
          Obs.hist o "hist.dedup_occupancy" n_order;
          Trace.merge ~into:trace tr;
          for j = 0 to n_order - 1 do
            let h = order.(j) in
            if not (Hashtbl.mem merged h) then begin
              Hashtbl.add merged h ();
              entries.(!cursor) <- Hashtbl.find tab h;
              incr cursor
            end
          done)
        chunk_tables;
      (entries, !cursor)
    in
    (* One pass over the merged entries with one accumulator per
       quantity: each accumulator folds in entry order, so the float
       accumulation matches the former three-fold formulation
       bit-for-bit. The correction is the Equation-(8) term subtracting
       the squared sample probabilities of connected samples. *)
    let s_f = float_of_int samples in
    let hits = ref 0 in
    let value = ref 0. in
    let correction = ref 0. in
    for j = 0 to n_entries - 1 do
      let q, connected = entries.(j) in
      if connected then begin
        incr hits;
        value := !value +. ht_weight_x q samples;
        correction :=
          !correction +. ((s_f -. 1.) *. Xprob.to_float_approx (Xprob.mul q q))
      end
    done;
    let hits = !hits and value = !value and correction = !correction in
    let v = (value *. (1. -. value) /. s_f) -. (correction /. (2. *. s_f)) in
    (* The plug-in can go negative (the correction is only an estimate
       of the covariance term); the clamp below keeps the reported
       variance usable, but the event itself is worth knowing about —
       a clamped variance means the 95% CI the estimate carries has
       degenerated to a point. *)
    if v < 0. then begin
      Obs.incr o "variance_clamped";
      Obs.gauge o "raw_variance" v
    end;
    let distinct = n_entries in
    Obs.add o "samples" samples;
    Obs.add o "hits" hits;
    Obs.add o "distinct" distinct;
    Obs.add o "connectivity_checks" distinct;
    Obs.gauge o "dedup_ratio" (float_of_int distinct /. float_of_int samples);
    Obs.add o "kernel.samples" samples;
    Obs.record_span o "kernel.elapsed" kernel_secs;
    Obs.gauge o "wald_variance" (Float.max 0. v);
    emit_estimate trace
      {
        value;
        samples_used = samples;
        hits;
        distinct;
        variance_estimate = Float.max 0. v;
        jobs_used = Par.effective_jobs jobs;
        chunk_samples = Array.map snd chunks;
      }

let horvitz_thompson ?(obs = Obs.disabled) ?(trace = Trace.disabled)
    ?(seed = 1) ?(jobs = 1) ?(kernel = Flat) ?csr g ~terminals ~samples =
  validate g ~terminals ~samples ~jobs;
  let o = Obs.sub obs "sampling" in
  Obs.text o "estimator" "ht";
  Obs.text o "kernel.mode" (kernel_mode_name kernel);
  if List.length terminals < 2 then begin
    Obs.incr o "trivial";
    emit_estimate trace (trivial_estimate ~jobs 1.)
  end
  else
    let csr = match csr with Some c -> c | None -> Kernel.Csr.of_graph g in
    ht_sampled ~obs ~o ~trace ~seed ~jobs ~kernel csr ~terminals ~samples

(* Csr-direct HT twin of [monte_carlo_csr]. *)
let horvitz_thompson_csr ?(obs = Obs.disabled) ?(trace = Trace.disabled)
    ?(seed = 1) ?(jobs = 1) ?(kernel = Flat) csr ~terminals ~samples =
  validate_csr csr ~terminals ~samples ~jobs;
  let o = Obs.sub obs "sampling" in
  Obs.text o "estimator" "ht";
  Obs.text o "kernel.mode" (kernel_mode_name kernel);
  if List.length terminals < 2 then begin
    Obs.incr o "trivial";
    emit_estimate trace (trivial_estimate ~jobs 1.)
  end
  else ht_sampled ~obs ~o ~trace ~seed ~jobs ~kernel csr ~terminals ~samples

(* ------------------------------------------------------------------ *)
(* Retained reference implementation                                   *)
(* ------------------------------------------------------------------ *)

(* The pre-kernel sampling path, kept as the differential oracle for
   the flat kernels: boxed-edge iteration into a [bool array] mask,
   full-reset union-find over every present edge
   (Connectivity.terminals_connected_dsu), bool-array mask hashing, and
   the list-accumulating HT merge. Sequential (chunk loop on the
   calling domain) but chunked and split-streamed exactly like the
   kernel path, so for a fixed seed the estimates must be BIT-IDENTICAL
   to monte_carlo / horvitz_thompson at every jobs value. The kernel
   equivalence qcheck suite (test_kernel.ml), the bench `kernels`
   section, and the selfcheck oracle sweep all compare against this
   module. *)
module Reference = struct
  let monte_carlo ?(seed = 1) g ~terminals ~samples =
    validate g ~terminals ~samples ~jobs:1;
    if List.length terminals < 2 then trivial_estimate ~jobs:1 1.
    else begin
      let m = Ugraph.n_edges g in
      let n = Ugraph.n_vertices g in
      let chunks = Par.chunks ~total:samples ~target:(chunk_target_for ~edges:m) in
      let rngs = chunk_streams ~seed (Array.length chunks) in
      let present = Array.make m false in
      let dsu = Dsu.create n in
      let hits = ref 0 in
      Array.iteri
        (fun i (_, len) ->
          let rng = rngs.(i) in
          for _ = 1 to len do
            Ugraph.iter_edges
              (fun eid (e : Ugraph.edge) ->
                present.(eid) <- Prng.bernoulli rng e.p)
              g;
            if Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present
                 terminals
            then incr hits
          done)
        chunks;
      let hits = !hits in
      let value = float_of_int hits /. float_of_int samples in
      {
        value;
        samples_used = samples;
        hits;
        distinct = 0;
        variance_estimate = value *. (1. -. value) /. float_of_int samples;
        jobs_used = Par.effective_jobs 1;
        chunk_samples = Array.map snd chunks;
      }
    end

  let horvitz_thompson ?(seed = 1) g ~terminals ~samples =
    validate g ~terminals ~samples ~jobs:1;
    if List.length terminals < 2 then trivial_estimate ~jobs:1 1.
    else begin
      let m = Ugraph.n_edges g in
      let n = Ugraph.n_vertices g in
      let chunks = Par.chunks ~total:samples ~target:(chunk_target_for ~edges:m) in
      let rngs = chunk_streams ~seed (Array.length chunks) in
      let present = Array.make m false in
      let dsu = Dsu.create n in
      let chunk_tables =
        Array.mapi
          (fun i (_, len) ->
            let rng = rngs.(i) in
            let seen : (int, Xprob.t * bool) Hashtbl.t = Hashtbl.create len in
            let order = ref [] in
            for _ = 1 to len do
              let prob = draw_sample rng g present in
              let h = mask_hash present m in
              if not (Hashtbl.mem seen h) then begin
                let connected =
                  Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present
                    terminals
                in
                Hashtbl.add seen h (prob, connected);
                order := h :: !order
              end
            done;
            (seen, List.rev !order))
          chunks
      in
      let entries =
        let merged : (int, unit) Hashtbl.t = Hashtbl.create samples in
        let entries = ref [] in
        Array.iter
          (fun (tab, order) ->
            List.iter
              (fun h ->
                if not (Hashtbl.mem merged h) then begin
                  Hashtbl.add merged h ();
                  entries := Hashtbl.find tab h :: !entries
                end)
              order)
          chunk_tables;
        List.rev !entries
      in
      let hits =
        List.fold_left
          (fun acc (_, connected) -> if connected then acc + 1 else acc)
          0 entries
      in
      let value =
        List.fold_left
          (fun acc (q, connected) ->
            if connected then acc +. ht_weight_x q samples else acc)
          0. entries
      in
      let s_f = float_of_int samples in
      let correction =
        List.fold_left
          (fun acc (q, connected) ->
            if connected then
              acc +. ((s_f -. 1.) *. Xprob.to_float_approx (Xprob.mul q q))
            else acc)
          0. entries
      in
      let v = (value *. (1. -. value) /. s_f) -. (correction /. (2. *. s_f)) in
      {
        value;
        samples_used = samples;
        hits;
        distinct = List.length entries;
        variance_estimate = Float.max 0. v;
        jobs_used = Par.effective_jobs 1;
        chunk_samples = Array.map snd chunks;
      }
    end
end

(* ------------------------------------------------------------------ *)
(* Incremental chunked drawing (sequential stopping)                    *)
(* ------------------------------------------------------------------ *)

(* The adaptive driver (lib/adaptive) draws rounds of samples until a
   CI target is met, so the total budget is not known up front. The
   chunk-stream discipline extends naturally: the sampler retains the
   master generator and splits one fresh stream per chunk as chunks are
   scheduled, in global chunk order — exactly the assignment
   [chunk_streams] would have produced had the final total been known,
   except that chunk boundaries follow the round schedule rather than
   one balanced partition. A run is therefore replayable from
   [(seed, round schedule)], and since the schedule is itself a
   deterministic function of the observed hit counts, from [(seed,
   ci_width, max_samples)] alone; [jobs] only places chunks on domains
   and never affects which streams exist or the fold order. *)
module Chunked = struct
  type mc = {
    mc_csr : Kernel.Csr.t;
    mc_terms : int array;
    mc_kernel : kernel_mode;
    mc_master : Prng.t;
    mc_jobs : int;
    mc_obs : Obs.t;
    mc_trace : Trace.t;
    mutable mc_samples : int;
    mutable mc_hits : int;
    mutable mc_chunks : int;
    mutable mc_schedule : int list; (* chunk lengths, most recent first *)
  }

  let create_common ~obs ~kernel ~estimator g ~terminals ~jobs =
    Ugraph.validate_terminals g terminals;
    if jobs <= 0 then invalid_arg "Mcsampling.Chunked: jobs <= 0";
    if List.length terminals < 2 then
      invalid_arg "Mcsampling.Chunked: fewer than 2 terminals (trivial case)";
    let o = Obs.sub obs "sampling" in
    Obs.text o "estimator" estimator;
    Obs.text o "kernel.mode" (kernel_mode_name kernel);
    o

  let mc_create ?(obs = Obs.disabled) ?(trace = Trace.disabled) ?(seed = 1)
      ?(jobs = 1) ?(kernel = Flat) ?csr g ~terminals =
    let o = create_common ~obs ~kernel ~estimator:"mc" g ~terminals ~jobs in
    {
      mc_csr = (match csr with Some c -> c | None -> Kernel.Csr.of_graph g);
      mc_terms = Array.of_list terminals;
      mc_kernel = kernel;
      mc_master = Prng.create seed;
      mc_jobs = jobs;
      mc_obs = o;
      mc_trace = trace;
      mc_samples = 0;
      mc_hits = 0;
      mc_chunks = 0;
      mc_schedule = [];
    }

  (* One round: split the new chunks' streams off the retained master
     (in chunk order, before any chunk runs), dispatch on the pool, and
     fold hits in chunk order — the same shape as the fixed-budget
     sampler, just resumable. *)
  let mc_draw t ~samples =
    if samples <= 0 then invalid_arg "Mcsampling.Chunked.mc_draw: samples <= 0";
    let chunks =
      Par.chunks ~total:samples
        ~target:(chunk_target_for ~edges:(Kernel.Csr.n_edges t.mc_csr))
    in
    let n = Array.length chunks in
    let rngs = Array.init n (fun _ -> Prng.split t.mc_master) in
    let lanes = Par.effective_jobs t.mc_jobs in
    let base = t.mc_chunks in
    let t_kernel = Obs.now t.mc_obs in
    let chunk_hits =
      Par.run_jobs ~jobs:t.mc_jobs n (fun i ->
          let tr = Trace.task t.mc_trace ~lane:(i mod lanes) in
          let ts = Trace.now tr in
          let t0 = Obs.now t.mc_obs in
          let depth = chunk_depth t.mc_obs in
          let g0 = chunk_gc_begin t.mc_obs in
          let _, len = chunks.(i) in
          let rng = rngs.(i) in
          let hits =
            match t.mc_kernel with
            | Flat -> mc_chunk_flat ?depth t.mc_csr t.mc_terms rng len
            | Bitsliced -> mc_chunk_bitsliced ?depth t.mc_csr t.mc_terms rng len
          in
          Trace.complete tr ~ts "mc.chunk"
            ~args:
              [
                ("chunk", Int (base + i));
                ("samples", Int len);
                ("hits", Int hits);
              ];
          (hits, Obs.now t.mc_obs -. t0, depth, chunk_gc_end g0, tr))
    in
    Obs.record_span t.mc_obs "kernel.elapsed" (Obs.now t.mc_obs -. t_kernel);
    let hits =
      Array.fold_left
        (fun acc (h, dt, depth, gd, tr) ->
          chunk_obs t.mc_obs dt depth gd;
          Trace.merge ~into:t.mc_trace tr;
          acc + h)
        0 chunk_hits
    in
    t.mc_samples <- t.mc_samples + samples;
    t.mc_hits <- t.mc_hits + hits;
    t.mc_chunks <- t.mc_chunks + n;
    Array.iter (fun (_, len) -> t.mc_schedule <- len :: t.mc_schedule) chunks;
    Obs.add t.mc_obs "samples" samples;
    Obs.add t.mc_obs "hits" hits;
    Obs.add t.mc_obs "connectivity_checks" samples;
    Obs.add t.mc_obs "kernel.samples" samples

  let mc_samples t = t.mc_samples
  let mc_hits t = t.mc_hits

  let mc_estimate t =
    if t.mc_samples = 0 then
      invalid_arg "Mcsampling.Chunked.mc_estimate: no samples drawn";
    let value = float_of_int t.mc_hits /. float_of_int t.mc_samples in
    let variance_estimate =
      value *. (1. -. value) /. float_of_int t.mc_samples
    in
    Obs.gauge t.mc_obs "wald_variance" variance_estimate;
    emit_estimate t.mc_trace
      {
        value;
        samples_used = t.mc_samples;
        hits = t.mc_hits;
        distinct = 0;
        variance_estimate;
        jobs_used = Par.effective_jobs t.mc_jobs;
        chunk_samples = Array.of_list (List.rev t.mc_schedule);
      }

  (* HT weights depend on the final total n (pi = 1 - (1-q)^n), so the
     incremental sampler keeps every chunk's dedup table and replays
     the ordered merge and the weighted fold at each [ht_estimate] —
     the merge result for the chunks drawn so far is exactly what the
     fixed-budget sampler would have computed for that total. *)
  type ht_chunk = {
    hc_tab : (int, Xprob.t * bool) Hashtbl.t;
    hc_order : int array;
    hc_n_order : int;
  }

  type ht = {
    ht_csr : Kernel.Csr.t;
    ht_terms : int array;
    ht_kernel : kernel_mode;
    ht_master : Prng.t;
    ht_jobs : int;
    ht_obs : Obs.t;
    ht_trace : Trace.t;
    mutable ht_samples : int;
    mutable ht_chunks : int;
    mutable ht_tables : ht_chunk list; (* most recent first *)
    mutable ht_schedule : int list;
  }

  let ht_create ?(obs = Obs.disabled) ?(trace = Trace.disabled) ?(seed = 1)
      ?(jobs = 1) ?(kernel = Flat) ?csr g ~terminals =
    let o = create_common ~obs ~kernel ~estimator:"ht" g ~terminals ~jobs in
    {
      ht_csr = (match csr with Some c -> c | None -> Kernel.Csr.of_graph g);
      ht_terms = Array.of_list terminals;
      ht_kernel = kernel;
      ht_master = Prng.create seed;
      ht_jobs = jobs;
      ht_obs = o;
      ht_trace = trace;
      ht_samples = 0;
      ht_chunks = 0;
      ht_tables = [];
      ht_schedule = [];
    }

  let ht_draw t ~samples =
    if samples <= 0 then invalid_arg "Mcsampling.Chunked.ht_draw: samples <= 0";
    let chunks =
      Par.chunks ~total:samples
        ~target:(chunk_target_for ~edges:(Kernel.Csr.n_edges t.ht_csr))
    in
    let n = Array.length chunks in
    let rngs = Array.init n (fun _ -> Prng.split t.ht_master) in
    let lanes = Par.effective_jobs t.ht_jobs in
    let base = t.ht_chunks in
    let t_kernel = Obs.now t.ht_obs in
    let chunk_tables =
      Par.run_jobs ~jobs:t.ht_jobs n (fun i ->
          let tr = Trace.task t.ht_trace ~lane:(i mod lanes) in
          let ts = Trace.now tr in
          let t0 = Obs.now t.ht_obs in
          let depth = chunk_depth t.ht_obs in
          let g0 = chunk_gc_begin t.ht_obs in
          let _, len = chunks.(i) in
          let rng = rngs.(i) in
          let seen, order, n_order =
            match t.ht_kernel with
            | Flat -> ht_chunk_flat ?depth t.ht_csr t.ht_terms rng len
            | Bitsliced -> ht_chunk_bitsliced ?depth t.ht_csr t.ht_terms rng len
          in
          Trace.complete tr ~ts "ht.chunk"
            ~args:
              [
                ("chunk", Int (base + i));
                ("samples", Int len);
                ("unique", Int (Hashtbl.length seen));
                ("drawn", Int len);
              ];
          ( { hc_tab = seen; hc_order = order; hc_n_order = n_order },
            Obs.now t.ht_obs -. t0,
            depth,
            chunk_gc_end g0,
            tr ))
    in
    Obs.record_span t.ht_obs "kernel.elapsed" (Obs.now t.ht_obs -. t_kernel);
    Array.iter
      (fun (hc, dt, depth, gd, tr) ->
        chunk_obs t.ht_obs dt depth gd;
        Obs.hist t.ht_obs "hist.dedup_occupancy" hc.hc_n_order;
        Trace.merge ~into:t.ht_trace tr;
        t.ht_tables <- hc :: t.ht_tables)
      chunk_tables;
    t.ht_samples <- t.ht_samples + samples;
    t.ht_chunks <- t.ht_chunks + n;
    Array.iter (fun (_, len) -> t.ht_schedule <- len :: t.ht_schedule) chunks;
    Obs.add t.ht_obs "samples" samples;
    Obs.add t.ht_obs "kernel.samples" samples

  let ht_samples t = t.ht_samples

  let ht_estimate t =
    if t.ht_samples = 0 then
      invalid_arg "Mcsampling.Chunked.ht_estimate: no samples drawn";
    let samples = t.ht_samples in
    let tables = List.rev t.ht_tables in
    let entries, n_entries =
      Trace.span t.ht_trace "ht.merge" @@ fun () ->
      Obs.time t.ht_obs "merge" @@ fun () ->
      let bound =
        List.fold_left (fun acc hc -> acc + hc.hc_n_order) 0 tables
      in
      let merged : (int, unit) Hashtbl.t = Hashtbl.create bound in
      let entries = Array.make (max bound 1) (Xprob.one, false) in
      let cursor = ref 0 in
      List.iter
        (fun hc ->
          for j = 0 to hc.hc_n_order - 1 do
            let h = hc.hc_order.(j) in
            if not (Hashtbl.mem merged h) then begin
              Hashtbl.add merged h ();
              entries.(!cursor) <- Hashtbl.find hc.hc_tab h;
              incr cursor
            end
          done)
        tables;
      (entries, !cursor)
    in
    let s_f = float_of_int samples in
    let hits = ref 0 in
    let value = ref 0. in
    let correction = ref 0. in
    for j = 0 to n_entries - 1 do
      let q, connected = entries.(j) in
      if connected then begin
        incr hits;
        value := !value +. ht_weight_x q samples;
        correction :=
          !correction +. ((s_f -. 1.) *. Xprob.to_float_approx (Xprob.mul q q))
      end
    done;
    let hits = !hits and value = !value and correction = !correction in
    let v = (value *. (1. -. value) /. s_f) -. (correction /. (2. *. s_f)) in
    if v < 0. then begin
      Obs.incr t.ht_obs "variance_clamped";
      Obs.gauge t.ht_obs "raw_variance" v
    end;
    Obs.gauge t.ht_obs "dedup_ratio" (float_of_int n_entries /. s_f);
    Obs.gauge t.ht_obs "wald_variance" (Float.max 0. v);
    emit_estimate t.ht_trace
      {
        value;
        samples_used = samples;
        hits;
        distinct = n_entries;
        variance_estimate = Float.max 0. v;
        jobs_used = Par.effective_jobs t.ht_jobs;
        chunk_samples = Array.of_list (List.rev t.ht_schedule);
      }
end
