type stats = {
  layers : int;
  total_nodes : int;
  max_layer_nodes : int;
  pc : Xprob.t;
  pd : Xprob.t;
}

type error = [ `Node_budget_exceeded of int ]

let default_node_budget = 1 lsl 22

(* Resolve the cases the frontier machine does not model: fewer than two
   terminals, or terminals that no possible graph can connect. *)
let degenerate g ~terminals =
  Ugraph.validate_terminals g terminals;
  match terminals with
  | [] | [ _ ] -> Some Xprob.one
  | ts ->
    if List.exists (fun t -> Ugraph.degree g t = 0) ts then Some Xprob.zero
    else
      let present = Array.make (Ugraph.n_edges g) true in
      if Graphalgo.Connectivity.terminals_connected g ~present ts then None
      else Some Xprob.zero

let trivial_stats r =
  { layers = 0; total_nodes = 0; max_layer_nodes = 0;
    pc = r; pd = Xprob.sub Xprob.one r }

let reliability ?order ?(node_budget = default_node_budget) ?(eager = false) g
    ~terminals =
  match degenerate g ~terminals with
  | Some r -> Ok (r, trivial_stats r)
  | None ->
    let order =
      match order with Some o -> o | None -> Graphalgo.Ordering.best_order g
    in
    let ctx = Fstate.make g ~order ~terminals in
    let m = Fstate.n_positions ctx in
    let pc = ref Xprob.zero and pd = ref Xprob.zero in
    let current = ref (Fstate.Key_table.create 16) in
    Fstate.Key_table.replace !current (Fstate.key_exact Fstate.initial)
      (Fstate.initial, ref Xprob.one);
    (* The baseline keeps every constructed layer alive; retaining the
       tables models its memory footprint, and their sizes its BDD
       size. *)
    let retained = ref [] in
    let total_nodes = ref 1 and max_layer_nodes = ref 1 in
    let budget_hit = ref false in
    let pos = ref 0 in
    while (not !budget_hit) && !pos < m && Fstate.Key_table.length !current > 0 do
      let e = Fstate.edge_at ctx !pos in
      let next = Fstate.Key_table.create (Fstate.Key_table.length !current * 2) in
      let expand _key (st, pn) =
        let branch exists weight =
          if weight > 0. then begin
            let p' = Xprob.scale weight !pn in
            match Fstate.step ctx ~eager ~pos:!pos st ~exists with
            | Fstate.Sink1 -> pc := Xprob.add !pc p'
            | Fstate.Sink0 -> pd := Xprob.add !pd p'
            | Fstate.Live st' -> (
              let key = Fstate.key_exact st' in
              match Fstate.Key_table.find_opt next key with
              | Some (_, acc) -> acc := Xprob.add !acc p'
              | None -> Fstate.Key_table.replace next key (st', ref p'))
          end
        in
        branch true e.Ugraph.p;
        branch false (1. -. e.Ugraph.p)
      in
      Fstate.Key_table.iter expand !current;
      retained := !current :: !retained;
      current := next;
      let width = Fstate.Key_table.length next in
      total_nodes := !total_nodes + width;
      if width > !max_layer_nodes then max_layer_nodes := width;
      if !total_nodes > node_budget then budget_hit := true;
      incr pos
    done;
    if !budget_hit then Error (`Node_budget_exceeded !total_nodes)
    else begin
      ignore !retained;
      Ok
        ( !pc,
          { layers = m; total_nodes = !total_nodes;
            max_layer_nodes = !max_layer_nodes; pc = !pc; pd = !pd } )
    end

let reliability_float ?order ?node_budget ?eager g ~terminals =
  Result.map
    (fun (r, _) -> Xprob.to_float_approx r)
    (reliability ?order ?node_budget ?eager g ~terminals)
