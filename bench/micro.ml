(* Bechamel microbenchmarks: one kernel per table/figure family, so the
   hot paths behind each experiment can be tracked in isolation. *)

open Bechamel
open Toolkit
module D = Workload.Datasets
module F = Bddbase.Fstate
module S = Netrel.S2bdd
module O = Graphalgo.Ordering

let tests seed =
  (* Table 3/4 kernel: one plain Monte Carlo estimate on Karate. *)
  let karate = (D.karate ~seed ()).D.graph in
  let karate_ts = Workload.Generators.random_terminals ~seed karate ~k:5 in
  let t_mc =
    Test.make ~name:"table3/4: sampling-mc karate s=100"
      (Staged.stage @@ fun () ->
       Mcsampling.monte_carlo ~seed karate ~terminals:karate_ts ~samples:100)
  in
  (* Figure 3/4 kernel: one DP descent on the Tokyo road network. *)
  let tokyo = (D.tokyo ~seed:(seed + 3) ~scale:0.25 ()).D.graph in
  let tokyo_ts = Workload.Generators.random_terminals ~seed tokyo ~k:10 in
  let order = O.order_edges (O.Bfs_from tokyo_ts) tokyo in
  let ctx = F.make tokyo ~order ~terminals:tokyo_ts in
  let dsu = Dsu.create (2 * Ugraph.n_vertices tokyo) in
  let rng = Prng.create seed in
  let t_descend =
    Test.make ~name:"fig3/4: descend-union tokyo"
      (Staged.stage @@ fun () ->
       F.descend_union ctx ~dsu ~detail:false ~pos:0 F.initial
         ~bernoulli:(fun p -> Prng.bernoulli rng p))
  in
  (* The same descent through the flat kernel (early-exit union-find):
     the production path; the row above is the retained reference. *)
  let ksc = Kernel.create () in
  let t_descend_kernel =
    Test.make ~name:"fig3/4: descend-kernel tokyo"
      (Staged.stage @@ fun () ->
       F.descend_kernel ctx ~scratch:ksc ~detail:false ~pos:0 F.initial
         ~bernoulli:(fun p -> Prng.bernoulli rng p))
  in
  (* Figure 5 kernel: frontier state transitions (one BDD layer step). *)
  let st =
    match F.step ctx ~eager:true ~pos:0 F.initial ~exists:true with
    | F.Live st -> st
    | _ -> F.initial
  in
  let t_step =
    Test.make ~name:"fig5: fstate-step tokyo layer1"
      (Staged.stage @@ fun () -> F.step ctx ~eager:true ~pos:1 st ~exists:true)
  in
  (* Table 5 kernel: the full extension pipeline on Tokyo. *)
  let t_preprocess =
    Test.make ~name:"table5: preprocess tokyo"
      (Staged.stage @@ fun () ->
       Preprocess.Pipeline.run tokyo ~terminals:tokyo_ts)
  in
  (* Figure 4(b) kernel: the Theorem 1 closed form. *)
  let t_samplesize =
    Test.make ~name:"fig4b: samplesize theorem1"
      (Staged.stage @@ fun () ->
       Netrel.Samplesize.reduced ~s:10_000 ~pc:0.3 ~pd:0.2)
  in
  (* Small end-to-end: S2BDD estimate on Karate (Tables 3/4 Pro rows). *)
  let t_pro =
    Test.make ~name:"table3/4: s2bdd karate s=100 w=64"
      (Staged.stage @@ fun () ->
       S.estimate
         ~config:{ S.default_config with S.samples = 100; S.width = 64; S.seed = seed }
         karate ~terminals:karate_ts)
  in
  Test.make_grouped ~name:"netrel"
    [ t_mc; t_descend; t_descend_kernel; t_step; t_preprocess; t_samplesize; t_pro ]

let benchmark seed =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances =
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances (tests seed) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

let run seed =
  print_endline "\n=== Bechamel microbenchmarks (one kernel per experiment family) ===";
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let results = benchmark seed in
  Notty_unix.output_image (Notty_unix.eol (img (window, results)))
