open Testutil
module C = Graphalgo.Connectivity
module B = Graphalgo.Bridges
module BT = Graphalgo.Blocktree
module O = Graphalgo.Ordering

(* ---- connectivity ---- *)

let t_is_connected () =
  Alcotest.(check bool) "fig1 connected" true (C.is_connected (fig1 ()));
  let disconnected = graph ~n:4 [ (0, 1, 0.5); (2, 3, 0.5) ] in
  Alcotest.(check bool) "two pairs" false (C.is_connected disconnected);
  Alcotest.(check bool) "empty graph" true (C.is_connected (graph ~n:0 []));
  Alcotest.(check bool) "single vertex" true (C.is_connected (graph ~n:1 []))

let t_components () =
  let g = graph ~n:5 [ (0, 1, 0.5); (3, 4, 0.5) ] in
  let comp, count = C.components g in
  Alcotest.(check int) "count" 3 count;
  Alcotest.(check (array int)) "labels" [| 0; 0; 1; 2; 2 |] comp

let t_terminals_connected () =
  let g = path4 0.5 in
  let all = Array.make 3 true in
  Alcotest.(check bool) "path connects ends" true
    (C.terminals_connected g ~present:all [ 0; 3 ]);
  let broken = [| true; false; true |] in
  Alcotest.(check bool) "cut middle" false
    (C.terminals_connected g ~present:broken [ 0; 3 ]);
  Alcotest.(check bool) "cut middle, near pair" true
    (C.terminals_connected g ~present:broken [ 0; 1 ]);
  Alcotest.(check bool) "single terminal" true
    (C.terminals_connected g ~present:broken [ 2 ])

let t_terminals_connected_dsu_agrees () =
  let g = two_triangles 0.5 in
  let dsu = Dsu.create (Ugraph.n_vertices g) in
  let r = rng () in
  for _ = 1 to 200 do
    let present = Array.init (Ugraph.n_edges g) (fun _ -> Prng.bool r) in
    let ts = [ 0; 4 ] in
    Alcotest.(check bool) "bfs = dsu"
      (C.terminals_connected g ~present ts)
      (C.terminals_connected_dsu dsu g ~present ts)
  done

(* ---- bridges ---- *)

let t_bridges_two_triangles () =
  let g = two_triangles 0.5 in
  let b = B.bridges g in
  Alcotest.(check (array bool)) "only the middle edge"
    [| false; false; false; true; false; false; false |]
    b;
  Alcotest.(check (list int)) "bridge eids" [ 3 ] (B.bridge_eids g)

let t_bridges_path () =
  let g = path4 0.5 in
  Alcotest.(check (array bool)) "every path edge" [| true; true; true |] (B.bridges g)

let t_bridges_cycle () =
  let g = cycle4 0.5 in
  Alcotest.(check (array bool)) "no bridge in a cycle"
    [| false; false; false; false |]
    (B.bridges g)

let t_bridges_parallel () =
  (* A path whose middle edge is doubled: the doubled pair is not a
     bridge, the outer edges are. *)
  let g = graph ~n:4 [ (0, 1, 0.5); (1, 2, 0.5); (1, 2, 0.6); (2, 3, 0.5) ] in
  Alcotest.(check (array bool)) "parallel pair not bridges"
    [| true; false; false; true |]
    (B.bridges g)

let t_bridges_self_loop () =
  let g = graph ~n:2 [ (0, 0, 0.5); (0, 1, 0.5) ] in
  Alcotest.(check (array bool)) "loop not a bridge" [| false; true |] (B.bridges g)

let t_articulations () =
  let g = two_triangles 0.5 in
  Alcotest.(check (array bool)) "bridge endpoints"
    [| false; false; true; true; false; false |]
    (B.articulation_points g);
  let star = graph ~n:4 [ (0, 1, 0.5); (0, 2, 0.5); (0, 3, 0.5) ] in
  Alcotest.(check (array bool)) "star centre" [| true; false; false; false |]
    (B.articulation_points star)

let t_two_edge_components () =
  let g = two_triangles 0.5 in
  let comp, count = B.two_edge_components g in
  Alcotest.(check int) "two components" 2 count;
  Alcotest.(check (array int)) "labels" [| 0; 0; 0; 1; 1; 1 |] comp

let arb_graph = Test_ugraph.arb_graph

let prop_bridges_match_naive =
  QCheck.Test.make ~name:"tarjan bridges = naive bridges" ~count:300
    (arb_graph ~max_n:12 ~max_m:25) (fun (n, es) ->
      let g = graph ~n es in
      B.bridges g = B.naive_bridges g)

let prop_articulations_match_naive =
  QCheck.Test.make ~name:"articulation points = naive" ~count:200
    (arb_graph ~max_n:10 ~max_m:20) (fun (n, es) ->
      let g = graph ~n es in
      let fast = B.articulation_points g in
      (* Naive: removing v increases the component count among the
         remaining vertices. *)
      let _, base_count = C.components g in
      let naive v =
        let others = Array.of_list (List.filter (fun u -> u <> v) (List.init n Fun.id)) in
        let sub, _ = Ugraph.induced g others in
        let _, cnt = C.components sub in
        (* v contributed one component if isolated; adjust. *)
        let base_without_v =
          if Ugraph.degree g v = 0 then base_count - 1 else base_count
        in
        cnt > base_without_v
      in
      List.for_all (fun v -> fast.(v) = naive v) (List.init n Fun.id))

(* ---- block tree / steiner ---- *)

let t_blocktree_basic () =
  let g = two_triangles 0.5 in
  let bt = BT.build g ~terminals:[ 0; 4 ] in
  Alcotest.(check int) "two supernodes" 2 bt.BT.n_comps;
  Alcotest.(check bool) "not separated" false (BT.terminals_separated bt);
  let keep = BT.steiner_keep bt in
  Alcotest.(check (array bool)) "both kept" [| true; true |] keep;
  let kv = BT.kept_vertices bt keep in
  Alcotest.(check (array bool)) "all vertices kept" (Array.make 6 true) kv;
  Alcotest.(check int) "bridge kept" 1 (Hashtbl.length (BT.kept_bridges bt keep))

let t_blocktree_prunes_dangling () =
  (* Triangle 0-1-2 with pendant path 2-3-4; terminals inside the
     triangle: the pendant path must be pruned. *)
  let g = graph ~n:5 [ (0, 1, 0.5); (1, 2, 0.5); (2, 0, 0.5); (2, 3, 0.5); (3, 4, 0.5) ] in
  let bt = BT.build g ~terminals:[ 0; 1 ] in
  let keep = BT.steiner_keep bt in
  let kv = BT.kept_vertices bt keep in
  Alcotest.(check (array bool)) "pendant pruned" [| true; true; true; false; false |] kv;
  Alcotest.(check int) "no bridge kept" 0 (Hashtbl.length (BT.kept_bridges bt keep))

let t_blocktree_keeps_connecting_path () =
  (* Terminals at the two ends of two_triangles keep the bridge; a
     terminal pair inside one triangle drops the other. *)
  let g = two_triangles 0.5 in
  let bt = BT.build g ~terminals:[ 0; 1 ] in
  let keep = BT.steiner_keep bt in
  Alcotest.(check (array bool)) "second triangle pruned"
    [| true; true; true; false; false; false |]
    (BT.kept_vertices bt keep)

let t_blocktree_separated () =
  let g = graph ~n:4 [ (0, 1, 0.5); (2, 3, 0.5) ] in
  let bt = BT.build g ~terminals:[ 0; 3 ] in
  Alcotest.(check bool) "separated" true (BT.terminals_separated bt);
  let bt2 = BT.build g ~terminals:[ 0; 1 ] in
  Alcotest.(check bool) "same side fine" false (BT.terminals_separated bt2)

(* ---- ordering ---- *)

let t_order_permutations () =
  let g = two_triangles 0.5 in
  let m = Ugraph.n_edges g in
  List.iter
    (fun s ->
      let o = O.order_edges s g in
      let sorted = Array.copy o in
      Array.sort compare sorted;
      Alcotest.(check (array int))
        (O.strategy_name s ^ " is a permutation")
        (Array.init m Fun.id) sorted)
    O.all_strategies

let t_frontier_plan_path () =
  let g = path4 0.5 in
  let plan = O.Frontier.plan g (O.order_edges O.Natural g) in
  (* Path: after edge 0 frontier {1}; after edge 1 {2}; after edge 2 {}. *)
  Alcotest.(check (array int)) "widths" [| 1; 1; 0 |] plan.O.Frontier.width;
  Alcotest.(check int) "max width" 1 plan.O.Frontier.max_width

let t_frontier_bfs_beats_random_on_grid () =
  (* 6x6 grid: a random order produces much wider frontiers than BFS. *)
  let n = 36 in
  let idx r c = (r * 6) + c in
  let es = ref [] in
  for r = 0 to 5 do
    for c = 0 to 5 do
      if c < 5 then es := (idx r c, idx r (c + 1), 0.5) :: !es;
      if r < 5 then es := (idx r c, idx (r + 1) c, 0.5) :: !es
    done
  done;
  let g = graph ~n !es in
  let bfs_w = O.Frontier.max_width_of g O.Bfs in
  let rand_w = O.Frontier.max_width_of g (O.Random 7) in
  Alcotest.(check bool)
    (Printf.sprintf "bfs %d < random %d" bfs_w rand_w)
    true (bfs_w < rand_w)

let t_best_order_valid () =
  let g = two_triangles 0.5 in
  let o = O.best_order g in
  let sorted = Array.copy o in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 7 Fun.id) sorted

let prop_frontier_width_bounded =
  QCheck.Test.make ~name:"frontier width <= n" ~count:200 (arb_graph ~max_n:12 ~max_m:30)
    (fun (n, es) ->
      let g = graph ~n es in
      List.for_all
        (fun s -> O.Frontier.max_width_of g s <= n)
        O.all_strategies)

let prop_plan_first_last_consistent =
  QCheck.Test.make ~name:"frontier first/last positions consistent" ~count:200
    (arb_graph ~max_n:10 ~max_m:25) (fun (n, es) ->
      let g = graph ~n es in
      let plan = O.Frontier.plan g (O.order_edges O.Bfs g) in
      List.for_all
        (fun v ->
          let f = plan.O.Frontier.first_pos.(v) and l = plan.O.Frontier.last_pos.(v) in
          if Ugraph.degree g v = 0 then f = -1 && l = -1 else 0 <= f && f <= l)
        (List.init n Fun.id))

let suite =
  ( "graphalgo",
    [
      Alcotest.test_case "is_connected" `Quick t_is_connected;
      Alcotest.test_case "components" `Quick t_components;
      Alcotest.test_case "terminals_connected" `Quick t_terminals_connected;
      Alcotest.test_case "bfs vs dsu connectivity" `Quick t_terminals_connected_dsu_agrees;
      Alcotest.test_case "bridges: two triangles" `Quick t_bridges_two_triangles;
      Alcotest.test_case "bridges: path" `Quick t_bridges_path;
      Alcotest.test_case "bridges: cycle" `Quick t_bridges_cycle;
      Alcotest.test_case "bridges: parallel edges" `Quick t_bridges_parallel;
      Alcotest.test_case "bridges: self loop" `Quick t_bridges_self_loop;
      Alcotest.test_case "articulation points" `Quick t_articulations;
      Alcotest.test_case "2-edge components" `Quick t_two_edge_components;
      Alcotest.test_case "block tree basics" `Quick t_blocktree_basic;
      Alcotest.test_case "block tree prunes dangling" `Quick t_blocktree_prunes_dangling;
      Alcotest.test_case "block tree keeps needed path" `Quick t_blocktree_keeps_connecting_path;
      Alcotest.test_case "block tree separated terminals" `Quick t_blocktree_separated;
      Alcotest.test_case "orders are permutations" `Quick t_order_permutations;
      Alcotest.test_case "frontier plan on path" `Quick t_frontier_plan_path;
      Alcotest.test_case "bfs narrower than random on grid" `Quick t_frontier_bfs_beats_random_on_grid;
      Alcotest.test_case "best_order valid" `Quick t_best_order_valid;
    ]
    @ qtests
        [
          prop_bridges_match_naive;
          prop_articulations_match_naive;
          prop_frontier_width_bounded;
          prop_plan_first_last_consistent;
        ] )
