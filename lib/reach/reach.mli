(** Reachability queries on uncertain graphs — the "special type of
    network reliability" of the paper's related work (Section 2):
    two-terminal (s–t) reliability, and the distance-constrained
    reachability of Jin et al. (PVLDB 2011), which asks for the
    probability that the hop distance between two vertices is at most a
    threshold.

    Two-terminal reliability delegates to the full S2BDD pipeline (it is
    k-terminal reliability with k = 2). Distance-constrained queries do
    not decompose over frontier states the same way, so they are served
    by an exact enumerator (tiny graphs) and a Monte Carlo estimator
    with per-sample breadth-first search under a depth budget.

    Distances are hop counts; the original paper supports weighted
    distances, which reduce to hops after subdividing edges. *)

val two_terminal :
  ?config:Netrel.S2bdd.config ->
  Ugraph.t ->
  source:int ->
  target:int ->
  Netrel.Reliability.report
(** [two_terminal g ~source ~target] is the s–t network reliability with
    all of Algorithm 1 (extension technique, S2BDD, Theorem-1 sample
    reduction) applied.
    @raise Invalid_argument if [source = target] or out of range. *)

type estimate = {
  value : float;
  samples_used : int;
  hits : int;
}

val distance_constrained_exact :
  Ugraph.t -> source:int -> target:int -> d:int -> float
(** Exact [Pr(dist(source, target) <= d)] by enumerating all possible
    graphs. @raise Invalid_argument beyond
    {!Bddbase.Bruteforce.max_edges} edges or on invalid arguments. *)

val distance_constrained_mc :
  ?seed:int ->
  Ugraph.t ->
  source:int ->
  target:int ->
  d:int ->
  samples:int ->
  estimate
(** Monte Carlo estimate of [Pr(dist(source, target) <= d)]:
    [samples] possible graphs, each tested with a depth-bounded BFS.
    @raise Invalid_argument on invalid arguments. *)

val hop_distance : Ugraph.t -> present:bool array -> int -> int -> int option
(** Hop distance between two vertices using only edges whose entry in
    [present] is true; [None] when unreachable. Exposed for tests and
    for building other distance-based analyses. *)
