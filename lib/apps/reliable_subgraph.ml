type result = {
  vertices : int list;
  subgraph : Ugraph.t;
  seed_terminals : int list;
  reliability : float;
}

(* Seed-connectivity count over the sample set, ignoring removed
   vertices (their incident edges are treated as absent). *)
let connected_count set ~removed seeds =
  let g = Sampleset.graph set in
  let dsu = Dsu.create (Ugraph.n_vertices g) in
  let count = ref 0 in
  for sample = 0 to Sampleset.samples set - 1 do
    Dsu.reset dsu;
    Ugraph.iter_edges
      (fun eid (e : Ugraph.edge) ->
        if
          (not removed.(e.u))
          && (not removed.(e.v))
          && Sampleset.edge_present set ~sample ~eid
        then ignore (Dsu.union dsu e.u e.v))
      g;
    if Dsu.all_connected dsu seeds then incr count
  done;
  !count

(* Per-vertex support: samples in which the vertex is reachable from a
   seed, under removals. Low-support vertices are removal candidates. *)
let support set ~removed seeds =
  let g = Sampleset.graph set in
  let n = Ugraph.n_vertices g in
  let counts = Array.make n 0 in
  let seen = Array.make n false in
  let queue = Queue.create () in
  for sample = 0 to Sampleset.samples set - 1 do
    Array.fill seen 0 n false;
    List.iter
      (fun v ->
        if (not removed.(v)) && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      seeds;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      counts.(v) <- counts.(v) + 1;
      Ugraph.iter_incident g v (fun ~eid ~other ->
          if
            (not seen.(other))
            && (not removed.(other))
            && Sampleset.edge_present set ~sample ~eid
          then begin
            seen.(other) <- true;
            Queue.add other queue
          end)
    done
  done;
  counts

let discover ?engine ?(seed = 1) ?(samples = 500) ?max_rounds g ~seeds
    ~threshold =
  Ugraph.validate_terminals g seeds;
  if threshold < 0. || threshold > 1. then
    invalid_arg "Reliable_subgraph.discover: threshold outside [0,1]";
  let n = Ugraph.n_vertices g in
  let max_rounds = Option.value ~default:n max_rounds in
  let set = Sampleset.shared ?engine ~seed g ~samples in
  let s = float_of_int samples in
  let removed = Array.make n false in
  let is_seed = Array.make n false in
  List.iter (fun v -> is_seed.(v) <- true) seeds;
  let current = ref (connected_count set ~removed seeds) in
  let min_count = int_of_float (Float.ceil (threshold *. s)) in
  let rounds = ref 0 in
  let progressing = ref (!current >= min_count) in
  while !progressing && !rounds < max_rounds do
    incr rounds;
    (* Candidates in ascending support order; accept the first whose
       removal keeps the reliability above threshold. *)
    let sup = support set ~removed seeds in
    let candidates =
      List.init n Fun.id
      |> List.filter (fun v -> (not removed.(v)) && not is_seed.(v))
      |> List.sort (fun a b ->
             match Int.compare sup.(a) sup.(b) with
             | 0 -> Int.compare a b
             | c -> c)
    in
    let rec try_remove = function
      | [] -> false
      | v :: rest ->
        removed.(v) <- true;
        let c = connected_count set ~removed seeds in
        if c >= min_count then begin
          current := c;
          true
        end
        else begin
          removed.(v) <- false;
          try_remove rest
        end
    in
    progressing := try_remove candidates
  done;
  let vertices =
    List.init n Fun.id |> List.filter (fun v -> not removed.(v))
  in
  let subgraph, old_of_new = Ugraph.induced g (Array.of_list vertices) in
  let seed_terminals = Ugraph.relabel_terminals ~old_of_new seeds in
  {
    vertices;
    subgraph;
    seed_terminals;
    reliability = float_of_int !current /. s;
  }
