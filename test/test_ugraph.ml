open Testutil

let t_basic () =
  let g = fig1 () in
  Alcotest.(check int) "vertices" 5 (Ugraph.n_vertices g);
  Alcotest.(check int) "edges" 6 (Ugraph.n_edges g);
  check_close "avg degree" (12. /. 5.) (Ugraph.avg_degree g);
  check_close "avg prob" 0.7 (Ugraph.avg_prob g)

let t_degrees () =
  let g = fig1 () in
  Alcotest.(check (list int)) "degree sequence"
    [ 2; 3; 2; 3; 2 ]
    (List.init 5 (Ugraph.degree g))

let t_incident () =
  let g = fig1 () in
  (* Vertex 3 touches edges (1,3) id 2, (2,3) id 3, (3,4) id 5. *)
  let eids = Array.to_list (Ugraph.incident_eids g 3) |> List.sort compare in
  Alcotest.(check (list int)) "incident eids" [ 2; 3; 5 ] eids;
  let nbrs = Array.to_list (Ugraph.neighbours g 3) |> List.sort compare in
  Alcotest.(check (list int)) "neighbours" [ 1; 2; 4 ] nbrs

let t_iter_incident_matches () =
  let g = two_triangles 0.5 in
  for v = 0 to Ugraph.n_vertices g - 1 do
    let collected = ref [] in
    Ugraph.iter_incident g v (fun ~eid ~other -> collected := (eid, other) :: !collected);
    Alcotest.(check int)
      (Printf.sprintf "degree of %d" v)
      (Ugraph.degree g v)
      (List.length !collected)
  done

let t_validation () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Ugraph: edge (0,5) outside vertex range [0,3)") (fun () ->
      ignore (graph ~n:3 [ (0, 5, 0.5) ]));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Ugraph: probability 1.5 outside [0,1]") (fun () ->
      ignore (graph ~n:3 [ (0, 1, 1.5) ]))

let t_self_loop_parallel () =
  let plain = fig1 () in
  Alcotest.(check bool) "no self loop" false (Ugraph.has_self_loop plain);
  Alcotest.(check bool) "no parallel" false (Ugraph.has_parallel_edge plain);
  let loopy = graph ~n:2 [ (0, 0, 0.5); (0, 1, 0.5) ] in
  Alcotest.(check bool) "self loop" true (Ugraph.has_self_loop loopy);
  Alcotest.(check int) "self loop counted once in degree" 2 (Ugraph.degree loopy 0);
  let para = graph ~n:2 [ (0, 1, 0.5); (1, 0, 0.3) ] in
  Alcotest.(check bool) "parallel detected regardless of orientation" true
    (Ugraph.has_parallel_edge para)

let t_other_endpoint () =
  let e : Ugraph.edge = { u = 3; v = 7; p = 0.5 } in
  Alcotest.(check int) "other of u" 7 (Ugraph.other_endpoint e 3);
  Alcotest.(check int) "other of v" 3 (Ugraph.other_endpoint e 7);
  let loop : Ugraph.edge = { u = 2; v = 2; p = 0.5 } in
  Alcotest.(check int) "self loop" 2 (Ugraph.other_endpoint loop 2);
  Alcotest.check_raises "non endpoint"
    (Invalid_argument "Ugraph.other_endpoint: vertex not an endpoint") (fun () ->
      ignore (Ugraph.other_endpoint e 1))

let t_map_probs () =
  let g = fig1 () in
  let g' = Ugraph.map_probs (fun _ e -> e.Ugraph.p /. 2.) g in
  check_close "halved avg prob" 0.35 (Ugraph.avg_prob g');
  check_close "original untouched" 0.7 (Ugraph.avg_prob g)

let t_induced () =
  let g = two_triangles 0.5 in
  let sub, old_of_new = Ugraph.induced g [| 0; 1; 2 |] in
  Alcotest.(check int) "sub vertices" 3 (Ugraph.n_vertices sub);
  Alcotest.(check int) "sub edges (first triangle only)" 3 (Ugraph.n_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] old_of_new;
  let ts = Ugraph.relabel_terminals ~old_of_new [ 2; 5 ] in
  Alcotest.(check (list int)) "terminal relabel drops missing" [ 2 ] ts

let t_induced_duplicate () =
  let g = fig1 () in
  Alcotest.check_raises "duplicate vertex"
    (Invalid_argument "Ugraph.induced: duplicate vertex") (fun () ->
      ignore (Ugraph.induced g [| 0; 0 |]))

let t_terminal_validation () =
  let g = fig1 () in
  Ugraph.validate_terminals g [ 0; 4 ];
  Alcotest.check_raises "empty"
    (Invalid_argument "Ugraph.validate_terminals: empty terminal set") (fun () ->
      Ugraph.validate_terminals g []);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Ugraph.validate_terminals: duplicate terminal 1") (fun () ->
      Ugraph.validate_terminals g [ 1; 1 ]);
  Alcotest.check_raises "range"
    (Invalid_argument "Ugraph.validate_terminals: vertex 9 out of range") (fun () ->
      Ugraph.validate_terminals g [ 9 ])

let t_io_roundtrip () =
  let g = fig1 () in
  let buf = Buffer.create 256 in
  Ugraph.to_buffer buf g;
  let g' = Ugraph.of_string (Buffer.contents buf) in
  Alcotest.(check int) "vertices" (Ugraph.n_vertices g) (Ugraph.n_vertices g');
  Alcotest.(check int) "edges" (Ugraph.n_edges g) (Ugraph.n_edges g');
  Ugraph.iter_edges
    (fun i (e : Ugraph.edge) ->
      let e' = Ugraph.edge g' i in
      Alcotest.(check int) "u" e.u e'.Ugraph.u;
      Alcotest.(check int) "v" e.v e'.Ugraph.v;
      check_close "p" e.p e'.Ugraph.p)
    g

let t_io_comments_blanks () =
  let g = Ugraph.of_string "# header\n\n  3 \n# mid\n0 1 0.25\n\n 1 2 0.75 \n" in
  Alcotest.(check int) "vertices" 3 (Ugraph.n_vertices g);
  Alcotest.(check int) "edges" 2 (Ugraph.n_edges g)

(* SNAP/KONECT exports separate fields with tabs; DOS files carry a
   trailing CR. Both must parse identically to the space form. *)
let t_io_tabs () =
  let g = Ugraph.of_string "3\n0\t1\t0.25\n1 \t 2  0.75\r\n" in
  Alcotest.(check int) "vertices" 3 (Ugraph.n_vertices g);
  Alcotest.(check int) "edges" 2 (Ugraph.n_edges g);
  check_close "p0" 0.25 (Ugraph.edge g 0).Ugraph.p;
  check_close "p1" 0.75 (Ugraph.edge g 1).Ugraph.p

let t_io_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Ugraph.of_channel: empty input")
    (fun () -> ignore (Ugraph.of_string "# only comments\n"));
  Alcotest.check_raises "bad edge"
    (Invalid_argument
       "Ugraph.of_channel: expected three fields `u v p` in edge line \"0 1\"")
    (fun () -> ignore (Ugraph.of_string "2\n0 1\n"));
  Alcotest.check_raises "out-of-range vertex"
    (Invalid_argument
       "Ugraph.of_channel: vertex id 7 outside [0,2) in edge line \"0 7 0.5\"")
    (fun () -> ignore (Ugraph.of_string "2\n0 7 0.5\n"));
  Alcotest.check_raises "negative vertex"
    (Invalid_argument
       "Ugraph.of_channel: vertex id -1 outside [0,2) in edge line \"-1 1 0.5\"")
    (fun () -> ignore (Ugraph.of_string "2\n-1 1 0.5\n"));
  Alcotest.check_raises "probability above 1"
    (Invalid_argument
       "Ugraph.of_channel: probability 1.5 outside [0,1] in edge line \
        \"0 1 1.5\"")
    (fun () -> ignore (Ugraph.of_string "2\n0 1 1.5\n"));
  Alcotest.check_raises "unreadable probability"
    (Invalid_argument
       "Ugraph.of_channel: unreadable probability \"high\" in edge line \
        \"0 1 high\"")
    (fun () -> ignore (Ugraph.of_string "2\n0 1 high\n"))

let t_file_roundtrip () =
  let g = two_triangles 0.42 in
  let path = Filename.temp_file "ugraph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ugraph.to_file path g;
      let g' = Ugraph.of_file path in
      Alcotest.(check int) "edges" (Ugraph.n_edges g) (Ugraph.n_edges g');
      check_close "avg prob" (Ugraph.avg_prob g) (Ugraph.avg_prob g'))

(* Random graph generator for property tests, reused by other suites. *)
let arb_graph ~max_n ~max_m =
  let gen =
    QCheck.Gen.(
      int_range 2 max_n >>= fun n ->
      int_range 0 max_m >>= fun m ->
      let edge = map3 (fun u v p -> (u mod n, v mod n, p)) small_nat small_nat (float_bound_inclusive 1.) in
      map (fun es -> (n, es)) (list_repeat m edge))
  in
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d; %s" n
        (String.concat " "
           (List.map (fun (u, v, p) -> Printf.sprintf "(%d,%d,%.2f)" u v p) es)))
    gen

let prop_adjacency_consistent =
  QCheck.Test.make ~name:"adjacency lists edges exactly twice" ~count:300
    (arb_graph ~max_n:15 ~max_m:40) (fun (n, es) ->
      let g = graph ~n es in
      (* Sum of degrees = 2 * non-loop edges + loops. *)
      let loops = List.length (List.filter (fun (u, v, _) -> u = v) es) in
      let total_deg = List.fold_left (fun acc v -> acc + Ugraph.degree g v) 0 (List.init n Fun.id) in
      total_deg = (2 * (List.length es - loops)) + loops)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"text io roundtrip" ~count:100 (arb_graph ~max_n:10 ~max_m:20)
    (fun (n, es) ->
      let g = graph ~n es in
      let buf = Buffer.create 256 in
      Ugraph.to_buffer buf g;
      let g' = Ugraph.of_string (Buffer.contents buf) in
      Ugraph.n_vertices g = Ugraph.n_vertices g'
      && Ugraph.n_edges g = Ugraph.n_edges g'
      && Ugraph.fold_edges
           (fun ok i (e : Ugraph.edge) ->
             let e' = Ugraph.edge g' i in
             ok && e.u = e'.Ugraph.u && e.v = e'.Ugraph.v && e.p = e'.Ugraph.p)
           true g)

let suite =
  ( "ugraph",
    [
      Alcotest.test_case "basic stats" `Quick t_basic;
      Alcotest.test_case "degrees" `Quick t_degrees;
      Alcotest.test_case "incident edges" `Quick t_incident;
      Alcotest.test_case "iter_incident totals" `Quick t_iter_incident_matches;
      Alcotest.test_case "validation" `Quick t_validation;
      Alcotest.test_case "self loop / parallel" `Quick t_self_loop_parallel;
      Alcotest.test_case "other_endpoint" `Quick t_other_endpoint;
      Alcotest.test_case "map_probs" `Quick t_map_probs;
      Alcotest.test_case "induced subgraph" `Quick t_induced;
      Alcotest.test_case "induced duplicate" `Quick t_induced_duplicate;
      Alcotest.test_case "terminal validation" `Quick t_terminal_validation;
      Alcotest.test_case "io roundtrip" `Quick t_io_roundtrip;
      Alcotest.test_case "io comments/blanks" `Quick t_io_comments_blanks;
      Alcotest.test_case "io tabs/cr" `Quick t_io_tabs;
      Alcotest.test_case "io errors" `Quick t_io_errors;
      Alcotest.test_case "file roundtrip" `Quick t_file_roundtrip;
    ]
    @ qtests [ prop_adjacency_consistent; prop_io_roundtrip ] )
