type t = {
  parent : int array;
  rank : int array;
  size : int array;
  mutable sets : int;
}

let create n =
  if n < 0 then invalid_arg "Dsu.create: negative size";
  { parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    size = Array.make n 1;
    sets = n }

let size t = Array.length t.parent

let find t x =
  (* Path halving: every visited node points to its grandparent. *)
  let parent = t.parent in
  let rec loop x =
    let p = parent.(x) in
    if p = x then x
    else begin
      let gp = parent.(p) in
      parent.(x) <- gp;
      loop gp
    end
  in
  loop x

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb =
      if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb)
    in
    t.parent.(rb) <- ra;
    t.size.(ra) <- t.size.(ra) + t.size.(rb);
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.sets <- t.sets - 1;
    true
  end

let connected t a b = find t a = find t b
let component_size t x = t.size.(find t x)
let count_sets t = t.sets

let reset t =
  for i = 0 to Array.length t.parent - 1 do
    t.parent.(i) <- i;
    t.rank.(i) <- 0;
    t.size.(i) <- 1
  done;
  t.sets <- Array.length t.parent

let all_connected t vs =
  match vs with
  | [] -> true
  | v :: rest ->
    let root = find t v in
    List.for_all (fun u -> find t u = root) rest
