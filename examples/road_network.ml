(* Urban-planning scenario (Section 1): road segments fail with some
   probability (congestion, closure, disaster); the reliability between
   key facilities — hospitals, depots, shelters — measures how robustly
   the road network keeps them mutually reachable.

   The example compares facility placements, and shows the extension
   technique's effect on a road network (the paper's Table 5 shows road
   networks shrink the most under prune/decompose/transform).

     dune exec examples/road_network.exe *)

module D = Workload.Datasets
module R = Netrel.Reliability
module S = Netrel.S2bdd
module P = Preprocess.Pipeline

let () =
  let d = D.tokyo ~scale:0.5 () in
  let g = d.D.graph in
  Printf.printf "Road network: %s\n\n" (Format.asprintf "%a" Ugraph.pp_stats g);

  (* Facility placements: clustered in one district vs spread city-wide.
     Grid vertex ids are row-major, so a 2x2 block of ids is a city
     block and distant ids are distant districts. *)
  let n = Ugraph.n_vertices g in
  let side = int_of_float (sqrt (float_of_int n)) in
  let c = (side / 2 * side) + (side / 2) in
  let clustered = [ c; c + 1; c + side; c + side + 1 ] in
  let spread = List.init 4 (fun i -> (i * n / 4) + (n / 8)) in
  let config = { S.default_config with S.samples = 10_000; S.width = 1_000 } in
  let score name terminals =
    let report, dt = Relstats.time (fun () -> R.estimate ~config g ~terminals) in
    Printf.printf "%-20s R = %-12.6g bounds [%.3g, %.3g]  (%s)\n" name
      report.R.value report.R.lower report.R.upper
      (Relstats.format_seconds dt)
  in
  score "clustered depots" clustered;
  score "spread depots" spread;

  (* How much does the extension technique shrink the problem? *)
  print_newline ();
  (match P.run g ~terminals:clustered with
  | P.Trivial r ->
    Printf.printf "Preprocessing resolved the query outright: R = %s\n"
      (Xprob.to_string r)
  | P.Reduced { pb; subproblems; stats } ->
    Printf.printf
      "Extension technique: %d edges -> %d edges in %d subproblem(s)\n\
       (%d bridges factored out with pb = %s; reduction ratio %.3f)\n"
      stats.P.original_edges stats.P.final_edges stats.P.n_subproblems
      stats.P.n_bridges (Xprob.to_string pb)
      (P.reduction_ratio stats);
    List.iter
      (fun (sp : P.subproblem) ->
        Printf.printf "  subproblem: %s, %d terminals\n"
          (Format.asprintf "%a" Ugraph.pp_stats sp.P.graph)
          (List.length sp.P.terminals))
      subproblems);
  print_newline ();
  Printf.printf
    "Facilities in one city block stay mutually reachable with a far\n\
     higher probability than facilities spread across the city, and the\n\
     bridge/Steiner preprocessing shrinks the computation to the small\n\
     relevant core of the road network.\n"
