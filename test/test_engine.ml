open Testutil
module E = Engine
module R = Netrel.Reliability
module S = Netrel.S2bdd
module SD = Netrel.Statsdoc
module D = Workload.Datasets
module SSet = Uapps.Sampleset
module Clust = Uapps.Clustering
module RSub = Uapps.Reliable_subgraph

let karate () = (D.karate ~seed:1 ()).D.graph
let assoc k e = List.assoc k (E.counters e)
let engine_with_obs () = E.create ~obs:(Obs.create ~clock:(fun () -> 0.) ()) ()

let t_method_names () =
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun m -> E.method_of_name (E.method_name m) = Some m)
       [ E.Pro; E.Pro_ht; E.Sampling_mc; E.Sampling_ht ]);
  Alcotest.(check bool) "cli aliases" true
    (E.method_of_name "mc" = Some E.Sampling_mc
    && E.method_of_name "ht" = Some E.Sampling_ht);
  Alcotest.(check bool) "unknown rejected" true (E.method_of_name "nope" = None)

let t_digest () =
  let g = fig1 () in
  Alcotest.(check bool) "non-negative" true (E.digest g >= 0);
  Alcotest.(check int) "stable across rebuilds" (E.digest g) (E.digest (fig1 ()));
  Alcotest.(check bool) "probability changes digest" true
    (E.digest g <> E.digest (fig1 ~p:0.71 ()));
  let a = graph ~n:2 [ (0, 1, 0.5); (0, 1, 0.4) ]
  and b = graph ~n:2 [ (0, 1, 0.4); (0, 1, 0.5) ] in
  Alcotest.(check bool) "edge order is part of the identity" true
    (E.digest a <> E.digest b)

let t_cache_counters () =
  let e = engine_with_obs () in
  let g = fig1 () in
  let q = { E.default with E.terminals = [ 0; 4 ]; samples = 500; width = 64 } in
  let a1 = E.query e g q in
  Alcotest.(check bool) "first query computed" false a1.E.cached;
  let a2 = E.query e g q in
  Alcotest.(check bool) "repeat served from memo" true a2.E.cached;
  Alcotest.(check bool) "memo replay bit-identical" true (a1.E.value = a2.E.value);
  (* Same terminals, new seed: prep replays, result recomputes. *)
  ignore (E.query e g { q with E.seed = 2 });
  (* New terminal set: fresh prep. *)
  ignore (E.query e g { q with E.terminals = [ 0; 2; 4 ] });
  Alcotest.(check int) "queries" 4 (assoc "queries" e);
  Alcotest.(check int) "graph.miss" 1 (assoc "graph.miss" e);
  Alcotest.(check int) "graph.hit" 3 (assoc "graph.hit" e);
  Alcotest.(check int) "prep.miss" 2 (assoc "prep.miss" e);
  Alcotest.(check int) "prep.hit" 1 (assoc "prep.hit" e);
  Alcotest.(check int) "result.miss" 3 (assoc "result.miss" e);
  Alcotest.(check int) "result.hit" 1 (assoc "result.hit" e)

let t_query_validation () =
  let e = E.create () in
  let g = fig1 () in
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Engine.query: jobs < 1")
    (fun () -> ignore (E.query e g { E.default with E.terminals = [ 0; 1 ]; jobs = 0 }));
  Alcotest.check_raises "bad terminals"
    (Invalid_argument "Ugraph.validate_terminals: vertex 9 out of range")
    (fun () -> ignore (E.query e g { E.default with E.terminals = [ 0; 9 ] }))

(* The acceptance bar: an engine-served answer must be bit-identical to
   the standalone from-scratch estimate at the same seed, at every jobs
   value — including the full Statsdoc result section. *)

let t_bit_identity_pro () =
  let g = karate () in
  let ts = [ 0; 33 ] in
  List.iter
    (fun jobs ->
      let e = E.create () in
      let a =
        E.query e g
          { E.default with E.terminals = ts; samples = 3000; width = 64; jobs }
      in
      let config =
        { S.default_config with S.samples = 3000; S.width = 64; S.seed = 1 }
      in
      let rep = R.estimate ~config ~jobs g ~terminals:ts in
      Alcotest.(check bool)
        (Printf.sprintf "pro value bit-identical at jobs %d" jobs)
        true (a.E.value = rep.R.value);
      Alcotest.(check bool)
        (Printf.sprintf "pro result doc identical at jobs %d" jobs)
        true
        (a.E.result = SD.result_of_report rep))
    [ 1; 2; 8 ]

let t_bit_identity_sampling () =
  let g = karate () in
  let ts = [ 0; 33 ] in
  List.iter
    (fun jobs ->
      let e = E.create () in
      let a =
        E.query e g
          { E.default with E.terminals = ts; method_ = E.Sampling_mc;
            samples = 4000; jobs }
      in
      let est = Mcsampling.monte_carlo ~seed:1 ~jobs g ~terminals:ts ~samples:4000 in
      Alcotest.(check bool)
        (Printf.sprintf "mc bit-identical at jobs %d" jobs)
        true
        (a.E.value = est.Mcsampling.value && a.E.result = SD.result_of_estimate est);
      let aht =
        E.query e g
          { E.default with E.terminals = ts; method_ = E.Sampling_ht;
            samples = 4000; jobs }
      in
      let ht = Mcsampling.horvitz_thompson ~seed:1 ~jobs g ~terminals:ts ~samples:4000 in
      Alcotest.(check bool)
        (Printf.sprintf "ht bit-identical at jobs %d" jobs)
        true
        (aht.E.value = ht.Mcsampling.value
        && aht.E.result = SD.result_of_estimate ht))
    [ 1; 2; 8 ]

let t_bit_identity_bitsliced () =
  let g = karate () in
  let ts = [ 0; 33 ] in
  let e = E.create () in
  let a =
    E.query e g
      { E.default with E.terminals = ts; method_ = E.Sampling_mc;
        samples = 4000; kernel = Mcsampling.Bitsliced }
  in
  let est =
    Mcsampling.monte_carlo ~seed:1 ~kernel:Mcsampling.Bitsliced g ~terminals:ts
      ~samples:4000
  in
  Alcotest.(check bool) "bitsliced bit-identical" true
    (a.E.value = est.Mcsampling.value && a.E.result = SD.result_of_estimate est)

let t_bit_identity_adaptive () =
  let g = karate () in
  let ts = [ 0; 33 ] in
  List.iter
    (fun jobs ->
      let e = E.create () in
      let a =
        E.query e g
          { E.default with E.terminals = ts; samples = 3000; width = 64;
            ci_width = Some 0.05; max_samples = Some 20_000; jobs }
      in
      let config =
        { S.default_config with S.samples = 3000; S.width = 64; S.seed = 1 }
      in
      let r =
        Adaptive.reliability ~config ~jobs ~max_samples:20_000 g ~terminals:ts
          ~ci_width:0.05
      in
      Alcotest.(check bool)
        (Printf.sprintf "adaptive pro bit-identical at jobs %d" jobs)
        true
        (a.E.value = r.Adaptive.value && a.E.exact = r.Adaptive.exact))
    [ 1; 2; 8 ]

(* ---- client artifact slots / apps integration ---- *)

let t_sampleset_shared () =
  let e = engine_with_obs () in
  let g = fig1 () in
  let s1 = SSet.shared ~engine:e ~seed:3 g ~samples:100 in
  let s2 = SSet.shared ~engine:e ~seed:3 g ~samples:100 in
  Alcotest.(check bool) "same physical artifact" true (s1 == s2);
  Alcotest.(check int) "artifact.miss" 1 (assoc "artifact.miss" e);
  Alcotest.(check int) "artifact.hit" 1 (assoc "artifact.hit" e);
  let s3 = SSet.shared ~engine:e ~seed:4 g ~samples:100 in
  Alcotest.(check bool) "distinct key, distinct artifact" true (s3 != s1);
  let plain = SSet.draw ~seed:3 g ~samples:100 in
  for sample = 0 to 99 do
    for eid = 0 to Ugraph.n_edges g - 1 do
      Alcotest.(check bool) "same bits as engine-less draw"
        (SSet.edge_present plain ~sample ~eid)
        (SSet.edge_present s1 ~sample ~eid)
    done
  done

let t_apps_identity () =
  let g = karate () in
  let e = E.create () in
  let plain = RSub.discover g ~seeds:[ 0; 33 ] ~threshold:0.9 in
  let shared = RSub.discover ~engine:e g ~seeds:[ 0; 33 ] ~threshold:0.9 in
  Alcotest.(check (list int)) "same vertex set" plain.RSub.vertices
    shared.RSub.vertices;
  Alcotest.(check bool) "same reliability" true
    (plain.RSub.reliability = shared.RSub.reliability);
  let c1 = Clust.cluster g ~k:4 in
  let c2 = Clust.cluster ~engine:e g ~k:4 in
  Alcotest.(check (array int)) "same centers" c1.Clust.centers c2.Clust.centers;
  Alcotest.(check (array int)) "same assignment" c1.Clust.assignment
    c2.Clust.assignment

let suite =
  ( "engine",
    [
      Alcotest.test_case "method names" `Quick t_method_names;
      Alcotest.test_case "graph digest" `Quick t_digest;
      Alcotest.test_case "cache counters" `Quick t_cache_counters;
      Alcotest.test_case "query validation" `Quick t_query_validation;
      Alcotest.test_case "bit identity: pro" `Quick t_bit_identity_pro;
      Alcotest.test_case "bit identity: sampling" `Quick t_bit_identity_sampling;
      Alcotest.test_case "bit identity: bitsliced" `Quick t_bit_identity_bitsliced;
      Alcotest.test_case "bit identity: adaptive" `Quick t_bit_identity_adaptive;
      Alcotest.test_case "sampleset shared" `Quick t_sampleset_shared;
      Alcotest.test_case "apps identity" `Quick t_apps_identity;
    ] )
