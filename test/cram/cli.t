The CLI's deterministic surfaces: stats, gen, preprocess, estimate
(exact cases) and bounds. Timing lines are filtered out.

  $ netrel stats --dataset karate
  Karate: |V|=34 |E|=78 avg_deg=4.59 avg_prob=0.534
  connected components: 1, bridges: 1
  $ netrel stats | head -3
  Abbr     Type           #vertices     #edges   Avg.Deg  Avg.Prob
  Karate   Social                34         78      4.59     0.534
  Am-Rv    Affiliation          141        160      2.27     0.525
  $ netrel gen --dataset karate | head -4
  # uncertain graph: 34 vertices, 78 edges
  34
  0 1 0.70292183315885048
  0 2 0.52043661993885693
  $ netrel preprocess --dataset am-rv --terminals 0,50,100
  graph Am-Rv: |V|=141 |E|=160 avg_deg=2.27 avg_prob=0.525
  pruned: 141 -> 29 vertices, 160 -> 48 edges
  decomposed at 2 bridges (pb = 0.05401875203) into 1 subproblem(s)
  transformed to 14 edges total (reduction ratio 0.087, 2 rounds)
    #0: |V|=8 |E|=14 avg_deg=3.50 avg_prob=0.604, terminals [0, 4, 6]
  $ netrel estimate --dataset am-rv --terminals 0,50,100 | grep -v time
  graph Am-Rv: |V|=141 |E|=160 avg_deg=2.27 avg_prob=0.525
  terminals: [0, 50, 100]
  R = 0.0460878085  (exact)
  bounds = [0.0460878085, 0.0460878085]
  budget: s = 10000 -> s' = 0, 0 descents drawn
  $ netrel bounds --dataset am-rv --terminals 0,50,100 --threshold 0.5 | grep -v time
  graph Am-Rv: |V|=141 |E|=160 avg_deg=2.27 avg_prob=0.525
  proven bounds: [0.0460878085, 0.0460878085]  (exact)
  threshold 0.5: R < threshold (proven)

Brute force and the exact BDD agree on a small hand-written graph
(the paper's Figure 1 example):

  $ cat > fig1.txt <<'END'
  > 5
  > 0 1 0.7
  > 0 2 0.7
  > 1 3 0.7
  > 2 3 0.7
  > 1 4 0.7
  > 3 4 0.7
  > END
  $ netrel estimate --graph fig1.txt --terminals 0,3,4 --method brute | grep "R ="
  R = 0.716527  (exhaustive over 2^6 possible graphs)
  $ netrel estimate --graph fig1.txt --terminals 0,3,4 --method bdd | grep "R ="
  R = 0.716527  (exact)
  $ netrel estimate --graph fig1.txt --terminals 0,3,4 | grep "R ="
  R = 0.716527  (exact)

--jobs changes the domain count but never the result: the same seed at
jobs 1 and jobs 4 prints byte-identical reports (timing filtered):

  $ netrel estimate --dataset karate --terminals 0,33 --width 64 --samples 3000 --jobs 1 | grep -v time > jobs1.out
  $ netrel estimate --dataset karate --terminals 0,33 --width 64 --samples 3000 --jobs 4 | grep -v time > jobs4.out
  $ cat jobs1.out
  graph Karate: |V|=34 |E|=78 avg_deg=4.59 avg_prob=0.534
  terminals: [0, 33]
  R = 0.9983328846
  bounds = [0.1786016612, 1]
  budget: s = 3000 -> s' = 2464, 2402 descents drawn
  $ cmp jobs1.out jobs4.out
  $ netrel estimate --dataset karate --terminals 0,33 -m mc -s 5000 --jobs 1 | grep "R =" > mc1.out
  $ netrel estimate --dataset karate --terminals 0,33 -m mc -s 5000 --jobs 4 | grep "R =" > mc4.out
  $ cat mc1.out
  R = 0.9992  (5000 samples, 4996 hits)
  $ cmp mc1.out mc4.out

Errors exit non-zero with a message:

  $ netrel estimate --dataset karate --terminals 0,33 --jobs 0
  netrel: --jobs must be >= 1 (got 0)
  [2]

  $ netrel estimate --dataset nope -k 3
  netrel: unknown dataset "nope" (known: karate, am-rv, dblp1, dblp2, tokyo, nyc, hit-d)
  [2]
  $ netrel estimate --dataset karate
  netrel: one of --terminals IDS or -k K is required
  [2]
  $ netrel estimate --dataset karate --terminals 0,99
  netrel: --terminals: vertex 99 outside [0,34)
  [2]
  $ netrel estimate --dataset karate --terminals 0,33 --method brute
  graph Karate: |V|=34 |E|=78 avg_deg=4.59 avg_prob=0.534
  terminals: [0, 33]
  netrel: Bruteforce.reliability: 78 edges > 25
  [2]
