(* Validates a Chrome trace-event file emitted by `netrel estimate
   --trace` (run from the dune rule at --jobs 2): the file must parse
   with Obs.Json.of_string_exn, pass Trace.validate_chrome, carry the
   schema stamp, contain at least one span per domain lane 0..lanes-1,
   and include S2BDD layer spans with width/pc/pd args. Usage:

     trace_check FILE LANES *)

module J = Obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let () =
  let path, lanes =
    match Sys.argv with
    | [| _; path; lanes |] -> (path, int_of_string lanes)
    | _ -> fail "usage: trace_check FILE LANES"
  in
  let doc =
    try J.of_string_exn (read_file path)
    with e -> fail "%s does not parse: %s" path (Printexc.to_string e)
  in
  (match Trace.validate_chrome doc with
  | Ok () -> ()
  | Error e -> fail "%s: schema: %s" path e);
  (match J.member "otherData" doc with
  | Some od when J.member "schema" od = Some (J.Int Trace.schema_version) -> ()
  | _ -> fail "%s: missing/wrong otherData.schema" path);
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List evs) -> evs
    | _ -> fail "%s: missing traceEvents" path
  in
  let ph e = match J.member "ph" e with Some (J.Str s) -> s | _ -> "" in
  let tid e = match J.member "tid" e with Some (J.Int i) -> i | _ -> -1 in
  (* One span ("X") per domain lane: the descent / chunk tasks are
     assigned round-robin over lanes 0..lanes-1, so every lane below
     the domain budget must have recorded work. *)
  for lane = 0 to lanes - 1 do
    if
      not
        (List.exists (fun e -> ph e = "X" && tid e = lane) events)
    then fail "%s: no span on lane %d (want %d lanes)" path lane lanes
  done;
  (match
     List.find_opt
       (fun e ->
         ph e = "X" && J.member "name" e = Some (J.Str "layer"))
       events
   with
  | None -> fail "%s: no layer spans" path
  | Some e -> (
    match J.member "args" e with
    | Some args
      when J.member "width" args <> None
           && J.member "pc" args <> None
           && J.member "pd" args <> None -> ()
    | _ -> fail "%s: layer span lacks width/pc/pd args" path));
  Printf.printf "trace_check: %s ok (%d events, %d lanes)\n" path
    (List.length events) lanes
