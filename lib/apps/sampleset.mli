(** A reusable set of sampled possible graphs.

    The uncertain-graph analyses of Section 2 (reliability search,
    reliable subgraphs, clustering) all evaluate many reliability
    queries over the same graph; sharing one set of sampled possible
    graphs across queries amortises the sampling cost and makes query
    answers consistent (the same world is used for every query).

    Samples are stored bit-packed: [samples * n_edges / 8] bytes. *)

type t

val draw : ?seed:int -> Ugraph.t -> samples:int -> t
(** Sample [samples] possible graphs. @raise Invalid_argument if
    [samples <= 0]. *)

val graph : t -> Ugraph.t
val samples : t -> int

val edge_present : t -> sample:int -> eid:int -> bool

val reach_counts : t -> sources:int list -> int array
(** Per vertex: in how many samples it is reachable from at least one
    source (multi-source BFS per sample). The sources themselves count
    in every sample. O(samples * (V + E)). *)

val connected_count : t -> int list -> int
(** Number of samples in which all the given vertices are connected —
    [s * R^] for the terminal set. *)

val pairwise_counts : t -> int list -> (int * int * int) list
(** For every unordered pair of the given vertices: [(u, v, count)]
    with [count] the samples connecting them. One union–find pass per
    sample. *)

val shared : ?engine:Engine.t -> ?seed:int -> Ugraph.t -> samples:int -> t
(** [shared ?engine ~seed g ~samples] is {!draw}, served through
    [engine]'s per-graph artifact cache when one is given: the first
    call draws, later calls with the same (graph, seed, samples) reuse
    the stored set (engine counter [artifact.hit]). Identical to
    {!draw} in every observable way — the set is a pure function of its
    inputs. *)
