(** The full extension technique (Algorithm 3): prune, decompose,
    transform.

    Given [(G, T)], produces [pb] and subproblems [(G_i, T_i)] with
    [R[G, T] = pb * prod_i R[G_i, T_i]] (Lemma 5.1), where every [G_i]
    is no larger — usually far smaller — than [G]. Each [T_i] contains
    the original terminals falling in [G_i] plus the endpoints of
    decomposed bridges, which must be connected for the terminals to
    be. *)

type subproblem = {
  graph : Ugraph.t;
  terminals : int list;  (** at least two, in [graph]'s numbering *)
}

type stats = {
  original_vertices : int;
  original_edges : int;
  pruned_vertices : int;
  pruned_edges : int;    (** after the Steiner prune, before decompose *)
  n_bridges : int;       (** decomposed bridges (kept ones) *)
  n_subproblems : int;
  final_edges : int;     (** summed over subproblems *)
  max_subproblem_edges : int;
      (** the paper's Table 5 "reduced graph size" numerator *)
  transform_rounds : int;
}

type outcome =
  | Trivial of Xprob.t
      (** reliability resolved outright: 1 (fewer than two terminals) or
          0 (terminals topologically separated) *)
  | Reduced of {
      pb : Xprob.t;  (** product of decomposed bridge probabilities *)
      subproblems : subproblem list;
      stats : stats;
    }

val run : ?obs:Obs.t -> ?trace:Trace.t -> Ugraph.t -> terminals:int list -> outcome
(** [obs] (default {!Obs.disabled}) records the per-phase account under
    the ["preprocess"] prefix: [prune]/[decompose]/[transform] timers,
    the {!stats} fields as counters, a [reduction_ratio] gauge and an
    [outcome] text ([trivial_one], [trivial_zero] or [reduced]).

    [trace] (default {!Trace.disabled}) streams one span per stage
    ([prune]/[decompose]/[transform]) nested inside a covering
    [preprocess] span that carries the outcome in its args — closed on
    every return path, including the trivial ones.

    @raise Invalid_argument on an invalid terminal set (empty terminal
    sets are invalid; use the graph itself for k = 0 semantics). *)

val reduction_ratio : stats -> float
(** [max_subproblem_edges / original_edges] — the paper's Table 5
    metric (lower is better). *)
