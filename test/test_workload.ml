open Testutil
module G = Workload.Generators
module P = Workload.Probability
module D = Workload.Datasets

let t_karate_shape () =
  let g = Workload.Karate.graph () in
  Alcotest.(check int) "34 vertices" 34 (Ugraph.n_vertices g);
  Alcotest.(check int) "78 edges" 78 (Ugraph.n_edges g);
  Alcotest.(check bool) "connected" true (Graphalgo.Connectivity.is_connected g);
  Alcotest.(check bool) "no parallels" false (Ugraph.has_parallel_edge g);
  (* Vertex 33 (id 32 in 0-indexing is vertex 33; the instructor hub is
     vertex 34 -> id 33) has the famous maximum degree 17. *)
  Alcotest.(check int) "hub degree" 17 (Ugraph.degree g 33)

let t_karate_seeded () =
  let a = Workload.Karate.graph ~seed:5 () and b = Workload.Karate.graph ~seed:5 () in
  check_close "same seed, same probabilities" (Ugraph.avg_prob a) (Ugraph.avg_prob b);
  let c = Workload.Karate.graph ~seed:6 () in
  Alcotest.(check bool) "different seed differs" true
    (Ugraph.avg_prob a <> Ugraph.avg_prob c)

let t_largest_component () =
  let g = graph ~n:6 [ (0, 1, 0.5); (1, 2, 0.5); (3, 4, 0.5) ] in
  let lc = G.largest_component g in
  Alcotest.(check int) "three vertices" 3 (Ugraph.n_vertices lc);
  Alcotest.(check int) "two edges" 2 (Ugraph.n_edges lc)

let t_preferential_attachment () =
  let g, alphas = G.preferential_attachment ~seed:1 ~n:500 ~edges_per_vertex:4 in
  Alcotest.(check bool) "connected" true (Graphalgo.Connectivity.is_connected g);
  Alcotest.(check int) "alphas align with edges" (Ugraph.n_edges g) (Array.length alphas);
  Alcotest.(check bool) "avg degree near 2*epv" true
    (let d = Ugraph.avg_degree g in
     d > 5. && d < 9.);
  Alcotest.(check bool) "has a hub"
    true
    (List.exists (fun v -> Ugraph.degree g v > 20) (List.init (Ugraph.n_vertices g) Fun.id))

let t_grid_road () =
  let g, lengths = G.grid_road ~seed:1 ~rows:20 ~cols:20 ~keep:0.25 in
  Alcotest.(check int) "all grid vertices" 400 (Ugraph.n_vertices g);
  Alcotest.(check bool) "connected" true (Graphalgo.Connectivity.is_connected g);
  Alcotest.(check int) "lengths align" (Ugraph.n_edges g) (Array.length lengths);
  let d = Ugraph.avg_degree g in
  Alcotest.(check bool) (Printf.sprintf "sparse: avg deg %.2f" d) true (d > 1.9 && d < 3.2)

let t_power_law () =
  let g = G.power_law ~seed:1 ~n:400 ~target_edges:4000 ~exponent:0.8 in
  Alcotest.(check bool) "connected" true (Graphalgo.Connectivity.is_connected g);
  let d = Ugraph.avg_degree g in
  Alcotest.(check bool) (Printf.sprintf "dense: avg deg %.1f" d) true (d > 10.)

let t_bipartite () =
  let g = G.bipartite_affiliation ~seed:1 ~people:136 ~groups:5 ~memberships:160 in
  Alcotest.(check bool) "connected" true (Graphalgo.Connectivity.is_connected g);
  Alcotest.(check bool) "about the right size" true
    (Ugraph.n_vertices g >= 100 && Ugraph.n_edges g <= 160)

let t_random_terminals () =
  let g = Workload.Karate.graph () in
  let ts = G.random_terminals ~seed:3 g ~k:5 in
  Alcotest.(check int) "five terminals" 5 (List.length ts);
  Ugraph.validate_terminals g ts;
  Alcotest.(check (list int)) "deterministic" ts (G.random_terminals ~seed:3 g ~k:5)

let t_probability_uniform () =
  let g = P.uniform ~seed:1 (fig1 ()) in
  Ugraph.iter_edges
    (fun _ (e : Ugraph.edge) ->
      Alcotest.(check bool) "in (0,1)" true (e.p > 0. && e.p < 1.))
    g

let t_probability_coauthor () =
  let g = graph ~n:3 [ (0, 1, 0.5); (1, 2, 0.5) ] in
  let g' = P.coauthor ~alphas:[| 1; 5 |] g in
  let p0 = (Ugraph.edge g' 0).Ugraph.p and p1 = (Ugraph.edge g' 1).Ugraph.p in
  check_close "alpha=1" (Float.log 2. /. Float.log 7.) p0;
  check_close "alpha=alphaM" (Float.log 6. /. Float.log 7.) p1;
  Alcotest.(check bool) "more collaboration, higher p" true (p1 > p0)

let t_probability_calibrate () =
  let g = P.uniform ~seed:9 (two_triangles 0.5) in
  List.iter
    (fun target ->
      let g' = P.calibrate_mean ~target g in
      check_close ~eps:0.02 (Printf.sprintf "mean ~ %.2f" target) target
        (Ugraph.avg_prob g'))
    [ 0.2; 0.391; 0.6 ]

let t_datasets_table2_shape () =
  (* Cheap scale so the test stays fast; check each dataset matches its
     class' degree/probability profile. *)
  let approx name lo hi x =
    Alcotest.(check bool) (Printf.sprintf "%s: %.3f in [%.2f, %.2f]" name x lo hi)
      true (lo <= x && x <= hi)
  in
  let d1 = D.dblp1 ~scale:0.1 () in
  approx "dblp1 avg prob" 0.15 0.3 (Ugraph.avg_prob d1.D.graph);
  approx "dblp1 avg deg" 5. 9. (Ugraph.avg_degree d1.D.graph);
  let tk = D.tokyo ~scale:0.1 () in
  approx "tokyo avg prob" 0.3 0.5 (Ugraph.avg_prob tk.D.graph);
  approx "tokyo avg deg" 1.8 3.2 (Ugraph.avg_degree tk.D.graph);
  let hd = D.hit_direct ~scale:0.1 () in
  approx "hit-d avg prob" 0.4 0.55 (Ugraph.avg_prob hd.D.graph);
  approx "hit-d avg deg" 15. 35. (Ugraph.avg_degree hd.D.graph);
  let am = D.am_rv () in
  approx "am-rv avg deg" 1.8 2.8 (Ugraph.avg_degree am.D.graph)

let t_datasets_connected () =
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check bool) (d.D.abbr ^ " connected") true
        (Graphalgo.Connectivity.is_connected d.D.graph))
    (D.all ~scale:0.05 ())

let t_table2_formatting () =
  let row = D.table2_row (D.karate ()) in
  Alcotest.(check bool) "mentions Karate" true
    (String.length row > 0
    && String.sub row 0 6 = "Karate")

(* ---- relstats ---- *)

let t_stats_variance_error () =
  let exact = [| 0.5; 1.0 |] in
  let estimates = [| [| 0.4; 0.6 |]; [| 1.0; 0.5 |] |] in
  (* squared errors: 0.01, 0.01, 0, 0.25 -> 0.27/4 *)
  check_close "variance" (0.27 /. 4.) (Relstats.variance ~exact ~estimates);
  (* relative errors: 0.2, 0.2, 0, 0.5 -> 0.9/4 *)
  check_close "error rate" (0.9 /. 4.) (Relstats.error_rate ~exact ~estimates)

let t_stats_zero_truth () =
  let exact = [| 0. |] in
  check_close "zero est, zero err" 0. (Relstats.error_rate ~exact ~estimates:[| [| 0. |] |]);
  check_close "nonzero est saturates" 1.
    (Relstats.error_rate ~exact ~estimates:[| [| 0.3 |] |])

let t_stats_basic () =
  check_close "mean" 2. (Relstats.mean [| 1.; 2.; 3. |]);
  (* n-1 divisor: variance (1+0+1)/2 = 1 *)
  check_close "std" 1. (Relstats.std_dev [| 1.; 2.; 3. |]);
  check_close "median" 2. (Relstats.quantile [| 3.; 1.; 2. |] 0.5);
  check_close "q0" 1. (Relstats.quantile [| 3.; 1.; 2. |] 0.);
  check_close "q1" 3. (Relstats.quantile [| 3.; 1.; 2. |] 1.)

let t_stats_time () =
  let x, dt = Relstats.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.);
  Alcotest.(check string) "format us" "500us" (Relstats.format_seconds 0.0005);
  Alcotest.(check string) "format ms" "5.0ms" (Relstats.format_seconds 0.005);
  Alcotest.(check string) "format s" "2.50s" (Relstats.format_seconds 2.5)

let prop_generators_deterministic =
  QCheck.Test.make ~name:"generators deterministic in seed" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let a, _ = G.preferential_attachment ~seed ~n:60 ~edges_per_vertex:3 in
      let b, _ = G.preferential_attachment ~seed ~n:60 ~edges_per_vertex:3 in
      Ugraph.n_edges a = Ugraph.n_edges b
      && Ugraph.avg_prob a = Ugraph.avg_prob b
      && Ugraph.avg_degree a = Ugraph.avg_degree b)

let suite =
  ( "workload",
    [
      Alcotest.test_case "karate shape" `Quick t_karate_shape;
      Alcotest.test_case "karate seeding" `Quick t_karate_seeded;
      Alcotest.test_case "largest component" `Quick t_largest_component;
      Alcotest.test_case "preferential attachment" `Quick t_preferential_attachment;
      Alcotest.test_case "grid road" `Quick t_grid_road;
      Alcotest.test_case "power law" `Quick t_power_law;
      Alcotest.test_case "bipartite affiliation" `Quick t_bipartite;
      Alcotest.test_case "random terminals" `Quick t_random_terminals;
      Alcotest.test_case "probability: uniform" `Quick t_probability_uniform;
      Alcotest.test_case "probability: coauthor formula" `Quick t_probability_coauthor;
      Alcotest.test_case "probability: calibrate mean" `Quick t_probability_calibrate;
      Alcotest.test_case "datasets: table2 profile" `Slow t_datasets_table2_shape;
      Alcotest.test_case "datasets: connected" `Slow t_datasets_connected;
      Alcotest.test_case "table2 formatting" `Quick t_table2_formatting;
      Alcotest.test_case "stats: variance / error rate" `Quick t_stats_variance_error;
      Alcotest.test_case "stats: zero truth" `Quick t_stats_zero_truth;
      Alcotest.test_case "stats: mean/std/quantile" `Quick t_stats_basic;
      Alcotest.test_case "stats: timing and formatting" `Quick t_stats_time;
    ]
    @ qtests [ prop_generators_deterministic ] )
