type t = {
  g : Ugraph.t;
  s : int;
  bits : Bytes.t; (* sample-major bit matrix: sample * m + eid *)
}

let graph t = t.g
let samples t = t.s

let draw ?(seed = 1) g ~samples =
  if samples <= 0 then invalid_arg "Sampleset.draw: samples <= 0";
  let m = Ugraph.n_edges g in
  let bits = Bytes.make (((samples * m) + 7) / 8) '\000' in
  let rng = Prng.create seed in
  let idx = ref 0 in
  for _ = 1 to samples do
    Ugraph.iter_edges
      (fun _ (e : Ugraph.edge) ->
        if Prng.bernoulli rng e.p then begin
          let byte = !idx lsr 3 and bit = !idx land 7 in
          Bytes.unsafe_set bits byte
            (Char.chr (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl bit)))
        end;
        incr idx)
      g
  done;
  { g; s = samples; bits }

let edge_present t ~sample ~eid =
  if sample < 0 || sample >= t.s then invalid_arg "Sampleset.edge_present: sample";
  if eid < 0 || eid >= Ugraph.n_edges t.g then
    invalid_arg "Sampleset.edge_present: eid";
  let idx = (sample * Ugraph.n_edges t.g) + eid in
  Char.code (Bytes.unsafe_get t.bits (idx lsr 3)) land (1 lsl (idx land 7)) <> 0

let present_unsafe t base eid =
  let idx = base + eid in
  Char.code (Bytes.unsafe_get t.bits (idx lsr 3)) land (1 lsl (idx land 7)) <> 0

let reach_counts t ~sources =
  let g = t.g in
  let n = Ugraph.n_vertices g in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Sampleset.reach_counts: source range")
    sources;
  if sources = [] then invalid_arg "Sampleset.reach_counts: no sources";
  let counts = Array.make n 0 in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let m = Ugraph.n_edges g in
  for sample = 0 to t.s - 1 do
    let base = sample * m in
    Array.fill seen 0 n false;
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      sources;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      counts.(v) <- counts.(v) + 1;
      Ugraph.iter_incident g v (fun ~eid ~other ->
          if (not seen.(other)) && present_unsafe t base eid then begin
            seen.(other) <- true;
            Queue.add other queue
          end)
    done
  done;
  counts

let with_dsu t f =
  let g = t.g in
  let dsu = Dsu.create (Ugraph.n_vertices g) in
  let m = Ugraph.n_edges g in
  for sample = 0 to t.s - 1 do
    let base = sample * m in
    Dsu.reset dsu;
    Ugraph.iter_edges
      (fun eid (e : Ugraph.edge) ->
        if present_unsafe t base eid then ignore (Dsu.union dsu e.u e.v))
      g;
    f dsu
  done

let connected_count t vertices =
  match vertices with
  | [] | [ _ ] -> t.s
  | _ ->
    let count = ref 0 in
    with_dsu t (fun dsu -> if Dsu.all_connected dsu vertices then incr count);
    !count

let pairwise_counts t vertices =
  let vs = Array.of_list vertices in
  let k = Array.length vs in
  let counts = Array.make (k * k) 0 in
  with_dsu t (fun dsu ->
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          if Dsu.connected dsu vs.(i) vs.(j) then
            counts.((i * k) + j) <- counts.((i * k) + j) + 1
        done
      done);
  let out = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto i + 1 do
      out := (vs.(i), vs.(j), counts.((i * k) + j)) :: !out
    done
  done;
  !out

(* Engine-backed sharing: the sample set is a pure function of
   (graph, seed, samples), so serving it from the engine's per-graph
   artifact cache is answer-preserving — analyses issued through the
   same engine reuse one draw instead of resampling per call. The
   private exception is the untyped slot the engine stores. *)
exception Slot of t

let shared ?engine ?(seed = 1) g ~samples =
  match engine with
  | None -> draw ~seed g ~samples
  | Some e -> (
    let key = Printf.sprintf "sampleset:seed=%d;samples=%d" seed samples in
    match Engine.artifact e g ~key ~build:(fun () -> Slot (draw ~seed g ~samples)) with
    | Slot s -> s
    | _ -> assert false)
