type estimate = {
  value : float;
  samples_used : int;
  hits : int;
  distinct : int;
  variance_estimate : float;
}

let validate g ~terminals ~samples =
  Ugraph.validate_terminals g terminals;
  if samples <= 0 then invalid_arg "Mcsampling: samples <= 0"

let trivial_estimate value samples =
  { value; samples_used = samples; hits = (if value > 0. then samples else 0);
    distinct = 1; variance_estimate = 0. }

(* Draw one possible graph into [present]; returns its probability. *)
let draw_sample rng g present =
  let prob = ref Xprob.one in
  Ugraph.iter_edges
    (fun eid (e : Ugraph.edge) ->
      if Prng.bernoulli rng e.p then begin
        present.(eid) <- true;
        prob := Xprob.scale e.p !prob
      end
      else begin
        present.(eid) <- false;
        prob := Xprob.scale (1. -. e.p) !prob
      end)
    g;
  !prob

let monte_carlo ?(seed = 1) g ~terminals ~samples =
  validate g ~terminals ~samples;
  if List.length terminals < 2 then trivial_estimate 1. samples
  else begin
    let rng = Prng.create seed in
    let m = Ugraph.n_edges g in
    let present = Array.make m false in
    let dsu = Dsu.create (Ugraph.n_vertices g) in
    let hits = ref 0 in
    for _ = 1 to samples do
      Ugraph.iter_edges
        (fun eid (e : Ugraph.edge) -> present.(eid) <- Prng.bernoulli rng e.p)
        g;
      if Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present terminals
      then incr hits
    done;
    let value = float_of_int !hits /. float_of_int samples in
    {
      value;
      samples_used = samples;
      hits = !hits;
      distinct = samples;
      variance_estimate = value *. (1. -. value) /. float_of_int samples;
    }
  end

(* pi_i = 1 - (1 - q)^s, and the HT weight q / pi_i, computed stably.
   For q below float range the weight tends to 1/s. *)
let ht_weight q_x s =
  let s_f = float_of_int s in
  let q = Xprob.to_float_approx q_x in
  if q <= 0. || q < 1e-280 then 1. /. s_f
  else
    let pi = -.Float.expm1 (s_f *. Float.log1p (-.q)) in
    if pi <= 0. then 1. /. s_f else q /. pi

let horvitz_thompson ?(seed = 1) g ~terminals ~samples =
  validate g ~terminals ~samples;
  if List.length terminals < 2 then trivial_estimate 1. samples
  else begin
    let rng = Prng.create seed in
    let m = Ugraph.n_edges g in
    let present = Array.make m false in
    let dsu = Dsu.create (Ugraph.n_vertices g) in
    (* Distinct samples keyed by a 63-bit content hash of the edge mask. *)
    let seen : (int, Xprob.t * bool) Hashtbl.t = Hashtbl.create samples in
    let hits = ref 0 in
    for _ = 1 to samples do
      let prob = draw_sample rng g present in
      (* FNV-1a over the mask bits. *)
      let h = ref 0x811C9DC5 in
      for eid = 0 to m - 1 do
        let bit = if present.(eid) then 0x9E37 else 0x79B9 in
        h := (!h lxor (bit + eid)) * 0x01000193 land max_int
      done;
      if not (Hashtbl.mem seen !h) then begin
        let connected =
          Graphalgo.Connectivity.terminals_connected_dsu dsu g ~present terminals
        in
        if connected then incr hits;
        Hashtbl.add seen !h (prob, connected)
      end
    done;
    let value =
      Hashtbl.fold
        (fun _ (q, connected) acc ->
          if connected then acc +. ht_weight q samples else acc)
        seen 0.
    in
    (* Plug-in variance, Equation (8): the first term uses the estimate,
       the correction subtracts the squared sample probabilities of
       connected samples. *)
    let s_f = float_of_int samples in
    let correction =
      Hashtbl.fold
        (fun _ (q, connected) acc ->
          if connected then
            acc +. ((s_f -. 1.) *. Xprob.to_float_approx (Xprob.mul q q))
          else acc)
        seen 0.
    in
    let v = (value *. (1. -. value) /. s_f) -. (correction /. (2. *. s_f)) in
    {
      value;
      samples_used = samples;
      hits = !hits;
      distinct = Hashtbl.length seen;
      variance_estimate = Float.max 0. v;
    }
  end
