(* Instrumentation layer (Obs), structured stats documents (Statsdoc),
   the 64-bit mask/descent hashes (collision regression for the weak
   FNV-1a fold they replaced) and the shared Horvitz–Thompson weight. *)

open Testutil
module J = Obs.Json
module SD = Netrel.Statsdoc
module Fstate = Bddbase.Fstate

(* ---- Obs cells ---- *)

let t_cells () =
  let now = ref 0. in
  let o = Obs.create ~clock:(fun () -> !now) () in
  Alcotest.(check bool) "enabled" true (Obs.enabled o);
  Obs.incr o "a";
  Obs.add o "a" 4;
  Alcotest.(check int) "counter accumulates" 5 (Obs.counter_value o "a");
  Obs.gauge o "g" 2.5;
  Obs.gauge o "g" 1.5;
  check_close "gauge keeps last" 1.5 (Obs.gauge_value o "g");
  Obs.gauge_max o "gm" 1.;
  Obs.gauge_max o "gm" 3.;
  Obs.gauge_max o "gm" 2.;
  check_close "gauge_max keeps max" 3. (Obs.gauge_value o "gm");
  Obs.text o "t" "x";
  Obs.text o "t" "y";
  Alcotest.(check string) "text keeps last" "y" (Obs.text_value o "t");
  Obs.record_span o "sp" 0.25;
  Obs.record_span o "sp" 0.75;
  check_close "span total" 1.0 (Obs.timer_seconds o "sp");
  Alcotest.(check int) "span count" 2 (Obs.timer_count o "sp");
  let v =
    Obs.time o "tm" (fun () ->
        now := !now +. 2.0;
        42)
  in
  Alcotest.(check int) "time returns result" 42 v;
  check_close "timer total" 2.0 (Obs.timer_seconds o "tm");
  Alcotest.(check int) "timer count" 1 (Obs.timer_count o "tm");
  (* [time] records even when the thunk raises. *)
  (try
     Obs.time o "tm" (fun () ->
         now := !now +. 1.0;
         failwith "boom")
   with Failure _ -> ());
  check_close "timer total after raise" 3.0 (Obs.timer_seconds o "tm");
  Alcotest.(check int) "timer count after raise" 2 (Obs.timer_count o "tm")

let t_sub_prefix () =
  let o = Obs.create ~clock:(fun () -> 0.) () in
  let s = Obs.sub o "phase" in
  Obs.incr s "n";
  Alcotest.(check int) "dotted key via parent" 1 (Obs.counter_value o "phase.n");
  let s2 = Obs.sub s "inner" in
  Obs.incr s2 "n";
  Alcotest.(check int) "nested prefix" 1 (Obs.counter_value o "phase.inner.n");
  (* fresh_like: same clock and enabledness, separate cells and no
     prefix — record under the phase explicitly, merge back in. *)
  let f = Obs.fresh_like s in
  Obs.incr (Obs.sub f "phase") "n";
  Alcotest.(check int) "fresh cells are isolated" 1
    (Obs.counter_value o "phase.n");
  Obs.merge ~into:o f;
  Alcotest.(check int) "merged back into the parent" 2
    (Obs.counter_value o "phase.n")

let t_disabled () =
  let o = Obs.disabled in
  Alcotest.(check bool) "disabled" false (Obs.enabled o);
  Obs.incr o "a";
  Obs.gauge o "g" 1.;
  Obs.text o "t" "x";
  Obs.series o "s" 1.;
  Obs.record_span o "sp" 1.;
  Alcotest.(check int) "counter noop" 0 (Obs.counter_value o "a");
  check_close "gauge noop" 0. (Obs.gauge_value o "g");
  Alcotest.(check string) "text noop" "" (Obs.text_value o "t");
  Alcotest.(check int) "series noop" 0 (Array.length (Obs.series_values o "s"));
  Alcotest.(check int) "span noop" 0 (Obs.timer_count o "sp");
  (* User code still runs under [time] and [sub] stays a no-op view. *)
  Alcotest.(check int) "time passthrough" 7 (Obs.time o "t2" (fun () -> 7));
  Alcotest.(check bool) "sub stays disabled" false
    (Obs.enabled (Obs.sub o "x"))

let t_series () =
  let o = Obs.create ~clock:(fun () -> 0.) () in
  for i = 1 to 10 do
    Obs.series o "s" (float_of_int i)
  done;
  Alcotest.(check (array (float 0.)))
    "exact below cap"
    (Array.init 10 (fun i -> float_of_int (i + 1)))
    (Obs.series_values o "s");
  for i = 11 to 100_000 do
    Obs.series o "s" (float_of_int i)
  done;
  let vs = Obs.series_values o "s" in
  Alcotest.(check bool) "bounded" true
    (Array.length vs <= 512 && Array.length vs >= 128);
  check_close "first point survives decimation" 1. vs.(0);
  let sorted = Array.copy vs in
  Array.sort compare sorted;
  Alcotest.(check (array (float 0.))) "order preserved" sorted vs

let t_merge () =
  let mk () = Obs.create ~clock:(fun () -> 0.) () in
  let a = mk () and b = mk () in
  Obs.incr a "c";
  Obs.add b "c" 2;
  Obs.gauge_max a "g" 1.;
  Obs.gauge_max b "g" 5.;
  Obs.record_span a "t" 1.;
  Obs.record_span b "t" 2.;
  Obs.text a "x" "first";
  Obs.text b "x" "second";
  Obs.series a "s" 1.;
  Obs.series b "s" 2.;
  Obs.incr b "only_b";
  Obs.merge ~into:a b;
  Alcotest.(check int) "counters add" 3 (Obs.counter_value a "c");
  check_close "gauges max" 5. (Obs.gauge_value a "g");
  check_close "timers add" 3. (Obs.timer_seconds a "t");
  Alcotest.(check int) "timer counts add" 2 (Obs.timer_count a "t");
  Alcotest.(check string) "text last wins" "second" (Obs.text_value a "x");
  Alcotest.(check (array (float 0.)))
    "series append" [| 1.; 2. |] (Obs.series_values a "s");
  Alcotest.(check int) "new keys copied" 1 (Obs.counter_value a "only_b")

(* ---- JSON ---- *)

let t_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("a", J.List [ J.Int 1; J.Float 1.5; J.Null; J.Bool true; J.Bool false ]);
        ("s", J.Str "he said \"hi\"\n\t\\ done");
        ("nested", J.Obj [ ("empty_obj", J.Obj []); ("empty_list", J.List []) ]);
        ("big", J.Int max_int);
        ("neg", J.Float (-0.125));
      ]
  in
  let s = J.to_string doc in
  Alcotest.(check bool) "compact reparses equal" true (J.of_string_exn s = doc);
  let sp = J.to_string ~pretty:true doc in
  Alcotest.(check bool) "pretty reparses equal" true (J.of_string_exn sp = doc);
  (* Integral floats keep a decimal point so they reparse as floats,
     not ints. *)
  Alcotest.(check string) "integral float repr" "2.0" (J.to_string (J.Float 2.));
  Alcotest.(check bool) "float stays float" true
    (J.of_string_exn "2.0" = J.Float 2.);
  (* Control characters round-trip through \u escapes. *)
  Alcotest.(check bool) "control char escape" true
    (J.of_string_exn (J.to_string (J.Str "\001\031")) = J.Str "\001\031");
  Alcotest.(check bool) "unicode escape decodes" true
    (J.of_string_exn {|"\u0041\u00e9"|} = J.Str "A\xc3\xa9");
  (* member *)
  Alcotest.(check bool) "member hit" true (J.member "big" doc = Some (J.Int max_int));
  Alcotest.(check bool) "member miss" true (J.member "absent" doc = None)

let t_json_errors () =
  let bad s =
    match J.of_string_exn s with
    | exception J.Parse_error _ -> ()
    | _ -> Alcotest.failf "parser accepted %S" s
  in
  List.iter bad
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}";
      "{\"a\" 1}"; "[1 2]"; "\"\\q\"" ]

let t_json_float_repr () =
  (* Deterministic shortest round-tripping text. *)
  List.iter
    (fun x ->
      let s = J.to_string (J.Float x) in
      match J.of_string_exn s with
      | J.Float y ->
        if not (Float.equal x y) then
          Alcotest.failf "float %h reprinted as %s -> %h" x s y
      | _ -> Alcotest.failf "float %h did not reparse as a float" x)
    [ 0.; 1.5; 0.1; 1. /. 3.; 1e-300; 1e300; Float.min_float; -42.;
      4_503_599_627_370_497. ]

(* ---- Statsdoc ---- *)

let t_statsdoc () =
  let obs = Obs.create ~clock:(fun () -> 0.) () in
  Obs.incr (Obs.sub obs "preprocess") "bridges";
  Obs.series (Obs.sub obs "construction") "width" 3.;
  let run =
    { SD.command = "test"; method_ = "mc"; graph = "karate";
      terminals = [ 0; 1 ]; seed = 1; jobs = 1; samples = 10; width = 4 }
  in
  let doc =
    SD.build ~obs ~run ~seconds:0.5
      ~result:(SD.result_value ~value:0.5 ~exact:false)
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("top-level key " ^ k) true (J.member k doc <> None))
    SD.required_keys;
  (* A phase that recorded nothing renders as an empty object, and the
     whole document survives a round trip through our own parser. *)
  Alcotest.(check bool) "absent phase is {}" true
    (J.member "sampling" doc = Some (J.Obj []));
  Alcotest.(check bool) "document round-trips" true
    (J.of_string_exn (J.to_string ~pretty:true doc) = doc)

(* ---- mask hash: collision regression ---- *)

(* The pre-fix FNV-1a fold, kept verbatim as a fixture. Its 16-bit
   per-edge constants only diffuse bits upward through the 32-bit prime
   multiply, so nearby masks collide in the low bits the HT dedup table
   keys on. *)
let old_mask_hash present m =
  let h = ref 0x811C9DC5 in
  for eid = 0 to m - 1 do
    let bit = if present.(eid) then 0x9E37 else 0x79B9 in
    h := (!h lxor (bit + eid)) * 0x01000193 land max_int
  done;
  !h

(* A concrete colliding pair (found by distinguished-point search over
   62-bit masks): distinct edge masks, identical old digest. *)
let coll_a = 1927001044146766988
let coll_b = 1924801847373463444
let mask_of s = Array.init 62 (fun i -> (s lsr i) land 1 = 1)

let t_mask_hash_collision () =
  let ma = mask_of coll_a and mb = mask_of coll_b in
  Alcotest.(check bool) "masks differ" true (ma <> mb);
  Alcotest.(check int) "old hash collides" (old_mask_hash ma 62)
    (old_mask_hash mb 62);
  Alcotest.(check bool) "new hash separates the pair" true
    (Mcsampling.mask_hash ma 62 <> Mcsampling.mask_hash mb 62);
  (* An HT-style dedup table keyed on the new hash counts both
     completions; under the old hash the second was silently dropped. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let h = Mcsampling.mask_hash m 62 in
      if not (Hashtbl.mem seen h) then Hashtbl.add seen h ())
    [ ma; mb; ma ];
  Alcotest.(check int) "dedup counts both masks" 2 (Hashtbl.length seen)

let t_mask_hash_basic () =
  let r = rng () in
  for _ = 1 to 200 do
    let m = 1 + Prng.int r 200 in
    let a = Array.init m (fun _ -> Prng.bool r) in
    let h = Mcsampling.mask_hash a m in
    Alcotest.(check int) "deterministic" h (Mcsampling.mask_hash a m);
    Alcotest.(check bool) "nonnegative" true (h >= 0);
    let i = Prng.int r m in
    let b = Array.copy a in
    b.(i) <- not b.(i);
    Alcotest.(check bool) "single bit flip separates" true
      (h <> Mcsampling.mask_hash b m)
  done;
  (* The length is folded in, so a prefix never aliases the full mask. *)
  let a = Array.make 64 false in
  Alcotest.(check bool) "length matters" true
    (Mcsampling.mask_hash a 62 <> Mcsampling.mask_hash a 63)

(* Same regression at the Fstate layer: the detailed descent hashes the
   completion it samples, one bernoulli per position, so scripting the
   two colliding masks onto a 62-edge path (identity order keeps stream
   position = edge id) reproduces the exact completions the HT descent
   table used to conflate. *)
let t_descent_hash_collision () =
  let n = 63 in
  let g = graph ~n (List.init 62 (fun i -> (i, i + 1, 0.5))) in
  let ctx = Fstate.make g ~order:(Array.init 62 Fun.id) ~terminals:[ 0; 62 ] in
  let dsu = Dsu.create (2 * n) in
  let descend mask =
    let i = ref 0 in
    let bern _p =
      let b = mask.(!i) in
      incr i;
      b
    in
    let _, h, _ =
      Fstate.descend_union ctx ~dsu ~detail:true ~pos:0 Fstate.initial
        ~bernoulli:bern
    in
    h
  in
  let ma = mask_of coll_a and mb = mask_of coll_b in
  Alcotest.(check int) "same completion, same hash" (descend ma) (descend ma);
  Alcotest.(check bool) "collision pair separates" true
    (descend ma <> descend mb)

(* ---- shared Horvitz–Thompson weight ---- *)

(* The two pre-dedupe implementations, kept as fixtures: mcsampling.ml
   worked from plain q with a 1e-280 underflow cutoff, s2bdd.ml from
   log q with a -600 cutoff. *)
let legacy_ht_weight_q q s =
  let s_f = float_of_int s in
  if q <= 0. || q < 1e-280 then 1. /. s_f
  else
    let pi = -.Float.expm1 (s_f *. Float.log1p (-.q)) in
    if pi <= 0. then 1. /. s_f else q /. pi

let legacy_ht_weight_logq ~logq ~n =
  let nf = float_of_int n in
  if logq < -600. then 1. /. nf
  else
    let q = Float.exp logq in
    if q >= 1. then 1.
    else
      let pi = -.Float.expm1 (nf *. Float.log1p (-.q)) in
      if pi <= 0. then 1. /. nf else q /. pi

let t_ht_weight_bounds =
  QCheck.Test.make ~count:2000 ~name:"ht_weight in [1/n, 1]"
    QCheck.(pair (float_range (-800.) 0.) (int_range 1 1_000_000))
    (fun (logq, n) ->
      let w = Mcsampling.ht_weight ~logq ~n in
      let lo = 1. /. float_of_int n in
      w >= lo *. (1. -. 1e-12) && w <= 1. +. 1e-12)

let t_ht_weight_agreement =
  QCheck.Test.make ~count:2000 ~name:"ht_weight agrees with both legacies"
    QCheck.(pair (float_range (-500.) 0.) (int_range 1 100_000))
    (fun (logq, n) ->
      let w = Mcsampling.ht_weight ~logq ~n in
      let wl = legacy_ht_weight_logq ~logq ~n in
      let wq = legacy_ht_weight_q (Float.exp logq) n in
      let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max a b in
      close w wl && close w wq)

let t_ht_weight_edges () =
  check_close "q = 1" 1. (Mcsampling.ht_weight ~logq:0. ~n:100);
  check_close "q above 1 clamps" 1. (Mcsampling.ht_weight ~logq:1. ~n:100);
  check_close "underflow limit is 1/n" 0.01
    (Mcsampling.ht_weight ~logq:(-5000.) ~n:100);
  check_close "n = 1 is weight 1" 1. (Mcsampling.ht_weight ~logq:(-50.) ~n:1);
  (* Continuity across the old -600 cutoff: the exact value and the
     limit agree to ~q there, so no estimator step at the seam. *)
  let a = Mcsampling.ht_weight ~logq:(-599.9) ~n:1000
  and b = Mcsampling.ht_weight ~logq:(-600.1) ~n:1000 in
  Alcotest.(check bool) "continuous at old cutoff" true
    (Float.abs (a -. b) <= 1e-12 *. a)

(* ---- estimator accounting honesty ---- *)

let t_trivial_estimate_honest () =
  let g = path4 0.5 in
  (* k <= 1 terminals: the answer is exactly 1 with no sampling done,
     and the record now says so. *)
  let e = Mcsampling.monte_carlo g ~terminals:[ 0 ] ~samples:100 in
  check_close "trivial value" 1. e.Mcsampling.value;
  Alcotest.(check int) "trivial samples_used" 0 e.Mcsampling.samples_used;
  Alcotest.(check int) "trivial hits" 0 e.Mcsampling.hits;
  Alcotest.(check int) "trivial distinct" 0 e.Mcsampling.distinct;
  check_close "trivial variance" 0. e.Mcsampling.variance_estimate;
  Alcotest.(check int) "trivial chunks" 0
    (Array.length e.Mcsampling.chunk_samples);
  let ht = Mcsampling.horvitz_thompson g ~terminals:[ 0 ] ~samples:100 in
  Alcotest.(check int) "HT trivial samples_used" 0 ht.Mcsampling.samples_used;
  (* distinct is HT-only bookkeeping: 0 for MC, the dedup-table size
     (positive, bounded by the budget) for HT. *)
  let mc = Mcsampling.monte_carlo g ~terminals:[ 0; 3 ] ~samples:50 in
  Alcotest.(check int) "MC distinct is 0" 0 mc.Mcsampling.distinct;
  Alcotest.(check int) "MC samples_used" 50 mc.Mcsampling.samples_used;
  let ht = Mcsampling.horvitz_thompson g ~terminals:[ 0; 3 ] ~samples:50 in
  Alcotest.(check bool) "HT distinct positive and bounded" true
    (ht.Mcsampling.distinct > 0 && ht.Mcsampling.distinct <= 50)

(* ---- instrumented runs record sensible accounts ---- *)

let t_sampler_instrumentation () =
  let g = fig1 () in
  let obs = Obs.create ~clock:(fun () -> 0.) () in
  let e =
    Mcsampling.horvitz_thompson ~obs ~seed:7 g ~terminals:[ 0; 3; 4 ]
      ~samples:500
  in
  Alcotest.(check int) "samples recorded" 500
    (Obs.counter_value obs "sampling.samples");
  Alcotest.(check int) "hits recorded" e.Mcsampling.hits
    (Obs.counter_value obs "sampling.hits");
  Alcotest.(check int) "distinct recorded" e.Mcsampling.distinct
    (Obs.counter_value obs "sampling.distinct");
  Alcotest.(check string) "estimator tagged" "ht"
    (Obs.text_value obs "sampling.estimator");
  Alcotest.(check bool) "chunk spans recorded" true
    (Obs.timer_count obs "sampling.chunk" >= 1);
  (* The account must not change the estimate. *)
  let plain =
    Mcsampling.horvitz_thompson ~seed:7 g ~terminals:[ 0; 3; 4 ] ~samples:500
  in
  check_close "instrumentation is observation-only" plain.Mcsampling.value
    e.Mcsampling.value

let suite =
  ( "obs",
    [
      Alcotest.test_case "obs: cells and readers" `Quick t_cells;
      Alcotest.test_case "obs: sub / fresh_like prefixes" `Quick t_sub_prefix;
      Alcotest.test_case "obs: disabled is a no-op" `Quick t_disabled;
      Alcotest.test_case "obs: series decimation" `Quick t_series;
      Alcotest.test_case "obs: merge" `Quick t_merge;
      Alcotest.test_case "json: round trip" `Quick t_json_roundtrip;
      Alcotest.test_case "json: parse errors" `Quick t_json_errors;
      Alcotest.test_case "json: float repr round-trips" `Quick t_json_float_repr;
      Alcotest.test_case "statsdoc: schema" `Quick t_statsdoc;
      Alcotest.test_case "mask hash: collision regression" `Quick
        t_mask_hash_collision;
      Alcotest.test_case "mask hash: basics" `Quick t_mask_hash_basic;
      Alcotest.test_case "descent hash: collision regression" `Quick
        t_descent_hash_collision;
      Alcotest.test_case "ht_weight: edge cases" `Quick t_ht_weight_edges;
      Alcotest.test_case "samplers: honest trivial accounting" `Quick
        t_trivial_estimate_honest;
      Alcotest.test_case "samplers: instrumented account" `Quick
        t_sampler_instrumentation;
    ]
    @ qtests [ t_ht_weight_bounds; t_ht_weight_agreement ] )
