open Testutil
module BF = Bddbase.Bruteforce
module FA = Bddbase.Factoring

let solve ?call_budget g ~terminals =
  match FA.reliability_float ?call_budget g ~terminals with
  | Ok r -> r
  | Error (`Budget_exceeded n) -> Alcotest.failf "factoring budget hit at %d" n

let t_known_graphs () =
  List.iter
    (fun (name, g, ts) ->
      let expect = BF.reliability g ~terminals:ts in
      check_close ~eps:1e-9 name expect (solve g ~terminals:ts))
    [
      ("single edge", graph ~n:2 [ (0, 1, 0.37) ], [ 0; 1 ]);
      ("path", path4 0.8, [ 0; 3 ]);
      ("cycle", cycle4 0.5, [ 0; 2 ]);
      ("fig1 k=3", fig1 (), [ 0; 3; 4 ]);
      ("fig1 k=5", fig1 (), [ 0; 1; 2; 3; 4 ]);
      ("two triangles", two_triangles 0.6, [ 0; 4 ]);
      ("parallel", graph ~n:2 [ (0, 1, 0.5); (0, 1, 0.4) ], [ 0; 1 ]);
      ("self loop", graph ~n:3 [ (0, 0, 0.5); (0, 1, 0.7); (1, 2, 0.7) ], [ 0; 2 ]);
    ]

let t_degenerate () =
  check_close "k=1" 1. (solve (path4 0.5) ~terminals:[ 2 ]);
  let disconnected = graph ~n:4 [ (0, 1, 0.9); (2, 3, 0.9) ] in
  check_close "separated" 0. (solve disconnected ~terminals:[ 0; 3 ]);
  check_close "p=1 graph" 1. (solve (cycle4 1.0) ~terminals:[ 0; 2 ]);
  check_close "p=0 graph" 0. (solve (cycle4 0.0) ~terminals:[ 0; 2 ])

let t_stats () =
  match FA.reliability (fig1 ()) ~terminals:[ 0; 3; 4 ] with
  | Error _ -> Alcotest.fail "budget"
  | Ok (_, st) ->
    Alcotest.(check bool) "made calls" true (st.FA.recursive_calls >= 1);
    Alcotest.(check bool) "reduced" true (st.FA.reductions >= 1)

let t_budget () =
  (* A 4x4 grid with k=4 needs a few factoring branches; budget 1 must
     trip before finishing. *)
  let es = ref [] in
  let idx r c = (r * 4) + c in
  for r = 0 to 3 do
    for c = 0 to 3 do
      if c < 3 then es := (idx r c, idx r (c + 1), 0.5) :: !es;
      if r < 3 then es := (idx r c, idx (r + 1) c, 0.5) :: !es
    done
  done;
  let g = graph ~n:16 !es in
  match FA.reliability ~call_budget:1 g ~terminals:[ 0; 15; 3; 12 ] with
  | Error (`Budget_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "expected budget exhaustion"

let t_series_parallel_without_recursion () =
  (* A pure series-parallel graph collapses entirely inside the
     reductions: the recursion should stay tiny. *)
  let g =
    graph ~n:6
      [ (0, 1, 0.9); (1, 2, 0.8); (1, 2, 0.7); (2, 3, 0.9); (3, 4, 0.6);
        (4, 5, 0.5); (3, 5, 0.4) ]
  in
  match FA.reliability g ~terminals:[ 0; 5 ] with
  | Error _ -> Alcotest.fail "budget"
  | Ok (r, st) ->
    check_close ~eps:1e-9 "value" (BF.reliability g ~terminals:[ 0; 5 ]) r;
    Alcotest.(check bool)
      (Printf.sprintf "few calls (%d)" st.FA.recursive_calls)
      true (st.FA.recursive_calls <= 1)

let prop_matches_bruteforce =
  QCheck.Test.make ~name:"factoring = brute force" ~count:200
    (Test_bddbase.arb_graph_ts ~max_n:7 ~max_m:11 ~max_k:4)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      let expect = BF.reliability g ~terminals:ts in
      Float.abs (solve g ~terminals:ts -. expect) <= 1e-9)

let prop_matches_bdd_on_larger =
  QCheck.Test.make ~name:"factoring = exact BDD beyond brute force" ~count:40
    (Test_bddbase.arb_graph_ts ~max_n:10 ~max_m:18 ~max_k:3)
    (fun (n, es, ts) ->
      let g = graph ~n es in
      match Bddbase.Exact.reliability_float g ~terminals:ts with
      | Error _ -> QCheck.assume_fail ()
      | Ok expect -> Float.abs (solve g ~terminals:ts -. expect) <= 1e-9)

let suite =
  ( "factoring",
    [
      Alcotest.test_case "known graphs" `Quick t_known_graphs;
      Alcotest.test_case "degenerate cases" `Quick t_degenerate;
      Alcotest.test_case "stats" `Quick t_stats;
      Alcotest.test_case "call budget" `Quick t_budget;
      Alcotest.test_case "series-parallel needs no recursion" `Quick
        t_series_parallel_without_recursion;
    ]
    @ qtests [ prop_matches_bruteforce; prop_matches_bdd_on_larger ] )
