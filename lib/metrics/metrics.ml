module Histogram = struct
  let sub_bits = 4
  let sub_count = 1 lsl sub_bits

  (* Highest set bit index for max_int is 61 (62-bit positive ints), so
     the largest bucket index is (61 - 4 + 1) * 16 + 15 = 943. *)
  let bucket_count = ((Sys.int_size - 2 - sub_bits + 1) * sub_count) + sub_count

  type t = {
    counts : int array;
    mutable total : int;
    mutable maxv : int;
  }

  let create () = { counts = Array.make bucket_count 0; total = 0; maxv = 0 }

  let copy h = { h with counts = Array.copy h.counts }

  (* Index of the most significant set bit of [v >= 1]: byte steps then
     bit steps, branch-light and allocation-free. *)
  let msb v =
    let k = ref 0 and x = ref v in
    while !x >= 0x100 do
      x := !x lsr 8;
      k := !k + 8
    done;
    while !x >= 2 do
      x := !x lsr 1;
      incr k
    done;
    !k

  let bucket_of v =
    let v = if v < 0 then 0 else v in
    if v < sub_count then v
    else
      let k = msb v in
      let shift = k - sub_bits in
      ((shift + 1) lsl sub_bits) lor ((v lsr shift) land (sub_count - 1))

  let lower_bound idx =
    if idx < sub_count then idx
    else
      let e = (idx lsr sub_bits) - 1 in
      let rem = idx land (sub_count - 1) in
      (sub_count + rem) lsl e

  let record_n h v n =
    if n > 0 then begin
      let v = if v < 0 then 0 else v in
      let i = bucket_of v in
      h.counts.(i) <- h.counts.(i) + n;
      h.total <- h.total + n;
      if v > h.maxv then h.maxv <- v
    end

  let record h v = record_n h v 1

  let count h = h.total
  let max_value h = h.maxv

  let quantile h q =
    if h.total = 0 then 0
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int h.total)) in
        if r < 1 then 1 else if r > h.total then h.total else r
      in
      let cum = ref 0 and i = ref 0 and res = ref 0 in
      (try
         while !i < bucket_count do
           let c = h.counts.(!i) in
           if c > 0 then begin
             cum := !cum + c;
             if !cum >= rank then begin
               res := lower_bound !i;
               raise Exit
             end
           end;
           incr i
         done
       with Exit -> ());
      !res
    end

  let merge ~into src =
    for i = 0 to bucket_count - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    into.total <- into.total + src.total;
    if src.maxv > into.maxv then into.maxv <- src.maxv

  let nonzero_buckets h =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.counts.(i) > 0 then acc := (i, h.counts.(i)) :: !acc
    done;
    !acc

  let equal a b = a.total = b.total && a.maxv = b.maxv && a.counts = b.counts
end

module Gcstat = struct
  type snapshot = {
    s_minor_words : float;
    s_promoted_words : float;
    s_major_words : float;
    s_minor_collections : int;
    s_major_collections : int;
    s_compactions : int;
    s_top_heap_words : int;
  }

  type delta = {
    minor_words : int;
    promoted_words : int;
    major_words : int;
    minor_collections : int;
    major_collections : int;
    compactions : int;
    top_heap_words : int;
  }

  let snapshot () =
    let s = Gc.quick_stat () in
    {
      (* quick_stat's minor_words only advances at collection
         boundaries in native code; Gc.minor_words reads the live
         allocation pointer, so short phases still account their
         allocation. *)
      s_minor_words = Gc.minor_words ();
      s_promoted_words = s.Gc.promoted_words;
      s_major_words = s.Gc.major_words;
      s_minor_collections = s.Gc.minor_collections;
      s_major_collections = s.Gc.major_collections;
      s_compactions = s.Gc.compactions;
      s_top_heap_words = s.Gc.top_heap_words;
    }

  let words d = if d <= 0. then 0 else int_of_float d

  let delta ~before ~after =
    {
      minor_words = words (after.s_minor_words -. before.s_minor_words);
      promoted_words = words (after.s_promoted_words -. before.s_promoted_words);
      major_words = words (after.s_major_words -. before.s_major_words);
      minor_collections =
        max 0 (after.s_minor_collections - before.s_minor_collections);
      major_collections =
        max 0 (after.s_major_collections - before.s_major_collections);
      compactions = max 0 (after.s_compactions - before.s_compactions);
      top_heap_words = after.s_top_heap_words;
    }

  let zero =
    {
      minor_words = 0;
      promoted_words = 0;
      major_words = 0;
      minor_collections = 0;
      major_collections = 0;
      compactions = 0;
      top_heap_words = 0;
    }
end
