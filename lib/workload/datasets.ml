type t = {
  name : string;
  abbr : string;
  kind : string;
  graph : Ugraph.t;
}

let karate ?(seed = 1) () =
  { name = "Zachary karate club"; abbr = "Karate"; kind = "Social";
    graph = Karate.graph ~seed () }

let am_rv ?(seed = 1) () =
  let g =
    Generators.bipartite_affiliation ~seed ~people:136 ~groups:5 ~memberships:160
  in
  { name = "American Revolution (synthetic)"; abbr = "Am-Rv"; kind = "Affiliation";
    graph = Probability.uniform ~seed:(seed + 1) g }

let scaled scale base = max 4 (int_of_float (float_of_int base *. scale))

let coauthor_dataset ~seed ~scale ~base_n ~epv ~target_prob ~name ~abbr =
  let n = scaled scale base_n in
  let g, alphas = Generators.preferential_attachment ~seed ~n ~edges_per_vertex:epv in
  let g = Probability.coauthor ~alphas g in
  let g = Probability.calibrate_mean ~target:target_prob g in
  { name; abbr; kind = "Coauthorship"; graph = g }

let dblp1 ?(seed = 2) ?(scale = 1.0) () =
  coauthor_dataset ~seed ~scale ~base_n:2590 ~epv:4 ~target_prob:0.222
    ~name:"DBLP before 2000 (synthetic)" ~abbr:"DBLP1"

let dblp2 ?(seed = 3) ?(scale = 1.0) () =
  coauthor_dataset ~seed ~scale ~base_n:4890 ~epv:3 ~target_prob:0.203
    ~name:"DBLP after 2000 (synthetic)" ~abbr:"DBLP2"

let road_dataset ~seed ~scale ~base_side ~keep ~target_prob ~name ~abbr =
  let side = max 3 (int_of_float (float_of_int base_side *. sqrt scale)) in
  let g, lengths = Generators.grid_road ~seed ~rows:side ~cols:side ~keep in
  let g = Probability.road ~lengths g in
  let g = Probability.calibrate_mean ~target:target_prob g in
  { name; abbr; kind = "Road network"; graph = g }

let tokyo ?(seed = 4) ?(scale = 1.0) () =
  road_dataset ~seed ~scale ~base_side:51 ~keep:0.23 ~target_prob:0.391
    ~name:"Tokyo (synthetic road grid)" ~abbr:"Tokyo"

let nyc ?(seed = 5) ?(scale = 1.0) () =
  road_dataset ~seed ~scale ~base_side:95 ~keep:0.16 ~target_prob:0.294
    ~name:"New York City (synthetic road grid)" ~abbr:"NYC"

let hit_direct ?(seed = 6) ?(scale = 1.0) () =
  let n = scaled scale 1825 in
  let target_edges = scaled scale 24_877 in
  let g = Generators.power_law ~seed ~n ~target_edges ~exponent:0.8 in
  let g = Probability.interaction_scores ~seed:(seed + 1) g in
  { name = "Hit-direct (synthetic PPI)"; abbr = "Hit-d"; kind = "Protein";
    graph = g }

let small ?(seed = 1) () = [ karate ~seed (); am_rv ~seed () ]

let large ?(seed = 1) ?(scale = 1.0) () =
  [
    dblp1 ~seed:(seed + 1) ~scale ();
    dblp2 ~seed:(seed + 2) ~scale ();
    tokyo ~seed:(seed + 3) ~scale ();
    nyc ~seed:(seed + 4) ~scale ();
    hit_direct ~seed:(seed + 5) ~scale ();
  ]

let all ?(seed = 1) ?(scale = 1.0) () = small ~seed () @ large ~seed ~scale ()

let table2_header =
  Printf.sprintf "%-8s %-13s %10s %10s %9s %9s" "Abbr" "Type" "#vertices"
    "#edges" "Avg.Deg" "Avg.Prob"

let table2_row d =
  Printf.sprintf "%-8s %-13s %10d %10d %9.2f %9.3f" d.abbr d.kind
    (Ugraph.n_vertices d.graph) (Ugraph.n_edges d.graph)
    (Ugraph.avg_degree d.graph) (Ugraph.avg_prob d.graph)
