(** Streaming structured trace events: the time-domain complement of
    {!Obs}'s aggregates.

    Where {!Obs} answers "how much, in total" (counters, timers,
    bounded series), [Trace] answers "{e when}": an append-only stream
    of timestamped events — completed spans, instants and
    counters-over-time — that shows the S2BDD layer loop stall on a
    wide frontier, the estimator converge, and wall-clock attributed to
    the individual domain lanes of the {!Par} pool.

    {2 Zero overhead when disabled}

    Every entry point takes a sink [t]; the {!disabled} sink (the
    default everywhere in the library) makes each call a single branch
    — no allocation, no clock read.  {!task}[ disabled] is [disabled]
    and {!merge} of a disabled side is a no-op, so instrumented
    parallel code pays nothing either.

    {2 Lanes, tasks and determinism}

    Events carry a {e lane}: the domain index ([tid] in the Chrome
    export) the work was assigned to.  The main thread records on
    lane 0.  Parallel work follows the same discipline as
    {!Obs.fresh_like}/{!Obs.merge}: each task records into its own
    bounded buffer created with {!task} (single writer, no
    synchronisation), bound to lane [i mod lanes] where [i] is the
    task index and [lanes] is {!Par.run_lanes} (the domain budget in
    effect); the caller then folds the buffers back with {!merge} in
    task order.  Consequently the merged stream's {e content and
    order} depend only on the problem and the seed — never on the
    domain schedule — and only the [lane] field varies with the
    [jobs] value.  With the clock pinned ([NETREL_FAKE_CLOCK], same
    hook as {!Obs}) the exported trace is byte-stable for a fixed
    seed and [jobs].

    Lane assignment is by task index, not by executing domain: under
    work stealing a task may run on a different domain than its lane
    names.  The trade is deliberate — recording [Domain.self] would
    make traces schedule-dependent and untestable; task-order lanes
    keep the determinism contract of {!Par} while still showing
    per-lane occupancy (each lane's spans carry the real durations of
    the tasks assigned to it).

    {2 Bounded buffers}

    Each buffer holds at most [capacity] events in a ring: on overflow
    the {e oldest} event is overwritten and a [dropped] count
    increments, deterministically (the surviving window is the last
    [capacity] events, in order).  {!merge} transfers the child's
    events and adds its drop count, so nothing is silently lost —
    exports record the total under ["dropped"]. *)

(** Event argument values (rendered into the Chrome [args] object). *)
type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Span of float  (** completed span; payload is the duration, seconds *)
  | Instant
  | Counter of float  (** sampled value of a named counter-over-time *)

type event = {
  name : string;
  kind : kind;
  ts : float;  (** seconds since the trace epoch (creation time) *)
  lane : int;  (** domain lane, [tid] in the Chrome export *)
  args : (string * arg) list;
}

type t

val schema_version : int
(** Version stamp carried by both export formats (under
    ["otherData.schema"] / the JSONL header). *)

val control_lane : int
(** The lane carrying cross-domain control events ({!instant_shared},
    the {!install_par_hook} dispatch stream): equal to {!Par.max_jobs},
    one past the largest possible domain lane index, so it never
    collides with a domain lane. *)

val disabled : t
(** The no-op sink: every recording call returns immediately. *)

val enabled : t -> bool

val create :
  ?clock:(unit -> float) ->
  ?capacity:int ->
  ?on_event:(event -> unit) ->
  unit ->
  t
(** A live sink recording on lane 0.  [clock] defaults to
    {!Obs.default_clock}[ ()] (so [NETREL_FAKE_CLOCK] pins it);
    [capacity] (default 65536) bounds every buffer created from this
    sink; [on_event] is invoked synchronously for {e every} event at
    emit time — including events recorded by {!task} buffers on worker
    domains, so it must be thread-safe (the {!Progress} reporter is).
    The listener fires even for events the ring subsequently drops. *)

val now : t -> float
(** The sink's clock (constant [0.] for {!disabled}). *)

val task : t -> lane:int -> t
(** A fresh buffer for one parallel task, bound to [lane]: same clock,
    epoch, capacity and listener as [t], its own event storage (single
    writer — only the executing task may record into it).  Fold the
    buffers back with {!merge} in task order.  [task disabled _] is
    [disabled].
    @raise Invalid_argument if [lane < 0]. *)

val merge : into:t -> t -> unit
(** Appends [src]'s events (and drop count) onto [into]'s buffer, in
    order, preserving each event's lane.  Call in task order from the
    thread that owns [into].  Does not re-fire the listener.  No-op if
    either side is disabled. *)

(** {2 Recording} *)

val instant : t -> ?args:(string * arg) list -> string -> unit

val counter : t -> string -> float -> unit
(** One sample of a named counter-over-time (Chrome ["C"] events — the
    per-layer frontier width, for instance, plots directly). *)

val gc_counters : t -> string -> Metrics.Gcstat.delta -> unit
(** [gc_counters t prefix d] records one Chrome counter sample per
    headline GC metric ([prefix ^ ".gc.minor_words"], [".gc.major_words"]
    and [".gc.top_heap_words"]) from a phase delta. Suppressed entirely
    under [NETREL_FAKE_CLOCK] (see {!Obs.gc_counters_live}) so pinned
    trace outputs stay byte-stable. *)

val complete : t -> ?args:(string * arg) list -> ts:float -> string -> unit
(** [complete t ~ts name] records a span that began at [ts] (a value of
    {!now}[ t]) and ends now — for spans whose arguments are only known
    at the end, like a layer's width after deletion. *)

val span : t -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] and records it as a completed span (also
    on exceptional exit).  When [t] is disabled this is exactly
    [f ()]. *)

val instant_shared : t -> ?args:(string * arg) list -> string -> unit
(** Thread-safe instant on {!control_lane}, usable from any domain
    (mutex-protected shared buffer).  The shared stream's order is
    submission order, which is only deterministic when one domain
    submits — it is appended after the merged lane stream in exports
    and is not covered by the lane-merge determinism contract. *)

val install_par_hook : t -> unit
(** Routes {!Par.set_batch_hook} into [t]: every batch dispatched to
    the domain pool emits a ["par.batch"] {!instant_shared} carrying
    the task count.  Installing a disabled sink clears the hook. *)

(** {2 Reading back} *)

val events : t -> event list
(** The sink's own buffer, oldest first (shared-lane events not
    included; see {!shared_events}). *)

val shared_events : t -> event list
val dropped : t -> int
(** Total events dropped on overflow (own buffer, merged children and
    the shared buffer). *)

(** {2 Export} *)

val to_chrome : t -> Obs.Json.t
(** The whole stream as one Chrome trace-event document (loadable in
    Perfetto / [chrome://tracing]): [pid] = 0 (the run), [tid] = lane,
    completed spans as ["X"] events with microsecond [ts]/[dur],
    instants as ["i"], counters as ["C"], plus process/thread-name
    metadata per lane.  Emitted with {!Obs.Json}, so it round-trips
    through {!Obs.Json.of_string_exn}. *)

val write_chrome : out_channel -> t -> unit

val write_jsonl : out_channel -> t -> unit
(** Flat export: a header line
    [{"netrel":"trace","schema":1,"dropped":N}] followed by one JSON
    object per event (same shape as the Chrome [traceEvents] entries,
    without the metadata records). *)

val validate_chrome : Obs.Json.t -> (unit, string) result
(** Structural schema check used by the tier-1 runtest rule: a
    ["traceEvents"] list must be present and every entry must carry
    [name]/[ph]/[pid]/[tid] (and [ts], except metadata records). *)

(** Live convergence reporter: a throttled, TTY-aware stderr view fed
    by the event stream (install as [create]'s [on_event]).  Shows the
    running estimate, CI half-width, samples/sec, HT dedup ratio and
    layer/width during construction.  Renders on phase transitions and
    then at most once per [interval]; with the fake clock only the
    phase-transition renders fire, so the output is byte-stable — the
    hook behind the [--progress] cram test. *)
module Progress : sig
  type reporter

  val create :
    ?emit:(string -> unit) ->
    ?tty:bool ->
    ?interval:float ->
    ?clock:(unit -> float) ->
    unit ->
    reporter
  (** [emit] receives whole frames (default: write to stderr and
      flush); [tty] (default: [Unix.isatty Unix.stderr]) selects
      carriage-return rewriting vs one line per render; [interval]
      (default 0.2s) throttles; [clock] defaults to
      {!Obs.default_clock}[ ()]. *)

  val on_event : reporter -> event -> unit
  (** Thread-safe: may be fed from worker domains. *)

  val finish : reporter -> unit
  (** Renders the final summary line (always, even when throttled) and
      stops consuming events.  Idempotent. *)
end
