(** Extended-range non-negative probability arithmetic.

    Network-reliability computations multiply up to [|E|] edge
    probabilities, so the existence probability of a single possible graph
    can be far below the smallest positive IEEE double
    ([~4.9e-324]).  The paper works around this with 10,000-digit decimal
    floats; all the algorithms actually need is {e dynamic range}, not
    precision, so this module represents a value as [m * 2^e] with an
    ordinary [float] mantissa [m] (normalised into [[0.5, 1)]) and an
    unbounded OCaml [int] binary exponent [e].  Relative precision is that
    of a double (53 bits), which dwarfs sampling error in every experiment.

    Values are immutable.  All operations expect (and produce) finite
    non-negative values; [sub] clamps small negative results of
    catastrophic cancellation to [zero] and raises [Invalid_argument] on
    clearly negative results. *)

type t
(** A non-negative extended-range real. *)

val zero : t
val one : t
val half : t

val of_float : float -> t
(** [of_float x] converts a non-negative finite float.
    @raise Invalid_argument if [x] is negative, infinite or NaN. *)

val to_float_exn : t -> float
(** Convert back to float.
    @raise Invalid_argument when the value overflows a double. Values
    below the smallest subnormal convert to [0.]. *)

val to_float_approx : t -> float
(** Like {!to_float_exn} but clamps overflow to [infinity] instead of
    raising. Underflow still returns [0.]. *)

val is_zero : t -> bool

val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].
    @raise Invalid_argument if the result is significantly negative
    (beyond cancellation noise); tiny negative residues clamp to
    {!zero}. *)

val complement : t -> t
(** [complement p] is [1 - p] for [p <= 1], clamping cancellation noise.
    @raise Invalid_argument if [p > 1] beyond rounding noise. *)

val scale : float -> t -> t
(** [scale c x] is [c * x] for a non-negative float [c]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pow_int : t -> int -> t
(** [pow_int x n] is [x^n] for [n >= 0] by binary exponentiation. *)

val log2 : t -> float
(** Base-2 logarithm as a float; [neg_infinity] for {!zero}. *)

val log10 : t -> float
(** Base-10 logarithm as a float; [neg_infinity] for {!zero}. *)

val mantissa_exponent : t -> float * int
(** Normalised representation [(m, e)] with value [m *. 2. ** e],
    [m] in [[0.5, 1)], or [(0., 0)] for {!zero}. *)

val sum : t list -> t
val sum_array : t array -> t

val to_string : t -> string
(** Decimal scientific notation, e.g. ["3.1415e-1234"]. *)

val pp : Format.formatter -> t -> unit
