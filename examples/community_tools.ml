(* The uncertain-graph analyses the paper lists in Section 2 — all of
   which consume reliability estimates — running on the Zachary karate
   club: reliability search (Khan et al.), k-center clustering
   (Ceccarello et al.) and reliable-subgraph discovery (Jin et al.).

     dune exec examples/community_tools.exe *)

module RSearch = Uapps.Reliability_search
module Clust = Uapps.Clustering
module RSub = Uapps.Reliable_subgraph

let () =
  let g = Workload.Karate.graph ~seed:5 () in
  Printf.printf "Karate club as an uncertain graph: %s\n\n"
    (Format.asprintf "%a" Ugraph.pp_stats g);

  (* 1. Reliability search: who is reliably reachable from the
     instructor (vertex 33, the famous hub)? *)
  let sources = [ 33 ] in
  let eta = 0.9 in
  let hits = RSearch.search ~seed:1 ~samples:4_000 g ~sources ~eta in
  Printf.printf "Reliability search from the instructor (eta = %.1f): %d vertices\n"
    eta (List.length hits);
  List.iteri
    (fun i r ->
      if i < 5 then
        Printf.printf "  vertex %2d reachable with probability %.3f\n"
          r.RSearch.vertex r.RSearch.reliability)
    hits;
  if List.length hits > 5 then
    Printf.printf "  ... and %d more\n" (List.length hits - 5);

  (* 2. Clustering: does the reliability metric recover the club's
     famous two-faction split? Vertex 0 is the officer, 33 the
     instructor. *)
  let cl = Clust.cluster ~seed:2 ~samples:2_000 g ~k:2 in
  let c0 = cl.Clust.assignment.(0) and c33 = cl.Clust.assignment.(33) in
  Printf.printf
    "\nk-center clustering (k = 2): centers at %d and %d; %s\n\
     average member-to-center reliability: %.3f\n"
    cl.Clust.centers.(0) cl.Clust.centers.(1)
    (if c0 <> c33 then "the two leaders land in different clusters"
     else "the two leaders share a cluster")
    (Clust.average_inner_reliability cl);

  (* 3. Reliable subgraph: the smallest context that keeps the two
     leaders connected with probability 0.8. *)
  let r = RSub.discover ~seed:3 ~samples:2_000 g ~seeds:[ 0; 33 ] ~threshold:0.8 in
  Printf.printf
    "\nReliable subgraph for the two leaders (threshold 0.8):\n\
     kept %d of %d vertices (%d edges), seed reliability %.3f\n"
    (List.length r.RSub.vertices) (Ugraph.n_vertices g)
    (Ugraph.n_edges r.RSub.subgraph) r.RSub.reliability
