open Testutil
module BF = Bddbase.Bruteforce
module T = Preprocess.Transform
module P = Preprocess.Pipeline

let exact g ~terminals =
  match Bddbase.Exact.reliability_float g ~terminals with
  | Ok r -> r
  | Error _ -> Alcotest.fail "unexpected DNF"

(* Evaluate a pipeline outcome exactly, to compare with direct R. *)
let outcome_reliability = function
  | P.Trivial r -> Xprob.to_float_exn r
  | P.Reduced { pb; subproblems; _ } ->
    List.fold_left
      (fun acc (sp : P.subproblem) -> acc *. exact sp.P.graph ~terminals:sp.P.terminals)
      (Xprob.to_float_exn pb)
      subproblems

(* ---- transform ---- *)

let t_transform_series () =
  (* Path 0-1-2-3 with terminals {0,3}: collapses to one edge p^3. *)
  let tr = T.run (path4 0.8) ~terminals:[ 0; 3 ] in
  Alcotest.(check int) "two vertices" 2 (Ugraph.n_vertices tr.T.graph);
  Alcotest.(check int) "one edge" 1 (Ugraph.n_edges tr.T.graph);
  check_close "probability" (0.8 ** 3.) (Ugraph.edge tr.T.graph 0).Ugraph.p

let t_transform_parallel () =
  let g = graph ~n:2 [ (0, 1, 0.5); (0, 1, 0.4); (0, 1, 0.3) ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "one edge" 1 (Ugraph.n_edges tr.T.graph);
  check_close "combined probability"
    (1. -. (0.5 *. 0.6 *. 0.7))
    (Ugraph.edge tr.T.graph 0).Ugraph.p

let t_transform_loop () =
  let g = graph ~n:2 [ (0, 0, 0.9); (0, 1, 0.5) ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "loop dropped" 1 (Ugraph.n_edges tr.T.graph)

let t_transform_ear () =
  (* Terminals {0,3} on a path, plus an ear 1-4-5-1: the ear collapses
     to a self-loop and disappears. *)
  let g =
    graph ~n:6
      [ (0, 1, 0.5); (1, 2, 0.5); (2, 3, 0.5); (1, 4, 0.6); (4, 5, 0.6); (5, 1, 0.6) ]
  in
  let tr = T.run g ~terminals:[ 0; 3 ] in
  Alcotest.(check int) "collapses to single edge" 1 (Ugraph.n_edges tr.T.graph);
  check_close "p = 0.5^3" (0.5 ** 3.) (Ugraph.edge tr.T.graph 0).Ugraph.p

let t_transform_floating_cycle () =
  (* A terminal edge plus an unreachable terminal-free triangle. *)
  let g =
    graph ~n:5 [ (0, 1, 0.5); (2, 3, 0.6); (3, 4, 0.6); (4, 2, 0.6) ]
  in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "cycle deleted" 1 (Ugraph.n_edges tr.T.graph);
  Alcotest.(check int) "vertices compacted" 2 (Ugraph.n_vertices tr.T.graph)

let t_transform_dangling () =
  (* Pendant path 2-3-4 off a terminal edge 0-1 (attached at 1). *)
  let g = graph ~n:5 [ (0, 1, 0.5); (1, 2, 0.6); (2, 3, 0.6); (3, 4, 0.6) ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "pendants dropped" 1 (Ugraph.n_edges tr.T.graph)

let t_transform_keeps_terminal_degree2 () =
  (* A degree-2 terminal must not be contracted away. *)
  let tr = T.run (path4 0.8) ~terminals:[ 0; 1; 3 ] in
  Alcotest.(check int) "terminal 1 kept" 3 (Ugraph.n_vertices tr.T.graph);
  Alcotest.(check int) "edges merged around it" 2 (Ugraph.n_edges tr.T.graph)

let t_transform_parallel_stub () =
  (* A degree-2 non-terminal attached by two parallel edges to the same
     endpoint: the contraction walk's dead-edge stub branch. The stub
     can never reach a terminal, so it must vanish without touching
     R. *)
  let g = graph ~n:3 [ (0, 1, 0.5); (1, 2, 0.7); (1, 2, 0.6) ] in
  let direct = BF.reliability g ~terminals:[ 0; 1 ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "stub dropped" 1 (Ugraph.n_edges tr.T.graph);
  check_close ~eps:1e-12 "R preserved" direct
    (BF.reliability tr.T.graph ~terminals:tr.T.terminals)

let t_transform_nonterminal_closed_cycle () =
  (* A cycle of non-terminals hanging off a terminal: the chain walk
     returns to its anchor (a = b), leaving a self-loop that must then
     drop. *)
  let g =
    graph ~n:4 [ (0, 1, 0.5); (1, 2, 0.6); (2, 3, 0.6); (3, 1, 0.6) ]
  in
  let direct = BF.reliability g ~terminals:[ 0; 1 ] in
  let tr = T.run g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "cycle gone" 1 (Ugraph.n_edges tr.T.graph);
  check_close ~eps:1e-12 "R preserved" direct
    (BF.reliability tr.T.graph ~terminals:tr.T.terminals)

let t_transform_parallel_merge_order () =
  (* Regression: the stage-2 parallel-edge merge used to emit merged
     edges in Hashtbl bucket order, which depends on the key hash. The
     contract is first-occurrence order of the (normalized) endpoint
     pair in the input edge list. All vertices are terminals so no
     other rewrite reorders anything. *)
  let g =
    graph ~n:4 [ (2, 3, 0.5); (0, 1, 0.4); (3, 2, 0.5); (1, 0, 0.4); (1, 2, 0.3) ]
  in
  let tr = T.run g ~terminals:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "three merged edges" 3 (Ugraph.n_edges tr.T.graph);
  let pairs =
    List.init 3 (fun i ->
        let e = Ugraph.edge tr.T.graph i in
        (e.Ugraph.u, e.Ugraph.v))
  in
  Alcotest.(check (list (pair int int)))
    "first-occurrence order" [ (2, 3); (0, 1); (1, 2) ] pairs;
  check_close "merged p" (1. -. (0.5 *. 0.5)) (Ugraph.edge tr.T.graph 0).Ugraph.p

let t_transform_idempotent () =
  let g = two_triangles 0.5 in
  let tr = T.run g ~terminals:[ 0; 4 ] in
  let tr2 = T.run tr.T.graph ~terminals:tr.T.terminals in
  Alcotest.(check int) "second run is identity (edges)"
    (Ugraph.n_edges tr.T.graph) (Ugraph.n_edges tr2.T.graph);
  Alcotest.(check int) "second run took zero rounds... or one no-op" 0 tr2.T.rounds

(* ---- pipeline ---- *)

let t_pipeline_two_triangles () =
  let g = two_triangles 0.5 in
  match P.run g ~terminals:[ 0; 4 ] with
  | P.Trivial _ -> Alcotest.fail "expected reduction"
  | P.Reduced { pb; subproblems; stats } ->
    check_close "bridge probability" 0.5 (Xprob.to_float_exn pb);
    Alcotest.(check int) "two subproblems" 2 (List.length subproblems);
    Alcotest.(check int) "bridges" 1 stats.P.n_bridges;
    (* Each triangle with two terminals transforms: the two-path side
       becomes parallel edges which merge into one; so 2 or fewer edges
       per side. *)
    List.iter
      (fun (sp : P.subproblem) ->
        Alcotest.(check bool) "small subproblem" true (Ugraph.n_edges sp.P.graph <= 2))
      subproblems;
    Alcotest.(check bool) "ratio < 1" true (P.reduction_ratio stats < 1.)

let t_pipeline_trivial_cases () =
  let g = path4 0.5 in
  (match P.run g ~terminals:[ 2 ] with
  | P.Trivial r -> check_close "k=1" 1. (Xprob.to_float_exn r)
  | P.Reduced _ -> Alcotest.fail "expected trivial");
  let disconnected = graph ~n:4 [ (0, 1, 0.9); (2, 3, 0.9) ] in
  (match P.run disconnected ~terminals:[ 0; 3 ] with
  | P.Trivial r -> check_close "separated" 0. (Xprob.to_float_exn r)
  | P.Reduced _ -> Alcotest.fail "expected trivial");
  let isolated = graph ~n:3 [ (0, 1, 0.5) ] in
  match P.run isolated ~terminals:[ 0; 2 ] with
  | P.Trivial r -> check_close "isolated" 0. (Xprob.to_float_exn r)
  | P.Reduced _ -> Alcotest.fail "expected trivial"

let t_pipeline_path_fully_decomposes () =
  (* A pure path between the terminals decomposes into bridges only:
     no subproblems remain and pb is the whole reliability. *)
  let g = path4 0.8 in
  match P.run g ~terminals:[ 0; 3 ] with
  | P.Trivial _ -> Alcotest.fail "expected reduction"
  | P.Reduced { pb; subproblems; _ } ->
    Alcotest.(check int) "no subproblems" 0 (List.length subproblems);
    check_close "pb = p^3" (0.8 ** 3.) (Xprob.to_float_exn pb)

let t_pipeline_subproblem_order () =
  (* Regression: decompose used to list subproblems in Hashtbl bucket
     order of their component roots. The contract is ascending minimum
     original vertex id. Triangle {0,1,2} (p = 0.3) and 4-cycle
     {3,4,5,6} (p = 0.9) hang off the bridge 2-3; the triangle's
     component holds vertex 0 so it must come first, recognizable after
     transformation by its merged edge probability. *)
  let g =
    graph ~n:7
      [ (0, 1, 0.3); (1, 2, 0.3); (2, 0, 0.3); (2, 3, 0.8);
        (3, 4, 0.9); (4, 5, 0.9); (5, 6, 0.9); (6, 3, 0.9) ]
  in
  match P.run g ~terminals:[ 0; 1; 3; 5 ] with
  | P.Trivial _ -> Alcotest.fail "expected reduction"
  | P.Reduced { subproblems; _ } ->
    Alcotest.(check int) "two subproblems" 2 (List.length subproblems);
    (match subproblems with
    | [ tri; cyc ] ->
      (* The triangle survives the transform untouched (vertex 2 has
         degree 3 before the bridge splits off); the cycle's two
         degree-2 corners contract into one merged edge. *)
      Alcotest.(check int) "triangle first" 3 (Ugraph.n_edges tri.P.graph);
      check_close "triangle p" 0.3 (Ugraph.edge tri.P.graph 0).Ugraph.p;
      Alcotest.(check int) "cycle second" 1 (Ugraph.n_edges cyc.P.graph);
      check_close "cycle merged p"
        (1. -. ((1. -. (0.9 *. 0.9)) ** 2.))
        (Ugraph.edge cyc.P.graph 0).Ugraph.p
    | _ -> assert false)

let t_pipeline_preserves_reliability_known () =
  List.iter
    (fun (name, g, ts) ->
      let direct = BF.reliability g ~terminals:ts in
      let via = outcome_reliability (P.run g ~terminals:ts) in
      check_close ~eps:1e-9 name direct via)
    [
      ("fig1", fig1 (), [ 0; 3; 4 ]);
      ("two triangles", two_triangles 0.6, [ 0; 4 ]);
      ("cycle", cycle4 0.5, [ 0; 2 ]);
      ("path k=3", path4 0.7, [ 0; 2; 3 ]);
      ( "barbell with pendant",
        graph ~n:8
          [ (0, 1, 0.5); (1, 2, 0.5); (2, 0, 0.5); (2, 3, 0.9); (3, 4, 0.8);
            (4, 5, 0.5); (5, 6, 0.5); (6, 4, 0.5); (5, 7, 0.4) ],
        [ 0; 6 ] );
    ]

(* ---- property tests ---- *)

let arb = Test_bddbase.arb_graph_ts

let prop_transform_preserves_reliability =
  QCheck.Test.make ~name:"transform preserves R exactly" ~count:300
    (arb ~max_n:8 ~max_m:12 ~max_k:4) (fun (n, es, ts) ->
      let g = graph ~n es in
      let direct = BF.reliability g ~terminals:ts in
      let tr = T.run g ~terminals:ts in
      QCheck.assume (Ugraph.n_edges tr.T.graph <= BF.max_edges);
      let after = BF.reliability tr.T.graph ~terminals:tr.T.terminals in
      Float.abs (direct -. after) <= 1e-9)

let prop_pipeline_preserves_reliability =
  QCheck.Test.make ~name:"pipeline preserves R = pb * prod Ri" ~count:300
    (arb ~max_n:9 ~max_m:13 ~max_k:4) (fun (n, es, ts) ->
      let g = graph ~n es in
      let direct = BF.reliability g ~terminals:ts in
      let via = outcome_reliability (P.run g ~terminals:ts) in
      Float.abs (direct -. via) <= 1e-9)

(* Random base graph with a planted walk corner-case gadget anchored at
   a base vertex: an ear whose contraction walk returns to its anchor
   (a = b), a parallel stub (the dead-edge branch), or a floating cycle
   of non-terminals. Terminals come from the base alone, so the gadget
   is always pure non-terminal structure the transform must erase or
   contract without moving R. *)
let arb_with_gadget =
  let gen =
    QCheck.Gen.(
      int_range 2 6 >>= fun n ->
      int_range 1 8 >>= fun m ->
      int_range 0 2 >>= fun gadget ->
      int_range 0 (n - 1) >>= fun anchor ->
      let edge =
        map3
          (fun u v p -> (u mod n, v mod n, float_of_int (p mod 11) /. 10.))
          small_nat small_nat small_nat
      in
      list_repeat m edge >>= fun es ->
      map2
        (fun seed praw ->
          let p = 0.1 +. (0.08 *. float_of_int (praw mod 11)) in
          let gadget_es, extra =
            match gadget with
            | 0 -> ([ (anchor, n, p); (n, n + 1, p); (n + 1, anchor, p) ], 2)
            | 1 -> ([ (anchor, n, p); (anchor, n, p) ], 1)
            | _ -> ([ (n, n + 1, p); (n + 1, n + 2, p); (n + 2, n, p) ], 3)
          in
          let perm = Array.init n Fun.id in
          Prng.shuffle (Prng.create seed) perm;
          (n + extra, es @ gadget_es, [ perm.(0); perm.(1) ]))
        int small_nat)
  in
  QCheck.make
    ~print:(fun (n, es, ts) ->
      Printf.sprintf "n=%d ts=[%s] es=[%s]" n
        (String.concat ";" (List.map string_of_int ts))
        (String.concat " "
           (List.map (fun (u, v, p) -> Printf.sprintf "(%d,%d,%.2f)" u v p) es)))
    gen

let prop_transform_preserves_reliability_gadgets =
  QCheck.Test.make ~name:"transform preserves R through walk corners" ~count:300
    arb_with_gadget (fun (n, es, ts) ->
      let g = graph ~n es in
      let direct = BF.reliability g ~terminals:ts in
      let tr = T.run g ~terminals:ts in
      QCheck.assume (Ugraph.n_edges tr.T.graph <= BF.max_edges);
      let after = BF.reliability tr.T.graph ~terminals:tr.T.terminals in
      Float.abs (direct -. after) <= 1e-9)

(* The full public exact path — Pipeline.run inside Reliability.exact,
   extension on — against brute force on random <= 10-vertex graphs
   (self-loops and parallel edges included by construction of the
   generator). *)
let prop_reliability_exact_extension_differential =
  QCheck.Test.make ~name:"Reliability.exact (ext) = brute force" ~count:300
    (arb ~max_n:10 ~max_m:14 ~max_k:4) (fun (n, es, ts) ->
      let g = graph ~n es in
      let direct = BF.reliability g ~terminals:ts in
      match Netrel.Reliability.exact ~extension:true g ~terminals:ts with
      | Error _ -> false
      | Ok r -> Float.abs (r -. direct) <= 1e-9)

let prop_pipeline_shrinks =
  QCheck.Test.make ~name:"pipeline never grows the problem" ~count:200
    (arb ~max_n:9 ~max_m:13 ~max_k:3) (fun (n, es, ts) ->
      let g = graph ~n es in
      match P.run g ~terminals:ts with
      | P.Trivial _ -> true
      | P.Reduced { stats; _ } ->
        stats.P.max_subproblem_edges <= stats.P.original_edges
        && stats.P.pruned_edges <= stats.P.original_edges
        && stats.P.final_edges <= stats.P.pruned_edges)

let suite =
  ( "preprocess",
    [
      Alcotest.test_case "transform: series chain" `Quick t_transform_series;
      Alcotest.test_case "transform: parallel edges" `Quick t_transform_parallel;
      Alcotest.test_case "transform: self loop" `Quick t_transform_loop;
      Alcotest.test_case "transform: ear" `Quick t_transform_ear;
      Alcotest.test_case "transform: floating cycle" `Quick t_transform_floating_cycle;
      Alcotest.test_case "transform: dangling path" `Quick t_transform_dangling;
      Alcotest.test_case "transform: keeps degree-2 terminal" `Quick t_transform_keeps_terminal_degree2;
      Alcotest.test_case "transform: parallel stub" `Quick t_transform_parallel_stub;
      Alcotest.test_case "transform: non-terminal closed cycle" `Quick t_transform_nonterminal_closed_cycle;
      Alcotest.test_case "transform: parallel merge order" `Quick t_transform_parallel_merge_order;
      Alcotest.test_case "transform: idempotent" `Quick t_transform_idempotent;
      Alcotest.test_case "pipeline: two triangles" `Quick t_pipeline_two_triangles;
      Alcotest.test_case "pipeline: trivial cases" `Quick t_pipeline_trivial_cases;
      Alcotest.test_case "pipeline: subproblem order" `Quick t_pipeline_subproblem_order;
      Alcotest.test_case "pipeline: path decomposes fully" `Quick t_pipeline_path_fully_decomposes;
      Alcotest.test_case "pipeline preserves R (known)" `Quick t_pipeline_preserves_reliability_known;
    ]
    @ qtests
        [
          prop_transform_preserves_reliability;
          prop_transform_preserves_reliability_gadgets;
          prop_reliability_exact_extension_differential;
          prop_pipeline_preserves_reliability;
          prop_pipeline_shrinks;
        ] )
