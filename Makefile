.PHONY: build test selfcheck bench bench-quick bench-smoke bench-kernels bench-bitsliced bench-adaptive bench-batch bench-large bench-all clean

build:
	dune build

test:
	dune runtest

# Full differential self-validation (lib/check): every estimator vs the
# exact oracle, metamorphic identities, CI calibration. ~5s. A budgeted
# 5-trial run also rides along under `dune runtest`.
selfcheck:
	dune exec bin/netrel_cli.exe -- selfcheck --trials 50 --seed 1

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Speedup harness on a toy graph: the quick `parallel` section (karate,
# jobs 1/2/4) with its sequential-vs-parallel bit-identity column, plus
# the self-validated BENCH_parallel.json stats emission at the repo
# root. The BENCH_<section>.json artifacts are the tracked perf
# trajectory (EXPERIMENTS.md); re-run and commit them after
# performance-relevant changes. The same invocation runs under
# `dune runtest` via bench/dune. Add BENCH_TRACE=1 to also write
# BENCH_parallel_trace.json (Chrome trace-event, Perfetto-loadable).
bench-smoke:
	dune exec bench/main.exe -- --force --only parallel --quick --json \
	  $(if $(BENCH_TRACE),--trace)

# Flat-kernel throughput vs the retained reference samplers (karate,
# jobs = 1, `= ref` bit-identity column), emitting the self-validated
# BENCH_kernels.json at the repo root — the tracked kernel-speedup
# artifact (compare its kernel-mc samples/s against the sampling-mc
# seconds in BENCH_parallel.json). Also runs under `dune runtest`.
bench-kernels:
	dune exec bench/main.exe -- --force --only kernels --quick --json \
	  $(if $(BENCH_TRACE),--trace)

# Bit-sliced (62 worlds per word) vs flat sampling kernel at jobs = 1,
# emitting the self-validated BENCH_bitsliced.json at the repo root —
# the tracked word-parallel speedup artifact (compare the two modes'
# sampling.kernel.samples_per_sec; every document also pins
# sampling.kernel.mode to the mode that actually ran). Also runs under
# `dune runtest`.
bench-bitsliced:
	dune exec bench/main.exe -- --force --only bitsliced --quick --json \
	  $(if $(BENCH_TRACE),--trace)

# Sequential stopping (--ci-width) vs the fixed 10k sample budget on
# karate: the three adaptive drivers report the samples the stopping
# rule actually spent, the round count and the stop reason, emitting
# the self-validated BENCH_adaptive.json at the repo root — the tracked
# sample-efficiency artifact (adaptive.samples_used vs run.samples).
# Also runs under `dune runtest`.
bench-adaptive:
	dune exec bench/main.exe -- --force --only adaptive --quick --json \
	  $(if $(BENCH_TRACE),--trace)

# The amortized multi-query engine behind `netrel batch`/`serve`: 16
# queries (4 distinct x 4 repeats) on karate served through one engine
# vs from scratch, with bit-identity asserted per answer and the cache
# counters asserted to prove the amortization, emitting the
# self-validated BENCH_batch.json at the repo root — the tracked
# per-query amortization artifact (engine vs scratch run.seconds).
# Also runs under `dune runtest`.
bench-batch:
	dune exec bench/main.exe -- --force --only batch --quick --json \
	  $(if $(BENCH_TRACE),--trace)

# Large-graph scale-out trajectory: ~10^5-edge (quick) synthetic
# graphs round-tripped through the mmap-able binary container and
# sampled straight from the packed arrays through both kernels, with
# per-kernel binary-vs-text bit-identity asserted, emitting the
# self-validated BENCH_large.json at the repo root — the tracked
# large-graph artifact (load-mmap run.seconds = mmap open + CSR build;
# mc-{flat,bitsliced} sampling.kernel.samples_per_sec = throughput).
# Also runs under `dune runtest`. Drop --quick for the 10^6-edge pass.
bench-large:
	dune exec bench/main.exe -- --force --only large --quick --json \
	  $(if $(BENCH_TRACE),--trace)

# Regenerate every tracked BENCH_*.json in one pass: the seven
# JSON-emitting sections in quick mode, 3 repeats per (dataset, method)
# pair so `netrel benchdiff` gets real median/MAD noise bands, --force
# because the committed baselines already sit at the repo root. Run
# this (and commit the results) after performance-relevant changes;
# `netrel benchdiff OLD.json NEW.json` gates the comparison.
bench-all:
	dune exec bench/main.exe -- --force --repeats 3 --json \
	  --only table5,parallel,kernels,bitsliced,adaptive,batch,large --quick \
	  $(if $(BENCH_TRACE),--trace)

clean:
	dune clean
