(* Streaming trace events: bounded per-task rings merged in task order,
   exported as Chrome trace-event JSON or flat JSONL. See trace.mli for
   the lane/determinism contract. *)

module J = Obs.Json

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Span of float
  | Instant
  | Counter of float

type event = {
  name : string;
  kind : kind;
  ts : float;
  lane : int;
  args : (string * arg) list;
}

let schema_version = 1
let control_lane = Par.max_jobs
let default_capacity = 65536

(* Ring buffer with overwrite-oldest semantics. Storage is allocated
   lazily and doubled up to [cap]; growth only ever happens before the
   first overwrite, so [start] is still 0 when we re-blit. *)
type ring = {
  mutable arr : event array;
  mutable start : int;
  mutable len : int;
  cap : int;
  mutable dropped : int;
}

let dummy_event = { name = ""; kind = Instant; ts = 0.; lane = 0; args = [] }
let ring_create cap = { arr = [||]; start = 0; len = 0; cap; dropped = 0 }

let ring_push r ev =
  let alloc = Array.length r.arr in
  if r.len = alloc && alloc < r.cap then begin
    let n = if alloc = 0 then min r.cap 64 else min r.cap (alloc * 2) in
    let a = Array.make n dummy_event in
    Array.blit r.arr 0 a 0 r.len;
    r.arr <- a
  end;
  let alloc = Array.length r.arr in
  if r.len < alloc then begin
    r.arr.((r.start + r.len) mod alloc) <- ev;
    r.len <- r.len + 1
  end
  else begin
    r.arr.(r.start) <- ev;
    r.start <- (r.start + 1) mod alloc;
    r.dropped <- r.dropped + 1
  end

let ring_iter r f =
  let alloc = Array.length r.arr in
  for i = 0 to r.len - 1 do
    f r.arr.((r.start + i) mod alloc)
  done

let ring_to_list r =
  let acc = ref [] in
  ring_iter r (fun ev -> acc := ev :: !acc);
  List.rev !acc

(* State common to a sink and every task buffer derived from it: the
   clock and epoch (so all lanes share a time base), the listener, and
   the mutex-protected control-lane buffer. *)
type shared = {
  clock : unit -> float;
  epoch : float;
  capacity : int;
  listener : (event -> unit) option;
  smutex : Mutex.t;
  sring : ring;
}

type t = { on : bool; lane : int; sh : shared; ring : ring }

let disabled =
  {
    on = false;
    lane = 0;
    sh =
      {
        clock = (fun () -> 0.);
        epoch = 0.;
        capacity = 0;
        listener = None;
        smutex = Mutex.create ();
        sring = ring_create 0;
      };
    ring = ring_create 0;
  }

let enabled t = t.on

let create ?clock ?(capacity = default_capacity) ?on_event () =
  let clock =
    match clock with Some c -> c | None -> Obs.default_clock ()
  in
  let capacity = max 1 capacity in
  let sh =
    {
      clock;
      epoch = clock ();
      capacity;
      listener = on_event;
      smutex = Mutex.create ();
      sring = ring_create capacity;
    }
  in
  { on = true; lane = 0; sh; ring = ring_create capacity }

let now t = if t.on then t.sh.clock () -. t.sh.epoch else 0.

let task t ~lane =
  if lane < 0 then invalid_arg "Trace.task: lane < 0";
  if not t.on then disabled
  else { t with lane; ring = ring_create t.sh.capacity }

let merge ~into src =
  if into.on && src.on then begin
    ring_iter src.ring (fun ev -> ring_push into.ring ev);
    into.ring.dropped <- into.ring.dropped + src.ring.dropped
  end

let emit t ev =
  (match t.sh.listener with None -> () | Some f -> f ev);
  ring_push t.ring ev

let instant t ?(args = []) name =
  if t.on then
    emit t { name; kind = Instant; ts = now t; lane = t.lane; args }

let counter t name v =
  if t.on then
    emit t { name; kind = Counter v; ts = now t; lane = t.lane; args = [] }

let gc_counters t prefix (d : Metrics.Gcstat.delta) =
  if t.on && Obs.gc_counters_live () then begin
    counter t (prefix ^ ".gc.minor_words") (float_of_int d.minor_words);
    counter t (prefix ^ ".gc.major_words") (float_of_int d.major_words);
    counter t (prefix ^ ".gc.top_heap_words") (float_of_int d.top_heap_words)
  end

let complete t ?(args = []) ~ts name =
  if t.on then
    let dur = now t -. ts in
    emit t { name; kind = Span dur; ts; lane = t.lane; args }

let span t ?args name f =
  if not t.on then f ()
  else begin
    let ts = now t in
    Fun.protect ~finally:(fun () -> complete t ?args ~ts name) f
  end

let instant_shared t ?(args = []) name =
  if t.on then begin
    let ev = { name; kind = Instant; ts = now t; lane = control_lane; args } in
    (match t.sh.listener with None -> () | Some f -> f ev);
    Mutex.lock t.sh.smutex;
    ring_push t.sh.sring ev;
    Mutex.unlock t.sh.smutex
  end

let install_par_hook t =
  if t.on then
    Par.set_batch_hook
      (Some (fun n -> instant_shared t ~args:[ ("tasks", Int n) ] "par.batch"))
  else Par.set_batch_hook None

let events t = ring_to_list t.ring

let shared_events t =
  Mutex.lock t.sh.smutex;
  let evs = ring_to_list t.sh.sring in
  Mutex.unlock t.sh.smutex;
  evs

let dropped t =
  Mutex.lock t.sh.smutex;
  let shared_dropped = t.sh.sring.dropped in
  Mutex.unlock t.sh.smutex;
  t.ring.dropped + shared_dropped

(* ---- Export ---- *)

let arg_json = function
  | Int i -> J.Int i
  | Float f -> J.Float f
  | Str s -> J.Str s
  | Bool b -> J.Bool b

let args_json args = J.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)
let usec s = s *. 1e6

(* One Chrome trace-event record. Timestamps are microseconds relative
   to the trace epoch; [pid] is the run, [tid] the lane. *)
let event_json ev =
  let base =
    [
      ("name", J.Str ev.name);
      ("ph", J.Str (match ev.kind with Span _ -> "X" | Instant -> "i" | Counter _ -> "C"));
      ("pid", J.Int 0);
      ("tid", J.Int ev.lane);
      ("ts", J.Float (usec ev.ts));
    ]
  in
  let tail =
    match ev.kind with
    | Span d ->
      ("dur", J.Float (usec d))
      :: (if ev.args = [] then [] else [ ("args", args_json ev.args) ])
    | Instant ->
      ("s", J.Str "t")
      :: (if ev.args = [] then [] else [ ("args", args_json ev.args) ])
    | Counter v -> [ ("args", J.Obj [ ("value", J.Float v) ]) ]
  in
  J.Obj (base @ tail)

let lane_name lane =
  if lane = control_lane then "control" else Printf.sprintf "lane %d" lane

let metadata_json all_events =
  let lanes =
    List.sort_uniq Int.compare
      (List.map (fun (ev : event) -> ev.lane) all_events)
  in
  let meta name tid args =
    J.Obj
      [
        ("name", J.Str name);
        ("ph", J.Str "M");
        ("pid", J.Int 0);
        ("tid", J.Int tid);
        ("args", J.Obj args);
      ]
  in
  meta "process_name" 0 [ ("name", J.Str "netrel") ]
  :: List.map
       (fun lane -> meta "thread_name" lane [ ("name", J.Str (lane_name lane)) ])
       lanes

let to_chrome t =
  let evs = events t @ shared_events t in
  J.Obj
    [
      ( "traceEvents",
        J.List (metadata_json evs @ List.map event_json evs) );
      ("displayTimeUnit", J.Str "ms");
      ( "otherData",
        J.Obj
          [
            ("producer", J.Str "netrel");
            ("schema", J.Int schema_version);
            ("dropped", J.Int (dropped t));
          ] );
    ]

let write_chrome oc t =
  output_string oc (J.to_string ~pretty:true (to_chrome t));
  output_char oc '\n'

let write_jsonl oc t =
  let header =
    J.Obj
      [
        ("netrel", J.Str "trace");
        ("schema", J.Int schema_version);
        ("dropped", J.Int (dropped t));
      ]
  in
  output_string oc (J.to_string header);
  output_char oc '\n';
  List.iter
    (fun ev ->
      output_string oc (J.to_string (event_json ev));
      output_char oc '\n')
    (events t @ shared_events t)

let validate_chrome j =
  match J.member "traceEvents" j with
  | None -> Error "missing traceEvents"
  | Some (J.List evs) ->
    let check i e =
      match e with
      | J.Obj _ ->
        let has k = J.member k e <> None in
        let ph =
          match J.member "ph" e with Some (J.Str s) -> Some s | _ -> None
        in
        if not (has "name") then
          Error (Printf.sprintf "event %d: missing name" i)
        else if ph = None then
          Error (Printf.sprintf "event %d: missing ph" i)
        else if not (has "pid" && has "tid") then
          Error (Printf.sprintf "event %d: missing pid/tid" i)
        else if ph <> Some "M" && not (has "ts") then
          Error (Printf.sprintf "event %d: missing ts" i)
        else Ok ()
      | _ -> Error (Printf.sprintf "event %d: not an object" i)
    in
    let rec go i = function
      | [] -> Ok ()
      | e :: rest -> ( match check i e with Ok () -> go (i + 1) rest | e -> e)
    in
    go 0 evs
  | Some _ -> Error "traceEvents: not a list"

(* ---- Live convergence reporter ---- *)

module Progress = struct
  type reporter = {
    m : Mutex.t;
    emit : string -> unit;
    tty : bool;
    interval : float;
    clock : unit -> float;
    start : float;
    mutable phase : string;
    mutable last_render : float;
    mutable est : float option;
    mutable half : float option;
    mutable exact : bool;
    mutable samples : int;
    mutable ht_unique : int;
    mutable ht_total : int;
    mutable layer : int;
    mutable width : float;
    mutable rendered : bool;
    mutable finished : bool;
  }

  let default_emit s =
    output_string stderr s;
    flush stderr

  let create ?emit ?tty ?(interval = 0.2) ?clock () =
    let emit = match emit with Some e -> e | None -> default_emit in
    let tty =
      match tty with Some b -> b | None -> Unix.isatty Unix.stderr
    in
    let clock =
      match clock with Some c -> c | None -> Obs.default_clock ()
    in
    {
      m = Mutex.create ();
      emit;
      tty;
      interval;
      clock;
      start = clock ();
      phase = "";
      last_render = neg_infinity;
      est = None;
      half = None;
      exact = false;
      samples = 0;
      ht_unique = 0;
      ht_total = 0;
      layer = 0;
      width = 0.;
      rendered = false;
      finished = false;
    }

  (* Event names fold into three coarse phases; the mapping is by
     substring so instrumentation sites can use specific names
     ("s2bdd.layer", "mc.chunk", ...) without registering them here. *)
  let phase_of name =
    let has sub =
      let n = String.length name and m = String.length sub in
      let rec at i = i + m <= n && (String.sub name i m = sub || at (i + 1)) in
      at 0
    in
    if has "prune" || has "decompose" || has "transform" || has "preprocess"
    then Some "preprocess"
    else if has "layer" || has "construction" || has "width" then
      Some "construction"
    else if has "chunk" || has "merge" || has "descent" then Some "sampling"
    else None

  let fmt v = Printf.sprintf "%.6g" v

  let line r =
    let b = Buffer.create 96 in
    Buffer.add_string b "progress: ";
    Buffer.add_string b (if r.finished then "done" else r.phase);
    if r.layer > 0 && r.phase = "construction" && not r.finished then begin
      Buffer.add_string b (Printf.sprintf " layer %d" r.layer);
      if r.width > 0. then Buffer.add_string b (Printf.sprintf " width %g" r.width)
    end;
    (match r.est with
    | Some v ->
      Buffer.add_string b
        (if r.exact then Printf.sprintf " R=%s" (fmt v)
         else Printf.sprintf " est %s" (fmt v));
      (match r.half with
      | Some h when not r.exact ->
        Buffer.add_string b (Printf.sprintf " +/-%s" (fmt h))
      | _ -> ())
    | None -> ());
    if r.samples > 0 then begin
      Buffer.add_string b (Printf.sprintf " samples %d" r.samples);
      let elapsed = r.clock () -. r.start in
      if elapsed > 0. then
        Buffer.add_string b
          (Printf.sprintf " (%.0f/s)" (float_of_int r.samples /. elapsed))
    end;
    if r.ht_total > 0 then
      Buffer.add_string b
        (Printf.sprintf " dedup %d/%d" r.ht_unique r.ht_total);
    Buffer.contents b

  let render r ~final =
    let s = line r in
    let frame =
      if final then if r.tty && r.rendered then "\r\027[K" ^ s ^ "\n" else s ^ "\n"
      else if r.tty then "\r" ^ s ^ "\027[K"
      else s ^ "\n"
    in
    r.rendered <- true;
    r.last_render <- r.clock ();
    r.emit frame

  let int_arg args k =
    match List.assoc_opt k args with
    | Some (Int i) -> Some i
    | Some (Float f) -> Some (int_of_float f)
    | _ -> None

  let float_arg args k =
    match List.assoc_opt k args with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None

  let bool_arg args k =
    match List.assoc_opt k args with Some (Bool b) -> Some b | _ -> None

  let absorb r (ev : event) =
    (match ev.kind with
    | Counter v ->
      if ev.name = "width" || Filename.check_suffix ev.name ".width" then
        r.width <- v
    | _ -> ());
    (match int_arg ev.args "layer" with
    | Some l -> r.layer <- max r.layer l
    | None -> ());
    (match float_arg ev.args "width" with
    | Some w -> r.width <- w
    | None -> ());
    (match float_arg ev.args "value" with
    | Some v -> r.est <- Some v
    | None -> ());
    (match (float_arg ev.args "lower", float_arg ev.args "upper") with
    | Some lo, Some hi -> r.half <- Some ((hi -. lo) /. 2.)
    | _ -> ());
    (match bool_arg ev.args "exact" with
    | Some e -> r.exact <- e
    | None -> ());
    (match int_arg ev.args "samples" with
    | Some n ->
      if ev.kind = Instant then r.samples <- max r.samples n
      else r.samples <- r.samples + n
    | None -> ());
    match (int_arg ev.args "unique", int_arg ev.args "drawn") with
    | Some u, Some d ->
      r.ht_unique <- r.ht_unique + u;
      r.ht_total <- r.ht_total + d
    | _ -> ()

  let on_event r ev =
    Mutex.lock r.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock r.m)
      (fun () ->
        if not r.finished then begin
          absorb r ev;
          match phase_of ev.name with
          | Some p when p <> r.phase ->
            r.phase <- p;
            render r ~final:false
          | _ ->
            if
              r.phase <> ""
              && r.clock () -. r.last_render >= r.interval
            then render r ~final:false
        end)

  let finish r =
    Mutex.lock r.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock r.m)
      (fun () ->
        if not r.finished then begin
          r.finished <- true;
          render r ~final:true
        end)
end
