Format conversion: `netrel convert INPUT OUTPUT` moves graphs between
the text edge list, SNAP/KONECT edge lists, and the mmap-able binary
container (.nrb). The binary container stores probabilities as raw
IEEE-754 bits, so text -> binary -> text is byte-identical.

Generate a text edge list to work with:

  $ netrel gen --dataset karate -o karate.txt
  wrote karate.txt (|V|=34 |E|=78 avg_deg=4.59 avg_prob=0.534)

Text -> binary (the .nrb extension selects the binary container):

  $ netrel convert karate.txt karate.nrb
  wrote karate.nrb (binary, 34 vertices, 78 edges, digest 05d62fcab6ccd3c7)

Binary -> text round trip reproduces the original bytes exactly:

  $ netrel convert karate.nrb roundtrip.txt
  wrote roundtrip.txt (text, 34 vertices, 78 edges, digest 05d62fcab6ccd3c7)
  $ cmp karate.txt roundtrip.txt

The binary file opens anywhere --graph accepts a file; the estimate is
bit-identical to the text path and the engine commands reuse the header
digest instead of re-hashing the graph (digest_from_header below):

  $ export NETREL_FAKE_CLOCK=1
  $ netrel estimate --graph karate.txt --terminals 0,33 --method sampling-mc --samples 2000 --seed 1 | grep -v '^graph\|^time' > text.out
  $ netrel estimate --graph karate.nrb --terminals 0,33 --method sampling-mc --samples 2000 --seed 1 | grep -v '^graph\|^time' > bin.out
  $ diff text.out bin.out
  $ echo "t=0,33 m=sampling-mc s=2000" > q.txt
  $ netrel batch --graph karate.nrb --jobs 1 q.txt | grep -E '"(digest_from_header|queries)"'
      "queries": 1,
      "digest_from_header": 1,

SNAP/KONECT input: comments, tabs, and a missing probability column
(filled from --prob) are all accepted; vertex ids are compacted in
first-appearance order:

  $ printf '# snap comment\n%% konect header\n10 20 0.25\n20\t30\n10 30\n' > snap.txt
  $ netrel convert --from snap --prob 0.75 snap.txt snap.nrb
  wrote snap.nrb (binary, 3 vertices, 3 edges, digest 2407c4eae2c2a08a)
  $ netrel convert snap.nrb snap-as-text.txt
  wrote snap-as-text.txt (text, 3 vertices, 3 edges, digest 2407c4eae2c2a08a)
  $ cat snap-as-text.txt
  # uncertain graph: 3 vertices, 3 edges
  3
  0 1 0.25
  1 2 0.75
  0 2 0.75

A bad SNAP line fails with the 1-based line number and exit code 2:

  $ printf '1 2 0.5\n3 oops\n' > bad.txt
  $ netrel convert --from snap bad.txt bad.nrb
  netrel: Bingraph.Snap: line 2: unreadable vertex id "oops"
  [2]

A truncated binary file is rejected, not silently mis-parsed:

  $ head -c 100 karate.nrb > trunc.nrb
  $ netrel convert trunc.nrb out.txt
  netrel: Bingraph.load: size mismatch: header declares 78 edges (1288 bytes) but input has 100 bytes (truncated?)
  [2]
